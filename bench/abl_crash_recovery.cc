// Crash-recovery ablation: the §4.1 administrator dance, automated and
// measured under live multi-queue load.
//
// Three phases, one JSON (BENCH_crash_recovery.json), nonzero exit on any
// acceptance violation:
//
//   1. Crash storm — 8 consecutive kill -9 → reap → restart → recover cycles
//      while 4 RSS-pinned peer flows stream at the device. Each cycle runs a
//      fresh windowed generator budget, crashes the driver mid-budget, lets
//      the supervisor recover, and then drains the remainder: the loss is
//      EXACT (generator frames minus stack deliveries), bounded by the
//      in-flight window at the moment of the kill, and every delivered
//      packet passed the proxy's fused guard-copy checksum (rx_bad_checksum
//      is the digest-mismatch counter — it must stay zero).
//   2. Hot upgrade — the e1000e factory is swapped for a replacement while
//      the same 4 flows stream. A flow-control gate freezes the generators'
//      ack feed (modeling netif queue stop), the in-flight frames drain
//      per-queue to the stack, and only then does the supervisor cut over:
//      zero packets lost, zero buffers quarantined, streaming resumes on the
//      new driver instance to budget completion.
//   3. Give-up storm — a crash loop against a small restart budget must end
//      in the terminal gave_up() state with the interface parked
//      (down + unregistered): the point where the paper's human
//      administrator genuinely takes over.
//
// Single-core hosts run the same choreography through the serial generator's
// pump callback (the pumped-dispatch fallback), so the bench never depends
// on hardware threads to be meaningful.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/base/log.h"
#include "src/uml/supervisor.h"
#include "tests/harness.h"

namespace sud {
namespace {

using testing::NetBench;

constexpr uint32_t kQueues = 4;
constexpr int kCrashCycles = 8;
// Per-cycle generator budget (split across the queues) and pacing window.
// The window bounds what can be in flight — and therefore lost — at the
// moment of a kill: at most kPeerWindow unacked frames per queue.
constexpr uint64_t kCyclePackets = 3000;
constexpr uint32_t kPeerWindow = 128;
constexpr uint64_t kUpgradePackets = 4000;
constexpr size_t kPayloadBytes = 1448;

uml::DriverSupervisor::DriverFactory E1000eFactory(uint32_t queues, uint32_t mtu) {
  return [queues, mtu]() -> std::unique_ptr<uml::Driver> {
    return std::make_unique<drivers::E1000eDriver>(queues, mtu);
  };
}

struct CycleRow {
  int cycle = 0;
  bool recovered = false;
  bool resumed_all_queues = false;
  uint64_t recovery_latency_ns = 0;
  uint64_t sent = 0;
  uint64_t delivered = 0;
  uint64_t lost = 0;
};

struct StormResult {
  std::vector<CycleRow> cycles;
  uint64_t sent = 0;
  uint64_t delivered = 0;
  uint64_t lost = 0;
  // Conservation-ledger split of `lost`: kill -9 eats in-flight frames
  // without any counter advancing (the uncounted share — crash loss proper),
  // while everything else a storm sheds must land in a per-layer drop
  // counter. Counted loss exceeding total loss would mean double counting;
  // silent loss OUTSIDE the kill windows shows up here as uncounted loss in
  // a cycle that never crashed.
  uint64_t lost_counted = 0;
  uint64_t lost_uncounted = 0;
  uint64_t digest_mismatches = 0;
  uint64_t buffers_quarantined = 0;
  uint32_t restarts = 0;
  bool ok = false;
};

struct UpgradeResult {
  bool ok = false;
  double upgrade_ns = 0;
  uint64_t sent = 0;
  uint64_t delivered = 0;
  uint64_t lost = 0;
  uint64_t digest_mismatches = 0;
  uint64_t buffers_quarantined = 0;
  uint32_t upgrades = 0;
  bool resumed_all_queues = false;
};

struct GiveUpResult {
  bool ok = false;
  uint32_t max_restarts = 0;
  uint32_t restarts = 0;
  uint64_t give_ups = 0;
  bool gave_up = false;
  bool interface_parked = false;
};

// Replaces BuildQueueFlows' cumulative ack feeds with per-cycle baselined
// ones, so each cycle's window pacing starts from zero regardless of what
// earlier cycles delivered.
void RebaseAcks(std::vector<devices::EtherLink::PeerFlow>& flows, kern::NetDevice* netdev) {
  for (uint32_t q = 0; q < flows.size(); ++q) {
    uint64_t base = netdev->queue_stats(static_cast<uint16_t>(q)).rx_packets.load();
    flows[q].acked = [netdev, q, base]() {
      return netdev->queue_stats(static_cast<uint16_t>(q)).rx_packets.load() - base;
    };
  }
}

StormResult RunStorm(bool threaded) {
  StormResult result;
  NetBench::Options options;
  options.nic_queues = kQueues;
  NetBench bench(options);
  uml::DriverHost::Mode mode =
      threaded ? uml::DriverHost::Mode::kThreadedPerQueue : uml::DriverHost::Mode::kPumped;
  if (!bench.StartSut(mode).ok()) {
    return result;
  }
  bench.MaskPeerIrq();

  uml::DriverSupervisor::Options sup_options;
  sup_options.max_restarts = kCrashCycles + 4;
  sup_options.restart_mode = mode;
  uml::DriverSupervisor sup(&bench.kernel, bench.host.get(), E1000eFactory(kQueues, bench.mtu_),
                            sup_options);
  sup.ShadowNetdev("eth0");
  sup.AttachProxy(bench.proxy.get());

  kern::NetDevice* netdev = bench.kernel.net().Find("eth0");
  std::vector<uint8_t> payload(kPayloadBytes, 0x5a);
  uint64_t mismatch_base = netdev->stats().rx_bad_checksum.load();
  // Restart-surviving counters only are meaningful across the storm (the
  // runtime/driver instances are replaced per cycle, but start at zero each
  // time and see no faults, so the delta below cannot underflow).
  testing::ConservationLedger ledger_base = testing::CollectLedger(bench);

  for (int cycle = 0; cycle < kCrashCycles; ++cycle) {
    CycleRow row;
    row.cycle = cycle;
    uint64_t cycle_rx_base = netdev->stats().rx_packets.load();
    std::array<uint64_t, kQueues> cycle_q_base{};
    for (uint16_t q = 0; q < kQueues; ++q) {
      cycle_q_base[q] = netdev->queue_stats(q).rx_packets.load();
    }
    std::vector<devices::EtherLink::PeerFlow> flows = bench.BuildQueueFlows(
        kQueues, {payload.data(), payload.size()}, kCyclePackets, kPeerWindow);
    RebaseAcks(flows, netdev);
    for (devices::EtherLink::PeerFlow& flow : flows) {
      // Crash cycles eat whatever sat in the rings: the generators go-back-N
      // retransmit the eaten tail (as any real transport would), so every
      // queue resumes streaming after recovery while the loss stays counted
      // as sent - delivered.
      flow.retransmit_on_stall_ms = 300;
    }

    auto delivered_cycle = [&]() { return netdev->stats().rx_packets.load() - cycle_rx_base; };
    std::array<uint64_t, kQueues> at_kill{};
    auto crash = [&]() {
      for (uint16_t q = 0; q < kQueues; ++q) {
        at_kill[q] = netdev->queue_stats(q).rx_packets.load();
      }
      (void)bench.host->Kill();  // kill -9, mid-stream
      row.recovered = sup.CheckAndRecover();
      row.recovery_latency_ns = sup.stats().last_recovery_ns;
    };

    // A generator that a crash left permanently window-blocked (every
    // in-flight frame of its window lost) quits after this stall bound; its
    // shortfall stays visible in the loss accounting instead of wedging CI.
    constexpr uint64_t kGiveUpMs = 2000;
    bool crashed = false;
    auto run_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    if (threaded) {
      bench.link.StartPeers(std::move(flows), /*side=*/1, kGiveUpMs);
      while (!crashed && std::chrono::steady_clock::now() < run_deadline) {
        if (delivered_cycle() >= kCyclePackets / 3) {
          crash();
          crashed = true;
        } else {
          std::this_thread::yield();
        }
      }
      bench.link.JoinPeers();
    } else {
      bench.link.RunPeersSerial(
          std::move(flows),
          [&]() {
            bench.host->Pump();
            if (!crashed && delivered_cycle() >= kCyclePackets / 3) {
              crash();
              crashed = true;
            }
          },
          /*side=*/1);
    }
    // Drain: the generators are done; let the last windows reach the stack.
    // Progress-bounded, not equality-bounded: frames the crash ate are never
    // delivered, so `delivered == sent` is unreachable by design — stop once
    // delivery stops moving.
    uint64_t sent_cycle = 0;
    for (uint32_t q = 0; q < kQueues; ++q) {
      sent_cycle += bench.link.peer_stats(q).frames.load();
    }
    uint64_t last_delivered = delivered_cycle();
    auto last_change = std::chrono::steady_clock::now();
    while (delivered_cycle() < sent_cycle &&
           std::chrono::steady_clock::now() < run_deadline &&
           std::chrono::steady_clock::now() - last_change < std::chrono::milliseconds(500)) {
      bench.host->Pump();
      std::this_thread::yield();
      uint64_t now_delivered = delivered_cycle();
      if (now_delivered != last_delivered) {
        last_delivered = now_delivered;
        last_change = std::chrono::steady_clock::now();
      }
    }

    row.sent = sent_cycle;
    row.delivered = delivered_cycle();
    row.lost = row.sent - row.delivered;
    row.resumed_all_queues = crashed;
    for (uint16_t q = 0; q < kQueues; ++q) {
      // Resumed means the queue streamed again after the kill — or had
      // nothing left to stream because its whole per-queue budget already
      // landed before the kill (scheduling skew lets a fast queue finish
      // while siblings are mid-window; that queue is done, not wedged).
      row.resumed_all_queues &=
          netdev->queue_stats(q).rx_packets.load() > at_kill[q] ||
          at_kill[q] - cycle_q_base[q] >= kCyclePackets / kQueues;
    }
    result.cycles.push_back(row);
    result.sent += row.sent;
    result.delivered += row.delivered;
    result.lost += row.lost;
  }

  result.digest_mismatches = netdev->stats().rx_bad_checksum.load() - mismatch_base;
  testing::ConservationLedger ledger = testing::CollectLedger(bench) - ledger_base;
  result.lost_counted = std::min(ledger.RxCountedLosses(), result.lost);
  result.lost_uncounted = result.lost - result.lost_counted;
  uml::DriverSupervisor::Stats stats = sup.stats();
  result.restarts = stats.restarts;
  result.buffers_quarantined = stats.buffers_quarantined;
  result.ok = static_cast<int>(result.cycles.size()) == kCrashCycles;
  for (const CycleRow& row : result.cycles) {
    result.ok &= row.recovered && row.resumed_all_queues &&
                 row.lost <= static_cast<uint64_t>(kQueues) * kPeerWindow;
  }
  result.ok &= result.digest_mismatches == 0 && result.restarts == kCrashCycles &&
               ledger.RxCountedLosses() <= result.lost;
  return result;
}

UpgradeResult RunUpgrade(bool threaded) {
  UpgradeResult result;
  NetBench::Options options;
  options.nic_queues = kQueues;
  NetBench bench(options);
  uml::DriverHost::Mode mode =
      threaded ? uml::DriverHost::Mode::kThreadedPerQueue : uml::DriverHost::Mode::kPumped;
  if (!bench.StartSut(mode).ok()) {
    return result;
  }
  bench.MaskPeerIrq();

  uml::DriverSupervisor::Options sup_options;
  sup_options.restart_mode = mode;
  uml::DriverSupervisor sup(&bench.kernel, bench.host.get(), E1000eFactory(kQueues, bench.mtu_),
                            sup_options);
  sup.ShadowNetdev("eth0");
  sup.AttachProxy(bench.proxy.get());

  kern::NetDevice* netdev = bench.kernel.net().Find("eth0");
  std::vector<uint8_t> payload(kPayloadBytes, 0x6b);
  uint64_t mismatch_base = netdev->stats().rx_bad_checksum.load();

  // The flow-control gate: generators pace against min(delivered, cap).
  // Freezing cap at the current delivery count models the kernel stopping
  // the queues — each generator window-blocks, the in-flight frames drain,
  // and the cutover happens on genuinely quiescent queues.
  std::array<std::atomic<uint64_t>, kQueues> cap;
  for (auto& c : cap) {
    c.store(UINT64_MAX, std::memory_order_relaxed);
  }
  std::vector<devices::EtherLink::PeerFlow> flows = bench.BuildQueueFlows(
      kQueues, {payload.data(), payload.size()}, kUpgradePackets, kPeerWindow);
  for (uint32_t q = 0; q < kQueues; ++q) {
    flows[q].acked = [netdev, q, &cap]() {
      uint64_t delivered = netdev->queue_stats(static_cast<uint16_t>(q)).rx_packets.load();
      return std::min(delivered, cap[q].load(std::memory_order_relaxed));
    };
  }

  auto delivered_total = [&]() { return netdev->stats().rx_packets.load(); };
  auto sent_total = [&]() {
    uint64_t sent = 0;
    for (uint32_t q = 0; q < kQueues && q < bench.link.peer_count(); ++q) {
      sent += bench.link.peer_stats(q).frames.load();
    }
    return sent;
  };
  auto queues_drained = [&]() { return delivered_total() == sent_total(); };
  std::array<uint64_t, kQueues> at_cutover{};
  // True quiescence, not just transient equality: each generator must have
  // extended its window to the frozen cap's bound (or finished its budget) —
  // until then a descheduled generator can wake and fire its remaining
  // headroom straight into the teardown.
  std::array<std::atomic<uint64_t>, kQueues> quiesce_bound{};
  auto queues_quiesced = [&]() {
    if (!queues_drained()) {
      return false;
    }
    for (uint32_t q = 0; q < kQueues && q < bench.link.peer_count(); ++q) {
      if (bench.link.peer_stats(q).frames.load() <
          quiesce_bound[q].load(std::memory_order_relaxed)) {
        return false;
      }
    }
    return true;
  };

  auto do_upgrade = [&]() {
    for (uint16_t q = 0; q < kQueues; ++q) {
      uint64_t frozen = netdev->queue_stats(q).rx_packets.load();
      cap[q].store(frozen, std::memory_order_relaxed);
      at_cutover[q] = frozen;
      quiesce_bound[q].store(
          std::min<uint64_t>(frozen + kPeerWindow, kUpgradePackets / kQueues),
          std::memory_order_relaxed);
    }
    auto drain_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!queues_quiesced() && std::chrono::steady_clock::now() < drain_deadline) {
      bench.host->Pump();
      std::this_thread::yield();
    }
    if (!queues_drained()) {
      // The cutover will eat whatever never drained; name the stuck queues
      // and the interrupt-path state so the loss is attributable from logs.
      const SudDeviceContext::InterruptStats& is = bench.ctx->interrupt_stats();
      for (uint16_t q = 0; q < kQueues; ++q) {
        SUD_LOG(kWarning) << "upgrade drain timeout: queue " << q << " delivered "
                          << netdev->queue_stats(q).rx_packets.load() << ", pending upcalls "
                          << bench.host->pending_upcalls(q) << ", progress "
                          << bench.host->queue_progress(q);
      }
      SUD_LOG(kWarning) << "upgrade drain timeout: irq forwarded " << is.forwarded
                        << " coalesced " << is.coalesced << " mask_events " << is.mask_events
                        << " storms " << is.storm_escalations;
    }
    auto t0 = std::chrono::steady_clock::now();
    Status upgraded = sup.Upgrade(E1000eFactory(kQueues, bench.mtu_));
    result.upgrade_ns = std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    result.ok = upgraded.ok();
    for (auto& c : cap) {
      c.store(UINT64_MAX, std::memory_order_relaxed);  // queues restarted
    }
  };

  bool upgraded = false;
  auto run_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  if (threaded) {
    bench.link.StartPeers(std::move(flows), /*side=*/1);
    while (!upgraded && std::chrono::steady_clock::now() < run_deadline) {
      if (delivered_total() >= kUpgradePackets / 3) {
        do_upgrade();
        upgraded = true;
      } else {
        std::this_thread::yield();
      }
    }
    bench.link.JoinPeers();
  } else {
    bench.link.RunPeersSerial(
        std::move(flows),
        [&]() {
          bench.host->Pump();
          if (!upgraded && delivered_total() >= kUpgradePackets / 3) {
            do_upgrade();
            upgraded = true;
          }
        },
        /*side=*/1);
  }
  while (delivered_total() < sent_total() &&
         std::chrono::steady_clock::now() < run_deadline) {
    bench.host->Pump();
    std::this_thread::yield();
  }

  result.sent = sent_total();
  result.delivered = delivered_total();
  result.lost = result.sent - result.delivered;
  result.digest_mismatches = netdev->stats().rx_bad_checksum.load() - mismatch_base;
  uml::DriverSupervisor::Stats stats = sup.stats();
  result.upgrades = stats.upgrades;
  result.buffers_quarantined = stats.buffers_quarantined;
  result.resumed_all_queues = upgraded;
  for (uint16_t q = 0; q < kQueues; ++q) {
    // Streamed after the cutover, or had already delivered its whole
    // per-queue budget before it (scheduling skew can finish one queue while
    // the others are mid-window; that queue is done, not wedged).
    result.resumed_all_queues &=
        netdev->queue_stats(q).rx_packets.load() > at_cutover[q] ||
        at_cutover[q] >= kUpgradePackets / kQueues;
  }
  result.ok &= result.sent == kUpgradePackets && result.lost == 0 &&
               result.digest_mismatches == 0 && result.upgrades == 1 &&
               result.buffers_quarantined == 0 && result.resumed_all_queues;
  return result;
}

GiveUpResult RunGiveUpStorm() {
  GiveUpResult result;
  NetBench bench;
  if (!bench.StartSut().ok()) {
    return result;
  }
  uml::DriverSupervisor::Options sup_options;
  sup_options.max_restarts = 4;
  uml::DriverSupervisor sup(&bench.kernel, bench.host.get(), E1000eFactory(1, bench.mtu_),
                            sup_options);
  sup.ShadowNetdev("eth0");
  sup.AttachProxy(bench.proxy.get());
  for (int i = 0; i < 7; ++i) {
    (void)bench.host->Kill();
    (void)sup.CheckAndRecover();
  }
  uml::DriverSupervisor::Stats stats = sup.stats();
  result.max_restarts = sup_options.max_restarts;
  result.restarts = stats.restarts;
  result.give_ups = stats.give_ups;
  result.gave_up = sup.gave_up();
  result.interface_parked = bench.kernel.net().Find("eth0") == nullptr;
  result.ok = result.restarts == sup_options.max_restarts && result.gave_up &&
              result.interface_parked && result.give_ups >= 1;
  return result;
}

void WriteJson(const StormResult& storm, const UpgradeResult& upgrade,
               const GiveUpResult& give_up, bool threaded, bool pass, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  uint64_t lat_min = UINT64_MAX, lat_max = 0, lat_sum = 0;
  for (const CycleRow& row : storm.cycles) {
    lat_min = std::min(lat_min, row.recovery_latency_ns);
    lat_max = std::max(lat_max, row.recovery_latency_ns);
    lat_sum += row.recovery_latency_ns;
  }
  if (storm.cycles.empty()) {
    lat_min = 0;
  }
  double lost_per_crash = storm.cycles.empty()
                              ? 0
                              : static_cast<double>(storm.lost) / storm.cycles.size();
  std::fprintf(out, "{\n  \"benchmark\": \"abl_crash_recovery\",\n");
  std::fprintf(out, "  \"queues\": %u,\n  \"threaded\": %s,\n", kQueues,
               threaded ? "true" : "false");
  std::fprintf(out, "  \"crash_storm\": {\n");
  std::fprintf(out, "    \"cycles\": [\n");
  for (size_t i = 0; i < storm.cycles.size(); ++i) {
    const CycleRow& row = storm.cycles[i];
    std::fprintf(out,
                 "      {\"cycle\": %d, \"recovered\": %s, \"resumed_all_queues\": %s, "
                 "\"recovery_latency_ns\": %llu, \"sent\": %llu, \"delivered\": %llu, "
                 "\"lost\": %llu}%s\n",
                 row.cycle, row.recovered ? "true" : "false",
                 row.resumed_all_queues ? "true" : "false",
                 static_cast<unsigned long long>(row.recovery_latency_ns),
                 static_cast<unsigned long long>(row.sent),
                 static_cast<unsigned long long>(row.delivered),
                 static_cast<unsigned long long>(row.lost),
                 i + 1 < storm.cycles.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out,
               "    \"restarts\": %u, \"sent\": %llu, \"delivered\": %llu, "
               "\"pkts_lost_total\": %llu, \"pkts_lost_per_crash\": %.1f,\n",
               storm.restarts, static_cast<unsigned long long>(storm.sent),
               static_cast<unsigned long long>(storm.delivered),
               static_cast<unsigned long long>(storm.lost), lost_per_crash);
  std::fprintf(out,
               "    \"pkts_lost_counted\": %llu, \"pkts_lost_uncounted\": %llu,\n",
               static_cast<unsigned long long>(storm.lost_counted),
               static_cast<unsigned long long>(storm.lost_uncounted));
  std::fprintf(out,
               "    \"loss_bound_per_crash\": %llu, \"digest_mismatches\": %llu, "
               "\"buffers_quarantined\": %llu,\n",
               static_cast<unsigned long long>(kQueues) * kPeerWindow,
               static_cast<unsigned long long>(storm.digest_mismatches),
               static_cast<unsigned long long>(storm.buffers_quarantined));
  std::fprintf(out,
               "    \"recovery_latency_ns\": {\"min\": %llu, \"avg\": %llu, \"max\": %llu}\n",
               static_cast<unsigned long long>(lat_min),
               static_cast<unsigned long long>(
                   storm.cycles.empty() ? 0 : lat_sum / storm.cycles.size()),
               static_cast<unsigned long long>(lat_max));
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"hot_upgrade\": {\n");
  std::fprintf(out,
               "    \"upgrades\": %u, \"upgrade_ns\": %.0f, \"sent\": %llu, "
               "\"delivered\": %llu, \"pkts_lost\": %llu, \"digest_mismatches\": %llu, "
               "\"buffers_quarantined\": %llu, \"resumed_all_queues\": %s\n",
               upgrade.upgrades, upgrade.upgrade_ns,
               static_cast<unsigned long long>(upgrade.sent),
               static_cast<unsigned long long>(upgrade.delivered),
               static_cast<unsigned long long>(upgrade.lost),
               static_cast<unsigned long long>(upgrade.digest_mismatches),
               static_cast<unsigned long long>(upgrade.buffers_quarantined),
               upgrade.resumed_all_queues ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"give_up\": {\n");
  std::fprintf(out,
               "    \"max_restarts\": %u, \"restarts\": %u, \"give_ups\": %llu, "
               "\"gave_up\": %s, \"interface_parked\": %s\n",
               give_up.max_restarts, give_up.restarts,
               static_cast<unsigned long long>(give_up.give_ups),
               give_up.gave_up ? "true" : "false",
               give_up.interface_parked ? "true" : "false");
  std::fprintf(out, "  },\n  \"pass\": %s\n}\n", pass ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace sud

int main() {
  using namespace sud;
  Logger::Get().set_min_level(LogLevel::kError);
  bool threaded = std::thread::hardware_concurrency() > 1 || std::getenv("SUD_FORCE_THREADED") != nullptr;

  StormResult storm = RunStorm(threaded);
  UpgradeResult upgrade = RunUpgrade(threaded);
  GiveUpResult give_up = RunGiveUpStorm();
  bool pass = storm.ok && upgrade.ok && give_up.ok;

  std::printf("\nabl_crash_recovery: %u-queue streaming, %s generators\n", kQueues,
              threaded ? "threaded" : "serial+pumped");
  std::printf("%-7s %-10s %-8s %12s %10s %10s %8s\n", "cycle", "recovered", "resumed",
              "latency(us)", "sent", "delivered", "lost");
  for (const CycleRow& row : storm.cycles) {
    std::printf("%-7d %-10s %-8s %12.0f %10llu %10llu %8llu\n", row.cycle,
                row.recovered ? "yes" : "NO", row.resumed_all_queues ? "4/4" : "PARTIAL",
                row.recovery_latency_ns / 1e3, (unsigned long long)row.sent,
                (unsigned long long)row.delivered, (unsigned long long)row.lost);
  }
  std::printf("storm: %u restarts, %llu/%llu delivered, %llu lost (%llu counted by a layer, "
              "%llu eaten by kills; bound %llu/crash), %llu digest mismatches -> %s\n",
              storm.restarts, (unsigned long long)storm.delivered,
              (unsigned long long)storm.sent, (unsigned long long)storm.lost,
              (unsigned long long)storm.lost_counted,
              (unsigned long long)storm.lost_uncounted,
              (unsigned long long)(kQueues * kPeerWindow),
              (unsigned long long)storm.digest_mismatches, storm.ok ? "OK" : "FAIL");
  std::printf("upgrade: %u cutover in %.0f us, %llu/%llu delivered, %llu lost, "
              "%llu quarantined -> %s\n",
              upgrade.upgrades, upgrade.upgrade_ns / 1e3,
              (unsigned long long)upgrade.delivered, (unsigned long long)upgrade.sent,
              (unsigned long long)upgrade.lost,
              (unsigned long long)upgrade.buffers_quarantined, upgrade.ok ? "OK" : "FAIL");
  std::printf("give-up: %u/%u budget spent, gave_up=%s, parked=%s -> %s\n", give_up.restarts,
              give_up.max_restarts, give_up.gave_up ? "true" : "false",
              give_up.interface_parked ? "true" : "false", give_up.ok ? "OK" : "FAIL");

  WriteJson(storm, upgrade, give_up, threaded, pass, "BENCH_crash_recovery.json");
  return pass ? 0 : 1;
}
