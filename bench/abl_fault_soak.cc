// Fault-soak ablation: seeded fault storms at every trust boundary, with
// graceful degradation proven by a conservation audit.
//
// For each seed (and in both dispatch modes on multi-core hosts) one
// NetBench runs three phases back to back, writing one row into
// BENCH_fault_soak.json and exiting nonzero if any invariant fails:
//
//   1. Storm — 4 RSS-pinned peer flows stream at the device while the SUT
//      transmits bursts back, under a randomized storm across every fault
//      site: DMA read/write aborts, lost and spurious MSIs, pool-alloc
//      exhaustion, forced uchan ring-full, downcall drop/dup/delay, and
//      DMA-view map failures. After the storm the run is drained and the
//      conservation ledger must balance EXACTLY: every wire frame is either
//      delivered or counted in one per-layer drop counter, every transmit
//      attempt is accepted-or-counted, duplicated messages were rejected
//      (never double-delivered — double delivery would break the equality),
//      zero digest mismatches, and the buffer pool drains to zero.
//   2. Stall — the storm clears and a Burst schedule wedges queue 1's pump
//      ("uml.pump.stall.qN", the injected wedge). The supervisor's watchdog
//      must detect the frozen heartbeat and restart the driver while the
//      flows keep streaming; loss stays bounded by the in-flight windows per
//      restart and the generators finish their budgets after recovery.
//   3. Clean — all sites disarmed, fresh flows: delivery must return to
//      exactly lossless (sent == delivered in both directions, zero digest
//      mismatches, no pool leak) — the "full recovery to clean throughput"
//      gate that proves the storm left no latent damage behind.
//
// Determinism: FaultInjector::Arm(seed) fixes each site's decision stream,
// so a failing seed replays (thread interleaving varies, the fault pattern
// does not). The JSON artifact embeds the whole site registry snapshot of
// the first storm so the storm's shape is auditable after the fact.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/base/fault_injector.h"
#include "src/base/log.h"
#include "src/uml/supervisor.h"
#include "tests/harness.h"

namespace sud {
namespace {

using testing::CollectLedger;
using testing::ConservationLedger;
using testing::NetBench;

constexpr uint32_t kQueues = 4;
constexpr uint32_t kWindow = 64;
constexpr size_t kPayloadBytes = 1000;
constexpr uint64_t kStormRxFrames = 4000;
constexpr int kStormTxBursts = 32;
constexpr int kTxBurst = 32;
constexpr uint64_t kStallRxFrames = 3000;
constexpr uint64_t kCleanRxFrames = 2000;
constexpr int kCleanTxBursts = 16;
// Phase 2 reseeds so its draws are decorrelated from the storm's.
constexpr uint64_t kStallSalt = 0x9e3779b97f4a7c15ull;
constexpr const char* kStallSite = "uml.pump.stall.q1";

// The storm registry: every site armed for phase 1, with rates chosen so a
// 4000-frame run sees tens-to-hundreds of fires per site without starving
// forward progress. Phase 2 clears these and arms only the pump stall.
struct StormSpec {
  const char* site;
  FaultInjector::Schedule schedule;
};
const StormSpec kStormSites[] = {
    {"hw.pcie.dma_read", FaultInjector::Probability(1, 2048)},
    {"hw.pcie.dma_write", FaultInjector::Probability(1, 2048)},
    {"hw.msi.lost", FaultInjector::Probability(1, 512)},
    {"hw.msi.spurious", FaultInjector::Probability(1, 256)},
    {"sud.pool.alloc", FaultInjector::Probability(1, 64)},
    {"uchan.up.ring_full", FaultInjector::Probability(1, 256)},
    {"uchan.down.drop", FaultInjector::Probability(1, 256)},
    {"uchan.down.dup", FaultInjector::Probability(1, 256)},
    {"uchan.down.delay", FaultInjector::Probability(1, 128)},
    {"uml.dmaview.fail", FaultInjector::Probability(1, 1024)},
};

struct StormRow {
  bool ok = false;
  bool flows_done = false;
  bool drained = false;
  uint64_t wire_sent = 0;  // generator frames + post-storm kicker frames
  uint64_t rx_delivered = 0;
  uint64_t rx_counted_losses = 0;
  uint64_t tx_attempts = 0;
  uint64_t tx_accepted = 0;
  uint64_t tx_delivered = 0;
  uint64_t tx_counted_losses = 0;
  uint64_t digest_mismatches = 0;
  uint64_t dups_injected = 0;
  uint64_t dups_rejected = 0;
  uint64_t pool_outstanding = 0;
  uint64_t fires = 0;
};

struct StallRow {
  bool ok = false;
  uint32_t watchdog_recoveries = 0;
  uint32_t restarts = 0;
  bool gave_up = false;
  uint64_t stalls_fired = 0;
  uint64_t sent = 0;
  uint64_t delivered = 0;
  uint64_t lost = 0;
  uint64_t loss_bound = 0;
  uint64_t digest_mismatches = 0;
};

struct CleanRow {
  bool ok = false;
  uint64_t wire_sent = 0;
  uint64_t rx_delivered = 0;
  uint64_t tx_attempts = 0;
  uint64_t tx_delivered = 0;
  uint64_t digest_mismatches = 0;
  int64_t pool_delta = 0;
  double frames_per_sec = 0;
};

struct SeedRow {
  uint64_t seed = 0;
  bool threaded = false;
  bool started = false;
  StormRow storm;
  StallRow stall;
  CleanRow clean;
  bool ok = false;
};

// The storm-shape registry snapshot (first storm only; the shape is
// per-seed deterministic, one exemplar documents it).
std::vector<FaultInjector::SiteSnapshot> g_sites;

uml::DriverSupervisor::DriverFactory E1000eFactory(uint32_t queues, uint32_t mtu) {
  return [queues, mtu]() -> std::unique_ptr<uml::Driver> {
    return std::make_unique<drivers::E1000eDriver>(queues, mtu);
  };
}

// Replaces BuildQueueFlows' cumulative ack feeds with phase-baselined ones,
// so each phase's window pacing starts from zero regardless of what earlier
// phases delivered.
void RebaseAcks(std::vector<devices::EtherLink::PeerFlow>& flows, kern::NetDevice* netdev) {
  for (uint32_t q = 0; q < flows.size(); ++q) {
    uint64_t base = netdev->queue_stats(static_cast<uint16_t>(q)).rx_packets.load();
    flows[q].acked = [netdev, q, base]() {
      return netdev->queue_stats(static_cast<uint16_t>(q)).rx_packets.load() - base;
    };
  }
}

// Post-storm kicker: one frame per queue, RSS-pinned, sent through the peer
// netdev AFTER disarming. Each one raises a fresh (undroppable now) MSI on
// its queue, so a tail stranded by a lost interrupt — done descriptors with
// no event left to announce them, or a delayed downcall still parked in the
// channel — gets reaped on the very next poll. Returns how many reached the
// wire (they join wire_sent, so the conservation equality still audits them).
uint64_t KickQueues(NetBench& bench) {
  std::vector<uint8_t> ping(64, 0x5d);
  std::vector<devices::EtherLink::PeerFlow> kickers =
      bench.BuildQueueFlows(kQueues, {ping.data(), ping.size()}, kQueues, 1);
  uint64_t sent = 0;
  for (devices::EtherLink::PeerFlow& kicker : kickers) {
    Status status = bench.kernel.net().Transmit(
        bench.peer_env->netdev(),
        kern::MakeSkb(ConstByteSpan(kicker.frame.data(), kicker.frame.size())));
    if (status.ok()) {
      ++sent;
    }
  }
  return sent;
}

void RunStorm(NetBench& bench, uint64_t seed, bool threaded, StormRow& out) {
  kern::NetDevice* netdev = bench.kernel.net().Find("eth0");
  std::vector<uint8_t> payload(kPayloadBytes, 0xa5);
  ConstByteSpan payload_span(payload.data(), payload.size());

  std::vector<devices::EtherLink::PeerFlow> flows =
      bench.BuildQueueFlows(kQueues, payload_span, kStormRxFrames, kWindow);
  RebaseAcks(flows, netdev);
  std::vector<std::function<uint64_t()>> acked(kQueues);
  std::vector<uint64_t> quota(kQueues);
  for (uint32_t q = 0; q < kQueues; ++q) {
    // Injected drops eat in-flight frames; go-back-N resends the unacked
    // tail so no flow stays window-blocked (resends count as new wire
    // frames, keeping the per-transmission conservation equality exact).
    flows[q].retransmit_on_stall_ms = 300;
    acked[q] = flows[q].acked;
    quota[q] = flows[q].count;
  }
  // Threaded generators retransmit dropped tails, so acked reaches the quota
  // unless a flow gave up; the serial replay has no retransmit (a counted
  // drop leaves acked short by design), so completion there is RunPeersSerial
  // returning with every budget sent and nobody giving up.
  auto flows_settled = [&]() {
    for (uint32_t q = 0; q < kQueues && q < bench.link.peer_count(); ++q) {
      if (acked[q]() < quota[q] && !bench.link.peer_stats(q).gave_up.load()) {
        return false;
      }
    }
    return true;
  };

  ConservationLedger base = CollectLedger(bench);
  FaultInjector& injector = FaultInjector::Get();
  for (const StormSpec& spec : kStormSites) {
    injector.Configure(spec.site, spec.schedule);
  }
  injector.Arm(seed);

  int bursts_left = kStormTxBursts;
  auto send_tx_burst = [&]() {
    if (bursts_left > 0) {
      uint16_t src_port = static_cast<uint16_t>(42000 + (kStormTxBursts - bursts_left));
      (void)bench.SutSendBurst(src_port, 4343, payload_span, kTxBurst);
      out.tx_attempts += kTxBurst;
      --bursts_left;
    }
  };

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  if (threaded) {
    bench.link.StartPeers(std::move(flows), /*side=*/1, /*give_up_ms=*/30000);
    while (std::chrono::steady_clock::now() < deadline) {
      send_tx_burst();
      bench.peer_driver->NapiPoll();
      bench.sut_nic.Tick();
      if (bursts_left == 0 && flows_settled()) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    bench.link.JoinPeers();
  } else {
    uint64_t pumps = 0;
    bench.link.RunPeersSerial(
        std::move(flows),
        [&]() {
          bench.host->Pump();
          ++pumps;
          if (pumps % 4 == 0) {
            bench.peer_driver->NapiPoll();
          }
          if (pumps % 16 == 0) {
            send_tx_burst();
          }
          if (pumps % 32 == 0) {
            bench.sut_nic.Tick();
          }
        },
        /*side=*/1);
    while (bursts_left > 0) {
      send_tx_burst();
      bench.host->Pump();
      bench.peer_driver->NapiPoll();
    }
  }
  out.flows_done = true;
  for (uint32_t q = 0; q < kQueues && q < bench.link.peer_count(); ++q) {
    out.flows_done &= !bench.link.peer_stats(q).gave_up.load() &&
                      bench.link.peer_stats(q).frames.load() >= quota[q];
    out.wire_sent += bench.link.peer_stats(q).frames.load();
  }

  // Storm over: disarm FIRST, so the drain cannot lose anything new, then
  // kick each queue until the ledger closes (kickers join wire_sent).
  injector.Disarm();
  out.fires = injector.total_fires();
  if (g_sites.empty()) {
    g_sites = injector.Snapshot();
  }

  ConservationLedger delta;
  auto drain_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(15);
  auto next_kick = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() < drain_deadline) {
    if (std::chrono::steady_clock::now() >= next_kick) {
      out.wire_sent += KickQueues(bench);
      next_kick = std::chrono::steady_clock::now() + std::chrono::seconds(1);
    }
    bench.host->Pump();
    bench.peer_driver->NapiPoll();
    bench.sut_nic.Tick();
    delta = CollectLedger(bench) - base;
    out.drained = delta.RxConserved(out.wire_sent) && delta.TxConserved(out.tx_attempts) &&
                  delta.pool_outstanding == 0;
    if (out.drained) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  out.rx_delivered = delta.rx_delivered;
  out.rx_counted_losses = delta.RxCountedLosses();
  out.tx_accepted = delta.tx_accepted;
  out.tx_delivered = delta.tx_delivered;
  out.tx_counted_losses = delta.TxCountedLosses();
  out.digest_mismatches = delta.digest_mismatches;
  out.dups_injected = delta.uchan_injected_dups;
  out.dups_rejected = delta.rx_dups_rejected;
  out.pool_outstanding = delta.pool_outstanding;
  // A rejected dup beyond what was injected would mean the proxy refused a
  // real frame; a double-delivered dup would break RxConserved above.
  out.ok = out.flows_done && out.drained && out.digest_mismatches == 0 && out.fires > 0 &&
           out.dups_rejected <= out.dups_injected;
}

void RunStall(NetBench& bench, uint64_t seed, bool threaded, uml::DriverHost::Mode mode,
              StallRow& out) {
  kern::NetDevice* netdev = bench.kernel.net().Find("eth0");
  std::vector<uint8_t> payload(kPayloadBytes, 0x3c);

  uml::DriverSupervisor::Options sup_options;
  sup_options.max_restarts = 6;
  sup_options.restart_mode = mode;
  uml::DriverSupervisor sup(&bench.kernel, bench.host.get(), E1000eFactory(kQueues, bench.mtu_),
                            sup_options);
  sup.ShadowNetdev("eth0");
  sup.AttachProxy(bench.proxy.get());

  uint64_t rx_base = netdev->stats().rx_packets.load();
  uint64_t digest_base = netdev->stats().rx_bad_checksum.load();

  std::vector<devices::EtherLink::PeerFlow> flows =
      bench.BuildQueueFlows(kQueues, {payload.data(), payload.size()}, kStallRxFrames, kWindow);
  RebaseAcks(flows, netdev);
  std::vector<std::function<uint64_t()>> acked(kQueues);
  std::vector<uint64_t> quota(kQueues);
  for (uint32_t q = 0; q < kQueues; ++q) {
    // The restart eats whatever sat in the rings; go-back-N resends it, so
    // every flow still finishes its budget after recovery.
    flows[q].retransmit_on_stall_ms = 300;
    acked[q] = flows[q].acked;
    quota[q] = flows[q].count;
  }
  auto flows_settled = [&]() {
    for (uint32_t q = 0; q < kQueues && q < bench.link.peer_count(); ++q) {
      if (acked[q]() < quota[q] && !bench.link.peer_stats(q).gave_up.load()) {
        return false;
      }
    }
    return true;
  };

  FaultInjector& injector = FaultInjector::Get();
  injector.ClearSchedules();
  // A short run-in, then queue 1's pump freezes for as long as the engine
  // stays armed; the bench disarms right after the watchdog's first recovery
  // so the replacement driver comes up clean instead of re-wedging into the
  // restart budget. Both dispatch modes evaluate this site: the per-queue
  // pump thread hits it directly, and the single-threaded Pump() sweep hits
  // it through ProcessPendingQueue's RunOnceQueue loop.
  injector.Configure(kStallSite, FaultInjector::Burst(20, 1ull << 40));
  injector.Arm(seed ^ kStallSalt);

  // Threaded generators in BOTH modes: the serial replay has no go-back-N,
  // and a wedged queue's whole in-flight window dies with the restart — only
  // retransmitting generators can finish their budgets afterwards. In pumped
  // mode the monitor loop below is the dispatch engine AND the watchdog
  // cadence; in per-queue mode the supervisor's own watchdog thread runs.
  if (threaded) {
    sup.StartWatchdog();
  }
  bench.link.StartPeers(std::move(flows), /*side=*/1, /*give_up_ms=*/20000);
  bool disarmed = false;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(45);
  while (std::chrono::steady_clock::now() < deadline) {
    bench.host->Pump();
    if (!disarmed) {
      if (!threaded) {
        (void)sup.CheckAndRecover();
      }
      if (sup.stats().watchdog_recoveries >= 1) {
        injector.Disarm();
        disarmed = true;
      }
    }
    if (disarmed && flows_settled()) {
      break;
    }
    if (threaded) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  injector.Disarm();
  bench.link.JoinPeers();
  if (threaded) {
    sup.StopWatchdog();
  }

  for (uint32_t q = 0; q < kQueues && q < bench.link.peer_count(); ++q) {
    out.sent += bench.link.peer_stats(q).frames.load();
    out.gave_up |= bench.link.peer_stats(q).gave_up.load();
  }
  // Drain the last windows; progress-bounded, since the frames a restart ate
  // are gone by design and only their retransmissions arrive.
  auto drain_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  uint64_t last_delivered = netdev->stats().rx_packets.load();
  auto last_change = std::chrono::steady_clock::now();
  while (netdev->stats().rx_packets.load() - rx_base < out.sent &&
         std::chrono::steady_clock::now() < drain_deadline &&
         std::chrono::steady_clock::now() - last_change < std::chrono::milliseconds(500)) {
    bench.host->Pump();
    std::this_thread::yield();
    uint64_t now_delivered = netdev->stats().rx_packets.load();
    if (now_delivered != last_delivered) {
      last_delivered = now_delivered;
      last_change = std::chrono::steady_clock::now();
    }
  }

  uml::DriverSupervisor::Stats stats = sup.stats();
  out.watchdog_recoveries = stats.watchdog_recoveries;
  out.restarts = stats.restarts;
  out.gave_up |= sup.gave_up();
  out.stalls_fired = injector.fires(kStallSite);
  out.delivered = netdev->stats().rx_packets.load() - rx_base;
  out.lost = out.sent - out.delivered;
  out.loss_bound = static_cast<uint64_t>(out.restarts + 1) * kQueues * kWindow;
  out.digest_mismatches = netdev->stats().rx_bad_checksum.load() - digest_base;
  out.ok = out.watchdog_recoveries >= 1 && !out.gave_up && out.stalls_fired > 0 &&
           out.lost <= out.loss_bound && out.digest_mismatches == 0;
}

void RunClean(NetBench& bench, bool threaded, CleanRow& out) {
  kern::NetDevice* netdev = bench.kernel.net().Find("eth0");
  std::vector<uint8_t> payload(kPayloadBytes, 0x7e);
  ConstByteSpan payload_span(payload.data(), payload.size());

  FaultInjector& injector = FaultInjector::Get();
  injector.Disarm();
  injector.ClearSchedules();

  ConservationLedger base = CollectLedger(bench);
  std::vector<devices::EtherLink::PeerFlow> flows =
      bench.BuildQueueFlows(kQueues, payload_span, kCleanRxFrames, kWindow);
  RebaseAcks(flows, netdev);
  for (devices::EtherLink::PeerFlow& flow : flows) {
    // Hang-safety only: a clean run that needs a retransmit fails the exact
    // sent == delivered gate anyway (the resend inflates wire_sent).
    flow.retransmit_on_stall_ms = 1000;
  }

  int bursts_left = kCleanTxBursts;
  auto send_tx_burst = [&]() {
    if (bursts_left > 0) {
      uint16_t src_port = static_cast<uint16_t>(45000 + (kCleanTxBursts - bursts_left));
      (void)bench.SutSendBurst(src_port, 4545, payload_span, kTxBurst);
      out.tx_attempts += kTxBurst;
      --bursts_left;
    }
  };

  auto t0 = std::chrono::steady_clock::now();
  if (threaded) {
    bench.link.StartPeers(std::move(flows), /*side=*/1, /*give_up_ms=*/15000);
    while (bursts_left > 0) {
      send_tx_burst();
      bench.peer_driver->NapiPoll();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    bench.link.JoinPeers();
  } else {
    uint64_t pumps = 0;
    bench.link.RunPeersSerial(
        std::move(flows),
        [&]() {
          bench.host->Pump();
          ++pumps;
          if (pumps % 4 == 0) {
            bench.peer_driver->NapiPoll();
          }
          if (pumps % 16 == 0) {
            send_tx_burst();
          }
        },
        /*side=*/1);
    while (bursts_left > 0) {
      send_tx_burst();
      bench.host->Pump();
      bench.peer_driver->NapiPoll();
    }
  }
  double stream_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  for (uint32_t q = 0; q < kQueues && q < bench.link.peer_count(); ++q) {
    out.wire_sent += bench.link.peer_stats(q).frames.load();
  }

  ConservationLedger delta;
  bool exact = false;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    bench.host->Pump();
    bench.peer_driver->NapiPoll();
    bench.sut_nic.Tick();
    delta = CollectLedger(bench) - base;
    exact = delta.rx_delivered == out.wire_sent && delta.tx_delivered == out.tx_attempts;
    if (exact) {
      break;
    }
    std::this_thread::yield();
  }

  out.rx_delivered = delta.rx_delivered;
  out.tx_delivered = delta.tx_delivered;
  out.digest_mismatches = delta.digest_mismatches;
  out.pool_delta = static_cast<int64_t>(delta.pool_outstanding) -
                   static_cast<int64_t>(base.pool_outstanding);
  out.frames_per_sec = stream_sec > 0 ? static_cast<double>(out.wire_sent) / stream_sec : 0;
  out.ok = exact && out.wire_sent == kCleanRxFrames && out.digest_mismatches == 0 &&
           out.pool_delta == 0 && delta.RxCountedLosses() == 0 && delta.TxCountedLosses() == 0;
}

SeedRow RunSeed(uint64_t seed, bool threaded) {
  SeedRow row;
  row.seed = seed;
  row.threaded = threaded;
  NetBench::Options options;
  options.nic_queues = kQueues;
  NetBench bench(options);
  uml::DriverHost::Mode mode =
      threaded ? uml::DriverHost::Mode::kThreadedPerQueue : uml::DriverHost::Mode::kPumped;
  if (!bench.StartSut(mode).ok()) {
    return row;
  }
  row.started = true;
  bench.MaskPeerIrq();

  RunStorm(bench, seed, threaded, row.storm);
  RunStall(bench, seed, threaded, mode, row.stall);
  RunClean(bench, threaded, row.clean);

  FaultInjector::Get().Disarm();
  FaultInjector::Get().ClearSchedules();
  row.ok = row.storm.ok && row.stall.ok && row.clean.ok;
  return row;
}

const char* ModeName(FaultInjector::Mode mode) {
  switch (mode) {
    case FaultInjector::Mode::kOff:
      return "off";
    case FaultInjector::Mode::kProbability:
      return "probability";
    case FaultInjector::Mode::kEveryNth:
      return "every_nth";
    case FaultInjector::Mode::kOneShotAt:
      return "one_shot_at";
    case FaultInjector::Mode::kBurst:
      return "burst";
  }
  return "unknown";
}

void WriteJson(const std::vector<SeedRow>& rows, bool pass, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"abl_fault_soak\",\n");
  std::fprintf(out, "  \"queues\": %u,\n  \"window\": %u,\n", kQueues, kWindow);
  std::fprintf(out, "  \"storm_sites\": [\n");
  for (size_t i = 0; i < g_sites.size(); ++i) {
    const FaultInjector::SiteSnapshot& site = g_sites[i];
    std::fprintf(out,
                 "    {\"site\": \"%s\", \"mode\": \"%s\", \"hits\": %llu, \"fires\": %llu}%s\n",
                 site.name.c_str(), ModeName(site.mode),
                 static_cast<unsigned long long>(site.hits),
                 static_cast<unsigned long long>(site.fires),
                 i + 1 < g_sites.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"runs\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const SeedRow& row = rows[i];
    std::fprintf(out, "    {\"seed\": %llu, \"mode\": \"%s\",\n",
                 static_cast<unsigned long long>(row.seed),
                 row.threaded ? "threaded_per_queue" : "pumped");
    std::fprintf(out,
                 "     \"storm\": {\"wire_sent\": %llu, \"rx_delivered\": %llu, "
                 "\"rx_counted_losses\": %llu, \"tx_attempts\": %llu, \"tx_accepted\": %llu, "
                 "\"tx_delivered\": %llu, \"tx_counted_losses\": %llu, \"fires\": %llu, "
                 "\"dups_injected\": %llu, \"dups_rejected\": %llu, \"digest_mismatches\": %llu, "
                 "\"pool_outstanding\": %llu, \"conserved\": %s, \"ok\": %s},\n",
                 static_cast<unsigned long long>(row.storm.wire_sent),
                 static_cast<unsigned long long>(row.storm.rx_delivered),
                 static_cast<unsigned long long>(row.storm.rx_counted_losses),
                 static_cast<unsigned long long>(row.storm.tx_attempts),
                 static_cast<unsigned long long>(row.storm.tx_accepted),
                 static_cast<unsigned long long>(row.storm.tx_delivered),
                 static_cast<unsigned long long>(row.storm.tx_counted_losses),
                 static_cast<unsigned long long>(row.storm.fires),
                 static_cast<unsigned long long>(row.storm.dups_injected),
                 static_cast<unsigned long long>(row.storm.dups_rejected),
                 static_cast<unsigned long long>(row.storm.digest_mismatches),
                 static_cast<unsigned long long>(row.storm.pool_outstanding),
                 row.storm.drained ? "true" : "false", row.storm.ok ? "true" : "false");
    std::fprintf(out,
                 "     \"stall\": {\"watchdog_recoveries\": %u, \"restarts\": %u, "
                 "\"stalls_fired\": %llu, \"sent\": %llu, \"delivered\": %llu, \"lost\": %llu, "
                 "\"loss_bound\": %llu, \"digest_mismatches\": %llu, \"gave_up\": %s, "
                 "\"ok\": %s},\n",
                 row.stall.watchdog_recoveries, row.stall.restarts,
                 static_cast<unsigned long long>(row.stall.stalls_fired),
                 static_cast<unsigned long long>(row.stall.sent),
                 static_cast<unsigned long long>(row.stall.delivered),
                 static_cast<unsigned long long>(row.stall.lost),
                 static_cast<unsigned long long>(row.stall.loss_bound),
                 static_cast<unsigned long long>(row.stall.digest_mismatches),
                 row.stall.gave_up ? "true" : "false", row.stall.ok ? "true" : "false");
    std::fprintf(out,
                 "     \"clean\": {\"wire_sent\": %llu, \"rx_delivered\": %llu, "
                 "\"tx_attempts\": %llu, \"tx_delivered\": %llu, \"digest_mismatches\": %llu, "
                 "\"pool_delta\": %lld, \"frames_per_sec\": %.0f, \"ok\": %s},\n",
                 static_cast<unsigned long long>(row.clean.wire_sent),
                 static_cast<unsigned long long>(row.clean.rx_delivered),
                 static_cast<unsigned long long>(row.clean.tx_attempts),
                 static_cast<unsigned long long>(row.clean.tx_delivered),
                 static_cast<unsigned long long>(row.clean.digest_mismatches),
                 static_cast<long long>(row.clean.pool_delta), row.clean.frames_per_sec,
                 row.clean.ok ? "true" : "false");
    std::fprintf(out, "     \"ok\": %s}%s\n", row.ok ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"pass\": %s\n}\n", pass ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace sud

int main(int argc, char** argv) {
  using namespace sud;
  Logger::Get().set_min_level(LogLevel::kError);
  int seeds = 8;
  if (argc > 1) {
    seeds = std::max(1, std::atoi(argv[1]));
  }
  bool threaded_ok = std::thread::hardware_concurrency() > 1 ||
                     std::getenv("SUD_FORCE_THREADED") != nullptr;

  std::vector<SeedRow> rows;
  for (int i = 0; i < seeds; ++i) {
    uint64_t seed = 1 + static_cast<uint64_t>(i);
    rows.push_back(RunSeed(seed, /*threaded=*/false));
    if (threaded_ok) {
      rows.push_back(RunSeed(seed, /*threaded=*/true));
    }
  }
  bool pass = !rows.empty();
  for (const SeedRow& row : rows) {
    pass &= row.ok;
  }

  std::printf("\nabl_fault_soak: %d seed(s), %u queues, %s\n", seeds, kQueues,
              threaded_ok ? "pumped + threaded-per-queue" : "pumped only");
  std::printf("%-6s %-10s %-8s %-10s %-10s %-9s %-9s %-8s %s\n", "seed", "mode", "fires",
              "storm", "stall", "clean", "lost", "digest", "ok");
  for (const SeedRow& row : rows) {
    std::printf("%-6llu %-10s %-8llu %-10s %-10s %-9s %-9llu %-8llu %s\n",
                (unsigned long long)row.seed, row.threaded ? "threaded" : "pumped",
                (unsigned long long)row.storm.fires, row.storm.ok ? "conserved" : "FAIL",
                row.stall.ok ? "recovered" : "FAIL", row.clean.ok ? "exact" : "FAIL",
                (unsigned long long)row.stall.lost,
                (unsigned long long)(row.storm.digest_mismatches + row.stall.digest_mismatches +
                                     row.clean.digest_mismatches),
                row.ok ? "OK" : "FAIL");
  }
  std::printf("fault soak: %zu run(s) -> %s\n", rows.size(), pass ? "PASS" : "FAIL");

  WriteJson(rows, pass, "BENCH_fault_soak.json");
  return pass ? 0 : 1;
}
