// Million-flow RSS steering ablation: Zipf skew x queue count, identity RETA
// vs the adaptive rebalancer, through the FULL SUD stack (peer NIC -> wire ->
// SUT NIC DMA -> untrusted driver -> proxy guard copy + digest -> netif_rx).
//
// Two phases per cell:
//  * identity: the device RETA stays unprogrammed (hash % queues — bit-for-
//    bit the historical steering), establishing the per-queue tail imbalance
//    a skewed flow population inflicts on static RSS.
//  * adaptive: the kernel-side FlowTable observes per-bucket load and the
//    RssRebalancer reprograms the RETA through E1000eDriver::ProgramReta
//    whenever spreading heavy buckets actually helps. Same traffic law, same
//    seed offset — the delta is the rebalancer's doing alone.
//
// A final phase holds >= 1,000,000 CONCURRENT tracked flows live in the
// FlowTable while the rebalancer runs — the paper's "heavy traffic from
// millions of users" scale point, with the table's occupancy, recycle and
// probe accounting reported honestly.
//
// Exit gates (CI fails on any):
//  * conservation: every wire frame delivered or counted, every cell;
//  * digest equality: order-independent FrameHash sum of sent == received;
//  * the million-flow phase tracks >= 1M live flows;
//  * at skew >= 1.1 the adaptive tail imbalance beats identity wherever
//    identity was actually imbalanced (above the rebalancer's own 1.15
//    threshold — a cell identity already balances is a no-op by design).
//
// Everything is deterministic: fixed splitmix64 seeds, serial pumped
// dispatch, modeled metrics only (no wall-clock in any gate).

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/log.h"
#include "src/kern/flow_table.h"
#include "src/kern/rss_rebalancer.h"
#include "tests/harness.h"

namespace sud {
namespace {

using kern::FlowTable;
using kern::kFlowBuckets;
using kern::RssRebalancer;
using testing::NetBench;

constexpr int kSweepFlows = 4096;       // distinct flows per sweep cell
constexpr int kPhasePackets = 81920;    // per phase (identity, adaptive)
constexpr int kBurst = 256;             // frames per TransmitBatch + Pump
constexpr int kWindowPackets = 4096;    // imbalance sampling window
constexpr int kMillionFlows = 1100000;  // distinct flows in the scale phase
constexpr uint16_t kDstPort = 80;

// Deterministic RNG (no std::random: identical streams on every platform).
struct SplitMix64 {
  uint64_t state;
  uint64_t Next() {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  // Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / (1ull << 53)); }
};

// Zipf(s) over ranks 1..n via inverse-CDF binary search.
struct ZipfSampler {
  std::vector<double> cdf;
  ZipfSampler(int n, double s) : cdf(n) {
    double sum = 0;
    for (int k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf[k] = sum;
    }
    for (int k = 0; k < n; ++k) {
      cdf[k] /= sum;
    }
  }
  int Sample(SplitMix64& rng) {
    double u = rng.NextDouble();
    return static_cast<int>(std::upper_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
  }
};

struct CellResult {
  double skew = 0;
  uint32_t queues = 0;
  uint64_t sent = 0;
  uint64_t delivered = 0;
  bool conserved = false;
  bool digest_ok = false;
  double identity_tail_imbalance = 0;
  double adaptive_tail_imbalance = 0;
  int convergence_windows = -1;  // adaptive windows until identity tail beaten
  uint64_t reprograms = 0;
  uint64_t reta_dword_writes = 0;
  double crossings_per_pkt = 0;
  uint32_t live_flows = 0;
  uint64_t inserts = 0;
  uint64_t recycles = 0;
  uint64_t insert_failures = 0;
  double probe_steps_per_record = 0;
};

// Digest of `frame` AS THE WIRE CARRIES IT: the link zero-pads runts to the
// 60-byte Ethernet minimum, so the sent-side sum must hash the padded bytes
// to be comparable against what the receive sink observes.
uint64_t WireFrameHash(const std::vector<uint8_t>& frame) {
  if (frame.size() >= kern::kEthMinFrameBytes) {
    return devices::EtherLink::FrameHash({frame.data(), frame.size()});
  }
  std::vector<uint8_t> padded(frame);
  padded.resize(kern::kEthMinFrameBytes, 0);
  return devices::EtherLink::FrameHash({padded.data(), padded.size()});
}

// max/mean of the per-queue rx deltas across one window.
double WindowImbalance(const std::array<uint64_t, kern::kNetMaxQueues>& delta, uint32_t queues) {
  uint64_t total = 0, max = 0;
  for (uint32_t q = 0; q < queues; ++q) {
    total += delta[q];
    max = std::max(max, delta[q]);
  }
  return total == 0 ? 1.0 : static_cast<double>(max) / (static_cast<double>(total) / queues);
}

// Tail = max imbalance over the second half of a phase's windows (the
// steady state, past any convergence transient).
double TailImbalance(const std::vector<double>& windows) {
  double tail = 0;
  for (size_t w = windows.size() / 2; w < windows.size(); ++w) {
    tail = std::max(tail, windows[w]);
  }
  return tail;
}

CellResult RunCell(double skew, uint32_t queues) {
  NetBench::Options options;
  options.nic_queues = queues;
  NetBench bench(options);
  if (!bench.StartSut().ok()) {
    std::fprintf(stderr, "sut start failed\n");
    return {};
  }
  bench.MaskPeerIrq();
  kern::NetDevice* netdev = bench.kernel.net().Find(bench.SutIfname());
  FlowTable::Options table_options;
  table_options.capacity = 1u << 14;  // 4096 flows at 25% load
  netdev->EnableFlowTracking(table_options);
  FlowTable* table = netdev->flow_table();

  uint64_t rx_digest = 0;
  netdev->set_rx_sink([&rx_digest](const kern::Skb& skb) {
    rx_digest += devices::EtherLink::FrameHash(skb.span());
  });

  // Prebuild one frame per flow (checksummed once, reused per packet).
  std::vector<uint8_t> payload(26, 0x5f);
  std::vector<std::vector<uint8_t>> frames;
  std::vector<uint64_t> frame_digest;
  frames.reserve(kSweepFlows);
  for (int k = 0; k < kSweepFlows; ++k) {
    frames.push_back(kern::BuildPacket(testing::kMacA, testing::kMacB,
                                       static_cast<uint16_t>(20000 + k), kDstPort,
                                       {payload.data(), payload.size()}));
    frame_digest.push_back(WireFrameHash(frames.back()));
  }

  ZipfSampler zipf(kSweepFlows, skew);
  SplitMix64 rng{0x51d00000ull + static_cast<uint64_t>(skew * 1000) * 131 + queues};
  RssRebalancer::Options balancer_options;
  balancer_options.num_queues = queues;
  balancer_options.min_interval_ticks = 2;
  RssRebalancer balancer(balancer_options);

  CellResult cell;
  cell.skew = skew;
  cell.queues = queues;
  testing::ConservationLedger ledger_base = CollectLedger(bench);
  uint64_t tx_digest = 0;

  std::array<uint64_t, kern::kNetMaxQueues> window_base{};
  auto snap_queues = [&](std::array<uint64_t, kern::kNetMaxQueues>* out) {
    for (uint16_t q = 0; q < queues; ++q) {
      (*out)[q] = netdev->queue_stats(q).rx_packets.load();
    }
  };
  snap_queues(&window_base);

  std::vector<double> identity_windows, adaptive_windows;
  for (int phase = 0; phase < 2; ++phase) {
    bool adaptive = phase == 1;
    std::vector<double>& windows = adaptive ? adaptive_windows : identity_windows;
    for (int sent = 0; sent < kPhasePackets; sent += kBurst) {
      std::vector<kern::SkbPtr> skbs;
      skbs.reserve(kBurst);
      for (int i = 0; i < kBurst; ++i) {
        int flow = zipf.Sample(rng);
        skbs.push_back(kern::MakeSkb({frames[flow].data(), frames[flow].size()}));
        tx_digest += frame_digest[flow];
      }
      (void)bench.kernel.net().TransmitBatch(bench.peer_env->netdev(), std::move(skbs));
      bench.host->Pump();
      cell.sent += kBurst;

      if ((sent + kBurst) % kWindowPackets == 0) {
        std::array<uint64_t, kern::kNetMaxQueues> now{}, delta{};
        snap_queues(&now);
        for (uint16_t q = 0; q < queues; ++q) {
          delta[q] = now[q] - window_base[q];
        }
        window_base = now;
        windows.push_back(WindowImbalance(delta, queues));
        if (adaptive) {
          // Control tick: decay + observe + (maybe) reprogram the device.
          std::array<uint64_t, kFlowBuckets> load{};
          table->SnapshotBucketLoad(&load);
          RssRebalancer::Table plan{};
          if (balancer.Observe(load, &plan)) {
            (void)bench.sut_driver->ProgramReta(plan);
          }
          table->AdvanceGeneration();
        }
      }
    }
  }

  cell.delivered = netdev->stats().rx_packets.load();
  testing::ConservationLedger ledger = CollectLedger(bench) - ledger_base;
  cell.conserved = ledger.RxConserved(cell.sent);
  cell.digest_ok = tx_digest == rx_digest && ledger.digest_mismatches == 0;
  cell.identity_tail_imbalance = TailImbalance(identity_windows);
  cell.adaptive_tail_imbalance = TailImbalance(adaptive_windows);
  for (size_t w = 0; w < adaptive_windows.size(); ++w) {
    if (adaptive_windows[w] <= cell.identity_tail_imbalance) {
      cell.convergence_windows = static_cast<int>(w) + 1;
      break;
    }
  }
  cell.reprograms = balancer.stats().reprograms;
  cell.reta_dword_writes = bench.sut_nic.stats().reta_writes.load();
  cell.crossings_per_pkt = [&]() {
    Uchan::Stats stats = bench.ctx->AggregateCtlStats();
    return static_cast<double>(stats.downcall_batches + stats.wakeups) / cell.sent;
  }();
  cell.live_flows = table->LiveFlows();
  FlowTable::Stats stats = table->stats();
  cell.inserts = stats.inserts;
  cell.recycles = stats.recycles;
  cell.insert_failures = stats.insert_failures;
  cell.probe_steps_per_record =
      stats.records > 0 ? static_cast<double>(stats.probe_steps) / stats.records : 0;
  return cell;
}

struct MillionResult {
  uint64_t sent = 0;
  uint64_t delivered = 0;
  bool conserved = false;
  bool digest_ok = false;
  uint32_t live_flows = 0;
  uint32_t table_capacity = 0;
  double occupancy = 0;
  uint64_t inserts = 0;
  uint64_t recycles = 0;
  uint64_t insert_failures = 0;
  double probe_steps_per_record = 0;
  uint64_t reprograms = 0;
  double final_imbalance = 0;
};

MillionResult RunMillionFlows() {
  constexpr uint32_t kQueues = 4;
  NetBench::Options options;
  options.nic_queues = kQueues;
  NetBench bench(options);
  if (!bench.StartSut().ok()) {
    std::fprintf(stderr, "sut start failed\n");
    return {};
  }
  bench.MaskPeerIrq();
  kern::NetDevice* netdev = bench.kernel.net().Find(bench.SutIfname());
  FlowTable::Options table_options;  // default 2^21 slots: 1.1M at 52% load
  // Generations tick ~17 times over this phase; a live-flow population this
  // size must survive all of them (the sweep cells already exercise expiry).
  table_options.expiry_generations = 64;
  netdev->EnableFlowTracking(table_options);
  FlowTable* table = netdev->flow_table();

  uint64_t rx_digest = 0;
  netdev->set_rx_sink([&rx_digest](const kern::Skb& skb) {
    rx_digest += devices::EtherLink::FrameHash(skb.span());
  });

  RssRebalancer::Options balancer_options;
  balancer_options.num_queues = kQueues;
  balancer_options.min_interval_ticks = 1;
  RssRebalancer balancer(balancer_options);

  MillionResult result;
  testing::ConservationLedger ledger_base = CollectLedger(bench);
  uint64_t tx_digest = 0;
  std::vector<uint8_t> payload(26, 0xd1);
  uint8_t src_mac[6] = {0x02, 0x1b, 0, 0, 0, 0};
  std::vector<kern::SkbPtr> skbs;
  for (int k = 0; k < kMillionFlows; ++k) {
    // Every flow is a DISTINCT endpoint tuple: 14 bits of source port,
    // the rest in the locally-administered source MAC.
    uint32_t rest = static_cast<uint32_t>(k) >> 14;
    src_mac[2] = static_cast<uint8_t>(rest >> 8);
    src_mac[3] = static_cast<uint8_t>(rest);
    uint16_t src_port = static_cast<uint16_t>(1024 + (k & 0x3fff));
    auto frame = kern::BuildPacket(testing::kMacA, src_mac, src_port, kDstPort,
                                   {payload.data(), payload.size()});
    tx_digest += WireFrameHash(frame);
    skbs.push_back(kern::MakeSkb({frame.data(), frame.size()}));
    if (skbs.size() == kBurst || k + 1 == kMillionFlows) {
      (void)bench.kernel.net().TransmitBatch(bench.peer_env->netdev(), std::move(skbs));
      skbs.clear();
      bench.host->Pump();
    }
    if ((k + 1) % 65536 == 0) {
      std::array<uint64_t, kFlowBuckets> load{};
      table->SnapshotBucketLoad(&load);
      RssRebalancer::Table plan{};
      if (balancer.Observe(load, &plan)) {
        (void)bench.sut_driver->ProgramReta(plan);
      }
      table->AdvanceGeneration();
    }
  }

  result.sent = kMillionFlows;
  result.delivered = netdev->stats().rx_packets.load();
  testing::ConservationLedger ledger = CollectLedger(bench) - ledger_base;
  result.conserved = ledger.RxConserved(result.sent);
  result.digest_ok = tx_digest == rx_digest && ledger.digest_mismatches == 0;
  result.live_flows = table->LiveFlows();
  result.table_capacity = table->capacity();
  result.occupancy = static_cast<double>(result.live_flows) / result.table_capacity;
  FlowTable::Stats stats = table->stats();
  result.inserts = stats.inserts;
  result.recycles = stats.recycles;
  result.insert_failures = stats.insert_failures;
  result.probe_steps_per_record =
      stats.records > 0 ? static_cast<double>(stats.probe_steps) / stats.records : 0;
  result.reprograms = balancer.stats().reprograms;
  result.final_imbalance = balancer.last_imbalance();
  return result;
}

void WriteJson(const std::vector<CellResult>& cells, const MillionResult& million,
               const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"abl_flow_scale\",\n");
  std::fprintf(out, "  \"sweep_flows\": %d,\n  \"phase_packets\": %d,\n  \"cells\": [\n",
               kSweepFlows, kPhasePackets);
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    std::fprintf(out,
                 "    {\"skew\": %.1f, \"queues\": %u, \"sent\": %llu, "
                 "\"delivered\": %llu, \"conserved\": %s, \"digest_ok\": %s, "
                 "\"identity_tail_imbalance\": %.4f, \"adaptive_tail_imbalance\": %.4f, "
                 "\"convergence_windows\": %d, \"reprograms\": %llu, "
                 "\"reta_dword_writes\": %llu, \"crossings_per_pkt\": %.4f, "
                 "\"live_flows\": %u, \"inserts\": %llu, \"recycles\": %llu, "
                 "\"insert_failures\": %llu, \"probe_steps_per_record\": %.4f}%s\n",
                 cell.skew, cell.queues, static_cast<unsigned long long>(cell.sent),
                 static_cast<unsigned long long>(cell.delivered),
                 cell.conserved ? "true" : "false", cell.digest_ok ? "true" : "false",
                 cell.identity_tail_imbalance, cell.adaptive_tail_imbalance,
                 cell.convergence_windows, static_cast<unsigned long long>(cell.reprograms),
                 static_cast<unsigned long long>(cell.reta_dword_writes), cell.crossings_per_pkt,
                 cell.live_flows, static_cast<unsigned long long>(cell.inserts),
                 static_cast<unsigned long long>(cell.recycles),
                 static_cast<unsigned long long>(cell.insert_failures),
                 cell.probe_steps_per_record, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"million_flows\": {\"sent\": %llu, \"delivered\": %llu, "
               "\"conserved\": %s, \"digest_ok\": %s, \"live_flows\": %u, "
               "\"table_capacity\": %u, \"occupancy\": %.4f, \"inserts\": %llu, "
               "\"recycles\": %llu, \"insert_failures\": %llu, "
               "\"probe_steps_per_record\": %.4f, \"reprograms\": %llu, "
               "\"final_imbalance\": %.4f}\n",
               static_cast<unsigned long long>(million.sent),
               static_cast<unsigned long long>(million.delivered),
               million.conserved ? "true" : "false", million.digest_ok ? "true" : "false",
               million.live_flows, million.table_capacity, million.occupancy,
               static_cast<unsigned long long>(million.inserts),
               static_cast<unsigned long long>(million.recycles),
               static_cast<unsigned long long>(million.insert_failures),
               million.probe_steps_per_record, static_cast<unsigned long long>(million.reprograms),
               million.final_imbalance);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace sud

int main() {
  sud::Logger::Get().set_min_level(sud::LogLevel::kError);
  const double skews[] = {0.9, 1.1, 1.3};
  const uint32_t queue_counts[] = {2, 4, 8};
  std::vector<sud::CellResult> cells;
  std::printf("abl_flow_scale: Zipf skew x queues, identity vs adaptive RETA\n");
  std::printf("%-5s %-7s %14s %14s %12s %10s %12s\n", "skew", "queues", "identity tail",
              "adaptive tail", "converge(w)", "reprogs", "probe/rec");
  int exit_code = 0;
  for (double skew : skews) {
    for (uint32_t queues : queue_counts) {
      sud::CellResult cell = sud::RunCell(skew, queues);
      std::printf("%-5.1f %-7u %14.3f %14.3f %12d %10llu %12.4f\n", cell.skew, cell.queues,
                  cell.identity_tail_imbalance, cell.adaptive_tail_imbalance,
                  cell.convergence_windows, static_cast<unsigned long long>(cell.reprograms),
                  cell.probe_steps_per_record);
      if (!cell.conserved || !cell.digest_ok) {
        std::fprintf(stderr, "FAIL: s=%.1f q=%u conservation/digest (%llu sent, %llu delivered)\n",
                     cell.skew, cell.queues, static_cast<unsigned long long>(cell.sent),
                     static_cast<unsigned long long>(cell.delivered));
        exit_code = 1;
      }
      // The perf claim, gated: wherever identity RSS was actually imbalanced
      // (above the rebalancer's own act threshold) at skew >= 1.1, adapting
      // must cut the tail. Cells identity already balances are no-ops.
      if (cell.skew >= 1.1 && cell.identity_tail_imbalance > 1.15 &&
          cell.adaptive_tail_imbalance >= cell.identity_tail_imbalance) {
        std::fprintf(stderr, "FAIL: s=%.1f q=%u adaptive tail %.3f did not beat identity %.3f\n",
                     cell.skew, cell.queues, cell.adaptive_tail_imbalance,
                     cell.identity_tail_imbalance);
        exit_code = 1;
      }
      cells.push_back(cell);
    }
  }

  sud::MillionResult million = sud::RunMillionFlows();
  std::printf("\nmillion-flow phase: %u live flows (capacity %u, occupancy %.2f), "
              "%llu inserts, %llu recycles, %llu insert failures, %.4f probe/rec, "
              "%llu reprograms, final imbalance %.3f\n",
              million.live_flows, million.table_capacity, million.occupancy,
              static_cast<unsigned long long>(million.inserts),
              static_cast<unsigned long long>(million.recycles),
              static_cast<unsigned long long>(million.insert_failures),
              million.probe_steps_per_record,
              static_cast<unsigned long long>(million.reprograms), million.final_imbalance);
  if (!million.conserved || !million.digest_ok) {
    std::fprintf(stderr, "FAIL: million-flow conservation/digest (%llu sent, %llu delivered)\n",
                 static_cast<unsigned long long>(million.sent),
                 static_cast<unsigned long long>(million.delivered));
    exit_code = 1;
  }
  if (million.live_flows < 1000000u) {
    std::fprintf(stderr, "FAIL: million-flow phase tracked only %u live flows\n",
                 million.live_flows);
    exit_code = 1;
  }

  sud::WriteJson(cells, million, "BENCH_abl_flow_scale.json");
  return exit_code;
}
