// Jumbo-frame ablation: a receive flood swept over frame size {1500, 4000,
// 9000 bytes of MTU} x queue count {1, 4, 8}, against a 9000-byte-MTU SUT.
//
// The per-descriptor RX buffer shrinks with the queue count (8 MB arena /
// queues / 512 descriptors: 16 KB at one queue, 4 KB at four, 2 KB at
// eight), so the sweep walks the EOP-chain spectrum from "every frame fits
// one descriptor" to "a 9014-byte frame spans five": the same workload
// exercises the single-descriptor fast path and 2-, 3- and 5-descriptor
// chains, through the full stack — SimNic scatter, DescRingEngine cacheline
// bursts, e1000e reassembly, the chain netif_rx downcall, and the proxy's
// fragment-wise guard copy.
//
// Reported per row, into BENCH_abl_jumbo.json:
//   * conservation: frames delivered to the kernel == frames generated, and
//     the order-independent FNV digest of every delivered frame equals the
//     generators' digest (nothing truncated, torn, or substituted);
//   * chain shape: chained frames, descriptors per chained frame;
//   * per-packet crossings: uchan crossings and device descriptor-DMA
//     transactions (burst fetches + writebacks);
//   * link-bound modeled throughput (sanity: approaches line rate as the
//     frame grows) and the simulator's own wall clock.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/log.h"
#include "tests/harness.h"

namespace sud {
namespace {

using testing::NetBench;

constexpr int kFrames = 6000;
constexpr uint32_t kPeerWindow = 64;

struct Row {
  size_t frame_payload = 0;  // the swept "MTU" size
  uint32_t queues = 0;
  uint64_t sent = 0;
  uint64_t delivered = 0;
  bool digest_match = false;
  uint64_t chain_frames = 0;
  uint64_t chain_descs = 0;
  double frags_per_chain = 0;
  double crossings_per_pkt = 0;
  double desc_dma_per_pkt = 0;
  uint32_t rx_buffer_bytes = 0;
  double throughput_mbps = 0;
  double sim_wall_us = 0;
};

Row RunOne(size_t mtu_size, uint32_t queues) {
  NetBench::Options options;
  options.nic_queues = queues;
  options.mtu = static_cast<uint32_t>(kern::kJumboMtu);
  NetBench bench(options);
  (void)bench.StartSut();
  bench.MaskPeerIrq();

  kern::NetDevice* netdev = bench.kernel.net().Find(bench.SutIfname());
  // Frame = payload + 22-byte compressed header; sized so the on-wire frame
  // is mtu_size + 14, the classic MTU-to-frame mapping.
  std::vector<uint8_t> payload(mtu_size - kern::kTransportHeaderSize, 0x5a);

  // Order-independent digest of everything the kernel accepted.
  uint64_t delivered_digest = 0;
  netdev->set_rx_sink([&](const kern::Skb& skb) {
    delivered_digest += devices::EtherLink::FrameHash(skb.span());
  });

  std::vector<devices::EtherLink::PeerFlow> flows =
      bench.BuildQueueFlows(queues, {payload.data(), payload.size()}, kFrames, kPeerWindow);

  uint64_t desc_dma_before = bench.sut_nic.stats().desc_fetch_dma.load() +
                             bench.sut_nic.stats().desc_writeback_dma.load();
  auto start = std::chrono::steady_clock::now();
  bench.link.RunPeersSerial(flows, [&]() { bench.host->Pump(); }, /*side=*/1);
  for (int spin = 0;
       spin < 1000 && netdev->stats().rx_packets.load() < static_cast<uint64_t>(kFrames);
       ++spin) {
    bench.host->Pump();
  }
  double wall_us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
          .count();

  Row row;
  row.frame_payload = mtu_size;
  row.queues = queues;
  row.sim_wall_us = wall_us;
  row.rx_buffer_bytes = bench.sut_driver->rx_buffer_size();
  uint64_t gen_digest = 0;
  for (uint32_t q = 0; q < queues; ++q) {
    row.sent += bench.link.peer_stats(q).frames.load();
    gen_digest += bench.link.peer_stats(q).frame_hash.load();
  }
  row.delivered = netdev->stats().rx_packets.load();
  row.digest_match = gen_digest == delivered_digest;
  row.chain_frames = bench.sut_nic.stats().rx_chain_frames.load();
  row.chain_descs = bench.sut_nic.stats().rx_chain_descs.load();
  row.frags_per_chain =
      row.chain_frames > 0 ? static_cast<double>(row.chain_descs) / row.chain_frames : 1.0;
  uint64_t crossings = 0;
  for (uint32_t q = 0; q < queues; ++q) {
    Uchan::Stats stats = bench.ctx->ctl(static_cast<uint16_t>(q)).stats();
    crossings += stats.downcall_batches + stats.wakeups;
  }
  row.crossings_per_pkt = static_cast<double>(crossings) / kFrames;
  uint64_t desc_dma_after = bench.sut_nic.stats().desc_fetch_dma.load() +
                            bench.sut_nic.stats().desc_writeback_dma.load();
  row.desc_dma_per_pkt = static_cast<double>(desc_dma_after - desc_dma_before) / kFrames;
  // Link-bound modeled throughput for this frame size (payload bits over
  // wire time, Figure 8 style).
  double wire_bytes = static_cast<double>(mtu_size + kern::kEthHeaderBytes +
                                          devices::kEthWireOverhead);
  row.throughput_mbps = static_cast<double>(mtu_size) * 8.0 / (wire_bytes * 8.0) * 1000.0;
  return row;
}

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"abl_jumbo\",\n");
  std::fprintf(out, "  \"workload\": \"rx_flood_frame_size_sweep\",\n  \"frames\": %d,\n",
               kFrames);
  std::fprintf(out, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"frame_payload\": %zu, \"queues\": %u, \"rx_buffer_bytes\": %u, "
                 "\"sent\": %llu, \"delivered\": %llu, \"digest_match\": %s, "
                 "\"chain_frames\": %llu, \"chain_descs\": %llu, \"frags_per_chain\": %.3f, "
                 "\"crossings_per_pkt\": %.4f, \"desc_dma_per_pkt\": %.4f, "
                 "\"throughput_mbps\": %.2f, \"sim_wall_us\": %.0f}%s\n",
                 row.frame_payload, row.queues, row.rx_buffer_bytes,
                 static_cast<unsigned long long>(row.sent),
                 static_cast<unsigned long long>(row.delivered),
                 row.digest_match ? "true" : "false",
                 static_cast<unsigned long long>(row.chain_frames),
                 static_cast<unsigned long long>(row.chain_descs), row.frags_per_chain,
                 row.crossings_per_pkt, row.desc_dma_per_pkt, row.throughput_mbps,
                 row.sim_wall_us, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace sud

int main() {
  sud::Logger::Get().set_min_level(sud::LogLevel::kError);
  const std::vector<size_t> sizes = {1500, 4000, 9000};
  const std::vector<uint32_t> queue_counts = {1, 4, 8};
  std::vector<sud::Row> rows;
  for (size_t size : sizes) {
    for (uint32_t queues : queue_counts) {
      rows.push_back(sud::RunOne(size, queues));
    }
  }
  std::printf("\nabl_jumbo: rx flood, %d frames per row, 9000-byte-MTU SUT\n", sud::kFrames);
  std::printf("%-7s %-7s %-9s %10s %10s %8s %12s %12s %10s %8s\n", "size", "queues", "bufsz",
              "delivered", "digest", "chains", "frags/chain", "crossings", "descDMA",
              "wall(ms)");
  bool all_ok = true;
  for (const sud::Row& row : rows) {
    bool ok = row.delivered == static_cast<uint64_t>(sud::kFrames) && row.digest_match;
    all_ok &= ok;
    std::printf("%-7zu %-7u %-9u %10llu %10s %8llu %12.2f %12.4f %10.4f %8.1f\n",
                row.frame_payload, row.queues, row.rx_buffer_bytes,
                (unsigned long long)row.delivered, row.digest_match ? "match" : "MISMATCH",
                (unsigned long long)row.chain_frames, row.frags_per_chain,
                row.crossings_per_pkt, row.desc_dma_per_pkt, row.sim_wall_us / 1000.0);
  }
  std::printf("\nconservation %s: every generated frame delivered, bit-exact, at every\n",
              all_ok ? "HOLDS" : "VIOLATED");
  std::printf("frame size x queue count (chains reassembled across descriptor buffers).\n");
  sud::WriteJson(rows, "BENCH_abl_jumbo.json");
  return all_ok ? 0 : 1;
}
