// Multi-queue NIC ablation: TCP_STREAM-shaped receive flood at queue counts
// {1, 2, 4, 8}.
//
// Queue count 1 runs the exact PR-1 single-lane configuration (one uchan
// ring pair, pumped dispatch). Higher queue counts shard the uchan, steer 64
// flows across the rings with RSS, and — when the host has more than one
// hardware thread — pump each shard on its own thread, so the driver-side
// reap, the proxy's guard copy + checksum and the stack delivery for
// different queues genuinely overlap. On a single-core host the per-queue
// threads would only timeslice, so the bench falls back to the pumped
// dispatcher and the comparison isolates the *algorithmic* effect of
// sharding (per-shard rings, no shared lock, per-queue NAPI arrays).
//
// Reported per queue count, into BENCH_abl_nic_queues.json:
//   * modeled throughput (link-bound, as in Figure 8),
//   * simulator host wall-clock for the whole flood and the speedup vs the
//     single-lane row — the number the multi-queue tentpole is judged on,
//   * per-queue uchan crossings/packet and per-queue charged kernel/driver
//     nanoseconds (the sharded channel's own accounting),
//   * per-queue rx packet counts (RSS balance).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/base/log.h"
#include "tests/harness.h"

namespace sud {
namespace {

using testing::NetBench;

constexpr int kPackets = 40000;
constexpr int kBurst = 256;      // lock-step window: fits every queue's ring
constexpr uint16_t kFlows = 64;  // distinct 4-tuples for RSS to spread
constexpr size_t kTcpMss = 1448;
constexpr double kTcpWireBytesPerSeg = 1538;

struct QueueRow {
  uint64_t rx_packets = 0;
  double crossings_per_pkt = 0;
  uint64_t kernel_ns = 0;
  uint64_t driver_ns = 0;
};

struct Row {
  uint32_t queues = 0;
  bool threaded = false;
  double throughput_mbps = 0;
  double sim_wall_us = 0;
  double speedup_vs_single_lane = 0;
  double crossings_per_pkt = 0;  // aggregate
  uint64_t delivered = 0;
  std::vector<QueueRow> per_queue;
};

Row RunOne(uint32_t queues, bool threaded) {
  NetBench::Options options;
  options.nic_queues = queues;
  NetBench bench(options);
  (void)bench.StartSut(threaded ? uml::DriverHost::Mode::kThreadedPerQueue
                                : uml::DriverHost::Mode::kPumped);
  bench.MaskPeerIrq();
  bench.machine.cpu().Reset();

  std::atomic<uint64_t> delivered{0};
  kern::NetDevice* netdev = bench.kernel.net().Find(bench.SutIfname());
  netdev->set_rx_sink([&](const kern::Skb&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });

  std::vector<uint8_t> payload(kTcpMss, 0x5a);
  auto start = std::chrono::steady_clock::now();
  // Whole-run safety bound so a regression can never wedge CI: past it the
  // loops stop waiting and the delivered count exposes the shortfall.
  auto run_deadline = start + std::chrono::seconds(60);
  uint64_t sent = 0;
  while (sent < kPackets) {
    int burst = static_cast<int>(std::min<uint64_t>(kBurst, kPackets - sent));
    (void)bench.PeerSendFlowBurst(33000, 80, {payload.data(), payload.size()}, burst, kFlows);
    sent += burst;
    if (threaded) {
      // Lock-step window: wait for the per-queue threads to drain this burst
      // before arming the next one (keeps every ring inside its depth).
      while (delivered.load(std::memory_order_relaxed) < sent &&
             std::chrono::steady_clock::now() < run_deadline) {
        std::this_thread::yield();
      }
    } else {
      bench.host->Pump();
    }
  }
  if (threaded) {
    while (delivered.load(std::memory_order_relaxed) < sent &&
           std::chrono::steady_clock::now() < run_deadline) {
      std::this_thread::yield();
    }
  }
  double wall_us = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  Row row;
  row.queues = queues;
  row.threaded = threaded;
  row.sim_wall_us = wall_us;
  row.delivered = delivered.load();
  // Link-bound modeled throughput, as in Figure 8's TCP_STREAM row.
  double wire_ns = kPackets * kTcpWireBytesPerSeg * 8.0;
  row.throughput_mbps = kTcpMss * 8.0 * kPackets / wire_ns * 1000.0;
  uint64_t total_crossings = 0;
  for (uint32_t q = 0; q < queues; ++q) {
    Uchan::Stats stats = bench.ctx->ctl(q).stats();
    QueueRow qr;
    qr.rx_packets = netdev->queue_stats(static_cast<uint16_t>(q)).rx_packets.load();
    qr.crossings_per_pkt =
        qr.rx_packets > 0
            ? static_cast<double>(stats.downcall_batches + stats.wakeups) / qr.rx_packets
            : 0;
    qr.kernel_ns = stats.kernel_ns;
    qr.driver_ns = stats.driver_ns;
    total_crossings += stats.downcall_batches + stats.wakeups;
    row.per_queue.push_back(qr);
  }
  row.crossings_per_pkt = static_cast<double>(total_crossings) / kPackets;
  return row;
}

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"abl_nic_queues\",\n");
  std::fprintf(out, "  \"workload\": \"tcp_stream_rx\",\n  \"packets\": %d,\n", kPackets);
  std::fprintf(out, "  \"host_threads\": %u,\n  \"rows\": [\n",
               std::thread::hardware_concurrency());
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"queues\": %u, \"threaded\": %s, \"throughput_mbps\": %.2f, "
                 "\"delivered\": %llu, \"sim_wall_us\": %.0f, "
                 "\"speedup_vs_single_lane\": %.3f, \"crossings_per_pkt\": %.4f, "
                 "\"per_queue\": [",
                 row.queues, row.threaded ? "true" : "false", row.throughput_mbps,
                 static_cast<unsigned long long>(row.delivered), row.sim_wall_us,
                 row.speedup_vs_single_lane, row.crossings_per_pkt);
    for (size_t q = 0; q < row.per_queue.size(); ++q) {
      const QueueRow& qr = row.per_queue[q];
      std::fprintf(out,
                   "%s{\"rx_packets\": %llu, \"crossings_per_pkt\": %.4f, "
                   "\"kernel_ns\": %llu, \"driver_ns\": %llu}",
                   q == 0 ? "" : ", ", static_cast<unsigned long long>(qr.rx_packets),
                   qr.crossings_per_pkt, static_cast<unsigned long long>(qr.kernel_ns),
                   static_cast<unsigned long long>(qr.driver_ns));
    }
    std::fprintf(out, "]}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace sud

int main() {
  sud::Logger::Get().set_min_level(sud::LogLevel::kError);
  bool multicore = std::thread::hardware_concurrency() > 1;
  const std::vector<uint32_t> queue_counts = {1, 2, 4, 8};
  std::vector<sud::Row> rows(queue_counts.size());
  // Best of three runs per configuration, interleaved round-robin across the
  // configurations: the flood is ~50 ms and host noise (scheduler quota,
  // thermal) is time-correlated, so back-to-back attempts of one config
  // would all eat the same throttling window.
  for (int attempt = 0; attempt < 3; ++attempt) {
    for (size_t i = 0; i < queue_counts.size(); ++i) {
      sud::Row row = sud::RunOne(queue_counts[i], queue_counts[i] > 1 && multicore);
      if (rows[i].queues == 0 || row.sim_wall_us < rows[i].sim_wall_us) {
        rows[i] = row;
      }
    }
  }
  double single_lane_wall = rows.front().sim_wall_us;
  std::printf("\nabl_nic_queues: TCP_STREAM rx flood, %d packets, %u flows\n", sud::kPackets,
              unsigned{sud::kFlows});
  std::printf("%-7s %-9s %12s %14s %10s %12s %10s\n", "queues", "mode", "Mbit/s", "delivered",
              "wall(us)", "crossings", "speedup");
  for (sud::Row& row : rows) {
    row.speedup_vs_single_lane = single_lane_wall / row.sim_wall_us;
    std::printf("%-7u %-9s %12.0f %14llu %10.0f %12.4f %9.2fx\n", row.queues,
                row.threaded ? "threaded" : "pumped", row.throughput_mbps,
                static_cast<unsigned long long>(row.delivered), row.sim_wall_us,
                row.crossings_per_pkt, row.speedup_vs_single_lane);
  }
  sud::WriteJson(rows, "BENCH_abl_nic_queues.json");
  return 0;
}
