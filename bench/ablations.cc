// Ablation benches for the design choices DESIGN.md calls out (§3.1.2, §4.2,
// §6 of the paper), measured in *simulated CPU nanoseconds per operation* —
// the currency the Figure 8 model is built on:
//
//   abl/uchan_batching     async-downcall batching on/off: kernel entries
//                          per netif_rx downcall
//   abl/uchan_batch_depth  NAPI rx batch depth {1,4,16,64}: uchan crossings
//                          per packet fall monotonically with depth
//   abl/iotlb_geometry     IOTLB sets x ways sweep: hit rate vs working set
//   abl/zero_copy          shared-buffer hand-off vs copying transmit path
//   abl/guard_fusion       guard-copy fused with the checksum pass vs a
//                          separate pass
//   abl/msi_mask_vs_remap  masking an interrupt via PCI config vs rewriting
//                          the interrupt-remapping table (§6 "it might be
//                          faster to mask an interrupt by remapping")
//   abl/wakeup_latency     UDP_RR CPU sensitivity to the 4 us process wakeup
//                          (explains the 2x CPU row of Figure 8)

#include <benchmark/benchmark.h>

#include "src/drivers/malicious.h"
#include "src/base/log.h"
#include "tests/harness.h"

namespace sud {
namespace {

using testing::kMacA;
using testing::kMacB;
using testing::NetBench;

// Simulated kernel-entry count and CPU-ns per packet with and without
// downcall batching.
void BM_UchanBatching(benchmark::State& state) {
  bool batching = state.range(0) != 0;
  NetBench::Options options;
  options.sud.uchan.batch_async_downcalls = batching;
  NetBench bench(options);
  (void)bench.StartSut();
  std::vector<uint8_t> payload(64, 0x1);

  uint64_t packets = 0;
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) {
      (void)bench.PeerSend(1, 80, {payload.data(), payload.size()});
    }
    bench.host->Pump();
    packets += 16;
  }
  const Uchan::Stats& stats = bench.ctx->ctl().stats();
  state.counters["kernel_entries_per_pkt"] =
      static_cast<double>(stats.downcall_batches) / packets;
  state.counters["sim_cpu_ns_per_pkt"] =
      static_cast<double>(bench.machine.cpu().total_busy()) / packets;
  state.SetLabel(batching ? "batched" : "unbatched");
}
BENCHMARK(BM_UchanBatching)->Arg(1)->Arg(0);

// NAPI rx batch depth sweep: how many packets the driver accumulates before
// entering the kernel with the netif_rx array. Crossings (kernel entries +
// wakeups) per packet must fall monotonically as depth grows — the
// Section 3.1.2 batching win, quantified.
void BM_UchanBatchDepth(benchmark::State& state) {
  uint32_t depth = static_cast<uint32_t>(state.range(0));
  NetBench bench;
  (void)bench.StartSut();
  bench.host->runtime()->set_rx_batch_depth(depth);
  std::vector<uint8_t> payload(64, 0x1);

  uint64_t packets = 0;
  for (auto _ : state) {
    for (int i = 0; i < 4; ++i) {
      (void)bench.PeerSendBurst(1, 80, {payload.data(), payload.size()}, 16);
      bench.host->Pump();
    }
    packets += 64;
  }
  Uchan::Stats stats = bench.ctx->ctl().stats();
  state.counters["kernel_entries_per_pkt"] =
      static_cast<double>(stats.downcall_batches) / packets;
  state.counters["crossings_per_pkt"] =
      static_cast<double>(stats.downcall_batches + stats.wakeups) / packets;
  state.counters["sim_cpu_ns_per_pkt"] =
      static_cast<double>(bench.machine.cpu().total_busy()) / packets;
  state.SetLabel("depth=" + std::to_string(depth));
}
BENCHMARK(BM_UchanBatchDepth)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// IOTLB geometry sweep: hit rate of a striding DMA working set against the
// cache shape. The modeled iotlb_miss cost makes the geometry visible in
// simulated CPU ns exactly the way Section 3.1.2's invalidation-avoidance
// argument needs it to be.
void BM_IotlbGeometry(benchmark::State& state) {
  uint32_t sets = static_cast<uint32_t>(state.range(0));
  uint32_t ways = static_cast<uint32_t>(state.range(1));
  CpuModel cpu;
  hw::Iommu iommu(hw::IommuMode::kIntelVtd, &cpu);
  iommu.set_iotlb_geometry({sets, ways});
  constexpr uint16_t kSource = 0x100;
  (void)iommu.CreateContext(kSource);
  constexpr uint64_t kWorkingSetPages = 48;  // e1000e rx ring's buffer pages
  (void)iommu.Map(kSource, 0x100000, 0x800000, kWorkingSetPages * hw::kPageSize,
                  /*readable=*/true, /*writable=*/true);

  uint64_t accesses = 0;
  for (auto _ : state) {
    for (uint64_t page = 0; page < kWorkingSetPages; ++page) {
      benchmark::DoNotOptimize(
          iommu.Translate(kSource, 0x100000 + page * hw::kPageSize, 64, false));
      ++accesses;
    }
  }
  const hw::Iommu::IotlbStats& stats = iommu.iotlb_stats();
  state.counters["hit_rate"] =
      static_cast<double>(stats.hits) / static_cast<double>(stats.hits + stats.misses);
  state.counters["evictions"] = static_cast<double>(stats.evictions);
  state.counters["sim_cpu_ns_per_access"] = static_cast<double>(cpu.total_busy()) / accesses;
  state.SetLabel(std::to_string(sets) + "x" + std::to_string(ways));
}
BENCHMARK(BM_IotlbGeometry)
    ->Args({4, 1})
    ->Args({4, 4})
    ->Args({16, 4})
    ->Args({64, 4})
    ->Args({16, 8});

// Transmit path: zero-copy shared-buffer hand-off vs an extra bounce copy.
void BM_ZeroCopy(benchmark::State& state) {
  bool zero_copy = state.range(0) != 0;
  NetBench::Options options;
  options.proxy.zero_copy = zero_copy;
  NetBench bench(options);
  (void)bench.StartSut();
  std::vector<uint8_t> payload(1400, 0x2);

  uint64_t packets = 0;
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) {
      auto frame = kern::BuildPacket(kMacB, kMacA, 1, 2, {payload.data(), payload.size()});
      (void)bench.kernel.net().Transmit("eth0", kern::MakeSkb({frame.data(), frame.size()}));
    }
    bench.host->Pump();
    packets += 16;
  }
  state.counters["sim_cpu_ns_per_pkt"] =
      static_cast<double>(bench.machine.cpu().total_busy()) / packets;
  state.SetLabel(zero_copy ? "zero-copy" : "bounce-copy");
}
BENCHMARK(BM_ZeroCopy)->Arg(1)->Arg(0);

// Receive guard copy: fused with the checksum pass vs a separate pass.
void BM_GuardFusion(benchmark::State& state) {
  bool fused = state.range(0) != 0;
  NetBench::Options options;
  options.proxy.fuse_guard_with_checksum = fused;
  NetBench bench(options);
  (void)bench.StartSut();
  std::vector<uint8_t> payload(1400, 0x3);

  uint64_t packets = 0;
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) {
      (void)bench.PeerSend(1, 80, {payload.data(), payload.size()});
    }
    bench.host->Pump();
    packets += 16;
  }
  state.counters["sim_cpu_ns_per_pkt"] =
      static_cast<double>(bench.machine.cpu().total_busy()) / packets;
  state.SetLabel(fused ? "fused-with-checksum" : "separate-pass");
}
BENCHMARK(BM_GuardFusion)->Arg(1)->Arg(0);

// Masking an interrupt: PCI-config MSI mask vs interrupt-remapping rewrite.
void BM_MsiMaskVsRemap(benchmark::State& state) {
  bool use_remap = state.range(0) != 0;
  NetBench::Options options;
  options.machine.interrupt_remapping = use_remap;
  NetBench bench(options);
  auto attack = std::make_unique<drivers::NeverAckDriver>();
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));

  CpuModel& cpu = bench.machine.cpu();
  uint64_t operations = 0;
  for (auto _ : state) {
    if (use_remap) {
      cpu.Charge(kAccountKernel, cpu.costs().irq_remap_update);
      (void)bench.machine.iommu().SetInterruptRemapEntry(bench.ctx->source_id(),
                                                         bench.ctx->irq_vector(), std::nullopt);
      (void)bench.machine.iommu().SetInterruptRemapEntry(
          bench.ctx->source_id(), bench.ctx->irq_vector(), bench.ctx->irq_vector());
    } else {
      (void)p->TriggerInterrupt();  // second unacked interrupt masks via config
      (void)p->TriggerInterrupt();
      (void)bench.ctx->InterruptAck();  // unmask for the next round
    }
    ++operations;
  }
  state.counters["sim_cpu_ns_per_op"] =
      static_cast<double>(cpu.total_busy()) / operations;
  state.SetLabel(use_remap ? "remap-table-rewrite" : "pci-config-mask");
}
BENCHMARK(BM_MsiMaskVsRemap)->Arg(0)->Arg(1);

// Joint sweep: NAPI rx batch depth x IOTLB geometry against UDP_RR-style
// transaction latency. Batching depth trades crossings for queueing delay,
// and the IOTLB shape decides how much of the descriptor+buffer working set
// translates without a page walk; this sweep shows where the knee sits.
//
// Result (recorded from this sweep, and folded into the defaults): UDP_RR
// latency is INSENSITIVE to rx_batch_depth — with one transaction in flight
// the rx array always flushes on the next kernel entry (Wait/ack), never on
// the depth trigger — so the deep default (64) that wins the streaming
// benches costs RR nothing and stays (UmlRuntime::rx_batch_depth_). The
// IOTLB knee is at 16x4: the RR working set (a handful of descriptor and
// buffer pages per direction) already fits, larger shapes only add lookup
// cost without lifting the hit rate, and 4x1 visibly pays extra page walks.
// Iommu::IotlbGeometry keeps {16, 4}.
void BM_RxDepthIotlbRr(benchmark::State& state) {
  uint32_t depth = static_cast<uint32_t>(state.range(0));
  uint32_t sets = static_cast<uint32_t>(state.range(1));
  uint32_t ways = static_cast<uint32_t>(state.range(2));
  NetBench bench;
  bench.machine.iommu().set_iotlb_geometry({sets, ways});
  (void)bench.StartSut();
  bench.host->runtime()->set_rx_batch_depth(depth);
  std::vector<uint8_t> payload(42, 0x5);

  uint64_t transactions = 0;
  for (auto _ : state) {
    (void)bench.PeerSend(1, 80, {payload.data(), payload.size()});
    bench.host->Pump();
    auto reply = kern::BuildPacket(kMacB, kMacA, 2, 1, {payload.data(), payload.size()});
    (void)bench.kernel.net().Transmit("eth0", kern::MakeSkb({reply.data(), reply.size()}));
    bench.host->Pump();
    ++transactions;
  }
  // All accounts, including the device: IOTLB walk costs land on the device
  // account and must be visible to the sweep.
  state.counters["sim_ns_per_txn"] =
      static_cast<double>(bench.machine.cpu().total_busy()) / transactions;
  const hw::Iommu::IotlbStats& iotlb = bench.machine.iommu().iotlb_stats();
  state.counters["iotlb_hit_rate"] =
      static_cast<double>(iotlb.hits) / static_cast<double>(iotlb.hits + iotlb.misses);
  state.SetLabel("depth=" + std::to_string(depth) + " iotlb=" + std::to_string(sets) + "x" +
                 std::to_string(ways));
}
BENCHMARK(BM_RxDepthIotlbRr)
    ->Args({1, 16, 4})
    ->Args({16, 16, 4})
    ->Args({64, 16, 4})
    ->Args({1, 4, 1})
    ->Args({64, 4, 1})
    ->Args({1, 64, 8})
    ->Args({64, 64, 8});

// UDP_RR sensitivity to the process wakeup cost: the §5.1 explanation for
// the 2x CPU row. Sweeps kProcessWakeup from 0 to 8 us.
void BM_WakeupLatency(benchmark::State& state) {
  SimTime wakeup_ns = static_cast<SimTime>(state.range(0));
  NetBench bench;
  CpuCosts costs;
  costs.process_wakeup = wakeup_ns;
  bench.machine.cpu().set_costs(costs);
  (void)bench.StartSut();
  std::vector<uint8_t> payload(42, 0x4);

  uint64_t transactions = 0;
  for (auto _ : state) {
    (void)bench.PeerSend(1, 80, {payload.data(), payload.size()});
    bench.host->Pump();
    auto reply = kern::BuildPacket(kMacB, kMacA, 2, 1, {payload.data(), payload.size()});
    (void)bench.kernel.net().Transmit("eth0", kern::MakeSkb({reply.data(), reply.size()}));
    bench.host->Pump();
    ++transactions;
  }
  state.counters["sim_cpu_ns_per_txn"] =
      static_cast<double>(bench.machine.cpu().total_busy()) / transactions;
  state.counters["wakeup_ns"] = static_cast<double>(wakeup_ns);
}
BENCHMARK(BM_WakeupLatency)->Arg(0)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(8000);

}  // namespace
}  // namespace sud

int main(int argc, char** argv) {
  sud::Logger::Get().set_min_level(sud::LogLevel::kError);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
