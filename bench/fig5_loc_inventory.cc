// Figure 5 reproduction: lines of code per SUD component, counted from this
// source tree and printed next to the paper's numbers.
//
// The paper counts C for a real kernel; this reproduction counts C++ for a
// simulated one, so absolute numbers differ — the comparison is structural:
// which component is big, which is small, and the USB host proxy's zero.

#include <dirent.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace {

int CountLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return 0;
  }
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
  }
  return lines;
}

int CountComponent(const std::vector<std::string>& files) {
  int total = 0;
  for (const std::string& file : files) {
    total += CountLines(file);
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  // Source root: overridable for out-of-tree runs.
  std::string root = argc > 1 ? argv[1] : "";
  if (root.empty()) {
    // Try the build-relative location first, then cwd.
    for (const char* candidate : {"../src", "src", "../../src"}) {
      std::ifstream probe(std::string(candidate) + "/sud/safe_pci.cc");
      if (probe) {
        root = std::string(candidate) + "/";
        break;
      }
    }
  } else {
    root += "/src/";
  }
  if (root.empty()) {
    std::fprintf(stderr, "cannot locate the src/ tree; pass the repo root as argv[1]\n");
    return 1;
  }

  struct Component {
    const char* name;
    std::vector<std::string> files;
    int paper_loc;
  };
  const Component components[] = {
      {"Safe PCI device access module",
       {root + "sud/safe_pci.h", root + "sud/safe_pci.cc", root + "sud/dma_space.h",
        root + "sud/dma_space.cc", root + "sud/shared_pool.h", root + "sud/shared_pool.cc",
        root + "sud/uchan.h", root + "sud/uchan.cc", root + "sud/proto.h"},
       2800},
      {"Ethernet proxy driver",
       {root + "sud/proxy_ethernet.h", root + "sud/proxy_ethernet.cc"},
       300},
      {"Wireless proxy driver",
       {root + "sud/proxy_wireless.h", root + "sud/proxy_wireless.cc"},
       600},
      {"Audio card proxy driver",
       {root + "sud/proxy_audio.h", root + "sud/proxy_audio.cc"},
       550},
      {"USB host proxy driver", {root + "sud/proxy_usb.h"}, 0},
      {"SUD-UML runtime",
       {root + "uml/uml_runtime.h", root + "uml/uml_runtime.cc", root + "uml/driver_env.h",
        root + "uml/driver_host.h", root + "uml/driver_host.cc"},
       5000},
  };

  std::printf("\nFigure 5: lines of code per SUD component (this repo vs the paper)\n");
  std::printf("%-34s %10s %12s\n", "Feature", "this repo", "paper (C)");
  std::printf("%s\n", std::string(58, '-').c_str());
  for (const Component& component : components) {
    std::printf("%-34s %10d %12d\n", component.name, CountComponent(component.files),
                component.paper_loc);
  }
  std::printf("\nNotes: the USB host class needs no device-specific proxy code in either\n");
  std::printf("implementation (interrupt forwarding + DMA + MMIO come from the SUD core);\n");
  std::printf("proxy_usb.h contains only the generic input-report downcall (~15 lines of\n");
  std::printf("logic). Absolute counts differ (C++ simulation vs kernel C); relative\n");
  std::printf("weights match: the safe-PCI core and the UML runtime dominate, proxies\n");
  std::printf("are hundreds of lines each.\n");
  return 0;
}
