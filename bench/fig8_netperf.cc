// Figure 8 reproduction: the four netperf benchmarks of Section 5.1, run
// against both driver configurations — the e1000e in-kernel (trusted) and
// the same driver under SUD (untrusted user-space process).
//
// Methodology. Real packets flow through the real stack (device rings, MSI,
// proxies, uchans, SUD-UML); every mechanism charges the CpuModel. Wall time
// comes from the workload model:
//   * TCP_STREAM: link-bound — 1448-byte MSS segments occupy 1538 bytes of
//     gigabit wire each (our compressed 22-byte header stands in for the
//     real 66 bytes of Ethernet+IP+TCP; wire accounting uses the real size),
//     so both configurations saturate at ~941 Mbit/s and the interesting
//     number is CPU%.
//   * UDP_STREAM: a closed-loop sender — netperf's send path on the paper's
//     1.4 GHz Centrino sustains ~3.1 us per 64-byte sendto(); SUD's extra
//     copy-to-shared-buffer and uchan enqueue lengthen that path slightly.
//   * UDP_RR: one transaction in flight — the round trip includes the
//     client machine + wire (a fixed base) plus every charged nanosecond of
//     the server path; SUD pays two process wakeups (~4 us each, §5.1) per
//     transaction, which is why the paper reports 2x CPU.
// CPU% is charged-busy over wall across the Thinkpad's two cores, as
// netperf's CPU measurement reports it — computed through the core-affinity
// wall-time mapping (CpuModel's ScheduleOnCores): per-queue shard charges are
// schedulable units, so a multi-queue run is billed the makespan of its
// busiest core, while the single-queue rows reduce bit-for-bit to the legacy
// two-core formula.
//
// The absolute calibration (app costs, client base RTT) is fit to the
// paper's *kernel-driver* rows once; the SUD deltas then emerge entirely
// from the simulated mechanisms. Expected shape: equal throughput on
// streams, ~8-30% relative CPU overhead, ~2x CPU on UDP_RR.
//
// Besides the table, the bench writes BENCH_fig8_netperf.json — modeled results,
// uchan crossing counts per packet and the *simulator's own* wall-clock per
// run — so the perf trajectory of the reproduction is tracked across PRs.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/base/log.h"
#include "tests/harness.h"

namespace sud {
namespace {

using testing::kMacA;
using testing::kMacB;
using testing::NetBench;

// Workload calibration (the paper's testbed constants).
constexpr int kStreamPackets = 40000;
constexpr int kRrTransactions = 4000;
constexpr double kCores = 2.0;                  // dual-core Centrino
constexpr double kTcpAppNsPerPkt = 1350;        // netperf+TCP rx path per MSS
constexpr double kUdpSendBaseNs = 1700;         // sendto() syscall+socket+UDP
constexpr double kUdpTxWaitNs = 950;            // socket-buffer backpressure (idle)
constexpr double kUdpRxAppNsPerPkt = 380;       // recvfrom()+accounting
constexpr double kRrClientBaseNs = 98000;       // client machine + 2x wire + sched
constexpr size_t kTcpMss = 1448;
constexpr size_t kUdpPayload = 64 - 22;         // 64-byte UDP packets (paper)
constexpr double kTcpWireBytesPerSeg = 1538;    // 1448 + eth/ip/tcp + preamble/ifg
constexpr double kUdpWireBytesPerPkt = 64 + 14 + 24;
// Jumbo TCP_STREAM (9000-byte MTU, beyond the paper's testbed): MSS and the
// wire occupancy per segment at the jumbo MTU, same construction as the
// standard-MTU constants above (MSS = MTU - 52, wire = MSS + 66 + 24).
constexpr size_t kJumboTcpMss = 8948;
constexpr double kJumboTcpWireBytesPerSeg = 9038;
// Frag-skb geometry for the jumbo TX stream: head + page-sized frags, each
// fragment staged into one standard 2048-byte pool buffer -> 5 descriptors.
constexpr size_t kJumboHeadBytes = 2048;
constexpr size_t kJumboFragBytes = 2048;

struct Row {
  std::string test;
  std::string driver;
  double value;
  std::string unit;
  double cpu_pct;
  double paper_value;
  double paper_cpu;
  // Fast-path accounting, filled for the SUD rows (zero for in-kernel).
  double uchan_crossings_per_pkt = 0;  // kernel entries + wakeups per packet
  double uchan_msgs_per_pkt = 0;       // ring messages per packet
  // Descriptor-path accounting (both drivers): device-side descriptor DMA
  // transactions (cacheline burst fetches + completion writebacks) and
  // driver-side descriptor window resolutions (DmaView maps) per packet —
  // the crossings the DescRingEngine burst fetch collapses.
  double desc_dma_per_pkt = 0;
  double desc_windows_per_pkt = 0;
  // TX scatter/gather accounting (both drivers): TX descriptors armed per
  // transmitted frame (1 for single-buffer frames, the chain length for frag
  // skbs) and skb_linearize copies per frame (0 on the SG path — the copy
  // the frag-chained transmit deletes).
  double tx_desc_per_pkt = 0;
  double tx_copies_per_pkt = 0;
  // RX delivery copies per packet (both drivers): the proxy's guard copies —
  // fallback copies under sealed delivery included, so a "zero-copy" row that
  // silently copied reports it. 0 for the in-kernel driver (DMA lands in the
  // skb) and 0 is the REQUIRED value on the sealed (ZC) rows: the exit gate
  // fails the bench otherwise.
  double rx_copies_per_pkt = 0;
  // Per-queue channel accounting (one entry per uchan shard): the simulated
  // nanoseconds each queue's channel charged to either side. Single-queue
  // rows have one entry; the multi-queue ablation reports the full fan-out.
  std::vector<uint64_t> queue_kernel_ns;
  std::vector<uint64_t> queue_driver_ns;
  // The simulator's own cost for this run (host wall-clock, microseconds).
  double sim_wall_us = 0;
};

// One benchmark configuration: either the SUD bench or the in-kernel bench.
struct Config {
  std::unique_ptr<NetBench> bench;
  bool is_sud;

  // `sealed` (SUD only) selects the zero-copy verified delivery
  // configuration: RX pages are IOMMU-write-sealed and verified in place
  // (no guard copy), with unseal-side IOTLB invalidations riding the queued
  // batch one sync per NAPI bundle. sealed=false keeps the guard-copy
  // ablation bit-identical to the historical rows.
  static Config Make(bool is_sud, bool sealed = false) {
    NetBench::Options options;
    options.start_sut = is_sud;
    options.proxy.sealed_delivery = sealed;
    Config config{std::make_unique<NetBench>(options), is_sud};
    if (sealed) {
      config.bench->machine.iommu().set_queued_invalidation(true);
    }
    if (is_sud) {
      Status status = config.bench->StartSut();
      if (!status.ok()) {
        std::fprintf(stderr, "sut start failed: %s\n", status.ToString().c_str());
      }
    } else {
      Status status = config.bench->StartSutInKernel();
      if (!status.ok()) {
        std::fprintf(stderr, "kernel sut start failed: %s\n", status.ToString().c_str());
      }
    }
    return config;
  }

  void Pump() {
    if (is_sud) {
      bench->host->Pump();
    } else {
      // NAPI: one interrupt + one poll per burst.
      CpuModel& cpu = bench->machine.cpu();
      cpu.Charge(kAccountKernel, cpu.costs().interrupt_entry);
      bench->sut_driver->NapiPoll();
    }
  }

  // Kernel baseline: switch the SUT into NAPI polling (interrupts masked).
  void EnableNapi() {
    if (!is_sud) {
      (void)bench->sut_env->MmioWrite32(0, devices::kNicRegImc, 0xffffffffu);
    }
  }

  // Fills the uchan crossing counters of `row` (SUD configuration only).
  void FillUchanCounters(Row* row, int packets) const {
    if (!is_sud) {
      return;
    }
    Uchan::Stats stats = bench->ctx->AggregateCtlStats();
    row->uchan_crossings_per_pkt =
        static_cast<double>(stats.downcall_batches + stats.wakeups) / packets;
    row->uchan_msgs_per_pkt =
        static_cast<double>(stats.upcalls_sync + stats.upcalls_async + stats.downcalls_sync +
                            stats.downcalls_async) /
        packets;
    for (uint32_t q = 0; q < bench->ctx->num_queues(); ++q) {
      Uchan::Stats shard = bench->ctx->ctl(static_cast<uint16_t>(q)).stats();
      row->queue_kernel_ns.push_back(shard.kernel_ns);
      row->queue_driver_ns.push_back(shard.driver_ns);
    }
  }
  const char* name() const { return is_sud ? "Untrusted driver" : "Kernel driver"; }

  // Descriptor-path counters, snapshotted around each workload so probe-time
  // ring arming does not pollute the per-packet rates.
  struct DescSnapshot {
    uint64_t fetch = 0, writeback = 0, windows = 0;
    uint64_t tx_frames = 0, tx_descs = 0, tx_linearized = 0;
    uint64_t guard_copies = 0;
  };
  DescSnapshot SnapDesc() const {
    const devices::SimNic::Stats& nic = bench->sut_nic.stats();
    DescSnapshot snap{nic.desc_fetch_dma.load(), nic.desc_writeback_dma.load(),
                      bench->sut_driver != nullptr ? bench->sut_driver->desc_window_maps() : 0};
    if (bench->sut_driver != nullptr) {
      snap.tx_frames = bench->sut_driver->stats().tx_queued.load();
      snap.tx_descs = bench->sut_driver->stats().tx_desc_queued.load();
    }
    kern::NetDevice* netdev = bench->kernel.net().Find(bench->SutIfname());
    if (netdev != nullptr) {
      snap.tx_linearized = netdev->stats().tx_linearized.load();
    }
    if (bench->proxy != nullptr) {
      snap.guard_copies = bench->proxy->stats().guard_copies.load();
    }
    return snap;
  }
  void FillDescCounters(Row* row, int packets, const DescSnapshot& base) const {
    DescSnapshot now = SnapDesc();
    row->desc_dma_per_pkt =
        static_cast<double>((now.fetch - base.fetch) + (now.writeback - base.writeback)) /
        packets;
    row->desc_windows_per_pkt = static_cast<double>(now.windows - base.windows) / packets;
    uint64_t tx_frames = now.tx_frames - base.tx_frames;
    if (tx_frames > 0) {
      row->tx_desc_per_pkt = static_cast<double>(now.tx_descs - base.tx_descs) / tx_frames;
      row->tx_copies_per_pkt =
          static_cast<double>(now.tx_linearized - base.tx_linearized) / tx_frames;
    }
    row->rx_copies_per_pkt =
        static_cast<double>(now.guard_copies - base.guard_copies) / packets;
  }
};

double TotalCpu(NetBench& bench) {
  // Only the Thinkpad's cores: the peer (Optiplex) and device-internal work
  // are not this machine's CPU.
  return static_cast<double>(bench.machine.cpu().busy(kAccountKernel) +
                             bench.machine.cpu().busy(kAccountDriver));
}

// CPU% for the stream tests via the core-affinity wall-time mapping: each
// queue's shard charges (already in row.queue_*) are independent schedulable
// units, the remainder of `busy_ns` is serial, and the workload's wall time
// is the floor. On the single-queue rows this reduces exactly to the legacy
// two-core formula 100 * busy / (kCores * wall) — see CoreSchedule in
// cpu_model.h — so the published Figure 8 rows are unchanged; a multi-queue
// run instead pays the makespan of its busiest core when that exceeds the
// wire time. (UDP_RR keeps its transaction-latency formula: CPU there is per
// round trip, not a cores-normalised utilisation.)
double ModelCpuPct(const Row& row, double busy_ns, double wall_floor_ns) {
  return ScheduleOnCoresWithTotal(row.queue_kernel_ns, row.queue_driver_ns, busy_ns,
                                  wall_floor_ns, static_cast<uint32_t>(kCores))
      .cpu_pct;
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedUs() const {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// TCP_STREAM: the SUT receives a stream of MSS-sized segments. The link is
// the bottleneck; packets arrive in bursts of 16 (interrupt coalescing) and
// SUD-UML batches the resulting netif_rx downcalls (Section 5.1).
// Prints the IOMMU seal ledger after a sealed (zero-copy) run: seals must
// balance unseals (no page left write-revoked after the skbs drain) and the
// queued-invalidation batching shows up as shootdowns << unseals.
void PrintSealStats(const char* label, NetBench& bench) {
  const hw::SealStats& seal = bench.machine.iommu().seal_stats();
  const sud::EthernetProxy::Stats& proxy = bench.proxy->stats();
  std::printf(
      "  [%s] seals=%llu unseals=%llu shootdowns=%llu blocked_writes=%llu "
      "sealed_deliveries=%llu fallback_copies=%llu quarantined=%llu\n",
      label, static_cast<unsigned long long>(seal.seals),
      static_cast<unsigned long long>(seal.unseals),
      static_cast<unsigned long long>(seal.shootdowns),
      static_cast<unsigned long long>(seal.blocked_writes),
      static_cast<unsigned long long>(proxy.sealed_deliveries.load()),
      static_cast<unsigned long long>(proxy.sealed_fallback_copies.load()),
      static_cast<unsigned long long>(proxy.sealed_quarantined.load()));
}

Row RunTcpStream(bool is_sud, bool sealed = false) {
  Config config = Config::Make(is_sud, sealed);
  config.EnableNapi();
  NetBench& bench = *config.bench;
  bench.machine.cpu().Reset();
  Config::DescSnapshot desc_base = config.SnapDesc();
  WallTimer timer;

  std::vector<uint8_t> payload(kTcpMss, 0x5a);
  constexpr int kBurst = 16;
  for (int sent = 0; sent < kStreamPackets; sent += kBurst) {
    (void)bench.PeerSendBurst(33000, 80, {payload.data(), payload.size()}, kBurst);
    config.Pump();
  }
  double wall_ns = kStreamPackets * kTcpWireBytesPerSeg * 8.0;  // 1 Gb/s: 8 ns/byte
  double cpu_ns = TotalCpu(bench) + kStreamPackets * kTcpAppNsPerPkt;
  double throughput_mbps = kTcpMss * 8.0 * kStreamPackets / wall_ns * 1000.0;
  // No paper row for the sealed configuration: the paper chose the guard copy
  // precisely because it did not measure revocation (Section 3.1.2).
  Row row{sealed ? "TCP_STREAM ZC" : "TCP_STREAM", config.name(), throughput_mbps,
          "Mbits/sec",
          /*cpu_pct=*/0, sealed ? 0.0 : 941.0, sealed ? 0.0 : (is_sud ? 13.0 : 12.0)};
  config.FillUchanCounters(&row, kStreamPackets);
  config.FillDescCounters(&row, kStreamPackets, desc_base);
  row.cpu_pct = ModelCpuPct(row, cpu_ns, wall_ns);
  row.sim_wall_us = timer.ElapsedUs();
  if (sealed) {
    PrintSealStats("TCP_STREAM ZC", bench);
  }
  return row;
}

// UDP_STREAM TX: the SUT transmits 64-byte packets in a closed sender loop.
Row RunUdpTx(bool is_sud) {
  Config config = Config::Make(is_sud);
  config.EnableNapi();
  NetBench& bench = *config.bench;
  bench.machine.cpu().Reset();
  Config::DescSnapshot desc_base = config.SnapDesc();
  WallTimer timer;

  std::vector<uint8_t> payload(kUdpPayload, 0x11);
  constexpr int kBurst = 8;
  for (int sent = 0; sent < kStreamPackets; sent += kBurst) {
    (void)bench.SutSendBurst(5001, 5002, {payload.data(), payload.size()}, kBurst);
    config.Pump();  // driver drains the xmit queue, devices transmit
  }

  // Closed loop: the sender's per-packet path is the app base plus the
  // charged kernel-side work (the part executed in the sender's context).
  double kernel_ns = static_cast<double>(bench.machine.cpu().busy(kAccountKernel));
  double driver_ns = static_cast<double>(bench.machine.cpu().busy(kAccountDriver));
  double send_path_ns = kUdpSendBaseNs + kUdpTxWaitNs + kernel_ns / kStreamPackets;
  double wall_ns = kStreamPackets * send_path_ns;
  double wire_ns = kStreamPackets * kUdpWireBytesPerPkt * 8.0;
  if (wire_ns > wall_ns) {
    wall_ns = wire_ns;
  }
  double pps = kStreamPackets / wall_ns * 1e9;
  double cpu_ns = kernel_ns + driver_ns + kStreamPackets * kUdpSendBaseNs;
  Row row{"UDP_STREAM TX", config.name(), pps / 1000.0, "Kpackets/sec",
          /*cpu_pct=*/0, is_sud ? 308.0 : 317.0, is_sud ? 39.0 : 35.0};
  config.FillUchanCounters(&row, kStreamPackets);
  config.FillDescCounters(&row, kStreamPackets, desc_base);
  row.cpu_pct = ModelCpuPct(row, cpu_ns, wall_ns);
  row.sim_wall_us = timer.ElapsedUs();
  return row;
}

// TCP_STREAM at the jumbo MTU, transmit side: the SUT streams 9000-byte-MTU
// segments at the peer as FRAG skbs riding the TX scatter/gather chains —
// head + page frags staged per-fragment into standard pool buffers, one
// kEthUpXmitChain upcall and a 5-descriptor chain per segment, zero
// linearize copies. The link is the bottleneck at the jumbo wire occupancy;
// the number the row exists for is CPU%-per-byte (and tx_copies_per_pkt=0),
// which the paper's 1500-byte testbed could not show.
Row RunTcpStreamJumboTx(bool is_sud, bool sealed = false) {
  NetBench::Options options;
  options.start_sut = is_sud;
  options.mtu = static_cast<uint32_t>(kern::kJumboMtu);
  options.peer_mtu = static_cast<uint32_t>(kern::kJumboMtu);
  // sealed (SUD only): the TX mirror of zero-copy delivery — descriptors arm
  // straight from sealed kernel frag pages grant-mapped into the device's
  // IOMMU domain; nothing is staged into pool buffers.
  options.proxy.sealed_tx = sealed;
  Config config{std::make_unique<NetBench>(options), is_sud};
  if (is_sud) {
    (void)config.bench->StartSut();
  } else {
    (void)config.bench->StartSutInKernel();
  }
  config.EnableNapi();
  NetBench& bench = *config.bench;
  bench.machine.cpu().Reset();
  Config::DescSnapshot desc_base = config.SnapDesc();
  WallTimer timer;

  std::vector<uint8_t> payload(kJumboTcpMss, 0x5a);
  constexpr int kBurst = 8;
  for (int sent = 0; sent < kStreamPackets; sent += kBurst) {
    Status sent_status =
        sealed ? bench.SutSendDramFragBurst(80, 33000, {payload.data(), payload.size()},
                                            kBurst, kJumboHeadBytes, kJumboFragBytes)
               : bench.SutSendFragBurst(80, 33000, {payload.data(), payload.size()}, kBurst,
                                        kJumboHeadBytes, kJumboFragBytes);
    (void)sent_status;
    config.Pump();  // driver drains the xmit chains, the device gathers
  }
  double wall_ns = kStreamPackets * kJumboTcpWireBytesPerSeg * 8.0;  // 1 Gb/s: 8 ns/byte
  double cpu_ns = TotalCpu(bench) + kStreamPackets * kTcpAppNsPerPkt;
  double throughput_mbps = kJumboTcpMss * 8.0 * kStreamPackets / wall_ns * 1000.0;
  // No paper row to compare against: the testbed had no jumbo path.
  Row row{sealed ? "TCP_STREAM 9K TXZC" : "TCP_STREAM 9K", config.name(), throughput_mbps,
          "Mbits/sec",
          /*cpu_pct=*/0, /*paper_value=*/0, /*paper_cpu=*/0};
  config.FillUchanCounters(&row, kStreamPackets);
  config.FillDescCounters(&row, kStreamPackets, desc_base);
  row.cpu_pct = ModelCpuPct(row, cpu_ns, wall_ns);
  row.sim_wall_us = timer.ElapsedUs();
  if (sealed && bench.proxy != nullptr) {
    const sud::EthernetProxy::Stats& proxy = bench.proxy->stats();
    std::printf("  [TCP_STREAM 9K TXZC] tx_grants=%llu tx_grant_frames=%llu "
                "tx_grant_fallbacks=%llu\n",
                static_cast<unsigned long long>(proxy.tx_grants.load()),
                static_cast<unsigned long long>(proxy.tx_grant_frames.load()),
                static_cast<unsigned long long>(proxy.tx_grant_fallbacks.load()));
  }
  return row;
}

// UDP_STREAM RX: the peer floods 64-byte packets at the SUT; the paper's
// receiver keeps up (238 vs 235 Kpps), limited by the sender's rate.
Row RunUdpRx(bool is_sud, bool sealed = false) {
  Config config = Config::Make(is_sud, sealed);
  config.EnableNapi();
  NetBench& bench = *config.bench;
  bench.machine.cpu().Reset();
  Config::DescSnapshot desc_base = config.SnapDesc();
  WallTimer timer;

  std::vector<uint8_t> payload(kUdpPayload, 0x22);
  constexpr int kBurst = 16;
  int delivered = 0;
  kern::NetDevice* netdev = bench.kernel.net().Find(bench.SutIfname());
  netdev->set_rx_sink([&](const kern::Skb&) { ++delivered; });
  for (int sent = 0; sent < kStreamPackets; sent += kBurst) {
    (void)bench.PeerSendBurst(5002, 5001, {payload.data(), payload.size()}, kBurst);
    config.Pump();
  }
  // The Optiplex's send rate bounds the test (the paper's 238 Kpps); the
  // receiver's capacity is 1/path if worse.
  double sender_rate_pps = 240000.0;
  double kernel_ns = static_cast<double>(bench.machine.cpu().busy(kAccountKernel));
  double driver_ns = static_cast<double>(bench.machine.cpu().busy(kAccountDriver));
  double rx_path_ns = (kernel_ns + driver_ns) / kStreamPackets + kUdpRxAppNsPerPkt;
  double capacity_pps = 1e9 / rx_path_ns * kCores;  // rx path pipelines across cores
  double pps = std::min(sender_rate_pps, capacity_pps);
  double wall_ns = kStreamPackets / pps * 1e9;
  double cpu_ns = kernel_ns + driver_ns + kStreamPackets * kUdpRxAppNsPerPkt;
  Row row{sealed ? "UDP_STREAM RX ZC" : "UDP_STREAM RX", config.name(),
          pps * (delivered / double(kStreamPackets)) / 1000.0, "Kpackets/sec",
          /*cpu_pct=*/0, sealed ? 0.0 : (is_sud ? 235.0 : 238.0),
          sealed ? 0.0 : (is_sud ? 26.0 : 20.0)};
  config.FillUchanCounters(&row, kStreamPackets);
  config.FillDescCounters(&row, kStreamPackets, desc_base);
  row.cpu_pct = ModelCpuPct(row, cpu_ns, wall_ns);
  row.sim_wall_us = timer.ElapsedUs();
  if (sealed) {
    PrintSealStats("UDP_STREAM RX ZC", bench);
  }
  return row;
}

// UDP_RR: one 64-byte request/response in flight at a time. Every charged
// nanosecond of the server path adds to the RTT; under SUD each direction
// pays a process wakeup.
Row RunUdpRr(bool is_sud) {
  Config config = Config::Make(is_sud);
  NetBench& bench = *config.bench;
  bench.machine.cpu().Reset();
  Config::DescSnapshot desc_base = config.SnapDesc();
  WallTimer timer;

  std::vector<uint8_t> payload(kUdpPayload, 0x33);
  kern::NetDevice* netdev = bench.kernel.net().Find(bench.SutIfname());
  int requests = 0;
  netdev->set_rx_sink([&](const kern::Skb&) { ++requests; });

  // The netperf client is a threaded EtherLink RR peer (the Optiplex as its
  // own machine), transmitting each request on the wire from its own thread.
  // Replies are acked by the serving loop's served-transaction counter — not
  // raw wire frames — so request t+1 leaves only after the server fully
  // finished transaction t. That strict alternation is UDP_RR's one-in-flight
  // semantics AND what keeps the per-transaction charge shape (request
  // landed; Pump; reply; Pump) bit-identical to the serial bench.
  std::atomic<uint64_t> served{0};
  devices::EtherLink::RrFlow client;
  client.request = kern::BuildPacket(kMacA, kMacB, 7001, 7002,
                                     {payload.data(), payload.size()});
  client.transactions = kRrTransactions;
  client.replies = [&served]() { return served.load(std::memory_order_acquire); };
  uint64_t requests_base = bench.link.stats().frames[1].load();
  bench.link.StartRrPeers({std::move(client)}, /*side=*/1);

  for (int txn = 0; txn < kRrTransactions; ++txn) {
    // The request is fully DMA'd into the SUT NIC once frames[1] advances.
    while (bench.link.stats().frames[1].load() < requests_base + txn + 1) {
      std::this_thread::yield();
    }
    config.Pump();  // request reaches the app
    auto reply = kern::BuildPacket(kMacB, kMacA, 7002, 7001,
                                   {payload.data(), payload.size()});
    (void)bench.kernel.net().Transmit(netdev,
                                      kern::MakeSkb({reply.data(), reply.size()}));
    config.Pump();  // reply transmitted
    served.store(static_cast<uint64_t>(txn) + 1, std::memory_order_release);
  }
  bench.link.JoinPeers();

  double cpu_ns = TotalCpu(bench);
  double server_ns_per_txn = cpu_ns / kRrTransactions;
  // The interrupt/driver half of the server path overlaps the netserver
  // process on the other core; roughly half of it extends the RTT.
  double rtt_ns = kRrClientBaseNs + server_ns_per_txn / 2.0;
  double tps = 1e9 / rtt_ns;
  Row row{"UDP_RR", config.name(), tps, "Tx/sec", 100.0 * server_ns_per_txn / rtt_ns,
          is_sud ? 9489.0 : 9590.0, is_sud ? 10.0 : 5.0};
  config.FillUchanCounters(&row, 2 * kRrTransactions);
  config.FillDescCounters(&row, 2 * kRrTransactions, desc_base);
  row.sim_wall_us = timer.ElapsedUs();
  return row;
}

// Whether every ITR row delivered all its traffic (exit-gated in main: a
// moderation wedge — a deferred MSI that never flushes — must fail CI, not
// just skew a number).
bool g_itr_rows_complete = true;

// UDP_RR under per-queue interrupt moderation (EITR = `itr_units` * 256ns).
// Same one-in-flight client as RunUdpRr; the serving loop additionally runs
// SimNic::Tick so moderation windows expire and deferred MSIs flush (the
// plain RR loop never ticks the NIC — with EITR armed it would wedge).
//
// HONEST ACCOUNTING: moderation helps floods (see RunUdpRxItrFlood) and
// hurts one-in-flight latency. A request landing inside a closed window
// waits, on average, half the window for its deferred MSI, so the modeled
// RTT gains itr_units * kNicItrUnitNs / 2 — a modeled penalty (the
// simulator's Tick is not a clock), recorded as such.
Row RunUdpRrItr(uint32_t itr_units) {
  Config config = Config::Make(true);
  NetBench& bench = *config.bench;
  if (bench.sut_driver != nullptr) {
    (void)bench.sut_driver->ProgramItr(itr_units);
  }
  bench.machine.cpu().Reset();
  Config::DescSnapshot desc_base = config.SnapDesc();
  WallTimer timer;

  std::vector<uint8_t> payload(kUdpPayload, 0x33);
  kern::NetDevice* netdev = bench.kernel.net().Find(bench.SutIfname());
  int requests = 0;
  netdev->set_rx_sink([&](const kern::Skb&) { ++requests; });

  std::atomic<uint64_t> served{0};
  devices::EtherLink::RrFlow client;
  client.request = kern::BuildPacket(kMacA, kMacB, 7001, 7002,
                                     {payload.data(), payload.size()});
  client.transactions = kRrTransactions;
  client.replies = [&served]() { return served.load(std::memory_order_acquire); };
  uint64_t requests_base = bench.link.stats().frames[1].load();
  bench.link.StartRrPeers({std::move(client)}, /*side=*/1);

  for (int txn = 0; txn < kRrTransactions; ++txn) {
    while (bench.link.stats().frames[1].load() < requests_base + txn + 1) {
      std::this_thread::yield();
    }
    // The request's MSI may be parked behind a moderation window: tick the
    // NIC until the window expires and the deferred interrupt delivers it
    // (each Tick advances kNicItrUnitsPerTick of the window). Bounded so a
    // wedge fails visibly instead of hanging the bench.
    config.Pump();
    for (int guard = 0; requests <= txn && guard < 64; ++guard) {
      bench.sut_nic.Tick();
      config.Pump();
    }
    auto reply = kern::BuildPacket(kMacB, kMacA, 7002, 7001,
                                   {payload.data(), payload.size()});
    (void)bench.kernel.net().Transmit(netdev,
                                      kern::MakeSkb({reply.data(), reply.size()}));
    config.Pump();
    bench.sut_nic.Tick();  // let the TX-reap side's window expire too
    served.store(static_cast<uint64_t>(txn) + 1, std::memory_order_release);
  }
  bench.link.JoinPeers();
  if (requests != kRrTransactions) {
    std::fprintf(stderr, "FAIL: UDP_RR ITR=%u served %d/%d requests\n", itr_units, requests,
                 kRrTransactions);
    g_itr_rows_complete = false;
  }

  double cpu_ns = TotalCpu(bench);
  double server_ns_per_txn = cpu_ns / kRrTransactions;
  double itr_wait_ns = itr_units * devices::kNicItrUnitNs / 2.0;  // modeled
  double rtt_ns = kRrClientBaseNs + server_ns_per_txn / 2.0 + itr_wait_ns;
  double tps = 1e9 / rtt_ns;
  char test[32];
  std::snprintf(test, sizeof(test), "UDP_RR ITR%u", itr_units);
  Row row{test, config.name(), tps, "Tx/sec", 100.0 * server_ns_per_txn / rtt_ns, 0.0, 0.0};
  config.FillUchanCounters(&row, 2 * kRrTransactions);
  config.FillDescCounters(&row, 2 * kRrTransactions, desc_base);
  row.sim_wall_us = timer.ElapsedUs();
  std::printf("  [%s] suppressed=%llu modeled_itr_wait=%.0fns\n", test,
              static_cast<unsigned long long>(bench.sut_nic.stats().itr_suppressed.load()),
              itr_wait_ns);
  return row;
}

// The other side of the tradeoff: a 4-queue UDP receive flood, measured by
// interrupts per packet. With EITR armed, bursts landing inside an open
// window coalesce onto one deferred MSI per window per queue, cutting the
// per-packet interrupt-entry charge that dominates small-packet RX CPU.
Row RunUdpRxItrFlood(uint32_t itr_units) {
  constexpr int kFloodPackets = 20000;
  NetBench::Options options;
  options.nic_queues = 4;
  NetBench bench(options);
  Status status = bench.StartSut();
  if (!status.ok()) {
    std::fprintf(stderr, "sut start failed: %s\n", status.ToString().c_str());
  }
  bench.MaskPeerIrq();
  if (bench.sut_driver != nullptr) {
    (void)bench.sut_driver->ProgramItr(itr_units);
  }
  bench.machine.cpu().Reset();
  WallTimer timer;

  std::vector<uint8_t> payload(kUdpPayload, 0x22);
  kern::NetDevice* netdev = bench.kernel.net().Find(bench.SutIfname());
  uint64_t irq_base = bench.kernel.interrupts_handled();
  for (int sent = 0; sent < kFloodPackets; sent += 16) {
    (void)bench.PeerSendFlowBurst(5100, 5001, {payload.data(), payload.size()}, 16, 16);
    bench.host->Pump();
    bench.sut_nic.Tick();
  }
  for (int drain = 0; drain < 16; ++drain) {  // flush trailing deferred MSIs
    bench.sut_nic.Tick();
    bench.host->Pump();
  }
  uint64_t delivered = netdev->stats().rx_packets.load();
  uint64_t irqs = bench.kernel.interrupts_handled() - irq_base;
  uint64_t suppressed = bench.sut_nic.stats().itr_suppressed.load();
  if (delivered != static_cast<uint64_t>(kFloodPackets)) {
    std::fprintf(stderr, "FAIL: UDP RX flood ITR=%u delivered %llu/%d\n", itr_units,
                 static_cast<unsigned long long>(delivered), kFloodPackets);
    g_itr_rows_complete = false;
  }

  // Modeled exactly like RunUdpRx: the sender's rate bounds the test unless
  // the per-packet rx path (now with fewer interrupt entries) is worse.
  double sender_rate_pps = 240000.0;
  double kernel_ns = static_cast<double>(bench.machine.cpu().busy(kAccountKernel));
  double driver_ns = static_cast<double>(bench.machine.cpu().busy(kAccountDriver));
  double rx_path_ns = (kernel_ns + driver_ns) / kFloodPackets + kUdpRxAppNsPerPkt;
  double capacity_pps = 1e9 / rx_path_ns * kCores;
  double pps = std::min(sender_rate_pps, capacity_pps);
  double wall_ns = kFloodPackets / pps * 1e9;
  double cpu_ns = kernel_ns + driver_ns + kFloodPackets * kUdpRxAppNsPerPkt;
  char test[32];
  std::snprintf(test, sizeof(test), "UDP_RX 4Q ITR%u", itr_units);
  Row row{test, "Untrusted driver", pps * (delivered / double(kFloodPackets)) / 1000.0,
          "Kpackets/sec", /*cpu_pct=*/0, 0.0, 0.0};
  row.cpu_pct = ModelCpuPct(row, cpu_ns, wall_ns);
  row.sim_wall_us = timer.ElapsedUs();
  std::printf("  [%s] irqs/pkt=%.4f suppressed=%llu delivered=%llu\n", test,
              static_cast<double>(irqs) / kFloodPackets,
              static_cast<unsigned long long>(suppressed),
              static_cast<unsigned long long>(delivered));
  return row;
}

void Print(const std::vector<Row>& rows) {
  std::printf("\nFigure 8: netperf results, e1000e in-kernel vs under SUD\n");
  std::printf("%-14s %-17s %14s %-13s %7s | %10s %9s\n", "Test", "Driver", "Measured", "Unit",
              "CPU %", "paper val", "paper CPU");
  std::printf("%s\n", std::string(96, '-').c_str());
  for (const Row& row : rows) {
    std::printf("%-14s %-17s %14.0f %-13s %6.1f%% | %10.0f %8.0f%%\n", row.test.c_str(),
                row.driver.c_str(), row.value, row.unit.c_str(), row.cpu_pct, row.paper_value,
                row.paper_cpu);
  }
  std::printf("\nShape checks (paper: equal stream throughput; 8-30%% CPU overhead on\n");
  std::printf("streams; ~2x CPU on UDP_RR):\n");
}

// Machine-readable trajectory record: one object per row.
void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"fig8_netperf\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"test\": \"%s\", \"driver\": \"%s\", \"value\": %.2f, "
                 "\"unit\": \"%s\", \"cpu_pct\": %.2f, \"paper_value\": %.1f, "
                 "\"paper_cpu_pct\": %.1f, \"uchan_crossings_per_pkt\": %.4f, "
                 "\"uchan_msgs_per_pkt\": %.4f, \"desc_dma_per_pkt\": %.4f, "
                 "\"desc_windows_per_pkt\": %.4f, \"tx_desc_per_pkt\": %.4f, "
                 "\"tx_copies_per_pkt\": %.4f, \"rx_copies_per_pkt\": %.4f, "
                 "\"sim_wall_us\": %.0f",
                 row.test.c_str(), row.driver.c_str(), row.value, row.unit.c_str(), row.cpu_pct,
                 row.paper_value, row.paper_cpu, row.uchan_crossings_per_pkt,
                 row.uchan_msgs_per_pkt, row.desc_dma_per_pkt, row.desc_windows_per_pkt,
                 row.tx_desc_per_pkt, row.tx_copies_per_pkt, row.rx_copies_per_pkt,
                 row.sim_wall_us);
    // Per-queue channel accounting (one entry per uchan shard).
    std::fprintf(out, ", \"queue_kernel_ns\": [");
    for (size_t q = 0; q < row.queue_kernel_ns.size(); ++q) {
      std::fprintf(out, "%s%llu", q == 0 ? "" : ", ",
                   static_cast<unsigned long long>(row.queue_kernel_ns[q]));
    }
    std::fprintf(out, "], \"queue_driver_ns\": [");
    for (size_t q = 0; q < row.queue_driver_ns.size(); ++q) {
      std::fprintf(out, "%s%llu", q == 0 ? "" : ", ",
                   static_cast<unsigned long long>(row.queue_driver_ns[q]));
    }
    std::fprintf(out, "]}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path);
}

}  // namespace
}  // namespace sud

int main() {
  sud::Logger::Get().set_min_level(sud::LogLevel::kError);
  std::vector<sud::Row> rows;
  rows.push_back(sud::RunTcpStream(false));
  rows.push_back(sud::RunTcpStream(true));
  rows.push_back(sud::RunUdpTx(false));
  rows.push_back(sud::RunUdpTx(true));
  rows.push_back(sud::RunUdpRx(false));
  rows.push_back(sud::RunUdpRx(true));
  rows.push_back(sud::RunUdpRr(false));
  rows.push_back(sud::RunUdpRr(true));
  // Jumbo TX stream rows ride the TX scatter/gather chains (appended after
  // the paper's table so the historical row order never moves).
  rows.push_back(sud::RunTcpStreamJumboTx(false));
  rows.push_back(sud::RunTcpStreamJumboTx(true));
  // Zero-copy verified delivery rows (SUD only): seal the page, verify the
  // checksum in place, deliver by reference. Appended after every historical
  // row so indices 0-9 never move and the guard-copy rows above stay the
  // runtime-selectable ablation.
  rows.push_back(sud::RunTcpStream(true, /*sealed=*/true));       // row 10
  rows.push_back(sud::RunUdpRx(true, /*sealed=*/true));           // row 11
  rows.push_back(sud::RunTcpStreamJumboTx(true, /*sealed=*/true));  // row 12
  // Interrupt-moderation sweep (SUD only), appended after every historical
  // row so indices 0-12 never move. ITR0 re-runs the RR loop with the
  // tick-and-flush scaffolding but moderation OFF — it must stay within
  // noise of row 7 (printed below as the scaffolding sanity check). The RR
  // rows record moderation's latency COST; the 4-queue RX flood rows record
  // its interrupt-rate benefit. Both directions are reported, neither is
  // cherry-picked.
  rows.push_back(sud::RunUdpRrItr(0));        // row 13
  rows.push_back(sud::RunUdpRrItr(31));       // row 14: ~8us windows
  rows.push_back(sud::RunUdpRrItr(125));      // row 15: ~32us windows
  rows.push_back(sud::RunUdpRxItrFlood(0));   // row 16
  rows.push_back(sud::RunUdpRxItrFlood(31));  // row 17
  rows.push_back(sud::RunUdpRxItrFlood(125)); // row 18
  sud::Print(rows);

  // Shape assertions printed for the record.
  auto pct = [&](int kernel_row, int sud_row) {
    return 100.0 * (rows[sud_row].cpu_pct - rows[kernel_row].cpu_pct) / rows[kernel_row].cpu_pct;
  };
  std::printf("  TCP_STREAM   : throughput %s, CPU overhead %+.0f%%\n",
              rows[0].value == rows[1].value ? "equal" : "UNEQUAL", pct(0, 1));
  std::printf("  UDP_STREAM TX: throughput ratio %.2f, CPU overhead %+.0f%%\n",
              rows[3].value / rows[2].value, pct(2, 3));
  std::printf("  UDP_STREAM RX: throughput ratio %.2f, CPU overhead %+.0f%%\n",
              rows[5].value / rows[4].value, pct(4, 5));
  std::printf("  UDP_RR       : throughput ratio %.2f, CPU ratio %.1fx\n",
              rows[7].value / rows[6].value, rows[7].cpu_pct / rows[6].cpu_pct);
  std::printf("  TCP_STREAM 9K: throughput %s, CPU overhead %+.0f%%, "
              "tx chain %.1f desc/pkt, linearize copies %.1f/pkt (must be 0 on SG)\n",
              rows[8].value == rows[9].value ? "equal" : "UNEQUAL", pct(8, 9),
              rows[9].tx_desc_per_pkt, rows[9].tx_copies_per_pkt);
  std::printf("  Zero-copy    : guard-copy rows %.1f rx copies/pkt; sealed rows "
              "%.2f / %.2f rx copies/pkt, TXZC %.2f tx copies/pkt "
              "(all three must be 0)\n",
              rows[1].rx_copies_per_pkt, rows[10].rx_copies_per_pkt,
              rows[11].rx_copies_per_pkt, rows[12].tx_copies_per_pkt);
  std::printf("  Zero-copy CPU: TCP_STREAM %+.0f%% vs guard copy, UDP RX %+.0f%%, "
              "9K TX %+.0f%%\n",
              pct(1, 10), pct(5, 11), pct(9, 12));
  std::printf("  ITR          : RR ITR0 %.0f vs plain RR %.0f Tx/sec (scaffolding check); "
              "RR latency cost ITR31 %.2fx, ITR125 %.2fx; "
              "RX flood CPU ITR31 %+.0f%%, ITR125 %+.0f%%\n",
              rows[13].value, rows[7].value, rows[13].value / rows[14].value,
              rows[13].value / rows[15].value, pct(16, 17), pct(16, 18));
  sud::WriteJson(rows, "BENCH_fig8_netperf.json");

  // Exit gate: the zero-copy rows must actually be zero-copy. A nonzero
  // rx_copies_per_pkt on a sealed row means delivery fell back to the guard
  // copy; a nonzero tx_copies_per_pkt on the TXZC row means the proxy staged
  // (or the kernel linearized) instead of granting. CI fails on this.
  int exit_code = 0;
  if (rows[10].rx_copies_per_pkt != 0 || rows[11].rx_copies_per_pkt != 0) {
    std::fprintf(stderr, "FAIL: sealed delivery rows report rx copies (%.4f, %.4f)\n",
                 rows[10].rx_copies_per_pkt, rows[11].rx_copies_per_pkt);
    exit_code = 1;
  }
  if (rows[12].tx_copies_per_pkt != 0 || rows[12].rx_copies_per_pkt != 0) {
    std::fprintf(stderr, "FAIL: TXZC row reports copies (tx %.4f, rx %.4f)\n",
                 rows[12].tx_copies_per_pkt, rows[12].rx_copies_per_pkt);
    exit_code = 1;
  }
  if (!sud::g_itr_rows_complete) {
    std::fprintf(stderr, "FAIL: an ITR row lost traffic (moderation wedge)\n");
    exit_code = 1;
  }
  return exit_code;
}
