// Figure 9 reproduction: dump the IO virtual memory mappings of the e1000e
// device after its untrusted driver has probed, by walking the device's IO
// page directory — "this ensures that the BIOS or other system software does
// not create special mappings for device use" (§5.2).

#include <cstdio>

#include "src/base/log.h"
#include "tests/harness.h"

int main() {
  sud::Logger::Get().set_min_level(sud::LogLevel::kError);
  sud::testing::NetBench::Options options;
  options.sud.pool_buffers = 0;  // Figure 9 was captured before uchan traffic
  sud::testing::NetBench bench(options);
  sud::Status status = bench.StartSut();
  if (!status.ok()) {
    std::fprintf(stderr, "driver start failed: %s\n", status.ToString().c_str());
    return 1;
  }

  uint16_t source = bench.sut_nic.address().source_id();
  auto mappings = bench.machine.iommu().WalkMappings(source);

  std::printf("\nFigure 9: IO virtual memory mappings for the e1000e driver\n");
  std::printf("(walked from the device's IO page directory, source id 0x%04x)\n\n", source);
  std::printf("%-22s %-12s %-12s   %-22s %-12s %-12s\n", "Memory use", "Start", "End",
              "paper:", "Start", "End");
  std::printf("%s\n", std::string(96, '-').c_str());

  struct PaperRow {
    const char* use;
    uint64_t start, end;
  };
  const PaperRow paper[] = {
      {"TX ring descriptor", 0x42430000, 0x42431000},
      {"RX ring descriptor", 0x42431000, 0x42433000},
      {"TX buffers", 0x42433000, 0x42C33000},
      {"RX buffers", 0x42C33000, 0x43433000},
      {"Implicit MSI mapping", 0xFEE00000, 0xFEF00000},
  };

  // Classify each walked page range against the driver's allocation records.
  const auto& regions = bench.ctx->dma().regions();
  auto classify = [&](uint64_t iova) -> const char* {
    int index = 0;
    for (const auto& [base, region] : regions) {
      if (iova >= region.iova && iova < region.iova + region.bytes) {
        static const char* kNames[] = {"TX ring descriptor", "RX ring descriptor",
                                       "TX buffers", "RX buffers"};
        return index < 4 ? kNames[index] : "driver DMA";
      }
      ++index;
    }
    return "driver DMA";
  };

  size_t row = 0;
  bool all_match = true;
  for (const auto& m : mappings) {
    const char* use = m.implicit_msi ? "Implicit MSI mapping" : classify(m.iova_start);
    // Split coalesced walk output back into the driver's regions for the
    // row-by-row comparison.
    for (const auto& [base, region] : regions) {
      if (m.implicit_msi) {
        break;
      }
      if (region.iova >= m.iova_start && region.iova < m.iova_end) {
        const char* region_use = classify(region.iova);
        bool match = row < 5 && paper[row].start == region.iova &&
                     paper[row].end == region.iova + region.bytes;
        all_match = all_match && match;
        std::printf("%-22s 0x%08llX   0x%08llX   %-22s 0x%08llX   0x%08llX  %s\n", region_use,
                    (unsigned long long)region.iova,
                    (unsigned long long)(region.iova + region.bytes),
                    row < 5 ? paper[row].use : "-", row < 5 ? (unsigned long long)paper[row].start : 0,
                    row < 5 ? (unsigned long long)paper[row].end : 0, match ? "MATCH" : "DIFF");
        ++row;
      }
    }
    if (m.implicit_msi) {
      bool match = row < 5 && paper[row].start == m.iova_start && paper[row].end == m.iova_end;
      all_match = all_match && match;
      std::printf("%-22s 0x%08llX   0x%08llX   %-22s 0x%08llX   0x%08llX  %s\n", use,
                  (unsigned long long)m.iova_start, (unsigned long long)m.iova_end,
                  row < 5 ? paper[row].use : "-", row < 5 ? (unsigned long long)paper[row].start : 0,
                  row < 5 ? (unsigned long long)paper[row].end : 0, match ? "MATCH" : "DIFF");
      ++row;
    }
  }
  std::printf("\n%s: %zu mapping rows, %s the paper's Figure 9.\n",
              all_match ? "REPRODUCED" : "MISMATCH", row,
              all_match ? "bit-for-bit identical to" : "differing from");
  std::printf("No other mappings exist: a malicious driver can at most corrupt its own\n");
  std::printf("TX/RX buffers, or raise an interrupt using MSI (§5.2).\n");

  // Seal accounting: exercise the per-page write-permission downgrade on the
  // RX buffers mapping walked above — the revocation primitive the paper's
  // guard copy substitutes for (§3.1.2) — and dump the counters the IOMMU
  // keeps for it. One page is sealed (device write faults, read still
  // translates), then unsealed (write translates again); each transition
  // forces a synchronous IOTLB shootdown, the cost the paper cites.
  {
    uint64_t rx_page = 0;
    int index = 0;
    for (const auto& [base, region] : regions) {
      if (index++ == 3) {  // the RX buffers region (row order above)
        rx_page = region.iova;
      }
    }
    sud::hw::Iommu& iommu = bench.machine.iommu();
    bool ok = rx_page != 0;
    ok = ok && iommu.SealWrite(source, rx_page, sud::hw::kPageSize).ok();
    bool write_blocked =
        ok && !iommu.Translate(source, rx_page, 64, /*is_write=*/true).ok();
    bool read_ok = ok && iommu.Translate(source, rx_page, 64, /*is_write=*/false).ok();
    ok = ok && iommu.UnsealWrite(source, rx_page, sud::hw::kPageSize).ok();
    bool write_ok = ok && iommu.Translate(source, rx_page, 64, /*is_write=*/true).ok();
    const sud::hw::SealStats& seal = iommu.seal_stats();
    std::printf("\nSeal accounting (one RX buffer page, 0x%08llX):\n",
                (unsigned long long)rx_page);
    std::printf("  sealed write %s, sealed read %s, post-unseal write %s\n",
                write_blocked ? "BLOCKED" : "ALLOWED (BUG)", read_ok ? "ok" : "FAULTED (BUG)",
                write_ok ? "ok" : "FAULTED (BUG)");
    std::printf("  seals=%llu unseals=%llu iotlb_shootdowns=%llu blocked_writes=%llu\n",
                (unsigned long long)seal.seals, (unsigned long long)seal.unseals,
                (unsigned long long)seal.shootdowns,
                (unsigned long long)seal.blocked_writes);
    all_match = all_match && write_blocked && read_ok && write_ok && seal.seals == 1 &&
                seal.unseals == 1 && seal.shootdowns == 2 && seal.blocked_writes == 1;
  }
  return all_match ? 0 : 1;
}
