// Schema-driven wire-protocol fuzzer, exit-gated for CI.
//
// Two properties, checked per seed:
//
//   1. Validator fidelity (pure): for every message in the wire-schema
//      registry, randomly generated schema-conforming messages are ALL
//      accepted, and every bounded mutation — truncated/oversized payloads,
//      count/payload mismatches, out-of-bounds fields, wrong-shard delivery —
//      is rejected. The generator and the mutator are both driven off the
//      registry table itself, so a new message is fuzzed the day it is added.
//
//   2. Live containment: malformed downcalls and upcalls fired at a running
//      SUD stack (real e1000e driver, two uchan shards) all land in the
//      structural rejection counters, put nothing on the wire and nothing
//      into the stack — and valid peer traffic afterwards flows untouched
//      (the validator rejects no legitimate message).
//
// Seed-deterministic: ./fuzz_wire [num_seeds] runs seeds 1..N (default 8)
// with a splitmix64 stream per seed. Writes BENCH_fuzz_wire.json; exits
// nonzero if any property fails.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/base/log.h"
#include "src/kern/net_limits.h"
#include "src/sud/wire_schema.h"
#include "tests/harness.h"

namespace sud {
namespace {

using testing::NetBench;

constexpr int kRoundsPerSeed = 64;

struct Rng {
  uint64_t state;
  uint64_t Next() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }
  // Uniform in [lo, hi], clamped against overflow.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    if (hi <= lo) {
      return lo;
    }
    uint64_t span = hi - lo;
    return lo + (span == UINT64_MAX ? Next() : Below(span + 1));
  }
};

struct Tally {
  uint64_t valid_messages = 0;
  uint64_t valid_rejected = 0;  // gate: must stay 0
  uint64_t mut_payload = 0;
  uint64_t mut_count = 0;
  uint64_t mut_bounds = 0;
  uint64_t mut_shard = 0;
  uint64_t malformed_accepted = 0;  // gate: must stay 0
  uint64_t down_fired = 0;
  uint64_t down_rejected = 0;
  uint64_t up_fired = 0;
  uint64_t up_rejected = 0;
  uint64_t frames_leaked = 0;     // gate: must stay 0
  uint64_t stack_deliveries = 0;  // gate: must stay 0 (from malformed storms)
  uint64_t valid_sent = 0;
  uint64_t valid_delivered = 0;

  void Add(const Tally& o) {
    valid_messages += o.valid_messages;
    valid_rejected += o.valid_rejected;
    mut_payload += o.mut_payload;
    mut_count += o.mut_count;
    mut_bounds += o.mut_bounds;
    mut_shard += o.mut_shard;
    malformed_accepted += o.malformed_accepted;
    down_fired += o.down_fired;
    down_rejected += o.down_rejected;
    up_fired += o.up_fired;
    up_rejected += o.up_rejected;
    frames_leaked += o.frames_leaked;
    stack_deliveries += o.stack_deliveries;
    valid_sent += o.valid_sent;
    valid_delivered += o.valid_delivered;
  }
  bool Pass() const {
    return valid_rejected == 0 && malformed_accepted == 0 &&
           down_rejected == down_fired && up_rejected == up_fired && frames_leaked == 0 &&
           stack_deliveries == 0 && valid_delivered == valid_sent;
  }
};

void PokeField(UchanMsg* msg, const wire::RecordSpec& record, size_t r, size_t f,
               uint64_t value) {
  const wire::FieldSpec& field = record.fields[f];
  uint8_t* bytes = msg->inline_data.data() + r * record.bytes + field.offset;
  for (uint16_t b = 0; b < field.size; ++b) {
    bytes[b] = static_cast<uint8_t>(value >> (8 * b));
  }
}

// A random message the schema certifies: every named arg in bounds, records
// populated within field bounds and under the sum cap.
UchanMsg RandomValid(const wire::MessageSchema& s, Rng& rng) {
  UchanMsg msg;
  msg.opcode = s.opcode;
  msg.droppable = s.droppable;
  for (size_t i = 0; i < s.args.size(); ++i) {
    if (s.args[i].name != nullptr) {
      msg.args[i] = rng.Range(0, std::min<uint64_t>(s.args[i].max, 1u << 20));
    }
  }
  if (s.carries_buffer) {
    msg.buffer_id = static_cast<int32_t>(rng.Below(128)) - 1;  // -1 (none) .. 126
    msg.buffer_len = static_cast<uint32_t>(
        rng.Range(0, std::min<uint64_t>(s.max_buffer_len, 4096)));
  }
  switch (s.payload) {
    case wire::PayloadKind::kNone:
      break;
    case wire::PayloadKind::kFixedBytes:
      msg.inline_data.assign(s.fixed_bytes, static_cast<uint8_t>(rng.Next()));
      break;
    case wire::PayloadKind::kRawBounded:
      msg.inline_data.assign(
          rng.Range(s.min_bytes, std::min<uint64_t>(s.max_bytes, 64)),
          static_cast<uint8_t>(rng.Next()));
      break;
    case wire::PayloadKind::kRecords: {
      size_t count =
          rng.Range(s.min_records, std::min<uint64_t>(s.max_records, 8));
      msg.inline_data.assign(count * s.record.bytes, 0);
      for (size_t r = 0; r < count; ++r) {
        for (size_t f = 0; f < s.record.num_fields; ++f) {
          const wire::FieldSpec& field = s.record.fields[f];
          if (field.type == wire::FieldType::kBytes) {
            for (uint16_t b = 0; b < field.size; ++b) {
              msg.inline_data[r * s.record.bytes + field.offset + b] =
                  static_cast<uint8_t>(rng.Next());
            }
            continue;
          }
          uint64_t hi = std::min<uint64_t>(field.max, field.min + 0xffff);
          if (static_cast<int8_t>(f) == s.record.sum_field && count > 0) {
            hi = std::min<uint64_t>(hi, std::max<uint64_t>(s.record.sum_max / count, 1));
          }
          PokeField(&msg, s.record, r, f, rng.Range(field.min, hi));
        }
      }
      if (s.count_arg >= 0) {
        msg.args[static_cast<size_t>(s.count_arg)] = count;
      }
      break;
    }
  }
  return msg;
}

// Mutation class 1: payload no longer the shape the schema declares.
UchanMsg MutatePayload(const wire::MessageSchema& s, UchanMsg msg, Rng& rng) {
  switch (s.payload) {
    case wire::PayloadKind::kNone:
      msg.inline_data.assign(1 + rng.Below(8), 0x5a);
      break;
    case wire::PayloadKind::kFixedBytes:
      if (s.fixed_bytes > 0 && rng.Below(2) == 0) {
        msg.inline_data.pop_back();
      } else {
        msg.inline_data.push_back(0);
      }
      break;
    case wire::PayloadKind::kRawBounded:
      msg.inline_data.assign(s.max_bytes + 1 + rng.Below(16), 0x5a);
      break;
    case wire::PayloadKind::kRecords:
      // Ragged: not a whole number of records (adding when empty, else
      // shaving 1..stride-1 bytes — a whole record would be a count change).
      if (msg.inline_data.empty()) {
        msg.inline_data.assign(1 + rng.Below(s.record.bytes - 1), 0);
      } else {
        msg.inline_data.resize(msg.inline_data.size() - 1 - rng.Below(s.record.bytes - 1));
      }
      break;
  }
  return msg;
}

// Mutation class 2: the advertised record count lies about the payload.
UchanMsg MutateCount(const wire::MessageSchema& s, UchanMsg msg, Rng& rng) {
  msg.args[static_cast<size_t>(s.count_arg)] += 1 + rng.Below(5);
  return msg;
}

// Mutation class 3: one field — an arg slot, a buffer attachment, or a record
// scalar — pushed out of its declared bounds.
bool MutateBounds(const wire::MessageSchema& s, UchanMsg& msg, Rng& rng) {
  struct Choice {
    enum Kind { kDeadArg, kNamedArg, kForgedBuffer, kOversizeBuffer, kFieldHigh, kFieldLow };
    Kind kind;
    size_t a = 0, f = 0;
  };
  std::vector<Choice> choices;
  for (size_t a = 0; a < s.args.size(); ++a) {
    if (s.args[a].name == nullptr) {
      choices.push_back({Choice::kDeadArg, a});
    } else if (s.args[a].max < UINT64_MAX - 64) {
      choices.push_back({Choice::kNamedArg, a});
    }
  }
  if (!s.carries_buffer) {
    choices.push_back({Choice::kForgedBuffer});
  } else if (s.max_buffer_len < UINT32_MAX) {
    choices.push_back({Choice::kOversizeBuffer});
  }
  if (s.payload == wire::PayloadKind::kRecords && !msg.inline_data.empty()) {
    for (size_t f = 0; f < s.record.num_fields; ++f) {
      const wire::FieldSpec& field = s.record.fields[f];
      if (field.type == wire::FieldType::kBytes) {
        continue;
      }
      uint64_t type_max = field.size >= 8 ? UINT64_MAX : (1ull << (8 * field.size)) - 1;
      if (field.max < type_max) {
        choices.push_back({Choice::kFieldHigh, 0, f});
      }
      if (field.min > 0) {
        choices.push_back({Choice::kFieldLow, 0, f});
      }
    }
  }
  if (choices.empty()) {
    return false;
  }
  Choice c = choices[rng.Below(choices.size())];
  size_t count = s.record.bytes > 0 ? msg.inline_data.size() / s.record.bytes : 0;
  switch (c.kind) {
    case Choice::kDeadArg:
      msg.args[c.a] = 1 + rng.Below(1u << 16);
      break;
    case Choice::kNamedArg:
      msg.args[c.a] = s.args[c.a].max + 1 + rng.Below(64);
      break;
    case Choice::kForgedBuffer:
      if (rng.Below(2) == 0) {
        msg.buffer_id = static_cast<int32_t>(rng.Below(100));
      } else {
        msg.buffer_len = 1 + static_cast<uint32_t>(rng.Below(100));
      }
      break;
    case Choice::kOversizeBuffer:
      msg.buffer_len = s.max_buffer_len + 1;
      break;
    case Choice::kFieldHigh:
      PokeField(&msg, s.record, rng.Below(count), c.f, s.record.fields[c.f].max + 1);
      break;
    case Choice::kFieldLow:
      PokeField(&msg, s.record, rng.Below(count), c.f, s.record.fields[c.f].min - 1);
      break;
  }
  return true;
}

// Property 1: the pure validator round-trip over the whole registry.
void FuzzValidator(Rng& rng, Tally& tally) {
  for (int round = 0; round < kRoundsPerSeed; ++round) {
    for (size_t i = 0; i < wire::SchemaCount(); ++i) {
      const wire::MessageSchema& s = wire::SchemaAt(i);
      uint16_t good_shard =
          s.lane == wire::Lane::kControl ? 0 : static_cast<uint16_t>(rng.Below(4));
      UchanMsg base = RandomValid(s, rng);
      ++tally.valid_messages;
      if (wire::ValidateStructure(s.dir, base, good_shard) != wire::Malform::kNone) {
        ++tally.valid_rejected;
        std::fprintf(stderr, "FUZZ: valid %s rejected\n", s.name);
      }

      UchanMsg mutated = MutatePayload(s, base, rng);
      ++tally.mut_payload;
      if (wire::ValidateStructure(s.dir, mutated, good_shard) == wire::Malform::kNone) {
        ++tally.malformed_accepted;
        std::fprintf(stderr, "FUZZ: payload mutation of %s accepted\n", s.name);
      }
      if (s.payload == wire::PayloadKind::kRecords && s.count_arg >= 0) {
        mutated = MutateCount(s, base, rng);
        ++tally.mut_count;
        if (wire::ValidateStructure(s.dir, mutated, good_shard) == wire::Malform::kNone) {
          ++tally.malformed_accepted;
          std::fprintf(stderr, "FUZZ: count mutation of %s accepted\n", s.name);
        }
      }
      mutated = base;
      if (MutateBounds(s, mutated, rng)) {
        ++tally.mut_bounds;
        if (wire::ValidateStructure(s.dir, mutated, good_shard) == wire::Malform::kNone) {
          ++tally.malformed_accepted;
          std::fprintf(stderr, "FUZZ: bounds mutation of %s accepted\n", s.name);
        }
      }
      if (s.lane == wire::Lane::kControl) {
        ++tally.mut_shard;
        uint16_t bad_shard = static_cast<uint16_t>(1 + rng.Below(3));
        if (wire::ValidateStructure(s.dir, base, bad_shard) == wire::Malform::kNone) {
          ++tally.malformed_accepted;
          std::fprintf(stderr, "FUZZ: wrong-shard %s accepted\n", s.name);
        }
      }
    }
  }
}

// Property 2: the storms below hit a LIVE stack through the real uchan.
void FuzzLiveBoundary(Rng& rng, Tally& tally) {
  NetBench::Options options;
  options.nic_queues = 2;
  NetBench bench(options);
  if (!bench.StartSut().ok()) {
    std::fprintf(stderr, "FUZZ: live stack failed to start\n");
    ++tally.down_fired;  // poisons the down_rejected gate
    return;
  }
  kern::NetDevice* netdev = bench.kernel.net().Find("eth0");

  // --- malformed downcall storm (driver -> kernel boundary) ---
  uint64_t rx_before = netdev->stats().rx_packets.load();
  uint64_t rejects_before = bench.proxy->wire_rejects().total();
  for (int round = 0; round < 5; ++round) {
    std::vector<std::pair<UchanMsg, uint16_t>> storm;
    auto forge = [&](uint16_t shard) -> UchanMsg& {
      storm.emplace_back(UchanMsg{}, shard);
      return storm.back().first;
    };
    {  // netif_rx length above the jumbo ceiling
      UchanMsg& m = forge(static_cast<uint16_t>(rng.Below(2)));
      m.opcode = kEthDownNetifRx;
      m.args[0] = rng.Next();
      m.args[1] = kern::kJumboMaxFrameBytes + 1 + rng.Below(100);
    }
    {  // ragged rx chain payload
      wire::RxFrag frags[2] = {{rng.Next(), 256}, {rng.Next(), 256}};
      UchanMsg& m = forge(static_cast<uint16_t>(rng.Below(2)));
      wire::EncodeRxChain(frags, 2, &m);
      m.inline_data.resize(m.inline_data.size() - 1 - rng.Below(11));
    }
    {  // per-fragment lengths fine, total over the reassembly cap
      uint32_t len = static_cast<uint32_t>(kern::kJumboMaxFrameBytes - rng.Below(100));
      wire::RxFrag frags[2] = {{rng.Next(), len}, {rng.Next(), len}};
      UchanMsg& m = forge(static_cast<uint16_t>(rng.Below(2)));
      wire::EncodeRxChain(frags, 2, &m);
    }
    {  // advertised fragment count disagrees with the payload
      wire::RxFrag frags[2] = {{rng.Next(), 128}, {rng.Next(), 128}};
      UchanMsg& m = forge(static_cast<uint16_t>(rng.Below(2)));
      wire::EncodeRxChain(frags, 2, &m);
      m.args[0] = 3 + rng.Below(8);
    }
    {  // free-buffer batch lying about its count (salvage path)
      int32_t ids[2] = {static_cast<int32_t>(900 + rng.Below(50)),
                        static_cast<int32_t>(960 + rng.Below(50))};
      UchanMsg& m = forge(static_cast<uint16_t>(rng.Below(2)));
      wire::EncodeFreeBuffers(ids, 2, &m);
      m.args[0] = 5 + rng.Below(8);
    }
    {  // control-lane message delivered on a data shard
      UchanMsg& m = forge(1);
      m.opcode = kEthDownSetCarrier;
      m.args[0] = 1;
    }
    {  // carrier flag out of range
      UchanMsg& m = forge(0);
      m.opcode = kEthDownSetCarrier;
      m.args[0] = 2 + rng.Below(16);
    }
    {  // dead args slot carrying data
      UchanMsg& m = forge(0);
      m.opcode = kEthDownSetCarrier;
      m.args[0] = 1;
      m.args[1 + rng.Below(5)] = 1 + rng.Below(1u << 20);
    }
    {  // register_netdev with a runt MAC payload
      UchanMsg& m = forge(0);
      m.opcode = kEthDownRegisterNetdev;
      m.args[0] = 1;
      m.args[1] = 1500;
      m.inline_data.assign(5, 0xaa);
    }
    {  // opcode no schema has ever heard of
      UchanMsg& m = forge(static_cast<uint16_t>(rng.Below(2)));
      m.opcode = 0xdead0 + static_cast<uint32_t>(rng.Below(16));
    }
    for (auto& [msg, shard] : storm) {
      ++tally.down_fired;
      (void)bench.ctx->ctl(shard).DowncallSync(msg);
    }
  }
  tally.down_rejected += bench.proxy->wire_rejects().total() - rejects_before;
  tally.stack_deliveries += netdev->stats().rx_packets.load() - rx_before;

  // --- malformed upcall storm (kernel -> driver boundary) ---
  uint64_t frames_before = bench.link.stats().frames[0].load();
  uint64_t up_rejects_before = bench.host->runtime()->wire_rejects().total();
  for (int round = 0; round < 5; ++round) {
    std::vector<std::pair<UchanMsg, uint16_t>> storm;
    uint16_t shard = static_cast<uint16_t>(rng.Below(2));
    {  // xmit chain whose fragments sum past the jumbo ceiling
      int32_t ids[6] = {0, 1, 2, 3, 4, 5};
      uint32_t lens[6];
      for (uint32_t& len : lens) {
        len = 2048;
      }
      UchanMsg m;
      wire::EncodeXmitChain(shard, ids, lens, 6, 6 * 2048, &m);
      storm.emplace_back(std::move(m), shard);
    }
    {  // xmit chain count/payload mismatch
      int32_t ids[2] = {0, 1};
      uint32_t lens[2] = {512, 512};
      UchanMsg m;
      wire::EncodeXmitChain(shard, ids, lens, 2, 1024, &m);
      m.args[1] += 1 + rng.Below(4);
      storm.emplace_back(std::move(m), shard);
    }
    {  // truncated xmit chain payload
      int32_t ids[2] = {0, 1};
      uint32_t lens[2] = {512, 512};
      UchanMsg m;
      wire::EncodeXmitChain(shard, ids, lens, 2, 1024, &m);
      m.inline_data.resize(m.inline_data.size() - 1 - rng.Below(7));
      storm.emplace_back(std::move(m), shard);
    }
    {  // single xmit with an oversize staged buffer claim
      UchanMsg m;
      m.opcode = kEthUpXmit;
      m.droppable = true;
      m.args[0] = shard;
      m.buffer_id = 0;
      m.buffer_len = static_cast<uint32_t>(kern::kJumboMaxFrameBytes + 1 + rng.Below(64));
      storm.emplace_back(std::move(m), shard);
    }
    {  // unknown upcall opcode
      UchanMsg m;
      m.opcode = 0xbeef0 + static_cast<uint32_t>(rng.Below(16));
      storm.emplace_back(std::move(m), shard);
    }
    for (auto& [msg, s] : storm) {
      ++tally.up_fired;
      (void)bench.ctx->ctl(s).SendAsync(std::move(msg));
    }
    bench.host->Pump();
  }
  bench.host->Pump();
  tally.up_rejected += bench.host->runtime()->wire_rejects().total() - up_rejects_before;
  tally.frames_leaked += bench.link.stats().frames[0].load() - frames_before;

  // --- after both storms, legitimate traffic must flow untouched ---
  uint64_t all_rejects_before =
      bench.proxy->wire_rejects().total() + bench.host->runtime()->wire_rejects().total();
  rx_before = netdev->stats().rx_packets.load();
  std::vector<uint8_t> payload(200, 0x33);
  constexpr int kValidFrames = 20;
  for (int i = 0; i < kValidFrames; ++i) {
    (void)bench.PeerSend(static_cast<uint16_t>(5000 + i), 80,
                         {payload.data(), payload.size()});
    bench.host->Pump();
  }
  bench.host->Pump();
  tally.valid_sent += kValidFrames;
  tally.valid_delivered += netdev->stats().rx_packets.load() - rx_before;
  uint64_t all_rejects_after =
      bench.proxy->wire_rejects().total() + bench.host->runtime()->wire_rejects().total();
  if (all_rejects_after != all_rejects_before) {
    uint64_t delta = all_rejects_after - all_rejects_before;
    tally.valid_rejected += delta;
    std::fprintf(stderr, "FUZZ: %llu valid live messages structurally rejected\n",
                 (unsigned long long)delta);
  }
}

void WriteJson(const Tally& t, int seeds, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"fuzz_wire\",\n");
  std::fprintf(out, "  \"seeds\": %d,\n  \"rounds_per_seed\": %d,\n", seeds, kRoundsPerSeed);
  std::fprintf(out, "  \"registry_messages\": %zu,\n", wire::SchemaCount());
  std::fprintf(out, "  \"valid_messages\": %llu,\n  \"valid_rejected\": %llu,\n",
               (unsigned long long)t.valid_messages, (unsigned long long)t.valid_rejected);
  std::fprintf(out,
               "  \"mutations\": {\"payload\": %llu, \"count_mismatch\": %llu, "
               "\"field_bounds\": %llu, \"wrong_shard\": %llu},\n",
               (unsigned long long)t.mut_payload, (unsigned long long)t.mut_count,
               (unsigned long long)t.mut_bounds, (unsigned long long)t.mut_shard);
  std::fprintf(out, "  \"malformed_accepted\": %llu,\n",
               (unsigned long long)t.malformed_accepted);
  std::fprintf(out,
               "  \"live\": {\"down_fired\": %llu, \"down_rejected\": %llu, "
               "\"up_fired\": %llu, \"up_rejected\": %llu, \"frames_leaked\": %llu, "
               "\"stack_deliveries\": %llu, \"valid_sent\": %llu, "
               "\"valid_delivered\": %llu},\n",
               (unsigned long long)t.down_fired, (unsigned long long)t.down_rejected,
               (unsigned long long)t.up_fired, (unsigned long long)t.up_rejected,
               (unsigned long long)t.frames_leaked, (unsigned long long)t.stack_deliveries,
               (unsigned long long)t.valid_sent, (unsigned long long)t.valid_delivered);
  std::fprintf(out, "  \"pass\": %s\n}\n", t.Pass() ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace sud

int main(int argc, char** argv) {
  sud::Logger::Get().set_min_level(sud::LogLevel::kError);
  int seeds = 8;
  if (argc > 1) {
    seeds = std::atoi(argv[1]);
    if (seeds < 1) {
      seeds = 1;
    }
  }
  sud::Tally total;
  std::printf("fuzz_wire: %d seed(s), %d rounds x %zu registry messages each\n\n", seeds,
              sud::kRoundsPerSeed, sud::wire::SchemaCount());
  std::printf("%-6s %10s %10s %10s %10s %10s %10s\n", "seed", "valid", "mutated", "down",
              "up", "leaked", "delivered");
  for (int seed = 1; seed <= seeds; ++seed) {
    sud::Tally tally;
    sud::Rng rng{0x50d00000ull + static_cast<uint64_t>(seed)};
    sud::FuzzValidator(rng, tally);
    sud::FuzzLiveBoundary(rng, tally);
    std::printf("%-6d %10llu %10llu %6llu/%-6llu %4llu/%-6llu %6llu %6llu/%llu\n", seed,
                (unsigned long long)tally.valid_messages,
                (unsigned long long)(tally.mut_payload + tally.mut_count + tally.mut_bounds +
                                     tally.mut_shard),
                (unsigned long long)tally.down_rejected, (unsigned long long)tally.down_fired,
                (unsigned long long)tally.up_rejected, (unsigned long long)tally.up_fired,
                (unsigned long long)tally.frames_leaked,
                (unsigned long long)tally.valid_delivered,
                (unsigned long long)tally.valid_sent);
    total.Add(tally);
  }
  bool pass = total.Pass();
  std::printf("\nfuzz_wire %s: %llu valid accepted (%llu wrongly rejected), "
              "%llu mutations (%llu wrongly accepted),\n",
              pass ? "PASS" : "FAIL", (unsigned long long)total.valid_messages,
              (unsigned long long)total.valid_rejected,
              (unsigned long long)(total.mut_payload + total.mut_count + total.mut_bounds +
                                   total.mut_shard),
              (unsigned long long)total.malformed_accepted);
  std::printf("live: %llu/%llu down + %llu/%llu up forgeries contained, %llu frames leaked, "
              "%llu/%llu valid frames delivered after the storms.\n",
              (unsigned long long)total.down_rejected, (unsigned long long)total.down_fired,
              (unsigned long long)total.up_rejected, (unsigned long long)total.up_fired,
              (unsigned long long)total.frames_leaked,
              (unsigned long long)total.valid_delivered, (unsigned long long)total.valid_sent);
  sud::WriteJson(total, seeds, "BENCH_fuzz_wire.json");
  return pass ? 0 : 1;
}
