// Section 5.2 attack matrix: every malicious driver from src/drivers runs
// against the full stack under four hardware configurations, and the table
// reports whether the attack was contained. This is the paper's security
// evaluation ("we tested SUD's security by constructing explicit test cases
// for the attacks...") as one reproducible binary.

#include <cstdio>
#include <string>
#include <vector>

#include "src/drivers/malicious.h"
#include "src/base/log.h"
#include "tests/harness.h"

namespace sud {
namespace {

using testing::NetBench;

struct Cell {
  std::string attack;
  std::string config;
  bool contained;
  std::string note;
};

NetBench::Options Config(hw::IommuMode mode, bool remapping, bool acs) {
  NetBench::Options options;
  options.machine.iommu_mode = mode;
  options.machine.interrupt_remapping = remapping;
  options.policy.enable_acs = acs;
  return options;
}

Cell RunDmaRead(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  uint64_t secret = bench.machine.dram().AllocPages(1).value();
  auto attack = std::make_unique<drivers::DmaAttackDriver>(secret);
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));
  (void)p->LaunchTxRead();
  bool contained = bench.link.stats().frames[0] == 0 && !bench.machine.iommu().faults().empty();
  return {"arbitrary DMA read", config, contained, "iommu fault, nothing transmitted"};
}

Cell RunDmaWrite(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  uint64_t victim = bench.machine.dram().AllocPages(1).value();
  std::vector<uint8_t> before(64);
  (void)bench.machine.dram().Read(victim, {before.data(), before.size()});
  auto attack = std::make_unique<drivers::DmaAttackDriver>(victim);
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));
  (void)p->LaunchRxWrite();
  std::vector<uint8_t> payload(64, 0xee);
  (void)bench.PeerSend(1, 80, {payload.data(), payload.size()});
  std::vector<uint8_t> after(64);
  (void)bench.machine.dram().Read(victim, {after.data(), after.size()});
  return {"arbitrary DMA write", config, before == after, "victim memory intact"};
}

Cell RunP2p(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  uint64_t victim_bar = bench.peer_nic.config().bar(0);
  uint32_t before = bench.peer_nic.MmioRead(0, devices::kNicRegTdbal);
  auto attack = std::make_unique<drivers::DmaAttackDriver>(victim_bar + devices::kNicRegTdbal);
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));
  (void)p->LaunchRxWrite();
  std::vector<uint8_t> payload(64, 0xee);
  (void)bench.PeerSend(1, 80, {payload.data(), payload.size()});
  bool contained = bench.sw->p2p_deliveries() == 0 &&
                   bench.peer_nic.MmioRead(0, devices::kNicRegTdbal) == before;
  return {"peer-to-peer DMA", config, contained,
          contained ? "ACS redirect -> iommu fault" : "LANDED in peer registers"};
}

Cell RunMsiStorm(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  auto attack = std::make_unique<drivers::MsiStormDriver>(0);
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));
  (void)p->Arm(128);
  std::vector<uint8_t> frame(64);
  frame[0] = bench.ctx->irq_vector();  // forge the driver's own vector
  uint64_t handled_before = bench.kernel.interrupts_handled();
  for (int i = 0; i < 64; ++i) {
    (void)bench.link.Transmit(1, {frame.data(), frame.size()});
  }
  uint64_t storm = bench.kernel.interrupts_handled() - handled_before;
  const auto& stats = bench.ctx->interrupt_stats();
  bool contained = stats.remap_blocked || stats.msi_page_unmapped || storm <= 2;
  char note[96];
  std::snprintf(note, sizeof(note), "%llu of 64 forged MSIs reached the CPU%s",
                (unsigned long long)storm,
                stats.remap_blocked      ? " (remapping blocked the rest)"
                : stats.msi_page_unmapped ? " (MSI page unmapped)"
                : contained               ? ""
                                          : " — LIVELOCK (the paper's §5.2 weakness)");
  return {"stray-DMA MSI storm", config, contained, note};
}

Cell RunUnresponsive(NetBench::Options options, const std::string& config) {
  options.sud.uchan.sync_timeout_ms = 25;
  NetBench bench(options);
  (void)bench.host->Start(std::make_unique<drivers::UnresponsiveDriver>(),
                          uml::DriverHost::Mode::kComatose);
  Status status = bench.kernel.net().BringUp("eth0");
  bool contained = status.code() == ErrorCode::kTimedOut;
  return {"unresponsive driver", config, contained, "sync upcall interrupted, kernel live"};
}

Cell RunConfigAttack(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  auto attack = std::make_unique<drivers::ConfigAttackDriver>();
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));
  bool contained = p->outcome().succeeded == 0;
  char note[64];
  std::snprintf(note, sizeof(note), "%u/%u sensitive writes denied", p->outcome().denied,
                p->outcome().attempts);
  return {"config-space rewrite", config, contained, note};
}

Cell RunIoPortAttack(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  auto attack = std::make_unique<drivers::IoPortAttackDriver>();
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));
  bool contained = p->denied() == p->attempts();
  return {"ungranted IO ports", config, contained, "IOPB denied every access"};
}

Cell RunResourceHog(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  auto attack = std::make_unique<drivers::ResourceHogDriver>();
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));
  bool contained = p->hit_limit();
  char note[64];
  std::snprintf(note, sizeof(note), "stopped after %llu MB (rlimit)",
                (unsigned long long)(p->bytes_obtained() / (1024 * 1024)));
  return {"resource exhaustion", config, contained, note};
}

}  // namespace
}  // namespace sud

int main() {
  using namespace sud;
  Logger::Get().set_min_level(LogLevel::kError);

  struct HwConfig {
    std::string name;
    NetBench::Options options;
  };
  std::vector<HwConfig> configs = {
      {"VT-d, no IR (paper)", Config(hw::IommuMode::kIntelVtd, false, true)},
      {"VT-d + IR", Config(hw::IommuMode::kIntelVtd, true, true)},
      {"AMD-Vi", Config(hw::IommuMode::kAmdVi, false, true)},
  };

  std::vector<Cell> cells;
  for (const HwConfig& config : configs) {
    cells.push_back(RunDmaRead(config.options, config.name));
    cells.push_back(RunDmaWrite(config.options, config.name));
    cells.push_back(RunP2p(config.options, config.name));
    cells.push_back(RunMsiStorm(config.options, config.name));
    cells.push_back(RunUnresponsive(config.options, config.name));
    cells.push_back(RunConfigAttack(config.options, config.name));
    cells.push_back(RunIoPortAttack(config.options, config.name));
    cells.push_back(RunResourceHog(config.options, config.name));
  }
  // The vulnerable no-ACS configuration, to show the attack is real.
  cells.push_back(RunP2p(Config(hw::IommuMode::kIntelVtd, false, false), "ACS OFF (vulnerable)"));

  std::printf("\nSection 5.2 attack matrix: malicious drivers vs the confinement stack\n");
  std::printf("%-22s %-22s %-11s %s\n", "Attack", "Hardware config", "Contained?", "Detail");
  std::printf("%s\n", std::string(110, '-').c_str());
  int contained = 0;
  for (const Cell& cell : cells) {
    std::printf("%-22s %-22s %-11s %s\n", cell.attack.c_str(), cell.config.c_str(),
                cell.contained ? "YES" : "NO", cell.note.c_str());
    contained += cell.contained ? 1 : 0;
  }
  std::printf("\n%d/%zu contained. Expected NOs: the stray-DMA MSI storm on VT-d without\n",
              contained, cells.size());
  std::printf("interrupt remapping (the paper's own §5.2 limitation) and peer-to-peer DMA\n");
  std::printf("with ACS disabled (the configuration SUD exists to forbid).\n");
  return 0;
}
