// Section 5.2 attack matrix: every malicious driver from src/drivers runs
// against the full stack under four hardware configurations, and the table
// reports whether the attack was contained. This is the paper's security
// evaluation ("we tested SUD's security by constructing explicit test cases
// for the attacks...") as one reproducible binary.

#include <algorithm>
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/log.h"
#include "src/drivers/malicious.h"
#include "src/kern/flow_table.h"
#include "src/kern/rss_rebalancer.h"
#include "src/uml/supervisor.h"
#include "tests/harness.h"

namespace sud {
namespace {

using testing::NetBench;

struct Cell {
  std::string attack;
  std::string config;
  bool contained;
  std::string note;
};

NetBench::Options Config(hw::IommuMode mode, bool remapping, bool acs) {
  NetBench::Options options;
  options.machine.iommu_mode = mode;
  options.machine.interrupt_remapping = remapping;
  options.policy.enable_acs = acs;
  return options;
}

Cell RunDmaRead(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  uint64_t secret = bench.machine.dram().AllocPages(1).value();
  auto attack = std::make_unique<drivers::DmaAttackDriver>(secret);
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));
  (void)p->LaunchTxRead();
  bool contained = bench.link.stats().frames[0] == 0 && !bench.machine.iommu().faults().empty();
  return {"arbitrary DMA read", config, contained, "iommu fault, nothing transmitted"};
}

Cell RunDmaWrite(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  uint64_t victim = bench.machine.dram().AllocPages(1).value();
  std::vector<uint8_t> before(64);
  (void)bench.machine.dram().Read(victim, {before.data(), before.size()});
  auto attack = std::make_unique<drivers::DmaAttackDriver>(victim);
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));
  (void)p->LaunchRxWrite();
  std::vector<uint8_t> payload(64, 0xee);
  (void)bench.PeerSend(1, 80, {payload.data(), payload.size()});
  std::vector<uint8_t> after(64);
  (void)bench.machine.dram().Read(victim, {after.data(), after.size()});
  return {"arbitrary DMA write", config, before == after, "victim memory intact"};
}

Cell RunP2p(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  uint64_t victim_bar = bench.peer_nic.config().bar(0);
  uint32_t before = bench.peer_nic.MmioRead(0, devices::kNicRegTdbal);
  auto attack = std::make_unique<drivers::DmaAttackDriver>(victim_bar + devices::kNicRegTdbal);
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));
  (void)p->LaunchRxWrite();
  std::vector<uint8_t> payload(64, 0xee);
  (void)bench.PeerSend(1, 80, {payload.data(), payload.size()});
  bool contained = bench.sw->p2p_deliveries() == 0 &&
                   bench.peer_nic.MmioRead(0, devices::kNicRegTdbal) == before;
  return {"peer-to-peer DMA", config, contained,
          contained ? "ACS redirect -> iommu fault" : "LANDED in peer registers"};
}

Cell RunMsiStorm(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  auto attack = std::make_unique<drivers::MsiStormDriver>(0);
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));
  (void)p->Arm(128);
  std::vector<uint8_t> frame(64);
  frame[0] = bench.ctx->irq_vector();  // forge the driver's own vector
  uint64_t handled_before = bench.kernel.interrupts_handled();
  for (int i = 0; i < 64; ++i) {
    (void)bench.link.Transmit(1, {frame.data(), frame.size()});
  }
  uint64_t storm = bench.kernel.interrupts_handled() - handled_before;
  const auto& stats = bench.ctx->interrupt_stats();
  bool contained = stats.remap_blocked || stats.msi_page_unmapped || storm <= 2;
  char note[96];
  std::snprintf(note, sizeof(note), "%llu of 64 forged MSIs reached the CPU%s",
                (unsigned long long)storm,
                stats.remap_blocked      ? " (remapping blocked the rest)"
                : stats.msi_page_unmapped ? " (MSI page unmapped)"
                : contained               ? ""
                                          : " — LIVELOCK (the paper's §5.2 weakness)");
  return {"stray-DMA MSI storm", config, contained, note};
}

Cell RunUnresponsive(NetBench::Options options, const std::string& config) {
  options.sud.uchan.sync_timeout_ms = 25;
  NetBench bench(options);
  (void)bench.host->Start(std::make_unique<drivers::UnresponsiveDriver>(),
                          uml::DriverHost::Mode::kComatose);
  Status status = bench.kernel.net().BringUp("eth0");
  bool contained = status.code() == ErrorCode::kTimedOut;
  return {"unresponsive driver", config, contained, "sync upcall interrupted, kernel live"};
}

Cell RunConfigAttack(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  auto attack = std::make_unique<drivers::ConfigAttackDriver>();
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));
  bool contained = p->outcome().succeeded == 0;
  char note[64];
  std::snprintf(note, sizeof(note), "%u/%u sensitive writes denied", p->outcome().denied,
                p->outcome().attempts);
  return {"config-space rewrite", config, contained, note};
}

Cell RunIoPortAttack(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  auto attack = std::make_unique<drivers::IoPortAttackDriver>();
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));
  bool contained = p->denied() == p->attempts();
  return {"ungranted IO ports", config, contained, "IOPB denied every access"};
}

// RETA starvation: a driver programs the RSS indirection table so every flow
// concentrates on one queue, starving the others — then a rebalance
// (reprogramming the identity table) must restore the spread. The table
// CONTENT is the attack; the programming interface is the legitimate one.
Cell RunRetaStarvation(NetBench::Options options, const std::string& config) {
  options.nic_queues = 4;
  NetBench bench(options);
  if (!bench.StartSut().ok()) {
    return {"RETA starvation", config, false, "sut failed to start"};
  }
  bench.MaskPeerIrq();
  kern::NetDevice* netdev = bench.kernel.net().Find(bench.SutIfname());
  std::vector<uint8_t> payload(256, 0x5a);
  auto flood = [&](int packets) {
    std::array<uint64_t, 4> before{};
    for (uint16_t q = 0; q < 4; ++q) {
      before[q] = netdev->queue_stats(q).rx_packets.load();
    }
    for (int sent = 0; sent < packets; sent += 16) {
      (void)bench.PeerSendFlowBurst(21000, 80, {payload.data(), payload.size()}, 16, 16);
      bench.host->Pump();
    }
    std::array<uint64_t, 4> delta{};
    for (uint16_t q = 0; q < 4; ++q) {
      delta[q] = netdev->queue_stats(q).rx_packets.load() - before[q];
    }
    return delta;
  };
  std::array<uint64_t, 4> balanced = flood(1024);
  // The attack: every hash bucket -> queue 0.
  std::array<uint8_t, devices::kNicRetaEntries> evil{};
  (void)bench.sut_driver->ProgramReta(evil);
  std::array<uint64_t, 4> starved = flood(1024);
  // The correction: back to the identity spread.
  (void)bench.sut_driver->ProgramReta(drivers::E1000eDriver::IdentityReta(4));
  std::array<uint64_t, 4> rebalanced = flood(1024);

  auto spread = [](const std::array<uint64_t, 4>& d) {
    int active = 0;
    for (uint64_t v : d) {
      active += v > 0 ? 1 : 0;
    }
    return active;
  };
  bool starvation_visible = starved[0] == 1024 && spread(starved) == 1;
  bool rebalance_works = spread(rebalanced) == spread(balanced) && spread(rebalanced) >= 3;
  bool conserved = balanced[0] + balanced[1] + balanced[2] + balanced[3] == 1024 &&
                   rebalanced[0] + rebalanced[1] + rebalanced[2] + rebalanced[3] == 1024;
  char note[96];
  std::snprintf(note, sizeof(note),
                "spread %d queues -> starved %d -> rebalanced %d (all frames delivered)",
                spread(balanced), spread(starved), spread(rebalanced));
  return {"RETA starvation", config, starvation_visible && rebalance_works && conserved, note};
}

// Forged RSS load statistics: the adaptive RETA rebalancer consumes a
// per-bucket load picture that ultimately derives from driver-visible
// traffic — a compromised driver can try to poison that control loop with
// forged observations. Three forgeries, each fed straight into the
// rebalancer for many control ticks while REAL 4-queue traffic flows:
//   all-zero:    pretend the NIC is idle (freeze the balancer forever);
//   all-max:     saturate every counter (overflow the plan arithmetic);
//   oscillating: alternate the "hot" queue every tick (livelock the loop,
//                thrash the device RETA with unbounded reprograms).
// Contained means: every adopted table stays in-bounds, reprograms respect
// the rate limits (the device's own RETA write counter agrees), the control
// loop terminates, and traffic still flows conserved afterward.
Cell RunForgedLoadStats(NetBench::Options options, const std::string& config,
                        const char* mode) {
  options.nic_queues = 4;
  NetBench bench(options);
  char name[48];
  std::snprintf(name, sizeof(name), "forged load stats (%s)", mode);
  if (!bench.StartSut().ok()) {
    return {name, config, false, "sut failed to start"};
  }
  bench.MaskPeerIrq();
  kern::NetDevice* netdev = bench.kernel.net().Find(bench.SutIfname());

  kern::RssRebalancer::Options balancer_options;
  balancer_options.num_queues = 4;
  balancer_options.min_interval_ticks = 4;
  balancer_options.window_ticks = 64;
  balancer_options.max_reprograms_per_window = 8;
  kern::RssRebalancer balancer(balancer_options);

  // The forged control loop, with real traffic flowing underneath the whole
  // time (the attack must not need a quiet NIC to be judged).
  constexpr int kTicks = 256;
  std::vector<uint8_t> payload(256, 0x6b);
  uint64_t rx_before = netdev->stats().rx_packets.load();
  uint64_t reta_dwords_before = bench.sut_nic.stats().reta_writes.load();
  uint64_t reprograms = 0;
  bool tables_in_bounds = true;
  std::array<uint64_t, kern::kFlowBuckets> forged{};
  for (int tick = 0; tick < kTicks; ++tick) {
    if (std::string(mode) == "all-zero") {
      forged.fill(0);
    } else if (std::string(mode) == "all-max") {
      forged.fill(~0ull);
    } else {  // oscillating: every bucket of one queue "scorching", rotating
      for (uint32_t b = 0; b < kern::kFlowBuckets; ++b) {
        forged[b] = (b % 4 == static_cast<uint32_t>(tick) % 4) ? (1u << 16) : 1;
      }
    }
    kern::RssRebalancer::Table plan{};
    if (balancer.Observe(forged, &plan)) {
      ++reprograms;
      for (uint32_t b = 0; b < kern::kFlowBuckets; ++b) {
        tables_in_bounds = tables_in_bounds && plan[b] < 4;
      }
      (void)bench.sut_driver->ProgramReta(plan);
    }
    (void)bench.PeerSendFlowBurst(22000, 80, {payload.data(), payload.size()}, 16, 16);
    bench.host->Pump();
  }
  // Device-side truth: RETA dword writes counted by the NIC itself must
  // agree with the bounded reprogram count (32 dwords per full table), and
  // whatever was last programmed steers in-bounds by construction.
  uint64_t reta_dwords = bench.sut_nic.stats().reta_writes.load() - reta_dwords_before;
  std::array<uint8_t, devices::kNicRetaEntries> reta = bench.sut_nic.RetaSnapshot();
  bool device_in_bounds = true;
  for (uint8_t entry : reta) {
    device_in_bounds = device_in_bounds && entry < devices::kNicNumQueues;
  }
  uint64_t rate_bound =
      std::min<uint64_t>(kTicks / balancer_options.min_interval_ticks + 1,
                         (kTicks / balancer_options.window_ticks + 1) *
                             balancer_options.max_reprograms_per_window);
  bool rate_limited = reprograms <= rate_bound && reta_dwords == reprograms * 32;
  uint64_t delivered = netdev->stats().rx_packets.load() - rx_before;
  bool traffic_flows = delivered == static_cast<uint64_t>(kTicks) * 16 &&
                       netdev->stats().rx_dropped.load() == 0;
  char note[96];
  std::snprintf(note, sizeof(note),
                "%llu reprograms (bound %llu), tables in-bounds, %llu/%d frames delivered",
                (unsigned long long)reprograms, (unsigned long long)rate_bound,
                (unsigned long long)delivered, kTicks * 16);
  return {name, config, tables_in_bounds && device_in_bounds && rate_limited && traffic_flows,
          note};
}

// Torn/endless EOP chains, marshalled: forged netif_rx chain downcalls with
// oversize totals, over-cap fragment counts and wild fragment addresses. The
// proxy must reject every one before dereferencing a byte.
Cell RunTornChain(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  auto attack = std::make_unique<drivers::ChainAttackDriver>();
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));
  (void)p->FireOversizeChains(8);
  (void)p->FireOverCapChains(8);
  (void)p->FireWildChains(8);
  bench.host->Pump();
  uint64_t rejected = bench.proxy->stats().rx_bad_chain.load();
  uint64_t delivered = bench.kernel.net().Find("eth0") != nullptr
                           ? bench.kernel.net().Find("eth0")->stats().rx_packets.load()
                           : 0;
  bool contained = rejected == 24 && delivered == 0;
  char note[80];
  std::snprintf(note, sizeof(note), "%llu/24 forged chains rejected, %llu delivered",
                (unsigned long long)rejected, (unsigned long long)delivered);
  return {"torn EOP chain", config, contained, note};
}

// Mid-burst descriptor rewrite: the driver rewrites already-fetched TX
// descriptors (aiming them at a secret) while the device is mid-reap. The
// cacheline burst snapshot means the device transmits exactly the armed
// bytes, exactly once — the rewrite lands nowhere.
Cell RunDescRewrite(NetBench::Options options, const std::string& config) {
  options.start_peer = false;
  NetBench bench(options);
  uint64_t secret = bench.machine.dram().AllocPages(1).value();
  std::vector<uint8_t> secret_bytes(64, 0x5e);
  (void)bench.machine.dram().Write(secret, {secret_bytes.data(), secret_bytes.size()});

  auto attack = std::make_unique<drivers::DescRewriteAttackDriver>();
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));

  // The perfectly-timed attacker (drivers::DescRewritePeer): rewrites
  // descriptors 1..3 — sitting in the device's fetched cacheline — during
  // the first frame's wire hop.
  drivers::DescRewritePeer peer;
  peer.driver = p;
  peer.target = secret;
  bench.link.Attach(1, &peer);

  (void)p->ArmAndDoorbell(8, 0xab);
  uint64_t faults = bench.machine.iommu().faults().size();
  size_t first_pass = peer.frames.size();
  (void)p->RedoorbellSameTail();  // replay probe: nothing may retransmit
  bool benign = true;
  for (const std::vector<uint8_t>& frame : peer.frames) {
    for (uint8_t byte : frame) {
      benign &= byte == 0xab;
    }
  }
  bool contained = first_pass == 8 && peer.frames.size() == 8 && benign && faults == 0;
  char note[96];
  std::snprintf(note, sizeof(note),
                "%zu/8 armed frames on wire, rewrite ignored, %llu iommu faults, no replay",
                peer.frames.size(), (unsigned long long)faults);
  return {"mid-burst rewrite", config, contained, note};
}

using testing::WireRecorder;

// Endless TX chain: a whole ring of armed fragments with CMD.EOP nowhere.
// The device's gather must hit its bound, drop the forged frame whole,
// recycle the ring, and keep transmitting well-formed frames afterwards.
Cell RunTxEndlessChain(NetBench::Options options, const std::string& config) {
  options.start_peer = false;
  NetBench bench(options);
  WireRecorder sink;
  bench.link.Attach(1, &sink);
  auto attack = std::make_unique<drivers::TxChainAttackDriver>();
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));
  (void)p->FireEndlessChain(0x5e);
  uint64_t dropped = bench.sut_nic.stats().tx_dropped_chain.load();
  size_t leaked = sink.frames.size();
  // Liveness: the first EOP after the drop terminates the dropped frame (the
  // resync consumes it); the next frame must hit the wire.
  (void)p->SendGoodFrame(0xa1, 64);
  (void)p->SendGoodFrame(0xa2, 64);
  bool live = sink.frames.size() == 1 && sink.frames[0].size() == 64 && sink.AllBytes(0xa2);
  bool contained = leaked == 0 && dropped == 1 && live;
  char note[96];
  std::snprintf(note, sizeof(note),
                "%zu forged bytes on wire, %llu bounded drop(s), device live after",
                leaked, (unsigned long long)dropped);
  return {"endless TX chain", config, contained, note};
}

// Torn TX chain: fragments armed, the EOP never rung. Nothing may reach the
// wire and nothing may wedge; arming the terminating fragment later must
// transmit the WHOLE frame exactly once (whole-frame-or-nothing).
Cell RunTxTornChain(NetBench::Options options, const std::string& config) {
  options.start_peer = false;
  NetBench bench(options);
  WireRecorder sink;
  bench.link.Attach(1, &sink);
  auto attack = std::make_unique<drivers::TxChainAttackDriver>();
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));
  (void)p->FireTornChain(3, 0x7c);
  bool parked = sink.frames.empty() && bench.sut_nic.stats().tx_dropped_chain.load() == 0;
  (void)p->FinishTornChain(0x7c);
  bool whole = sink.frames.size() == 1 &&
               sink.frames[0].size() == 4ull * p->frag_len() && sink.AllBytes(0x7c);
  bool contained = parked && whole;
  char note[96];
  std::snprintf(note, sizeof(note), "parked %s, completed whole %s (%zu frames)",
                parked ? "clean" : "LEAKED", whole ? "once" : "WRONG", sink.frames.size());
  return {"torn TX chain", config, contained, note};
}

// Over-cap TX chain: more fragments than any legal chain can span, EOP at
// the end. Must drop whole at the descriptor cap; the trailing EOP belongs
// to the dropped frame (resync), and the device stays live.
Cell RunTxOverCapChain(NetBench::Options options, const std::string& config) {
  options.start_peer = false;
  NetBench bench(options);
  WireRecorder sink;
  bench.link.Attach(1, &sink);
  auto attack = std::make_unique<drivers::TxChainAttackDriver>();
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));
  (void)p->FireOverCapChain(4, 0x9d);
  uint64_t dropped = bench.sut_nic.stats().tx_dropped_chain.load();
  size_t leaked = sink.frames.size();
  (void)p->SendGoodFrame(0xa3, 64);
  bool live = sink.frames.size() == 1 && sink.AllBytes(0xa3);
  bool contained = leaked == 0 && dropped == 1 && live;
  char note[96];
  std::snprintf(note, sizeof(note),
                "%zu forged bytes on wire, %llu bounded drop(s), EOP consumed by resync",
                leaked, (unsigned long long)dropped);
  return {"over-cap TX chain", config, contained, note};
}

// Forged kEthUpXmitChain messages: fragment-record count mismatches, bogus
// pool ids, per-fragment lengths above one staging buffer, oversize totals.
// The runtime must reject each one before a single descriptor is armed.
Cell RunTxChainForgery(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  if (!bench.StartSut().ok()) {
    return {"forged TX chain upcall", config, false, "sut failed to start"};
  }
  uint64_t tx_before = bench.sut_nic.stats().tx_frames.load();
  auto forge = [&](uint64_t claimed_count, std::vector<std::pair<uint32_t, uint32_t>> records) {
    UchanMsg msg;
    msg.opcode = kEthUpXmitChain;
    msg.args[0] = 0;
    msg.args[1] = claimed_count;
    msg.inline_data.resize(records.size() * kXmitChainFragBytes);
    for (size_t i = 0; i < records.size(); ++i) {
      StoreLe32(msg.inline_data.data() + i * kXmitChainFragBytes, records[i].first);
      StoreLe32(msg.inline_data.data() + i * kXmitChainFragBytes + 4, records[i].second);
    }
    (void)bench.ctx->ctl().SendAsync(std::move(msg));
  };
  forge(3, {{0, 512}, {1, 512}});                            // count != payload
  forge(2, {{0, 512}, {60000, 512}});                        // bogus pool id
  forge(2, {{0, 4096}, {1, 512}});                           // len > one buffer
  forge(6, {{0, 2048}, {1, 2048}, {2, 2048}, {3, 2048}, {4, 2048}, {5, 2048}});  // oversize
  bench.host->Pump();
  uint64_t rejected = bench.host->runtime()->stats().xmit_chains_rejected.load();
  uint64_t armed = bench.host->runtime()->stats().xmit_chain_upcalls.load();
  uint64_t transmitted = bench.sut_nic.stats().tx_frames.load() - tx_before;
  bool contained = rejected == 4 && armed == 0 && transmitted == 0;
  char note[96];
  std::snprintf(note, sizeof(note), "%llu/4 forged chains rejected before arming, %llu armed",
                (unsigned long long)rejected, (unsigned long long)armed);
  return {"forged TX chain upcall", config, contained, note};
}

// Buffer-id reuse across a chain completion: one coalesced free batch that
// returns the same pool buffer repeatedly plus an id that never existed.
// The pool must tolerate and count it, staying internally consistent.
Cell RunTxBufferReuse(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  auto attack = std::make_unique<drivers::BufferReuseAttackDriver>();
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));
  uint32_t free_before = bench.ctx->pool().free_count();
  (void)p->FireReusedFrees(3, 5);
  bench.host->Pump();
  uint64_t double_frees = bench.ctx->pool().double_frees();
  uint32_t free_after = bench.ctx->pool().free_count();
  // All ids were unallocated: every "free" must count as a double free and
  // the free list must not grow.
  bool contained = double_frees == 6 && free_after == free_before;
  char note[96];
  std::snprintf(note, sizeof(note), "%llu reused frees absorbed, free list %u -> %u",
                (unsigned long long)double_frees, free_before, free_after);
  return {"TX buffer-id reuse", config, contained, note};
}

// Mid-CHAIN descriptor rewrite: the driver rewrites an SG chain's
// descriptors while the device is mid-pass (the lead frame's wire hop, after
// the cacheline burst fetch). Snapshot immunity must hold fragment-wise: the
// chain transmits exactly the armed bytes, once, and the secret stays home.
Cell RunTxMidChainRewrite(NetBench::Options options, const std::string& config) {
  options.start_peer = false;
  NetBench bench(options);
  uint64_t secret = bench.machine.dram().AllocPages(1).value();
  std::vector<uint8_t> secret_bytes(64, 0x5e);
  (void)bench.machine.dram().Write(secret, {secret_bytes.data(), secret_bytes.size()});

  auto attack = std::make_unique<drivers::DescRewriteAttackDriver>();
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));

  // Repoints the chain's three fragments at the secret, mid-pass.
  drivers::DescRewritePeer peer;
  peer.driver = p;
  peer.target = secret;
  bench.link.Attach(1, &peer);

  (void)p->ArmChainAndDoorbell(3, 0xab);
  uint64_t faults = bench.machine.iommu().faults().size();
  bool benign = true;
  for (const std::vector<uint8_t>& frame : peer.frames) {
    for (uint8_t byte : frame) {
      benign &= byte == 0xab;
    }
  }
  // Two frames: the 64-byte lead, then the whole 192-byte chain of armed
  // bytes — the rewrite landed nowhere.
  bool contained = peer.frames.size() == 2 && peer.frames[0].size() == 64 &&
                   peer.frames[1].size() == 192 && benign && faults == 0;
  char note[96];
  std::snprintf(note, sizeof(note),
                "%zu frames (chain whole), rewrite ignored, %llu iommu faults",
                peer.frames.size(), (unsigned long long)faults);
  return {"mid-chain TX rewrite", config, contained, note};
}

Cell RunResourceHog(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  auto attack = std::make_unique<drivers::ResourceHogDriver>();
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));
  bool contained = p->hit_limit();
  char note[64];
  std::snprintf(note, sizeof(note), "stopped after %llu MB (rlimit)",
                (unsigned long long)(p->bytes_obtained() / (1024 * 1024)));
  return {"resource exhaustion", config, contained, note};
}

// ---- Restart-time attacks: the crash/recovery window (PR 6) -------------
//
// Everything above attacks a RUNNING driver. The cells below attack the
// recovery machinery itself: stale handles replayed across an epoch, a
// teardown the driver tries to wedge, crash loops against the restart
// budget, and DMA landing in the windows where no driver instance exists.

uml::DriverSupervisor::DriverFactory E1000eFactory(uint32_t queues, uint32_t mtu) {
  return [queues, mtu]() -> std::unique_ptr<uml::Driver> {
    return std::make_unique<drivers::E1000eDriver>(queues, mtu);
  };
}

// Stale-handle replay: the driver harvests real pool buffer ids, crashes,
// and its successor replays the dead epoch's handles as a free batch. Every
// one must be rejected (the epoch tag no longer matches) and counted; none
// may touch the fresh pool's free list.
Cell RunStaleFreeReplay(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  std::vector<int32_t> notebook;
  (void)bench.host->Start(std::make_unique<drivers::StaleReplayDriver>(&notebook));
  (void)bench.kernel.net().BringUp("eth0");
  std::vector<uint8_t> payload(128, 0x41);
  (void)bench.SutSendBurst(7000, 80, {payload.data(), payload.size()}, 8);
  bench.host->Pump();
  size_t harvested = notebook.size();
  (void)bench.host->Kill();
  // The successor inherits the attacker's notebook but a fresh pool epoch.
  auto fresh = std::make_unique<drivers::StaleReplayDriver>(&notebook);
  auto* p = fresh.get();
  (void)bench.host->Start(std::move(fresh));
  uint32_t free_before = bench.ctx->pool().free_count();
  (void)p->ReplayFrees();
  bench.host->Pump();
  uint64_t rejected = bench.ctx->pool().stale_frees();
  bool contained = harvested == 8 && rejected == harvested &&
                   bench.ctx->pool().free_count() == free_before;
  char note[96];
  std::snprintf(note, sizeof(note), "%llu/%zu dead-epoch frees rejected, free list untouched",
                (unsigned long long)rejected, harvested);
  return {"stale free replay", config, contained, note};
}

// Mixed-batch replay: one coalesced free batch interleaving dead-epoch
// handles with the successor's own legitimately-held ones. The stale ids
// must be rejected individually while the current ids free normally — no
// poisoning in either direction.
Cell RunStaleBatchReplay(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  std::vector<int32_t> notebook;
  (void)bench.host->Start(std::make_unique<drivers::StaleReplayDriver>(&notebook));
  (void)bench.kernel.net().BringUp("eth0");
  std::vector<uint8_t> payload(128, 0x42);
  (void)bench.SutSendBurst(7200, 80, {payload.data(), payload.size()}, 6);
  bench.host->Pump();
  size_t stale_count = notebook.size();
  (void)bench.host->Kill();
  auto fresh = std::make_unique<drivers::StaleReplayDriver>(&notebook);
  auto* p = fresh.get();
  (void)bench.host->Start(std::move(fresh));
  // The successor stages four frames of its own: current-epoch handles
  // appended to the same notebook, making the replay batch a stale/valid mix.
  (void)bench.SutSendBurst(7300, 80, {payload.data(), payload.size()}, 4);
  bench.host->Pump();
  uint32_t held = bench.ctx->pool().outstanding();
  (void)p->ReplayFrees();
  bench.host->Pump();
  bool contained = stale_count == 6 && held == 4 &&
                   bench.ctx->pool().stale_frees() == stale_count &&
                   bench.ctx->pool().outstanding() == 0;
  char note[96];
  std::snprintf(note, sizeof(note),
                "%zu stale rejected, %u current freed from one mixed batch", stale_count, held);
  return {"mixed-epoch free batch", config, contained, note};
}

// Wedged teardown: the driver stops servicing its queue with upcalls
// pending, so a graceful stop would block for the full sync timeout. The
// watchdog must spot the stall, and recovery must kill FIRST — the ordering
// that bounds the administrator dance regardless of driver cooperation.
Cell RunWedgedTeardown(NetBench::Options options, const std::string& config) {
  options.sud.uchan.sync_timeout_ms = 2000;  // what a polite teardown would eat
  NetBench bench(options);
  if (!bench.StartSut().ok()) {
    return {"wedged teardown", config, false, "sut failed to start"};
  }
  bench.MaskPeerIrq();
  uml::DriverSupervisor::Options sup_options;
  sup_options.watchdog_strikes = 2;
  uml::DriverSupervisor sup(&bench.kernel, bench.host.get(), E1000eFactory(1, bench.mtu_),
                            sup_options);
  sup.ShadowNetdev("eth0");
  sup.AttachProxy(bench.proxy.get());
  // Wedge: park transmits in the ring and stop pumping — alive, not serving.
  std::vector<uint8_t> payload(64, 0x11);
  (void)bench.SutSendBurst(9000, 80, {payload.data(), payload.size()}, 4);
  int recoveries = 0;
  for (int i = 0; i < 6 && recoveries == 0; ++i) {
    recoveries += sup.CheckAndRecover() ? 1 : 0;
  }
  uml::DriverSupervisor::Stats stats = sup.stats();
  bool bounded = stats.last_recovery_ns < 1000ull * 1000 * 1000;  // << sync timeout
  (void)bench.PeerSend(1, 80, {payload.data(), payload.size()});
  bench.host->Pump();
  uint64_t delivered = bench.kernel.net().Find("eth0")->stats().rx_packets.load();
  bool contained = recoveries == 1 && stats.watchdog_recoveries == 1 && bounded &&
                   stats.buffers_quarantined == 4 && delivered >= 1;
  char note[96];
  std::snprintf(note, sizeof(note),
                "watchdog fired, recovery %llu ms (timeout 2000), %llu buffers quarantined",
                (unsigned long long)(stats.last_recovery_ns / 1000000),
                (unsigned long long)stats.buffers_quarantined);
  return {"wedged teardown", config, contained, note};
}

// Crash-loop exhaustion: a driver that dies every time it is revived would
// turn automatic recovery into an infinite restart storm. The budget must
// hold — terminal give-up, interface parked down/unregistered for the
// administrator, and every further recovery refused (and counted).
Cell RunCrashLoopExhaustion(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  if (!bench.StartSut().ok()) {
    return {"crash-loop exhaustion", config, false, "sut failed to start"};
  }
  uml::DriverSupervisor::Options sup_options;
  sup_options.max_restarts = 3;
  uml::DriverSupervisor sup(&bench.kernel, bench.host.get(), E1000eFactory(1, bench.mtu_),
                            sup_options);
  sup.ShadowNetdev("eth0");
  sup.AttachProxy(bench.proxy.get());
  for (int i = 0; i < 5; ++i) {
    (void)bench.host->Kill();
    (void)sup.CheckAndRecover();
  }
  uml::DriverSupervisor::Stats stats = sup.stats();
  bool parked = sup.gave_up() && bench.kernel.net().Find("eth0") == nullptr;
  bool contained = stats.restarts == 3 && parked && stats.give_ups >= 1 &&
                   !sup.CheckAndRecover();
  char note[96];
  std::snprintf(note, sizeof(note),
                "%u/%u restart budget spent, %llu refusals, interface parked", stats.restarts,
                sup_options.max_restarts, (unsigned long long)stats.give_ups);
  return {"crash-loop exhaustion", config, contained, note};
}

// Dead-window DMA: frames keep arriving while no driver instance exists
// (killed, not yet restarted). Nothing may land — the IOMMU context is
// revoked at teardown — and the replacement must pick the interface back up.
Cell RunDeadWindowDma(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  if (!bench.StartSut().ok()) {
    return {"dead-window DMA", config, false, "sut failed to start"};
  }
  bench.MaskPeerIrq();
  uml::DriverSupervisor sup(&bench.kernel, bench.host.get(), E1000eFactory(1, bench.mtu_));
  sup.ShadowNetdev("eth0");
  sup.AttachProxy(bench.proxy.get());
  std::vector<uint8_t> payload(128, 0x77);
  (void)bench.PeerSend(1000, 80, {payload.data(), payload.size()});
  bench.host->Pump();
  kern::NetDevice* dev = bench.kernel.net().Find("eth0");
  uint64_t base = dev->stats().rx_packets.load();
  (void)bench.host->Kill();
  for (int i = 0; i < 16; ++i) {
    (void)bench.PeerSend(static_cast<uint16_t>(1001 + i), 80,
                         {payload.data(), payload.size()});
  }
  uint64_t during = dev->stats().rx_packets.load() - base;
  (void)sup.CheckAndRecover();
  (void)bench.PeerSend(2000, 80, {payload.data(), payload.size()});
  bench.host->Pump();
  uint64_t after = dev->stats().rx_packets.load() - base;
  bool contained = base >= 1 && during == 0 && after >= 1;
  char note[96];
  std::snprintf(note, sizeof(note),
                "16 frames into the dead window: %llu smeared, service back after restart",
                (unsigned long long)during);
  return {"dead-window DMA", config, contained, note};
}

// Upgrade-window loss: a hot upgrade cuts over with transmits still staged
// in pool buffers and upcalls pending. The per-queue drain must push every
// one to the wire before the kill — zero packets lost, zero quarantined.
Cell RunUpgradeWindowDma(NetBench::Options options, const std::string& config) {
  options.start_peer = false;
  NetBench bench(options);
  WireRecorder sink;
  bench.link.Attach(1, &sink);
  if (!bench.StartSut().ok()) {
    return {"upgrade-window loss", config, false, "sut failed to start"};
  }
  uml::DriverSupervisor sup(&bench.kernel, bench.host.get(), E1000eFactory(1, bench.mtu_));
  sup.ShadowNetdev("eth0");
  sup.AttachProxy(bench.proxy.get());
  std::vector<uint8_t> payload(512, 0x3c);
  // 24 transmits staged but unpumped: the in-flight work of the window.
  (void)bench.SutSendBurst(6000, 80, {payload.data(), payload.size()}, 24);
  Status upgraded = sup.Upgrade(E1000eFactory(1, bench.mtu_));
  size_t drained_to_wire = sink.frames.size();
  (void)bench.SutSendBurst(6100, 80, {payload.data(), payload.size()}, 4);
  bench.host->Pump();
  uml::DriverSupervisor::Stats stats = sup.stats();
  bool contained = upgraded.ok() && drained_to_wire == 24 && sink.frames.size() == 28 &&
                   stats.upgrades == 1 && stats.buffers_quarantined == 0;
  char note[96];
  std::snprintf(note, sizeof(note),
                "%zu/24 staged frames drained to wire pre-cutover, %llu quarantined",
                drained_to_wire, (unsigned long long)stats.buffers_quarantined);
  return {"upgrade-window loss", config, contained, note};
}

// Per-queue watchdog stall: on a 4-queue device one shard silently stops
// while the rest are idle — no aggregate counter moves. The per-queue
// progress watchdog must still catch it, and the replacement must spread
// load across all four queues again.
Cell RunWatchdogStall(NetBench::Options options, const std::string& config) {
  options.nic_queues = 4;
  NetBench bench(options);
  if (!bench.StartSut().ok()) {
    return {"per-queue stall", config, false, "sut failed to start"};
  }
  bench.MaskPeerIrq();
  uml::DriverSupervisor::Options sup_options;
  sup_options.watchdog_strikes = 2;
  uml::DriverSupervisor sup(&bench.kernel, bench.host.get(), E1000eFactory(4, bench.mtu_),
                            sup_options);
  sup.ShadowNetdev("eth0");
  sup.AttachProxy(bench.proxy.get());
  // One flow's transmits parked on its steering queue; the other three
  // queues are healthy-idle and must accumulate no strikes.
  std::vector<uint8_t> payload(64, 0x2a);
  (void)bench.SutSendBurst(9100, 80, {payload.data(), payload.size()}, 4);
  int recoveries = 0;
  for (int i = 0; i < 6 && recoveries == 0; ++i) {
    recoveries += sup.CheckAndRecover() ? 1 : 0;
  }
  // Post-recovery: the 4-queue spread must be back.
  kern::NetDevice* netdev = bench.kernel.net().Find("eth0");
  std::array<uint64_t, 4> before{};
  for (uint16_t q = 0; q < 4; ++q) {
    before[q] = netdev->queue_stats(q).rx_packets.load();
  }
  std::vector<uint8_t> flood_payload(256, 0x2b);
  for (int sent = 0; sent < 256; sent += 16) {
    (void)bench.PeerSendFlowBurst(21000, 80, {flood_payload.data(), flood_payload.size()}, 16,
                                  16);
    bench.host->Pump();
  }
  int active = 0;
  uint64_t total = 0;
  for (uint16_t q = 0; q < 4; ++q) {
    uint64_t delta = netdev->queue_stats(q).rx_packets.load() - before[q];
    active += delta > 0 ? 1 : 0;
    total += delta;
  }
  uml::DriverSupervisor::Stats stats = sup.stats();
  bool contained = recoveries == 1 && stats.watchdog_recoveries == 1 && active >= 3 &&
                   total == 256;
  char note[96];
  std::snprintf(note, sizeof(note),
                "stalled queue caught by per-queue watchdog, %d/4 queues active after restart",
                active);
  return {"per-queue stall", config, contained, note};
}

// Quarantine accounting: a driver dies holding staging buffers. Teardown
// must quarantine exactly that many with the dying epoch, and the successor
// must see a whole pool — nothing leaked, nothing double-counted.
Cell RunQuarantine(NetBench::Options options, const std::string& config) {
  NetBench bench(options);
  std::vector<int32_t> notebook;
  (void)bench.host->Start(std::make_unique<drivers::StaleReplayDriver>(&notebook));
  (void)bench.kernel.net().BringUp("eth0");
  std::vector<uint8_t> payload(200, 0x66);
  (void)bench.SutSendBurst(7100, 80, {payload.data(), payload.size()}, 12);
  bench.host->Pump();
  uint32_t outstanding = bench.ctx->pool().outstanding();
  uint32_t capacity = bench.ctx->pool().free_count() + outstanding;
  uint64_t q_before = bench.ctx->quarantined_buffers();
  (void)bench.host->Kill();
  uint64_t quarantined = bench.ctx->quarantined_buffers() - q_before;
  (void)bench.host->Start(std::make_unique<drivers::E1000eDriver>(1, bench.mtu_));
  bool contained = outstanding == 12 && quarantined == 12 &&
                   bench.ctx->pool().outstanding() == 0 &&
                   bench.ctx->pool().free_count() == capacity;
  char note[96];
  std::snprintf(note, sizeof(note), "%llu/%u in-flight buffers quarantined, pool whole after",
                (unsigned long long)quarantined, outstanding);
  return {"teardown quarantine", config, contained, note};
}

// ---- Seal-bypass attacks: the zero-copy delivery window (this PR) -------
//
// Sealed delivery replaces the guard copy with IOMMU page revocation: the
// RX page is write-sealed, the checksum verified IN PLACE, and the kernel
// handed an skb referencing the shared bytes. The cells below attack the
// three windows that substitution opens: the delivered page's lifetime, the
// unseal on free, and the verdict computation itself.

// Every page of the driver's DMA space the IOMMU currently write-seals.
std::vector<uint64_t> SealedPagesOf(NetBench& bench) {
  std::vector<uint64_t> pages;
  uint16_t source = bench.ctx->source_id();
  for (const auto& [base, region] : bench.ctx->dma().regions()) {
    for (uint64_t off = 0; off < region.bytes; off += hw::kPageSize) {
      if (bench.machine.iommu().IsWriteSealed(source, region.iova + off)) {
        pages.push_back(region.iova + off);
      }
    }
  }
  return pages;
}

// The malicious driver's move: aim the device's DMA at `page` and fire. The
// root complex's translation is where the seal answers; a blocked write
// never reaches memory.
bool DeviceWriteBlocked(NetBench& bench, uint64_t page) {
  return !bench.machine.iommu()
              .Translate(bench.ctx->source_id(), page, 64, /*is_write=*/true)
              .ok();
}

// Driver DMA-writes a DELIVERED page: the skb is in the stack (a socket
// queue holds it), the driver re-arms the device at the same buffer. The
// write must fault, be counted, and the page must unseal — becoming
// device-writable again — only once the skb dies.
Cell RunSealedPageWrite(NetBench::Options options, const std::string& config) {
  options.proxy.sealed_delivery = true;
  NetBench bench(options);
  if (!bench.StartSut().ok()) {
    return {"sealed-page DMA write", config, false, "sut failed to start"};
  }
  bench.MaskPeerIrq();
  bench.proxy->set_hold_rx_for_test(true);
  std::vector<uint8_t> payload(256, 0x44);
  (void)bench.PeerSend(4000, 80, {payload.data(), payload.size()});
  bench.host->Pump();
  std::vector<uint64_t> sealed = SealedPagesOf(bench);
  uint64_t blocked_before = bench.machine.iommu().seal_stats().blocked_writes;
  bool blocked = !sealed.empty() && DeviceWriteBlocked(bench, sealed[0]);
  uint64_t blocked_count = bench.machine.iommu().seal_stats().blocked_writes - blocked_before;
  // The skb dies (socket drains): the page must unseal and the device's own
  // re-arm write must work again.
  bench.proxy->set_hold_rx_for_test(false);
  bench.proxy->TakeHeldRx();
  bool recycled = !sealed.empty() &&
                  !bench.machine.iommu().IsWriteSealed(bench.ctx->source_id(), sealed[0]) &&
                  !DeviceWriteBlocked(bench, sealed[0]);
  bool contained = bench.proxy->stats().sealed_deliveries.load() == 1 && blocked &&
                   blocked_count == 1 && recycled;
  char note[96];
  std::snprintf(note, sizeof(note),
                "%zu page(s) sealed; write faulted while skb live, page recycled after free",
                sealed.size());
  return {"sealed-page DMA write", config, contained, note};
}

// Unseal race on free: the driver delivers the SAME buffer twice (fresh
// seqs, both individually valid). When the first skb is freed, the page must
// STAY sealed — the second skb still references the shared bytes — and only
// the last free may unseal. A non-refcounted seal would reopen the TOCTOU
// window here.
Cell RunUnsealRaceOnFree(NetBench::Options options, const std::string& config) {
  options.proxy.sealed_delivery = true;
  NetBench bench(options);
  auto attack = std::make_unique<drivers::DupDeliveryDriver>();
  auto* p = attack.get();
  (void)bench.host->Start(std::move(attack));
  bench.proxy->set_hold_rx_for_test(true);
  std::vector<uint8_t> payload(200, 0x51);
  auto frame = kern::BuildPacket(testing::kMacA, testing::kMacB, 4100, 80,
                                 {payload.data(), payload.size()});
  Result<int> accepted = p->DeliverSameBuffer({frame.data(), frame.size()}, 2);
  bench.host->Pump();
  std::vector<uint64_t> sealed = SealedPagesOf(bench);
  std::vector<kern::SkbPtr> held = bench.proxy->TakeHeldRx();
  uint16_t source = bench.ctx->source_id();
  bool refcounted = accepted.ok() && accepted.value() == 2 && sealed.size() == 1 &&
                    held.size() == 2;
  // The race: free ONE of the two skbs referencing the page.
  if (!held.empty()) {
    held.pop_back();
  }
  bool still_sealed = refcounted && bench.machine.iommu().IsWriteSealed(source, sealed[0]) &&
                      DeviceWriteBlocked(bench, sealed[0]);
  // The LAST free unseals.
  held.clear();
  bool unsealed = refcounted && !bench.machine.iommu().IsWriteSealed(source, sealed[0]);
  bool contained = refcounted && still_sealed && unsealed;
  char note[96];
  std::snprintf(note, sizeof(note),
                "dup delivery refcounted: page sealed across first free, unsealed on last");
  return {"unseal race on free", config, contained, note};
}

// Sealed-page write during the VERDICT window: the attacker fires its device
// DMA write between the seal and the in-place checksum — exactly where the
// guard copy used to protect. The write must fault against the seal and the
// verdict (computed over the sealed, unchanged bytes) must stand.
Cell RunVerdictWindowWrite(NetBench::Options options, const std::string& config) {
  options.proxy.sealed_delivery = true;
  NetBench bench(options);
  if (!bench.StartSut().ok()) {
    return {"verdict-window write", config, false, "sut failed to start"};
  }
  bench.MaskPeerIrq();
  bench.proxy->set_hold_rx_for_test(true);
  int hook_fired = 0;
  int window_blocked = 0;
  bench.proxy->set_toctou_hook([&](ByteSpan) {
    // Perfectly timed: the seal is on, the checksum has not run yet.
    ++hook_fired;
    for (uint64_t page : SealedPagesOf(bench)) {
      window_blocked += DeviceWriteBlocked(bench, page) ? 1 : 0;
    }
  });
  std::vector<uint8_t> payload(256, 0x55);
  (void)bench.PeerSend(4200, 80, {payload.data(), payload.size()});
  bench.host->Pump();
  std::vector<kern::SkbPtr> held = bench.proxy->TakeHeldRx();
  bool verdict_stable = held.size() == 1 && held[0]->checksum_verified;
  uint64_t blocked = bench.machine.iommu().seal_stats().blocked_writes;
  bool contained = hook_fired == 1 && window_blocked >= 1 && verdict_stable && blocked >= 1;
  held.clear();
  char note[96];
  std::snprintf(note, sizeof(note),
                "%d in-window write(s) faulted on the seal, checksum verdict stable", window_blocked);
  return {"verdict-window write", config, contained, note};
}

}  // namespace
}  // namespace sud

int main() {
  using namespace sud;
  Logger::Get().set_min_level(LogLevel::kError);

  struct HwConfig {
    std::string name;
    NetBench::Options options;
  };
  std::vector<HwConfig> configs = {
      {"VT-d, no IR (paper)", Config(hw::IommuMode::kIntelVtd, false, true)},
      {"VT-d + IR", Config(hw::IommuMode::kIntelVtd, true, true)},
      {"AMD-Vi", Config(hw::IommuMode::kAmdVi, false, true)},
  };

  std::vector<Cell> cells;
  for (const HwConfig& config : configs) {
    cells.push_back(RunDmaRead(config.options, config.name));
    cells.push_back(RunDmaWrite(config.options, config.name));
    cells.push_back(RunP2p(config.options, config.name));
    cells.push_back(RunMsiStorm(config.options, config.name));
    cells.push_back(RunUnresponsive(config.options, config.name));
    cells.push_back(RunConfigAttack(config.options, config.name));
    cells.push_back(RunIoPortAttack(config.options, config.name));
    cells.push_back(RunResourceHog(config.options, config.name));
    cells.push_back(RunRetaStarvation(config.options, config.name));
    cells.push_back(RunForgedLoadStats(config.options, config.name, "all-zero"));
    cells.push_back(RunForgedLoadStats(config.options, config.name, "all-max"));
    cells.push_back(RunForgedLoadStats(config.options, config.name, "oscillating"));
    cells.push_back(RunTornChain(config.options, config.name));
    cells.push_back(RunDescRewrite(config.options, config.name));
    cells.push_back(RunTxEndlessChain(config.options, config.name));
    cells.push_back(RunTxTornChain(config.options, config.name));
    cells.push_back(RunTxOverCapChain(config.options, config.name));
    cells.push_back(RunTxChainForgery(config.options, config.name));
    cells.push_back(RunTxBufferReuse(config.options, config.name));
    cells.push_back(RunTxMidChainRewrite(config.options, config.name));
    cells.push_back(RunStaleFreeReplay(config.options, config.name));
    cells.push_back(RunStaleBatchReplay(config.options, config.name));
    cells.push_back(RunWedgedTeardown(config.options, config.name));
    cells.push_back(RunCrashLoopExhaustion(config.options, config.name));
    cells.push_back(RunDeadWindowDma(config.options, config.name));
    cells.push_back(RunUpgradeWindowDma(config.options, config.name));
    cells.push_back(RunWatchdogStall(config.options, config.name));
    cells.push_back(RunQuarantine(config.options, config.name));
    cells.push_back(RunSealedPageWrite(config.options, config.name));
    cells.push_back(RunUnsealRaceOnFree(config.options, config.name));
    cells.push_back(RunVerdictWindowWrite(config.options, config.name));
  }
  // The vulnerable no-ACS configuration, to show the attack is real.
  cells.push_back(RunP2p(Config(hw::IommuMode::kIntelVtd, false, false), "ACS OFF (vulnerable)"));

  std::printf("\nSection 5.2 attack matrix: malicious drivers vs the confinement stack\n");
  std::printf("%-22s %-22s %-11s %s\n", "Attack", "Hardware config", "Contained?", "Detail");
  std::printf("%s\n", std::string(110, '-').c_str());
  int contained = 0;
  int unexpected = 0;
  for (const Cell& cell : cells) {
    std::printf("%-22s %-22s %-11s %s\n", cell.attack.c_str(), cell.config.c_str(),
                cell.contained ? "YES" : "NO", cell.note.c_str());
    contained += cell.contained ? 1 : 0;
    // The two documented negative results; every other cell must contain.
    bool expected_no =
        (cell.attack == "stray-DMA MSI storm" && cell.config == "VT-d, no IR (paper)") ||
        (cell.attack == "peer-to-peer DMA" && cell.config == "ACS OFF (vulnerable)");
    if (cell.contained == expected_no) {
      ++unexpected;
    }
  }
  std::printf("\n%d/%zu contained. Expected NOs: the stray-DMA MSI storm on VT-d without\n",
              contained, cells.size());
  std::printf("interrupt remapping (the paper's own §5.2 limitation) and peer-to-peer DMA\n");
  std::printf("with ACS disabled (the configuration SUD exists to forbid).\n");
  if (unexpected != 0) {
    std::printf("%d cell(s) deviate from the expected containment table — FAILING.\n",
                unexpected);
  }
  // CI gates on this: a containment regression (or an attack that stops
  // demonstrating on the vulnerable configs) fails the run.
  return unexpected == 0 ? 0 : 1;
}
