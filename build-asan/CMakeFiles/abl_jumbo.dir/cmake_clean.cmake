file(REMOVE_RECURSE
  "CMakeFiles/abl_jumbo.dir/bench/abl_jumbo.cc.o"
  "CMakeFiles/abl_jumbo.dir/bench/abl_jumbo.cc.o.d"
  "abl_jumbo"
  "abl_jumbo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_jumbo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
