# Empty compiler generated dependencies file for abl_jumbo.
# This may be replaced when dependencies are built.
