file(REMOVE_RECURSE
  "CMakeFiles/abl_nic_queues.dir/bench/abl_nic_queues.cc.o"
  "CMakeFiles/abl_nic_queues.dir/bench/abl_nic_queues.cc.o.d"
  "abl_nic_queues"
  "abl_nic_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_nic_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
