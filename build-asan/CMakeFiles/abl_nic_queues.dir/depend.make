# Empty dependencies file for abl_nic_queues.
# This may be replaced when dependencies are built.
