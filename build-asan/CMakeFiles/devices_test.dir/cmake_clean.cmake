file(REMOVE_RECURSE
  "CMakeFiles/devices_test.dir/tests/devices_test.cc.o"
  "CMakeFiles/devices_test.dir/tests/devices_test.cc.o.d"
  "devices_test"
  "devices_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/devices_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
