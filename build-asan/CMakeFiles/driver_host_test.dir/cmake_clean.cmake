file(REMOVE_RECURSE
  "CMakeFiles/driver_host_test.dir/tests/driver_host_test.cc.o"
  "CMakeFiles/driver_host_test.dir/tests/driver_host_test.cc.o.d"
  "driver_host_test"
  "driver_host_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
