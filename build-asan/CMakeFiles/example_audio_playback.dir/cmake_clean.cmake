file(REMOVE_RECURSE
  "CMakeFiles/example_audio_playback.dir/examples/audio_playback.cpp.o"
  "CMakeFiles/example_audio_playback.dir/examples/audio_playback.cpp.o.d"
  "example_audio_playback"
  "example_audio_playback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_audio_playback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
