# Empty dependencies file for example_audio_playback.
# This may be replaced when dependencies are built.
