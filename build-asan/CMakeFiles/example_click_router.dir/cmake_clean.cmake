file(REMOVE_RECURSE
  "CMakeFiles/example_click_router.dir/examples/click_router.cpp.o"
  "CMakeFiles/example_click_router.dir/examples/click_router.cpp.o.d"
  "example_click_router"
  "example_click_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_click_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
