# Empty compiler generated dependencies file for example_click_router.
# This may be replaced when dependencies are built.
