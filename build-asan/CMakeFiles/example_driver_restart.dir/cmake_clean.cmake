file(REMOVE_RECURSE
  "CMakeFiles/example_driver_restart.dir/examples/driver_restart.cpp.o"
  "CMakeFiles/example_driver_restart.dir/examples/driver_restart.cpp.o.d"
  "example_driver_restart"
  "example_driver_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_driver_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
