# Empty compiler generated dependencies file for example_driver_restart.
# This may be replaced when dependencies are built.
