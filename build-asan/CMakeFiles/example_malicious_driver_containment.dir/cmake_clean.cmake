file(REMOVE_RECURSE
  "CMakeFiles/example_malicious_driver_containment.dir/examples/malicious_driver_containment.cpp.o"
  "CMakeFiles/example_malicious_driver_containment.dir/examples/malicious_driver_containment.cpp.o.d"
  "example_malicious_driver_containment"
  "example_malicious_driver_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_malicious_driver_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
