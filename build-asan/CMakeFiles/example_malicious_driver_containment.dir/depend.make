# Empty dependencies file for example_malicious_driver_containment.
# This may be replaced when dependencies are built.
