file(REMOVE_RECURSE
  "CMakeFiles/example_usb_keyboard.dir/examples/usb_keyboard.cpp.o"
  "CMakeFiles/example_usb_keyboard.dir/examples/usb_keyboard.cpp.o.d"
  "example_usb_keyboard"
  "example_usb_keyboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_usb_keyboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
