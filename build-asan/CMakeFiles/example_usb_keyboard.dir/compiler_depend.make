# Empty compiler generated dependencies file for example_usb_keyboard.
# This may be replaced when dependencies are built.
