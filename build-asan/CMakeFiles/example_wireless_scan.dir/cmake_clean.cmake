file(REMOVE_RECURSE
  "CMakeFiles/example_wireless_scan.dir/examples/wireless_scan.cpp.o"
  "CMakeFiles/example_wireless_scan.dir/examples/wireless_scan.cpp.o.d"
  "example_wireless_scan"
  "example_wireless_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_wireless_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
