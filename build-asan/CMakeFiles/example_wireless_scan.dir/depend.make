# Empty dependencies file for example_wireless_scan.
# This may be replaced when dependencies are built.
