file(REMOVE_RECURSE
  "CMakeFiles/fig5_loc_inventory.dir/bench/fig5_loc_inventory.cc.o"
  "CMakeFiles/fig5_loc_inventory.dir/bench/fig5_loc_inventory.cc.o.d"
  "fig5_loc_inventory"
  "fig5_loc_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_loc_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
