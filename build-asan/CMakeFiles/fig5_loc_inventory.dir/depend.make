# Empty dependencies file for fig5_loc_inventory.
# This may be replaced when dependencies are built.
