file(REMOVE_RECURSE
  "CMakeFiles/fig8_netperf.dir/bench/fig8_netperf.cc.o"
  "CMakeFiles/fig8_netperf.dir/bench/fig8_netperf.cc.o.d"
  "fig8_netperf"
  "fig8_netperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_netperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
