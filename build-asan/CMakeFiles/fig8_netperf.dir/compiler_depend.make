# Empty compiler generated dependencies file for fig8_netperf.
# This may be replaced when dependencies are built.
