file(REMOVE_RECURSE
  "CMakeFiles/fig9_iommu_mappings.dir/bench/fig9_iommu_mappings.cc.o"
  "CMakeFiles/fig9_iommu_mappings.dir/bench/fig9_iommu_mappings.cc.o.d"
  "fig9_iommu_mappings"
  "fig9_iommu_mappings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_iommu_mappings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
