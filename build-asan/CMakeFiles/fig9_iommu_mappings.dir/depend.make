# Empty dependencies file for fig9_iommu_mappings.
# This may be replaced when dependencies are built.
