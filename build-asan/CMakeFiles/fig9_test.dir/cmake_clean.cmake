file(REMOVE_RECURSE
  "CMakeFiles/fig9_test.dir/tests/fig9_test.cc.o"
  "CMakeFiles/fig9_test.dir/tests/fig9_test.cc.o.d"
  "fig9_test"
  "fig9_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
