# Empty dependencies file for fig9_test.
# This may be replaced when dependencies are built.
