file(REMOVE_RECURSE
  "CMakeFiles/hw_fabric_test.dir/tests/hw_fabric_test.cc.o"
  "CMakeFiles/hw_fabric_test.dir/tests/hw_fabric_test.cc.o.d"
  "hw_fabric_test"
  "hw_fabric_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
