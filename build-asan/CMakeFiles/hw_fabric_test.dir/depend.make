# Empty dependencies file for hw_fabric_test.
# This may be replaced when dependencies are built.
