file(REMOVE_RECURSE
  "CMakeFiles/hw_iommu_test.dir/tests/hw_iommu_test.cc.o"
  "CMakeFiles/hw_iommu_test.dir/tests/hw_iommu_test.cc.o.d"
  "hw_iommu_test"
  "hw_iommu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_iommu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
