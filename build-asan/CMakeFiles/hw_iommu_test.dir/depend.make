# Empty dependencies file for hw_iommu_test.
# This may be replaced when dependencies are built.
