file(REMOVE_RECURSE
  "CMakeFiles/integration_devices_test.dir/tests/integration_devices_test.cc.o"
  "CMakeFiles/integration_devices_test.dir/tests/integration_devices_test.cc.o.d"
  "integration_devices_test"
  "integration_devices_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_devices_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
