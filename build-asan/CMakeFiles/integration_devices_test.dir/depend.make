# Empty dependencies file for integration_devices_test.
# This may be replaced when dependencies are built.
