file(REMOVE_RECURSE
  "CMakeFiles/integration_net_test.dir/tests/integration_net_test.cc.o"
  "CMakeFiles/integration_net_test.dir/tests/integration_net_test.cc.o.d"
  "integration_net_test"
  "integration_net_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
