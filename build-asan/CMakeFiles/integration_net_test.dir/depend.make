# Empty dependencies file for integration_net_test.
# This may be replaced when dependencies are built.
