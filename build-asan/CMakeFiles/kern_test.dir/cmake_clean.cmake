file(REMOVE_RECURSE
  "CMakeFiles/kern_test.dir/tests/kern_test.cc.o"
  "CMakeFiles/kern_test.dir/tests/kern_test.cc.o.d"
  "kern_test"
  "kern_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
