file(REMOVE_RECURSE
  "CMakeFiles/sec_attack_matrix.dir/bench/sec_attack_matrix.cc.o"
  "CMakeFiles/sec_attack_matrix.dir/bench/sec_attack_matrix.cc.o.d"
  "sec_attack_matrix"
  "sec_attack_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec_attack_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
