# Empty compiler generated dependencies file for sec_attack_matrix.
# This may be replaced when dependencies are built.
