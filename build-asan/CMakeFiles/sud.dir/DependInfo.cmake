
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/bytes.cc" "CMakeFiles/sud.dir/src/base/bytes.cc.o" "gcc" "CMakeFiles/sud.dir/src/base/bytes.cc.o.d"
  "/root/repo/src/base/clock.cc" "CMakeFiles/sud.dir/src/base/clock.cc.o" "gcc" "CMakeFiles/sud.dir/src/base/clock.cc.o.d"
  "/root/repo/src/base/cpu_model.cc" "CMakeFiles/sud.dir/src/base/cpu_model.cc.o" "gcc" "CMakeFiles/sud.dir/src/base/cpu_model.cc.o.d"
  "/root/repo/src/base/log.cc" "CMakeFiles/sud.dir/src/base/log.cc.o" "gcc" "CMakeFiles/sud.dir/src/base/log.cc.o.d"
  "/root/repo/src/base/status.cc" "CMakeFiles/sud.dir/src/base/status.cc.o" "gcc" "CMakeFiles/sud.dir/src/base/status.cc.o.d"
  "/root/repo/src/devices/audio_dev.cc" "CMakeFiles/sud.dir/src/devices/audio_dev.cc.o" "gcc" "CMakeFiles/sud.dir/src/devices/audio_dev.cc.o.d"
  "/root/repo/src/devices/ether_link.cc" "CMakeFiles/sud.dir/src/devices/ether_link.cc.o" "gcc" "CMakeFiles/sud.dir/src/devices/ether_link.cc.o.d"
  "/root/repo/src/devices/ne2k_nic.cc" "CMakeFiles/sud.dir/src/devices/ne2k_nic.cc.o" "gcc" "CMakeFiles/sud.dir/src/devices/ne2k_nic.cc.o.d"
  "/root/repo/src/devices/sim_nic.cc" "CMakeFiles/sud.dir/src/devices/sim_nic.cc.o" "gcc" "CMakeFiles/sud.dir/src/devices/sim_nic.cc.o.d"
  "/root/repo/src/devices/usb_host.cc" "CMakeFiles/sud.dir/src/devices/usb_host.cc.o" "gcc" "CMakeFiles/sud.dir/src/devices/usb_host.cc.o.d"
  "/root/repo/src/devices/wifi_nic.cc" "CMakeFiles/sud.dir/src/devices/wifi_nic.cc.o" "gcc" "CMakeFiles/sud.dir/src/devices/wifi_nic.cc.o.d"
  "/root/repo/src/drivers/e1000e.cc" "CMakeFiles/sud.dir/src/drivers/e1000e.cc.o" "gcc" "CMakeFiles/sud.dir/src/drivers/e1000e.cc.o.d"
  "/root/repo/src/drivers/iwl.cc" "CMakeFiles/sud.dir/src/drivers/iwl.cc.o" "gcc" "CMakeFiles/sud.dir/src/drivers/iwl.cc.o.d"
  "/root/repo/src/drivers/malicious.cc" "CMakeFiles/sud.dir/src/drivers/malicious.cc.o" "gcc" "CMakeFiles/sud.dir/src/drivers/malicious.cc.o.d"
  "/root/repo/src/drivers/ne2k.cc" "CMakeFiles/sud.dir/src/drivers/ne2k.cc.o" "gcc" "CMakeFiles/sud.dir/src/drivers/ne2k.cc.o.d"
  "/root/repo/src/drivers/snd_hda.cc" "CMakeFiles/sud.dir/src/drivers/snd_hda.cc.o" "gcc" "CMakeFiles/sud.dir/src/drivers/snd_hda.cc.o.d"
  "/root/repo/src/drivers/usb_hcd.cc" "CMakeFiles/sud.dir/src/drivers/usb_hcd.cc.o" "gcc" "CMakeFiles/sud.dir/src/drivers/usb_hcd.cc.o.d"
  "/root/repo/src/hw/desc_ring.cc" "CMakeFiles/sud.dir/src/hw/desc_ring.cc.o" "gcc" "CMakeFiles/sud.dir/src/hw/desc_ring.cc.o.d"
  "/root/repo/src/hw/iommu.cc" "CMakeFiles/sud.dir/src/hw/iommu.cc.o" "gcc" "CMakeFiles/sud.dir/src/hw/iommu.cc.o.d"
  "/root/repo/src/hw/machine.cc" "CMakeFiles/sud.dir/src/hw/machine.cc.o" "gcc" "CMakeFiles/sud.dir/src/hw/machine.cc.o.d"
  "/root/repo/src/hw/msi.cc" "CMakeFiles/sud.dir/src/hw/msi.cc.o" "gcc" "CMakeFiles/sud.dir/src/hw/msi.cc.o.d"
  "/root/repo/src/hw/pci_config.cc" "CMakeFiles/sud.dir/src/hw/pci_config.cc.o" "gcc" "CMakeFiles/sud.dir/src/hw/pci_config.cc.o.d"
  "/root/repo/src/hw/pci_device.cc" "CMakeFiles/sud.dir/src/hw/pci_device.cc.o" "gcc" "CMakeFiles/sud.dir/src/hw/pci_device.cc.o.d"
  "/root/repo/src/hw/pcie_fabric.cc" "CMakeFiles/sud.dir/src/hw/pcie_fabric.cc.o" "gcc" "CMakeFiles/sud.dir/src/hw/pcie_fabric.cc.o.d"
  "/root/repo/src/hw/phys_mem.cc" "CMakeFiles/sud.dir/src/hw/phys_mem.cc.o" "gcc" "CMakeFiles/sud.dir/src/hw/phys_mem.cc.o.d"
  "/root/repo/src/kern/audio.cc" "CMakeFiles/sud.dir/src/kern/audio.cc.o" "gcc" "CMakeFiles/sud.dir/src/kern/audio.cc.o.d"
  "/root/repo/src/kern/kernel.cc" "CMakeFiles/sud.dir/src/kern/kernel.cc.o" "gcc" "CMakeFiles/sud.dir/src/kern/kernel.cc.o.d"
  "/root/repo/src/kern/netdev.cc" "CMakeFiles/sud.dir/src/kern/netdev.cc.o" "gcc" "CMakeFiles/sud.dir/src/kern/netdev.cc.o.d"
  "/root/repo/src/kern/packet.cc" "CMakeFiles/sud.dir/src/kern/packet.cc.o" "gcc" "CMakeFiles/sud.dir/src/kern/packet.cc.o.d"
  "/root/repo/src/kern/process.cc" "CMakeFiles/sud.dir/src/kern/process.cc.o" "gcc" "CMakeFiles/sud.dir/src/kern/process.cc.o.d"
  "/root/repo/src/kern/wireless.cc" "CMakeFiles/sud.dir/src/kern/wireless.cc.o" "gcc" "CMakeFiles/sud.dir/src/kern/wireless.cc.o.d"
  "/root/repo/src/sud/dma_space.cc" "CMakeFiles/sud.dir/src/sud/dma_space.cc.o" "gcc" "CMakeFiles/sud.dir/src/sud/dma_space.cc.o.d"
  "/root/repo/src/sud/proxy_audio.cc" "CMakeFiles/sud.dir/src/sud/proxy_audio.cc.o" "gcc" "CMakeFiles/sud.dir/src/sud/proxy_audio.cc.o.d"
  "/root/repo/src/sud/proxy_ethernet.cc" "CMakeFiles/sud.dir/src/sud/proxy_ethernet.cc.o" "gcc" "CMakeFiles/sud.dir/src/sud/proxy_ethernet.cc.o.d"
  "/root/repo/src/sud/proxy_wireless.cc" "CMakeFiles/sud.dir/src/sud/proxy_wireless.cc.o" "gcc" "CMakeFiles/sud.dir/src/sud/proxy_wireless.cc.o.d"
  "/root/repo/src/sud/safe_pci.cc" "CMakeFiles/sud.dir/src/sud/safe_pci.cc.o" "gcc" "CMakeFiles/sud.dir/src/sud/safe_pci.cc.o.d"
  "/root/repo/src/sud/shared_pool.cc" "CMakeFiles/sud.dir/src/sud/shared_pool.cc.o" "gcc" "CMakeFiles/sud.dir/src/sud/shared_pool.cc.o.d"
  "/root/repo/src/sud/uchan.cc" "CMakeFiles/sud.dir/src/sud/uchan.cc.o" "gcc" "CMakeFiles/sud.dir/src/sud/uchan.cc.o.d"
  "/root/repo/src/uml/direct_env.cc" "CMakeFiles/sud.dir/src/uml/direct_env.cc.o" "gcc" "CMakeFiles/sud.dir/src/uml/direct_env.cc.o.d"
  "/root/repo/src/uml/driver_host.cc" "CMakeFiles/sud.dir/src/uml/driver_host.cc.o" "gcc" "CMakeFiles/sud.dir/src/uml/driver_host.cc.o.d"
  "/root/repo/src/uml/uml_runtime.cc" "CMakeFiles/sud.dir/src/uml/uml_runtime.cc.o" "gcc" "CMakeFiles/sud.dir/src/uml/uml_runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
