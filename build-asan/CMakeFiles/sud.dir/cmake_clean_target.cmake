file(REMOVE_RECURSE
  "libsud.a"
)
