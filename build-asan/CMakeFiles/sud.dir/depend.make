# Empty dependencies file for sud.
# This may be replaced when dependencies are built.
