file(REMOVE_RECURSE
  "CMakeFiles/sud_core_test.dir/tests/sud_core_test.cc.o"
  "CMakeFiles/sud_core_test.dir/tests/sud_core_test.cc.o.d"
  "sud_core_test"
  "sud_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sud_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
