# Empty compiler generated dependencies file for sud_core_test.
# This may be replaced when dependencies are built.
