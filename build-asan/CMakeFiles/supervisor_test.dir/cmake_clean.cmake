file(REMOVE_RECURSE
  "CMakeFiles/supervisor_test.dir/tests/supervisor_test.cc.o"
  "CMakeFiles/supervisor_test.dir/tests/supervisor_test.cc.o.d"
  "supervisor_test"
  "supervisor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supervisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
