file(REMOVE_RECURSE
  "CMakeFiles/uchan_test.dir/tests/uchan_test.cc.o"
  "CMakeFiles/uchan_test.dir/tests/uchan_test.cc.o.d"
  "uchan_test"
  "uchan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uchan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
