# Empty compiler generated dependencies file for uchan_test.
# This may be replaced when dependencies are built.
