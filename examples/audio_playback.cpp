// Audio example: the snd-hda-class driver under SUD playing half a second
// of a sine-ish tone, with period callbacks and real-time scheduling policy
// (§4.1: sched_setscheduler for audio driver processes).

#include <cmath>
#include <cstdio>

#include "src/base/log.h"
#include "src/devices/audio_dev.h"
#include "src/drivers/snd_hda.h"
#include "src/hw/machine.h"
#include "src/kern/kernel.h"
#include "src/sud/proxy_audio.h"
#include "src/sud/safe_pci.h"
#include "src/uml/driver_host.h"

int main() {
  using namespace sud;
  Logger::Get().set_min_level(LogLevel::kWarning);

  hw::Machine machine;
  kern::Kernel kernel(&machine);
  hw::PcieSwitch& sw = machine.AddSwitch("pcie-switch");
  devices::AudioDev card("snd-hda", &machine.clock());
  (void)machine.AttachDevice(sw, &card);

  SafePciModule safe_pci(&kernel);
  SudDeviceContext* ctx = safe_pci.ExportDevice(&card, /*owner_uid=*/1004).value();
  AudioProxy proxy(&kernel, ctx);
  uml::DriverHost host(&kernel, ctx, "hda-driver", 1004);
  Status started = host.Start(std::make_unique<drivers::SndHdaDriver>());
  if (!started.ok()) {
    std::fprintf(stderr, "driver failed: %s\n", started.ToString().c_str());
    return 1;
  }

  // Audio drivers want real-time scheduling (§4.1): grant SCHED_FIFO. A
  // malicious driver with this policy could burn CPU, but cannot lock up the
  // machine — it is still just a process.
  host.process()->set_sched_policy(kern::SchedPolicy::kFifo);

  kern::PcmDevice* pcm = kernel.audio().Find("pcm0");
  kern::PcmConfig config;   // 48 kHz stereo s16, 4 KB periods
  config.period_bytes = 4096;
  config.buffer_bytes = 16384;
  Status open = pcm->ops()->OpenStream(config);
  std::printf("open stream 48kHz stereo: %s\n", open.ToString().c_str());

  int periods = 0;
  pcm->set_period_callback([&]() { ++periods; });

  // Generate and play 500 ms of a 440 Hz tone in 10 ms chunks.
  const uint32_t chunk_bytes = config.bytes_per_second() / 100;
  std::vector<uint8_t> chunk(chunk_bytes);
  double phase = 0;
  for (int step = 0; step < 50; ++step) {
    for (size_t i = 0; i + 4 <= chunk.size(); i += 4) {
      int16_t sample = static_cast<int16_t>(12000 * std::sin(phase));
      phase += 2 * 3.14159265 * 440.0 / config.rate_hz;
      chunk[i] = chunk[i + 2] = static_cast<uint8_t>(sample & 0xff);
      chunk[i + 1] = chunk[i + 3] = static_cast<uint8_t>(sample >> 8);
    }
    Status written = pcm->ops()->WriteSamples({chunk.data(), chunk.size()});
    if (!written.ok()) {
      std::fprintf(stderr, "write failed: %s\n", written.ToString().c_str());
    }
    host.Pump();                               // driver copies into its DMA ring
    machine.clock().Advance(10 * kMillisecond);  // the card consumes in real time
    machine.TickDevices();
    host.Pump();                               // period-elapsed notifications
  }

  std::printf("played %llu periods (~%d callbacks), %llu underruns, device signature %llx\n",
              (unsigned long long)card.periods_played(), periods,
              (unsigned long long)card.underruns(),
              (unsigned long long)card.consumed_signature());
  (void)pcm->ops()->CloseStream();
  return card.periods_played() >= 20 && card.underruns() == 0 ? 0 : 1;
}
