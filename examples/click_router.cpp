// Click-router example: Section 6 "Applications".
//
// "The Click router runs as a kernel module so that it has direct access to
// packets as they are received by the network card. With SUD, these
// applications could run as untrusted SUD-UML driver processes, with direct
// access to hardware, and achieve good performance without the security
// threat."
//
// This program is that application: a user-space packet forwarder that is
// *not* a device driver at all — it registers nothing with the kernel's
// network stack. It binds two NICs through SUD's safe-PCI surface, programs
// their descriptor rings directly in its own DMA space, polls receive
// rings, applies a Click-style filter (drop telnet), and forwards frames
// port-to-port. The kernel trusts none of it; the IOMMU and ACS confine
// whatever it does.
//
//   host A --link--> [router port A | click process | router port B] --link--> host B

#include <cstdio>
#include <cstring>

#include "src/base/log.h"
#include "src/devices/ether_link.h"
#include "src/devices/sim_nic.h"
#include "src/drivers/e1000e.h"
#include "src/hw/machine.h"
#include "src/kern/kernel.h"
#include "src/sud/safe_pci.h"
#include "src/uml/direct_env.h"

namespace {

using namespace sud;

// One router port: descriptor rings + buffers in the port's own DMA space,
// programmed through the mediated MMIO surface. ~the data-plane half of a
// Click "FromDevice/ToDevice" element pair.
class RouterPort {
 public:
  static constexpr uint32_t kRxDesc = 64;
  static constexpr uint32_t kBufBytes = 2048;

  Status Init(SudDeviceContext* ctx) {
    ctx_ = ctx;
    // pci_enable_device + pci_set_master through the filtered syscall.
    SUD_RETURN_IF_ERROR(ctx->ConfigWrite(
        hw::kPciCommand, 2,
        hw::kPciCommandMemEnable | hw::kPciCommandIoEnable | hw::kPciCommandBusMaster));
    Result<DmaRegion> rx_ring = ctx->dma().Alloc(kRxDesc * 16, true);
    Result<DmaRegion> tx_ring = ctx->dma().Alloc(kRxDesc * 16, true);
    Result<DmaRegion> buffers = ctx->dma().Alloc(2ull * kRxDesc * kBufBytes, false);
    if (!rx_ring.ok() || !tx_ring.ok() || !buffers.ok()) {
      return Status(ErrorCode::kExhausted, "dma alloc failed");
    }
    rx_ring_ = rx_ring.value();
    tx_ring_ = tx_ring.value();
    buffers_ = buffers.value();

    // Arm every RX descriptor.
    for (uint32_t i = 0; i < kRxDesc; ++i) {
      SUD_RETURN_IF_ERROR(WriteDesc(rx_ring_.iova, i, RxBuf(i), 0, 0));
    }
    SUD_RETURN_IF_ERROR(ctx->MmioWrite(0, devices::kNicRegRdbal,
                                       static_cast<uint32_t>(rx_ring_.iova)));
    SUD_RETURN_IF_ERROR(ctx->MmioWrite(0, devices::kNicRegRdlen, kRxDesc * 16));
    SUD_RETURN_IF_ERROR(ctx->MmioWrite(0, devices::kNicRegRdh, 0));
    SUD_RETURN_IF_ERROR(ctx->MmioWrite(0, devices::kNicRegRdt, kRxDesc - 1));
    SUD_RETURN_IF_ERROR(ctx->MmioWrite(0, devices::kNicRegRctl, devices::kNicRctlEnable));
    SUD_RETURN_IF_ERROR(ctx->MmioWrite(0, devices::kNicRegTdbal,
                                       static_cast<uint32_t>(tx_ring_.iova)));
    SUD_RETURN_IF_ERROR(ctx->MmioWrite(0, devices::kNicRegTdlen, kRxDesc * 16));
    SUD_RETURN_IF_ERROR(ctx->MmioWrite(0, devices::kNicRegTdh, 0));
    SUD_RETURN_IF_ERROR(ctx->MmioWrite(0, devices::kNicRegTdt, 0));
    return ctx->MmioWrite(0, devices::kNicRegTctl, devices::kNicTctlEnable);
  }

  // Polls the RX ring; calls `sink(frame)` for each received frame.
  template <typename Sink>
  int Poll(Sink&& sink) {
    int count = 0;
    while (true) {
      Result<ByteSpan> desc = ctx_->dma().HostView(rx_ring_.iova + rx_next_ * 16ull, 16);
      if (!desc.ok() || (desc.value()[12] & devices::kNicDescStatusDone) == 0) {
        break;
      }
      uint16_t len = LoadLe16(desc.value().data() + 8);
      Result<ByteSpan> frame = ctx_->dma().HostView(RxBuf(rx_next_), len);
      if (frame.ok()) {
        sink(ConstByteSpan(frame.value().data(), len));
        ++count;
      }
      (void)WriteDesc(rx_ring_.iova, rx_next_, RxBuf(rx_next_), 0, 0);  // re-arm
      (void)ctx_->MmioWrite(0, devices::kNicRegRdt, rx_next_);
      rx_next_ = (rx_next_ + 1) % kRxDesc;
    }
    return count;
  }

  Status Transmit(ConstByteSpan frame) {
    uint64_t buf = TxBuf(tx_next_);
    Result<ByteSpan> view = ctx_->dma().HostView(buf, frame.size());
    if (!view.ok()) {
      return view.status();
    }
    std::memcpy(view.value().data(), frame.data(), frame.size());
    SUD_RETURN_IF_ERROR(WriteDesc(tx_ring_.iova, tx_next_, buf,
                                  static_cast<uint16_t>(frame.size()),
                                  devices::kNicDescCmdEop));
    tx_next_ = (tx_next_ + 1) % kRxDesc;
    return ctx_->MmioWrite(0, devices::kNicRegTdt, tx_next_);
  }

 private:
  uint64_t RxBuf(uint32_t i) const { return buffers_.iova + static_cast<uint64_t>(i) * kBufBytes; }
  uint64_t TxBuf(uint32_t i) const {
    return buffers_.iova + (kRxDesc + static_cast<uint64_t>(i)) * kBufBytes;
  }

  Status WriteDesc(uint64_t ring, uint32_t index, uint64_t buffer, uint16_t len, uint8_t cmd) {
    Result<ByteSpan> view = ctx_->dma().HostView(ring + index * 16ull, 16);
    if (!view.ok()) {
      return view.status();
    }
    uint8_t* raw = view.value().data();
    std::memset(raw, 0, 16);
    StoreLe64(raw, buffer);
    StoreLe16(raw + 8, len);
    raw[11] = cmd;
    return Status::Ok();
  }

  SudDeviceContext* ctx_ = nullptr;
  DmaRegion rx_ring_{}, tx_ring_{}, buffers_{};
  uint32_t rx_next_ = 0;
  uint32_t tx_next_ = 0;
};

}  // namespace

int main() {
  Logger::Get().set_min_level(LogLevel::kWarning);

  hw::Machine machine;
  kern::Kernel kernel(&machine);
  hw::PcieSwitch& sw = machine.AddSwitch("pcie-switch");

  const uint8_t mac_host_a[6] = {0xa, 0, 0, 0, 0, 1};
  const uint8_t mac_host_b[6] = {0xb, 0, 0, 0, 0, 1};
  const uint8_t mac_port_a[6] = {0xc, 0, 0, 0, 0, 0xa};
  const uint8_t mac_port_b[6] = {0xc, 0, 0, 0, 0, 0xb};
  devices::SimNic host_a_nic("host-a", mac_host_a), host_b_nic("host-b", mac_host_b);
  devices::SimNic port_a_nic("click-port-a", mac_port_a), port_b_nic("click-port-b", mac_port_b);
  devices::EtherLink link_a, link_b;
  for (auto* nic : {&host_a_nic, &host_b_nic, &port_a_nic, &port_b_nic}) {
    (void)machine.AttachDevice(sw, nic);
  }
  host_a_nic.ConnectLink(&link_a, 0);
  port_a_nic.ConnectLink(&link_a, 1);
  port_b_nic.ConnectLink(&link_b, 0);
  host_b_nic.ConnectLink(&link_b, 1);

  // Hosts run honest in-kernel drivers.
  uml::DirectEnv env_a(&kernel, &host_a_nic), env_b(&kernel, &host_b_nic);
  drivers::E1000eDriver drv_a, drv_b;
  (void)drv_a.Probe(env_a);
  (void)drv_b.Probe(env_b);
  (void)kernel.net().BringUp(env_a.netdev()->name());
  (void)kernel.net().BringUp(env_b.netdev()->name());

  // The Click process: one UID, two devices, zero kernel driver API.
  SafePciModule safe_pci(&kernel);
  SudDeviceContext* ctx_a = safe_pci.ExportDevice(&port_a_nic, /*uid=*/2000).value();
  SudDeviceContext* ctx_b = safe_pci.ExportDevice(&port_b_nic, /*uid=*/2000).value();
  kern::Process& click = kernel.processes().Spawn("click-router", 2000);
  if (!ctx_a->Bind(&click).ok() || !ctx_b->Bind(&click).ok()) {
    std::fprintf(stderr, "bind failed\n");
    return 1;
  }
  RouterPort port_a, port_b;
  if (!port_a.Init(ctx_a).ok() || !port_b.Init(ctx_b).ok()) {
    std::fprintf(stderr, "port init failed\n");
    return 1;
  }

  // Click configuration: FromDevice(a) -> filter(drop port 23) -> ToDevice(b).
  int forwarded = 0, filtered = 0;
  auto run_click = [&]() {
    forwarded += port_a.Poll([&](ConstByteSpan frame) {
      kern::PacketView view{frame};
      if (view.valid() && view.dst_port() == 23) {
        ++filtered;
        --forwarded;  // counted back out below
        return;
      }
      (void)port_b.Transmit(frame);
    });
    (void)port_b.Poll([&](ConstByteSpan frame) { (void)port_a.Transmit(frame); });
  };

  // Host A sends 6 packets: 4 to port 80, 2 to the filtered port 23.
  int host_b_received = 0;
  env_b.netdev()->set_rx_sink([&](const kern::Skb& skb) {
    ++host_b_received;
    std::printf("  host B received: %zu bytes to port %u\n", skb.data_len(),
                skb.view().dst_port());
  });
  std::vector<uint8_t> payload(64, 0x42);
  for (int i = 0; i < 6; ++i) {
    uint16_t port = (i % 3 == 2) ? 23 : 80;
    auto frame = kern::BuildPacket(mac_host_b, mac_host_a, 999, port,
                                   {payload.data(), payload.size()});
    (void)kernel.net().Transmit(env_a.netdev()->name(),
                                kern::MakeSkb({frame.data(), frame.size()}));
    run_click();  // the click process polls and forwards
  }

  std::printf("\nclick-router: forwarded %d, filtered %d (port 23), host B got %d\n",
              forwarded + filtered >= 0 ? forwarded : 0, filtered, host_b_received);
  std::printf("the router process held direct ring access to two NICs; its IOMMU\n");
  std::printf("contexts confine it exactly like any driver (%llu KB + %llu KB mapped)\n",
              (unsigned long long)(machine.iommu().MappedBytes(port_a_nic.address().source_id()) / 1024),
              (unsigned long long)(machine.iommu().MappedBytes(port_b_nic.address().source_id()) / 1024));
  return (host_b_received == 4 && filtered == 2) ? 0 : 1;
}
