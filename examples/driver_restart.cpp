// Driver restart example: the §4.1 administrator story.
//
// "An administrator can terminate a misbehaving or buggy driver with
// kill -9, and restart it by starting a new SUD-UML process for the
// device." — start an honest driver, replace it with a malicious one, kill
// it, restart the honest one, and verify full recovery with zero leaked
// resources.

#include <cstdio>

#include "src/base/log.h"
#include "src/devices/ether_link.h"
#include "src/devices/sim_nic.h"
#include "src/drivers/e1000e.h"
#include "src/drivers/malicious.h"
#include "src/hw/machine.h"
#include "src/kern/kernel.h"
#include "src/sud/proxy_ethernet.h"
#include "src/sud/safe_pci.h"
#include "src/uml/direct_env.h"
#include "src/uml/driver_host.h"

int main() {
  using namespace sud;
  Logger::Get().set_min_level(LogLevel::kWarning);

  hw::Machine machine;
  kern::Kernel kernel(&machine);
  hw::PcieSwitch& sw = machine.AddSwitch("pcie-switch");
  const uint8_t mac_a[6] = {0, 1, 2, 3, 4, 5};
  const uint8_t mac_b[6] = {5, 4, 3, 2, 1, 0};
  devices::SimNic nic("e1000e", mac_a);
  devices::SimNic peer("peer", mac_b);
  devices::EtherLink link;
  (void)machine.AttachDevice(sw, &nic);
  (void)machine.AttachDevice(sw, &peer);
  nic.ConnectLink(&link, 0);
  peer.ConnectLink(&link, 1);

  SafePciModule safe_pci(&kernel);
  SudDeviceContext* ctx = safe_pci.ExportDevice(&nic, 1001).value();
  EthernetProxy proxy(&kernel, ctx);
  uml::DriverHost host(&kernel, ctx, "e1000e-driver", 1001);

  uml::DirectEnv peer_env(&kernel, &peer, kAccountPeer);
  drivers::E1000eDriver peer_driver;
  (void)peer_driver.Probe(peer_env);
  (void)kernel.net().BringUp(peer_env.netdev()->name());

  auto send_and_count = [&]() {
    int got = 0;
    kernel.net().Find("eth0")->set_rx_sink([&](const kern::Skb&) { ++got; });
    std::vector<uint8_t> payload(64, 0x1);
    for (int i = 0; i < 3; ++i) {
      auto frame = kern::BuildPacket(mac_a, mac_b, 1, 80, {payload.data(), payload.size()});
      (void)kernel.net().Transmit(peer_env.netdev()->name(),
                                  kern::MakeSkb({frame.data(), frame.size()}));
      host.Pump();
    }
    return got;
  };

  auto resources = [&]() {
    std::printf("    iommu mapped: %llu KB, pool free: %u, io-ports granted: %zu\n",
                (unsigned long long)(machine.iommu().MappedBytes(nic.address().source_id()) /
                                     1024),
                ctx->bound() ? ctx->pool().free_count() : 0,
                host.process() != nullptr ? host.process()->granted_io_ports() : 0);
  };

  std::printf("[1] honest driver up\n");
  (void)host.Start(std::make_unique<drivers::E1000eDriver>());
  (void)kernel.net().BringUp("eth0");
  std::printf("    delivered %d/3\n", send_and_count());
  resources();

  std::printf("[2] administrator notices trouble; kill -9\n");
  (void)host.Kill();
  std::printf("    iommu context exists: %s, bus master: %s\n",
              machine.iommu().HasContext(nic.address().source_id()) ? "yes" : "no",
              nic.config().bus_master_enabled() ? "on" : "off");

  std::printf("[3] a malicious replacement driver sneaks in\n");
  {
    auto attack = std::make_unique<drivers::DmaAttackDriver>(0x100000);
    auto* p = attack.get();
    (void)host.Start(std::move(attack));
    (void)p->LaunchTxRead();
    std::printf("    attack frames leaked: %llu, iommu faults: %zu\n",
                (unsigned long long)link.stats().frames[0], machine.iommu().faults().size());
    (void)host.Kill();
  }

  std::printf("[4] restart the honest driver\n");
  (void)kernel.net().BringDown("eth0");  // admin downs the dead interface
  (void)host.Start(std::make_unique<drivers::E1000eDriver>());
  (void)kernel.net().BringUp("eth0");
  int after = send_and_count();
  std::printf("    delivered %d/3 after recovery\n", after);
  resources();

  std::printf("\nrecovery %s\n", after == 3 ? "COMPLETE" : "FAILED");
  return after == 3 ? 0 : 1;
}
