// Malicious-driver containment demo: the elevator pitch of the paper.
//
// Starts a fully adversarial driver on the same machine as an innocent
// victim driver, lets it attack through every channel it has — arbitrary
// DMA, peer-to-peer DMA at the victim's registers, filtered config writes,
// forged interrupts — and shows the victim's traffic flowing undisturbed
// while every attack bounces off the confinement hardware.

#include <cstdio>

#include "src/base/log.h"
#include "src/devices/ether_link.h"
#include "src/devices/sim_nic.h"
#include "src/drivers/e1000e.h"
#include "src/drivers/malicious.h"
#include "src/hw/machine.h"
#include "src/kern/kernel.h"
#include "src/sud/proxy_ethernet.h"
#include "src/sud/safe_pci.h"
#include "src/uml/direct_env.h"
#include "src/uml/driver_host.h"

int main() {
  using namespace sud;
  Logger::Get().set_min_level(LogLevel::kAttack);  // show confinement events

  hw::Machine machine;
  kern::Kernel kernel(&machine);
  hw::PcieSwitch& sw = machine.AddSwitch("pcie-switch");

  const uint8_t mac_evil[6] = {0xba, 0xdc, 0x0f, 0xfe, 0xe0, 0x01};
  const uint8_t mac_victim[6] = {0x00, 0x1b, 0x21, 0x01, 0x02, 0x03};
  devices::SimNic evil_nic("evil-nic", mac_evil);
  devices::SimNic victim_nic("victim-nic", mac_victim);
  devices::EtherLink link;
  (void)machine.AttachDevice(sw, &evil_nic);
  (void)machine.AttachDevice(sw, &victim_nic);
  evil_nic.ConnectLink(&link, 0);
  victim_nic.ConnectLink(&link, 1);

  SafePciModule safe_pci(&kernel);

  // The victim: an honest e1000e running in-kernel.
  uml::DirectEnv victim_env(&kernel, &victim_nic);
  drivers::E1000eDriver victim_driver;
  (void)victim_driver.Probe(victim_env);
  (void)kernel.net().BringUp(victim_env.netdev()->name());

  // The attacker: an untrusted SUD driver process.
  SudDeviceContext* ctx = safe_pci.ExportDevice(&evil_nic, /*owner_uid=*/1002).value();
  uml::DriverHost host(&kernel, ctx, "evil-driver", 1002);

  std::printf("=== attack 1: arbitrary DMA read of kernel memory ===\n");
  uint64_t secret_paddr = machine.dram().AllocPages(1).value();
  const char secret[] = "root:$6$hunter2$...";
  (void)machine.dram().Write(secret_paddr,
                             {reinterpret_cast<const uint8_t*>(secret), sizeof(secret)});
  {
    auto attack = std::make_unique<drivers::DmaAttackDriver>(secret_paddr);
    auto* p = attack.get();
    (void)host.Start(std::move(attack));
    (void)p->LaunchTxRead();
    std::printf("  -> frames exfiltrated: %llu (iommu faults: %zu)\n\n",
                (unsigned long long)link.stats().frames[0], machine.iommu().faults().size());
    (void)host.Kill();
  }

  std::printf("=== attack 2: peer-to-peer DMA into the victim NIC's registers ===\n");
  {
    uint64_t victim_bar = victim_nic.config().bar(0);
    uint32_t tdbal_before = victim_nic.MmioRead(0, devices::kNicRegTdbal);
    auto attack = std::make_unique<drivers::DmaAttackDriver>(victim_bar);
    auto* p = attack.get();
    (void)host.Start(std::move(attack));
    (void)p->LaunchRxWrite();
    // Any frame on the wire triggers the armed descriptor.
    uint8_t junk[64] = {0xff};
    (void)link.Transmit(1, {junk, sizeof(junk)});
    std::printf("  -> victim TDBAL before/after: 0x%x/0x%x, p2p deliveries: %llu\n\n",
                tdbal_before, victim_nic.MmioRead(0, devices::kNicRegTdbal),
                (unsigned long long)sw.p2p_deliveries());
    (void)host.Kill();
  }

  std::printf("=== attack 3: rewrite BARs and the MSI capability ===\n");
  {
    auto attack = std::make_unique<drivers::ConfigAttackDriver>();
    auto* p = attack.get();
    (void)host.Start(std::move(attack));
    std::printf("  -> %u/%u sensitive config writes denied\n\n", p->outcome().denied,
                p->outcome().attempts);
    (void)host.Kill();
  }

  std::printf("=== attack 4: interrupt storm from an unacknowledging driver ===\n");
  {
    auto attack = std::make_unique<drivers::NeverAckDriver>();
    auto* p = attack.get();
    (void)host.Start(std::move(attack));
    for (int i = 0; i < 10; ++i) {
      (void)p->TriggerInterrupt();
    }
    std::printf("  -> interrupts forwarded: %llu, MSI masked: %s\n\n",
                (unsigned long long)ctx->interrupt_stats().forwarded,
                evil_nic.config().msi_masked() ? "yes" : "no");
    (void)host.Kill();
  }

  std::printf("=== meanwhile: the victim's traffic still flows ===\n");
  int victim_rx = 0;
  victim_env.netdev()->set_rx_sink([&](const kern::Skb&) { ++victim_rx; });
  // The attacker's NIC is quiesced (bus master off after teardown), so use a
  // fresh, honest driver on the evil NIC to talk to the victim.
  {
    SudDeviceContext* honest_ctx = ctx;  // same device files, new process
    EthernetProxy proxy(&kernel, honest_ctx);
    uml::DriverHost honest_host(&kernel, honest_ctx, "honest-driver", 1002);
    (void)honest_host.Start(std::make_unique<drivers::E1000eDriver>());
    (void)kernel.net().BringUp("eth0");
    std::vector<uint8_t> payload(64, 0x7);
    for (int i = 0; i < 5; ++i) {
      auto frame = kern::BuildPacket(mac_victim, mac_evil, 1, 80,
                                     {payload.data(), payload.size()});
      (void)kernel.net().Transmit("eth0", kern::MakeSkb({frame.data(), frame.size()}));
      honest_host.Pump();
    }
    std::printf("  -> victim received %d/5 packets after all attacks\n", victim_rx);
  }

  std::printf("\nThe same device files survived four hostile drivers and one honest\n");
  std::printf("restart — nothing outside the driver's sandbox was harmed.\n");
  return victim_rx == 5 ? 0 : 1;
}
