// Quickstart: the minimal end-to-end SUD deployment.
//
// Builds a machine with an e1000e-class NIC, exports it through SUD's
// safe-PCI module to an untrusted driver process (UID 1001), runs the
// unmodified e1000e driver under SUD-UML, brings the interface up with the
// kernel's equivalent of `ifconfig eth0 up`, and pushes traffic both ways.
//
//   machine ──> safe-PCI export ──> driver process (SUD-UML + e1000e)
//                     │                        │
//               Ethernet proxy  <== uchan ==>  driver dispatch loop

#include <cstdio>

#include "src/base/log.h"
#include "src/devices/ether_link.h"
#include "src/devices/sim_nic.h"
#include "src/drivers/e1000e.h"
#include "src/hw/machine.h"
#include "src/kern/kernel.h"
#include "src/sud/proxy_ethernet.h"
#include "src/sud/safe_pci.h"
#include "src/uml/direct_env.h"
#include "src/uml/driver_host.h"

int main() {
  using namespace sud;
  Logger::Get().set_min_level(LogLevel::kInfo);

  // --- 1. the machine: one PCIe switch, our NIC, and a peer NIC on the wire.
  hw::Machine machine;
  kern::Kernel kernel(&machine);
  hw::PcieSwitch& sw = machine.AddSwitch("pcie-switch");

  const uint8_t mac_sut[6] = {0x00, 0x1b, 0x21, 0x01, 0x02, 0x03};
  const uint8_t mac_peer[6] = {0x00, 0x1b, 0x21, 0x0a, 0x0b, 0x0c};
  devices::SimNic nic("e1000e", mac_sut);
  devices::SimNic peer("peer-nic", mac_peer);
  devices::EtherLink link;
  (void)machine.AttachDevice(sw, &nic);
  (void)machine.AttachDevice(sw, &peer);
  nic.ConnectLink(&link, 0);
  peer.ConnectLink(&link, 1);

  // --- 2. export the NIC for an untrusted driver owned by UID 1001.
  // (This is the `chown driver-user /sys/devices/.../sud/*` step of §4.1;
  // it also turns on ACS on every switch.)
  SafePciModule safe_pci(&kernel);
  SudDeviceContext* ctx = safe_pci.ExportDevice(&nic, /*owner_uid=*/1001).value();

  // --- 3. the kernel-side Ethernet proxy and the untrusted driver process.
  EthernetProxy proxy(&kernel, ctx);
  uml::DriverHost host(&kernel, ctx, "e1000e-driver", /*uid=*/1001);
  Status started = host.Start(std::make_unique<drivers::E1000eDriver>());
  if (!started.ok()) {
    std::fprintf(stderr, "driver failed to start: %s\n", started.ToString().c_str());
    return 1;
  }

  // --- 4. ifconfig eth0 up (a synchronous, interruptable upcall).
  Status up = kernel.net().BringUp("eth0");
  std::printf("ifconfig eth0 up -> %s\n", up.ToString().c_str());

  // Drive the peer with the same driver, in-kernel (trusted).
  uml::DirectEnv peer_env(&kernel, &peer, kAccountPeer);
  drivers::E1000eDriver peer_driver;
  (void)peer_driver.Probe(peer_env);
  (void)kernel.net().BringUp(peer_env.netdev()->name());

  // --- 5. traffic: peer -> SUD driver -> kernel stack.
  int received = 0;
  kernel.net().Find("eth0")->set_rx_sink([&](const kern::Skb& skb) {
    ++received;
    std::printf("  rx #%d: %zu bytes, dst port %u, checksum verified=%d\n", received,
                skb.data_len(), skb.view().dst_port(), skb.checksum_verified);
  });
  for (int i = 0; i < 3; ++i) {
    std::vector<uint8_t> payload(100 + i * 100, static_cast<uint8_t>(i));
    auto frame = kern::BuildPacket(mac_sut, mac_peer, 1000, 80,
                                   {payload.data(), payload.size()});
    (void)kernel.net().Transmit(peer_env.netdev()->name(),
                                kern::MakeSkb({frame.data(), frame.size()}));
    host.Pump();  // the driver process services its upcalls
  }

  // --- 6. and back: kernel stack -> SUD driver -> wire.
  peer_env.netdev()->set_rx_sink(
      [](const kern::Skb& skb) { std::printf("  peer got %zu bytes back\n", skb.data_len()); });
  std::vector<uint8_t> payload(256, 0x42);
  auto frame = kern::BuildPacket(mac_peer, mac_sut, 80, 1000, {payload.data(), payload.size()});
  (void)kernel.net().Transmit("eth0", kern::MakeSkb({frame.data(), frame.size()}));
  host.Pump();

  // --- 7. the MII ioctl round trip of Figure 2.
  Result<std::string> mii = proxy.Ioctl(kern::kIoctlGetMiiStatus);
  std::printf("SIOCGMIIREG -> %s\n", mii.ok() ? mii.value().c_str() : mii.status().ToString().c_str());

  std::printf("\nreceived %d packets through the untrusted driver; driver stats: "
              "tx=%llu rx=%llu irqs=%llu\n",
              received,
              (unsigned long long)static_cast<drivers::E1000eDriver*>(host.driver())->stats().tx_queued,
              (unsigned long long)static_cast<drivers::E1000eDriver*>(host.driver())->stats().rx_delivered,
              (unsigned long long)static_cast<drivers::E1000eDriver*>(host.driver())->stats().interrupts);
  return received == 3 ? 0 : 1;
}
