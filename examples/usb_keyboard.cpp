// USB example: the EHCI-class host-controller driver under SUD enumerating
// a keyboard with real chapter-9 control transfers, then streaming HID key
// reports into the kernel input queue — all with zero USB-specific proxy
// code in the kernel (Figure 5's "0 lines" row).

#include <cstdio>

#include "src/base/log.h"
#include "src/devices/usb_host.h"
#include "src/drivers/usb_hcd.h"
#include "src/hw/machine.h"
#include "src/kern/kernel.h"
#include "src/sud/proxy_usb.h"
#include "src/sud/safe_pci.h"
#include "src/uml/driver_host.h"

int main() {
  using namespace sud;
  Logger::Get().set_min_level(LogLevel::kWarning);

  hw::Machine machine;
  kern::Kernel kernel(&machine);
  hw::PcieSwitch& sw = machine.AddSwitch("pcie-switch");
  devices::UsbHostController hcd("ehci");
  devices::UsbKeyboard keyboard;
  (void)machine.AttachDevice(sw, &hcd);
  (void)hcd.PlugDevice(0, &keyboard);

  SafePciModule safe_pci(&kernel);
  SudDeviceContext* ctx = safe_pci.ExportDevice(&hcd, /*owner_uid=*/1005).value();
  UsbHostProxy proxy(&kernel, ctx);
  uml::DriverHost host(&kernel, ctx, "ehci-driver", 1005);
  Status started = host.Start(std::make_unique<drivers::UsbHcdDriver>());
  if (!started.ok()) {
    std::fprintf(stderr, "driver failed: %s\n", started.ToString().c_str());
    return 1;
  }

  auto* driver = static_cast<drivers::UsbHcdDriver*>(host.driver());
  Result<int> configured = driver->Enumerate();
  std::printf("enumeration: %d device(s) configured\n", configured.value_or(0));
  for (const auto& device : driver->devices()) {
    std::printf("  addr %u: %04x:%04x class 0x%02x %s\n", device.address, device.vendor_id,
                device.product_id, device.device_class,
                device.device_class == 0x03 ? "(HID keyboard)" : "");
  }

  // Type "sud" (HID usage codes) and poll the interrupt endpoint.
  const char* keys = "sud";
  const uint8_t usages[] = {0x16, 0x18, 0x07};  // s, u, d
  for (uint8_t usage : usages) {
    keyboard.PressKey(usage);
    (void)driver->PollInput();
  }
  host.Pump();  // key-event downcalls land in the kernel input queue

  std::printf("typed \"%s\": kernel input queue has %zu events:", keys, kernel.input().pending());
  int events = 0;
  while (auto event = kernel.input().PopEvent()) {
    std::printf(" 0x%02x", event->usage_code);
    ++events;
  }
  std::printf("\ncontrol transfers: %llu, interrupt polls: %llu\n",
              (unsigned long long)driver->stats().control_transfers,
              (unsigned long long)driver->stats().interrupt_polls);
  return events == 3 ? 0 : 1;
}
