// Wireless example: the iwlagn-class driver under SUD scanning the air,
// associating, and exercising the non-preemptable feature path of §3.1.1.

#include <cstdio>

#include "src/base/log.h"
#include "src/devices/wifi_nic.h"
#include "src/drivers/iwl.h"
#include "src/hw/machine.h"
#include "src/kern/kernel.h"
#include "src/sud/proxy_wireless.h"
#include "src/sud/safe_pci.h"
#include "src/uml/driver_host.h"

int main() {
  using namespace sud;
  Logger::Get().set_min_level(LogLevel::kWarning);

  // The air: three access points.
  devices::RadioEnvironment air;
  for (auto [ssid, channel, signal] :
       {std::tuple{"csail", 6, -41}, {"MIT", 11, -67}, {"stata-guest", 1, -72}}) {
    devices::BssInfo bss{};
    std::snprintf(bss.ssid, sizeof(bss.ssid), "%s", ssid);
    bss.channel = static_cast<uint8_t>(channel);
    bss.signal_dbm = static_cast<int8_t>(signal);
    air.AddAccessPoint(bss);
  }

  hw::Machine machine;
  kern::Kernel kernel(&machine);
  hw::PcieSwitch& sw = machine.AddSwitch("pcie-switch");
  devices::WifiNic nic("iwl5000", &air);
  (void)machine.AttachDevice(sw, &nic);

  SafePciModule safe_pci(&kernel);
  SudDeviceContext* ctx = safe_pci.ExportDevice(&nic, /*owner_uid=*/1003).value();
  WirelessProxy proxy(&kernel, ctx);
  uml::DriverHost host(&kernel, ctx, "iwl-driver", 1003);
  Status started = host.Start(std::make_unique<drivers::IwlDriver>());
  if (!started.ok()) {
    std::fprintf(stderr, "driver failed: %s\n", started.ToString().c_str());
    return 1;
  }
  host.Pump();  // flush the bitrate mirror

  kern::WirelessDevice* wdev = kernel.wireless().Find("wlan0");
  std::printf("wlan0 registered; mirrored bitrates:");
  for (uint32_t rate : wdev->bitrates()) {
    std::printf(" %u", rate);
  }
  std::printf(" Mbit/s\n\n");

  // Scan: a synchronous upcall; the card DMAs the BSS table into the
  // driver's buffer and the results flow back through the uchan.
  Result<std::vector<kern::ScanResult>> results = kernel.wireless().Scan("wlan0");
  if (!results.ok()) {
    std::fprintf(stderr, "scan failed: %s\n", results.status().ToString().c_str());
    return 1;
  }
  std::printf("scan results (%zu BSSes):\n", results.value().size());
  for (const kern::ScanResult& bss : results.value()) {
    std::printf("  %-14s ch %-2u %4d dBm\n", bss.ssid.c_str(), bss.channel, bss.signal_dbm);
  }

  // The 802.11 stack enables features from a non-preemptable context: the
  // proxy answers from its mirror without blocking and queues an async
  // upcall to the driver.
  Result<uint32_t> enabled = kernel.wireless().EnableFeatures(
      "wlan0", kern::kWifiFeatureQos | kern::kWifiFeatureHt40 | kern::kWifiFeaturePowerSave);
  host.Pump();
  std::printf("\nfeature enable (atomic ctx): requested qos|ht40|ps, got 0x%x "
              "(atomic violations: %llu)\n",
              enabled.value_or(0), (unsigned long long)proxy.stats().atomic_violations);

  // Associate; the bss_change downcall updates the kernel mirror.
  wdev->set_bss_change_handler(
      [](bool assoc) { std::printf("bss_change: %s\n", assoc ? "associated" : "disconnected"); });
  Status assoc = kernel.wireless().Associate("wlan0", "csail");
  host.Pump();
  std::printf("associate(csail) -> %s; kernel mirror says associated=%d\n",
              assoc.ToString().c_str(), wdev->associated());
  return assoc.ok() && wdev->associated() ? 0 : 1;
}
