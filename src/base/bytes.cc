#include "src/base/bytes.h"

#include <bit>
#include <cstdio>
#include <cstring>

namespace sud {

uint16_t InternetChecksum(ConstByteSpan data) {
  // RFC 1071 ones-complement sum, accumulated 8 bytes at a time in host
  // order; the 1's-complement sum is byte-order independent, so a single
  // final swap recovers the network-order result (this runs on every packet
  // of every bench, so the byte-at-a-time loop was a top hotspot).
  const uint8_t* p = data.data();
  size_t n = data.size();
  uint64_t sum = 0;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    sum += chunk & 0xffffffffull;
    sum += chunk >> 32;
    p += 8;
    n -= 8;
  }
  if (n >= 4) {
    uint32_t chunk;
    std::memcpy(&chunk, p, 4);
    sum += chunk;
    p += 4;
    n -= 4;
  }
  if (n >= 2) {
    uint16_t chunk;
    std::memcpy(&chunk, p, 2);
    sum += chunk;
    p += 2;
    n -= 2;
  }
  if (n > 0) {
    sum += p[0];  // odd tail byte pads with zero (low byte of a host word)
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  uint16_t host = static_cast<uint16_t>(sum);
  uint16_t wire = host;
  if constexpr (std::endian::native == std::endian::little) {
    wire = static_cast<uint16_t>((host >> 8) | (host << 8));
  }
  return static_cast<uint16_t>(~wire);
}

std::string FormatMac(const uint8_t mac[6]) {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", mac[0], mac[1], mac[2], mac[3],
                mac[4], mac[5]);
  return buf;
}

std::string Hex(uint64_t value) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%llX", static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace sud
