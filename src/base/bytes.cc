#include "src/base/bytes.h"

#include <bit>
#include <cstdio>
#include <cstring>

namespace sud {

namespace {

// RFC 1071 ones-complement accumulation, 8 bytes at a time in host order
// (this runs on every packet of every bench, so the byte-at-a-time loop was
// a top hotspot). The raw 64-bit sum is exact, so callers may subtract a
// word's contribution before folding.
uint64_t ChecksumRawSum(ConstByteSpan data) {
  const uint8_t* p = data.data();
  size_t n = data.size();
  uint64_t sum = 0;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    sum += chunk & 0xffffffffull;
    sum += chunk >> 32;
    p += 8;
    n -= 8;
  }
  if (n >= 4) {
    uint32_t chunk;
    std::memcpy(&chunk, p, 4);
    sum += chunk;
    p += 4;
    n -= 4;
  }
  if (n >= 2) {
    uint16_t chunk;
    std::memcpy(&chunk, p, 2);
    sum += chunk;
    p += 2;
    n -= 2;
  }
  if (n > 0) {
    sum += p[0];  // odd tail byte pads with zero (low byte of a host word)
  }
  return sum;
}

// Fold to 16 bits; the 1's-complement sum is byte-order independent, so a
// single final swap recovers the network-order result.
uint16_t ChecksumFinish(uint64_t sum) {
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  uint16_t host = static_cast<uint16_t>(sum);
  uint16_t wire = host;
  if constexpr (std::endian::native == std::endian::little) {
    wire = static_cast<uint16_t>((host >> 8) | (host << 8));
  }
  return static_cast<uint16_t>(~wire);
}

}  // namespace

uint16_t InternetChecksum(ConstByteSpan data) { return ChecksumFinish(ChecksumRawSum(data)); }

uint64_t InternetChecksumRawCopy(uint8_t* dst, ConstByteSpan data) {
  const uint8_t* p = data.data();
  size_t n = data.size();
  uint64_t sum = 0;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    std::memcpy(dst, &chunk, 8);
    sum += chunk & 0xffffffffull;
    sum += chunk >> 32;
    p += 8;
    dst += 8;
    n -= 8;
  }
  if (n >= 4) {
    uint32_t chunk;
    std::memcpy(&chunk, p, 4);
    std::memcpy(dst, &chunk, 4);
    sum += chunk;
    p += 4;
    dst += 4;
    n -= 4;
  }
  if (n >= 2) {
    uint16_t chunk;
    std::memcpy(&chunk, p, 2);
    std::memcpy(dst, &chunk, 2);
    sum += chunk;
    p += 2;
    dst += 2;
    n -= 2;
  }
  if (n > 0) {
    *dst = p[0];
    sum += p[0];  // odd tail byte pads with zero (low byte of a host word)
  }
  return sum;
}

uint16_t InternetChecksumFinishExcludingWord(uint64_t raw_sum, ConstByteSpan data,
                                             size_t word_offset) {
  if (word_offset + 2 <= data.size() && word_offset % 2 == 0) {
    uint16_t word;
    std::memcpy(&word, data.data() + word_offset, 2);
    // The word entered the accumulation as part of a 32-bit unit: in the low
    // half when its offset is 0 mod 4, in the high half when 2 mod 4 (and
    // as-is in the sub-4-byte tails). Subtracting the exact contribution
    // keeps this bit-identical to summing a copy with the word zeroed --
    // including the 0-vs-0xFFFF ones-complement corner.
    size_t in_chunk = word_offset % 4;
    bool high_half = in_chunk == 2 && word_offset + 2 <= (data.size() & ~size_t{3});
    raw_sum -= static_cast<uint64_t>(word) << (high_half ? 16 : 0);
  }
  return ChecksumFinish(raw_sum);
}

uint16_t InternetChecksumExcludingWord(ConstByteSpan data, size_t word_offset) {
  return InternetChecksumFinishExcludingWord(ChecksumRawSum(data), data, word_offset);
}

std::string FormatMac(const uint8_t mac[6]) {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", mac[0], mac[1], mac[2], mac[3],
                mac[4], mac[5]);
  return buf;
}

std::string Hex(uint64_t value) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%llX", static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace sud
