#include "src/base/bytes.h"

#include <cstdio>

namespace sud {

uint16_t InternetChecksum(ConstByteSpan data) {
  uint64_t sum = 0;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<uint16_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) {
    sum += static_cast<uint16_t>(data[i] << 8);
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

std::string FormatMac(const uint8_t mac[6]) {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", mac[0], mac[1], mac[2], mac[3],
                mac[4], mac[5]);
  return buf;
}

std::string Hex(uint64_t value) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%llX", static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace sud
