// Byte-span helpers and the Internet checksum used by the simulated stack.

#ifndef SUD_SRC_BASE_BYTES_H_
#define SUD_SRC_BASE_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace sud {

using ByteSpan = std::span<uint8_t>;
using ConstByteSpan = std::span<const uint8_t>;

// RFC 1071 Internet checksum over `data`.
uint16_t InternetChecksum(ConstByteSpan data);

// RFC 1071 checksum over `data` with the 16-bit word at even byte offset
// `word_offset` treated as zero — exactly what verifying a checksum needs
// (the stored checksum field must not contribute to its own sum). Summing in
// place and subtracting that word's contribution avoids the
// copy-the-packet-to-zero-one-field pass the receive path used to pay per
// packet. `word_offset + 2 <= data.size()` and `word_offset % 2 == 0`.
uint16_t InternetChecksumExcludingWord(ConstByteSpan data, size_t word_offset);

// Copies `data` to `dst` while accumulating the RFC 1071 raw (unfolded) sum
// in the same pass — the literal copy/checksum fusion of the paper's
// Section 3.1.2, for the guard-copy path. Finish the sum with
// InternetChecksumFinishExcludingWord.
uint64_t InternetChecksumRawCopy(uint8_t* dst, ConstByteSpan data);

// Folds a raw sum over `data` to the wire checksum with the 16-bit word at
// even `word_offset` excluded (see InternetChecksumExcludingWord).
uint16_t InternetChecksumFinishExcludingWord(uint64_t raw_sum, ConstByteSpan data,
                                             size_t word_offset);

// Little-endian loads/stores used by simulated device registers.
inline uint32_t LoadLe32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline uint64_t LoadLe64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline uint16_t LoadLe16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline void StoreLe32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
inline void StoreLe64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
inline void StoreLe16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, sizeof(v)); }

// "01:23:45:67:89:ab" formatting for MAC addresses.
std::string FormatMac(const uint8_t mac[6]);

// Hex formatting: "0x42430000".
std::string Hex(uint64_t value);

}  // namespace sud

#endif  // SUD_SRC_BASE_BYTES_H_
