// Byte-span helpers and the Internet checksum used by the simulated stack.

#ifndef SUD_SRC_BASE_BYTES_H_
#define SUD_SRC_BASE_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace sud {

using ByteSpan = std::span<uint8_t>;
using ConstByteSpan = std::span<const uint8_t>;

// RFC 1071 Internet checksum over `data`.
uint16_t InternetChecksum(ConstByteSpan data);

// Little-endian loads/stores used by simulated device registers.
inline uint32_t LoadLe32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline uint64_t LoadLe64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline uint16_t LoadLe16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline void StoreLe32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
inline void StoreLe64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
inline void StoreLe16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, sizeof(v)); }

// "01:23:45:67:89:ab" formatting for MAC addresses.
std::string FormatMac(const uint8_t mac[6]);

// Hex formatting: "0x42430000".
std::string Hex(uint64_t value);

}  // namespace sud

#endif  // SUD_SRC_BASE_BYTES_H_
