#include "src/base/clock.h"

namespace sud {

void SimClock::Advance(SimTime delta) {
  SimTime target = now() + delta;
  while (true) {
    std::function<void()> fn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = timers_.begin();
      if (it == timers_.end() || it->first > target) {
        break;
      }
      // Move time to the timer's deadline before firing so the callback
      // observes a consistent now().
      now_.store(it->first, std::memory_order_release);
      fn = std::move(it->second.second);
      timers_.erase(it);
    }
    if (fn) {
      fn();
    }
  }
  now_.store(target, std::memory_order_release);
}

uint64_t SimClock::ScheduleAt(SimTime deadline, std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_timer_id_++;
  timers_.emplace(deadline, std::make_pair(id, std::move(fn)));
  return id;
}

uint64_t SimClock::ScheduleAfter(SimTime delta, std::function<void()> fn) {
  return ScheduleAt(now() + delta, std::move(fn));
}

bool SimClock::Cancel(uint64_t timer_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->second.first == timer_id) {
      timers_.erase(it);
      return true;
    }
  }
  return false;
}

size_t SimClock::pending_timers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timers_.size();
}

}  // namespace sud
