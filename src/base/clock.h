// SimClock: discrete simulated time.
//
// All time in the simulator is virtual. Devices, the tick scheduler, jiffies
// in SUD-UML, and the CPU cost model all read the same SimClock, which only
// moves when the harness advances it. This keeps every experiment
// deterministic and lets the netperf reproduction model a 4 microsecond
// process-wakeup latency (Section 5.1 of the paper) without sleeping.

#ifndef SUD_SRC_BASE_CLOCK_H_
#define SUD_SRC_BASE_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

namespace sud {

// Nanoseconds of simulated time.
using SimTime = uint64_t;

constexpr SimTime kMicrosecond = 1000;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

class SimClock {
 public:
  SimClock() = default;
  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  SimTime now() const { return now_.load(std::memory_order_acquire); }

  // Moves time forward and fires any timers that became due, in order.
  void Advance(SimTime delta);

  // Schedules `fn` to run when simulated time reaches `deadline`. Returns a
  // timer id usable with Cancel. Timers fire during Advance, on the advancing
  // thread.
  uint64_t ScheduleAt(SimTime deadline, std::function<void()> fn);
  uint64_t ScheduleAfter(SimTime delta, std::function<void()> fn);
  bool Cancel(uint64_t timer_id);

  // Number of pending timers (for tests).
  size_t pending_timers() const;

 private:
  std::atomic<SimTime> now_{0};
  mutable std::mutex mu_;
  uint64_t next_timer_id_ = 1;
  // deadline -> (id, fn); multimap keeps firing order stable.
  std::multimap<SimTime, std::pair<uint64_t, std::function<void()>>> timers_;
};

}  // namespace sud

#endif  // SUD_SRC_BASE_CLOCK_H_
