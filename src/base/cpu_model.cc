#include "src/base/cpu_model.h"

namespace sud {

std::string_view CpuAccountName(CpuAccount account) {
  switch (account) {
    case CpuAccount::kKernel:
      return "kernel";
    case CpuAccount::kDriver:
      return "driver";
    case CpuAccount::kDevice:
      return "device";
    case CpuAccount::kPeer:
      return "peer";
    default:
      return "other";
  }
}

CpuAccount CpuAccountFromName(std::string_view name) {
  if (name == "kernel") {
    return CpuAccount::kKernel;
  }
  if (name == "driver") {
    return CpuAccount::kDriver;
  }
  if (name == "device") {
    return CpuAccount::kDevice;
  }
  if (name == "peer") {
    return CpuAccount::kPeer;
  }
  return CpuAccount::kOther;
}

}  // namespace sud
