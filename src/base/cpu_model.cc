#include "src/base/cpu_model.h"

#include <algorithm>
#include <functional>

namespace sud {

CoreSchedule ScheduleOnCores(const std::vector<uint64_t>& queue_kernel_ns,
                             const std::vector<uint64_t>& queue_driver_ns, double serial_ns,
                             double min_wall_ns, uint32_t cores) {
  if (cores == 0) {
    cores = 1;
  }
  std::vector<double> units;
  units.reserve(queue_kernel_ns.size() + queue_driver_ns.size() + 1);
  if (serial_ns > 0) {
    units.push_back(serial_ns);
  }
  for (uint64_t nanos : queue_kernel_ns) {
    if (nanos > 0) {
      units.push_back(static_cast<double>(nanos));
    }
  }
  for (uint64_t nanos : queue_driver_ns) {
    if (nanos > 0) {
      units.push_back(static_cast<double>(nanos));
    }
  }
  // Greedy LPT: biggest unit first onto the least-loaded core. Within 4/3 of
  // the optimal makespan, and exact in the cases the benches hit (units per
  // core <= 2 with one dominant unit).
  std::sort(units.begin(), units.end(), std::greater<double>());

  CoreSchedule schedule;
  schedule.core_busy_ns.assign(cores, 0.0);
  for (double unit : units) {
    size_t least = 0;
    for (size_t core = 1; core < schedule.core_busy_ns.size(); ++core) {
      if (schedule.core_busy_ns[core] < schedule.core_busy_ns[least]) {
        least = core;
      }
    }
    schedule.core_busy_ns[least] += unit;
    schedule.busy_ns += unit;
  }
  for (double load : schedule.core_busy_ns) {
    schedule.makespan_ns = std::max(schedule.makespan_ns, load);
  }
  schedule.wall_ns = std::max(min_wall_ns, schedule.makespan_ns);
  if (schedule.wall_ns > 0) {
    schedule.cpu_pct = 100.0 * schedule.busy_ns / (cores * schedule.wall_ns);
  }
  return schedule;
}

CoreSchedule ScheduleOnCoresWithTotal(const std::vector<uint64_t>& queue_kernel_ns,
                                      const std::vector<uint64_t>& queue_driver_ns,
                                      double total_busy_ns, double min_wall_ns, uint32_t cores) {
  double shard_ns = 0;
  for (uint64_t nanos : queue_kernel_ns) {
    shard_ns += static_cast<double>(nanos);
  }
  for (uint64_t nanos : queue_driver_ns) {
    shard_ns += static_cast<double>(nanos);
  }
  return ScheduleOnCores(queue_kernel_ns, queue_driver_ns, total_busy_ns - shard_ns, min_wall_ns,
                         cores);
}

std::string_view CpuAccountName(CpuAccount account) {
  switch (account) {
    case CpuAccount::kKernel:
      return "kernel";
    case CpuAccount::kDriver:
      return "driver";
    case CpuAccount::kDevice:
      return "device";
    case CpuAccount::kPeer:
      return "peer";
    default:
      return "other";
  }
}

CpuAccount CpuAccountFromName(std::string_view name) {
  if (name == "kernel") {
    return CpuAccount::kKernel;
  }
  if (name == "driver") {
    return CpuAccount::kDriver;
  }
  if (name == "device") {
    return CpuAccount::kDevice;
  }
  if (name == "peer") {
    return CpuAccount::kPeer;
  }
  return CpuAccount::kOther;
}

}  // namespace sud
