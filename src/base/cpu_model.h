// CpuModel: the CPU cost accounting behind the Figure 8 reproduction.
//
// The paper's evaluation reports throughput *and CPU utilisation* for an
// in-kernel e1000e versus the same driver running under SUD. The absolute
// numbers come from a 1.4 GHz Centrino; what the reproduction must preserve
// is the *shape*: identical throughput (the GbE link is the bottleneck), an
// 8-30% relative CPU overhead for streaming, and roughly 2x CPU for the
// latency-bound UDP_RR test where every transaction pays a ~4 us process
// wakeup (Section 5.1).
//
// CpuModel charges simulated nanoseconds to named accounts (kernel, driver
// process, idle). Each mechanism in the stack — syscall entry, uchan
// enqueue/dequeue, context switch, per-byte copy, checksum, IOTLB miss,
// process wakeup — charges its cost here. Benchmarks then report
// CPU% = busy_time / wall_time, exactly as netperf's CPU measurement does.
//
// Charge() is on the per-packet fast path of every bench, so accounts are a
// small fixed enum indexing a flat array rather than a map keyed by strings;
// the string overloads remain for ad-hoc accounts in tests.
//
// Default constants are calibrated so that bench/fig8_netperf lands near the
// published table; every constant is overridable so the ablation benches can
// sweep them (e.g. abl_wakeup_latency sweeps kProcessWakeup).

#ifndef SUD_SRC_BASE_CPU_MODEL_H_
#define SUD_SRC_BASE_CPU_MODEL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/clock.h"

namespace sud {

// Cost constants, in simulated nanoseconds. Calibrated against a ~1.4 GHz
// core (the paper's Thinkpad X301): one "nanosecond" here is wall time on
// that machine, so 1 GbE interrupt/packet costs dominate realistically.
struct CpuCosts {
  SimTime syscall = 120;             // user->kernel->user crossing
  SimTime context_switch = 1600;     // address-space switch incl. TLB effects
  SimTime process_wakeup = 4000;     // waking a sleeping process (the 4 us in §5.1)
  SimTime interrupt_entry = 900;     // hardware interrupt dispatch
  SimTime uchan_msg = 90;            // enqueue or dequeue one ring message
  double per_byte_copy = 0.35;       // memcpy cost (~3 GB/s effective)
  double per_byte_checksum = 0.35;   // software checksum pass over payload
  SimTime skb_alloc = 250;           // socket-buffer construction (§6 "Optimized drivers")
  SimTime driver_work_per_pkt = 700; // descriptor handling, register writes
  SimTime stack_work_per_pkt = 900;  // protocol + netfilter work per packet
  SimTime iotlb_miss = 150;          // IOMMU page-table walk
  SimTime dma_map = 300;             // in-kernel dma_map_single of an skb
  SimTime pci_config_access = 400;   // config-space read/write (mask path)
  SimTime irq_remap_update = 4500;   // rewriting an interrupt-remapping entry
  SimTime mmio_access = 60;          // one device register read/write
  SimTime iommu_seal = 90;           // one PTE permission flip (seal or unseal)
  SimTime iotlb_shootdown = 450;     // one synchronous IOTLB invalidation
};

// The accounts charged by the simulated stack. kOther absorbs ad-hoc string
// accounts used by tests.
enum class CpuAccount : uint8_t {
  kKernel = 0,
  kDriver,
  kDevice,
  kPeer,
  kOther,
  kCount,
};

// Well-known account handles (call sites read like the old string constants).
inline constexpr CpuAccount kAccountKernel = CpuAccount::kKernel;
inline constexpr CpuAccount kAccountDriver = CpuAccount::kDriver;
inline constexpr CpuAccount kAccountDevice = CpuAccount::kDevice;
inline constexpr CpuAccount kAccountPeer = CpuAccount::kPeer;  // the traffic generator

std::string_view CpuAccountName(CpuAccount account);
CpuAccount CpuAccountFromName(std::string_view name);  // unknown -> kOther

// Accumulates busy time per account. Not tied to SimClock advancement: the
// benchmark harness decides how charged time maps onto wall time (a single
// core runs accounts serially; a dual-core harness may overlap them).
//
// Charges are lock-free relaxed atomics: the multi-queue packet path charges
// from one thread per NIC queue concurrently (sharded uchans, per-queue
// proxies), and the only consistency the benches need is an eventually
// complete sum read after the workers quiesce.
class CpuModel {
 public:
  explicit CpuModel(CpuCosts costs = CpuCosts{}) : costs_(costs) { Reset(); }

  const CpuCosts& costs() const { return costs_; }
  void set_costs(const CpuCosts& costs) { costs_ = costs; }

  void Charge(CpuAccount account, SimTime nanos) {
    busy_[static_cast<size_t>(account)].fetch_add(nanos, std::memory_order_relaxed);
  }
  void Charge(std::string_view account, SimTime nanos) {
    Charge(CpuAccountFromName(account), nanos);
  }

  // Fractional per-byte charges (copy/checksum passes).
  void ChargeBytes(CpuAccount account, double ns_per_byte, uint64_t bytes) {
    busy_[static_cast<size_t>(account)].fetch_add(
        static_cast<SimTime>(ns_per_byte * static_cast<double>(bytes) + 0.5),
        std::memory_order_relaxed);
  }

  SimTime busy(CpuAccount account) const {
    return busy_[static_cast<size_t>(account)].load(std::memory_order_relaxed);
  }
  SimTime busy(std::string_view account) const { return busy(CpuAccountFromName(account)); }

  // Total across all accounts.
  SimTime total_busy() const {
    SimTime sum = 0;
    for (const auto& nanos : busy_) {
      sum += nanos.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void Reset() {
    for (auto& nanos : busy_) {
      nanos.store(0, std::memory_order_relaxed);
    }
  }

  // Snapshot of all accounts (by value: the live array is atomic).
  std::array<SimTime, static_cast<size_t>(CpuAccount::kCount)> accounts() const {
    std::array<SimTime, static_cast<size_t>(CpuAccount::kCount)> snapshot{};
    for (size_t i = 0; i < snapshot.size(); ++i) {
      snapshot[i] = busy_[i].load(std::memory_order_relaxed);
    }
    return snapshot;
  }

 private:
  CpuCosts costs_;
  std::array<std::atomic<SimTime>, static_cast<size_t>(CpuAccount::kCount)> busy_{};
};

// --- Core-affinity wall-time mapping ----------------------------------------
//
// Figure 8's CPU% divides charged busy time across the testbed's cores, the
// way netperf's CPU measurement reports it. With one queue the whole story is
// the legacy two-core formula:
//
//   CPU% = 100 * busy / (cores * wall)
//
// With a multi-queue pump the charged time is not one lump: each queue's
// kernel-side work and each queue's driver-side work (the per-shard
// kernel_ns/driver_ns the uchan already collects) is an independent
// schedulable unit pinned to whatever core the scheduler picks for that pump
// thread. The wall clock of the run is then bounded below by the *busiest
// core* — the makespan of the assignment — not just by the wire time.
//
// ScheduleOnCores performs that mapping: greedy longest-processing-time
// assignment of the 2*queues per-queue units plus one `serial_ns` unit (work
// with no queue affinity: app copies, control-lane traffic) onto `cores`
// cores. The returned wall clock is max(min_wall_ns, makespan); CPU% is
// busy over cores*wall.
//
// Reduction property (tested in base_test): with cores=2 and one queue, as
// long as the wall floor dominates the busiest core (true for the link-bound
// stream tests), cpu_pct == 100 * busy / (2 * min_wall_ns) — exactly the
// legacy formula, so single-queue Figure 8 rows are unchanged by the mapping.
struct CoreSchedule {
  double wall_ns = 0;      // max(min_wall_ns, makespan_ns)
  double makespan_ns = 0;  // busiest core's assigned busy time
  double busy_ns = 0;      // every unit summed (serial + all queue units)
  double cpu_pct = 0;      // 100 * busy_ns / (cores * wall_ns)
  std::vector<double> core_busy_ns;  // per-core load after assignment
};

CoreSchedule ScheduleOnCores(const std::vector<uint64_t>& queue_kernel_ns,
                             const std::vector<uint64_t>& queue_driver_ns, double serial_ns,
                             double min_wall_ns, uint32_t cores);

// Convenience used by the benches: derives the serial unit as the remainder
// of `total_busy_ns` not attributed to any queue's shard charges (summed in
// kernel-then-driver order, the one convention both benches must share).
CoreSchedule ScheduleOnCoresWithTotal(const std::vector<uint64_t>& queue_kernel_ns,
                                      const std::vector<uint64_t>& queue_driver_ns,
                                      double total_busy_ns, double min_wall_ns, uint32_t cores);

}  // namespace sud

#endif  // SUD_SRC_BASE_CPU_MODEL_H_
