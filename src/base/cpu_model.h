// CpuModel: the CPU cost accounting behind the Figure 8 reproduction.
//
// The paper's evaluation reports throughput *and CPU utilisation* for an
// in-kernel e1000e versus the same driver running under SUD. The absolute
// numbers come from a 1.4 GHz Centrino; what the reproduction must preserve
// is the *shape*: identical throughput (the GbE link is the bottleneck), an
// 8-30% relative CPU overhead for streaming, and roughly 2x CPU for the
// latency-bound UDP_RR test where every transaction pays a ~4 us process
// wakeup (Section 5.1).
//
// CpuModel charges simulated nanoseconds to named accounts (kernel, driver
// process, idle). Each mechanism in the stack — syscall entry, uchan
// enqueue/dequeue, context switch, per-byte copy, checksum, IOTLB miss,
// process wakeup — charges its cost here. Benchmarks then report
// CPU% = busy_time / wall_time, exactly as netperf's CPU measurement does.
//
// Default constants are calibrated so that bench/fig8_netperf lands near the
// published table; every constant is overridable so the ablation benches can
// sweep them (e.g. abl_wakeup_latency sweeps kProcessWakeup).

#ifndef SUD_SRC_BASE_CPU_MODEL_H_
#define SUD_SRC_BASE_CPU_MODEL_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/base/clock.h"

namespace sud {

// Cost constants, in simulated nanoseconds. Calibrated against a ~1.4 GHz
// core (the paper's Thinkpad X301): one "nanosecond" here is wall time on
// that machine, so 1 GbE interrupt/packet costs dominate realistically.
struct CpuCosts {
  SimTime syscall = 120;             // user->kernel->user crossing
  SimTime context_switch = 1600;     // address-space switch incl. TLB effects
  SimTime process_wakeup = 4000;     // waking a sleeping process (the 4 us in §5.1)
  SimTime interrupt_entry = 900;     // hardware interrupt dispatch
  SimTime uchan_msg = 90;            // enqueue or dequeue one ring message
  double per_byte_copy = 0.35;       // memcpy cost (~3 GB/s effective)
  double per_byte_checksum = 0.35;   // software checksum pass over payload
  SimTime skb_alloc = 250;           // socket-buffer construction (§6 "Optimized drivers")
  SimTime driver_work_per_pkt = 700; // descriptor handling, register writes
  SimTime stack_work_per_pkt = 900;  // protocol + netfilter work per packet
  SimTime iotlb_miss = 150;          // IOMMU page-table walk
  SimTime dma_map = 300;             // in-kernel dma_map_single of an skb
  SimTime pci_config_access = 400;   // config-space read/write (mask path)
  SimTime irq_remap_update = 4500;   // rewriting an interrupt-remapping entry
  SimTime mmio_access = 60;          // one device register read/write
};

// Accumulates busy time per account. Not tied to SimClock advancement: the
// benchmark harness decides how charged time maps onto wall time (a single
// core runs accounts serially; a dual-core harness may overlap them).
class CpuModel {
 public:
  explicit CpuModel(CpuCosts costs = CpuCosts{}) : costs_(costs) {}

  const CpuCosts& costs() const { return costs_; }
  void set_costs(const CpuCosts& costs) { costs_ = costs; }

  void Charge(const std::string& account, SimTime nanos) { busy_[account] += nanos; }

  // Fractional per-byte charges (copy/checksum passes).
  void ChargeBytes(const std::string& account, double ns_per_byte, uint64_t bytes) {
    busy_[account] += static_cast<SimTime>(ns_per_byte * static_cast<double>(bytes) + 0.5);
  }

  SimTime busy(const std::string& account) const {
    auto it = busy_.find(account);
    return it == busy_.end() ? 0 : it->second;
  }

  // Total across all accounts.
  SimTime total_busy() const {
    SimTime sum = 0;
    for (const auto& [name, nanos] : busy_) {
      sum += nanos;
    }
    return sum;
  }

  void Reset() { busy_.clear(); }

  const std::map<std::string, SimTime>& accounts() const { return busy_; }

 private:
  CpuCosts costs_;
  std::map<std::string, SimTime> busy_;
};

// Well-known account names.
inline constexpr const char* kAccountKernel = "kernel";
inline constexpr const char* kAccountDriver = "driver";
inline constexpr const char* kAccountDevice = "device";
inline constexpr const char* kAccountPeer = "peer";  // the traffic-generator machine

}  // namespace sud

#endif  // SUD_SRC_BASE_CPU_MODEL_H_
