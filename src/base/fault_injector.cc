#include "src/base/fault_injector.h"

#include <algorithm>

namespace sud {

namespace {
// splitmix64 (same constants as base/rng.h): one fetch_add of the gamma is a
// thread-safe draw — concurrent callers get distinct, deterministic states.
constexpr uint64_t kGamma = 0x9e3779b97f4a7c15ull;

uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

std::atomic<bool> FaultInjector::armed_flag_{false};

FaultInjector& FaultInjector::Get() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

uint64_t FaultInjector::Fnv1a(std::string_view bytes) {
  uint64_t hash = 1469598103934665603ull;
  for (char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

void FaultInjector::SeedSiteLocked(Site* site) {
  site->rng.store(seed_.load(std::memory_order_relaxed) ^ Fnv1a(site->name),
                  std::memory_order_relaxed);
  site->hits.store(0, std::memory_order_relaxed);
  site->fires.store(0, std::memory_order_relaxed);
}

void FaultInjector::Arm(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_.store(seed, std::memory_order_relaxed);
  for (auto& [name, site] : sites_) {
    SeedSiteLocked(site.get());
  }
  armed_flag_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm() { armed_flag_.store(false, std::memory_order_relaxed); }

FaultInjector::Site* FaultInjector::FindOrCreate(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(name);
  if (it != sites_.end()) {
    return it->second.get();
  }
  auto site = std::make_unique<Site>(std::string(name));
  Site* raw = site.get();
  SeedSiteLocked(raw);
  // Key the map by the Site's own name storage: stable for the Site's life.
  sites_.emplace(std::string_view(raw->name), std::move(site));
  return raw;
}

const FaultInjector::Site* FaultInjector::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(name);
  return it == sites_.end() ? nullptr : it->second.get();
}

void FaultInjector::Configure(std::string_view site_name, const Schedule& schedule) {
  Site* site = FindOrCreate(site_name);
  site->a.store(schedule.a, std::memory_order_relaxed);
  site->b.store(schedule.b, std::memory_order_relaxed);
  // Mode last: a site evaluated mid-Configure sees either the old schedule
  // or the complete new one, never a hybrid with a live mode.
  site->mode.store(static_cast<uint32_t>(schedule.mode), std::memory_order_release);
}

void FaultInjector::ClearSchedules() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, site] : sites_) {
    site->mode.store(static_cast<uint32_t>(Mode::kOff), std::memory_order_relaxed);
    site->a.store(0, std::memory_order_relaxed);
    site->b.store(0, std::memory_order_relaxed);
  }
}

void FaultInjector::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, site] : sites_) {
    SeedSiteLocked(site.get());
  }
}

bool FaultInjector::ShouldFire(std::string_view site_name) {
  Site* site = FindOrCreate(site_name);
  uint64_t hit = site->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  Mode mode =
      static_cast<Mode>(site->mode.load(std::memory_order_acquire));
  bool fire = false;
  switch (mode) {
    case Mode::kOff:
      break;
    case Mode::kProbability: {
      uint64_t denom = site->b.load(std::memory_order_relaxed);
      uint64_t numer = site->a.load(std::memory_order_relaxed);
      uint64_t draw = Mix(site->rng.fetch_add(kGamma, std::memory_order_relaxed) + kGamma);
      fire = denom != 0 && (draw % denom) < numer;
      break;
    }
    case Mode::kEveryNth: {
      uint64_t n = site->a.load(std::memory_order_relaxed);
      fire = n != 0 && hit % n == 0;
      break;
    }
    case Mode::kOneShotAt:
      fire = hit == site->a.load(std::memory_order_relaxed);
      break;
    case Mode::kBurst: {
      uint64_t start = site->a.load(std::memory_order_relaxed);
      uint64_t len = site->b.load(std::memory_order_relaxed);
      fire = hit >= start && hit - start < len;
      break;
    }
  }
  if (fire) {
    site->fires.fetch_add(1, std::memory_order_relaxed);
  }
  return fire;
}

uint64_t FaultInjector::hits(std::string_view site_name) const {
  const Site* site = Find(site_name);
  return site == nullptr ? 0 : site->hits.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::fires(std::string_view site_name) const {
  const Site* site = Find(site_name);
  return site == nullptr ? 0 : site->fires.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::total_fires() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, site] : sites_) {
    total += site->fires.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<FaultInjector::SiteSnapshot> FaultInjector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SiteSnapshot> out;
  out.reserve(sites_.size());
  for (const auto& [name, site] : sites_) {
    SiteSnapshot snap;
    snap.name = site->name;
    snap.mode = static_cast<Mode>(site->mode.load(std::memory_order_relaxed));
    snap.hits = site->hits.load(std::memory_order_relaxed);
    snap.fires = site->fires.load(std::memory_order_relaxed);
    out.push_back(std::move(snap));
  }
  // Deterministic order for JSON output.
  std::sort(out.begin(), out.end(),
            [](const SiteSnapshot& l, const SiteSnapshot& r) { return l.name < r.name; });
  return out;
}

}  // namespace sud
