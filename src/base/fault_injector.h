// FaultInjector: a process-wide, seed-deterministic fault-injection engine.
//
// Every trust boundary in the stack registers a *named site* (e.g.
// "hw.pcie.dma_read", "uchan.down.drop") and asks the engine whether the
// fault fires at that point. Sites are evaluated only while the engine is
// armed; the disarmed hot path is a single relaxed atomic load, so
// production/bench builds pay nothing and the fig8 modeled rows stay
// bit-identical with the engine compiled in.
//
// Determinism: Arm(seed) fixes the whole run. Each site draws from its own
// splitmix64 stream seeded `seed ^ fnv1a(site_name)`, so adding a new site
// (or reordering evaluations across threads) never perturbs another site's
// decisions, and a given (seed, site, hit-number) tuple always resolves the
// same way. Draws are lock-free (fetch_add of the splitmix64 gamma), safe
// from concurrent pump threads.
//
// Schedules, per site:
//   * Probability(n, d)  — fire on ~n/d of hits (deterministic per stream);
//   * EveryNth(n)        — fire on hits n, 2n, 3n, ... (hits count from 1);
//   * OneShotAt(k)       — fire exactly once, on hit k;
//   * Burst(start, len)  — fire on every hit in [start, start + len).
//
// Counters: every evaluation while armed counts a *hit*, every injection a
// *fire*, per site — the soak bench publishes the whole registry snapshot so
// a storm's shape is auditable from the JSON artifact.

#ifndef SUD_SRC_BASE_FAULT_INJECTOR_H_
#define SUD_SRC_BASE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sud {

class FaultInjector {
 public:
  enum class Mode : uint32_t { kOff = 0, kProbability, kEveryNth, kOneShotAt, kBurst };

  struct Schedule {
    Mode mode = Mode::kOff;
    // Meaning by mode: kProbability {a=numerator, b=denominator};
    // kEveryNth {a=n}; kOneShotAt {a=hit number}; kBurst {a=start, b=length}.
    uint64_t a = 0;
    uint64_t b = 0;
  };

  static Schedule Probability(uint64_t numerator, uint64_t denominator) {
    return Schedule{Mode::kProbability, numerator, denominator == 0 ? 1 : denominator};
  }
  static Schedule EveryNth(uint64_t n) { return Schedule{Mode::kEveryNth, n, 0}; }
  static Schedule OneShotAt(uint64_t hit) { return Schedule{Mode::kOneShotAt, hit, 0}; }
  static Schedule Burst(uint64_t start, uint64_t length) {
    return Schedule{Mode::kBurst, start, length};
  }
  static Schedule Off() { return Schedule{}; }

  struct SiteSnapshot {
    std::string name;
    Mode mode = Mode::kOff;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  static FaultInjector& Get();

  // The macro's first gate: true only between Arm() and Disarm(). Relaxed —
  // a site that races an Arm/Disarm edge may miss the first evaluation,
  // which is fine (fault storms are not edge-triggered protocols).
  static bool armed() { return armed_flag_.load(std::memory_order_relaxed); }

  // Arms the engine for a deterministic run: reseeds every site from `seed`
  // and zeroes all hit/fire counters. Schedules persist across Arm calls.
  void Arm(uint64_t seed);
  // Stops all evaluation. Schedules and counters are retained (the soak
  // reads the registry after disarming).
  void Disarm();

  // Installs (or replaces) a site's schedule. Creating the site on first
  // mention; Off() leaves the site registered but never firing.
  void Configure(std::string_view site, const Schedule& schedule);
  // Returns every registered site to Off().
  void ClearSchedules();
  void ResetCounters();

  // The armed-path evaluation. Called via SUD_FAULT_POINT, never directly
  // from hot code (the macro supplies the disarmed fast path).
  bool ShouldFire(std::string_view site);

  uint64_t seed() const { return seed_.load(std::memory_order_relaxed); }
  // Counter introspection (zeroes for a never-touched site).
  uint64_t hits(std::string_view site) const;
  uint64_t fires(std::string_view site) const;
  uint64_t total_fires() const;
  std::vector<SiteSnapshot> Snapshot() const;

  static uint64_t Fnv1a(std::string_view bytes);

 private:
  struct Site {
    explicit Site(std::string site_name) : name(std::move(site_name)) {}
    const std::string name;
    // Schedule fields are atomics so Configure from a control thread is
    // visible to pump threads without a lock on the evaluation path.
    std::atomic<uint32_t> mode{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> fires{0};
    std::atomic<uint64_t> rng{0};  // splitmix64 state; draw = fetch_add(gamma)
  };

  FaultInjector() = default;
  Site* FindOrCreate(std::string_view name);
  const Site* Find(std::string_view name) const;
  void SeedSiteLocked(Site* site);

  static std::atomic<bool> armed_flag_;

  mutable std::mutex mu_;  // guards sites_ map shape (Site contents are atomic)
  std::unordered_map<std::string_view, std::unique_ptr<Site>> sites_;
  std::atomic<uint64_t> seed_{0};
};

// A fault site. Compiles to one relaxed load when the engine is disarmed;
// use as `if (SUD_FAULT_POINT("layer.site")) { <counted failure path> }`.
#define SUD_FAULT_POINT(site) \
  (::sud::FaultInjector::armed() && ::sud::FaultInjector::Get().ShouldFire(site))

}  // namespace sud

#endif  // SUD_SRC_BASE_FAULT_INJECTOR_H_
