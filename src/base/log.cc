#include "src/base/log.h"

#include <cstdio>

namespace sud {

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kAttack:
      return "ATTACK";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& message) {
    std::fprintf(stderr, "[sud %s] %s\n", std::string(LogLevelName(level)).c_str(),
                 message.c_str());
  };
}

Logger& Logger::Get() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(min_level_)) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_) {
    sink_(level, message);
  }
}

Logger::Sink Logger::SwapSink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  Sink previous = std::move(sink_);
  sink_ = std::move(sink);
  return previous;
}

LogCapture::LogCapture(LogLevel level) : level_(level) {
  previous_ = Logger::Get().SwapSink([this](LogLevel record_level, const std::string& message) {
    if (static_cast<int>(record_level) >= static_cast<int>(level_)) {
      std::lock_guard<std::mutex> lock(mu_);
      records_.push_back({record_level, message});
    }
  });
  // Capture everything while active, regardless of the global minimum.
  saved_min_ = Logger::Get().min_level();
  Logger::Get().set_min_level(LogLevel::kDebug);
}

LogCapture::~LogCapture() {
  Logger::Get().SwapSink(std::move(previous_));
  Logger::Get().set_min_level(saved_min_);
}

std::vector<LogCapture::Record> LogCapture::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

bool LogCapture::Contains(std::string_view needle) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Record& record : records_) {
    if (record.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

int LogCapture::CountAtLevel(LogLevel level) const {
  std::lock_guard<std::mutex> lock(mu_);
  int count = 0;
  for (const Record& record : records_) {
    if (record.level == level) {
      ++count;
    }
  }
  return count;
}

}  // namespace sud
