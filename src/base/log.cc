#include "src/base/log.h"

#include <cstdio>

namespace sud {

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kAttack:
      return "ATTACK";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::atomic<int> Logger::capture_depth_{0};

namespace {
// Rate-limit shape: the head of a burst logs verbatim, then one summary
// (carrying the suppressed count) per period.
constexpr uint64_t kLogRateFirst = 16;
constexpr uint64_t kLogRatePeriod = 256;
}  // namespace

int64_t LogRateAdmit(LogRateState& state) {
  if (Logger::capturing()) {
    return 0;  // tests asserting exact record counts see everything
  }
  uint64_t n = state.count.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n <= kLogRateFirst) {
    return 0;
  }
  if ((n - kLogRateFirst) % kLogRatePeriod == 0) {
    return static_cast<int64_t>(kLogRatePeriod) - 1;
  }
  return -1;
}

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& message) {
    std::fprintf(stderr, "[sud %s] %s\n", std::string(LogLevelName(level)).c_str(),
                 message.c_str());
  };
}

Logger& Logger::Get() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(min_level_)) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_) {
    sink_(level, message);
  }
}

Logger::Sink Logger::SwapSink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  Sink previous = std::move(sink_);
  sink_ = std::move(sink);
  return previous;
}

LogCapture::LogCapture(LogLevel level) : level_(level) {
  Logger::capture_depth_.fetch_add(1, std::memory_order_relaxed);
  previous_ = Logger::Get().SwapSink([this](LogLevel record_level, const std::string& message) {
    if (static_cast<int>(record_level) >= static_cast<int>(level_)) {
      std::lock_guard<std::mutex> lock(mu_);
      records_.push_back({record_level, message});
    }
  });
  // Capture everything while active, regardless of the global minimum.
  saved_min_ = Logger::Get().min_level();
  Logger::Get().set_min_level(LogLevel::kDebug);
}

LogCapture::~LogCapture() {
  Logger::Get().SwapSink(std::move(previous_));
  Logger::Get().set_min_level(saved_min_);
  Logger::capture_depth_.fetch_sub(1, std::memory_order_relaxed);
}

std::vector<LogCapture::Record> LogCapture::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

bool LogCapture::Contains(std::string_view needle) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Record& record : records_) {
    if (record.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

int LogCapture::CountAtLevel(LogLevel level) const {
  std::lock_guard<std::mutex> lock(mu_);
  int count = 0;
  for (const Record& record : records_) {
    if (record.level == level) {
      ++count;
    }
  }
  return count;
}

}  // namespace sud
