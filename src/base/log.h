// Minimal leveled logging for the SUD simulator.
//
// Logging is routed through a process-global sink so tests can capture or
// silence it. The default sink writes to stderr. Severity kAttack is used by
// the confinement layers when they block a malicious action — the security
// tests assert on these events via LogCapture.

#ifndef SUD_SRC_BASE_LOG_H_
#define SUD_SRC_BASE_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace sud {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kAttack = 3,  // a confinement mechanism blocked something
  kError = 4,
};

std::string_view LogLevelName(LogLevel level);

// Global log configuration. Thread-safe.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& Get();

  void Log(LogLevel level, const std::string& message);
  void set_min_level(LogLevel level) { min_level_ = level; }
  LogLevel min_level() const { return min_level_; }

  // Replaces the sink; returns the previous one.
  Sink SwapSink(Sink sink);

  // True while any LogCapture is alive. Rate limiting disengages so tests
  // asserting exact record counts see every occurrence.
  static bool capturing() { return capture_depth_.load(std::memory_order_relaxed) > 0; }

 private:
  friend class LogCapture;
  Logger();
  static std::atomic<int> capture_depth_;
  std::mutex mu_;
  Sink sink_;
  LogLevel min_level_ = LogLevel::kWarning;
};

// Per-callsite state for SUD_LOG_RL (hot-path rate-limited logging).
struct LogRateState {
  std::atomic<uint64_t> count{0};
};

// Admission decision for one occurrence at a rate-limited callsite: the
// first few always log (returns 0), after which only every Nth logs
// (returning how many were suppressed since the last logged one); -1 means
// suppress. Bypassed (always 0) while a LogCapture is active.
int64_t LogRateAdmit(LogRateState& state);

// RAII capture of all log records at or above `level`; restores the previous
// sink on destruction. Used by tests to assert "the IOMMU reported a fault".
class LogCapture {
 public:
  explicit LogCapture(LogLevel level = LogLevel::kDebug);
  ~LogCapture();

  struct Record {
    LogLevel level;
    std::string message;
  };

  std::vector<Record> records() const;
  // True if any captured record contains `needle`.
  bool Contains(std::string_view needle) const;
  // Number of records at exactly `level`.
  int CountAtLevel(LogLevel level) const;

 private:
  mutable std::mutex mu_;
  std::vector<Record> records_;
  Logger::Sink previous_;
  LogLevel level_;
  LogLevel saved_min_;
};

// Stream-style logging: SUD_LOG(kInfo) << "device " << id << " probed";
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(LogLevel level, int64_t suppressed) : level_(level), suppressed_(suppressed) {}
  ~LogMessage() {
    if (suppressed_ > 0) {
      stream_ << " (+" << suppressed_ << " suppressed)";
    }
    Logger::Get().Log(level_, stream_.str());
  }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  int64_t suppressed_ = 0;
  std::ostringstream stream_;
};

#define SUD_LOG(level) ::sud::LogMessage(::sud::LogLevel::level)

// Rate-limited variant for hot paths (per-packet drop reports under a fault
// storm): the first occurrences log normally, after which a periodic summary
// carries the suppressed count. Per-callsite state; exact-count semantics
// are preserved under LogCapture (the limiter admits everything while a
// capture is active).
#define SUD_LOG_RL(level)                                             \
  if (int64_t sud_rl_suppressed = [] {                                \
        static ::sud::LogRateState sud_rl_state;                      \
        return ::sud::LogRateAdmit(sud_rl_state);                     \
      }();                                                            \
      sud_rl_suppressed < 0) {                                        \
  } else                                                              \
    ::sud::LogMessage(::sud::LogLevel::level, sud_rl_suppressed)

}  // namespace sud

#endif  // SUD_SRC_BASE_LOG_H_
