// Minimal leveled logging for the SUD simulator.
//
// Logging is routed through a process-global sink so tests can capture or
// silence it. The default sink writes to stderr. Severity kAttack is used by
// the confinement layers when they block a malicious action — the security
// tests assert on these events via LogCapture.

#ifndef SUD_SRC_BASE_LOG_H_
#define SUD_SRC_BASE_LOG_H_

#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace sud {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kAttack = 3,  // a confinement mechanism blocked something
  kError = 4,
};

std::string_view LogLevelName(LogLevel level);

// Global log configuration. Thread-safe.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& Get();

  void Log(LogLevel level, const std::string& message);
  void set_min_level(LogLevel level) { min_level_ = level; }
  LogLevel min_level() const { return min_level_; }

  // Replaces the sink; returns the previous one.
  Sink SwapSink(Sink sink);

 private:
  Logger();
  std::mutex mu_;
  Sink sink_;
  LogLevel min_level_ = LogLevel::kWarning;
};

// RAII capture of all log records at or above `level`; restores the previous
// sink on destruction. Used by tests to assert "the IOMMU reported a fault".
class LogCapture {
 public:
  explicit LogCapture(LogLevel level = LogLevel::kDebug);
  ~LogCapture();

  struct Record {
    LogLevel level;
    std::string message;
  };

  std::vector<Record> records() const;
  // True if any captured record contains `needle`.
  bool Contains(std::string_view needle) const;
  // Number of records at exactly `level`.
  int CountAtLevel(LogLevel level) const;

 private:
  mutable std::mutex mu_;
  std::vector<Record> records_;
  Logger::Sink previous_;
  LogLevel level_;
  LogLevel saved_min_;
};

// Stream-style logging: SUD_LOG(kInfo) << "device " << id << " probed";
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Get().Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define SUD_LOG(level) ::sud::LogMessage(::sud::LogLevel::level)

}  // namespace sud

#endif  // SUD_SRC_BASE_LOG_H_
