// Deterministic pseudo-random numbers (splitmix64 core).
//
// Everything stochastic in the simulator — workload generators, property
// tests, malicious-driver fuzzing — draws from an explicitly seeded Rng so
// runs are reproducible.

#ifndef SUD_SRC_BASE_RNG_H_
#define SUD_SRC_BASE_RNG_H_

#include <cstdint>

namespace sud {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x50d0cafeULL) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound == 0 returns 0.
  uint64_t Below(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t Between(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

  uint8_t NextByte() { return static_cast<uint8_t>(Next() & 0xff); }

 private:
  uint64_t state_;
};

}  // namespace sud

#endif  // SUD_SRC_BASE_RNG_H_
