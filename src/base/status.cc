#include "src/base/status.h"

namespace sud {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kInvalidArgument:
      return "invalid-argument";
    case ErrorCode::kNotFound:
      return "not-found";
    case ErrorCode::kPermissionDenied:
      return "permission-denied";
    case ErrorCode::kIommuFault:
      return "iommu-fault";
    case ErrorCode::kAcsBlocked:
      return "acs-blocked";
    case ErrorCode::kTimedOut:
      return "timed-out";
    case ErrorCode::kQueueFull:
      return "queue-full";
    case ErrorCode::kExhausted:
      return "exhausted";
    case ErrorCode::kAlreadyExists:
      return "already-exists";
    case ErrorCode::kUnavailable:
      return "unavailable";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sud
