// Status and Result<T>: error propagation without exceptions.
//
// SUD's simulated kernel and hardware layers never throw across module
// boundaries; fallible operations return Status (or Result<T> when they also
// produce a value). Codes deliberately mirror the failure classes that matter
// in the paper: IOMMU faults, ACS blocks, filtered PCI config accesses,
// hung-driver timeouts, and resource exhaustion.

#ifndef SUD_SRC_BASE_STATUS_H_
#define SUD_SRC_BASE_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace sud {

enum class ErrorCode : uint8_t {
  kOk = 0,
  kInvalidArgument,    // caller passed a bad value (bad size, bad handle, ...)
  kNotFound,           // no such device / mapping / register
  kPermissionDenied,   // safe-PCI filter or UID check rejected the access
  kIommuFault,         // DMA translation failed (the core isolation event)
  kAcsBlocked,         // PCIe ACS blocked a peer-to-peer transaction
  kTimedOut,           // synchronous upcall timed out / interrupted (liveness)
  kQueueFull,          // uchan ring or device queue has no space
  kExhausted,          // allocator / rlimit exhausted
  kAlreadyExists,      // double registration / double mapping
  kUnavailable,        // driver process dead or device disabled
  kInternal,           // invariant violation inside the simulator itself
};

// Human-readable name for an ErrorCode ("kIommuFault" -> "iommu-fault").
std::string_view ErrorCodeName(ErrorCode code);

// A cheap, copyable status: code + optional message.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}
  explicit Status(ErrorCode code) : code_(code) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "iommu-fault: dma write to unmapped iova 0x1000".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

// Result<T>: either a value or an error Status. Use `result.ok()` then
// `result.value()` / `result.status()`.
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}                 // NOLINT(google-explicit-constructor)
  Result(Status status) : var_(std::move(status)) {}          // NOLINT(google-explicit-constructor)
  Result(ErrorCode code, std::string message) : var_(Status(code, std::move(message))) {}

  bool ok() const { return std::holds_alternative<T>(var_); }

  const T& value() const { return std::get<T>(var_); }
  T& value() { return std::get<T>(var_); }
  T take() { return std::move(std::get<T>(var_)); }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(var_);
  }

  const T& value_or(const T& fallback) const { return ok() ? value() : fallback; }

 private:
  std::variant<T, Status> var_;
};

// Propagate-on-error helpers (statement form; no exceptions).
#define SUD_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::sud::Status sud_status__ = (expr);   \
    if (!sud_status__.ok()) {              \
      return sud_status__;                 \
    }                                      \
  } while (0)

}  // namespace sud

#endif  // SUD_SRC_BASE_STATUS_H_
