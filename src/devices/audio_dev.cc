#include "src/devices/audio_dev.h"

#include <vector>

#include "src/base/bytes.h"

namespace sud::devices {

AudioDev::AudioDev(std::string name, SimClock* clock)
    : PciDevice(std::move(name), /*vendor_id=*/0x8086, /*device_id=*/0x293e,
                /*class_code=*/0x04, {hw::BarDesc{4096, /*is_io=*/false}}),
      clock_(clock) {}

void AudioDev::Reset() {
  ctl_ = 0;
  ring_lo_ = ring_hi_ = ring_bytes_ = period_bytes_ = 0;
  lpib_ = 0;
  icr_ = ims_ = 0;
  consumed_since_period_ = 0;
}

void AudioDev::SetInterruptCause(uint32_t bits) {
  // MSIs are edge-triggered on the assertion of a new cause: if the
  // interrupt condition was already pending (driver has not read ICR yet),
  // no additional message is signalled, as on real hardware.
  bool was_asserted = (icr_ & ims_) != 0;
  icr_ |= bits;
  if (!was_asserted && (icr_ & ims_) != 0) {
    (void)RaiseMsi();
  }
}

uint32_t AudioDev::MmioRead(int bar, uint64_t offset) {
  if (bar != 0) {
    return 0xffffffffu;
  }
  switch (offset) {
    case kAudioRegCtl:
      return ctl_;
    case kAudioRegLpib:
      return lpib_;
    case kAudioRegIcr: {
      uint32_t value = icr_;
      icr_ = 0;
      return value;
    }
    case kAudioRegIms:
      return ims_;
    case kAudioRegRate:
      return bytes_per_second_;
    default:
      return 0;
  }
}

void AudioDev::MmioWrite(int bar, uint64_t offset, uint32_t value) {
  if (bar != 0) {
    return;
  }
  switch (offset) {
    case kAudioRegCtl:
      if ((value & kAudioCtlRun) != 0 && (ctl_ & kAudioCtlRun) == 0) {
        last_tick_ = clock_ != nullptr ? clock_->now() : 0;
      }
      ctl_ = value;
      break;
    case kAudioRegRingLo:
      ring_lo_ = value;
      break;
    case kAudioRegRingHi:
      ring_hi_ = value;
      break;
    case kAudioRegRingBytes:
      ring_bytes_ = value;
      break;
    case kAudioRegPeriodBytes:
      period_bytes_ = value;
      break;
    case kAudioRegIms:
      ims_ = value;
      break;
    case kAudioRegRate:
      bytes_per_second_ = value;
      break;
    default:
      break;
  }
}

void AudioDev::Tick() {
  if ((ctl_ & kAudioCtlRun) == 0 || ring_bytes_ == 0 || period_bytes_ == 0 || clock_ == nullptr) {
    return;
  }
  SimTime now = clock_->now();
  if (now <= last_tick_) {
    return;
  }
  uint64_t elapsed_ns = now - last_tick_;
  uint64_t bytes_due = elapsed_ns * bytes_per_second_ / kSecond;
  if (bytes_due == 0) {
    return;
  }
  last_tick_ = now;
  uint64_t ring_base = (static_cast<uint64_t>(ring_hi_) << 32) | ring_lo_;
  std::vector<uint8_t> chunk(256);
  while (bytes_due > 0) {
    uint64_t n = std::min<uint64_t>(bytes_due, chunk.size());
    uint64_t pos = lpib_ % ring_bytes_;
    n = std::min<uint64_t>(n, ring_bytes_ - pos);
    Status status = DmaRead(ring_base + pos, ByteSpan(chunk.data(), n));
    if (!status.ok()) {
      // The ring points at unmapped memory: the stream starves, confined.
      ++underruns_;
      SetInterruptCause(kAudioIntUnderrun);
      return;
    }
    for (uint64_t i = 0; i < n; ++i) {
      consumed_signature_ = consumed_signature_ * 1099511628211ull + chunk[i];
    }
    lpib_ = static_cast<uint32_t>((lpib_ + n) % ring_bytes_);
    consumed_since_period_ += n;
    bytes_due -= n;
    while (consumed_since_period_ >= period_bytes_) {
      consumed_since_period_ -= period_bytes_;
      ++periods_played_;
      SetInterruptCause(kAudioIntPeriod);
    }
  }
}

}  // namespace sud::devices
