// AudioDev: an snd-hda-class PCM playback device.
//
// The driver programs a DMA ring of sample data plus a period size; the
// device consumes samples at the configured rate as simulated time advances,
// raising a period-elapsed MSI each period and flagging underruns when the
// driver falls behind — the behaviour that motivates the paper's discussion
// of running audio drivers under real-time scheduling policies (Section 4.1).

#ifndef SUD_SRC_DEVICES_AUDIO_DEV_H_
#define SUD_SRC_DEVICES_AUDIO_DEV_H_

#include <cstdint>

#include "src/base/clock.h"
#include "src/hw/pci_device.h"

namespace sud::devices {

inline constexpr uint64_t kAudioRegCtl = 0x00;        // bit0: RUN
inline constexpr uint64_t kAudioRegRingLo = 0x04;
inline constexpr uint64_t kAudioRegRingHi = 0x08;
inline constexpr uint64_t kAudioRegRingBytes = 0x0c;
inline constexpr uint64_t kAudioRegPeriodBytes = 0x10;
inline constexpr uint64_t kAudioRegLpib = 0x14;       // link position in buffer
inline constexpr uint64_t kAudioRegIcr = 0x18;        // read-clears
inline constexpr uint64_t kAudioRegIms = 0x1c;
inline constexpr uint64_t kAudioRegRate = 0x20;       // bytes per second

inline constexpr uint32_t kAudioCtlRun = 1u << 0;
inline constexpr uint32_t kAudioIntPeriod = 1u << 0;
inline constexpr uint32_t kAudioIntUnderrun = 1u << 1;

class AudioDev : public hw::PciDevice {
 public:
  explicit AudioDev(std::string name, SimClock* clock);

  uint32_t MmioRead(int bar, uint64_t offset) override;
  void MmioWrite(int bar, uint64_t offset, uint32_t value) override;
  void Reset() override;
  void Tick() override;

  uint64_t periods_played() const { return periods_played_; }
  uint64_t underruns() const { return underruns_; }
  // Running XOR over consumed samples: lets tests verify the device really
  // "played" the bytes the driver wrote.
  uint64_t consumed_signature() const { return consumed_signature_; }

 private:
  void SetInterruptCause(uint32_t bits);

  SimClock* clock_;
  uint32_t ctl_ = 0;
  uint32_t ring_lo_ = 0, ring_hi_ = 0, ring_bytes_ = 0, period_bytes_ = 0;
  uint32_t lpib_ = 0;
  uint32_t icr_ = 0, ims_ = 0;
  uint32_t bytes_per_second_ = 48000 * 4;  // 48 kHz stereo s16
  SimTime last_tick_ = 0;
  uint64_t periods_played_ = 0;
  uint64_t underruns_ = 0;
  uint64_t consumed_signature_ = 0;
  uint64_t consumed_since_period_ = 0;
};

}  // namespace sud::devices

#endif  // SUD_SRC_DEVICES_AUDIO_DEV_H_
