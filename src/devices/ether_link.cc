#include "src/devices/ether_link.h"

#include <algorithm>
#include <vector>

namespace sud::devices {

void EtherLink::Attach(int side, EtherEndpoint* endpoint) {
  if (side == 0 || side == 1) {
    endpoints_[side] = endpoint;
  }
}

Status EtherLink::Transmit(int side, ConstByteSpan frame) {
  if (side != 0 && side != 1) {
    return Status(ErrorCode::kInvalidArgument, "bad link side");
  }
  EtherEndpoint* peer = endpoints_[1 - side];
  if (peer == nullptr) {
    ++stats_.dropped;
    return Status(ErrorCode::kUnavailable, "no peer attached");
  }
  if (frame.size() > kEthMaxFrame) {
    ++stats_.dropped;
    return Status(ErrorCode::kInvalidArgument, "oversize frame");
  }
  stats_.frames[side]++;
  stats_.bytes[side] += frame.size();
  if (frame.size() < kEthMinFrame) {
    std::vector<uint8_t> padded(kEthMinFrame, 0);
    std::copy(frame.begin(), frame.end(), padded.begin());
    peer->DeliverFrame(ConstByteSpan(padded.data(), padded.size()));
  } else {
    peer->DeliverFrame(frame);
  }
  return Status::Ok();
}

double EtherLink::WireTimeNs(uint64_t frames, uint64_t payload_bytes) {
  uint64_t wire_bytes = payload_bytes + frames * kEthWireOverhead;
  // Frames below the Ethernet minimum still occupy min-frame wire time; the
  // caller accounts for that by passing padded byte counts.
  return static_cast<double>(wire_bytes) * 8.0 / kGigabitPerSec * 1e9;
}

}  // namespace sud::devices
