#include "src/devices/ether_link.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "src/base/log.h"

namespace sud::devices {

namespace {
// A generator quitting on a wedged consumer must say WHICH queue stalled and
// where the flow stood — the breadcrumb that turns a silent CI shortfall
// into a diagnosis (which shard hung, how far the consumer got).
void LogPeerGaveUp(const char* mode, size_t flow, uint64_t sent, uint64_t budget,
                   uint64_t acked, bool paced) {
  SUD_LOG(kWarning) << "ether peer (" << mode << "): flow " << flow
                    << " gave up on a stalled consumer queue " << flow << " (sent " << sent
                    << " of " << budget << ", consumer acked "
                    << (paced ? std::to_string(acked) : std::string("unpaced")) << ")";
}
}  // namespace

void EtherLink::Attach(int side, EtherEndpoint* endpoint) {
  if (side == 0 || side == 1) {
    endpoints_[side] = endpoint;
  }
}

Status EtherLink::Transmit(int side, ConstByteSpan frame) {
  if (side != 0 && side != 1) {
    return Status(ErrorCode::kInvalidArgument, "bad link side");
  }
  EtherEndpoint* peer = endpoints_[1 - side];
  if (peer == nullptr) {
    ++stats_.dropped;
    return Status(ErrorCode::kUnavailable, "no peer attached");
  }
  if (frame.size() > kEthMaxFrame) {
    ++stats_.dropped;
    return Status(ErrorCode::kInvalidArgument, "oversize frame");
  }
  if (frame.size() < kEthMinFrame) {
    std::vector<uint8_t> padded(kEthMinFrame, 0);
    std::copy(frame.begin(), frame.end(), padded.begin());
    peer->DeliverFrame(ConstByteSpan(padded.data(), padded.size()));
  } else {
    peer->DeliverFrame(frame);
  }
  // Counted AFTER delivery: a thread observing frames[side] advance may rely
  // on the frame being fully in the receiving endpoint (the RR serving loop
  // paces its pumps on exactly that).
  stats_.frames[side]++;
  stats_.bytes[side] += frame.size();
  return Status::Ok();
}

uint64_t EtherLink::FrameHash(ConstByteSpan frame) {
  // FNV-1a: cheap, deterministic, and good enough to catch any corrupted or
  // substituted frame in the determinism comparison.
  uint64_t hash = 0xcbf29ce484222325ull;
  for (uint8_t byte : frame) {
    hash ^= byte;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

void EtherLink::TransmitFromPeer(int side, PeerGen& gen) {
  ConstByteSpan frame(gen.flow.frame.data(), gen.flow.frame.size());
  if (Transmit(side, frame).ok()) {
    gen.stats.frames.fetch_add(1, std::memory_order_relaxed);
    gen.stats.bytes.fetch_add(frame.size(), std::memory_order_relaxed);
    // The flow's frame never changes: the digest is hashed once at setup,
    // not per transmit (a per-frame pass over 1.5 KB would dominate the
    // generator itself).
    gen.stats.frame_hash.fetch_add(gen.frame_digest, std::memory_order_relaxed);
  }
  ++gen.sent;
}

void EtherLink::StartPeers(std::vector<PeerFlow> flows, int side, uint64_t give_up_ms) {
  JoinPeers();  // a previous generation's threads must be gone first
  peers_.clear();
  peers_stop_.store(false, std::memory_order_relaxed);
  for (PeerFlow& flow : flows) {
    auto gen = std::make_unique<PeerGen>();
    gen->flow = std::move(flow);
    gen->frame_digest = FrameHash({gen->flow.frame.data(), gen->flow.frame.size()});
    gen->index = peers_.size();
    peers_.push_back(std::move(gen));
  }
  for (auto& gen_ptr : peers_) {
    PeerGen* gen = gen_ptr.get();
    gen->thread = std::thread([this, gen, side, give_up_ms]() {
      // Progress-based deadline: the clock only runs while window-blocked
      // with no consumer movement, so a slow-but-live SUT is never abandoned.
      // The rewind clock is separate — retransmitting into a dead consumer
      // must not postpone the give-up verdict.
      auto last_progress = std::chrono::steady_clock::now();
      auto last_rewind = last_progress;
      uint64_t last_acked = 0;
      // `cursor` is the flow position; a go-back-N rewind moves it backwards,
      // so the budget test runs on the cursor while stats.frames keeps
      // counting every (re)transmission.
      uint64_t& cursor = gen->sent;
      // Paced flows drain their tail: the budget isn't done until the
      // consumer acked it (or the give-up bound fired), otherwise a crash
      // that eats the final window is indistinguishable from success.
      auto budget_done = [&]() {
        if (cursor < gen->flow.count) {
          return false;
        }
        return gen->flow.acked == nullptr || last_acked >= gen->flow.count;
      };
      while (!budget_done() && !peers_stop_.load(std::memory_order_relaxed)) {
        if (gen->flow.acked != nullptr) {
          uint64_t acked = gen->flow.acked();
          if (acked != last_acked) {
            last_acked = acked;
            last_progress = std::chrono::steady_clock::now();
          }
          // Blocked while the window is full, and also while the budget is
          // spent but its tail unacked — the tail-flush stall needs the same
          // rewind/give-up machinery or an eaten final window spins forever.
          if (cursor >= acked + gen->flow.window || cursor >= gen->flow.count) {
            auto now = std::chrono::steady_clock::now();
            if (gen->flow.retransmit_on_stall_ms > 0 &&
                now - last_progress > std::chrono::milliseconds(gen->flow.retransmit_on_stall_ms) &&
                now - last_rewind > std::chrono::milliseconds(gen->flow.retransmit_on_stall_ms)) {
              // The unacked tail was eaten (driver restart tore down the
              // rings it sat in): resend it. Loss stays visible because the
              // retransmissions inflate stats.frames past the budget.
              cursor = acked;
              last_rewind = now;
              gen->stats.rewinds.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            if (now - last_progress > std::chrono::milliseconds(give_up_ms)) {
              // Consumer wedged: leave the shortfall visible in stats, and
              // name the stalled queue with its last heartbeat counters.
              gen->stats.gave_up.store(true, std::memory_order_relaxed);
              LogPeerGaveUp("threaded", gen->index, cursor, gen->flow.count, last_acked,
                            true);
              return;
            }
            std::this_thread::yield();
            continue;
          }
        }
        TransmitFromPeer(side, *gen);
        last_progress = std::chrono::steady_clock::now();
      }
    });
  }
}

void EtherLink::AddRrGen(RrFlow flow) {
  auto gen = std::make_unique<PeerGen>();
  gen->flow.frame = std::move(flow.request);
  gen->flow.count = flow.transactions;
  gen->rr_replies = std::move(flow.replies);
  gen->frame_digest = FrameHash({gen->flow.frame.data(), gen->flow.frame.size()});
  gen->index = peers_.size();
  peers_.push_back(std::move(gen));
}

void EtherLink::StartRrPeers(std::vector<RrFlow> flows, int side, uint64_t give_up_ms) {
  JoinPeers();
  peers_.clear();
  peers_stop_.store(false, std::memory_order_relaxed);
  for (RrFlow& flow : flows) {
    AddRrGen(std::move(flow));
  }
  for (auto& gen_ptr : peers_) {
    PeerGen* gen = gen_ptr.get();
    gen->thread = std::thread([this, gen, side, give_up_ms]() {
      auto last_progress = std::chrono::steady_clock::now();
      while (gen->sent < gen->flow.count && !peers_stop_.load(std::memory_order_relaxed)) {
        TransmitFromPeer(side, *gen);
        // One transaction in flight: block until the server answered THIS
        // request before the next leaves. The reply clock only runs while
        // blocked, so a slow-but-live server is never abandoned.
        while (gen->rr_replies() < gen->sent &&
               !peers_stop_.load(std::memory_order_relaxed)) {
          if (std::chrono::steady_clock::now() - last_progress >
              std::chrono::milliseconds(give_up_ms)) {
            gen->stats.gave_up.store(true, std::memory_order_relaxed);
            LogPeerGaveUp("rr", gen->index, gen->sent, gen->flow.count, gen->rr_replies(),
                          true);
            return;
          }
          std::this_thread::yield();
        }
        last_progress = std::chrono::steady_clock::now();
      }
    });
  }
}

void EtherLink::RunRrPeersSerial(std::vector<RrFlow> flows, const std::function<void()>& serve,
                                 int side) {
  JoinPeers();
  peers_.clear();
  for (RrFlow& flow : flows) {
    AddRrGen(std::move(flow));
  }
  auto last_progress = std::chrono::steady_clock::now();
  for (;;) {
    bool all_done = true;
    for (auto& gen : peers_) {
      if (gen->sent >= gen->flow.count) {
        continue;
      }
      all_done = false;
      TransmitFromPeer(side, *gen);
      bool answered = true;
      while (gen->rr_replies() < gen->sent) {
        if (serve == nullptr || std::chrono::steady_clock::now() - last_progress >
                                    std::chrono::seconds(60)) {
          gen->stats.gave_up.store(true, std::memory_order_relaxed);
          LogPeerGaveUp("rr-serial", gen->index, gen->sent, gen->flow.count,
                        gen->rr_replies(), true);
          answered = false;
          break;
        }
        serve();
      }
      if (!answered) {
        return;  // a wedged server wedges every flow; leave the shortfall visible
      }
      last_progress = std::chrono::steady_clock::now();
    }
    if (all_done) {
      break;
    }
  }
}

void EtherLink::JoinPeers() {
  for (auto& gen : peers_) {
    if (gen->thread.joinable()) {
      gen->thread.join();
    }
  }
}

void EtherLink::StopPeers() {
  peers_stop_.store(true, std::memory_order_relaxed);
  JoinPeers();
  peers_stop_.store(false, std::memory_order_relaxed);
}

void EtherLink::RunPeersSerial(std::vector<PeerFlow> flows, const std::function<void()>& pump,
                               int side) {
  JoinPeers();
  peers_.clear();
  for (PeerFlow& flow : flows) {
    auto gen = std::make_unique<PeerGen>();
    gen->flow = std::move(flow);
    gen->frame_digest = FrameHash({gen->flow.frame.data(), gen->flow.frame.size()});
    gen->index = peers_.size();
    peers_.push_back(std::move(gen));
  }
  auto last_progress = std::chrono::steady_clock::now();
  for (;;) {
    bool all_done = true;
    bool any_sent = false;
    for (auto& gen : peers_) {
      if (gen->sent >= gen->flow.count) {
        continue;
      }
      all_done = false;
      uint64_t budget = gen->flow.count - gen->sent;
      if (gen->flow.acked != nullptr) {
        uint64_t acked = gen->flow.acked();
        uint64_t window_room =
            gen->sent < acked + gen->flow.window ? acked + gen->flow.window - gen->sent : 0;
        budget = std::min(budget, window_room);
      }
      for (uint64_t i = 0; i < budget; ++i) {
        TransmitFromPeer(side, *gen);
      }
      any_sent |= budget > 0;
    }
    if (all_done) {
      break;
    }
    if (any_sent) {
      last_progress = std::chrono::steady_clock::now();
    } else if (pump == nullptr || std::chrono::steady_clock::now() - last_progress >
                                      std::chrono::seconds(60)) {
      // Consumer wedged (or unpumpable): leave the shortfall visible, naming
      // every flow that still had budget and where its consumer stood.
      for (auto& gen : peers_) {
        if (gen->sent < gen->flow.count) {
          gen->stats.gave_up.store(true, std::memory_order_relaxed);
          bool paced = gen->flow.acked != nullptr;
          LogPeerGaveUp("serial", gen->index, gen->sent, gen->flow.count,
                        paced ? gen->flow.acked() : 0, paced);
        }
      }
      break;
    }
    if (pump != nullptr) {
      pump();
    }
  }
}

double EtherLink::WireTimeNs(uint64_t frames, uint64_t payload_bytes) {
  uint64_t wire_bytes = payload_bytes + frames * kEthWireOverhead;
  // Frames below the Ethernet minimum still occupy min-frame wire time; the
  // caller accounts for that by passing padded byte counts.
  return static_cast<double>(wire_bytes) * 8.0 / kGigabitPerSec * 1e9;
}

}  // namespace sud::devices
