// EtherLink: a point-to-point Gigabit Ethernet medium.
//
// Connects two NIC endpoints (e.g. the device under test and the traffic
// generator peer playing the paper's Dell Optiplex). Frames are delivered
// synchronously; the link keeps byte/frame counters so the netperf
// reproduction can compute wire-limited throughput (a 1 Gb/s link is the
// bottleneck for TCP_STREAM, which is why kernel and SUD drivers tie at
// 941 Mbit/s in Figure 8).
//
// Threaded peer mode: the link can also *be* the traffic-generator machine.
// StartPeers runs one generator thread per flow, each transmitting its fixed
// pre-built frame in a sliding window against a consumer-progress callback.
// Because a generator's flow tuple never changes, RSS pins it to one SUT
// queue, and the device's receive-side DMA for different queues runs
// concurrently on the delivering generators' threads instead of serially on
// the bench thread (the per-queue locks in SimNic make that safe).

#ifndef SUD_SRC_DEVICES_ETHER_LINK_H_
#define SUD_SRC_DEVICES_ETHER_LINK_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/status.h"
#include "src/kern/net_limits.h"

namespace sud::devices {

// Frame-size limits come from the centralized net_limits.h: the medium
// carries anything up to the jumbo maximum (whether an endpoint ACCEPTS a
// long frame is that endpoint's RCTL.LPE decision, as on real hardware).
inline constexpr size_t kEthMinFrame = kern::kEthMinFrameBytes;   // without FCS
inline constexpr size_t kEthMaxFrame = kern::kJumboMaxFrameBytes;  // 9000 MTU + 14 header
inline constexpr double kGigabitPerSec = 1e9;  // link rate, bits/second

// Per-frame wire overhead: preamble(8) + FCS(4) + IFG(12) bytes.
inline constexpr size_t kEthWireOverhead = 24;

class EtherEndpoint {
 public:
  virtual ~EtherEndpoint() = default;
  virtual void DeliverFrame(ConstByteSpan frame) = 0;
};

class EtherLink {
 public:
  // Relaxed atomics: multi-queue NICs transmit from one thread per queue.
  struct Stats {
    std::atomic<uint64_t> frames[2] = {};  // transmitted by side i
    std::atomic<uint64_t> bytes[2] = {};
    std::atomic<uint64_t> dropped{0};  // oversize or unattached
  };

  // Any generator threads still running must not outlive the link they
  // transmit through (an early test ASSERT or bench exception would
  // otherwise leave a joinable thread whose destruction aborts).
  ~EtherLink() { StopPeers(); }

  void Attach(int side, EtherEndpoint* endpoint);

  // Transmit from `side` to the peer. Oversize frames are dropped (counted),
  // undersize frames are padded to the Ethernet minimum, like a real MAC.
  Status Transmit(int side, ConstByteSpan frame);

  const Stats& stats() const { return stats_; }
  void ResetStats() {
    for (int side = 0; side < 2; ++side) {
      stats_.frames[side] = 0;
      stats_.bytes[side] = 0;
    }
    stats_.dropped = 0;
  }

  // Simulated wire time (ns) to carry `frames` frames of `payload` bytes.
  static double WireTimeNs(uint64_t frames, uint64_t payload_bytes);

  // --- Threaded traffic-generator peers --------------------------------------

  // One generated flow. The frame is fixed (fixed tuple => fixed RSS queue);
  // the generator transmits it `count` times, keeping at most `window` frames
  // beyond what `acked` reports consumed downstream — sized under the
  // device's per-queue backlog so a well-behaved consumer never drops. A
  // null `acked` generates unpaced (tests that only count frames).
  struct PeerFlow {
    std::vector<uint8_t> frame;
    uint64_t count = 0;
    uint32_t window = 48;
    std::function<uint64_t()> acked;
    // Go-back-N recovery for crash benchmarks: when window-blocked with no
    // consumer progress for this long, rewind the send cursor to the acked
    // position and resend the unacked tail (a driver restart eats whatever
    // sat in the rings — without retransmit the flow is window-blocked
    // forever, which is a transport problem, not a consumer wedge). 0
    // disables; every retransmitted frame still counts in stats.frames, so
    // crash loss stays visible as sent - delivered.
    uint64_t retransmit_on_stall_ms = 0;
  };

  // Per-generator counters. frames/bytes mirror stats() but split by flow;
  // frame_hash is an order-independent digest (wrapping sum of per-frame
  // FNV-1a hashes), so a threaded run can be compared bit-for-bit against a
  // serial replay of the same flows regardless of interleaving.
  struct PeerStats {
    std::atomic<uint64_t> frames{0};
    std::atomic<uint64_t> bytes{0};
    std::atomic<uint64_t> frame_hash{0};
    // The generator abandoned its budget after the give-up stall bound; the
    // flow's last heartbeat (what it sent, what the consumer acked) is logged
    // at the moment it quits so a wedged queue is attributable from CI logs.
    std::atomic<bool> gave_up{false};
    // Go-back-N rewinds performed (each one resends the unacked window tail).
    std::atomic<uint64_t> rewinds{0};
  };

  // One request/response flow — netperf's UDP_RR client: the generator
  // transmits `request`, then blocks until `replies()` passes the transaction
  // number before sending the next, so exactly one transaction is ever in
  // flight. What counts as a reply is the caller's: link frames from the
  // other side for a wire-level client, or a served-transaction counter when
  // the bench needs strict alternation with its own serving loop (fig8's
  // UDP_RR keeps its charge pattern bit-identical that way).
  struct RrFlow {
    std::vector<uint8_t> request;
    uint64_t transactions = 0;
    std::function<uint64_t()> replies;  // responses observed so far (required)
  };

  // Spawns one generator thread per flow, transmitting from `side`.
  // `give_up_ms` bounds how long a window-blocked generator waits without
  // consumer progress before abandoning its budget (CI can never wedge; the
  // shortfall shows up in peer_stats).
  void StartPeers(std::vector<PeerFlow> flows, int side = 1, uint64_t give_up_ms = 60000);
  // Spawns one client thread per RR flow, transmitting from `side`. Stats
  // land in peer_stats() like the flood generators'; a client whose reply
  // never comes gives up after `give_up_ms` without progress (gave_up set).
  void StartRrPeers(std::vector<RrFlow> flows, int side = 1, uint64_t give_up_ms = 60000);
  // Serial replay of the same RR flows on the caller's thread: transmit a
  // flow's request, then invoke `serve` until its reply arrives, round-robin
  // across flows — the single-threaded equivalent the determinism tests
  // compare the threaded clients against.
  void RunRrPeersSerial(std::vector<RrFlow> flows, const std::function<void()>& serve,
                        int side = 1);
  // Blocks until every generator sent its budget (or gave up / was stopped).
  void JoinPeers();
  // Asks generators to exit after their current frame, then joins them.
  void StopPeers();
  // Serial replay of the same flows on the caller's thread: round-robin, one
  // window per flow per round, invoking `pump` whenever every unfinished flow
  // is window-blocked (the pumped-dispatch fallback for single-core hosts).
  void RunPeersSerial(std::vector<PeerFlow> flows, const std::function<void()>& pump,
                      int side = 1);

  size_t peer_count() const { return peers_.size(); }
  const PeerStats& peer_stats(size_t flow) const { return peers_[flow]->stats; }

  // The per-frame digest the generators accumulate (FNV-1a over the bytes).
  static uint64_t FrameHash(ConstByteSpan frame);

 private:
  struct PeerGen {
    PeerFlow flow;
    // RR clients reuse flow.frame/flow.count for the request and transaction
    // budget; a non-null rr_replies is what marks the generator as RR.
    std::function<uint64_t()> rr_replies;
    PeerStats stats;
    uint64_t frame_digest = 0;  // FrameHash(flow.frame), computed once
    uint64_t sent = 0;
    size_t index = 0;  // flow number (== the SUT queue BuildQueueFlows pinned)
    std::thread thread;
  };

  // Moves an RrFlow into a PeerGen slot in peers_ (shared by both RR modes).
  void AddRrGen(RrFlow flow);

  // Transmits one frame of `gen`'s flow and folds it into the flow counters.
  void TransmitFromPeer(int side, PeerGen& gen);

  std::array<EtherEndpoint*, 2> endpoints_{nullptr, nullptr};
  Stats stats_;
  std::vector<std::unique_ptr<PeerGen>> peers_;
  std::atomic<bool> peers_stop_{false};
};

}  // namespace sud::devices

#endif  // SUD_SRC_DEVICES_ETHER_LINK_H_
