// EtherLink: a point-to-point Gigabit Ethernet medium.
//
// Connects two NIC endpoints (e.g. the device under test and the traffic
// generator peer playing the paper's Dell Optiplex). Frames are delivered
// synchronously; the link keeps byte/frame counters so the netperf
// reproduction can compute wire-limited throughput (a 1 Gb/s link is the
// bottleneck for TCP_STREAM, which is why kernel and SUD drivers tie at
// 941 Mbit/s in Figure 8).

#ifndef SUD_SRC_DEVICES_ETHER_LINK_H_
#define SUD_SRC_DEVICES_ETHER_LINK_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/status.h"

namespace sud::devices {

inline constexpr size_t kEthMinFrame = 60;     // without FCS
inline constexpr size_t kEthMaxFrame = 1514;   // 1500 MTU + 14 header
inline constexpr double kGigabitPerSec = 1e9;  // link rate, bits/second

// Per-frame wire overhead: preamble(8) + FCS(4) + IFG(12) bytes.
inline constexpr size_t kEthWireOverhead = 24;

class EtherEndpoint {
 public:
  virtual ~EtherEndpoint() = default;
  virtual void DeliverFrame(ConstByteSpan frame) = 0;
};

class EtherLink {
 public:
  // Relaxed atomics: multi-queue NICs transmit from one thread per queue.
  struct Stats {
    std::atomic<uint64_t> frames[2] = {};  // transmitted by side i
    std::atomic<uint64_t> bytes[2] = {};
    std::atomic<uint64_t> dropped{0};  // oversize or unattached
  };

  void Attach(int side, EtherEndpoint* endpoint);

  // Transmit from `side` to the peer. Oversize frames are dropped (counted),
  // undersize frames are padded to the Ethernet minimum, like a real MAC.
  Status Transmit(int side, ConstByteSpan frame);

  const Stats& stats() const { return stats_; }
  void ResetStats() {
    for (int side = 0; side < 2; ++side) {
      stats_.frames[side] = 0;
      stats_.bytes[side] = 0;
    }
    stats_.dropped = 0;
  }

  // Simulated wire time (ns) to carry `frames` frames of `payload` bytes.
  static double WireTimeNs(uint64_t frames, uint64_t payload_bytes);

 private:
  std::array<EtherEndpoint*, 2> endpoints_{nullptr, nullptr};
  Stats stats_;
};

}  // namespace sud::devices

#endif  // SUD_SRC_DEVICES_ETHER_LINK_H_
