#include "src/devices/ne2k_nic.h"

#include <cstring>

#include "src/kern/net_limits.h"

namespace sud::devices {

Ne2kNic::Ne2kNic(std::string name, const uint8_t mac[6])
    : PciDevice(std::move(name), /*vendor_id=*/0x10ec, /*device_id=*/0x8029,
                /*class_code=*/0x02, {hw::BarDesc{32, /*is_io=*/true}}) {
  std::memcpy(mac_.data(), mac, 6);
}

void Ne2kNic::ConnectLink(EtherLink* link, int side) {
  link_ = link;
  link_side_ = side;
  link->Attach(side, this);
}

void Ne2kNic::Reset() {
  cmd_ = kNe2kCmdStop;
  isr_ = 0;
  tx_byte_count_ = 0;
  pio_remaining_ = 0;
  tx_buffer_.clear();
  rx_queue_.clear();
  rx_read_pos_ = 0;
}

uint8_t Ne2kNic::IoRead(uint16_t port_offset) {
  if (port_offset >= kNe2kPortPar0 && port_offset < kNe2kPortPar0 + 6) {
    return mac_[port_offset - kNe2kPortPar0];
  }
  switch (port_offset) {
    case kNe2kPortCmd:
      return cmd_;
    case kNe2kPortIsr:
      return isr_;
    case kNe2kPortData: {
      if (rx_queue_.empty()) {
        return 0xff;
      }
      std::vector<uint8_t>& frame = rx_queue_.front();
      uint8_t byte = rx_read_pos_ < frame.size() ? frame[rx_read_pos_] : 0xff;
      ++rx_read_pos_;
      if (rx_read_pos_ >= frame.size()) {
        rx_queue_.pop_front();
        rx_read_pos_ = 0;
        if (rx_queue_.empty()) {
          isr_ &= static_cast<uint8_t>(~kNe2kIsrRx);
        }
      }
      return byte;
    }
    default:
      return 0;
  }
}

void Ne2kNic::IoWrite(uint16_t port_offset, uint8_t value) {
  switch (port_offset) {
    case kNe2kPortCmd:
      cmd_ = value;
      if ((value & kNe2kCmdTransmit) != 0 && (cmd_ & kNe2kCmdStart) != 0) {
        if (link_ != nullptr && !tx_buffer_.empty()) {
          size_t n = std::min<size_t>(tx_buffer_.size(), tx_byte_count_);
          (void)link_->Transmit(link_side_, ConstByteSpan(tx_buffer_.data(), n));
          ++tx_frames_;
          isr_ |= kNe2kIsrTx;
        }
        tx_buffer_.clear();
        cmd_ = static_cast<uint8_t>(cmd_ & ~kNe2kCmdTransmit);
      }
      break;
    case kNe2kPortTbcr0:
      tx_byte_count_ = static_cast<uint16_t>((tx_byte_count_ & 0xff00) | value);
      break;
    case kNe2kPortTbcr1:
      tx_byte_count_ = static_cast<uint16_t>((tx_byte_count_ & 0x00ff) | (value << 8));
      break;
    case kNe2kPortIsr:
      isr_ &= static_cast<uint8_t>(~value);  // write-1-to-clear
      break;
    case kNe2kPortRbcr0:
      pio_remaining_ = static_cast<uint16_t>((pio_remaining_ & 0xff00) | value);
      break;
    case kNe2kPortRbcr1:
      pio_remaining_ = static_cast<uint16_t>((pio_remaining_ & 0x00ff) | (value << 8));
      break;
    case kNe2kPortData:
      // The NS8390 is a standard-Ethernet part: its PIO buffer caps at the
      // 1514-byte frame maximum regardless of what the (jumbo-capable)
      // medium would carry.
      if (tx_buffer_.size() < kern::kStdMaxFrameBytes) {
        tx_buffer_.push_back(value);
      }
      break;
    default:
      break;
  }
}

void Ne2kNic::DeliverFrame(ConstByteSpan frame) {
  if ((cmd_ & kNe2kCmdStart) == 0) {
    return;  // stopped: frames are lost on the wire, as on real hardware
  }
  if (frame.size() > kern::kStdMaxFrameBytes) {
    return;  // a jumbo on the wire: the standard-Ethernet MAC drops it
  }
  if (rx_queue_.size() >= 16) {
    return;  // ring overflow
  }
  // The PIO stream for each packet starts with a 2-byte ring-header length
  // field (as the real NS8390 receive ring does), then the frame bytes.
  std::vector<uint8_t> entry(frame.size() + 2);
  entry[0] = static_cast<uint8_t>(frame.size() & 0xff);
  entry[1] = static_cast<uint8_t>(frame.size() >> 8);
  std::copy(frame.begin(), frame.end(), entry.begin() + 2);
  rx_queue_.push_back(std::move(entry));
  ++rx_frames_;
  isr_ |= kNe2kIsrRx;
}

}  // namespace sud::devices
