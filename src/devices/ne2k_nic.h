// Ne2kNic: an ne2k-pci-class legacy NIC, programmed entirely through x86
// IO ports.
//
// This device exists to exercise the *other* driver-initiated access path of
// Section 3.2.1: legacy IO-space registers, granted to user-space drivers
// through the IOPB bitmap in the task's TSS. It performs no DMA at all —
// frames move through a PIO data window — so a driver holding only IOPB
// grants for this device cannot touch memory it doesn't own, no matter what
// it writes.
//
// Port map (offsets within the device's IO BAR):
//   0x00 CMD      bit0 STOP, bit1 START, bit2 TXP (transmit packet)
//   0x01 PSTART   |
//   0x02 PSTOP    | receive-ring page registers (unused by the simple model)
//   0x04 TPSR     transmit page (unused; kept for register-fidelity)
//   0x05 TBCR0    transmit byte count, low
//   0x06 TBCR1    transmit byte count, high
//   0x07 ISR      bit0 PRX (packet received), bit1 PTX (packet transmitted)
//   0x08..0x0d PAR0-5  station (MAC) address
//   0x0e RBCR0    remote byte count low  (PIO window length)
//   0x0f RBCR1    remote byte count high
//   0x10 DATA     PIO data window (auto-incrementing)

#ifndef SUD_SRC_DEVICES_NE2K_NIC_H_
#define SUD_SRC_DEVICES_NE2K_NIC_H_

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/devices/ether_link.h"
#include "src/hw/pci_device.h"

namespace sud::devices {

inline constexpr uint16_t kNe2kPortCmd = 0x00;
inline constexpr uint16_t kNe2kPortTbcr0 = 0x05;
inline constexpr uint16_t kNe2kPortTbcr1 = 0x06;
inline constexpr uint16_t kNe2kPortIsr = 0x07;
inline constexpr uint16_t kNe2kPortPar0 = 0x08;
inline constexpr uint16_t kNe2kPortRbcr0 = 0x0e;
inline constexpr uint16_t kNe2kPortRbcr1 = 0x0f;
inline constexpr uint16_t kNe2kPortData = 0x10;

inline constexpr uint8_t kNe2kCmdStop = 1u << 0;
inline constexpr uint8_t kNe2kCmdStart = 1u << 1;
inline constexpr uint8_t kNe2kCmdTransmit = 1u << 2;

inline constexpr uint8_t kNe2kIsrRx = 1u << 0;
inline constexpr uint8_t kNe2kIsrTx = 1u << 1;

class Ne2kNic : public hw::PciDevice, public EtherEndpoint {
 public:
  Ne2kNic(std::string name, const uint8_t mac[6]);

  void ConnectLink(EtherLink* link, int side);

  // MMIO is absent on this device; it only answers IO-port accesses.
  uint32_t MmioRead(int bar, uint64_t offset) override { return 0xffffffffu; }
  void MmioWrite(int bar, uint64_t offset, uint32_t value) override {}
  uint8_t IoRead(uint16_t port_offset) override;
  void IoWrite(uint16_t port_offset, uint8_t value) override;
  void Reset() override;

  void DeliverFrame(ConstByteSpan frame) override;

  uint64_t tx_frames() const { return tx_frames_; }
  uint64_t rx_frames() const { return rx_frames_; }

 private:
  std::array<uint8_t, 6> mac_;
  EtherLink* link_ = nullptr;
  int link_side_ = 0;

  uint8_t cmd_ = kNe2kCmdStop;
  uint8_t isr_ = 0;
  uint16_t tx_byte_count_ = 0;
  uint16_t pio_remaining_ = 0;

  // PIO buffers: the driver fills tx_buffer_ through the data port, and
  // drains the head of rx_queue_ the same way.
  std::vector<uint8_t> tx_buffer_;
  std::deque<std::vector<uint8_t>> rx_queue_;
  size_t rx_read_pos_ = 0;

  uint64_t tx_frames_ = 0;
  uint64_t rx_frames_ = 0;
};

}  // namespace sud::devices

#endif  // SUD_SRC_DEVICES_NE2K_NIC_H_
