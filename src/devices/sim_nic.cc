#include "src/devices/sim_nic.h"

#include <cstring>

#include "src/base/bytes.h"
#include "src/base/log.h"
#include "src/kern/packet.h"

namespace sud::devices {

namespace {
// MDIC register fields (simplified): [15:0] data, [20:16] phy reg,
// [27:26] op (1=write 2=read), [28] ready.
constexpr uint32_t kMdicOpWrite = 1u << 26;
constexpr uint32_t kMdicOpRead = 2u << 26;
constexpr uint32_t kMdicReady = 1u << 28;

// PHY registers: BMSR (1) reports link up; PHYID1 (2) identifies the PHY.
constexpr uint32_t kPhyBmsr = 1;
constexpr uint32_t kPhyId1 = 2;
constexpr uint16_t kPhyBmsrLinkUp = 1u << 2;
constexpr uint16_t kPhyId1Value = 0x02a8;
}  // namespace

SimNic::SimNic(std::string name, const uint8_t mac[6])
    : PciDevice(std::move(name), /*vendor_id=*/0x8086, /*device_id=*/0x10d3,
                /*class_code=*/0x02, {hw::BarDesc{128 * 1024, /*is_io=*/false}}) {
  std::memcpy(mac_.data(), mac, 6);
  Reset();
}

void SimNic::ConnectLink(EtherLink* link, int side) {
  link_ = link;
  link_side_ = side;
  link->Attach(side, this);
}

void SimNic::Reset() {
  ctrl_ = 0;
  icr_.store(0, std::memory_order_relaxed);
  ims_.store(0, std::memory_order_relaxed);
  rctl_.store(0, std::memory_order_relaxed);
  tctl_.store(0, std::memory_order_relaxed);
  mrqc_.store(0, std::memory_order_relaxed);
  for (uint32_t q = 0; q < kNicNumQueues; ++q) {
    // A (restarting or malicious) driver can hit CTRL reset from its own
    // thread while frames are being delivered: take each queue's lock so
    // ring registers and backlogs never tear mid-delivery.
    std::lock_guard<std::recursive_mutex> lock(queue_mu_[q]);
    tx_q_[q] = RingRegs{};
    rx_q_[q] = RingRegs{};
    rx_backlog_[q].clear();
  }
  // Receive-address registers come up holding the EEPROM MAC, as on real HW.
  ral0_ = LoadLe32(mac_.data());
  rah0_ = kNicRahValid | LoadLe16(mac_.data() + 4);
  mdic_ = 0;
}

uint32_t SimNic::rss_queues() const {
  // mrqc_ is clamped to [0, kNicNumQueues] at write time, so this is always
  // in-bounds even while a driver rewrites MRQC mid-delivery.
  uint32_t queues = mrqc_.load(std::memory_order_relaxed);
  return queues == 0 ? 1 : queues;
}

// Resolves a per-queue ring register: `reg_offset` is the offset within the
// queue's block (RDBAL/TDBAL-relative). One decode shared by RX/TX x
// read/write, so the register map lives in exactly one place.
uint32_t* SimNic::RingField(RingRegs& regs, uint64_t reg_offset) {
  switch (reg_offset) {
    case 0x00: return &regs.bal;
    case 0x04: return &regs.bah;
    case 0x08: return &regs.len;
    case 0x10: return &regs.head;
    case 0x18: return &regs.tail;
    default: return nullptr;
  }
}

bool SimNic::DecodeQueueReg(uint64_t offset, bool* is_rx, uint32_t* queue, uint64_t* reg_offset) {
  if (offset >= kNicRegRdbal && offset < kNicRegRdbal + kNicNumQueues * kNicQueueRegStride) {
    *is_rx = true;
    *queue = static_cast<uint32_t>((offset - kNicRegRdbal) / kNicQueueRegStride);
  } else if (offset >= kNicRegTdbal &&
             offset < kNicRegTdbal + kNicNumQueues * kNicQueueRegStride) {
    *is_rx = false;
    *queue = static_cast<uint32_t>((offset - kNicRegTdbal) / kNicQueueRegStride);
  } else {
    return false;
  }
  *reg_offset = offset & (kNicQueueRegStride - 1);
  return true;
}

uint32_t SimNic::MmioRead(int bar, uint64_t offset) {
  if (bar != 0) {
    return 0xffffffffu;
  }
  // Per-queue ring register blocks.
  bool is_rx = false;
  uint32_t q = 0;
  uint64_t reg_offset = 0;
  if (DecodeQueueReg(offset, &is_rx, &q, &reg_offset)) {
    std::lock_guard<std::recursive_mutex> lock(queue_mu_[q]);
    uint32_t* field = RingField(is_rx ? rx_q_[q] : tx_q_[q], reg_offset);
    return field != nullptr ? *field : 0;
  }
  switch (offset) {
    case kNicRegCtrl:
      return ctrl_;
    case kNicRegStatus:
      return link_up() ? kNicStatusLinkUp : 0;
    case kNicRegMdic:
      return mdic_;
    case kNicRegIcr:
      // Read-to-clear.
      return icr_.exchange(0, std::memory_order_relaxed);
    case kNicRegIms:
      return ims_.load(std::memory_order_relaxed);
    case kNicRegRctl:
      return rctl_.load(std::memory_order_relaxed);
    case kNicRegTctl:
      return tctl_.load(std::memory_order_relaxed);
    case kNicRegMrqc:
      return mrqc_.load(std::memory_order_relaxed);
    case kNicRegRal0:
      return ral0_;
    case kNicRegRah0:
      return rah0_;
    default:
      return 0;
  }
}

void SimNic::MmioWrite(int bar, uint64_t offset, uint32_t value) {
  if (bar != 0) {
    return;
  }
  bool is_rx = false;
  uint32_t q = 0;
  uint64_t reg_offset = 0;
  if (DecodeQueueReg(offset, &is_rx, &q, &reg_offset)) {
    if (is_rx) {
      uint64_t drained = 0;
      {
        std::lock_guard<std::recursive_mutex> lock(queue_mu_[q]);
        uint32_t* field = RingField(rx_q_[q], reg_offset);
        if (field != nullptr) {
          *field = value;
          if (field == &rx_q_[q].tail) {
            drained = DrainBacklogLocked(q);
          }
        }
      }
      RaiseRxInterrupt(q, drained);
    } else {
      // TX ring registers live under the same per-queue lock as the RX side:
      // the doorbell write and the reap both mutate tx_q_[q], and a second
      // thread (the device's own Tick, or a racing doorbell) may be reaping
      // this ring concurrently.
      bool doorbell = false;
      {
        std::lock_guard<std::recursive_mutex> lock(queue_mu_[q]);
        uint32_t* field = RingField(tx_q_[q], reg_offset);
        if (field != nullptr) {
          *field = value;
          doorbell = field == &tx_q_[q].tail;
        }
      }
      if (doorbell) {
        ProcessTxRing(q);  // takes the queue lock itself
      }
    }
    return;
  }
  switch (offset) {
    case kNicRegCtrl:
      if (value & kNicCtrlReset) {
        Reset();
      } else {
        ctrl_ = value;
      }
      break;
    case kNicRegMdic: {
      uint32_t phy_reg = (value >> 16) & 0x1f;
      uint16_t data = 0;
      if (value & kMdicOpRead) {
        if (phy_reg == kPhyBmsr) {
          data = link_up() ? kPhyBmsrLinkUp : 0;
        } else if (phy_reg == kPhyId1) {
          data = kPhyId1Value;
        }
      }
      // Writes are accepted and ignored (no PHY state we care about).
      mdic_ = (value & ~0xffffu) | data | kMdicReady;
      break;
    }
    case kNicRegIms: {
      uint32_t ims = ims_.fetch_or(value, std::memory_order_relaxed) | value;
      uint32_t pending = icr_.load(std::memory_order_relaxed) & ims;
      if (pending != 0) {
        // Setting a mask bit with a pending cause re-raises the interrupt —
        // in multi-queue mode per queue, on each queue's own MSI message
        // (otherwise a cause raised while its IMS bit was clear would be
        // lost forever: RaiseQueueInterrupt drops masked events).
        if (multi_queue()) {
          for (uint32_t q = 0; q < kNicNumQueues; ++q) {
            if ((pending & (NicIntRxQueue(q) | NicIntTxQueue(q))) != 0) {
              (void)RaiseMsi(static_cast<uint8_t>(q));
            }
          }
        } else {
          (void)RaiseMsi();
        }
      }
      break;
    }
    case kNicRegImc:
      ims_.fetch_and(~value, std::memory_order_relaxed);
      break;
    case kNicRegRctl:
      rctl_.store(value, std::memory_order_relaxed);
      if (value & kNicRctlEnable) {
        Tick();  // drain any backlog into freshly armed descriptors
      }
      break;
    case kNicRegTctl:
      tctl_.store(value, std::memory_order_relaxed);
      break;
    case kNicRegMrqc:
      // Clamped once at write time: receive steering reads this concurrently
      // on every delivering thread, and FlowQueue must always be handed an
      // in-bounds queue count no matter what the driver wrote.
      mrqc_.store(value > kNicNumQueues ? kNicNumQueues : value, std::memory_order_relaxed);
      break;
    case kNicRegRal0:
      ral0_ = value;
      break;
    case kNicRegRah0:
      rah0_ = value;
      break;
    default:
      break;
  }
}

Result<NicDescriptor> SimNic::ReadDescriptor(uint64_t ring_base, uint32_t index) {
  uint8_t raw[16];
  Status status = DmaRead(ring_base + static_cast<uint64_t>(index) * 16, ByteSpan(raw, 16));
  if (!status.ok()) {
    stats_.dma_errors.fetch_add(1, std::memory_order_relaxed);
    return status;
  }
  NicDescriptor desc;
  desc.buffer_addr = LoadLe64(raw);
  desc.length = LoadLe16(raw + 8);
  desc.cso = raw[10];
  desc.cmd = raw[11];
  desc.status = raw[12];
  desc.css = raw[13];
  desc.special = LoadLe16(raw + 14);
  return desc;
}

// Completion writeback, split so a concurrently polling driver thread can
// never observe it torn: the device only ever CHANGES the length field (RX)
// and the status byte — buffer address, cso, cmd, css and special still hold
// exactly what the driver armed — so the writeback is the changed fields
// only, with the status byte last as a 1-byte posted write the memory model
// publishes with release semantics (PhysicalMemory::Write), paired with the
// driver's acquire poll of DD. The old scheme wrote the whole 16 bytes and
// then re-published DD — but that first phase still plain-wrote the very
// byte the driver was polling, a data race TSAN (and the threaded
// traffic-generator peers) flushed out; the changed-fields-only writeback is
// also fewer fabric crossings than the full descriptor was.
Status SimNic::WriteBackRxLength(uint64_t ring_base, uint32_t index, uint16_t length) {
  uint8_t raw[2];
  StoreLe16(raw, length);
  Status status =
      DmaWrite(ring_base + static_cast<uint64_t>(index) * 16 + 8, ConstByteSpan(raw, 2));
  if (!status.ok()) {
    stats_.dma_errors.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

Status SimNic::PublishDescriptorStatus(uint64_t ring_base, uint32_t index, uint8_t desc_status) {
  Status status = DmaWrite(ring_base + static_cast<uint64_t>(index) * 16 + 12,
                           ConstByteSpan(&desc_status, 1));
  if (!status.ok()) {
    stats_.dma_errors.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

void SimNic::SetInterruptCause(uint32_t bits) {
  // MSIs are edge-triggered on the assertion of a new cause: if the
  // interrupt condition was already pending (driver has not read ICR yet),
  // no additional message is signalled, as on real hardware.
  uint32_t ims = ims_.load(std::memory_order_relaxed);
  uint32_t old_icr = icr_.fetch_or(bits, std::memory_order_relaxed);
  bool was_asserted = (old_icr & ims) != 0;
  if (!was_asserted && ((old_icr | bits) & ims) != 0) {
    (void)RaiseMsi();
  }
}

void SimNic::RaiseQueueInterrupt(uint32_t q, uint32_t bits) {
  icr_.fetch_or(bits, std::memory_order_relaxed);
  if ((ims_.load(std::memory_order_relaxed) & bits) == 0) {
    return;
  }
  // MSI-X-style auto-clear: each event signals its message; coalescing is
  // the kernel side's job (in-flight masking + per-vector pending), so a
  // wakeup can never be lost between the driver's poll and its ack.
  (void)RaiseMsi(static_cast<uint8_t>(q));
}

void SimNic::ProcessTxRing(uint32_t q) {
  // Ring state (registers, descriptor DMA, head advance) mutates only under
  // queue_mu_[q]; the lock is dropped around the EtherLink hop so it is never
  // held while the peer NIC takes *its* queue lock in DeliverFrame — the
  // lock-order cycle two NICs on one link could otherwise build. Because the
  // head advances under the lock before the frame leaves, a concurrent
  // reaper (the device's Tick, or a racing doorbell write) processes each
  // descriptor exactly once.
  std::unique_lock<std::recursive_mutex> lock(queue_mu_[q]);
  RingRegs& regs = tx_q_[q];
  std::vector<uint8_t> frame_buf;  // one allocation per reap pass, not per frame
  bool sent_any = false;
  while ((tctl_.load(std::memory_order_relaxed) & kNicTctlEnable) != 0 && regs.size() != 0 &&
         regs.head != regs.tail) {
    uint64_t ring_base = regs.base();
    Result<NicDescriptor> desc = ReadDescriptor(ring_base, regs.head);
    if (!desc.ok()) {
      // Descriptor fetch faulted in the IOMMU: the device stalls this queue,
      // which is precisely the "confined to its own sandbox" behaviour.
      break;
    }
    NicDescriptor d = desc.value();
    frame_buf.resize(d.length);
    if (d.length > 0) {
      Status status = DmaRead(d.buffer_addr, ByteSpan(frame_buf.data(), d.length));
      if (!status.ok()) {
        stats_.dma_errors.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
    stats_.tx_frames.fetch_add(1, std::memory_order_relaxed);
    queue_stats_[q].tx_frames.fetch_add(1, std::memory_order_relaxed);
    (void)PublishDescriptorStatus(ring_base, regs.head,
                                  static_cast<uint8_t>(d.status | kNicDescStatusDone));
    regs.head = (regs.head + 1) % regs.size();
    sent_any = true;
    if (link_ != nullptr && d.length > 0) {
      lock.unlock();
      (void)link_->Transmit(link_side_, ConstByteSpan(frame_buf.data(), d.length));
      lock.lock();
    }
  }
  lock.unlock();
  if (sent_any) {
    // Raised after the lock is dropped: the MSI dispatch can synchronously
    // run an in-kernel driver's reap, which re-enters through the doorbell.
    if (multi_queue()) {
      RaiseQueueInterrupt(q, NicIntTxQueue(q));
    } else {
      SetInterruptCause(kNicIntTxDone);
    }
  }
}

bool SimNic::ReceiveIntoRingLocked(uint32_t q, ConstByteSpan frame) {
  RingRegs& regs = rx_q_[q];
  if ((rctl_.load(std::memory_order_relaxed) & kNicRctlEnable) == 0 || regs.size() == 0) {
    return false;
  }
  // RDH == RDT means the ring is empty of armed descriptors.
  if (regs.head == regs.tail) {
    return false;
  }
  uint64_t ring_base = regs.base();
  Result<NicDescriptor> desc = ReadDescriptor(ring_base, regs.head);
  if (!desc.ok()) {
    return false;
  }
  NicDescriptor d = desc.value();
  Status status = DmaWrite(d.buffer_addr, frame);
  if (!status.ok()) {
    stats_.dma_errors.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Length lands first, the DD status byte last (release), so a driver
  // thread polling this descriptor concurrently can never observe DD with a
  // stale length — in every mode, not just multi-queue: with threaded
  // generator peers even the single-queue device writes back on the
  // delivering thread while a kThreaded driver polls.
  (void)WriteBackRxLength(ring_base, regs.head, static_cast<uint16_t>(frame.size()));
  (void)PublishDescriptorStatus(ring_base, regs.head,
                                kNicDescStatusDone | (kNicDescCmdEop << 1));
  regs.head = (regs.head + 1) % regs.size();
  stats_.rx_frames.fetch_add(1, std::memory_order_relaxed);
  queue_stats_[q].rx_frames.fetch_add(1, std::memory_order_relaxed);
  // The interrupt is raised by the caller AFTER the queue lock is released:
  // a synchronous in-kernel dispatch can transmit a reply from inside the
  // handler, and its doorbell must find this queue's lock free (see the
  // threading comment in the header).
  return true;
}

void SimNic::RaiseRxInterrupt(uint32_t q, uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) {
    if (multi_queue()) {
      RaiseQueueInterrupt(q, NicIntRxQueue(q));
    } else {
      SetInterruptCause(kNicIntRx);
    }
  }
}

void SimNic::DeliverFrame(ConstByteSpan frame) {
  uint32_t q = kern::FlowQueue(frame, static_cast<uint16_t>(rss_queues()));
  bool into_ring = false;
  {
    std::lock_guard<std::recursive_mutex> lock(queue_mu_[q]);
    into_ring = ReceiveIntoRingLocked(q, frame);
    if (!into_ring) {
      if (rx_backlog_[q].size() >= kRxBacklogMax) {
        stats_.rx_dropped_no_desc.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      rx_backlog_[q].emplace_back(frame.begin(), frame.end());
    }
  }
  if (into_ring) {
    RaiseRxInterrupt(q, 1);
  }
}

uint64_t SimNic::DrainBacklogLocked(uint32_t q) {
  uint64_t drained = 0;
  while (!rx_backlog_[q].empty()) {
    const std::vector<uint8_t>& frame = rx_backlog_[q].front();
    if (!ReceiveIntoRingLocked(q, ConstByteSpan(frame.data(), frame.size()))) {
      break;
    }
    rx_backlog_[q].pop_front();
    ++drained;
  }
  return drained;
}

void SimNic::Tick() {
  for (uint32_t q = 0; q < kNicNumQueues; ++q) {
    uint64_t drained = 0;
    {
      std::lock_guard<std::recursive_mutex> lock(queue_mu_[q]);
      drained = DrainBacklogLocked(q);
    }
    RaiseRxInterrupt(q, drained);
    // Device-side TX reap: real silicon fetches armed descriptors on its own
    // schedule, not only at the doorbell edge. (No-op when head == tail.)
    ProcessTxRing(q);
  }
}

}  // namespace sud::devices
