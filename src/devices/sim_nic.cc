#include "src/devices/sim_nic.h"

#include <cstring>

#include "src/base/bytes.h"
#include "src/base/log.h"

namespace sud::devices {

namespace {
// MDIC register fields (simplified): [15:0] data, [20:16] phy reg,
// [27:26] op (1=write 2=read), [28] ready.
constexpr uint32_t kMdicOpWrite = 1u << 26;
constexpr uint32_t kMdicOpRead = 2u << 26;
constexpr uint32_t kMdicReady = 1u << 28;

// PHY registers: BMSR (1) reports link up; PHYID1 (2) identifies the PHY.
constexpr uint32_t kPhyBmsr = 1;
constexpr uint32_t kPhyId1 = 2;
constexpr uint16_t kPhyBmsrLinkUp = 1u << 2;
constexpr uint16_t kPhyId1Value = 0x02a8;
}  // namespace

SimNic::SimNic(std::string name, const uint8_t mac[6])
    : PciDevice(std::move(name), /*vendor_id=*/0x8086, /*device_id=*/0x10d3,
                /*class_code=*/0x02, {hw::BarDesc{128 * 1024, /*is_io=*/false}}) {
  std::memcpy(mac_.data(), mac, 6);
  Reset();
}

void SimNic::ConnectLink(EtherLink* link, int side) {
  link_ = link;
  link_side_ = side;
  link->Attach(side, this);
}

void SimNic::Reset() {
  ctrl_ = 0;
  icr_ = 0;
  ims_ = 0;
  rctl_ = 0;
  tctl_ = 0;
  tdbal_ = tdbah_ = tdlen_ = tdh_ = tdt_ = 0;
  rdbal_ = rdbah_ = rdlen_ = rdh_ = rdt_ = 0;
  // Receive-address registers come up holding the EEPROM MAC, as on real HW.
  ral0_ = LoadLe32(mac_.data());
  rah0_ = kNicRahValid | LoadLe16(mac_.data() + 4);
  mdic_ = 0;
  rx_backlog_.clear();
}

uint32_t SimNic::MmioRead(int bar, uint64_t offset) {
  if (bar != 0) {
    return 0xffffffffu;
  }
  switch (offset) {
    case kNicRegCtrl:
      return ctrl_;
    case kNicRegStatus:
      return link_up() ? kNicStatusLinkUp : 0;
    case kNicRegMdic:
      return mdic_;
    case kNicRegIcr: {
      uint32_t value = icr_;
      icr_ = 0;  // read-to-clear
      return value;
    }
    case kNicRegIms:
      return ims_;
    case kNicRegRctl:
      return rctl_;
    case kNicRegTctl:
      return tctl_;
    case kNicRegRdbal:
      return rdbal_;
    case kNicRegRdbah:
      return rdbah_;
    case kNicRegRdlen:
      return rdlen_;
    case kNicRegRdh:
      return rdh_;
    case kNicRegRdt:
      return rdt_;
    case kNicRegTdbal:
      return tdbal_;
    case kNicRegTdbah:
      return tdbah_;
    case kNicRegTdlen:
      return tdlen_;
    case kNicRegTdh:
      return tdh_;
    case kNicRegTdt:
      return tdt_;
    case kNicRegRal0:
      return ral0_;
    case kNicRegRah0:
      return rah0_;
    default:
      return 0;
  }
}

void SimNic::MmioWrite(int bar, uint64_t offset, uint32_t value) {
  if (bar != 0) {
    return;
  }
  switch (offset) {
    case kNicRegCtrl:
      if (value & kNicCtrlReset) {
        Reset();
      } else {
        ctrl_ = value;
      }
      break;
    case kNicRegMdic: {
      uint32_t phy_reg = (value >> 16) & 0x1f;
      uint16_t data = 0;
      if (value & kMdicOpRead) {
        if (phy_reg == kPhyBmsr) {
          data = link_up() ? kPhyBmsrLinkUp : 0;
        } else if (phy_reg == kPhyId1) {
          data = kPhyId1Value;
        }
      }
      // Writes are accepted and ignored (no PHY state we care about).
      mdic_ = (value & ~0xffffu) | data | kMdicReady;
      break;
    }
    case kNicRegIms:
      ims_ |= value;
      // Setting a mask bit with a pending cause re-raises the interrupt.
      if ((icr_ & ims_) != 0) {
        (void)RaiseMsi();
      }
      break;
    case kNicRegImc:
      ims_ &= ~value;
      break;
    case kNicRegRctl:
      rctl_ = value;
      if (rctl_ & kNicRctlEnable) {
        Tick();  // drain any backlog into freshly armed descriptors
      }
      break;
    case kNicRegTctl:
      tctl_ = value;
      break;
    case kNicRegRdbal:
      rdbal_ = value;
      break;
    case kNicRegRdbah:
      rdbah_ = value;
      break;
    case kNicRegRdlen:
      rdlen_ = value;
      break;
    case kNicRegRdh:
      rdh_ = value;
      break;
    case kNicRegRdt:
      rdt_ = value;
      Tick();
      break;
    case kNicRegTdbal:
      tdbal_ = value;
      break;
    case kNicRegTdbah:
      tdbah_ = value;
      break;
    case kNicRegTdlen:
      tdlen_ = value;
      break;
    case kNicRegTdh:
      tdh_ = value;
      break;
    case kNicRegTdt:
      tdt_ = value;
      ProcessTxRing();
      break;
    case kNicRegRal0:
      ral0_ = value;
      break;
    case kNicRegRah0:
      rah0_ = value;
      break;
    default:
      break;
  }
}

Result<NicDescriptor> SimNic::ReadDescriptor(uint64_t ring_base, uint32_t index) {
  uint8_t raw[16];
  Status status = DmaRead(ring_base + static_cast<uint64_t>(index) * 16, ByteSpan(raw, 16));
  if (!status.ok()) {
    ++stats_.dma_errors;
    return status;
  }
  NicDescriptor desc;
  desc.buffer_addr = LoadLe64(raw);
  desc.length = LoadLe16(raw + 8);
  desc.cso = raw[10];
  desc.cmd = raw[11];
  desc.status = raw[12];
  desc.css = raw[13];
  desc.special = LoadLe16(raw + 14);
  return desc;
}

Status SimNic::WriteBackDescriptor(uint64_t ring_base, uint32_t index, const NicDescriptor& desc) {
  uint8_t raw[16];
  StoreLe64(raw, desc.buffer_addr);
  StoreLe16(raw + 8, desc.length);
  raw[10] = desc.cso;
  raw[11] = desc.cmd;
  raw[12] = desc.status;
  raw[13] = desc.css;
  StoreLe16(raw + 14, desc.special);
  Status status = DmaWrite(ring_base + static_cast<uint64_t>(index) * 16, ConstByteSpan(raw, 16));
  if (!status.ok()) {
    ++stats_.dma_errors;
  }
  return status;
}

void SimNic::SetInterruptCause(uint32_t bits) {
  // MSIs are edge-triggered on the assertion of a new cause: if the
  // interrupt condition was already pending (driver has not read ICR yet),
  // no additional message is signalled, as on real hardware.
  bool was_asserted = (icr_ & ims_) != 0;
  icr_ |= bits;
  if (!was_asserted && (icr_ & ims_) != 0) {
    (void)RaiseMsi();
  }
}

void SimNic::ProcessTxRing() {
  if ((tctl_ & kNicTctlEnable) == 0 || TxRingSize() == 0) {
    return;
  }
  uint64_t ring_base = (static_cast<uint64_t>(tdbah_) << 32) | tdbal_;
  bool sent_any = false;
  while (tdh_ != tdt_) {
    Result<NicDescriptor> desc = ReadDescriptor(ring_base, tdh_);
    if (!desc.ok()) {
      // Descriptor fetch faulted in the IOMMU: the device stalls this queue,
      // which is precisely the "confined to its own sandbox" behaviour.
      return;
    }
    NicDescriptor d = desc.value();
    tx_frame_buf_.resize(d.length);  // reused scratch: no per-frame allocation
    if (d.length > 0) {
      Status status = DmaRead(d.buffer_addr, ByteSpan(tx_frame_buf_.data(), d.length));
      if (!status.ok()) {
        ++stats_.dma_errors;
        return;
      }
    }
    if (link_ != nullptr && d.length > 0) {
      (void)link_->Transmit(link_side_, ConstByteSpan(tx_frame_buf_.data(), d.length));
    }
    ++stats_.tx_frames;
    d.status |= kNicDescStatusDone;
    (void)WriteBackDescriptor(ring_base, tdh_, d);
    tdh_ = (tdh_ + 1) % TxRingSize();
    sent_any = true;
  }
  if (sent_any) {
    SetInterruptCause(kNicIntTxDone);
  }
}

bool SimNic::ReceiveIntoRing(ConstByteSpan frame) {
  if ((rctl_ & kNicRctlEnable) == 0 || RxRingSize() == 0) {
    return false;
  }
  // RDH == RDT means the ring is empty of armed descriptors.
  if (rdh_ == rdt_) {
    return false;
  }
  uint64_t ring_base = (static_cast<uint64_t>(rdbah_) << 32) | rdbal_;
  Result<NicDescriptor> desc = ReadDescriptor(ring_base, rdh_);
  if (!desc.ok()) {
    return false;
  }
  NicDescriptor d = desc.value();
  Status status = DmaWrite(d.buffer_addr, frame);
  if (!status.ok()) {
    ++stats_.dma_errors;
    return false;
  }
  d.length = static_cast<uint16_t>(frame.size());
  d.status = kNicDescStatusDone | (kNicDescCmdEop << 1);
  (void)WriteBackDescriptor(ring_base, rdh_, d);
  rdh_ = (rdh_ + 1) % RxRingSize();
  ++stats_.rx_frames;
  SetInterruptCause(kNicIntRx);
  return true;
}

void SimNic::DeliverFrame(ConstByteSpan frame) {
  if (ReceiveIntoRing(frame)) {
    return;
  }
  if (rx_backlog_.size() >= kRxBacklogMax) {
    ++stats_.rx_dropped_no_desc;
    return;
  }
  rx_backlog_.emplace_back(frame.begin(), frame.end());
}

void SimNic::Tick() {
  while (!rx_backlog_.empty()) {
    const std::vector<uint8_t>& frame = rx_backlog_.front();
    if (!ReceiveIntoRing(ConstByteSpan(frame.data(), frame.size()))) {
      break;
    }
    rx_backlog_.pop_front();
  }
}

}  // namespace sud::devices
