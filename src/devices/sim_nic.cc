#include "src/devices/sim_nic.h"

#include <cstring>

#include "src/base/bytes.h"
#include "src/base/log.h"
#include "src/kern/flow_table.h"
#include "src/kern/net_limits.h"
#include "src/kern/packet.h"

namespace sud::devices {

// The kern-side flow tracker observes load at RETA granularity (hash % 128
// on both sides); the two constants must never drift apart.
static_assert(kern::kFlowBuckets == kNicRetaEntries,
              "FlowTable bucket count must match the device RETA size");

namespace {
// MDIC register fields (simplified): [15:0] data, [20:16] phy reg,
// [27:26] op (1=write 2=read), [28] ready.
constexpr uint32_t kMdicOpWrite = 1u << 26;
constexpr uint32_t kMdicOpRead = 2u << 26;
constexpr uint32_t kMdicReady = 1u << 28;

// PHY registers: BMSR (1) reports link up; PHYID1 (2) identifies the PHY.
constexpr uint32_t kPhyBmsr = 1;
constexpr uint32_t kPhyId1 = 2;
constexpr uint16_t kPhyBmsrLinkUp = 1u << 2;
constexpr uint16_t kPhyId1Value = 0x02a8;

// Completion writebacks are retried through transient DMA faults: a
// swallowed writeback leaves a descriptor the driver's in-order reap can
// never pass (a published-but-holed ring), which is a wedge rather than a
// confinement. Bounded, because a malicious driver CAN make the fault
// persistent (ring pages mapped read-only) — then the hole wedges only that
// driver's own queue, which is the sandbox working.
constexpr int kWritebackRetries = 8;
}  // namespace

Status SimNic::PublishRetry(hw::DescRingEngine& engine, uint32_t index, uint8_t status) {
  Status published = engine.PublishStatus(index, status);
  for (int retry = 0; !published.ok() && retry < kWritebackRetries; ++retry) {
    stats_.dma_errors.fetch_add(1, std::memory_order_relaxed);
    published = engine.PublishStatus(index, status);
  }
  if (!published.ok()) {
    SUD_LOG_RL(kWarning) << name() << ": completion writeback failed after retries; "
                         << "descriptor " << index << " left unpublished";
  }
  return published;
}

Status SimNic::FabricRingMem::Read(uint64_t addr, ByteSpan out) {
  Status status = nic_->DmaRead(addr, out);
  if (!status.ok()) {
    nic_->stats_.dma_errors.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

Status SimNic::FabricRingMem::Write(uint64_t addr, ConstByteSpan bytes) {
  Status status = nic_->DmaWrite(addr, bytes);
  if (!status.ok()) {
    nic_->stats_.dma_errors.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

SimNic::SimNic(std::string name, const uint8_t mac[6])
    : PciDevice(std::move(name), /*vendor_id=*/0x8086, /*device_id=*/0x10d3,
                /*class_code=*/0x02, {hw::BarDesc{128 * 1024, /*is_io=*/false}}) {
  std::memcpy(mac_.data(), mac, 6);
  for (uint32_t q = 0; q < kNicNumQueues; ++q) {
    engines_[q] = std::make_unique<QueueEngines>(this);
  }
  Reset();
}

void SimNic::ConnectLink(EtherLink* link, int side) {
  link_ = link;
  link_side_ = side;
  link->Attach(side, this);
}

void SimNic::Reset() {
  ctrl_ = 0;
  icr_.store(0, std::memory_order_relaxed);
  ims_.store(0, std::memory_order_relaxed);
  rctl_.store(0, std::memory_order_relaxed);
  tctl_.store(0, std::memory_order_relaxed);
  mrqc_.store(0, std::memory_order_relaxed);
  for (uint32_t q = 0; q < kNicNumQueues; ++q) {
    // A (restarting or malicious) driver can hit CTRL reset from its own
    // thread while frames are being delivered: take each queue's lock so
    // ring registers and backlogs never tear mid-delivery.
    std::lock_guard<std::recursive_mutex> lock(queue_mu_[q]);
    tx_q_[q] = RingRegs{};
    rx_q_[q] = RingRegs{};
    rx_backlog_[q].clear();
    tx_chain_frame_[q].clear();
    tx_chain_descs_[q].clear();
    tx_skip_to_eop_[q] = false;
    engines_[q]->rx.Invalidate();
    engines_[q]->tx.Invalidate();
  }
  for (uint32_t i = 0; i < kNicRetaEntries; ++i) {
    reta_[i].store(0, std::memory_order_relaxed);
  }
  reta_programmed_.store(false, std::memory_order_relaxed);
  for (uint32_t i = 0; i < kNicRssKeyDwords; ++i) {
    rssrk_[i].store(0, std::memory_order_relaxed);
  }
  rss_dst_salt_.store(0, std::memory_order_relaxed);
  rss_src_salt_.store(0, std::memory_order_relaxed);
  for (uint32_t q = 0; q < kNicNumQueues; ++q) {
    eitr_[q].store(0, std::memory_order_relaxed);
    itr_window_[q].store(0, std::memory_order_relaxed);
    itr_pending_[q].store(0, std::memory_order_relaxed);
  }
  // Receive-address registers come up holding the EEPROM MAC, as on real HW.
  ral0_ = LoadLe32(mac_.data());
  rah0_ = kNicRahValid | LoadLe16(mac_.data() + 4);
  mdic_ = 0;
}

uint32_t SimNic::rss_queues() const {
  // mrqc_ is clamped to [0, kNicNumQueues] at write time, so this is always
  // in-bounds even while a driver rewrites MRQC mid-delivery.
  uint32_t queues = mrqc_.load(std::memory_order_relaxed);
  return queues == 0 ? 1 : queues;
}

uint32_t SimNic::SteerQueue(ConstByteSpan frame) const {
  uint32_t queues = rss_queues();
  if (queues <= 1) {
    return 0;
  }
  // Keyed hash under the programmed RSSRK. The unprogrammed (all-zero) key
  // folds to zero salts, making this the historical unkeyed FlowHash
  // bit-for-bit — every pre-key steering row stays byte-stable.
  kern::RssKeyFold fold{rss_dst_salt_.load(std::memory_order_relaxed),
                        rss_src_salt_.load(std::memory_order_relaxed)};
  uint32_t hash = kern::FlowHashKeyed(frame, fold);
  if (!reta_programmed_.load(std::memory_order_relaxed)) {
    // Unprogrammed table: the historical hash % queues, bit-for-bit.
    return hash % queues;
  }
  // Entries are stored pre-masked to the implemented queue count; the final
  // reduction keeps the lookup in-bounds even while MRQC shrinks mid-flight.
  uint8_t entry = reta_[hash % kNicRetaEntries].load(std::memory_order_relaxed);
  return entry % queues;
}

std::array<uint8_t, kNicRetaEntries> SimNic::RetaSnapshot() const {
  std::array<uint8_t, kNicRetaEntries> table;
  for (uint32_t i = 0; i < kNicRetaEntries; ++i) {
    table[i] = reta_[i].load(std::memory_order_relaxed);
  }
  return table;
}

void SimNic::RefoldRssKey() {
  uint8_t key[kNicRssKeyDwords * 4];
  for (uint32_t i = 0; i < kNicRssKeyDwords; ++i) {
    StoreLe32(key + 4 * i, rssrk_[i].load(std::memory_order_relaxed));
  }
  kern::RssKeyFold fold = kern::FoldRssKey(ConstByteSpan(key, sizeof(key)));
  rss_dst_salt_.store(fold.dst_salt, std::memory_order_relaxed);
  rss_src_salt_.store(fold.src_salt, std::memory_order_relaxed);
}

// Resolves a per-queue ring register: `reg_offset` is the offset within the
// queue's block (RDBAL/TDBAL-relative). One decode shared by RX/TX x
// read/write, so the register map lives in exactly one place.
uint32_t* SimNic::RingField(RingRegs& regs, uint64_t reg_offset, bool is_rx) {
  switch (reg_offset) {
    case 0x00: return &regs.bal;
    case 0x04: return &regs.bah;
    case 0x08: return &regs.len;
    case 0x0c: return is_rx ? &regs.bufsz : nullptr;  // SRRCTL-style, RX only
    case 0x10: return &regs.head;
    case 0x18: return &regs.tail;
    default: return nullptr;
  }
}

bool SimNic::DecodeQueueReg(uint64_t offset, bool* is_rx, uint32_t* queue, uint64_t* reg_offset) {
  if (offset >= kNicRegRdbal && offset < kNicRegRdbal + kNicNumQueues * kNicQueueRegStride) {
    *is_rx = true;
    *queue = static_cast<uint32_t>((offset - kNicRegRdbal) / kNicQueueRegStride);
  } else if (offset >= kNicRegTdbal &&
             offset < kNicRegTdbal + kNicNumQueues * kNicQueueRegStride) {
    *is_rx = false;
    *queue = static_cast<uint32_t>((offset - kNicRegTdbal) / kNicQueueRegStride);
  } else {
    return false;
  }
  *reg_offset = offset & (kNicQueueRegStride - 1);
  return true;
}

uint32_t SimNic::EffectiveRxBufBytes(const RingRegs& regs) {
  // Clamp + round down to the granularity (net_limits.h): a malicious
  // driver can program whatever it likes, the device scatters at a sane
  // size regardless.
  return kern::EffectiveRxBufferBytes(regs.bufsz);
}

uint32_t SimNic::MmioRead(int bar, uint64_t offset) {
  if (bar != 0) {
    return 0xffffffffu;
  }
  // Per-queue ring register blocks.
  bool is_rx = false;
  uint32_t q = 0;
  uint64_t reg_offset = 0;
  if (DecodeQueueReg(offset, &is_rx, &q, &reg_offset)) {
    std::lock_guard<std::recursive_mutex> lock(queue_mu_[q]);
    uint32_t* field = RingField(is_rx ? rx_q_[q] : tx_q_[q], reg_offset, is_rx);
    return field != nullptr ? *field : 0;
  }
  if (offset >= kNicRegReta && offset < kNicRegReta + kNicRetaEntries) {
    uint32_t base = static_cast<uint32_t>(offset - kNicRegReta) & ~3u;
    uint32_t value = 0;
    for (uint32_t b = 0; b < 4; ++b) {
      value |= static_cast<uint32_t>(reta_[base + b].load(std::memory_order_relaxed)) << (8 * b);
    }
    return value;
  }
  if (offset >= kNicRegRssrk && offset < kNicRegRssrk + 4 * kNicRssKeyDwords) {
    return rssrk_[(offset - kNicRegRssrk) / 4].load(std::memory_order_relaxed);
  }
  if (offset >= kNicRegEitr && offset < kNicRegEitr + 4 * kNicNumQueues) {
    return eitr_[(offset - kNicRegEitr) / 4].load(std::memory_order_relaxed);
  }
  switch (offset) {
    case kNicRegCtrl:
      return ctrl_;
    case kNicRegStatus:
      return link_up() ? kNicStatusLinkUp : 0;
    case kNicRegMdic:
      return mdic_;
    case kNicRegIcr:
      // Read-to-clear.
      return icr_.exchange(0, std::memory_order_relaxed);
    case kNicRegIms:
      return ims_.load(std::memory_order_relaxed);
    case kNicRegRctl:
      return rctl_.load(std::memory_order_relaxed);
    case kNicRegTctl:
      return tctl_.load(std::memory_order_relaxed);
    case kNicRegMrqc:
      return mrqc_.load(std::memory_order_relaxed);
    case kNicRegRal0:
      return ral0_;
    case kNicRegRah0:
      return rah0_;
    default:
      return 0;
  }
}

void SimNic::MmioWrite(int bar, uint64_t offset, uint32_t value) {
  if (bar != 0) {
    return;
  }
  bool is_rx = false;
  uint32_t q = 0;
  uint64_t reg_offset = 0;
  if (DecodeQueueReg(offset, &is_rx, &q, &reg_offset)) {
    if (is_rx) {
      uint64_t drained = 0;
      {
        std::lock_guard<std::recursive_mutex> lock(queue_mu_[q]);
        uint32_t* field = RingField(rx_q_[q], reg_offset, /*is_rx=*/true);
        if (field != nullptr) {
          *field = value;
          if (field == &rx_q_[q].tail) {
            drained = DrainBacklogLocked(q);
          }
        }
      }
      RaiseRxInterrupt(q, drained);
    } else {
      // TX ring registers live under the same per-queue lock as the RX side:
      // the doorbell write and the reap both mutate tx_q_[q], and a second
      // thread (the device's own Tick, or a racing doorbell) may be reaping
      // this ring concurrently.
      bool doorbell = false;
      {
        std::lock_guard<std::recursive_mutex> lock(queue_mu_[q]);
        uint32_t* field = RingField(tx_q_[q], reg_offset, /*is_rx=*/false);
        if (field != nullptr) {
          *field = value;
          doorbell = field == &tx_q_[q].tail;
        }
      }
      if (doorbell) {
        ProcessTxRing(q);  // takes the queue lock itself
      }
    }
    return;
  }
  if (offset >= kNicRegReta && offset < kNicRegReta + kNicRetaEntries) {
    // Four byte-wide entries per dword, each pre-masked to the implemented
    // queue count so a concurrent lookup can never read an out-of-range
    // queue no matter what the driver wrote.
    uint32_t base = static_cast<uint32_t>(offset - kNicRegReta) & ~3u;
    for (uint32_t b = 0; b < 4; ++b) {
      reta_[base + b].store(static_cast<uint8_t>((value >> (8 * b)) % kNicNumQueues),
                            std::memory_order_relaxed);
    }
    reta_programmed_.store(true, std::memory_order_relaxed);
    stats_.reta_writes.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (offset >= kNicRegRssrk && offset < kNicRegRssrk + 4 * kNicRssKeyDwords) {
    rssrk_[(offset - kNicRegRssrk) / 4].store(value, std::memory_order_relaxed);
    RefoldRssKey();
    return;
  }
  if (offset >= kNicRegEitr && offset < kNicRegEitr + 4 * kNicNumQueues) {
    // Bits 15:0, like the hardware register. 0 turns moderation off; an open
    // window is left to expire on its own (the pending latch still flushes).
    eitr_[(offset - kNicRegEitr) / 4].store(value & 0xffffu, std::memory_order_relaxed);
    return;
  }
  switch (offset) {
    case kNicRegCtrl:
      if (value & kNicCtrlReset) {
        Reset();
      } else {
        ctrl_ = value;
      }
      break;
    case kNicRegMdic: {
      uint32_t phy_reg = (value >> 16) & 0x1f;
      uint16_t data = 0;
      if (value & kMdicOpRead) {
        if (phy_reg == kPhyBmsr) {
          data = link_up() ? kPhyBmsrLinkUp : 0;
        } else if (phy_reg == kPhyId1) {
          data = kPhyId1Value;
        }
      }
      // Writes are accepted and ignored (no PHY state we care about).
      mdic_ = (value & ~0xffffu) | data | kMdicReady;
      break;
    }
    case kNicRegIms: {
      uint32_t ims = ims_.fetch_or(value, std::memory_order_relaxed) | value;
      uint32_t pending = icr_.load(std::memory_order_relaxed) & ims;
      if (pending != 0) {
        // Setting a mask bit with a pending cause re-raises the interrupt —
        // in multi-queue mode per queue, on each queue's own MSI message
        // (otherwise a cause raised while its IMS bit was clear would be
        // lost forever: RaiseQueueInterrupt drops masked events).
        if (multi_queue()) {
          for (uint32_t q = 0; q < kNicNumQueues; ++q) {
            if ((pending & (NicIntRxQueue(q) | NicIntTxQueue(q))) != 0) {
              (void)RaiseMsi(static_cast<uint8_t>(q));
            }
          }
        } else {
          (void)RaiseMsi();
        }
      }
      break;
    }
    case kNicRegImc:
      ims_.fetch_and(~value, std::memory_order_relaxed);
      break;
    case kNicRegRctl:
      rctl_.store(value, std::memory_order_relaxed);
      if (value & kNicRctlEnable) {
        Tick();  // drain any backlog into freshly armed descriptors
      }
      break;
    case kNicRegTctl:
      tctl_.store(value, std::memory_order_relaxed);
      break;
    case kNicRegMrqc:
      // Clamped once at write time: receive steering reads this concurrently
      // on every delivering thread, and SteerQueue must always be handed an
      // in-bounds queue count no matter what the driver wrote.
      mrqc_.store(value > kNicNumQueues ? kNicNumQueues : value, std::memory_order_relaxed);
      break;
    case kNicRegRal0:
      ral0_ = value;
      break;
    case kNicRegRah0:
      rah0_ = value;
      break;
    default:
      break;
  }
}

void SimNic::AccumulateEngineStats(const hw::DescRingEngine& engine,
                                   hw::DescRingEngine::Stats* folded) {
  const hw::DescRingEngine::Stats& s = engine.stats();
  stats_.desc_fetch_dma.fetch_add(s.burst_fetches - folded->burst_fetches,
                                  std::memory_order_relaxed);
  stats_.desc_fetched.fetch_add(s.descs_fetched - folded->descs_fetched,
                                std::memory_order_relaxed);
  stats_.desc_writeback_dma.fetch_add(s.writebacks - folded->writebacks,
                                      std::memory_order_relaxed);
  *folded = s;
}

bool SimNic::ItrGate(uint32_t q) {
  uint32_t eitr = eitr_[q].load(std::memory_order_relaxed);
  if (eitr == 0) {
    return false;  // moderation off: every event signals (historical behaviour)
  }
  if (itr_window_[q].load(std::memory_order_relaxed) != 0) {
    // Inside the throttle window: latch, count, absorb. (Two delivery
    // threads racing the window-open check can both signal — moderation is
    // a rate shaper, not a correctness fence; the kernel side's in-flight
    // coalescing already tolerates duplicate MSIs.)
    itr_pending_[q].store(1, std::memory_order_relaxed);
    stats_.itr_suppressed.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  itr_window_[q].store(eitr, std::memory_order_relaxed);
  return false;
}

void SimNic::ItrTick(uint32_t q) {
  uint32_t remaining = itr_window_[q].load(std::memory_order_relaxed);
  if (remaining == 0) {
    return;
  }
  remaining = remaining > kNicItrUnitsPerTick ? remaining - kNicItrUnitsPerTick : 0;
  itr_window_[q].store(remaining, std::memory_order_relaxed);
  if (remaining != 0) {
    return;
  }
  // Window expired: the deferred MSI, but only if its cause is still both
  // pending and unmasked (the driver may have polled and acked meanwhile —
  // then the latch dissolves, exactly like a hardware timer finding ICR
  // clear).
  if (itr_pending_[q].exchange(0, std::memory_order_relaxed) == 0) {
    return;
  }
  uint32_t interesting = multi_queue() ? (NicIntRxQueue(q) | NicIntTxQueue(q)) : ~0u;
  if ((icr_.load(std::memory_order_relaxed) & ims_.load(std::memory_order_relaxed) &
       interesting) == 0) {
    return;
  }
  // Re-open the window before signalling: sustained load converges to one
  // MSI per window, the moderation contract.
  itr_window_[q].store(eitr_[q].load(std::memory_order_relaxed), std::memory_order_relaxed);
  if (multi_queue()) {
    (void)RaiseMsi(static_cast<uint8_t>(q));
  } else {
    (void)RaiseMsi();
  }
}

void SimNic::SetInterruptCause(uint32_t bits) {
  // MSIs are edge-triggered on the assertion of a new cause: if the
  // interrupt condition was already pending (driver has not read ICR yet),
  // no additional message is signalled, as on real hardware.
  uint32_t ims = ims_.load(std::memory_order_relaxed);
  uint32_t old_icr = icr_.fetch_or(bits, std::memory_order_relaxed);
  bool was_asserted = (old_icr & ims) != 0;
  if (!was_asserted && ((old_icr | bits) & ims) != 0 && !ItrGate(0)) {
    (void)RaiseMsi();
  }
}

void SimNic::RaiseQueueInterrupt(uint32_t q, uint32_t bits) {
  icr_.fetch_or(bits, std::memory_order_relaxed);
  if ((ims_.load(std::memory_order_relaxed) & bits) == 0) {
    return;
  }
  if (ItrGate(q)) {
    return;  // absorbed into the window's deferred MSI (ItrTick raises it)
  }
  // MSI-X-style auto-clear: each event signals its message; coalescing is
  // the kernel side's job (in-flight masking + per-vector pending), so a
  // wakeup can never be lost between the driver's poll and its ack.
  (void)RaiseMsi(static_cast<uint8_t>(q));
}

void SimNic::DropTxChainLocked(uint32_t q, const TxPendingDesc& last, bool eop) {
  // Bounded gather, mirroring the RX reassembly bound: drop the whole
  // pending frame, recycle every consumed descriptor with DD (the driver's
  // reap must stay live), and — unless this very descriptor carried the
  // terminating EOP — resync, recycling descriptors unparsed until it
  // arrives. Nothing of the dropped frame ever reaches the wire.
  hw::DescRingEngine& engine = engines_[q]->tx;
  stats_.tx_dropped_chain.fetch_add(1, std::memory_order_relaxed);
  for (const TxPendingDesc& pending : tx_chain_descs_[q]) {
    (void)PublishRetry(engine, pending.index,
                       static_cast<uint8_t>(pending.status | kNicDescStatusDone));
  }
  (void)PublishRetry(engine, last.index,
                     static_cast<uint8_t>(last.status | kNicDescStatusDone));
  tx_chain_frame_[q].clear();
  tx_chain_descs_[q].clear();
  tx_skip_to_eop_[q] = !eop;
}

void SimNic::ProcessTxRing(uint32_t q) {
  // Ring state (registers, descriptor DMA, head advance) mutates only under
  // queue_mu_[q]; the lock is dropped around the EtherLink hop so it is never
  // held while the peer NIC takes *its* queue lock in DeliverFrame — the
  // lock-order cycle two NICs on one link could otherwise build. Because the
  // head advances under the lock before the frame leaves, a concurrent
  // reaper (the device's Tick, or a racing doorbell write) processes each
  // descriptor exactly once — and because the engine serves consumed
  // descriptors from its cacheline burst snapshot, a driver rewriting a
  // descriptor after the fetch transmits nothing but what was armed.
  std::unique_lock<std::recursive_mutex> lock(queue_mu_[q]);
  RingRegs& regs = tx_q_[q];
  hw::DescRingEngine& engine = engines_[q]->tx;
  std::vector<uint8_t>& frame = tx_chain_frame_[q];
  std::vector<TxPendingDesc>& chain = tx_chain_descs_[q];
  std::vector<uint8_t> chunk_buf;  // one allocation per reap pass, not per frag
  // Completions published this pass — wire frames AND dropped/resynced
  // chains: the driver's reap needs a TXDW for recycled descriptors too, or
  // a dropped frame's buffers sit unreclaimed until the ring fills.
  bool completed_any = false;
  while ((tctl_.load(std::memory_order_relaxed) & kNicTctlEnable) != 0 && regs.size() != 0 &&
         regs.head != regs.tail) {
    engine.Configure(regs.base(), regs.size());
    Result<NicDescriptor> desc = engine.Fetch(regs.head, regs.owned());
    if (!desc.ok()) {
      // Descriptor fetch faulted in the IOMMU: the device stalls this queue,
      // which is precisely the "confined to its own sandbox" behaviour.
      break;
    }
    NicDescriptor d = desc.value();
    TxPendingDesc consumed{regs.head, d.status};
    bool eop = (d.cmd & kNicDescCmdEop) != 0;
    regs.head = (regs.head + 1) % regs.size();

    if (tx_skip_to_eop_[q]) {
      // Resyncing after a dropped chain: everything up to AND INCLUDING the
      // EOP that terminates the dropped frame belongs to it — recycled with
      // DD, never gathered, never transmitted.
      (void)PublishRetry(engine, consumed.index,
                         static_cast<uint8_t>(consumed.status | kNicDescStatusDone));
      completed_any = true;
      if (eop) {
        tx_skip_to_eop_[q] = false;
      }
      continue;
    }

    // Bound BEFORE any data DMA: a chain past the descriptor cap or the
    // jumbo frame maximum is the forged endless/over-cap TX chain.
    if (chain.size() + 1 > kern::kMaxChainFrags ||
        frame.size() + d.length > kern::kJumboMaxFrameBytes) {
      DropTxChainLocked(q, consumed, eop);
      completed_any = true;
      continue;
    }
    if (d.length > 0) {
      chunk_buf.resize(d.length);
      Status status = DmaRead(d.buffer_addr, ByteSpan(chunk_buf.data(), d.length));
      if (!status.ok()) {
        // Whole-frame-or-nothing: a fault anywhere in the chain (a fragment
        // aimed outside the IOMMU mappings) aborts the entire frame. The
        // fault is the confinement working; the device stays live.
        stats_.dma_errors.fetch_add(1, std::memory_order_relaxed);
        DropTxChainLocked(q, consumed, eop);
        completed_any = true;
        continue;
      }
      frame.insert(frame.end(), chunk_buf.begin(), chunk_buf.end());
    }
    chain.push_back(consumed);
    if (!eop) {
      // The frame continues in the next descriptor. A torn chain (the rest
      // never armed) parks right here: no completion, no wire bytes.
      continue;
    }

    // Whole frame gathered: publish every fragment's completion in ring
    // order (DD release-published last per descriptor), then the wire hop.
    for (const TxPendingDesc& pending : chain) {
      (void)PublishRetry(engine, pending.index,
                         static_cast<uint8_t>(pending.status | kNicDescStatusDone));
    }
    stats_.tx_frames.fetch_add(1, std::memory_order_relaxed);
    queue_stats_[q].tx_frames.fetch_add(1, std::memory_order_relaxed);
    if (chain.size() > 1) {
      stats_.tx_chain_frames.fetch_add(1, std::memory_order_relaxed);
      stats_.tx_chain_descs.fetch_add(chain.size(), std::memory_order_relaxed);
    }
    chain.clear();
    completed_any = true;
    if (link_ != nullptr && !frame.empty()) {
      // Move the gathered bytes out so the pending state is clean while the
      // lock is dropped for the hop.
      std::vector<uint8_t> wire;
      wire.swap(frame);
      lock.unlock();
      (void)link_->Transmit(link_side_, ConstByteSpan(wire.data(), wire.size()));
      lock.lock();
    } else {
      frame.clear();
    }
  }
  AccumulateEngineStats(engine, &engines_[q]->tx_folded);
  lock.unlock();
  if (completed_any) {
    // Raised after the lock is dropped: the MSI dispatch can synchronously
    // run an in-kernel driver's reap, which re-enters through the doorbell.
    if (multi_queue()) {
      RaiseQueueInterrupt(q, NicIntTxQueue(q));
    } else {
      SetInterruptCause(kNicIntTxDone);
    }
  }
}

SimNic::RxOutcome SimNic::ReceiveIntoRingLocked(uint32_t q, ConstByteSpan frame) {
  RingRegs& regs = rx_q_[q];
  uint32_t rctl = rctl_.load(std::memory_order_relaxed);
  if ((rctl & kNicRctlEnable) == 0 || regs.size() == 0) {
    return RxOutcome::kNoDesc;
  }
  // Long frames require RCTL.LPE, exactly like real silicon: without it an
  // oversize frame is dropped at the MAC, counted, and nothing is published.
  // Even with LPE the MAC has an absolute maximum (the jumbo frame size) —
  // nothing larger ever touches a descriptor.
  if ((frame.size() > kern::kStdMaxFrameBytes && (rctl & kNicRctlJumboEnable) == 0) ||
      frame.size() > kern::kJumboMaxFrameBytes) {
    stats_.rx_dropped_oversize.fetch_add(1, std::memory_order_relaxed);
    return RxOutcome::kDropped;
  }
  uint32_t bufsz = EffectiveRxBufBytes(regs);
  uint32_t needed = static_cast<uint32_t>((frame.size() + bufsz - 1) / bufsz);
  if (needed == 0) {
    needed = 1;
  }
  if (needed > kern::kMaxChainFrags) {
    // The chain cap: no buffer-size program a malicious driver picks can
    // make the device publish an unbounded descriptor chain.
    stats_.rx_dropped_oversize.fetch_add(1, std::memory_order_relaxed);
    return RxOutcome::kDropped;
  }
  // RDH == RDT means the ring is empty of armed descriptors; a chain needs
  // `needed` of them or the whole frame waits (no partial chains, ever).
  if (regs.owned() < needed) {
    return RxOutcome::kNoDesc;
  }
  uint64_t ring_base = regs.base();
  hw::DescRingEngine& engine = engines_[q]->rx;
  engine.Configure(ring_base, regs.size());
  // Pass 1: fetch the chain's descriptors (cacheline bursts) and DMA each
  // chunk into its buffer. Any fault — descriptor outside the IOMMU
  // mappings, buffer aimed at a victim — aborts the WHOLE frame before any
  // completion is published: the ring never carries a half-written chain.
  NicDescriptor chain_desc[kern::kMaxChainFrags];
  size_t off = 0;
  for (uint32_t i = 0; i < needed; ++i) {
    uint32_t index = (regs.head + i) % regs.size();
    uint32_t owned_here = (regs.tail + regs.size() - index) % regs.size();
    Result<NicDescriptor> desc = engine.Fetch(index, owned_here);
    if (!desc.ok()) {
      // The fetch faulted in the IOMMU (or an injected transient fault): the
      // whole frame is dropped, and counted — never a silent loss.
      stats_.rx_dropped_dma.fetch_add(1, std::memory_order_relaxed);
      AccumulateEngineStats(engine, &engines_[q]->rx_folded);
      return RxOutcome::kDropped;
    }
    chain_desc[i] = desc.value();
    size_t chunk = frame.size() - off < bufsz ? frame.size() - off : bufsz;
    Status status = DmaWrite(chain_desc[i].buffer_addr, frame.subspan(off, chunk));
    if (!status.ok()) {
      stats_.dma_errors.fetch_add(1, std::memory_order_relaxed);
      stats_.rx_dropped_dma.fetch_add(1, std::memory_order_relaxed);
      AccumulateEngineStats(engine, &engines_[q]->rx_folded);
      return RxOutcome::kDropped;
    }
    off += chunk;
  }
  // Pass 2: completion writeback in ring order — per descriptor the chunk
  // length first, then the status byte (DD, plus EOP only on the last)
  // release-published last, so a driver thread polling this chain
  // concurrently never observes DD with a stale length, in every mode.
  off = 0;
  for (uint32_t i = 0; i < needed; ++i) {
    uint32_t index = (regs.head + i) % regs.size();
    size_t chunk = frame.size() - off < bufsz ? frame.size() - off : bufsz;
    Status wrote = engine.WriteBackLength(index, static_cast<uint16_t>(chunk));
    for (int retry = 0; !wrote.ok() && retry < kWritebackRetries; ++retry) {
      stats_.dma_errors.fetch_add(1, std::memory_order_relaxed);
      wrote = engine.WriteBackLength(index, static_cast<uint16_t>(chunk));
    }
    uint8_t status = kNicDescStatusDone;
    if (i + 1 == needed) {
      status |= kNicDescStatusEop;
    }
    if (wrote.ok()) {
      wrote = PublishRetry(engine, index, status);
    }
    if (!wrote.ok()) {
      if (i == 0) {
        // Nothing published yet: the head has not advanced, so the frame can
        // still be dropped WHOLE and counted — the slot is reused for the
        // next delivery.
        stats_.rx_dropped_dma.fetch_add(1, std::memory_order_relaxed);
        AccumulateEngineStats(engine, &engines_[q]->rx_folded);
        return RxOutcome::kDropped;
      }
      // Mid-chain hole after retries: earlier descriptors are already
      // published, so the frame cannot be withdrawn. PublishRetry logged it;
      // only a persistently faulting (malicious) ring reaches this.
    }
    off += chunk;
  }
  regs.head = (regs.head + needed) % regs.size();
  stats_.rx_frames.fetch_add(1, std::memory_order_relaxed);
  queue_stats_[q].rx_frames.fetch_add(1, std::memory_order_relaxed);
  if (needed > 1) {
    stats_.rx_chain_frames.fetch_add(1, std::memory_order_relaxed);
    stats_.rx_chain_descs.fetch_add(needed, std::memory_order_relaxed);
  }
  AccumulateEngineStats(engine, &engines_[q]->rx_folded);
  // The interrupt is raised by the caller AFTER the queue lock is released:
  // a synchronous in-kernel dispatch can transmit a reply from inside the
  // handler, and its doorbell must find this queue's lock free (see the
  // threading comment in the header).
  return RxOutcome::kDelivered;
}

void SimNic::RaiseRxInterrupt(uint32_t q, uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) {
    if (multi_queue()) {
      RaiseQueueInterrupt(q, NicIntRxQueue(q));
    } else {
      SetInterruptCause(kNicIntRx);
    }
  }
}

void SimNic::DeliverFrame(ConstByteSpan frame) {
  uint32_t q = SteerQueue(frame);
  RxOutcome outcome;
  {
    std::lock_guard<std::recursive_mutex> lock(queue_mu_[q]);
    outcome = ReceiveIntoRingLocked(q, frame);
    if (outcome == RxOutcome::kNoDesc) {
      if (rx_backlog_[q].size() >= kRxBacklogMax) {
        stats_.rx_dropped_no_desc.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      rx_backlog_[q].emplace_back(frame.begin(), frame.end());
    }
  }
  if (outcome == RxOutcome::kDelivered) {
    RaiseRxInterrupt(q, 1);
  }
}

uint64_t SimNic::DrainBacklogLocked(uint32_t q) {
  uint64_t drained = 0;
  while (!rx_backlog_[q].empty()) {
    const std::vector<uint8_t>& frame = rx_backlog_[q].front();
    RxOutcome outcome = ReceiveIntoRingLocked(q, ConstByteSpan(frame.data(), frame.size()));
    if (outcome == RxOutcome::kNoDesc) {
      break;
    }
    rx_backlog_[q].pop_front();
    if (outcome == RxOutcome::kDelivered) {
      ++drained;
    }
    // kDropped frames (oversize without LPE, chain cap, DMA fault) leave the
    // backlog too — already counted, and retrying them can never succeed.
  }
  return drained;
}

void SimNic::Tick() {
  for (uint32_t q = 0; q < kNicNumQueues; ++q) {
    uint64_t drained = 0;
    {
      std::lock_guard<std::recursive_mutex> lock(queue_mu_[q]);
      drained = DrainBacklogLocked(q);
    }
    RaiseRxInterrupt(q, drained);
    // Device-side TX reap: real silicon fetches armed descriptors on its own
    // schedule, not only at the doorbell edge. (No-op when head == tail.)
    ProcessTxRing(q);
    // The moderation timer advances on the device's own clock, outside every
    // queue lock (the deferred MSI can synchronously run a driver handler).
    ItrTick(q);
  }
}

}  // namespace sud::devices
