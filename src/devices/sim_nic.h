// SimNic: an e1000e-class Gigabit Ethernet controller.
//
// Register-level model of the Intel 8254x/e1000e programming interface that
// the paper's headline driver targets: legacy 16-byte TX/RX descriptors in
// DMA memory, head/tail doorbells, an interrupt cause register with
// mask-set/mask-clear, receive-address (MAC) registers and an MDIC window to
// the PHY. The driver in src/drivers/e1000e.cc programs this device the same
// way the real e1000e programs real silicon.
//
// Multi-queue: the device exposes kNicNumQueues independent TX/RX descriptor
// ring pairs, each behind its own register block (0x100 stride, the 82574
// layout generalised), with receive-side scaling steering incoming frames by
// a flow hash (kern::FlowHash — the same function the kernel's transmit
// steering uses, so a flow maps to one queue in both directions). A
// driver-programmable 128-entry RSS indirection table (RETA, the 82574's
// 0x5C00 register block) maps hash buckets to queues once programmed;
// unprogrammed it behaves exactly like the historical hash % queues. Queue q
// signals completion on multi-message MSI vector index q. Queue 0 at the
// legacy offsets with MRQC unprogrammed behaves bit-for-bit like the
// single-queue device of earlier revisions.
//
// Descriptor engine: all descriptor DMA goes through the shared
// hw::DescRingEngine (one per queue per direction), which fetches
// descriptors in cacheline bursts — up to four per fabric transaction, never
// past the descriptors the device owns — and serves consumed descriptors
// from the burst snapshot. A driver that rewrites a descriptor after the
// burst was fetched (the mid-burst rewrite attack) changes nothing: the
// device uses its captured copy, exactly once.
//
// Jumbo frames: frames larger than the driver-programmed per-descriptor
// buffer size (the RX block's SRRCTL-style field; 2048 when unprogrammed)
// are scattered across consecutive descriptors as an EOP chain — DD
// published per descriptor in order, the EOP status bit set only on the
// last. Frames above the standard maximum require RCTL.LPE; chains are
// capped at kern::kMaxChainFrags descriptors no matter what buffer size a
// malicious driver programs, and a frame that cannot be scattered is dropped
// and counted, never partially published.
//
// TX scatter/gather: transmit descriptors whose CMD.EOP is clear continue
// the frame in the next descriptor; the device GATHERS the chain whole-
// frame-or-nothing — every fragment's data is fetched and appended before
// any completion publishes or a byte reaches the wire. The gather is bounded
// exactly like RX reassembly: a chain that outgrows kern::kMaxChainFrags
// descriptors or the jumbo frame maximum without presenting EOP (the forged
// endless/over-cap TX chain) is dropped whole, counted, its descriptors
// recycled with DD, and the ring resynced to the EOP that terminates the
// dropped frame; a torn chain (armed fragments, EOP never rung) simply
// parks — nothing of it ever reaches the wire. A data DMA fault mid-chain
// aborts the whole frame the same way (confined, the device stays live).
//
// Threading: with a sharded uchan, each queue is pumped by its own driver
// thread, and with threaded traffic-generator peers each queue's receive-side
// DMA runs on the delivering generator's thread. ALL of queue q's ring state
// — RX and TX rings, descriptor engines, backlog, doorbells — is guarded by
// the per-queue recursive lock queue_mu_[q]. Two invariants keep the locking
// sound:
//
//  1. Interrupts are raised OUTSIDE the queue locks. A synchronous in-kernel
//     dispatch can run a driver handler that re-enters the device through any
//     doorbell (reap, re-arm, even a reply transmit); raising after the lock
//     is released means that re-entry always finds the queue lock free.
//  2. The lock is never held across the EtherLink hop: the TX path stages a
//     frame, drops the lock, and transmits. Together with (1) — which
//     guarantees ProcessTxRing is only ever entered at recursion depth zero,
//     so its unlock really releases — two NICs on one link can never
//     deadlock against each other's queue locks.
//
// Consequence: per-queue TX wire order is guaranteed only while a single
// thread writes that queue's TDT AND no concurrent device-side reaper (Tick
// on another thread) is running; concurrent reapers still get exactly-once
// descriptor processing, but frames may interleave on the wire. Shared
// registers that the delivery threads read while the driver rewrites them
// (MRQC, RCTL, TCTL, the RETA bytes) and the cause/mask registers and stats
// are atomics; MRQC is clamped to the implemented queue count at write time
// and every RETA lookup is reduced modulo the live queue count, so receive
// steering is always in-bounds, even mid-rewrite.
//
// Everything the device does to memory goes through PciDevice::DmaRead/
// DmaWrite — i.e. through the switch, ACS and the IOMMU. A malicious driver
// can point descriptors anywhere it likes; whether the resulting DMA lands
// is decided entirely by the confinement hardware, which is the paper's
// central claim.

#ifndef SUD_SRC_DEVICES_SIM_NIC_H_
#define SUD_SRC_DEVICES_SIM_NIC_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "src/base/status.h"
#include "src/devices/ether_link.h"
#include "src/hw/desc_ring.h"
#include "src/hw/pci_device.h"

namespace sud::devices {

// Number of TX/RX descriptor ring pairs (and MSI messages) the device
// implements. Drivers may use any prefix of them.
inline constexpr uint32_t kNicNumQueues = 8;

// Register offsets (subset of the e1000e map).
inline constexpr uint64_t kNicRegCtrl = 0x0000;
inline constexpr uint64_t kNicRegStatus = 0x0008;
inline constexpr uint64_t kNicRegMdic = 0x0020;
inline constexpr uint64_t kNicRegIcr = 0x00c0;  // interrupt cause, read-clears
inline constexpr uint64_t kNicRegIms = 0x00d0;  // interrupt mask set
inline constexpr uint64_t kNicRegImc = 0x00d8;  // interrupt mask clear
inline constexpr uint64_t kNicRegRctl = 0x0100;
inline constexpr uint64_t kNicRegTctl = 0x0400;
// Queue 0 ring registers sit at the legacy offsets; queue q's block is the
// same layout at +q * kNicQueueRegStride.
inline constexpr uint64_t kNicQueueRegStride = 0x100;
inline constexpr uint64_t kNicRegRdbal = 0x2800;
inline constexpr uint64_t kNicRegRdbah = 0x2804;
inline constexpr uint64_t kNicRegRdlen = 0x2808;
// SRRCTL-style per-descriptor RX buffer size in bytes (0 = the 2048-byte
// default). Lives in the RX block so it shards per queue like the rest.
inline constexpr uint64_t kNicRegRdbsz = 0x280c;
inline constexpr uint64_t kNicRegRdh = 0x2810;
inline constexpr uint64_t kNicRegRdt = 0x2818;
inline constexpr uint64_t kNicRegTdbal = 0x3800;
inline constexpr uint64_t kNicRegTdbah = 0x3804;
inline constexpr uint64_t kNicRegTdlen = 0x3808;
inline constexpr uint64_t kNicRegTdh = 0x3810;
inline constexpr uint64_t kNicRegTdt = 0x3818;
inline constexpr uint64_t kNicRegRal0 = 0x5400;
inline constexpr uint64_t kNicRegRah0 = 0x5404;
// RSS indirection table: 128 byte-wide entries packed into 32 dwords at the
// 82574's RETA offset. Each byte names the queue its hash bucket steers to.
inline constexpr uint64_t kNicRegReta = 0x5c00;
inline constexpr uint32_t kNicRetaEntries = 128;
// RSS random key (RSSRK): the driver-programmable 40-byte hash key, 10
// dwords right after the RETA block (the 82574 layout). The device folds the
// key into the two endpoint salts of kern::FlowHashKeyed at write time; an
// all-zero (or never-programmed) key folds to zero salts, which reproduces
// the historical unkeyed steering bit-for-bit. ANY key value steers
// in-bounds — the hash feeds the same %-reductions the RETA path already
// clamps with — so a hostile key can skew the spread but never escape it.
inline constexpr uint64_t kNicRegRssrk = 0x5c80;
inline constexpr uint32_t kNicRssKeyDwords = 10;
// Per-queue interrupt throttle (EITR-style): minimum gap between MSI
// messages for queue q, in 256 ns units (bits 15:0; 0 disables moderation,
// which is the reset state — all historical interrupt behaviour is
// bit-identical until a driver programs a nonzero value). The throttle
// clock advances kNicItrUnitsPerTick units per SimNic::Tick; an event
// arriving inside the window sets a pending latch (counted in
// stats.itr_suppressed) and the expiring timer raises ONE deferred MSI for
// the whole window.
inline constexpr uint64_t kNicRegEitr = 0x1680;  // + 4 * queue
inline constexpr uint32_t kNicItrUnitNs = 256;
inline constexpr uint32_t kNicItrUnitsPerTick = 32;  // ~8.2 us of timer per Tick
// Multiple receive queues command: the number of RSS queues (0 or 1 =
// single-queue legacy behaviour; 2..kNicNumQueues = multi-queue mode with
// per-queue MSI messages and auto-cleared per-queue causes).
inline constexpr uint64_t kNicRegMrqc = 0x5818;

// CTRL bits.
inline constexpr uint32_t kNicCtrlReset = 1u << 26;
// STATUS bits.
inline constexpr uint32_t kNicStatusLinkUp = 1u << 1;
// RCTL/TCTL bits.
inline constexpr uint32_t kNicRctlEnable = 1u << 1;
// RCTL.LPE: long packet enable — frames above the standard 1514-byte
// maximum are dropped (and counted) unless the driver sets this.
inline constexpr uint32_t kNicRctlJumboEnable = 1u << 5;
inline constexpr uint32_t kNicTctlEnable = 1u << 1;
// Interrupt cause bits. Legacy aggregate bits are raised in single-queue
// mode; per-queue bits occupy [8..15] (RX queue q) and [16..23] (TX queue q).
inline constexpr uint32_t kNicIntTxDone = 1u << 0;   // TXDW
inline constexpr uint32_t kNicIntRx = 1u << 7;       // RXT0
inline constexpr uint32_t kNicIntLinkChange = 1u << 2;
inline constexpr uint32_t NicIntRxQueue(uint32_t q) { return 1u << (8 + q); }
inline constexpr uint32_t NicIntTxQueue(uint32_t q) { return 1u << (16 + q); }
inline constexpr uint32_t kNicIntAllQueues = 0x00ffff00u;
// RAH valid bit.
inline constexpr uint32_t kNicRahValid = 1u << 31;

// Legacy descriptor bits and layout now live in the shared engine
// (src/hw/desc_ring.h); the historical names remain for the drivers/tests.
inline constexpr uint8_t kNicDescCmdEop = hw::kDescCmdEop;
inline constexpr uint8_t kNicDescCmdReportStatus = hw::kDescCmdReportStatus;
inline constexpr uint8_t kNicDescStatusDone = hw::kDescStatusDone;
inline constexpr uint8_t kNicDescStatusEop = hw::kDescStatusEop;
using NicDescriptor = hw::RingDescriptor;

class SimNic : public hw::PciDevice, public EtherEndpoint {
 public:
  SimNic(std::string name, const uint8_t mac[6]);

  void ConnectLink(EtherLink* link, int side);

  // hw::PciDevice
  uint32_t MmioRead(int bar, uint64_t offset) override;
  void MmioWrite(int bar, uint64_t offset, uint32_t value) override;
  void Reset() override;
  // Device-autonomous work: drains each queue's RX backlog into freshly armed
  // descriptors and reaps any armed TX descriptors (real NICs fetch armed
  // descriptors on their own schedule, not only at the doorbell write — this
  // is what lets a second thread play "the device" against a doorbell
  // hammerer in the TX locking regression test).
  void Tick() override;

  // EtherEndpoint — a frame arrives from the wire. RSS-steers it to a queue.
  void DeliverFrame(ConstByteSpan frame) override;

  struct Stats {
    std::atomic<uint64_t> tx_frames{0};
    std::atomic<uint64_t> rx_frames{0};
    std::atomic<uint64_t> rx_dropped_no_desc{0};
    std::atomic<uint64_t> rx_dropped_oversize{0};  // LPE off, or chain cap hit
    std::atomic<uint64_t> rx_chain_frames{0};      // frames scattered over >1 descriptor
    std::atomic<uint64_t> rx_chain_descs{0};       // descriptors those frames used
    std::atomic<uint64_t> tx_chain_frames{0};      // frames gathered from >1 descriptor
    std::atomic<uint64_t> tx_chain_descs{0};       // descriptors those frames spanned
    // Forged endless/over-cap TX chains (and mid-chain data faults) dropped
    // whole: descriptors recycled, nothing on the wire, device live.
    std::atomic<uint64_t> tx_dropped_chain{0};
    std::atomic<uint64_t> dma_errors{0};  // descriptor/buffer DMA faulted (confined)
    // RX frames dropped whole because a descriptor fetch or buffer write
    // faulted: the conservation counter for the receive DMA path (dma_errors
    // above stays the raw fault diagnostic and overlaps tx_dropped_chain on
    // transmit faults, so audits sum THIS plus tx_dropped_chain instead).
    std::atomic<uint64_t> rx_dropped_dma{0};
    // Descriptor-engine fabric accounting, summed over every queue:
    // transactions that fetched descriptors (cacheline bursts), descriptors
    // they carried, and completion writebacks.
    std::atomic<uint64_t> desc_fetch_dma{0};
    std::atomic<uint64_t> desc_fetched{0};
    std::atomic<uint64_t> desc_writeback_dma{0};
    // Interrupt-moderation accounting: events whose MSI the EITR throttle
    // absorbed into the window's single deferred message.
    std::atomic<uint64_t> itr_suppressed{0};
    // RETA dword writes (32 per full table program): the audit counter the
    // forged-load-stats attack cells bound the reprogram rate with.
    std::atomic<uint64_t> reta_writes{0};
  };
  const Stats& stats() const { return stats_; }
  struct QueueStats {
    std::atomic<uint64_t> tx_frames{0};
    std::atomic<uint64_t> rx_frames{0};
  };
  const QueueStats& queue_stats(uint32_t q) const { return queue_stats_[q]; }
  const uint8_t* mac() const { return mac_.data(); }
  bool link_up() const { return link_ != nullptr; }
  // RSS queues currently enabled by MRQC (1 when unprogrammed).
  uint32_t rss_queues() const;
  // The queue the device would steer `frame` to right now (RETA when
  // programmed, hash % queues otherwise). Exposed for tests/benches.
  uint32_t SteerQueue(ConstByteSpan frame) const;
  // Audit read-back of the live indirection table (the pre-masked bytes the
  // steering path actually consults) — what the attack matrix checks stays
  // in-bounds and what the supervisor replay test compares after recovery.
  std::array<uint8_t, kNicRetaEntries> RetaSnapshot() const;
  bool reta_programmed() const { return reta_programmed_.load(std::memory_order_relaxed); }

 private:
  // Per-queue ring doorbell/geometry registers (one block per queue).
  struct RingRegs {
    uint32_t bal = 0, bah = 0, len = 0, head = 0, tail = 0;
    uint32_t bufsz = 0;  // RX only: per-descriptor buffer bytes (0 = default)
    uint64_t base() const { return (static_cast<uint64_t>(bah) << 32) | bal; }
    uint32_t size() const { return len / 16; }
    // Armed descriptors the device owns, starting at `head`.
    uint32_t owned() const {
      return size() == 0 ? 0 : (tail + size() - head) % size();
    }
  };
  // DescRingEngine memory adapter: descriptor DMA through the fabric, with
  // faults folded into the device's dma_errors counter.
  class FabricRingMem : public hw::RingMem {
   public:
    explicit FabricRingMem(SimNic* nic) : nic_(nic) {}
    Status Read(uint64_t addr, ByteSpan out) override;
    Status Write(uint64_t addr, ConstByteSpan bytes) override;

   private:
    SimNic* nic_;
  };
  // One engine per queue per direction, all state under queue_mu_[q]. The
  // folded snapshots track what each engine's counters already contributed
  // to stats_ (engines count cumulatively; stats_ folds deltas per pass).
  struct QueueEngines {
    explicit QueueEngines(SimNic* nic) : mem(nic), rx(&mem), tx(&mem) {}
    FabricRingMem mem;
    hw::DescRingEngine rx;
    hw::DescRingEngine tx;
    hw::DescRingEngine::Stats rx_folded;
    hw::DescRingEngine::Stats tx_folded;
  };

  bool multi_queue() const { return mrqc_.load(std::memory_order_relaxed) > 1; }
  // Per-queue ring register decode shared by RX/TX reads and writes.
  static uint32_t* RingField(RingRegs& regs, uint64_t reg_offset, bool is_rx);
  static bool DecodeQueueReg(uint64_t offset, bool* is_rx, uint32_t* queue, uint64_t* reg_offset);
  // The usable per-descriptor RX buffer size queue q is programmed for.
  static uint32_t EffectiveRxBufBytes(const RingRegs& regs);
  // Reaps queue q's armed TX descriptors. Takes queue_mu_[q] itself; the lock
  // is released around each EtherLink::Transmit (see the threading comment).
  void ProcessTxRing(uint32_t q);
  // PublishStatus with bounded retries through transient DMA faults (each
  // fault counted in dma_errors): a swallowed completion writeback would
  // strand a descriptor the driver's in-order reap can never pass.
  Status PublishRetry(hw::DescRingEngine& engine, uint32_t index, uint8_t status);
  // Writes one frame into queue q's ring, scattering it across an EOP chain
  // when it exceeds the per-descriptor buffer size. The caller raises the RX
  // interrupt (one per delivered frame) AFTER releasing queue_mu_[q].
  enum class RxOutcome { kDelivered, kNoDesc, kDropped };
  RxOutcome ReceiveIntoRingLocked(uint32_t q, ConstByteSpan frame);
  // Returns how many backlogged frames entered the ring (the caller raises
  // that many RX interrupts after unlocking).
  uint64_t DrainBacklogLocked(uint32_t q);
  void RaiseRxInterrupt(uint32_t q, uint64_t count);
  // Folds one engine's counter growth since `folded` into stats_ (called at
  // the end of each ring pass, under the queue lock).
  void AccumulateEngineStats(const hw::DescRingEngine& engine,
                             hw::DescRingEngine::Stats* folded);
  // Single-queue (legacy) cause assertion: level-ish on ICR & IMS edges.
  void SetInterruptCause(uint32_t bits);
  // Multi-queue cause assertion for queue q: MSI-X-style auto-clearing
  // causes — every event signals message q (the safe-PCI layer's in-flight
  // coalescing, masking and per-vector pending bits bound the storm).
  void RaiseQueueInterrupt(uint32_t q, uint32_t bits);

  std::array<uint8_t, 6> mac_;
  EtherLink* link_ = nullptr;
  int link_side_ = 0;

  // Register state. RCTL/TCTL/MRQC are atomics: the driver rewrites them on
  // its own thread while every delivering generator thread reads them on the
  // receive path (and any doorbell writer on the transmit path). MRQC is
  // stored pre-clamped to [0, kNicNumQueues].
  uint32_t ctrl_ = 0;
  std::atomic<uint32_t> icr_{0};
  std::atomic<uint32_t> ims_{0};
  std::atomic<uint32_t> rctl_{0};
  std::atomic<uint32_t> tctl_{0};
  std::atomic<uint32_t> mrqc_{0};
  std::array<RingRegs, kNicNumQueues> tx_q_{};
  std::array<RingRegs, kNicNumQueues> rx_q_{};
  uint32_t ral0_ = 0, rah0_ = 0;
  uint32_t mdic_ = 0;

  // RSS indirection table. Byte-wide atomics: the driver reprograms entries
  // while delivery threads steer by them; entries are stored pre-masked to
  // the implemented queue count and reduced modulo the live MRQC count at
  // lookup, so steering is in-bounds even mid-rewrite. reta_programmed_
  // keeps the unprogrammed device bit-compatible with hash % queues.
  std::array<std::atomic<uint8_t>, kNicRetaEntries> reta_{};
  std::atomic<bool> reta_programmed_{false};

  // RSS key (RSSRK) dwords plus the two endpoint salts they fold to. The
  // fold is recomputed at write time; delivery threads read the salts
  // relaxed — a lookup racing a reprogram may mix old/new salts for one
  // frame, which mis-SPREADS but can never mis-BOUND (the hash output is
  // %-reduced downstream regardless).
  std::array<std::atomic<uint32_t>, kNicRssKeyDwords> rssrk_{};
  std::atomic<uint64_t> rss_dst_salt_{0};
  std::atomic<uint64_t> rss_src_salt_{0};
  void RefoldRssKey();

  // EITR state: per-queue throttle value, remaining window units, and the
  // pending latch. All atomics — events arrive on delivery threads, the
  // timer advances on whichever thread calls Tick.
  std::array<std::atomic<uint32_t>, kNicNumQueues> eitr_{};
  std::array<std::atomic<uint32_t>, kNicNumQueues> itr_window_{};
  std::array<std::atomic<uint8_t>, kNicNumQueues> itr_pending_{};
  // True = this event's MSI is absorbed (window open, pending latched);
  // false = raise now (and a fresh window opens if moderation is on).
  bool ItrGate(uint32_t q);
  // One Tick of the queue's throttle clock: close expired windows and raise
  // the deferred MSI the pending latch owes. Called OUTSIDE the queue locks.
  void ItrTick(uint32_t q);

  // Frames that arrived while queue q had no armed RX descriptor.
  std::array<std::deque<std::vector<uint8_t>>, kNicNumQueues> rx_backlog_;
  static constexpr size_t kRxBacklogMax = 64;  // per queue

  // In-progress TX gather, all under queue_mu_[q]: the frame bytes fetched so
  // far and the consumed descriptors awaiting the chain's EOP (index plus the
  // armed status byte the completion writeback must preserve). A partial
  // chain parks here across doorbells — it never touches the wire. The
  // resync flag mirrors the RX reassembly bound: after a dropped chain,
  // descriptors are recycled (DD, unparsed) until the EOP that terminates
  // the dropped frame passes by.
  struct TxPendingDesc {
    uint32_t index;
    uint8_t status;
  };
  std::array<std::vector<uint8_t>, kNicNumQueues> tx_chain_frame_;
  std::array<std::vector<TxPendingDesc>, kNicNumQueues> tx_chain_descs_;
  std::array<bool, kNicNumQueues> tx_skip_to_eop_{};
  // Drops the pending chain plus descriptor `last` (recycling everything
  // with DD) and arms the resync unless `last` carried the EOP.
  void DropTxChainLocked(uint32_t q, const TxPendingDesc& last, bool eop);

  // Guards ALL of queue q's ring state: RX and TX ring registers, descriptor
  // processing (including the descriptor engines), and the backlog (it was
  // historically named rx_mu_, but the TX doorbell and reap paths take it
  // too — the rename matches its role). Still recursive as defence in depth:
  // interrupts are raised outside the locks (see the threading comment), so
  // no in-tree path re-enters while holding it, but a hostile driver
  // reaching MMIO from inside an MMIO-triggered callback must deadlock
  // itself, not the kernel.
  mutable std::array<std::recursive_mutex, kNicNumQueues> queue_mu_;

  std::array<std::unique_ptr<QueueEngines>, kNicNumQueues> engines_;

  Stats stats_;
  std::array<QueueStats, kNicNumQueues> queue_stats_;
};

}  // namespace sud::devices

#endif  // SUD_SRC_DEVICES_SIM_NIC_H_
