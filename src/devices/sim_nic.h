// SimNic: an e1000e-class Gigabit Ethernet controller.
//
// Register-level model of the Intel 8254x/e1000e programming interface that
// the paper's headline driver targets: legacy 16-byte TX/RX descriptors in
// DMA memory, head/tail doorbells, an interrupt cause register with
// mask-set/mask-clear, receive-address (MAC) registers and an MDIC window to
// the PHY. The driver in src/drivers/e1000e.cc programs this device the same
// way the real e1000e programs real silicon.
//
// Everything the device does to memory goes through PciDevice::DmaRead/
// DmaWrite — i.e. through the switch, ACS and the IOMMU. A malicious driver
// can point descriptors anywhere it likes; whether the resulting DMA lands
// is decided entirely by the confinement hardware, which is the paper's
// central claim.

#ifndef SUD_SRC_DEVICES_SIM_NIC_H_
#define SUD_SRC_DEVICES_SIM_NIC_H_

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/base/status.h"
#include "src/devices/ether_link.h"
#include "src/hw/pci_device.h"

namespace sud::devices {

// Register offsets (subset of the e1000e map).
inline constexpr uint64_t kNicRegCtrl = 0x0000;
inline constexpr uint64_t kNicRegStatus = 0x0008;
inline constexpr uint64_t kNicRegMdic = 0x0020;
inline constexpr uint64_t kNicRegIcr = 0x00c0;  // interrupt cause, read-clears
inline constexpr uint64_t kNicRegIms = 0x00d0;  // interrupt mask set
inline constexpr uint64_t kNicRegImc = 0x00d8;  // interrupt mask clear
inline constexpr uint64_t kNicRegRctl = 0x0100;
inline constexpr uint64_t kNicRegTctl = 0x0400;
inline constexpr uint64_t kNicRegRdbal = 0x2800;
inline constexpr uint64_t kNicRegRdbah = 0x2804;
inline constexpr uint64_t kNicRegRdlen = 0x2808;
inline constexpr uint64_t kNicRegRdh = 0x2810;
inline constexpr uint64_t kNicRegRdt = 0x2818;
inline constexpr uint64_t kNicRegTdbal = 0x3800;
inline constexpr uint64_t kNicRegTdbah = 0x3804;
inline constexpr uint64_t kNicRegTdlen = 0x3808;
inline constexpr uint64_t kNicRegTdh = 0x3810;
inline constexpr uint64_t kNicRegTdt = 0x3818;
inline constexpr uint64_t kNicRegRal0 = 0x5400;
inline constexpr uint64_t kNicRegRah0 = 0x5404;

// CTRL bits.
inline constexpr uint32_t kNicCtrlReset = 1u << 26;
// STATUS bits.
inline constexpr uint32_t kNicStatusLinkUp = 1u << 1;
// RCTL/TCTL bits.
inline constexpr uint32_t kNicRctlEnable = 1u << 1;
inline constexpr uint32_t kNicTctlEnable = 1u << 1;
// Interrupt cause bits.
inline constexpr uint32_t kNicIntTxDone = 1u << 0;   // TXDW
inline constexpr uint32_t kNicIntRx = 1u << 7;       // RXT0
inline constexpr uint32_t kNicIntLinkChange = 1u << 2;
// RAH valid bit.
inline constexpr uint32_t kNicRahValid = 1u << 31;

// Legacy descriptor command/status bits.
inline constexpr uint8_t kNicDescCmdEop = 1u << 0;
inline constexpr uint8_t kNicDescCmdReportStatus = 1u << 3;
inline constexpr uint8_t kNicDescStatusDone = 1u << 0;  // DD

// Legacy 16-byte descriptor, shared by TX and RX rings.
struct NicDescriptor {
  uint64_t buffer_addr = 0;
  uint16_t length = 0;
  uint8_t cso = 0;
  uint8_t cmd = 0;
  uint8_t status = 0;
  uint8_t css = 0;
  uint16_t special = 0;
};
static_assert(sizeof(NicDescriptor) == 16, "descriptor must be 16 bytes");

class SimNic : public hw::PciDevice, public EtherEndpoint {
 public:
  SimNic(std::string name, const uint8_t mac[6]);

  void ConnectLink(EtherLink* link, int side);

  // hw::PciDevice
  uint32_t MmioRead(int bar, uint64_t offset) override;
  void MmioWrite(int bar, uint64_t offset, uint32_t value) override;
  void Reset() override;
  void Tick() override;

  // EtherEndpoint — a frame arrives from the wire.
  void DeliverFrame(ConstByteSpan frame) override;

  struct Stats {
    uint64_t tx_frames = 0;
    uint64_t rx_frames = 0;
    uint64_t rx_dropped_no_desc = 0;
    uint64_t dma_errors = 0;  // descriptor/buffer DMA faulted (confined)
  };
  const Stats& stats() const { return stats_; }
  const uint8_t* mac() const { return mac_.data(); }
  bool link_up() const { return link_ != nullptr; }

 private:
  void ProcessTxRing();
  bool ReceiveIntoRing(ConstByteSpan frame);
  Result<NicDescriptor> ReadDescriptor(uint64_t ring_base, uint32_t index);
  Status WriteBackDescriptor(uint64_t ring_base, uint32_t index, const NicDescriptor& desc);
  void SetInterruptCause(uint32_t bits);
  uint32_t TxRingSize() const { return tdlen_ / 16; }
  uint32_t RxRingSize() const { return rdlen_ / 16; }

  std::array<uint8_t, 6> mac_;
  EtherLink* link_ = nullptr;
  int link_side_ = 0;

  // Register state.
  uint32_t ctrl_ = 0;
  uint32_t icr_ = 0;
  uint32_t ims_ = 0;
  uint32_t rctl_ = 0;
  uint32_t tctl_ = 0;
  uint32_t tdbal_ = 0, tdbah_ = 0, tdlen_ = 0, tdh_ = 0, tdt_ = 0;
  uint32_t rdbal_ = 0, rdbah_ = 0, rdlen_ = 0, rdh_ = 0, rdt_ = 0;
  uint32_t ral0_ = 0, rah0_ = 0;
  uint32_t mdic_ = 0;

  // Frames that arrived while no RX descriptor was available.
  std::deque<std::vector<uint8_t>> rx_backlog_;
  static constexpr size_t kRxBacklogMax = 64;
  std::vector<uint8_t> tx_frame_buf_;  // reused transmit staging buffer

  Stats stats_;
};

}  // namespace sud::devices

#endif  // SUD_SRC_DEVICES_SIM_NIC_H_
