#include "src/devices/usb_host.h"

#include <cstring>

#include "src/base/bytes.h"

namespace sud::devices {

UsbDevice::UsbDevice(std::string name, uint16_t vendor_id, uint16_t product_id,
                     uint8_t device_class)
    : name_(std::move(name)),
      vendor_id_(vendor_id),
      product_id_(product_id),
      device_class_(device_class) {}

std::vector<uint8_t> UsbDevice::DeviceDescriptor() const {
  std::vector<uint8_t> d(18, 0);
  d[0] = 18;                    // bLength
  d[1] = kUsbDescTypeDevice;    // bDescriptorType
  d[2] = 0x00;                  // bcdUSB 2.0
  d[3] = 0x02;
  d[4] = device_class_;         // bDeviceClass
  d[7] = 64;                    // bMaxPacketSize0
  StoreLe16(&d[8], vendor_id_);
  StoreLe16(&d[10], product_id_);
  d[17] = 1;                    // bNumConfigurations
  return d;
}

std::vector<uint8_t> UsbDevice::ConfigDescriptor() const {
  std::vector<uint8_t> d(9, 0);
  d[0] = 9;
  d[1] = kUsbDescTypeConfig;
  StoreLe16(&d[2], 9);  // wTotalLength
  d[4] = 1;             // bNumInterfaces
  d[5] = 1;             // bConfigurationValue
  d[7] = 0x80;          // bmAttributes: bus powered
  d[8] = 50;            // bMaxPower: 100 mA
  return d;
}

Result<std::vector<uint8_t>> UsbDevice::ControlTransfer(const UsbSetup& setup) {
  switch (setup.b_request) {
    case kUsbReqSetAddress:
      address_ = static_cast<uint8_t>(setup.w_value & 0x7f);
      return std::vector<uint8_t>{};
    case kUsbReqSetConfiguration:
      configured_ = setup.w_value != 0;
      return std::vector<uint8_t>{};
    case kUsbReqGetDescriptor: {
      uint8_t type = static_cast<uint8_t>(setup.w_value >> 8);
      std::vector<uint8_t> d;
      if (type == kUsbDescTypeDevice) {
        d = DeviceDescriptor();
      } else if (type == kUsbDescTypeConfig) {
        d = ConfigDescriptor();
      } else {
        return Status(ErrorCode::kNotFound, "unknown descriptor type");
      }
      if (d.size() > setup.w_length) {
        d.resize(setup.w_length);
      }
      return d;
    }
    default:
      return Status(ErrorCode::kInvalidArgument, "unsupported control request");
  }
}

Result<std::vector<uint8_t>> UsbDevice::BulkIn(uint8_t endpoint, size_t max_len) {
  return Status(ErrorCode::kUnavailable, "endpoint stalled");
}

Status UsbDevice::BulkOut(uint8_t endpoint, ConstByteSpan data) {
  return Status(ErrorCode::kUnavailable, "endpoint stalled");
}

Result<std::vector<uint8_t>> UsbKeyboard::BulkIn(uint8_t endpoint, size_t max_len) {
  if (endpoint != 1) {
    return Status(ErrorCode::kUnavailable, "endpoint stalled");
  }
  // 8-byte boot-protocol report; key usage in byte 2.
  std::vector<uint8_t> report(8, 0);
  if (!pending_.empty()) {
    report[2] = pending_.front();
    pending_.pop_front();
  }
  if (report.size() > max_len) {
    report.resize(max_len);
  }
  return report;
}

UsbHostController::UsbHostController(std::string name)
    : PciDevice(std::move(name), /*vendor_id=*/0x8086, /*device_id=*/0x293a,
                /*class_code=*/0x0c, {hw::BarDesc{4096, /*is_io=*/false}}) {}

Status UsbHostController::PlugDevice(int port, UsbDevice* device) {
  if (port < 0 || port >= kNumPorts) {
    return Status(ErrorCode::kInvalidArgument, "no such port");
  }
  if (ports_[port] != nullptr) {
    return Status(ErrorCode::kAlreadyExists, "port occupied");
  }
  ports_[port] = device;
  return Status::Ok();
}

void UsbHostController::Reset() {
  cmd_ = sts_ = ims_ = 0;
  list_lo_ = list_hi_ = list_count_ = 0;
}

UsbDevice* UsbHostController::FindByAddress(uint8_t address) const {
  for (UsbDevice* device : ports_) {
    if (device != nullptr && device->address() == address) {
      return device;
    }
  }
  return nullptr;
}

void UsbHostController::SetStatus(uint32_t bits) {
  bool was_asserted = (sts_ & ims_) != 0;
  sts_ |= bits;
  if (!was_asserted && (sts_ & ims_) != 0) {
    (void)RaiseMsi();
  }
}

uint32_t UsbHostController::MmioRead(int bar, uint64_t offset) {
  if (bar != 0) {
    return 0xffffffffu;
  }
  if (offset >= kUsbRegPortsc0 && offset < kUsbRegPortsc0 + 4 * kNumPorts) {
    int port = static_cast<int>((offset - kUsbRegPortsc0) / 4);
    return ports_[port] != nullptr ? kUsbPortConnected : 0;
  }
  switch (offset) {
    case kUsbRegCmd:
      return cmd_;
    case kUsbRegSts:
      return sts_;
    case kUsbRegIms:
      return ims_;
    default:
      return 0;
  }
}

void UsbHostController::MmioWrite(int bar, uint64_t offset, uint32_t value) {
  if (bar != 0) {
    return;
  }
  switch (offset) {
    case kUsbRegCmd:
      cmd_ = value;
      break;
    case kUsbRegSts:
      sts_ &= ~value;  // write-1-to-clear
      break;
    case kUsbRegIms:
      ims_ = value;
      break;
    case kUsbRegListLo:
      list_lo_ = value;
      break;
    case kUsbRegListHi:
      list_hi_ = value;
      break;
    case kUsbRegListCount:
      list_count_ = value;
      break;
    case kUsbRegDoorbell:
      if ((cmd_ & kUsbCmdRun) != 0) {
        ProcessSchedule();
      }
      break;
    default:
      break;
  }
}

void UsbHostController::ProcessSchedule() {
  uint64_t list_base = (static_cast<uint64_t>(list_hi_) << 32) | list_lo_;
  for (uint32_t i = 0; i < list_count_; ++i) {
    uint8_t raw[kUsbTrbSize];
    uint64_t trb_addr = list_base + static_cast<uint64_t>(i) * kUsbTrbSize;
    if (!DmaRead(trb_addr, ByteSpan(raw, sizeof(raw))).ok()) {
      return;  // schedule fetch faulted: confined, queue stalls
    }
    UsbTrb trb;
    trb.device_address = raw[0];
    trb.endpoint = raw[1];
    trb.type = raw[2];
    trb.status = raw[3];
    trb.length = LoadLe32(raw + 4);
    trb.buffer_iova = LoadLe64(raw + 8);
    std::memcpy(trb.setup, raw + 16, 8);
    if (trb.status != 0) {
      continue;  // already executed
    }

    UsbDevice* device = FindByAddress(trb.device_address);
    if (device == nullptr && trb.device_address == 0) {
      // Address 0: default pipe of a freshly connected, unaddressed device.
      for (UsbDevice* candidate : ports_) {
        if (candidate != nullptr && candidate->address() == 0) {
          device = candidate;
          break;
        }
      }
    }
    trb.actual_length = 0;
    if (device == nullptr) {
      trb.status = kUsbTrbStatusStall;
    } else if (trb.type == kUsbTrbSetup) {
      UsbSetup setup;
      setup.bm_request_type = trb.setup[0];
      setup.b_request = trb.setup[1];
      setup.w_value = LoadLe16(trb.setup + 2);
      setup.w_index = LoadLe16(trb.setup + 4);
      setup.w_length = LoadLe16(trb.setup + 6);
      Result<std::vector<uint8_t>> in = device->ControlTransfer(setup);
      if (!in.ok()) {
        trb.status = kUsbTrbStatusStall;
      } else {
        const std::vector<uint8_t>& data = in.value();
        if (!data.empty() && trb.buffer_iova != 0) {
          size_t n = std::min<size_t>(data.size(), trb.length);
          if (!DmaWrite(trb.buffer_iova, ConstByteSpan(data.data(), n)).ok()) {
            trb.status = kUsbTrbStatusDmaError;
          } else {
            trb.actual_length = static_cast<uint32_t>(n);
            trb.status = kUsbTrbStatusOk;
          }
        } else {
          trb.status = kUsbTrbStatusOk;
        }
      }
    } else if (trb.type == kUsbTrbIn) {
      Result<std::vector<uint8_t>> in = device->BulkIn(trb.endpoint, trb.length);
      if (!in.ok()) {
        trb.status = kUsbTrbStatusStall;
      } else {
        const std::vector<uint8_t>& data = in.value();
        if (!data.empty() &&
            !DmaWrite(trb.buffer_iova, ConstByteSpan(data.data(), data.size())).ok()) {
          trb.status = kUsbTrbStatusDmaError;
        } else {
          trb.actual_length = static_cast<uint32_t>(data.size());
          trb.status = kUsbTrbStatusOk;
        }
      }
    } else if (trb.type == kUsbTrbOut) {
      std::vector<uint8_t> data(trb.length);
      if (trb.length > 0 && !DmaRead(trb.buffer_iova, ByteSpan(data.data(), data.size())).ok()) {
        trb.status = kUsbTrbStatusDmaError;
      } else if (!device->BulkOut(trb.endpoint, ConstByteSpan(data.data(), data.size())).ok()) {
        trb.status = kUsbTrbStatusStall;
      } else {
        trb.actual_length = trb.length;
        trb.status = kUsbTrbStatusOk;
      }
    } else {
      trb.status = kUsbTrbStatusStall;
    }

    // Write back status + actual length.
    raw[3] = trb.status;
    StoreLe32(raw + 24, trb.actual_length);
    if (!DmaWrite(trb_addr, ConstByteSpan(raw, sizeof(raw))).ok()) {
      return;
    }
    ++transfers_completed_;
  }
  SetStatus(kUsbStsTransferDone);
}

}  // namespace sud::devices
