// UsbHostController + UsbDevice: an EHCI-class USB host and a small device
// tree behind it.
//
// The paper runs EHCI/UHCI host-controller drivers and several USB function
// drivers under SUD, and notes that the USB host *proxy* needs zero extra
// kernel code (Figure 5) because USB functions are reached through the host
// controller's existing schedule. The model captures that structure: the
// host controller executes transfer request blocks (TRBs) that the HCD
// driver DMAs into memory; each TRB addresses a UsbDevice by address and
// endpoint, and control transfers implement enough of USB chapter 9
// (SET_ADDRESS / GET_DESCRIPTOR / SET_CONFIGURATION) for real enumeration
// logic in the driver.

#ifndef SUD_SRC_DEVICES_USB_HOST_H_
#define SUD_SRC_DEVICES_USB_HOST_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/hw/pci_device.h"

namespace sud::devices {

// ---- USB device side ------------------------------------------------------

// USB setup packet (chapter 9).
struct UsbSetup {
  uint8_t bm_request_type = 0;
  uint8_t b_request = 0;
  uint16_t w_value = 0;
  uint16_t w_index = 0;
  uint16_t w_length = 0;
};

inline constexpr uint8_t kUsbReqGetDescriptor = 6;
inline constexpr uint8_t kUsbReqSetAddress = 5;
inline constexpr uint8_t kUsbReqSetConfiguration = 9;
inline constexpr uint8_t kUsbDescTypeDevice = 1;
inline constexpr uint8_t kUsbDescTypeConfig = 2;

class UsbDevice {
 public:
  UsbDevice(std::string name, uint16_t vendor_id, uint16_t product_id, uint8_t device_class);
  virtual ~UsbDevice() = default;

  const std::string& name() const { return name_; }
  uint8_t address() const { return address_; }
  bool configured() const { return configured_; }
  uint8_t device_class() const { return device_class_; }

  // Executes a control transfer; returns the IN data stage (possibly empty).
  Result<std::vector<uint8_t>> ControlTransfer(const UsbSetup& setup);

  // Bulk/interrupt data. Default: STALL (kUnavailable).
  virtual Result<std::vector<uint8_t>> BulkIn(uint8_t endpoint, size_t max_len);
  virtual Status BulkOut(uint8_t endpoint, ConstByteSpan data);

 protected:
  // Subclasses can extend descriptor contents.
  virtual std::vector<uint8_t> DeviceDescriptor() const;
  virtual std::vector<uint8_t> ConfigDescriptor() const;

 private:
  std::string name_;
  uint16_t vendor_id_;
  uint16_t product_id_;
  uint8_t device_class_;
  uint8_t address_ = 0;  // unaddressed until SET_ADDRESS
  bool configured_ = false;
};

// A HID-class keyboard: BulkIn on endpoint 1 returns queued key reports.
class UsbKeyboard : public UsbDevice {
 public:
  UsbKeyboard() : UsbDevice("usb-kbd", 0x046d, 0xc31c, /*device_class=*/0x03) {}

  void PressKey(uint8_t usage_code) { pending_.push_back(usage_code); }

  Result<std::vector<uint8_t>> BulkIn(uint8_t endpoint, size_t max_len) override;

 private:
  std::deque<uint8_t> pending_;
};

// ---- host controller side ---------------------------------------------------

// Register map (BAR0).
inline constexpr uint64_t kUsbRegCmd = 0x00;        // bit0 RUN
inline constexpr uint64_t kUsbRegSts = 0x04;        // bit0 transfer done (RW1C)
inline constexpr uint64_t kUsbRegIms = 0x08;
inline constexpr uint64_t kUsbRegListLo = 0x0c;     // TRB list DMA address
inline constexpr uint64_t kUsbRegListHi = 0x10;
inline constexpr uint64_t kUsbRegListCount = 0x14;  // number of TRBs
inline constexpr uint64_t kUsbRegDoorbell = 0x18;
inline constexpr uint64_t kUsbRegPortsc0 = 0x20;    // port status: bit0 connected

inline constexpr uint32_t kUsbCmdRun = 1u << 0;
inline constexpr uint32_t kUsbStsTransferDone = 1u << 0;
inline constexpr uint32_t kUsbPortConnected = 1u << 0;

// One 32-byte transfer request block in DMA memory:
//   u8 device_address, u8 endpoint, u8 type (0=setup 1=in 2=out), u8 status
//   u32 length          (in: max, out: bytes to send)
//   u64 buffer_iova     (data stage)
//   u8 setup[8]         (control transfers)
//   u32 actual_length   (written back)
//   u32 pad
struct UsbTrb {
  uint8_t device_address = 0;
  uint8_t endpoint = 0;
  uint8_t type = 0;
  uint8_t status = 0;  // 0 pending, 1 ok, 2 stall, 3 dma-error
  uint32_t length = 0;
  uint64_t buffer_iova = 0;
  uint8_t setup[8] = {};
  uint32_t actual_length = 0;
};
inline constexpr size_t kUsbTrbSize = 32;
inline constexpr uint8_t kUsbTrbSetup = 0;
inline constexpr uint8_t kUsbTrbIn = 1;
inline constexpr uint8_t kUsbTrbOut = 2;
inline constexpr uint8_t kUsbTrbStatusOk = 1;
inline constexpr uint8_t kUsbTrbStatusStall = 2;
inline constexpr uint8_t kUsbTrbStatusDmaError = 3;

class UsbHostController : public hw::PciDevice {
 public:
  explicit UsbHostController(std::string name);

  // Plug a device into a root port (0-based). The HCD driver discovers it
  // via PORTSC. Default address 0 until the driver assigns one.
  Status PlugDevice(int port, UsbDevice* device);

  uint32_t MmioRead(int bar, uint64_t offset) override;
  void MmioWrite(int bar, uint64_t offset, uint32_t value) override;
  void Reset() override;

  UsbDevice* FindByAddress(uint8_t address) const;

  uint64_t transfers_completed() const { return transfers_completed_; }

 private:
  void ProcessSchedule();
  void SetStatus(uint32_t bits);

  static constexpr int kNumPorts = 2;
  std::array<UsbDevice*, kNumPorts> ports_{nullptr, nullptr};

  uint32_t cmd_ = 0;
  uint32_t sts_ = 0;
  uint32_t ims_ = 0;
  uint32_t list_lo_ = 0, list_hi_ = 0, list_count_ = 0;
  uint64_t transfers_completed_ = 0;
};

}  // namespace sud::devices

#endif  // SUD_SRC_DEVICES_USB_HOST_H_
