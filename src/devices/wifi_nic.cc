#include "src/devices/wifi_nic.h"

#include <cstring>

#include "src/base/bytes.h"

namespace sud::devices {

const BssInfo* RadioEnvironment::FindBySsid(const std::string& ssid) const {
  for (const BssInfo& bss : aps_) {
    if (ssid == bss.ssid) {
      return &bss;
    }
  }
  return nullptr;
}

WifiNic::WifiNic(std::string name, RadioEnvironment* air)
    : PciDevice(std::move(name), /*vendor_id=*/0x8086, /*device_id=*/0x4235,
                /*class_code=*/0x02, {hw::BarDesc{4096, /*is_io=*/false}}),
      air_(air) {}

void WifiNic::Reset() {
  icr_ = ims_ = 0;
  scan_count_ = 0;
  assoc_state_ = 0;
  bitrate_ = 54;
}

void WifiNic::SetInterruptCause(uint32_t bits) {
  // MSIs are edge-triggered on the assertion of a new cause: if the
  // interrupt condition was already pending (driver has not read ICR yet),
  // no additional message is signalled, as on real hardware.
  bool was_asserted = (icr_ & ims_) != 0;
  icr_ |= bits;
  if (!was_asserted && (icr_ & ims_) != 0) {
    (void)RaiseMsi();
  }
}

uint32_t WifiNic::MmioRead(int bar, uint64_t offset) {
  if (bar != 0) {
    return 0xffffffffu;
  }
  switch (offset) {
    case kWifiRegIcr: {
      uint32_t value = icr_;
      icr_ = 0;
      return value;
    }
    case kWifiRegIms:
      return ims_;
    case kWifiRegScanCount:
      return scan_count_;
    case kWifiRegAssocState:
      return assoc_state_;
    case kWifiRegBitrate:
      return bitrate_;
    default:
      return 0;
  }
}

void WifiNic::MmioWrite(int bar, uint64_t offset, uint32_t value) {
  if (bar != 0) {
    return;
  }
  switch (offset) {
    case kWifiRegCmd:
      if (value == kWifiCmdScan) {
        RunScan();
      } else if (value == kWifiCmdAssoc) {
        RunAssoc();
      } else if (value == kWifiCmdDisassoc) {
        assoc_state_ = 0;
        SetInterruptCause(kWifiIntBssChanged);
      }
      break;
    case kWifiRegCmdArgLo:
      cmd_arg_lo_ = value;
      break;
    case kWifiRegCmdArgHi:
      cmd_arg_hi_ = value;
      break;
    case kWifiRegIms:
      ims_ = value;
      if ((icr_ & ims_) != 0) {
        (void)RaiseMsi();
      }
      break;
    case kWifiRegBitrate:
      bitrate_ = value;
      break;
    case kWifiRegTxAddr:
      tx_addr_lo_ = value;
      break;
    case kWifiRegTxAddr + 4:
      tx_addr_hi_ = value;
      break;
    case kWifiRegTxLen:
      tx_len_ = value;
      break;
    case kWifiRegTxDoorbell:
      RunTx();
      break;
    default:
      break;
  }
}

void WifiNic::RunScan() {
  // DMA the BSS table into the driver-provided buffer. Each record:
  // bssid[6] pad[2] ssid[28] channel[1] signal[1] pad[2] == 40 bytes.
  uint64_t results_addr = (static_cast<uint64_t>(cmd_arg_hi_) << 32) | cmd_arg_lo_;
  scan_count_ = 0;
  if (air_ == nullptr) {
    SetInterruptCause(kWifiIntScanDone);
    return;
  }
  uint32_t index = 0;
  for (const BssInfo& bss : air_->access_points()) {
    uint8_t record[kBssRecordSize] = {};
    std::memcpy(record, bss.bssid.data(), 6);
    std::memcpy(record + 8, bss.ssid, 28);
    record[36] = bss.channel;
    record[37] = static_cast<uint8_t>(bss.signal_dbm);
    Status status = DmaWrite(results_addr + index * kBssRecordSize,
                             ConstByteSpan(record, kBssRecordSize));
    if (!status.ok()) {
      break;  // confined: driver gave us a bad address, stop writing
    }
    ++index;
  }
  scan_count_ = index;
  SetInterruptCause(kWifiIntScanDone);
}

void WifiNic::RunAssoc() {
  // Associate with the strongest AP (the model doesn't need SSID selection
  // beyond what the driver scans for).
  if (air_ != nullptr && !air_->access_points().empty()) {
    assoc_state_ = 1;
  }
  SetInterruptCause(kWifiIntBssChanged);
}

void WifiNic::RunTx() {
  uint64_t addr = (static_cast<uint64_t>(tx_addr_hi_) << 32) | tx_addr_lo_;
  std::vector<uint8_t> frame(tx_len_);
  if (tx_len_ > 0) {
    Status status = DmaRead(addr, ByteSpan(frame.data(), frame.size()));
    if (!status.ok()) {
      return;  // DMA confined
    }
  }
  if (assoc_state_ == 1) {
    ++tx_frames_;
  }
  SetInterruptCause(kWifiIntTxDone);
}

}  // namespace sud::devices
