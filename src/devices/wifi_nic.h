// WifiNic: an iwlagn-class 802.11 adapter.
//
// Models the slice of a wireless NIC that matters for SUD's wireless proxy
// driver: a command mailbox (scan / associate / set-bitrate), a scan-results
// table DMA'd into driver memory, BSS-change interrupts, and data TX/RX over
// a RadioEnvironment of access points. The Linux 802.11 stack's habit of
// calling drivers from non-preemptable context (Section 3.1.1) is exercised
// through the feature-set registers mirrored by the wireless proxy.

#ifndef SUD_SRC_DEVICES_WIFI_NIC_H_
#define SUD_SRC_DEVICES_WIFI_NIC_H_

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/hw/pci_device.h"

namespace sud::devices {

// One access point visible in the simulated air.
struct BssInfo {
  std::array<uint8_t, 6> bssid{};
  char ssid[32] = {};
  uint8_t channel = 0;
  int8_t signal_dbm = 0;
};

// The "air": a set of access points the NIC can scan and associate with.
class RadioEnvironment {
 public:
  void AddAccessPoint(const BssInfo& bss) { aps_.push_back(bss); }
  const std::vector<BssInfo>& access_points() const { return aps_; }
  const BssInfo* FindBySsid(const std::string& ssid) const;

 private:
  std::vector<BssInfo> aps_;
};

// Register map (BAR0).
inline constexpr uint64_t kWifiRegCmd = 0x00;
inline constexpr uint64_t kWifiRegCmdArgLo = 0x04;   // DMA address for results
inline constexpr uint64_t kWifiRegCmdArgHi = 0x08;
inline constexpr uint64_t kWifiRegIcr = 0x0c;        // read-clears
inline constexpr uint64_t kWifiRegIms = 0x10;
inline constexpr uint64_t kWifiRegScanCount = 0x14;  // results after scan
inline constexpr uint64_t kWifiRegAssocState = 0x18; // 0=idle 1=associated
inline constexpr uint64_t kWifiRegBitrate = 0x1c;    // current bitrate, Mbit/s
inline constexpr uint64_t kWifiRegTxAddr = 0x20;     // frame buffer DMA address
inline constexpr uint64_t kWifiRegTxLen = 0x28;
inline constexpr uint64_t kWifiRegTxDoorbell = 0x2c;

// Commands.
inline constexpr uint32_t kWifiCmdScan = 1;
inline constexpr uint32_t kWifiCmdAssoc = 2;
inline constexpr uint32_t kWifiCmdDisassoc = 3;

// Interrupt causes.
inline constexpr uint32_t kWifiIntScanDone = 1u << 0;
inline constexpr uint32_t kWifiIntBssChanged = 1u << 1;
inline constexpr uint32_t kWifiIntTxDone = 1u << 2;

// Serialized BssInfo record size as DMA'd to the driver.
inline constexpr size_t kBssRecordSize = 40;

class WifiNic : public hw::PciDevice {
 public:
  WifiNic(std::string name, RadioEnvironment* air);

  uint32_t MmioRead(int bar, uint64_t offset) override;
  void MmioWrite(int bar, uint64_t offset, uint32_t value) override;
  void Reset() override;

  bool associated() const { return assoc_state_ == 1; }
  uint32_t bitrate_mbps() const { return bitrate_; }
  const std::vector<uint32_t>& supported_bitrates() const { return supported_bitrates_; }
  uint64_t tx_frames() const { return tx_frames_; }

 private:
  void RunScan();
  void RunAssoc();
  void RunTx();
  void SetInterruptCause(uint32_t bits);

  RadioEnvironment* air_;
  uint32_t cmd_arg_lo_ = 0, cmd_arg_hi_ = 0;
  uint32_t icr_ = 0, ims_ = 0;
  uint32_t scan_count_ = 0;
  uint32_t assoc_state_ = 0;
  uint32_t bitrate_ = 54;
  uint32_t tx_addr_lo_ = 0, tx_addr_hi_ = 0, tx_len_ = 0;
  uint64_t tx_frames_ = 0;
  std::vector<uint32_t> supported_bitrates_{1, 2, 11, 6, 9, 12, 18, 24, 36, 48, 54};
};

}  // namespace sud::devices

#endif  // SUD_SRC_DEVICES_WIFI_NIC_H_
