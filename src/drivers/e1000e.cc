#include "src/drivers/e1000e.h"

#include <algorithm>
#include <cstring>

#include "src/base/bytes.h"
#include "src/base/log.h"
#include "src/kern/netdev.h"

namespace sud::drivers {

using devices::NicDescriptor;
using hw::RingDescriptor;

Status E1000eDriver::EnvRingMem::Read(uint64_t addr, ByteSpan out) {
  Result<ByteSpan> view = driver_->env_->DmaView(addr, out.size());
  if (!view.ok()) {
    return view.status();
  }
  std::memcpy(out.data(), view.value().data(), out.size());
  return Status::Ok();
}

Status E1000eDriver::EnvRingMem::Write(uint64_t addr, ConstByteSpan bytes) {
  Result<ByteSpan> view = driver_->env_->DmaView(addr, bytes.size());
  if (!view.ok()) {
    return view.status();
  }
  std::memcpy(view.value().data(), bytes.data(), bytes.size());
  return Status::Ok();
}

Result<ByteSpan> E1000eDriver::EnvRingMem::Map(uint64_t addr, uint64_t len) {
  return driver_->env_->DmaView(addr, len);
}

E1000eDriver::E1000eDriver(uint32_t num_queues, uint32_t mtu)
    : num_queues_(std::clamp<uint32_t>(num_queues, 1, devices::kNicNumQueues)),
      mtu_(std::clamp<uint32_t>(mtu, 68, static_cast<uint32_t>(kern::kJumboMtu))) {
  rx_buffer_size_ = static_cast<uint32_t>(kRxBufferBytes / num_queues_ / kRxDescriptors);
}

std::array<uint8_t, devices::kNicRetaEntries> E1000eDriver::IdentityReta(uint32_t num_queues) {
  std::array<uint8_t, devices::kNicRetaEntries> table{};
  if (num_queues == 0) {
    num_queues = 1;
  }
  for (uint32_t i = 0; i < devices::kNicRetaEntries; ++i) {
    table[i] = static_cast<uint8_t>(i % num_queues);
  }
  return table;
}

Status E1000eDriver::ProgramReta(const std::array<uint8_t, devices::kNicRetaEntries>& table) {
  for (uint32_t i = 0; i < devices::kNicRetaEntries; i += 4) {
    uint32_t value = 0;
    for (uint32_t b = 0; b < 4; ++b) {
      value |= static_cast<uint32_t>(table[i + b]) << (8 * b);
    }
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegReta + i, value));
  }
  return Status::Ok();
}

Status E1000eDriver::ProgramRssKey(const std::array<uint8_t, kern::kRssKeyBytes>& key) {
  static_assert(kern::kRssKeyBytes == 4 * devices::kNicRssKeyDwords,
                "RSSRK register block and the kern key width must agree");
  for (uint32_t i = 0; i < devices::kNicRssKeyDwords; ++i) {
    uint32_t value = 0;
    for (uint32_t b = 0; b < 4; ++b) {
      value |= static_cast<uint32_t>(key[4 * i + b]) << (8 * b);
    }
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegRssrk + 4 * i, value));
  }
  return Status::Ok();
}

Status E1000eDriver::ProgramItr(uint32_t itr_units) {
  for (uint32_t q = 0; q < num_queues_; ++q) {
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegEitr + 4 * q, itr_units));
  }
  return Status::Ok();
}

uint64_t E1000eDriver::desc_window_maps() const {
  uint64_t total = 0;
  for (uint32_t q = 0; q < num_queues_; ++q) {
    if (queues_[q].tx_eng != nullptr) {
      total += queues_[q].tx_eng->stats().window_maps;
    }
    if (queues_[q].rx_eng != nullptr) {
      total += queues_[q].rx_eng->stats().window_maps;
    }
  }
  return total;
}

uint64_t E1000eDriver::desc_window_hits() const {
  uint64_t total = 0;
  for (uint32_t q = 0; q < num_queues_; ++q) {
    if (queues_[q].tx_eng != nullptr) {
      total += queues_[q].tx_eng->stats().window_hits;
    }
    if (queues_[q].rx_eng != nullptr) {
      total += queues_[q].rx_eng->stats().window_hits;
    }
  }
  return total;
}

Status E1000eDriver::Probe(uml::DriverEnv& env) {
  env_ = &env;
  SUD_RETURN_IF_ERROR(env.PciEnableDevice());
  SUD_RETURN_IF_ERROR(env.PciSetMaster());

  // Read the MAC from the receive-address registers (EEPROM-loaded).
  Result<uint32_t> ral = env.MmioRead32(0, devices::kNicRegRal0);
  Result<uint32_t> rah = env.MmioRead32(0, devices::kNicRegRah0);
  if (!ral.ok() || !rah.ok()) {
    return Status(ErrorCode::kUnavailable, "cannot read mac registers");
  }
  uint8_t mac[6];
  StoreLe32(mac, ral.value());
  StoreLe16(mac + 4, static_cast<uint16_t>(rah.value() & 0xffff));

  // DMA allocations in the order that produces Figure 9's layout for one
  // queue (TX rings first, then RX rings, then the two buffer arenas).
  for (uint32_t q = 0; q < num_queues_; ++q) {
    Result<DmaRegion> tx_ring = env.DmaAllocCoherent(kTxDescriptors * 16);
    if (!tx_ring.ok()) {
      return Status(ErrorCode::kExhausted, "dma allocation failed in probe");
    }
    queues_[q].tx_ring = tx_ring.value();
  }
  for (uint32_t q = 0; q < num_queues_; ++q) {
    Result<DmaRegion> rx_ring = env.DmaAllocCoherent(kRxDescriptors * 16);
    if (!rx_ring.ok()) {
      return Status(ErrorCode::kExhausted, "dma allocation failed in probe");
    }
    queues_[q].rx_ring = rx_ring.value();
  }
  Result<DmaRegion> tx_buffers = env.DmaAllocCaching(kTxBufferBytes);
  Result<DmaRegion> rx_buffers = env.DmaAllocCaching(kRxBufferBytes);
  if (!tx_buffers.ok() || !rx_buffers.ok()) {
    return Status(ErrorCode::kExhausted, "dma allocation failed in probe");
  }
  tx_buffers_ = tx_buffers.value();
  rx_buffers_ = rx_buffers.value();
  // TX is zero-copy (shared-pool buffers under SUD, bounce slots in-kernel),
  // so only the RX arena is partitioned per queue.
  for (uint32_t q = 0; q < num_queues_; ++q) {
    queues_[q].rx_buffers_iova = rx_buffers_.iova + static_cast<uint64_t>(q) *
                                                        (kRxBufferBytes / num_queues_);
    queues_[q].tx_slot_buffer.assign(kTxDescriptors, -1);
    queues_[q].tx_slot_eop.assign(kTxDescriptors, 1);
    queues_[q].tx_eng = std::make_unique<hw::DescRingEngine>(&ring_mem_);
    queues_[q].tx_eng->Configure(queues_[q].tx_ring.iova, kTxDescriptors);
    queues_[q].rx_eng = std::make_unique<hw::DescRingEngine>(&ring_mem_);
    queues_[q].rx_eng->Configure(queues_[q].rx_ring.iova, kRxDescriptors);
  }

  uml::NetDriverOps ops;
  ops.open = [this]() { return Open(); };
  ops.stop = [this]() { return Stop(); };
  ops.xmit = [this](uint64_t iova, uint32_t len, int32_t id, uint16_t queue) {
    return Xmit(iova, len, id, queue);
  };
  ops.xmit_chain = [this](const std::vector<uml::TxFrag>& frags, uint16_t queue) {
    return XmitChain(frags, queue);
  };
  ops.sg = true;  // frag skbs arrive as fragment lists, never linearized
  ops.ioctl = [this](uint32_t cmd) { return Ioctl(cmd); };
  ops.num_queues = static_cast<uint16_t>(num_queues_);
  ops.mtu = mtu_;
  SUD_RETURN_IF_ERROR(env.RegisterNetdev(mac, std::move(ops)));

  // Link state is shared-memory state (netif_carrier_*, Section 3.3).
  Result<uint32_t> status_reg = env.MmioRead32(0, devices::kNicRegStatus);
  if (status_reg.ok() && (status_reg.value() & devices::kNicStatusLinkUp) != 0) {
    env.NetifCarrierOn();
  } else {
    env.NetifCarrierOff();
  }
  return Status::Ok();
}

void E1000eDriver::Remove(uml::DriverEnv& env) {
  if (open_) {
    (void)Stop();
  }
}

Status E1000eDriver::ArmRxDescriptor(uint16_t queue, uint32_t index) {
  QueueState& qs = queues_[queue];
  RingDescriptor desc;
  desc.buffer_addr = qs.rx_buffers_iova + static_cast<uint64_t>(index) * rx_buffer_size_;
  return qs.rx_eng->Arm(index, desc);
}

namespace {
// Re-arm attempts per slot per drain pass before the barrier takes over.
constexpr int kRearmRetries = 4;
}  // namespace

void E1000eDriver::DrainRearmBacklog(uint16_t queue, uint64_t rx_base) {
  QueueState& qs = queues_[queue];
  bool advanced = false;
  uint32_t last = 0;
  while (!qs.pending_rearm.empty()) {
    uint32_t index = qs.pending_rearm.front();
    Status armed = ArmRxDescriptor(queue, index);
    for (int retry = 0; !armed.ok() && retry < kRearmRetries; ++retry) {
      stats_.rearm_retries.fetch_add(1, std::memory_order_relaxed);
      armed = ArmRxDescriptor(queue, index);
    }
    if (!armed.ok()) {
      // The slot is still unarmed: leave it (and everything behind it) in
      // the FIFO. The tail stops at the last slot that really is armed; the
      // next reap pass retries from here.
      break;
    }
    qs.pending_rearm.pop_front();
    last = index;
    advanced = true;
  }
  if (advanced) {
    (void)env_->MmioWrite32(0, rx_base + 0x18, last);
  }
}

void E1000eDriver::ArmRxAndAdvanceTail(uint16_t queue, uint32_t index, uint64_t rx_base) {
  queues_[queue].pending_rearm.push_back(index);
  DrainRearmBacklog(queue, rx_base);
}

Status E1000eDriver::Open() {
  // Arena sizing invariants (net_limits.h), asserted at ring setup: every
  // queue's ring of buffer slices must fit its share of the RX arena, the
  // device-effective scatter size must never exceed the driver's slice (a
  // chunk must always fit the buffer it lands in), and the interface's
  // maximum frame must be expressible as a bounded EOP chain. A
  // configuration that violates any of these would make the reassembly
  // bound unsound — refuse it rather than run with it.
  size_t max_frame = kern::MaxFrameBytes(mtu_);
  // (The per-queue slices tile by construction — rx_buffer_size_ is the
  // integer quotient arena / queues / ring — so the checkable invariants are
  // the slice floor and the two chain-bound relations below.)
  if (rx_buffer_size_ < kern::kRxMinBufferBytes) {
    return Status(ErrorCode::kInvalidArgument, "rx buffer slice below the scatter floor");
  }
  uint32_t device_chunk = mtu_ > kern::kStdMtu ? kern::EffectiveRxBufferBytes(rx_buffer_size_)
                                               : kern::EffectiveRxBufferBytes(0);
  if (device_chunk > rx_buffer_size_) {
    return Status(ErrorCode::kInvalidArgument, "device scatter size exceeds the buffer slice");
  }
  if ((max_frame + device_chunk - 1) / device_chunk > kern::kMaxChainFrags) {
    return Status(ErrorCode::kInvalidArgument, "mtu unreachable within the chain bound");
  }

  if (num_queues_ == 1) {
    SUD_RETURN_IF_ERROR(env_->RequestIrq([this]() { IrqHandler(); }));
  } else {
    SUD_RETURN_IF_ERROR(env_->RequestQueueIrqs(
        static_cast<uint16_t>(num_queues_),
        [this](uint16_t queue) { IrqHandlerQueue(queue); }));
  }

  // Program every queue's ring geometry.
  for (uint16_t q = 0; q < num_queues_; ++q) {
    QueueState& qs = queues_[q];
    uint64_t tx_base = QueueRegBase(devices::kNicRegTdbal, q);
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, tx_base + 0x0,
                                          static_cast<uint32_t>(qs.tx_ring.iova)));
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, tx_base + 0x4,
                                          static_cast<uint32_t>(qs.tx_ring.iova >> 32)));
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, tx_base + 0x8, kTxDescriptors * 16));
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, tx_base + 0x10, 0));
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, tx_base + 0x18, 0));
    uint64_t rx_base = QueueRegBase(devices::kNicRegRdbal, q);
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, rx_base + 0x0,
                                          static_cast<uint32_t>(qs.rx_ring.iova)));
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, rx_base + 0x4,
                                          static_cast<uint32_t>(qs.rx_ring.iova >> 32)));
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, rx_base + 0x8, kRxDescriptors * 16));
    if (mtu_ > kern::kStdMtu) {
      // Jumbo only: tell the device how big each descriptor's buffer slice
      // is so it scatters EOP chains at our stride. (Unprogrammed, the
      // device assumes the 2048-byte default — the legacy register sequence
      // stays byte-identical for standard MTUs.)
      SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, rx_base + 0xc, rx_buffer_size_));
    }

    // Arm every RX descriptor with one of our RX buffers.
    for (uint32_t i = 0; i < kRxDescriptors; ++i) {
      SUD_RETURN_IF_ERROR(ArmRxDescriptor(q, i));
    }
    qs.rx_next = 0;
    qs.chain.clear();
    qs.chain_bytes = 0;
    qs.skip_to_eop = false;
    qs.pending_rearm.clear();
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, rx_base + 0x10, 0));
    // Tail one behind head: the full ring minus one is armed, as on real HW.
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, rx_base + 0x18, kRxDescriptors - 1));
    qs.tx_tail = 0;
    qs.tx_reap = 0;
  }

  // Receive-side scaling: steer flows across the enabled queues with one
  // MSI message per queue (only programmed in multi-queue mode, so the
  // single-queue register sequence stays exactly the legacy one). The RETA
  // starts in the identity layout — the same steering the unprogrammed
  // hash % queues produced — and can be rebalanced live via ProgramReta.
  uint32_t ims = devices::kNicIntTxDone | devices::kNicIntRx;
  if (num_queues_ > 1) {
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegMrqc, num_queues_));
    SUD_RETURN_IF_ERROR(ProgramReta(IdentityReta(num_queues_)));
    for (uint16_t q = 0; q < num_queues_; ++q) {
      ims |= devices::NicIntRxQueue(q) | devices::NicIntTxQueue(q);
    }
  }
  // Enable interrupts for TX writeback and RX.
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegIms, ims));
  // Enable the MACs (LPE for jumbo-capable interfaces).
  uint32_t rctl = devices::kNicRctlEnable;
  if (mtu_ > kern::kStdMtu) {
    rctl |= devices::kNicRctlJumboEnable;
  }
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegRctl, rctl));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTctl, devices::kNicTctlEnable));
  open_ = true;
  return Status::Ok();
}

Status E1000eDriver::Stop() {
  open_ = false;
  (void)env_->MmioWrite32(0, devices::kNicRegImc, 0xffffffffu);
  (void)env_->MmioWrite32(0, devices::kNicRegRctl, 0);
  (void)env_->MmioWrite32(0, devices::kNicRegTctl, 0);
  return env_->FreeIrq();
}

Status E1000eDriver::Xmit(uint64_t frame_iova, uint32_t len, int32_t pool_buffer_id,
                          uint16_t queue) {
  if (!open_) {
    return Status(ErrorCode::kUnavailable, "interface down");
  }
  if (queue >= num_queues_) {
    queue = 0;
  }
  QueueState& qs = queues_[queue];
  uint32_t next = (qs.tx_tail + 1) % kTxDescriptors;
  if (next == qs.tx_reap) {
    ReapTxCompletions(queue);
    if (next == qs.tx_reap) {
      return Status(ErrorCode::kQueueFull, "tx ring full");
    }
  }
  // Zero-copy: point the descriptor at the frame where it already lives
  // (shared-pool buffer under SUD, bounce buffer in-kernel).
  RingDescriptor desc;
  desc.buffer_addr = frame_iova;
  desc.length = static_cast<uint16_t>(len);
  desc.cmd = devices::kNicDescCmdEop | devices::kNicDescCmdReportStatus;
  SUD_RETURN_IF_ERROR(qs.tx_eng->Arm(qs.tx_tail, desc));
  qs.tx_slot_buffer[qs.tx_tail] = pool_buffer_id;
  qs.tx_slot_eop[qs.tx_tail] = 1;
  qs.tx_tail = next;
  stats_.tx_queued.fetch_add(1, std::memory_order_relaxed);
  stats_.tx_desc_queued.fetch_add(1, std::memory_order_relaxed);
  return env_->MmioWrite32(0, QueueRegBase(devices::kNicRegTdbal, queue) + 0x18, qs.tx_tail);
}

Status E1000eDriver::XmitChain(const std::vector<uml::TxFrag>& frags, uint16_t queue) {
  if (!open_) {
    return Status(ErrorCode::kUnavailable, "interface down");
  }
  if (queue >= num_queues_) {
    queue = 0;
  }
  // Bounded exactly like the RX reassembly: the runtime validated the list,
  // but the ring arming re-checks — a chain must fit the cap and the ring.
  if (frags.empty() || frags.size() > kern::kMaxChainFrags ||
      frags.size() >= kTxDescriptors) {
    return Status(ErrorCode::kInvalidArgument, "bad fragment chain");
  }
  QueueState& qs = queues_[queue];
  auto free_slots = [&qs]() {
    return (qs.tx_reap + kTxDescriptors - qs.tx_tail - 1) % kTxDescriptors;
  };
  if (free_slots() < frags.size()) {
    ReapTxCompletions(queue);
    if (free_slots() < frags.size()) {
      // Whole-chain-or-nothing: never arm a partial frame.
      return Status(ErrorCode::kQueueFull, "tx ring full");
    }
  }
  uint32_t chain_start = qs.tx_tail;
  for (size_t i = 0; i < frags.size(); ++i) {
    bool last = i + 1 == frags.size();
    RingDescriptor desc;
    desc.buffer_addr = frags[i].iova;
    desc.length = static_cast<uint16_t>(frags[i].len);
    // Full frags report-status only; the EOP lands on the last fragment.
    desc.cmd = static_cast<uint8_t>(devices::kNicDescCmdReportStatus |
                                    (last ? devices::kNicDescCmdEop : 0));
    Status armed = qs.tx_eng->Arm(qs.tx_tail, desc);
    if (!armed.ok()) {
      // Whole-chain-or-nothing, on failure too: rewind the partial arm (the
      // doorbell was never written, so the device has seen none of it) so no
      // stale no-EOP slot can prefix the next frame or double-free its
      // buffer id at reap time.
      while (qs.tx_tail != chain_start) {
        qs.tx_tail = (qs.tx_tail + kTxDescriptors - 1) % kTxDescriptors;
        qs.tx_slot_buffer[qs.tx_tail] = -1;
        qs.tx_slot_eop[qs.tx_tail] = 1;
      }
      return armed;
    }
    qs.tx_slot_buffer[qs.tx_tail] = frags[i].pool_buffer_id;
    qs.tx_slot_eop[qs.tx_tail] = last ? 1 : 0;
    qs.tx_tail = (qs.tx_tail + 1) % kTxDescriptors;
  }
  stats_.tx_queued.fetch_add(1, std::memory_order_relaxed);
  stats_.tx_desc_queued.fetch_add(frags.size(), std::memory_order_relaxed);
  if (frags.size() > 1) {
    stats_.tx_chains.fetch_add(1, std::memory_order_relaxed);
  }
  // One doorbell for the whole chain.
  return env_->MmioWrite32(0, QueueRegBase(devices::kNicRegTdbal, queue) + 0x18, qs.tx_tail);
}

void E1000eDriver::ReapTxCompletions(uint16_t queue) {
  QueueState& qs = queues_[queue];
  // TX completion coalescing: collect every freed pool buffer id and return
  // the batch in ONE free-buffer downcall at the end of the pass, instead of
  // one downcall per buffer.
  qs.free_scratch.clear();
  // Pass 1: find how far the DD'd descriptors extend, and within them the
  // last EOP boundary — the reap completes on EOP only, so a chain whose
  // tail fragments have no DD yet is left whole for the next pass (its
  // buffers stay owned by the device side until the frame is done).
  uint32_t scan = qs.tx_reap;
  uint32_t stop = qs.tx_reap;
  while (scan != qs.tx_tail) {
    // Acquire DD before trusting the descriptor: the device may be writing
    // back later descriptors of this ring concurrently (its own Tick, or the
    // doorbell path still mid-pass on another thread).
    if (!qs.tx_eng->Done(scan)) {
      break;
    }
    uint32_t next = (scan + 1) % kTxDescriptors;
    if (qs.tx_slot_eop[scan] != 0) {
      stop = next;
    }
    scan = next;
  }
  // Pass 2: retire every completed frame — all of a chain's buffer ids join
  // the one coalesced free batch together.
  while (qs.tx_reap != stop) {
    if (qs.tx_slot_buffer[qs.tx_reap] >= 0) {
      qs.free_scratch.push_back(qs.tx_slot_buffer[qs.tx_reap]);
      qs.tx_slot_buffer[qs.tx_reap] = -1;
    }
    if (qs.tx_slot_eop[qs.tx_reap] != 0) {
      stats_.tx_completed.fetch_add(1, std::memory_order_relaxed);
    }
    qs.tx_reap = (qs.tx_reap + 1) % kTxDescriptors;
  }
  if (!qs.free_scratch.empty()) {
    if (qs.free_scratch.size() > 1) {
      stats_.free_batches.fetch_add(1, std::memory_order_relaxed);
    }
    env_->FreeTxBuffers(queue, qs.free_scratch);
  }
}

void E1000eDriver::RecycleChain(uint16_t queue) {
  QueueState& qs = queues_[queue];
  if (qs.chain.empty()) {
    return;
  }
  for (size_t i = 0; i < qs.chain.size(); ++i) {
    qs.pending_rearm.push_back((qs.chain_start + static_cast<uint32_t>(i)) % kRxDescriptors);
  }
  DrainRearmBacklog(queue, QueueRegBase(devices::kNicRegRdbal, queue));
  qs.chain.clear();
  qs.chain_bytes = 0;
}

void E1000eDriver::ReapRxRing(uint16_t queue) {
  QueueState& qs = queues_[queue];
  uint64_t rx_base = QueueRegBase(devices::kNicRegRdbal, queue);
  size_t max_frame = kern::MaxFrameBytes(mtu_);
  // Slots a previous pass could not re-arm (transient DMA-view fault): retry
  // them first, so the ring recovers its capacity once the fault clears.
  DrainRearmBacklog(queue, rx_base);
  while (true) {
    // The device publishes DD last (release); pair it with an acquire load
    // before trusting the descriptor's other fields — the delivery may be
    // racing on another thread in ANY mode (threaded traffic-generator
    // peers deliver on their own threads even with one queue). A chain whose
    // continuation is not done yet simply waits here: partial chains are
    // never delivered and never recycled.
    if (!qs.rx_eng->Done(qs.rx_next)) {
      return;
    }
    // DD is set and acquire-ordered: the descriptor's fields are stable now.
    Result<NicDescriptor> desc = qs.rx_eng->ReadCompleted(qs.rx_next);
    if (!desc.ok()) {
      return;
    }
    uint32_t index = qs.rx_next;
    bool eop = (desc.value().status & devices::kNicDescStatusEop) != 0;
    qs.rx_next = (qs.rx_next + 1) % kRxDescriptors;

    if (qs.skip_to_eop) {
      // Resyncing after a dropped chain: everything up to AND INCLUDING the
      // EOP that terminates the dropped frame belongs to it — recycling it
      // as-is, never parsing mid-frame tail bytes as a fresh frame.
      ArmRxAndAdvanceTail(queue, index, rx_base);
      if (eop) {
        qs.skip_to_eop = false;
      }
      continue;
    }

    uint64_t buffer_iova =
        qs.rx_buffers_iova + static_cast<uint64_t>(index) * rx_buffer_size_;
    if (qs.chain.empty()) {
      qs.chain_start = index;
    }
    qs.chain.push_back(uml::DmaFrag{buffer_iova, desc.value().length});
    qs.chain_bytes += desc.value().length;

    if (!eop) {
      // Bounded reassembly: a chain that outgrows the interface's maximum
      // frame or the descriptor cap without ever presenting EOP is the
      // torn/endless-chain attack (or a corrupted ring). Drop what was
      // collected, count it, recycle the descriptors, and skip to the EOP
      // boundary before parsing anything as a new frame — the driver stays
      // live no matter what descriptor memory claims.
      if (qs.chain.size() >= kern::kMaxChainFrags || qs.chain_bytes > max_frame) {
        stats_.rx_chain_dropped.fetch_add(1, std::memory_order_relaxed);
        RecycleChain(queue);
        qs.skip_to_eop = true;
      }
      continue;
    }

    // EOP: the frame is complete. Oversize totals are dropped like the
    // no-EOP overflow above (the device never produces them; forged rings
    // can).
    if (qs.chain_bytes > max_frame) {
      stats_.rx_chain_dropped.fetch_add(1, std::memory_order_relaxed);
      RecycleChain(queue);
      continue;
    }
    if (qs.chain.size() == 1) {
      // Single-descriptor frame: the legacy path, bit-identical MMIO/uchan
      // footprint (arm + tail write per packet).
      (void)env_->NetifRx(qs.chain[0].iova, qs.chain[0].len, queue);
      stats_.rx_delivered.fetch_add(1, std::memory_order_relaxed);
      ArmRxAndAdvanceTail(queue, qs.chain_start, rx_base);
      qs.chain.clear();
      qs.chain_bytes = 0;
    } else {
      (void)env_->NetifRxChain(qs.chain, queue);
      stats_.rx_delivered.fetch_add(1, std::memory_order_relaxed);
      stats_.rx_chains.fetch_add(1, std::memory_order_relaxed);
      RecycleChain(queue);
    }
  }
}

void E1000eDriver::IrqHandler() {
  stats_.interrupts.fetch_add(1, std::memory_order_relaxed);
  Result<uint32_t> icr = env_->MmioRead32(0, devices::kNicRegIcr);  // read-clears
  if (!icr.ok()) {
    return;
  }
  if ((icr.value() & devices::kNicIntTxDone) != 0) {
    ReapTxCompletions(0);
  }
  if ((icr.value() & devices::kNicIntRx) != 0) {
    ReapRxRing(0);
  }
}

void E1000eDriver::IrqHandlerQueue(uint16_t queue) {
  stats_.interrupts.fetch_add(1, std::memory_order_relaxed);
  if (queue >= num_queues_) {
    return;
  }
  // MSI-X style: the message number identifies the queue; there is no shared
  // cause register to read (and none this handler may touch — another
  // queue's thread might be in its own handler right now).
  ReapTxCompletions(queue);
  ReapRxRing(queue);
}

Result<std::string> E1000eDriver::Ioctl(uint32_t cmd) {
  if (cmd != kern::kIoctlGetMiiStatus) {
    return Status(ErrorCode::kInvalidArgument, "unsupported ioctl");
  }
  // MII read of BMSR through MDIC, like nic_read_mii in Figure 2.
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegMdic, (2u << 26) | (1u << 16)));
  Result<uint32_t> mdic = env_->MmioRead32(0, devices::kNicRegMdic);
  if (!mdic.ok()) {
    return mdic.status();
  }
  bool link_up = (mdic.value() & (1u << 2)) != 0;
  return std::string(link_up ? "link up 1000Mb/s" : "link down");
}

}  // namespace sud::drivers
