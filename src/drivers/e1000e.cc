#include "src/drivers/e1000e.h"

#include <cstring>

#include "src/base/bytes.h"
#include "src/base/log.h"
#include "src/kern/netdev.h"

namespace sud::drivers {

using devices::NicDescriptor;

Status E1000eDriver::Probe(uml::DriverEnv& env) {
  env_ = &env;
  SUD_RETURN_IF_ERROR(env.PciEnableDevice());
  SUD_RETURN_IF_ERROR(env.PciSetMaster());

  // Read the MAC from the receive-address registers (EEPROM-loaded).
  Result<uint32_t> ral = env.MmioRead32(0, devices::kNicRegRal0);
  Result<uint32_t> rah = env.MmioRead32(0, devices::kNicRegRah0);
  if (!ral.ok() || !rah.ok()) {
    return Status(ErrorCode::kUnavailable, "cannot read mac registers");
  }
  uint8_t mac[6];
  StoreLe32(mac, ral.value());
  StoreLe16(mac + 4, static_cast<uint16_t>(rah.value() & 0xffff));

  // DMA allocations in the order that produces Figure 9's layout.
  Result<DmaRegion> tx_ring = env.DmaAllocCoherent(kTxDescriptors * 16);
  Result<DmaRegion> rx_ring = env.DmaAllocCoherent(kRxDescriptors * 16);
  Result<DmaRegion> tx_buffers = env.DmaAllocCaching(kTxBufferBytes);
  Result<DmaRegion> rx_buffers = env.DmaAllocCaching(kRxBufferBytes);
  if (!tx_ring.ok() || !rx_ring.ok() || !tx_buffers.ok() || !rx_buffers.ok()) {
    return Status(ErrorCode::kExhausted, "dma allocation failed in probe");
  }
  tx_ring_ = tx_ring.value();
  rx_ring_ = rx_ring.value();
  tx_buffers_ = tx_buffers.value();
  rx_buffers_ = rx_buffers.value();
  tx_slot_buffer_.assign(kTxDescriptors, -1);

  uml::NetDriverOps ops;
  ops.open = [this]() { return Open(); };
  ops.stop = [this]() { return Stop(); };
  ops.xmit = [this](uint64_t iova, uint32_t len, int32_t id) { return Xmit(iova, len, id); };
  ops.ioctl = [this](uint32_t cmd) { return Ioctl(cmd); };
  SUD_RETURN_IF_ERROR(env.RegisterNetdev(mac, std::move(ops)));

  // Link state is shared-memory state (netif_carrier_*, Section 3.3).
  Result<uint32_t> status_reg = env.MmioRead32(0, devices::kNicRegStatus);
  if (status_reg.ok() && (status_reg.value() & devices::kNicStatusLinkUp) != 0) {
    env.NetifCarrierOn();
  } else {
    env.NetifCarrierOff();
  }
  return Status::Ok();
}

void E1000eDriver::Remove(uml::DriverEnv& env) {
  if (open_) {
    (void)Stop();
  }
}

Status E1000eDriver::WriteDescriptor(uint64_t ring_iova, uint32_t index, uint64_t buffer_addr,
                                     uint16_t len, uint8_t cmd, uint8_t status) {
  Result<ByteSpan> view = env_->DmaView(ring_iova + static_cast<uint64_t>(index) * 16, 16);
  if (!view.ok()) {
    return view.status();
  }
  uint8_t* raw = view.value().data();
  StoreLe64(raw, buffer_addr);
  StoreLe16(raw + 8, len);
  raw[10] = 0;
  raw[11] = cmd;
  raw[12] = status;
  raw[13] = 0;
  StoreLe16(raw + 14, 0);
  return Status::Ok();
}

Result<NicDescriptor> E1000eDriver::ReadDescriptor(uint64_t ring_iova, uint32_t index) {
  Result<ByteSpan> view = env_->DmaView(ring_iova + static_cast<uint64_t>(index) * 16, 16);
  if (!view.ok()) {
    return view.status();
  }
  const uint8_t* raw = view.value().data();
  NicDescriptor desc;
  desc.buffer_addr = LoadLe64(raw);
  desc.length = LoadLe16(raw + 8);
  desc.cmd = raw[11];
  desc.status = raw[12];
  return desc;
}

Status E1000eDriver::ArmRxDescriptor(uint32_t index) {
  uint64_t buffer_iova = rx_buffers_.iova + static_cast<uint64_t>(index) * kRxBufferSize;
  return WriteDescriptor(rx_ring_.iova, index, buffer_iova, 0, 0, 0);
}

Status E1000eDriver::Open() {
  SUD_RETURN_IF_ERROR(env_->RequestIrq([this]() { IrqHandler(); }));

  // Program ring geometry.
  SUD_RETURN_IF_ERROR(
      env_->MmioWrite32(0, devices::kNicRegTdbal, static_cast<uint32_t>(tx_ring_.iova)));
  SUD_RETURN_IF_ERROR(
      env_->MmioWrite32(0, devices::kNicRegTdbah, static_cast<uint32_t>(tx_ring_.iova >> 32)));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTdlen, kTxDescriptors * 16));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTdh, 0));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTdt, 0));
  SUD_RETURN_IF_ERROR(
      env_->MmioWrite32(0, devices::kNicRegRdbal, static_cast<uint32_t>(rx_ring_.iova)));
  SUD_RETURN_IF_ERROR(
      env_->MmioWrite32(0, devices::kNicRegRdbah, static_cast<uint32_t>(rx_ring_.iova >> 32)));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegRdlen, kRxDescriptors * 16));

  // Arm every RX descriptor with one of our RX buffers.
  for (uint32_t i = 0; i < kRxDescriptors; ++i) {
    SUD_RETURN_IF_ERROR(ArmRxDescriptor(i));
  }
  rx_next_ = 0;
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegRdh, 0));
  // Tail one behind head: the full ring minus one is armed, as on real HW.
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegRdt, kRxDescriptors - 1));

  // Enable interrupts for TX writeback and RX.
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegIms,
                                        devices::kNicIntTxDone | devices::kNicIntRx));
  // Enable the MACs.
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegRctl, devices::kNicRctlEnable));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTctl, devices::kNicTctlEnable));
  tx_tail_ = 0;
  tx_reap_ = 0;
  open_ = true;
  return Status::Ok();
}

Status E1000eDriver::Stop() {
  open_ = false;
  (void)env_->MmioWrite32(0, devices::kNicRegImc, 0xffffffffu);
  (void)env_->MmioWrite32(0, devices::kNicRegRctl, 0);
  (void)env_->MmioWrite32(0, devices::kNicRegTctl, 0);
  return env_->FreeIrq();
}

Status E1000eDriver::Xmit(uint64_t frame_iova, uint32_t len, int32_t pool_buffer_id) {
  if (!open_) {
    return Status(ErrorCode::kUnavailable, "interface down");
  }
  uint32_t next = (tx_tail_ + 1) % kTxDescriptors;
  if (next == tx_reap_) {
    ReapTxCompletions();
    if (next == tx_reap_) {
      return Status(ErrorCode::kQueueFull, "tx ring full");
    }
  }
  // Zero-copy: point the descriptor at the frame where it already lives
  // (shared-pool buffer under SUD, bounce buffer in-kernel).
  SUD_RETURN_IF_ERROR(WriteDescriptor(tx_ring_.iova, tx_tail_, frame_iova,
                                      static_cast<uint16_t>(len),
                                      devices::kNicDescCmdEop | devices::kNicDescCmdReportStatus,
                                      0));
  tx_slot_buffer_[tx_tail_] = pool_buffer_id;
  tx_tail_ = next;
  ++stats_.tx_queued;
  return env_->MmioWrite32(0, devices::kNicRegTdt, tx_tail_);
}

void E1000eDriver::ReapTxCompletions() {
  while (tx_reap_ != tx_tail_) {
    Result<NicDescriptor> desc = ReadDescriptor(tx_ring_.iova, tx_reap_);
    if (!desc.ok() || (desc.value().status & devices::kNicDescStatusDone) == 0) {
      return;
    }
    if (tx_slot_buffer_[tx_reap_] >= 0) {
      env_->FreeTxBuffer(tx_slot_buffer_[tx_reap_]);
      tx_slot_buffer_[tx_reap_] = -1;
    }
    ++stats_.tx_completed;
    tx_reap_ = (tx_reap_ + 1) % kTxDescriptors;
  }
}

void E1000eDriver::ReapRxRing() {
  while (true) {
    Result<NicDescriptor> desc = ReadDescriptor(rx_ring_.iova, rx_next_);
    if (!desc.ok() || (desc.value().status & devices::kNicDescStatusDone) == 0) {
      return;
    }
    uint64_t buffer_iova = rx_buffers_.iova + static_cast<uint64_t>(rx_next_) * kRxBufferSize;
    (void)env_->NetifRx(buffer_iova, desc.value().length);
    ++stats_.rx_delivered;
    // Re-arm the descriptor and advance the tail so the device can reuse it.
    (void)ArmRxDescriptor(rx_next_);
    (void)env_->MmioWrite32(0, devices::kNicRegRdt, rx_next_);
    rx_next_ = (rx_next_ + 1) % kRxDescriptors;
  }
}

void E1000eDriver::IrqHandler() {
  ++stats_.interrupts;
  Result<uint32_t> icr = env_->MmioRead32(0, devices::kNicRegIcr);  // read-clears
  if (!icr.ok()) {
    return;
  }
  if ((icr.value() & devices::kNicIntTxDone) != 0) {
    ReapTxCompletions();
  }
  if ((icr.value() & devices::kNicIntRx) != 0) {
    ReapRxRing();
  }
}

Result<std::string> E1000eDriver::Ioctl(uint32_t cmd) {
  if (cmd != kern::kIoctlGetMiiStatus) {
    return Status(ErrorCode::kInvalidArgument, "unsupported ioctl");
  }
  // MII read of BMSR through MDIC, like nic_read_mii in Figure 2.
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegMdic, (2u << 26) | (1u << 16)));
  Result<uint32_t> mdic = env_->MmioRead32(0, devices::kNicRegMdic);
  if (!mdic.ok()) {
    return mdic.status();
  }
  bool link_up = (mdic.value() & (1u << 2)) != 0;
  return std::string(link_up ? "link up 1000Mb/s" : "link down");
}

}  // namespace sud::drivers
