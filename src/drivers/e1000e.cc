#include "src/drivers/e1000e.h"

#include <algorithm>
#include <cstring>

#include "src/base/bytes.h"
#include "src/base/log.h"
#include "src/kern/netdev.h"

namespace sud::drivers {

using devices::NicDescriptor;

E1000eDriver::E1000eDriver(uint32_t num_queues)
    : num_queues_(std::clamp<uint32_t>(num_queues, 1, devices::kNicNumQueues)) {
  rx_buffer_size_ = static_cast<uint32_t>(kRxBufferBytes / num_queues_ / kRxDescriptors);
}

Status E1000eDriver::Probe(uml::DriverEnv& env) {
  env_ = &env;
  SUD_RETURN_IF_ERROR(env.PciEnableDevice());
  SUD_RETURN_IF_ERROR(env.PciSetMaster());

  // Read the MAC from the receive-address registers (EEPROM-loaded).
  Result<uint32_t> ral = env.MmioRead32(0, devices::kNicRegRal0);
  Result<uint32_t> rah = env.MmioRead32(0, devices::kNicRegRah0);
  if (!ral.ok() || !rah.ok()) {
    return Status(ErrorCode::kUnavailable, "cannot read mac registers");
  }
  uint8_t mac[6];
  StoreLe32(mac, ral.value());
  StoreLe16(mac + 4, static_cast<uint16_t>(rah.value() & 0xffff));

  // DMA allocations in the order that produces Figure 9's layout for one
  // queue (TX rings first, then RX rings, then the two buffer arenas).
  for (uint32_t q = 0; q < num_queues_; ++q) {
    Result<DmaRegion> tx_ring = env.DmaAllocCoherent(kTxDescriptors * 16);
    if (!tx_ring.ok()) {
      return Status(ErrorCode::kExhausted, "dma allocation failed in probe");
    }
    queues_[q].tx_ring = tx_ring.value();
  }
  for (uint32_t q = 0; q < num_queues_; ++q) {
    Result<DmaRegion> rx_ring = env.DmaAllocCoherent(kRxDescriptors * 16);
    if (!rx_ring.ok()) {
      return Status(ErrorCode::kExhausted, "dma allocation failed in probe");
    }
    queues_[q].rx_ring = rx_ring.value();
  }
  Result<DmaRegion> tx_buffers = env.DmaAllocCaching(kTxBufferBytes);
  Result<DmaRegion> rx_buffers = env.DmaAllocCaching(kRxBufferBytes);
  if (!tx_buffers.ok() || !rx_buffers.ok()) {
    return Status(ErrorCode::kExhausted, "dma allocation failed in probe");
  }
  tx_buffers_ = tx_buffers.value();
  rx_buffers_ = rx_buffers.value();
  // TX is zero-copy (shared-pool buffers under SUD, bounce slots in-kernel),
  // so only the RX arena is partitioned per queue.
  for (uint32_t q = 0; q < num_queues_; ++q) {
    queues_[q].rx_buffers_iova = rx_buffers_.iova + static_cast<uint64_t>(q) *
                                                        (kRxBufferBytes / num_queues_);
    queues_[q].tx_slot_buffer.assign(kTxDescriptors, -1);
  }

  uml::NetDriverOps ops;
  ops.open = [this]() { return Open(); };
  ops.stop = [this]() { return Stop(); };
  ops.xmit = [this](uint64_t iova, uint32_t len, int32_t id, uint16_t queue) {
    return Xmit(iova, len, id, queue);
  };
  ops.ioctl = [this](uint32_t cmd) { return Ioctl(cmd); };
  ops.num_queues = static_cast<uint16_t>(num_queues_);
  SUD_RETURN_IF_ERROR(env.RegisterNetdev(mac, std::move(ops)));

  // Link state is shared-memory state (netif_carrier_*, Section 3.3).
  Result<uint32_t> status_reg = env.MmioRead32(0, devices::kNicRegStatus);
  if (status_reg.ok() && (status_reg.value() & devices::kNicStatusLinkUp) != 0) {
    env.NetifCarrierOn();
  } else {
    env.NetifCarrierOff();
  }
  return Status::Ok();
}

void E1000eDriver::Remove(uml::DriverEnv& env) {
  if (open_) {
    (void)Stop();
  }
}

Status E1000eDriver::WriteDescriptor(uint64_t ring_iova, uint32_t index, uint64_t buffer_addr,
                                     uint16_t len, uint8_t cmd, uint8_t status) {
  Result<ByteSpan> view = env_->DmaView(ring_iova + static_cast<uint64_t>(index) * 16, 16);
  if (!view.ok()) {
    return view.status();
  }
  uint8_t* raw = view.value().data();
  StoreLe64(raw, buffer_addr);
  StoreLe16(raw + 8, len);
  raw[10] = 0;
  raw[11] = cmd;
  raw[12] = status;
  raw[13] = 0;
  StoreLe16(raw + 14, 0);
  return Status::Ok();
}

Result<NicDescriptor> E1000eDriver::ReadDescriptor(uint64_t ring_iova, uint32_t index) {
  Result<ByteSpan> view = env_->DmaView(ring_iova + static_cast<uint64_t>(index) * 16, 16);
  if (!view.ok()) {
    return view.status();
  }
  const uint8_t* raw = view.value().data();
  NicDescriptor desc;
  desc.buffer_addr = LoadLe64(raw);
  desc.length = LoadLe16(raw + 8);
  desc.cmd = raw[11];
  desc.status = raw[12];
  return desc;
}

bool E1000eDriver::DescriptorDone(uint64_t ring_iova, uint32_t index) {
  Result<ByteSpan> view = env_->DmaView(ring_iova + static_cast<uint64_t>(index) * 16, 16);
  if (!view.ok()) {
    return false;
  }
  uint8_t status =
      std::atomic_ref<uint8_t>(view.value().data()[12]).load(std::memory_order_acquire);
  return (status & devices::kNicDescStatusDone) != 0;
}

Status E1000eDriver::ArmRxDescriptor(uint16_t queue, uint32_t index) {
  QueueState& qs = queues_[queue];
  uint64_t buffer_iova = qs.rx_buffers_iova + static_cast<uint64_t>(index) * rx_buffer_size_;
  return WriteDescriptor(qs.rx_ring.iova, index, buffer_iova, 0, 0, 0);
}

Status E1000eDriver::Open() {
  if (num_queues_ == 1) {
    SUD_RETURN_IF_ERROR(env_->RequestIrq([this]() { IrqHandler(); }));
  } else {
    SUD_RETURN_IF_ERROR(env_->RequestQueueIrqs(
        static_cast<uint16_t>(num_queues_),
        [this](uint16_t queue) { IrqHandlerQueue(queue); }));
  }

  // Program every queue's ring geometry.
  for (uint16_t q = 0; q < num_queues_; ++q) {
    QueueState& qs = queues_[q];
    uint64_t tx_base = QueueRegBase(devices::kNicRegTdbal, q);
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, tx_base + 0x0,
                                          static_cast<uint32_t>(qs.tx_ring.iova)));
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, tx_base + 0x4,
                                          static_cast<uint32_t>(qs.tx_ring.iova >> 32)));
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, tx_base + 0x8, kTxDescriptors * 16));
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, tx_base + 0x10, 0));
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, tx_base + 0x18, 0));
    uint64_t rx_base = QueueRegBase(devices::kNicRegRdbal, q);
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, rx_base + 0x0,
                                          static_cast<uint32_t>(qs.rx_ring.iova)));
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, rx_base + 0x4,
                                          static_cast<uint32_t>(qs.rx_ring.iova >> 32)));
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, rx_base + 0x8, kRxDescriptors * 16));

    // Arm every RX descriptor with one of our RX buffers.
    for (uint32_t i = 0; i < kRxDescriptors; ++i) {
      SUD_RETURN_IF_ERROR(ArmRxDescriptor(q, i));
    }
    qs.rx_next = 0;
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, rx_base + 0x10, 0));
    // Tail one behind head: the full ring minus one is armed, as on real HW.
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, rx_base + 0x18, kRxDescriptors - 1));
    qs.tx_tail = 0;
    qs.tx_reap = 0;
  }

  // Receive-side scaling: steer flows across the enabled queues with one
  // MSI message per queue (only programmed in multi-queue mode, so the
  // single-queue register sequence stays exactly the legacy one).
  uint32_t ims = devices::kNicIntTxDone | devices::kNicIntRx;
  if (num_queues_ > 1) {
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegMrqc, num_queues_));
    for (uint16_t q = 0; q < num_queues_; ++q) {
      ims |= devices::NicIntRxQueue(q) | devices::NicIntTxQueue(q);
    }
  }
  // Enable interrupts for TX writeback and RX.
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegIms, ims));
  // Enable the MACs.
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegRctl, devices::kNicRctlEnable));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTctl, devices::kNicTctlEnable));
  open_ = true;
  return Status::Ok();
}

Status E1000eDriver::Stop() {
  open_ = false;
  (void)env_->MmioWrite32(0, devices::kNicRegImc, 0xffffffffu);
  (void)env_->MmioWrite32(0, devices::kNicRegRctl, 0);
  (void)env_->MmioWrite32(0, devices::kNicRegTctl, 0);
  return env_->FreeIrq();
}

Status E1000eDriver::Xmit(uint64_t frame_iova, uint32_t len, int32_t pool_buffer_id,
                          uint16_t queue) {
  if (!open_) {
    return Status(ErrorCode::kUnavailable, "interface down");
  }
  if (queue >= num_queues_) {
    queue = 0;
  }
  QueueState& qs = queues_[queue];
  uint32_t next = (qs.tx_tail + 1) % kTxDescriptors;
  if (next == qs.tx_reap) {
    ReapTxCompletions(queue);
    if (next == qs.tx_reap) {
      return Status(ErrorCode::kQueueFull, "tx ring full");
    }
  }
  // Zero-copy: point the descriptor at the frame where it already lives
  // (shared-pool buffer under SUD, bounce buffer in-kernel).
  SUD_RETURN_IF_ERROR(WriteDescriptor(qs.tx_ring.iova, qs.tx_tail, frame_iova,
                                      static_cast<uint16_t>(len),
                                      devices::kNicDescCmdEop | devices::kNicDescCmdReportStatus,
                                      0));
  qs.tx_slot_buffer[qs.tx_tail] = pool_buffer_id;
  qs.tx_tail = next;
  stats_.tx_queued.fetch_add(1, std::memory_order_relaxed);
  return env_->MmioWrite32(0, QueueRegBase(devices::kNicRegTdbal, queue) + 0x18, qs.tx_tail);
}

void E1000eDriver::ReapTxCompletions(uint16_t queue) {
  QueueState& qs = queues_[queue];
  // TX completion coalescing: collect every freed pool buffer id and return
  // the batch in ONE free-buffer downcall at the end of the pass, instead of
  // one downcall per buffer.
  qs.free_scratch.clear();
  while (qs.tx_reap != qs.tx_tail) {
    // Acquire DD before reading the descriptor: the device may be writing
    // back later descriptors of this ring concurrently (its own Tick, or the
    // doorbell path still mid-pass on another thread).
    if (!DescriptorDone(qs.tx_ring.iova, qs.tx_reap)) {
      break;
    }
    if (qs.tx_slot_buffer[qs.tx_reap] >= 0) {
      qs.free_scratch.push_back(qs.tx_slot_buffer[qs.tx_reap]);
      qs.tx_slot_buffer[qs.tx_reap] = -1;
    }
    stats_.tx_completed.fetch_add(1, std::memory_order_relaxed);
    qs.tx_reap = (qs.tx_reap + 1) % kTxDescriptors;
  }
  if (!qs.free_scratch.empty()) {
    if (qs.free_scratch.size() > 1) {
      stats_.free_batches.fetch_add(1, std::memory_order_relaxed);
    }
    env_->FreeTxBuffers(queue, qs.free_scratch);
  }
}

void E1000eDriver::ReapRxRing(uint16_t queue) {
  QueueState& qs = queues_[queue];
  uint64_t rx_base = QueueRegBase(devices::kNicRegRdbal, queue);
  while (true) {
    // The device publishes DD last (release); pair it with an acquire load
    // before trusting the descriptor's other fields — the delivery may be
    // racing on another thread in ANY mode (threaded traffic-generator
    // peers deliver on their own threads even with one queue).
    if (!DescriptorDone(qs.rx_ring.iova, qs.rx_next)) {
      return;
    }
    // DD is set and acquire-ordered: the descriptor's fields are stable now.
    Result<NicDescriptor> desc = ReadDescriptor(qs.rx_ring.iova, qs.rx_next);
    if (!desc.ok()) {
      return;
    }
    uint64_t buffer_iova =
        qs.rx_buffers_iova + static_cast<uint64_t>(qs.rx_next) * rx_buffer_size_;
    (void)env_->NetifRx(buffer_iova, desc.value().length, queue);
    stats_.rx_delivered.fetch_add(1, std::memory_order_relaxed);
    // Re-arm the descriptor and advance the tail so the device can reuse it.
    (void)ArmRxDescriptor(queue, qs.rx_next);
    (void)env_->MmioWrite32(0, rx_base + 0x18, qs.rx_next);
    qs.rx_next = (qs.rx_next + 1) % kRxDescriptors;
  }
}

void E1000eDriver::IrqHandler() {
  stats_.interrupts.fetch_add(1, std::memory_order_relaxed);
  Result<uint32_t> icr = env_->MmioRead32(0, devices::kNicRegIcr);  // read-clears
  if (!icr.ok()) {
    return;
  }
  if ((icr.value() & devices::kNicIntTxDone) != 0) {
    ReapTxCompletions(0);
  }
  if ((icr.value() & devices::kNicIntRx) != 0) {
    ReapRxRing(0);
  }
}

void E1000eDriver::IrqHandlerQueue(uint16_t queue) {
  stats_.interrupts.fetch_add(1, std::memory_order_relaxed);
  if (queue >= num_queues_) {
    return;
  }
  // MSI-X style: the message number identifies the queue; there is no shared
  // cause register to read (and none this handler may touch — another
  // queue's thread might be in its own handler right now).
  ReapTxCompletions(queue);
  ReapRxRing(queue);
}

Result<std::string> E1000eDriver::Ioctl(uint32_t cmd) {
  if (cmd != kern::kIoctlGetMiiStatus) {
    return Status(ErrorCode::kInvalidArgument, "unsupported ioctl");
  }
  // MII read of BMSR through MDIC, like nic_read_mii in Figure 2.
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegMdic, (2u << 26) | (1u << 16)));
  Result<uint32_t> mdic = env_->MmioRead32(0, devices::kNicRegMdic);
  if (!mdic.ok()) {
    return mdic.status();
  }
  bool link_up = (mdic.value() & (1u << 2)) != 0;
  return std::string(link_up ? "link up 1000Mb/s" : "link down");
}

}  // namespace sud::drivers
