// E1000eDriver: the Gigabit Ethernet driver of the paper's evaluation.
//
// Written once against DriverEnv and run both in-kernel (DirectEnv) and as
// an untrusted SUD process (UmlRuntime), like the paper runs the stock
// e1000e in both configurations. Programming model follows the real driver:
// legacy descriptor rings allocated with dma_alloc_coherent, head/tail
// doorbells, ICR/IMS interrupt handling, MDIC for the MII ioctl.
//
// Multi-queue: constructed with N queues, the driver allocates N TX/RX ring
// pairs, programs each queue's register block, enables RSS (MRQC) and
// requests one MSI message per queue (RequestQueueIrqs). Queue q's handler
// touches only queue q's rings and buffers, so under SUD each queue can be
// pumped by its own thread. TX completions are *coalesced*: a reap pass
// returns every freed shared-pool buffer in one FreeTxBuffers call (one
// free-buffer downcall message) instead of one downcall per buffer.
//
// The single-queue probe-order DMA allocations reproduce Figure 9's
// IO-virtual layout:
//   TX ring descriptors   4 KB   @ 0x42430000
//   RX ring descriptors   8 KB   @ 0x42431000
//   TX buffers            8 MB   @ 0x42433000
//   RX buffers            8 MB   @ 0x42C33000
// (plus Intel's implicit MSI mapping at 0xFEE00000.) With N queues the ring
// allocations repeat per queue (TX rings first, then RX rings) and the RX
// buffer arena is partitioned N ways (TX stays zero-copy out of shared-pool
// buffers, so it needs no per-queue slices).

#ifndef SUD_SRC_DRIVERS_E1000E_H_
#define SUD_SRC_DRIVERS_E1000E_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/devices/sim_nic.h"
#include "src/uml/driver_env.h"

namespace sud::drivers {

class E1000eDriver : public uml::Driver {
 public:
  static constexpr uint32_t kTxDescriptors = 256;  // per queue
  static constexpr uint32_t kRxDescriptors = 512;  // per queue
  static constexpr uint64_t kTxBufferBytes = 8ull * 1024 * 1024;  // all queues
  static constexpr uint64_t kRxBufferBytes = 8ull * 1024 * 1024;  // all queues

  E1000eDriver() : E1000eDriver(1) {}
  explicit E1000eDriver(uint32_t num_queues);

  const char* name() const override { return "e1000e"; }
  Status Probe(uml::DriverEnv& env) override;
  void Remove(uml::DriverEnv& env) override;

  uint32_t num_queues() const { return num_queues_; }
  // Bytes of RX buffer behind each RX descriptor (queue arena / ring size).
  uint32_t rx_buffer_size() const { return rx_buffer_size_; }

  struct Stats {
    std::atomic<uint64_t> tx_queued{0};
    std::atomic<uint64_t> tx_completed{0};
    std::atomic<uint64_t> rx_delivered{0};
    std::atomic<uint64_t> interrupts{0};
    std::atomic<uint64_t> free_batches{0};  // coalesced completion downcalls
  };
  const Stats& stats() const { return stats_; }

  // NAPI-style poll: reaps every queue. The in-kernel baseline calls this
  // from its (coalesced) interrupt/poll path; under SUD the same body runs
  // from the per-queue interrupt upcalls.
  void NapiPoll() {
    if (num_queues_ == 1) {
      IrqHandler();
    } else {
      for (uint32_t q = 0; q < num_queues_; ++q) {
        IrqHandlerQueue(q);
      }
    }
  }

 private:
  // Per-queue ring state: owned exclusively by queue q's pump thread.
  struct QueueState {
    DmaRegion tx_ring{};
    DmaRegion rx_ring{};
    uint64_t rx_buffers_iova = 0;  // this queue's slice of the RX arena
    uint32_t tx_tail = 0;
    uint32_t tx_reap = 0;
    uint32_t rx_next = 0;
    // Pool buffer ids in flight per TX slot (-1 when in-kernel bounce).
    std::vector<int32_t> tx_slot_buffer;
    // Scratch for the coalesced free pass (reused, no per-reap allocation).
    std::vector<int32_t> free_scratch;
  };

  Status Open();
  Status Stop();
  Status Xmit(uint64_t frame_iova, uint32_t len, int32_t pool_buffer_id, uint16_t queue);
  Result<std::string> Ioctl(uint32_t cmd);
  // Legacy single-queue interrupt path: reads ICR (read-clears) and reaps.
  void IrqHandler();
  // Multi-queue (MSI-X style) path: the vector identifies the queue; no
  // shared cause register is touched.
  void IrqHandlerQueue(uint16_t queue);
  void ReapTxCompletions(uint16_t queue);
  void ReapRxRing(uint16_t queue);
  Status ArmRxDescriptor(uint16_t queue, uint32_t index);
  Status WriteDescriptor(uint64_t ring_iova, uint32_t index, uint64_t buffer_addr, uint16_t len,
                         uint8_t cmd, uint8_t status);
  Result<devices::NicDescriptor> ReadDescriptor(uint64_t ring_iova, uint32_t index);
  // Acquire-load of a descriptor's DD status bit, pairing with the device's
  // release publish: the gate every reap loop passes before trusting the
  // descriptor's other fields (delivery/writeback may race on other threads).
  bool DescriptorDone(uint64_t ring_iova, uint32_t index);
  uint64_t QueueRegBase(uint64_t base, uint16_t queue) const {
    return base + static_cast<uint64_t>(queue) * devices::kNicQueueRegStride;
  }

  uml::DriverEnv* env_ = nullptr;
  uint32_t num_queues_ = 1;
  uint32_t rx_buffer_size_ = 0;
  DmaRegion tx_buffers_{};
  DmaRegion rx_buffers_{};
  std::array<QueueState, devices::kNicNumQueues> queues_;
  bool open_ = false;
  Stats stats_;
};

}  // namespace sud::drivers

#endif  // SUD_SRC_DRIVERS_E1000E_H_
