// E1000eDriver: the Gigabit Ethernet driver of the paper's evaluation.
//
// Written once against DriverEnv and run both in-kernel (DirectEnv) and as
// an untrusted SUD process (UmlRuntime), like the paper runs the stock
// e1000e in both configurations. Programming model follows the real driver:
// legacy descriptor rings allocated with dma_alloc_coherent, head/tail
// doorbells, ICR/IMS interrupt handling, MDIC for the MII ioctl.
//
// Descriptor access goes through the shared hw::DescRingEngine in mapped
// mode: one cached DmaView window per descriptor cacheline serves the DD
// acquire-poll, the post-DD field reads and the re-arm writes — one window
// resolution per four descriptors where the old reap paid three separate
// DmaView calls per packet.
//
// Jumbo frames (mtu > 1500): the driver programs the per-queue RX buffer
// size register and RCTL.LPE, and reassembles the device's EOP descriptor
// chains — frames scattered across consecutive descriptors, DD per
// descriptor, EOP status on the last — delivering the whole frame in one
// netif_rx (or netif_rx_chain) call. Reassembly is BOUNDED: a chain that
// exceeds kern::kMaxChainFrags descriptors or the interface's maximum frame
// size without an EOP (the torn/endless-chain attack a malicious device or
// corrupted ring can mount) is dropped, counted in rx_chain_dropped, and the
// ring re-armed — the driver must stay live no matter what the descriptor
// memory claims, because in the in-kernel configuration this code IS the
// trusted side of the descriptor interface.
//
// TX scatter/gather (NETIF_F_SG): frag skbs arrive as fragment lists
// (NetDriverOps::xmit_chain) and are armed as multi-descriptor TX chains —
// every fragment report-status only, the last one CMD.EOP — symmetric with
// the RX EOP chains above. The reap completes on EOP only: a chain's pool
// buffers are freed together in the coalesced free-buffer batch once the
// EOP descriptor's DD lands, never while earlier fragments alone show DD.
//
// Multi-queue: constructed with N queues, the driver allocates N TX/RX ring
// pairs, programs each queue's register block, enables RSS (MRQC), programs
// the 128-entry RETA indirection table (identity layout, i % N — and
// ProgramReta() lets operators rebalance it at runtime) and requests one MSI
// message per queue (RequestQueueIrqs). Queue q's handler touches only
// queue q's rings and buffers, so under SUD each queue can be pumped by its
// own thread. TX completions are *coalesced*: a reap pass returns every
// freed shared-pool buffer in one FreeTxBuffers call (one free-buffer
// downcall message) instead of one downcall per buffer.
//
// The single-queue probe-order DMA allocations reproduce Figure 9's
// IO-virtual layout:
//   TX ring descriptors   4 KB   @ 0x42430000
//   RX ring descriptors   8 KB   @ 0x42431000
//   TX buffers            8 MB   @ 0x42433000
//   RX buffers            8 MB   @ 0x42C33000
// (plus Intel's implicit MSI mapping at 0xFEE00000.) With N queues the ring
// allocations repeat per queue (TX rings first, then RX rings) and the RX
// buffer arena is partitioned N ways (TX stays zero-copy out of shared-pool
// buffers, so it needs no per-queue slices).

#ifndef SUD_SRC_DRIVERS_E1000E_H_
#define SUD_SRC_DRIVERS_E1000E_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/devices/sim_nic.h"
#include "src/hw/desc_ring.h"
#include "src/kern/net_limits.h"
#include "src/kern/packet.h"
#include "src/uml/driver_env.h"

namespace sud::drivers {

class E1000eDriver : public uml::Driver {
 public:
  static constexpr uint32_t kTxDescriptors = 256;  // per queue
  static constexpr uint32_t kRxDescriptors = 512;  // per queue
  static constexpr uint64_t kTxBufferBytes = 8ull * 1024 * 1024;  // all queues
  static constexpr uint64_t kRxBufferBytes = 8ull * 1024 * 1024;  // all queues

  E1000eDriver() : E1000eDriver(1) {}
  explicit E1000eDriver(uint32_t num_queues) : E1000eDriver(num_queues, kern::kStdMtu) {}
  E1000eDriver(uint32_t num_queues, uint32_t mtu);

  const char* name() const override { return "e1000e"; }
  Status Probe(uml::DriverEnv& env) override;
  void Remove(uml::DriverEnv& env) override;

  uint32_t num_queues() const { return num_queues_; }
  uint32_t mtu() const { return mtu_; }
  // Bytes of RX buffer behind each RX descriptor (queue arena / ring size).
  uint32_t rx_buffer_size() const { return rx_buffer_size_; }

  // Programs the device's 128-entry RSS indirection table. `table` entries
  // are queue indices; callers rebalance flows by rewriting it (the
  // RETA-starvation attack programs it through this same path — the table
  // CONTENT is the attack, the mechanism is the legitimate one).
  Status ProgramReta(const std::array<uint8_t, devices::kNicRetaEntries>& table);
  // The identity layout Open() programs: entry i -> i % num_queues.
  static std::array<uint8_t, devices::kNicRetaEntries> IdentityReta(uint32_t num_queues);
  // Programs the device's 40-byte RSS hash key (RSSRK). The all-zero key is
  // the identity: steering stays bit-for-bit the historical unkeyed hash.
  // Open() deliberately does NOT program a key, so this — like ProgramReta —
  // is a post-open operator call the device clamps against regardless of
  // content.
  Status ProgramRssKey(const std::array<uint8_t, kern::kRssKeyBytes>& key);
  // Programs every open queue's EITR interrupt-moderation timer (256 ns
  // units; 0 = off, the reset default every historical row ran under).
  Status ProgramItr(uint32_t itr_units);

  struct Stats {
    std::atomic<uint64_t> tx_queued{0};          // frames (not descriptors)
    std::atomic<uint64_t> tx_desc_queued{0};     // TX descriptors armed
    std::atomic<uint64_t> tx_chains{0};          // frames armed as >1 descriptor
    std::atomic<uint64_t> tx_completed{0};
    std::atomic<uint64_t> rx_delivered{0};       // frames (not descriptors)
    std::atomic<uint64_t> rx_chains{0};          // multi-descriptor frames delivered
    std::atomic<uint64_t> rx_chain_dropped{0};   // torn/endless/oversize chains dropped
    std::atomic<uint64_t> interrupts{0};
    std::atomic<uint64_t> free_batches{0};  // coalesced completion downcalls
    // RX re-arm attempts repeated after a transient descriptor-write fault
    // (injected DMA-view failures): the re-arm barrier retries in place and
    // the tail doorbell never passes a slot that is still unarmed.
    std::atomic<uint64_t> rearm_retries{0};
  };
  const Stats& stats() const { return stats_; }
  // Descriptor-window accounting summed over every ring engine: DmaView
  // resolutions (one per cacheline) and descriptor accesses they served.
  uint64_t desc_window_maps() const;
  uint64_t desc_window_hits() const;

  // Test/introspection seams: the ring a queue's reap walks, where the next
  // reap will look, and the buffer slice behind a descriptor. The torn-chain
  // regression tests forge descriptor state through these, playing the
  // malicious device.
  uint64_t rx_ring_iova(uint16_t queue) const { return queues_[queue].rx_ring.iova; }
  uint32_t rx_next(uint16_t queue) const { return queues_[queue].rx_next; }
  uint64_t rx_buffer_iova(uint16_t queue, uint32_t index) const {
    return queues_[queue].rx_buffers_iova + static_cast<uint64_t>(index) * rx_buffer_size_;
  }

  // NAPI-style poll: reaps every queue. The in-kernel baseline calls this
  // from its (coalesced) interrupt/poll path; under SUD the same body runs
  // from the per-queue interrupt upcalls.
  void NapiPoll() {
    if (num_queues_ == 1) {
      IrqHandler();
    } else {
      for (uint32_t q = 0; q < num_queues_; ++q) {
        IrqHandlerQueue(q);
      }
    }
  }

 private:
  // DescRingEngine memory adapter: the driver's rings live in its own DMA
  // allocations, reachable through persistent DmaView windows.
  class EnvRingMem : public hw::RingMem {
   public:
    explicit EnvRingMem(E1000eDriver* driver) : driver_(driver) {}
    Status Read(uint64_t addr, ByteSpan out) override;
    Status Write(uint64_t addr, ConstByteSpan bytes) override;
    Result<ByteSpan> Map(uint64_t addr, uint64_t len) override;

   private:
    E1000eDriver* driver_;
  };

  // Per-queue ring state: owned exclusively by queue q's pump thread.
  struct QueueState {
    DmaRegion tx_ring{};
    DmaRegion rx_ring{};
    uint64_t rx_buffers_iova = 0;  // this queue's slice of the RX arena
    uint32_t tx_tail = 0;
    uint32_t tx_reap = 0;
    uint32_t rx_next = 0;
    std::unique_ptr<hw::DescRingEngine> tx_eng;
    std::unique_ptr<hw::DescRingEngine> rx_eng;
    // In-progress EOP chain: descriptor-order frags collected since the
    // chain's first descriptor (empty when no chain is pending).
    std::vector<uml::DmaFrag> chain;
    uint32_t chain_start = 0;  // ring index of the chain's first descriptor
    uint64_t chain_bytes = 0;
    // Resync after a dropped chain: descriptors are recycled unparsed until
    // the EOP that terminates the dropped frame passes by.
    bool skip_to_eop = false;
    // RX slots whose re-arm failed even after the bounded retries, in ring
    // order. They form a BARRIER: the tail doorbell never advances past the
    // first of them — an unarmed slot handed back to the device still shows
    // stale DD state, and the device would re-deliver a stale frame from it.
    // Retried at the head of every reap pass.
    std::deque<uint32_t> pending_rearm;
    // Pool buffer ids in flight per TX slot (-1 when in-kernel bounce).
    std::vector<int32_t> tx_slot_buffer;
    // Whether the TX slot carries a frame's last fragment (CMD.EOP as we
    // armed it): the reap completes on EOP only — a chain's buffers are
    // freed together, never while the device may still be fetching the tail.
    std::vector<uint8_t> tx_slot_eop;
    // Scratch for the coalesced free pass (reused, no per-reap allocation).
    std::vector<int32_t> free_scratch;
  };

  Status Open();
  Status Stop();
  Status Xmit(uint64_t frame_iova, uint32_t len, int32_t pool_buffer_id, uint16_t queue);
  // Scatter/gather transmit: arms one descriptor per fragment — full frags
  // report-status only, the last one CMD.EOP — and rings the doorbell once
  // for the whole chain. Whole-chain-or-nothing: without room for every
  // fragment the frame is refused, never partially armed.
  Status XmitChain(const std::vector<uml::TxFrag>& frags, uint16_t queue);
  Result<std::string> Ioctl(uint32_t cmd);
  // Legacy single-queue interrupt path: reads ICR (read-clears) and reaps.
  void IrqHandler();
  // Multi-queue (MSI-X style) path: the vector identifies the queue; no
  // shared cause register is touched.
  void IrqHandlerQueue(uint16_t queue);
  void ReapTxCompletions(uint16_t queue);
  void ReapRxRing(uint16_t queue);
  Status ArmRxDescriptor(uint16_t queue, uint32_t index);
  // Queues `index` for re-arm and drains the backlog (arm + one tail write).
  void ArmRxAndAdvanceTail(uint16_t queue, uint32_t index, uint64_t rx_base);
  // Arms as many pending slots as the DMA window allows, in ring order, with
  // bounded per-slot retries, then advances the tail to the last armed slot.
  // Stops (leaving the barrier in place) at the first slot that stays
  // unarmed.
  void DrainRearmBacklog(uint16_t queue, uint64_t rx_base);
  // Re-arms every descriptor of the pending chain and hands them back to the
  // device with one tail write; clears the chain state.
  void RecycleChain(uint16_t queue);
  uint64_t QueueRegBase(uint64_t base, uint16_t queue) const {
    return base + static_cast<uint64_t>(queue) * devices::kNicQueueRegStride;
  }

  uml::DriverEnv* env_ = nullptr;
  uint32_t num_queues_ = 1;
  uint32_t mtu_ = static_cast<uint32_t>(kern::kStdMtu);
  uint32_t rx_buffer_size_ = 0;
  EnvRingMem ring_mem_{this};
  DmaRegion tx_buffers_{};
  DmaRegion rx_buffers_{};
  std::array<QueueState, devices::kNicNumQueues> queues_;
  bool open_ = false;
  Stats stats_;
};

}  // namespace sud::drivers

#endif  // SUD_SRC_DRIVERS_E1000E_H_
