// E1000eDriver: the Gigabit Ethernet driver of the paper's evaluation.
//
// Written once against DriverEnv and run both in-kernel (DirectEnv) and as
// an untrusted SUD process (UmlRuntime), like the paper runs the stock
// e1000e in both configurations. Programming model follows the real driver:
// legacy descriptor rings allocated with dma_alloc_coherent, head/tail
// doorbells, ICR/IMS interrupt handling, MDIC for the MII ioctl.
//
// The probe-order DMA allocations reproduce Figure 9's IO-virtual layout:
//   TX ring descriptors   4 KB   @ 0x42430000
//   RX ring descriptors   8 KB   @ 0x42431000
//   TX buffers            8 MB   @ 0x42433000
//   RX buffers            8 MB   @ 0x42C33000
// (plus Intel's implicit MSI mapping at 0xFEE00000).

#ifndef SUD_SRC_DRIVERS_E1000E_H_
#define SUD_SRC_DRIVERS_E1000E_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/devices/sim_nic.h"
#include "src/uml/driver_env.h"

namespace sud::drivers {

class E1000eDriver : public uml::Driver {
 public:
  static constexpr uint32_t kTxDescriptors = 256;
  static constexpr uint32_t kRxDescriptors = 512;
  static constexpr uint64_t kTxBufferBytes = 8ull * 1024 * 1024;
  static constexpr uint64_t kRxBufferBytes = 8ull * 1024 * 1024;
  static constexpr uint32_t kRxBufferSize = 16384;  // kRxBufferBytes / kRxDescriptors

  const char* name() const override { return "e1000e"; }
  Status Probe(uml::DriverEnv& env) override;
  void Remove(uml::DriverEnv& env) override;

  struct Stats {
    uint64_t tx_queued = 0;
    uint64_t tx_completed = 0;
    uint64_t rx_delivered = 0;
    uint64_t interrupts = 0;
  };
  const Stats& stats() const { return stats_; }

  // NAPI-style poll: reads ICR and reaps both rings. The in-kernel baseline
  // calls this from its (coalesced) interrupt/poll path; under SUD the same
  // body runs from the interrupt upcall.
  void NapiPoll() { IrqHandler(); }

 private:
  Status Open();
  Status Stop();
  Status Xmit(uint64_t frame_iova, uint32_t len, int32_t pool_buffer_id);
  Result<std::string> Ioctl(uint32_t cmd);
  void IrqHandler();
  void ReapTxCompletions();
  void ReapRxRing();
  Status ArmRxDescriptor(uint32_t index);
  Status WriteDescriptor(uint64_t ring_iova, uint32_t index, uint64_t buffer_addr, uint16_t len,
                         uint8_t cmd, uint8_t status);
  Result<devices::NicDescriptor> ReadDescriptor(uint64_t ring_iova, uint32_t index);

  uml::DriverEnv* env_ = nullptr;
  DmaRegion tx_ring_{};
  DmaRegion rx_ring_{};
  DmaRegion tx_buffers_{};
  DmaRegion rx_buffers_{};
  uint32_t tx_tail_ = 0;
  uint32_t tx_reap_ = 0;
  uint32_t rx_next_ = 0;
  bool open_ = false;
  // Pool buffer ids in flight per TX slot (-1 when in-kernel bounce).
  std::vector<int32_t> tx_slot_buffer_;
  Stats stats_;
};

}  // namespace sud::drivers

#endif  // SUD_SRC_DRIVERS_E1000E_H_
