#include "src/drivers/iwl.h"

#include <cstring>

#include "src/base/log.h"
#include "src/kern/wireless.h"

namespace sud::drivers {

Status IwlDriver::Probe(uml::DriverEnv& env) {
  env_ = &env;
  SUD_RETURN_IF_ERROR(env.PciEnableDevice());
  SUD_RETURN_IF_ERROR(env.PciSetMaster());

  // Scan results land here via device DMA; 64 records is plenty of air.
  Result<DmaRegion> results = env.DmaAllocCoherent(64 * devices::kBssRecordSize);
  if (!results.ok()) {
    return results.status();
  }
  scan_results_ = results.value();

  SUD_RETURN_IF_ERROR(env.RequestIrq([this]() { IrqHandler(); }));
  SUD_RETURN_IF_ERROR(env.MmioWrite32(0, devices::kWifiRegIms,
                                      devices::kWifiIntScanDone | devices::kWifiIntBssChanged |
                                          devices::kWifiIntTxDone));

  uml::WifiDriverOps ops;
  ops.scan = [this]() { return Scan(); };
  ops.associate = [this](const std::string& ssid) { return Associate(ssid); };
  ops.enable_features = [this](uint32_t features) { EnableFeatures(features); };
  uint32_t supported = kern::kWifiFeatureShortPreamble | kern::kWifiFeatureQos |
                       kern::kWifiFeaturePowerSave;
  SUD_RETURN_IF_ERROR(env.RegisterWifi(supported, std::move(ops)));

  // Publish the (static) bitrate table into the kernel mirror.
  env.WifiSetBitrates({1, 2, 11, 6, 9, 12, 18, 24, 36, 48, 54});
  return Status::Ok();
}

Result<std::vector<kern::ScanResult>> IwlDriver::Scan() {
  ++stats_.scans;
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kWifiRegCmdArgLo,
                                        static_cast<uint32_t>(scan_results_.iova)));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kWifiRegCmdArgHi,
                                        static_cast<uint32_t>(scan_results_.iova >> 32)));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kWifiRegCmd, devices::kWifiCmdScan));

  Result<uint32_t> count = env_->MmioRead32(0, devices::kWifiRegScanCount);
  if (!count.ok()) {
    return count.status();
  }
  std::vector<kern::ScanResult> out;
  for (uint32_t i = 0; i < count.value() && i < 64; ++i) {
    Result<ByteSpan> record =
        env_->DmaView(scan_results_.iova + i * devices::kBssRecordSize, devices::kBssRecordSize);
    if (!record.ok()) {
      return record.status();
    }
    const uint8_t* raw = record.value().data();
    kern::ScanResult result;
    std::memcpy(result.bssid.data(), raw, 6);
    const char* ssid = reinterpret_cast<const char*>(raw + 8);
    result.ssid.assign(ssid, strnlen(ssid, 28));
    result.channel = raw[36];
    result.signal_dbm = static_cast<int8_t>(raw[37]);
    out.push_back(std::move(result));
  }
  return out;
}

Status IwlDriver::Associate(const std::string& ssid) {
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kWifiRegCmd, devices::kWifiCmdAssoc));
  Result<uint32_t> state = env_->MmioRead32(0, devices::kWifiRegAssocState);
  if (!state.ok()) {
    return state.status();
  }
  if (state.value() != 1) {
    return Status(ErrorCode::kUnavailable, "association to " + ssid + " failed");
  }
  ++stats_.associations;
  return Status::Ok();
}

void IwlDriver::EnableFeatures(uint32_t features) {
  enabled_features_ = features;
  ++feature_updates_;
}

void IwlDriver::IrqHandler() {
  ++stats_.interrupts;
  Result<uint32_t> icr = env_->MmioRead32(0, devices::kWifiRegIcr);
  if (!icr.ok()) {
    return;
  }
  if ((icr.value() & devices::kWifiIntBssChanged) != 0) {
    Result<uint32_t> state = env_->MmioRead32(0, devices::kWifiRegAssocState);
    env_->WifiBssChange(state.ok() && state.value() == 1);
  }
}

}  // namespace sud::drivers
