// IwlDriver: the iwlagn-5000-class 802.11 driver.
//
// Scan results are DMA'd by the device into a driver-allocated buffer; BSS
// changes are reported back through the bss_change downcall; the bitrate
// table is mirrored shared-memory state (Section 3.3). Feature enablement
// arrives as the asynchronous upcall queued by the wireless proxy from the
// kernel's non-preemptable feature path (Section 3.1.1).

#ifndef SUD_SRC_DRIVERS_IWL_H_
#define SUD_SRC_DRIVERS_IWL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/devices/wifi_nic.h"
#include "src/uml/driver_env.h"

namespace sud::drivers {

class IwlDriver : public uml::Driver {
 public:
  const char* name() const override { return "iwlagn5000"; }
  Status Probe(uml::DriverEnv& env) override;

  uint32_t enabled_features() const { return enabled_features_; }
  uint64_t feature_updates() const { return feature_updates_; }

  struct Stats {
    uint64_t scans = 0;
    uint64_t associations = 0;
    uint64_t interrupts = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  Result<std::vector<kern::ScanResult>> Scan();
  Status Associate(const std::string& ssid);
  void EnableFeatures(uint32_t features);
  void IrqHandler();

  uml::DriverEnv* env_ = nullptr;
  DmaRegion scan_results_{};
  uint32_t enabled_features_ = 0;
  uint64_t feature_updates_ = 0;
  Stats stats_;
};

}  // namespace sud::drivers

#endif  // SUD_SRC_DRIVERS_IWL_H_
