#include "src/drivers/malicious.h"

#include <cstring>

#include "src/base/bytes.h"
#include "src/base/log.h"
#include "src/hw/iommu.h"
#include "src/hw/pci_config.h"
#include "src/kern/net_limits.h"

namespace sud::drivers {

namespace {

// Writes one legacy NIC descriptor into driver-owned ring memory.
Status WriteDescRaw(uml::DriverEnv& env, uint64_t ring_iova, uint32_t index, uint64_t buffer_addr,
                    uint16_t len, uint8_t cmd) {
  Result<ByteSpan> view = env.DmaView(ring_iova + static_cast<uint64_t>(index) * 16, 16);
  if (!view.ok()) {
    return view.status();
  }
  uint8_t* raw = view.value().data();
  std::memset(raw, 0, 16);
  StoreLe64(raw, buffer_addr);
  StoreLe16(raw + 8, len);
  raw[11] = cmd;
  return Status::Ok();
}

}  // namespace

Status DmaAttackDriver::Probe(uml::DriverEnv& env) {
  env_ = &env;
  SUD_RETURN_IF_ERROR(env.PciEnableDevice());
  SUD_RETURN_IF_ERROR(env.PciSetMaster());
  Result<DmaRegion> ring = env.DmaAllocCoherent(16 * 16);  // a tiny 16-slot ring
  if (!ring.ok()) {
    return ring.status();
  }
  ring_ = ring.value();
  return Status::Ok();
}

Status DmaAttackDriver::LaunchTxRead() {
  // TX descriptor whose "packet" is the attack target: the device will try
  // to DMA-*read* from it and transmit the loot.
  SUD_RETURN_IF_ERROR(WriteDescRaw(*env_, ring_.iova, 0, target_addr_, 64,
                                   devices::kNicDescCmdEop));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTdbal,
                                        static_cast<uint32_t>(ring_.iova)));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTdbah,
                                        static_cast<uint32_t>(ring_.iova >> 32)));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTdlen, 16 * 16));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTdh, 0));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTctl, devices::kNicTctlEnable));
  ++doorbell_writes_;
  return env_->MmioWrite32(0, devices::kNicRegTdt, 1);
}

Status DmaAttackDriver::LaunchRxWrite() {
  // Armed RX descriptor whose buffer is the target: the next incoming frame
  // makes the device DMA-*write* attacker-influenced bytes there.
  SUD_RETURN_IF_ERROR(WriteDescRaw(*env_, ring_.iova, 0, target_addr_, 0, 0));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegRdbal,
                                        static_cast<uint32_t>(ring_.iova)));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegRdbah,
                                        static_cast<uint32_t>(ring_.iova >> 32)));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegRdlen, 16 * 16));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegRdh, 0));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegRdt, 1));
  ++doorbell_writes_;
  return env_->MmioWrite32(0, devices::kNicRegRctl, devices::kNicRctlEnable);
}

Status MsiStormDriver::Probe(uml::DriverEnv& env) {
  env_ = &env;
  SUD_RETURN_IF_ERROR(env.PciEnableDevice());
  SUD_RETURN_IF_ERROR(env.PciSetMaster());
  Result<DmaRegion> ring = env.DmaAllocCoherent(256 * 16);
  if (!ring.ok()) {
    return ring.status();
  }
  ring_ = ring.value();
  return Status::Ok();
}

Status MsiStormDriver::Arm(uint32_t descriptors) {
  // Every RX buffer is the MSI doorbell. An incoming frame whose first two
  // bytes are (vector, 0) becomes an interrupt with that vector.
  for (uint32_t i = 0; i < descriptors && i < 256; ++i) {
    SUD_RETURN_IF_ERROR(WriteDescRaw(*env_, ring_.iova, i, hw::kMsiRangeBase, 0, 0));
  }
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegRdbal,
                                        static_cast<uint32_t>(ring_.iova)));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegRdbah,
                                        static_cast<uint32_t>(ring_.iova >> 32)));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegRdlen, 256 * 16));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegRdh, 0));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegRdt, descriptors % 256));
  return env_->MmioWrite32(0, devices::kNicRegRctl, devices::kNicRctlEnable);
}

Status NeverAckDriver::Probe(uml::DriverEnv& env) {
  env_ = &env;
  SUD_RETURN_IF_ERROR(env.PciEnableDevice());
  SUD_RETURN_IF_ERROR(env.PciSetMaster());
  // Registers an IRQ handler that does nothing and never acknowledges.
  // Under SUD the runtime normally acks after the handler; this driver
  // bypasses the runtime loop, so interrupts stay unacknowledged.
  Result<DmaRegion> ring = env.DmaAllocCoherent(16 * 16);
  if (!ring.ok()) {
    return ring.status();
  }
  ring_ = ring.value();
  SUD_RETURN_IF_ERROR(env.MmioWrite32(0, devices::kNicRegIms, 0xffffffffu));
  return Status::Ok();
}

Status NeverAckDriver::TriggerInterrupt() {
  // Clear ICR (as a functioning interrupt handler would) so the next cause
  // asserts a fresh edge — but never send the SUD interrupt_ack downcall.
  (void)env_->MmioRead32(0, devices::kNicRegIcr);
  // A 1-descriptor transmit makes the device raise TXDW.
  SUD_RETURN_IF_ERROR(WriteDescRaw(*env_, ring_.iova, 0, ring_.iova + 128, 64,
                                   devices::kNicDescCmdEop));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTdbal,
                                        static_cast<uint32_t>(ring_.iova)));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTdbah,
                                        static_cast<uint32_t>(ring_.iova >> 32)));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTdlen, 16 * 16));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTdh, 0));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTctl, devices::kNicTctlEnable));
  return env_->MmioWrite32(0, devices::kNicRegTdt, 1);
}

Status UnresponsiveDriver::Probe(uml::DriverEnv& env) {
  // Registers a netdev whose every op "hangs" (returns nothing useful and
  // would never reply in a real process; under the pumped model the upcall
  // simply gets no Reply, which is exactly what the kernel sees).
  uint8_t mac[6] = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01};
  uml::NetDriverOps ops;  // all callbacks empty: dispatch produces no reply
  return env.RegisterNetdev(mac, std::move(ops));
}

Status ConfigAttackDriver::Probe(uml::DriverEnv& env) {
  env_ = &env;
  struct Attempt {
    uint16_t offset;
    int width;
    uint32_t value;
  };
  const Attempt attempts[] = {
      {hw::kPciBar0, 4, 0xfee00000u},         // relocate BAR over the MSI window
      {hw::kPciBar0 + 4, 4, 0xe0000000u},     // relocate over a sibling device
      {hw::kMsiAddress, 4, 0x1000u},          // redirect MSI doorbell into DRAM
      {hw::kMsiData, 2, 0x00feu},             // forge the interrupt vector
      {hw::kMsiControl, 2, 0x0000u},          // disable kernel's mask control
      {hw::kPciCapPointer, 1, 0x00u},         // hide the capability chain
      {hw::kPciCommand, 2, 0xffffu},          // set every command bit (SERR etc.)
      {hw::kPciInterruptLine, 1, 0x0au},      // legacy interrupt rerouting
  };
  for (const Attempt& attempt : attempts) {
    ++outcome_.attempts;
    Status status = env.PciConfigWrite(attempt.offset, attempt.width, attempt.value);
    if (status.ok()) {
      ++outcome_.succeeded;
    } else {
      ++outcome_.denied;
    }
  }
  return Status::Ok();
}

Status IoPortAttackDriver::Probe(uml::DriverEnv& env) {
  env_ = &env;
  // Classic targets: keyboard controller, PIC, PCI config mechanism, and a
  // neighbour's probable IO BAR.
  const uint16_t targets[] = {0x60, 0x64, 0x20, 0xcf8, 0xcfc, 0xc000};
  for (uint16_t port : targets) {
    ++attempts_;
    if (!env.IoWrite8(port, 0xff).ok()) {
      ++denied_;
    }
  }
  return Status::Ok();
}

Status BogusRxDriver::Probe(uml::DriverEnv& env) {
  env_ = &env;
  // Register a plausible netdev so netif_rx downcalls reach the proxy's
  // address validation (the attack surface under test).
  uint8_t mac[6] = {0xba, 0xdb, 0xad, 0x00, 0x00, 0x01};
  uml::NetDriverOps ops;
  ops.open = []() { return Status::Ok(); };
  ops.stop = []() { return Status::Ok(); };
  return env.RegisterNetdev(mac, std::move(ops));
}

Result<int> BogusRxDriver::Fire(int count) {
  int accepted = 0;
  const uint64_t wild_iovas[] = {0x0, 0x1000, 0xfee00000ull, 0xffffffff00000000ull, 0x42000000ull};
  for (int i = 0; i < count; ++i) {
    uint64_t iova = wild_iovas[i % (sizeof(wild_iovas) / sizeof(wild_iovas[0]))];
    uint32_t len = (i % 2 == 0) ? 1514 : 0xffffu;
    if (env_->NetifRx(iova, len).ok()) {
      // Async downcall: acceptance means the proxy processed it without
      // complaint — the flush path returns per-message errors via msg.error,
      // which NetifRx folds into its Status on the synchronous flush.
      ++accepted;
    }
  }
  return accepted;
}

Status RetaAttackDriver::Probe(uml::DriverEnv& env) {
  env_ = &env;
  SUD_RETURN_IF_ERROR(env.PciEnableDevice());
  SUD_RETURN_IF_ERROR(env.PciSetMaster());
  // Full multi-queue mode, every hash bucket aimed at the victim, receive
  // enabled with NO descriptors armed anywhere: every delivered frame can
  // only pile into the victim queue's bounded backlog and then drop.
  SUD_RETURN_IF_ERROR(env.MmioWrite32(0, devices::kNicRegMrqc, devices::kNicNumQueues));
  SUD_RETURN_IF_ERROR(Concentrate());
  return env.MmioWrite32(0, devices::kNicRegRctl, devices::kNicRctlEnable);
}

Status RetaAttackDriver::Concentrate() {
  uint32_t packed = static_cast<uint32_t>(victim_queue_) * 0x01010101u;
  for (uint32_t i = 0; i < devices::kNicRetaEntries; i += 4) {
    SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegReta + i, packed));
  }
  return Status::Ok();
}

Status DupDeliveryDriver::Probe(uml::DriverEnv& env) {
  env_ = &env;
  uint8_t mac[6] = {0xba, 0xdc, 0x8a, 0x00, 0x00, 0x07};
  uml::NetDriverOps ops;
  ops.open = []() { return Status::Ok(); };
  ops.stop = []() { return Status::Ok(); };
  SUD_RETURN_IF_ERROR(env.RegisterNetdev(mac, std::move(ops)));
  // One page: the whole attack is aimed at that page's seal refcount.
  Result<DmaRegion> buffers = env.DmaAllocCaching(hw::kPageSize);
  if (!buffers.ok()) {
    return buffers.status();
  }
  buffers_ = buffers.value();
  return Status::Ok();
}

Result<int> DupDeliveryDriver::DeliverSameBuffer(ConstByteSpan frame, int times) {
  Result<ByteSpan> view = env_->DmaView(buffers_.iova, frame.size());
  if (!view.ok()) {
    return view.status();
  }
  std::memcpy(view.value().data(), frame.data(), frame.size());
  int accepted = 0;
  for (int i = 0; i < times; ++i) {
    if (env_->NetifRx(buffers_.iova, static_cast<uint32_t>(frame.size())).ok()) {
      ++accepted;
    }
  }
  return accepted;
}

Status ChainAttackDriver::Probe(uml::DriverEnv& env) {
  env_ = &env;
  // A plausible netdev so the chain downcalls reach the proxy's validation,
  // plus a real DMA region so the "oversize but in-bounds" chains cannot be
  // rejected for their addresses alone.
  uint8_t mac[6] = {0xba, 0xdc, 0x8a, 0x00, 0x00, 0x02};
  uml::NetDriverOps ops;
  ops.open = []() { return Status::Ok(); };
  ops.stop = []() { return Status::Ok(); };
  SUD_RETURN_IF_ERROR(env.RegisterNetdev(mac, std::move(ops)));
  Result<DmaRegion> buffers = env.DmaAllocCaching(64 * 1024);
  if (!buffers.ok()) {
    return buffers.status();
  }
  buffers_ = buffers.value();
  return Status::Ok();
}

Result<int> ChainAttackDriver::FireOversizeChains(int count) {
  // Every fragment is a real, mapped buffer — only the TOTAL is criminal:
  // eight 2048-byte fragments claim a 16 KB "frame", past the jumbo maximum.
  int accepted = 0;
  for (int i = 0; i < count; ++i) {
    std::vector<uml::DmaFrag> frags(8, uml::DmaFrag{buffers_.iova, 2048});
    if (env_->NetifRxChain(frags).ok()) {
      ++accepted;
    }
  }
  return accepted;
}

Result<int> ChainAttackDriver::FireOverCapChains(int count) {
  // More fragments than any legal chain can span (the endless-chain shape,
  // marshalled): tiny fragments, absurd count.
  int accepted = 0;
  for (int i = 0; i < count; ++i) {
    std::vector<uml::DmaFrag> frags(kern::kMaxChainFrags + 8,
                                    uml::DmaFrag{buffers_.iova, 64});
    if (env_->NetifRxChain(frags).ok()) {
      ++accepted;
    }
  }
  return accepted;
}

Result<int> ChainAttackDriver::FireWildChains(int count) {
  // A torn chain whose continuation points at kernel memory / the MSI page /
  // nowhere: the first fragment is legitimate, the rest must never be
  // dereferenced.
  const uint64_t wild_iovas[] = {0x0, 0x1000, 0xfee00000ull, 0xffffffff00000000ull};
  int accepted = 0;
  for (int i = 0; i < count; ++i) {
    std::vector<uml::DmaFrag> frags;
    frags.push_back(uml::DmaFrag{buffers_.iova, 1024});
    frags.push_back(uml::DmaFrag{
        wild_iovas[static_cast<size_t>(i) % (sizeof(wild_iovas) / sizeof(wild_iovas[0]))],
        1024});
    if (env_->NetifRxChain(frags).ok()) {
      ++accepted;
    }
  }
  return accepted;
}

Status TxChainAttackDriver::Probe(uml::DriverEnv& env) {
  env_ = &env;
  SUD_RETURN_IF_ERROR(env.PciEnableDevice());
  SUD_RETURN_IF_ERROR(env.PciSetMaster());
  Result<DmaRegion> ring = env.DmaAllocCoherent(kRingSlots * 16);
  if (!ring.ok()) {
    return ring.status();
  }
  ring_ = ring.value();
  Result<DmaRegion> buffers = env.DmaAllocCaching(kRingSlots * kFragLen);
  if (!buffers.ok()) {
    return buffers.status();
  }
  buffers_ = buffers.value();
  SUD_RETURN_IF_ERROR(env.MmioWrite32(0, devices::kNicRegTdbal,
                                      static_cast<uint32_t>(ring_.iova)));
  SUD_RETURN_IF_ERROR(env.MmioWrite32(0, devices::kNicRegTdbah,
                                      static_cast<uint32_t>(ring_.iova >> 32)));
  SUD_RETURN_IF_ERROR(env.MmioWrite32(0, devices::kNicRegTdlen, kRingSlots * 16));
  SUD_RETURN_IF_ERROR(env.MmioWrite32(0, devices::kNicRegTdh, 0));
  SUD_RETURN_IF_ERROR(env.MmioWrite32(0, devices::kNicRegTdt, 0));
  return env.MmioWrite32(0, devices::kNicRegTctl, devices::kNicTctlEnable);
}

Status TxChainAttackDriver::ArmFrag(uint16_t len, uint8_t cmd, uint8_t pattern) {
  uint32_t slot = tail_ % kRingSlots;
  uint64_t buffer = buffers_.iova + static_cast<uint64_t>(slot) * kFragLen;
  Result<ByteSpan> view = env_->DmaView(buffer, kFragLen);
  if (!view.ok()) {
    return view.status();
  }
  std::memset(view.value().data(), pattern, kFragLen);
  SUD_RETURN_IF_ERROR(WriteDescRaw(*env_, ring_.iova, slot, buffer, len, cmd));
  tail_ = (tail_ + 1) % kRingSlots;
  return Status::Ok();
}

Status TxChainAttackDriver::Doorbell() {
  return env_->MmioWrite32(0, devices::kNicRegTdt, tail_);
}

Result<uint32_t> TxChainAttackDriver::FireEndlessChain(uint8_t pattern) {
  // The whole ring (minus the reserved slot), not a single EOP anywhere.
  uint32_t armed = 0;
  for (; armed < kRingSlots - 1; ++armed) {
    SUD_RETURN_IF_ERROR(ArmFrag(kFragLen, /*cmd=*/0, pattern));
  }
  SUD_RETURN_IF_ERROR(Doorbell());
  return armed;
}

Status TxChainAttackDriver::FireTornChain(uint32_t frags, uint8_t pattern) {
  for (uint32_t i = 0; i < frags; ++i) {
    SUD_RETURN_IF_ERROR(ArmFrag(kFragLen, /*cmd=*/0, pattern));
  }
  return Doorbell();
}

Status TxChainAttackDriver::FinishTornChain(uint8_t pattern) {
  SUD_RETURN_IF_ERROR(ArmFrag(kFragLen, devices::kNicDescCmdEop, pattern));
  return Doorbell();
}

Status TxChainAttackDriver::FireOverCapChain(uint32_t extra, uint8_t pattern) {
  // Tiny fragments so the DESCRIPTOR cap trips (the endless chain above
  // trips the byte bound first): more frags than any legal chain, EOP at the
  // very end — which the resync must consume with the dropped frame.
  constexpr uint16_t kTinyFrag = 64;
  uint32_t frags = static_cast<uint32_t>(kern::kMaxChainFrags) + extra;
  if (frags > kRingSlots - 1) {
    frags = kRingSlots - 1;
  }
  for (uint32_t i = 0; i + 1 < frags; ++i) {
    SUD_RETURN_IF_ERROR(ArmFrag(kTinyFrag, /*cmd=*/0, pattern));
  }
  SUD_RETURN_IF_ERROR(ArmFrag(kTinyFrag, devices::kNicDescCmdEop, pattern));
  return Doorbell();
}

Status TxChainAttackDriver::SendGoodFrame(uint8_t pattern, uint16_t len) {
  SUD_RETURN_IF_ERROR(ArmFrag(len, devices::kNicDescCmdEop, pattern));
  return Doorbell();
}

Status BufferReuseAttackDriver::Probe(uml::DriverEnv& env) {
  env_ = &env;
  uint8_t mac[6] = {0xba, 0xdf, 0x4e, 0x00, 0x00, 0x03};
  uml::NetDriverOps ops;
  ops.open = []() { return Status::Ok(); };
  ops.stop = []() { return Status::Ok(); };
  return env.RegisterNetdev(mac, std::move(ops));
}

Status BufferReuseAttackDriver::FireReusedFrees(int32_t id, int times) {
  // One coalesced completion batch that "frees" the same buffer id over and
  // over, plus an id the pool never handed out — the marshalled form of a
  // chain completing with duplicated fragment buffers.
  std::vector<int32_t> ids(static_cast<size_t>(times), id);
  ids.push_back(0x7ffffff0);
  env_->FreeTxBuffers(0, ids);
  return Status::Ok();
}

Status StaleReplayDriver::Probe(uml::DriverEnv& env) {
  env_ = &env;
  uint8_t mac[6] = {0xba, 0xd5, 0x7a, 0x00, 0x00, 0x04};
  uml::NetDriverOps ops;
  ops.open = []() { return Status::Ok(); };
  ops.stop = []() { return Status::Ok(); };
  // Accept every transmit, stash the handle, never free: the handle leaks
  // into attacker-persisted storage and the staging buffer stays in flight
  // (what Teardown must quarantine when this instance is killed).
  ops.xmit = [this](uint64_t, uint32_t, int32_t pool_buffer_id, uint16_t) {
    if (pool_buffer_id >= 0) {
      notebook_->push_back(pool_buffer_id);
    }
    return Status::Ok();
  };
  ops.xmit_chain = [this](const std::vector<uml::TxFrag>& frags, uint16_t) {
    for (const uml::TxFrag& frag : frags) {
      if (frag.pool_buffer_id >= 0) {
        notebook_->push_back(frag.pool_buffer_id);
      }
    }
    return Status::Ok();
  };
  return env.RegisterNetdev(mac, std::move(ops));
}

Status StaleReplayDriver::ReplayFrees() { return ReplayFreesWith({}); }

Status StaleReplayDriver::ReplayFreesWith(const std::vector<int32_t>& current) {
  std::vector<int32_t> ids = *notebook_;
  ids.insert(ids.end(), current.begin(), current.end());
  if (ids.empty()) {
    return Status(ErrorCode::kInvalidArgument, "nothing to replay");
  }
  env_->FreeTxBuffers(0, ids);
  return Status::Ok();
}

Status DescRewriteAttackDriver::Probe(uml::DriverEnv& env) {
  env_ = &env;
  SUD_RETURN_IF_ERROR(env.PciEnableDevice());
  SUD_RETURN_IF_ERROR(env.PciSetMaster());
  Result<DmaRegion> ring = env.DmaAllocCoherent(16 * 16);
  if (!ring.ok()) {
    return ring.status();
  }
  ring_ = ring.value();
  Result<DmaRegion> buffers = env.DmaAllocCaching(16 * kFrameLen);
  if (!buffers.ok()) {
    return buffers.status();
  }
  buffers_ = buffers.value();
  return Status::Ok();
}

Status DescRewriteAttackDriver::ArmAndDoorbell(uint32_t descriptors, uint8_t pattern) {
  if (descriptors > 15) {
    descriptors = 15;  // 16-slot ring, tail must stay one short of head
  }
  Result<ByteSpan> buffers = env_->DmaView(buffers_.iova, buffers_.bytes);
  if (!buffers.ok()) {
    return buffers.status();
  }
  std::memset(buffers.value().data(), pattern, buffers.value().size());
  for (uint32_t i = 0; i < descriptors; ++i) {
    SUD_RETURN_IF_ERROR(WriteDescRaw(*env_, ring_.iova, i,
                                     buffers_.iova + static_cast<uint64_t>(i) * kFrameLen,
                                     kFrameLen, devices::kNicDescCmdEop));
  }
  armed_ = descriptors;
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTdbal,
                                        static_cast<uint32_t>(ring_.iova)));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTdbah,
                                        static_cast<uint32_t>(ring_.iova >> 32)));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTdlen, 16 * 16));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTdh, 0));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTctl, devices::kNicTctlEnable));
  return env_->MmioWrite32(0, devices::kNicRegTdt, descriptors);
}

Status DescRewriteAttackDriver::ArmChainAndDoorbell(uint32_t chain_frags, uint8_t pattern) {
  if (chain_frags == 0 || chain_frags > 14) {
    return Status(ErrorCode::kInvalidArgument, "chain must fit the 16-slot ring");
  }
  Result<ByteSpan> buffers = env_->DmaView(buffers_.iova, buffers_.bytes);
  if (!buffers.ok()) {
    return buffers.status();
  }
  std::memset(buffers.value().data(), pattern, buffers.value().size());
  // Slot 0: a single-descriptor lead frame — its wire hop is the rewrite
  // window. Slots 1..chain_frags: ONE frame as an SG chain, EOP only on the
  // last fragment.
  SUD_RETURN_IF_ERROR(WriteDescRaw(*env_, ring_.iova, 0, buffers_.iova, kFrameLen,
                                   devices::kNicDescCmdEop));
  for (uint32_t i = 1; i <= chain_frags; ++i) {
    uint8_t cmd = i == chain_frags ? devices::kNicDescCmdEop : 0;
    SUD_RETURN_IF_ERROR(WriteDescRaw(*env_, ring_.iova, i,
                                     buffers_.iova + static_cast<uint64_t>(i) * kFrameLen,
                                     kFrameLen, cmd));
  }
  armed_ = chain_frags + 1;
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTdbal,
                                        static_cast<uint32_t>(ring_.iova)));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTdbah,
                                        static_cast<uint32_t>(ring_.iova >> 32)));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTdlen, 16 * 16));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTdh, 0));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kNicRegTctl, devices::kNicTctlEnable));
  return env_->MmioWrite32(0, devices::kNicRegTdt, armed_);
}

void DescRewriteAttackDriver::RewriteDescriptors(uint32_t from, uint32_t to,
                                                 uint64_t target_addr, uint16_t len) {
  for (uint32_t i = from; i < to && i < 15; ++i) {
    (void)WriteDescRaw(*env_, ring_.iova, i, target_addr, len, devices::kNicDescCmdEop);
  }
}

Status DescRewriteAttackDriver::RedoorbellSameTail() {
  return env_->MmioWrite32(0, devices::kNicRegTdt, armed_);
}

Status ResourceHogDriver::Probe(uml::DriverEnv& env) {
  env_ = &env;
  // Grab 1 MB at a time until the rlimit (or DRAM) stops us.
  for (int i = 0; i < 4096; ++i) {
    Result<DmaRegion> region = env.DmaAllocCoherent(1024 * 1024);
    if (!region.ok()) {
      hit_limit_ = true;
      break;
    }
    bytes_obtained_ += region.value().bytes;
  }
  return Status::Ok();
}

}  // namespace sud::drivers
