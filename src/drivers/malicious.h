// The malicious driver family: Section 5.2's explicit attack test cases.
//
// Each driver below is a fully adversarial user-space driver that uses only
// the interfaces SUD grants it — the filtered config syscalls, its own MMIO
// window, its DMA files, the uchan — and tries to break out. The security
// test suite and bench/sec_attack_matrix run every one of these against the
// confinement stack and assert the blast radius is exactly the driver's own
// sandbox.
//
// Attack inventory:
//   DmaAttackDriver        device DMA to arbitrary physical memory (kernel
//                          structures, other drivers' buffers) via TX/RX
//                          descriptors pointing outside the IOMMU mappings
//   P2pAttackDriver        device DMA aimed at a *sibling device's BAR* —
//                          peer-to-peer routing, blocked only by ACS
//   MsiStormDriver         RX descriptors aimed at the MSI doorbell address:
//                          every incoming frame becomes a forged interrupt
//                          (the livelock of §5.2)
//   NeverAckDriver         handles no interrupts, never acks: tests MSI
//                          masking of device-originated storms
//   UnresponsiveDriver     accepts probe then ignores every upcall: tests
//                          interruptable synchronous upcalls (ifconfig ^C)
//   ConfigAttackDriver     tries to rewrite BARs / the MSI capability / evil
//                          command-register bits through the config syscall
//   IoPortAttackDriver     pokes IO ports outside its IOPB grant
//   BogusRxDriver          netif_rx downcalls with wild iovas and lengths
//   ResourceHogDriver      allocates DMA until its rlimit stops it
//   RetaAttackDriver       programs the RSS indirection table to concentrate
//                          every flow onto one queue (starvation): drops must
//                          stay bounded per-queue and rebalancing must undo it
//   ChainAttackDriver      netif_rx *chain* downcalls forging torn/endless
//                          EOP chains: oversize totals, over-cap fragment
//                          counts, wild fragment addresses
//   DescRewriteAttackDriver arms benign TX descriptors, then rewrites them
//                          mid-burst (after the device's cacheline fetch) to
//                          aim at a victim: the device must transmit the
//                          fetched snapshot, exactly once
//   TxChainAttackDriver    forged TX scatter/gather chains at the descriptor
//                          level: endless (a whole ring with no EOP), torn
//                          (fragments armed, EOP never rung) and over-cap
//                          chains — the device must gather whole-frame-or-
//                          nothing, drop bounded, and stay live
//   BufferReuseAttackDriver free-buffer downcalls reusing one pool buffer id
//                          across a "chain" (double-use/double-free): the
//                          pool must tolerate and count it, never corrupt
//   StaleReplayDriver      harvests real pool handles pre-crash into attacker-
//                          persisted storage, then — as the post-restart
//                          instance — replays them as free batches: the pool's
//                          epoch validation must reject and count every one
//   DupDeliveryDriver      delivers the SAME RX buffer repeatedly via fresh
//                          netif_rx downcalls: under sealed (zero-copy)
//                          delivery the page's seal must be refcounted — the
//                          first skb free must NOT unseal while a second
//                          delivered skb still references the page

#ifndef SUD_SRC_DRIVERS_MALICIOUS_H_
#define SUD_SRC_DRIVERS_MALICIOUS_H_

#include <cstdint>
#include <vector>

#include "src/devices/sim_nic.h"
#include "src/uml/driver_env.h"

namespace sud::drivers {

// Aims its NIC's descriptor rings at arbitrary "physical" targets. Under
// SUD the device's DMA faults in the IOMMU; the victim bytes stay intact.
class DmaAttackDriver : public uml::Driver {
 public:
  // `target_addr` is where the attacker wants the device to read/write
  // (e.g. a kernel physical address, or another device's DMA buffer iova).
  explicit DmaAttackDriver(uint64_t target_addr) : target_addr_(target_addr) {}

  const char* name() const override { return "dma-attack"; }
  Status Probe(uml::DriverEnv& env) override;

  // Launches: TX descriptor whose buffer is the target (device *read*), and
  // an armed RX descriptor whose buffer is the target (device *write* on the
  // next incoming frame).
  Status LaunchTxRead();
  Status LaunchRxWrite();

  uint64_t doorbell_writes() const { return doorbell_writes_; }

 private:
  uml::DriverEnv* env_ = nullptr;
  uint64_t target_addr_;
  DmaRegion ring_{};
  uint64_t doorbell_writes_ = 0;
};

// Same attack but the target is a sibling device's MMIO BAR: exercises the
// PCIe switch routing and ACS (P2P redirect + source validation).
using P2pAttackDriver = DmaAttackDriver;  // identical mechanics, different target

// Arms RX descriptors pointing at the MSI doorbell: each received frame is
// DMA-written to 0xFEE00000 and becomes a forged interrupt whose vector the
// attacker controls through the first two frame bytes.
class MsiStormDriver : public uml::Driver {
 public:
  explicit MsiStormDriver(uint8_t forged_vector) : forged_vector_(forged_vector) {}

  const char* name() const override { return "msi-storm"; }
  Status Probe(uml::DriverEnv& env) override;
  Status Arm(uint32_t descriptors);
  uint8_t forged_vector() const { return forged_vector_; }

 private:
  uml::DriverEnv* env_ = nullptr;
  uint8_t forged_vector_;
  DmaRegion ring_{};
};

// A functional driver that never acknowledges its interrupts, so the device
// keeps a cause pending. SUD must mask after the second delivery.
class NeverAckDriver : public uml::Driver {
 public:
  const char* name() const override { return "never-ack"; }
  Status Probe(uml::DriverEnv& env) override;
  // Pokes the device into raising another interrupt (for the test loop).
  Status TriggerInterrupt();

 private:
  uml::DriverEnv* env_ = nullptr;
  DmaRegion ring_{};
};

// Probes fine, then ignores every upcall forever (the infinite-loop driver
// of Section 3). Liveness tests point synchronous upcalls at it.
class UnresponsiveDriver : public uml::Driver {
 public:
  const char* name() const override { return "unresponsive"; }
  Status Probe(uml::DriverEnv& env) override;
};

// Attempts every filtered config-space write and records what got through.
class ConfigAttackDriver : public uml::Driver {
 public:
  const char* name() const override { return "config-attack"; }
  Status Probe(uml::DriverEnv& env) override;

  struct Outcome {
    uint32_t attempts = 0;
    uint32_t denied = 0;
    uint32_t succeeded = 0;  // must stay 0 for the sensitive set
  };
  const Outcome& outcome() const { return outcome_; }

 private:
  uml::DriverEnv* env_ = nullptr;
  Outcome outcome_;
};

// Pokes legacy IO ports it was never granted (keyboard controller, another
// device's BAR, PCI config ports).
class IoPortAttackDriver : public uml::Driver {
 public:
  const char* name() const override { return "ioport-attack"; }
  Status Probe(uml::DriverEnv& env) override;

  uint32_t attempts() const { return attempts_; }
  uint32_t denied() const { return denied_; }

 private:
  uml::DriverEnv* env_ = nullptr;
  uint32_t attempts_ = 0;
  uint32_t denied_ = 0;
};

// Issues netif_rx downcalls with addresses outside its DMA space and absurd
// lengths; the proxy must reject every one.
class BogusRxDriver : public uml::Driver {
 public:
  const char* name() const override { return "bogus-rx"; }
  Status Probe(uml::DriverEnv& env) override;
  // Fires `count` bogus downcalls; returns how many the kernel accepted
  // (must be 0).
  Result<int> Fire(int count);

 private:
  uml::DriverEnv* env_ = nullptr;
};

// Allocates DMA memory until the process rlimit stops it.
class ResourceHogDriver : public uml::Driver {
 public:
  const char* name() const override { return "resource-hog"; }
  Status Probe(uml::DriverEnv& env) override;

  uint64_t bytes_obtained() const { return bytes_obtained_; }
  bool hit_limit() const { return hit_limit_; }

 private:
  uml::DriverEnv* env_ = nullptr;
  uint64_t bytes_obtained_ = 0;
  bool hit_limit_ = false;
};

// Programs MRQC to the full queue count and every RETA entry to one victim
// queue: all receive flows concentrate there (starvation). No descriptors
// are ever armed, so the attack also stresses the per-queue backlog bound —
// the blast radius must be the device's own bounded drops, nothing else.
class RetaAttackDriver : public uml::Driver {
 public:
  explicit RetaAttackDriver(uint8_t victim_queue) : victim_queue_(victim_queue) {}

  const char* name() const override { return "reta-attack"; }
  Status Probe(uml::DriverEnv& env) override;
  // Rewrites the whole table to the victim queue (callable repeatedly,
  // e.g. racing a rebalance).
  Status Concentrate();

 private:
  uml::DriverEnv* env_ = nullptr;
  uint8_t victim_queue_;
};

// Delivers one page-aligned RX buffer of its own DMA space over and over:
// each netif_rx is individually well-formed (valid packet, fresh seq), but
// the set references the same page N times. The unseal-on-free race this
// arms: if the proxy unsealed on the FIRST skb's release, the remaining
// delivered skbs would reference writable shared bytes.
class DupDeliveryDriver : public uml::Driver {
 public:
  const char* name() const override { return "dup-delivery"; }
  Status Probe(uml::DriverEnv& env) override;
  // Writes `frame` into the buffer and delivers it `times` times; returns
  // how many deliveries the kernel accepted.
  Result<int> DeliverSameBuffer(ConstByteSpan frame, int times);
  uint64_t buffer_iova() const { return buffers_.iova; }

 private:
  uml::DriverEnv* env_ = nullptr;
  DmaRegion buffers_{};
};

// Forges netif_rx chain downcalls — the marshalled form of an EOP
// descriptor chain — that a correct driver could never produce: fragment
// lists summing past the jumbo maximum, fragment counts past the chain cap,
// and fragments pointing outside the driver's DMA space. The proxy must
// reject every one before a single byte is dereferenced.
class ChainAttackDriver : public uml::Driver {
 public:
  const char* name() const override { return "chain-attack"; }
  Status Probe(uml::DriverEnv& env) override;

  // Each enqueues `count` forged chain downcalls and returns how many the
  // runtime accepted for transport (the rejection happens kernel-side:
  // judge containment by the proxy's rx_bad_chain / rx_packets counters
  // after a pump).
  Result<int> FireOversizeChains(int count);
  Result<int> FireOverCapChains(int count);
  Result<int> FireWildChains(int count);

 private:
  uml::DriverEnv* env_ = nullptr;
  DmaRegion buffers_{};
};

// Forges TX scatter/gather descriptor chains the way a hostile driver (or
// corrupted ring memory) would: CMD.EOP withheld so the device's gather
// never terminates (endless), terminates past the chain cap (over-cap), or
// is armed partially and never completed (torn). Contained means: nothing of
// a forged chain reaches the wire, drops are bounded and counted
// (tx_dropped_chain), the ring resyncs to the next EOP boundary, and a
// well-formed frame transmits afterwards — the device stays live no matter
// what the descriptors claim.
class TxChainAttackDriver : public uml::Driver {
 public:
  const char* name() const override { return "tx-chain-attack"; }
  Status Probe(uml::DriverEnv& env) override;

  // Arms every descriptor of the ring (minus the reserved slot) with payload
  // fragments and NO EOP anywhere, then rings the doorbell: the endless
  // chain. Returns the number of descriptors armed.
  Result<uint32_t> FireEndlessChain(uint8_t pattern);
  // Arms `frags` no-EOP fragments and doorbells them — then stops. The torn
  // chain: the device must park the partial gather without transmitting or
  // wedging. FinishTornChain arms the terminating EOP fragment later.
  Status FireTornChain(uint32_t frags, uint8_t pattern);
  Status FinishTornChain(uint8_t pattern);
  // Arms kern::kMaxChainFrags + `extra` fragments, EOP on the last: the
  // over-cap chain. Must be dropped whole (the EOP is consumed by the
  // resync, exactly like the RX bound).
  Status FireOverCapChain(uint32_t extra, uint8_t pattern);
  // A well-formed single-descriptor frame: the liveness probe.
  Status SendGoodFrame(uint8_t pattern, uint16_t len);

  uint32_t frag_len() const { return kFragLen; }

 private:
  // Arms the descriptor at tail_ and advances; doorbell() publishes the tail.
  Status ArmFrag(uint16_t len, uint8_t cmd, uint8_t pattern);
  Status Doorbell();

  static constexpr uint32_t kRingSlots = 64;
  static constexpr uint16_t kFragLen = 512;
  uml::DriverEnv* env_ = nullptr;
  DmaRegion ring_{};
  DmaRegion buffers_{};
  uint32_t tail_ = 0;
};

// Returns free-buffer batches that reuse one pool buffer id across a
// "chain's" completion — the double-use/double-free a hostile driver can
// always marshal. The pool must tolerate it (count double_frees), keep the
// free list consistent, and keep serving the transmit path.
class BufferReuseAttackDriver : public uml::Driver {
 public:
  const char* name() const override { return "buffer-reuse-attack"; }
  Status Probe(uml::DriverEnv& env) override;
  // Sends one coalesced free-buffer batch repeating `id` `times` times plus
  // a wild id, as a malicious chain completion would.
  Status FireReusedFrees(int32_t id, int times);

 private:
  uml::DriverEnv* env_ = nullptr;
};

// The restart-time replay attacker. The pre-crash instance behaves like a
// buggy-but-plausible driver: it accepts transmits and records every pool
// buffer handle it is given into `notebook` (modeling state the attacker
// stashed outside the process — a file, a colluding peer) WITHOUT ever
// freeing them, so the kill also strands in-flight staging (the quarantine
// case). The post-restart instance replays the notebook as coalesced
// free-buffer batches; every id names a dead epoch and the pool must reject
// and count each one without touching the live free list.
class StaleReplayDriver : public uml::Driver {
 public:
  explicit StaleReplayDriver(std::vector<int32_t>* notebook) : notebook_(notebook) {}

  const char* name() const override { return "stale-replay"; }
  Status Probe(uml::DriverEnv& env) override;

  // Replays every notebook handle in one coalesced free batch.
  Status ReplayFrees();
  // Replays the notebook with `current` live handles appended: the mixed
  // batch — stale ids must be rejected while the live ones free normally.
  Status ReplayFreesWith(const std::vector<int32_t>& current);

 private:
  uml::DriverEnv* env_ = nullptr;
  std::vector<int32_t>* notebook_;
};

// Arms a window of benign TX descriptors, rings the doorbell, and — timed by
// the harness to land inside the device's reap pass, after the cacheline
// burst fetch — rewrites the not-yet-transmitted descriptors to aim at a
// secret address. Contained means: the device transmits exactly the armed
// bytes, exactly once, and the secret never reaches the wire. The chain
// variant arms a lead frame plus one multi-descriptor SG chain, so the
// rewrite lands mid-CHAIN: snapshot immunity must hold fragment-wise too.
class DescRewriteAttackDriver : public uml::Driver {
 public:
  const char* name() const override { return "desc-rewrite"; }
  Status Probe(uml::DriverEnv& env) override;

  // Arms `descriptors` TX descriptors, each pointing at a buffer filled with
  // `pattern`, and rings the doorbell for all of them.
  Status ArmAndDoorbell(uint32_t descriptors, uint8_t pattern);
  // Arms one single-descriptor lead frame plus one `chain_frags`-fragment SG
  // chain (EOP only on the last), and rings the doorbell once. The harness
  // rewrites the chain's descriptors while the lead frame is on the wire —
  // inside the device's burst window.
  Status ArmChainAndDoorbell(uint32_t chain_frags, uint8_t pattern);
  // The mid-burst rewrite: repoints descriptors [from, to) at `target_addr`
  // with `len`-byte reads. Invoked from the harness's link endpoint while
  // the device is mid-pass.
  void RewriteDescriptors(uint32_t from, uint32_t to, uint64_t target_addr, uint16_t len);
  // Re-rings the doorbell at the same tail (a replay probe: must not
  // retransmit anything).
  Status RedoorbellSameTail();

  uint32_t armed() const { return armed_; }
  uint16_t frame_len() const { return kFrameLen; }

 private:
  static constexpr uint16_t kFrameLen = 64;
  uml::DriverEnv* env_ = nullptr;
  DmaRegion ring_{};
  DmaRegion buffers_{};
  uint32_t armed_ = 0;
};

// The perfectly-timed attacker half of the rewrite attacks: a link endpoint
// that — on the FIRST delivered frame, i.e. while the device is mid-pass
// with the queue lock dropped for the wire hop and descriptors [from, to)
// sitting in its fetched cacheline — rewrites those descriptors to aim at
// `target`, then records every frame for the containment verdict.
struct DescRewritePeer : devices::EtherEndpoint {
  DescRewriteAttackDriver* driver = nullptr;
  uint64_t target = 0;
  uint32_t from = 1;
  uint32_t to = 4;
  uint16_t len = 64;
  bool rewritten = false;
  std::vector<std::vector<uint8_t>> frames;
  void DeliverFrame(ConstByteSpan frame) override {
    if (!rewritten) {
      rewritten = true;
      driver->RewriteDescriptors(from, to, target, len);
    }
    frames.emplace_back(frame.begin(), frame.end());
  }
};

}  // namespace sud::drivers

#endif  // SUD_SRC_DRIVERS_MALICIOUS_H_
