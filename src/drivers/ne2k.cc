#include "src/drivers/ne2k.h"

#include "src/base/log.h"

namespace sud::drivers {

uint8_t Ne2kDriver::In(uint16_t reg) {
  Result<uint8_t> value = env_->IoRead8(static_cast<uint16_t>(io_base_ + reg));
  ++stats_.pio_bytes;
  return value.ok() ? value.value() : 0xff;
}

void Ne2kDriver::Out(uint16_t reg, uint8_t value) {
  (void)env_->IoWrite8(static_cast<uint16_t>(io_base_ + reg), value);
  ++stats_.pio_bytes;
}

Status Ne2kDriver::Probe(uml::DriverEnv& env) {
  env_ = &env;
  SUD_RETURN_IF_ERROR(env.PciEnableDevice());
  // request_region: have our ports added to the IOPB before touching them.
  SUD_RETURN_IF_ERROR(env.RequestIoRegion());
  Result<uint16_t> base = env.IoBarBase();
  if (!base.ok()) {
    return base.status();
  }
  io_base_ = base.value();

  uint8_t mac[6];
  for (int i = 0; i < 6; ++i) {
    mac[i] = In(static_cast<uint16_t>(devices::kNe2kPortPar0 + i));
  }

  uml::NetDriverOps ops;
  ops.open = [this]() { return Open(); };
  ops.stop = [this]() { return Stop(); };
  ops.xmit = [this](uint64_t iova, uint32_t len, int32_t id, uint16_t /*queue*/) {
    return Xmit(iova, len, id);  // single-queue device: steering is a no-op
  };
  ops.ioctl = [this](uint32_t cmd) -> Result<std::string> {
    return Status(ErrorCode::kInvalidArgument, "ne2k supports no ioctls");
  };
  SUD_RETURN_IF_ERROR(env.RegisterNetdev(mac, std::move(ops)));
  env.NetifCarrierOn();
  return Status::Ok();
}

Status Ne2kDriver::Open() {
  Out(devices::kNe2kPortCmd, devices::kNe2kCmdStart);
  open_ = true;
  return Status::Ok();
}

Status Ne2kDriver::Stop() {
  Out(devices::kNe2kPortCmd, devices::kNe2kCmdStop);
  open_ = false;
  return Status::Ok();
}

Status Ne2kDriver::Xmit(uint64_t frame_iova, uint32_t len, int32_t pool_buffer_id) {
  if (!open_) {
    return Status(ErrorCode::kUnavailable, "interface down");
  }
  Result<ByteSpan> frame = env_->DmaView(frame_iova, len);
  if (!frame.ok()) {
    return frame.status();
  }
  // PIO the frame into the card through the data port, then fire transmit.
  for (uint32_t i = 0; i < len; ++i) {
    Out(devices::kNe2kPortData, frame.value()[i]);
  }
  Out(devices::kNe2kPortTbcr0, static_cast<uint8_t>(len & 0xff));
  Out(devices::kNe2kPortTbcr1, static_cast<uint8_t>(len >> 8));
  Out(devices::kNe2kPortCmd, devices::kNe2kCmdStart | devices::kNe2kCmdTransmit);
  ++stats_.tx_frames;
  if (pool_buffer_id >= 0) {
    env_->FreeTxBuffer(pool_buffer_id);
  }
  return Status::Ok();
}

Result<int> Ne2kDriver::Poll() {
  if (!open_) {
    return 0;
  }
  int delivered = 0;
  // Use a scratch DMA region as the landing area for netif_rx (the kernel
  // needs the bytes in driver-owned memory).
  static constexpr uint32_t kScratchBytes = 2048;
  if (scratch_iova_ == 0) {
    Result<DmaRegion> scratch = env_->DmaAllocCaching(kScratchBytes);
    if (!scratch.ok()) {
      return scratch.status();
    }
    scratch_iova_ = scratch.value().iova;
  }
  while ((In(devices::kNe2kPortIsr) & devices::kNe2kIsrRx) != 0) {
    uint16_t len = In(devices::kNe2kPortData);
    len |= static_cast<uint16_t>(In(devices::kNe2kPortData)) << 8;
    if (len == 0 || len > kScratchBytes) {
      break;
    }
    Result<ByteSpan> scratch = env_->DmaView(scratch_iova_, len);
    if (!scratch.ok()) {
      return scratch.status();
    }
    for (uint16_t i = 0; i < len; ++i) {
      scratch.value()[i] = In(devices::kNe2kPortData);
    }
    (void)env_->NetifRx(scratch_iova_, len);
    ++stats_.rx_frames;
    ++delivered;
  }
  return delivered;
}

}  // namespace sud::drivers
