// Ne2kDriver: the ne2k-pci legacy driver — pure IO-port programming.
//
// Exercises the second driver-initiated access path of Section 3.2.1: the
// driver calls request_region (a downcall under SUD) to get its device's
// ports added to the process IOPB, then drives the NIC entirely with
// inb/outb. No DMA, no MSI: reception is polled, which is why the driver
// exposes Poll() for its harness to call.

#ifndef SUD_SRC_DRIVERS_NE2K_H_
#define SUD_SRC_DRIVERS_NE2K_H_

#include <cstdint>
#include <vector>

#include "src/devices/ne2k_nic.h"
#include "src/uml/driver_env.h"

namespace sud::drivers {

class Ne2kDriver : public uml::Driver {
 public:
  const char* name() const override { return "ne2k-pci"; }
  Status Probe(uml::DriverEnv& env) override;

  // Polled receive: drains the device ring into netif_rx. Returns the number
  // of frames delivered.
  Result<int> Poll();

  struct Stats {
    uint64_t tx_frames = 0;
    uint64_t rx_frames = 0;
    uint64_t pio_bytes = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  Status Open();
  Status Stop();
  Status Xmit(uint64_t frame_iova, uint32_t len, int32_t pool_buffer_id);

  uint8_t In(uint16_t reg);
  void Out(uint16_t reg, uint8_t value);

  uml::DriverEnv* env_ = nullptr;
  uint16_t io_base_ = 0;
  bool open_ = false;
  uint64_t scratch_iova_ = 0;
  Stats stats_;
};

}  // namespace sud::drivers

#endif  // SUD_SRC_DRIVERS_NE2K_H_
