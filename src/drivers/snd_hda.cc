#include "src/drivers/snd_hda.h"

#include <cstring>

#include "src/base/log.h"

namespace sud::drivers {

Status SndHdaDriver::Probe(uml::DriverEnv& env) {
  env_ = &env;
  SUD_RETURN_IF_ERROR(env.PciEnableDevice());
  SUD_RETURN_IF_ERROR(env.PciSetMaster());
  SUD_RETURN_IF_ERROR(env.RequestIrq([this]() { IrqHandler(); }));

  uml::AudioDriverOps ops;
  ops.open_stream = [this](const kern::PcmConfig& config) { return OpenStream(config); };
  ops.close_stream = [this]() { return CloseStream(); };
  ops.write = [this](uint64_t iova, uint32_t len, int32_t id) { return Write(iova, len, id); };
  return env.RegisterAudio(std::move(ops));
}

Status SndHdaDriver::OpenStream(const kern::PcmConfig& config) {
  if (stream_open_) {
    return Status(ErrorCode::kAlreadyExists, "stream already open");
  }
  if (ring_.bytes == 0) {
    Result<DmaRegion> ring = env_->DmaAllocCoherent(config.buffer_bytes);
    if (!ring.ok()) {
      return ring.status();
    }
    ring_ = ring.value();
  }
  ring_bytes_ = config.buffer_bytes;
  write_pos_ = 0;

  SUD_RETURN_IF_ERROR(
      env_->MmioWrite32(0, devices::kAudioRegRingLo, static_cast<uint32_t>(ring_.iova)));
  SUD_RETURN_IF_ERROR(
      env_->MmioWrite32(0, devices::kAudioRegRingHi, static_cast<uint32_t>(ring_.iova >> 32)));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kAudioRegRingBytes, ring_bytes_));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kAudioRegPeriodBytes, config.period_bytes));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kAudioRegRate, config.bytes_per_second()));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kAudioRegIms,
                                        devices::kAudioIntPeriod | devices::kAudioIntUnderrun));
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kAudioRegCtl, devices::kAudioCtlRun));
  stream_open_ = true;
  return Status::Ok();
}

Status SndHdaDriver::CloseStream() {
  if (!stream_open_) {
    return Status(ErrorCode::kUnavailable, "no open stream");
  }
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kAudioRegCtl, 0));
  stream_open_ = false;
  return Status::Ok();
}

Status SndHdaDriver::Write(uint64_t samples_iova, uint32_t len, int32_t pool_buffer_id) {
  if (!stream_open_) {
    return Status(ErrorCode::kUnavailable, "no open stream");
  }
  Result<ByteSpan> samples = env_->DmaView(samples_iova, len);
  if (!samples.ok()) {
    return samples.status();
  }
  uint32_t copied = 0;
  while (copied < len) {
    uint32_t pos = write_pos_ % ring_bytes_;
    uint32_t chunk = std::min(len - copied, ring_bytes_ - pos);
    Result<ByteSpan> ring = env_->DmaView(ring_.iova + pos, chunk);
    if (!ring.ok()) {
      return ring.status();
    }
    std::memcpy(ring.value().data(), samples.value().data() + copied, chunk);
    write_pos_ = (write_pos_ + chunk) % ring_bytes_;
    copied += chunk;
  }
  ++stats_.writes;
  stats_.bytes_written += len;
  if (pool_buffer_id >= 0) {
    env_->FreeTxBuffer(pool_buffer_id);
  }
  return Status::Ok();
}

void SndHdaDriver::IrqHandler() {
  Result<uint32_t> icr = env_->MmioRead32(0, devices::kAudioRegIcr);
  if (!icr.ok()) {
    return;
  }
  if ((icr.value() & devices::kAudioIntPeriod) != 0) {
    ++stats_.period_irqs;
    env_->AudioPeriodElapsed();
  }
  if ((icr.value() & devices::kAudioIntUnderrun) != 0) {
    ++stats_.underrun_irqs;
  }
}

}  // namespace sud::drivers
