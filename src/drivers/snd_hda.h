// SndHdaDriver: the snd-hda-intel-class audio playback driver.
//
// Maintains a DMA sample ring the device drains in real (simulated) time,
// refills it from write upcalls, and reports period-elapsed interrupts back
// to the PCM subsystem — the workload behind Section 4.1's discussion of
// real-time scheduling for audio driver processes.

#ifndef SUD_SRC_DRIVERS_SND_HDA_H_
#define SUD_SRC_DRIVERS_SND_HDA_H_

#include <cstdint>

#include "src/devices/audio_dev.h"
#include "src/uml/driver_env.h"

namespace sud::drivers {

class SndHdaDriver : public uml::Driver {
 public:
  const char* name() const override { return "snd_hda_intel"; }
  Status Probe(uml::DriverEnv& env) override;

  struct Stats {
    uint64_t writes = 0;
    uint64_t bytes_written = 0;
    uint64_t period_irqs = 0;
    uint64_t underrun_irqs = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  Status OpenStream(const kern::PcmConfig& config);
  Status CloseStream();
  Status Write(uint64_t samples_iova, uint32_t len, int32_t pool_buffer_id);
  void IrqHandler();

  uml::DriverEnv* env_ = nullptr;
  DmaRegion ring_{};
  uint32_t ring_bytes_ = 0;
  uint32_t write_pos_ = 0;
  bool stream_open_ = false;
  Stats stats_;
};

}  // namespace sud::drivers

#endif  // SUD_SRC_DRIVERS_SND_HDA_H_
