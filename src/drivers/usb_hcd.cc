#include "src/drivers/usb_hcd.h"

#include <cstring>

#include "src/base/bytes.h"
#include "src/base/log.h"

namespace sud::drivers {

using devices::UsbSetup;

Status UsbHcdDriver::Probe(uml::DriverEnv& env) {
  env_ = &env;
  SUD_RETURN_IF_ERROR(env.PciEnableDevice());
  SUD_RETURN_IF_ERROR(env.PciSetMaster());
  SUD_RETURN_IF_ERROR(env.RequestIrq([]() { /* transfer-done; polling model */ }));

  Result<DmaRegion> schedule = env.DmaAllocCoherent(devices::kUsbTrbSize);
  Result<DmaRegion> data = env.DmaAllocCoherent(4096);
  if (!schedule.ok() || !data.ok()) {
    return Status(ErrorCode::kExhausted, "dma allocation failed");
  }
  schedule_ = schedule.value();
  data_ = data.value();

  SUD_RETURN_IF_ERROR(env.MmioWrite32(0, devices::kUsbRegListLo,
                                      static_cast<uint32_t>(schedule_.iova)));
  SUD_RETURN_IF_ERROR(env.MmioWrite32(0, devices::kUsbRegListHi,
                                      static_cast<uint32_t>(schedule_.iova >> 32)));
  SUD_RETURN_IF_ERROR(env.MmioWrite32(0, devices::kUsbRegListCount, 1));
  SUD_RETURN_IF_ERROR(env.MmioWrite32(0, devices::kUsbRegIms, devices::kUsbStsTransferDone));
  return env.MmioWrite32(0, devices::kUsbRegCmd, devices::kUsbCmdRun);
}

Result<uint32_t> UsbHcdDriver::RunTrb(uint8_t address, uint8_t endpoint, uint8_t type,
                                      uint32_t length, uint64_t buffer_iova,
                                      const uint8_t setup[8]) {
  Result<ByteSpan> trb = env_->DmaView(schedule_.iova, devices::kUsbTrbSize);
  if (!trb.ok()) {
    return trb.status();
  }
  uint8_t* raw = trb.value().data();
  std::memset(raw, 0, devices::kUsbTrbSize);
  raw[0] = address;
  raw[1] = endpoint;
  raw[2] = type;
  raw[3] = 0;  // pending
  StoreLe32(raw + 4, length);
  StoreLe64(raw + 8, buffer_iova);
  if (setup != nullptr) {
    std::memcpy(raw + 16, setup, 8);
  }
  SUD_RETURN_IF_ERROR(env_->MmioWrite32(0, devices::kUsbRegDoorbell, 1));
  // Re-read the TRB for status (write-back by the controller).
  trb = env_->DmaView(schedule_.iova, devices::kUsbTrbSize);
  if (!trb.ok()) {
    return trb.status();
  }
  raw = trb.value().data();
  if (raw[3] != devices::kUsbTrbStatusOk) {
    return Status(ErrorCode::kUnavailable, "usb transfer failed (status " +
                                               std::to_string(int{raw[3]}) + ")");
  }
  return LoadLe32(raw + 24);
}

Result<uint32_t> UsbHcdDriver::ControlTransfer(uint8_t address, const UsbSetup& setup,
                                               uint64_t data_iova) {
  uint8_t raw_setup[8];
  raw_setup[0] = setup.bm_request_type;
  raw_setup[1] = setup.b_request;
  StoreLe16(raw_setup + 2, setup.w_value);
  StoreLe16(raw_setup + 4, setup.w_index);
  StoreLe16(raw_setup + 6, setup.w_length);
  ++stats_.control_transfers;
  return RunTrb(address, 0, devices::kUsbTrbSetup, setup.w_length, data_iova, raw_setup);
}

Result<int> UsbHcdDriver::Enumerate() {
  int configured = 0;
  for (int port = 0; port < 2; ++port) {
    Result<uint32_t> portsc =
        env_->MmioRead32(0, devices::kUsbRegPortsc0 + 4 * static_cast<uint64_t>(port));
    if (!portsc.ok() || (portsc.value() & devices::kUsbPortConnected) == 0) {
      continue;
    }
    // The standard dance, against default address 0.
    uint8_t address = next_address_++;
    UsbSetup set_address{0x00, devices::kUsbReqSetAddress, address, 0, 0};
    if (!ControlTransfer(0, set_address, 0).ok()) {
      continue;
    }
    UsbSetup get_device{0x80, devices::kUsbReqGetDescriptor,
                        static_cast<uint16_t>(devices::kUsbDescTypeDevice << 8), 0, 18};
    Result<uint32_t> got = ControlTransfer(address, get_device, data_.iova);
    if (!got.ok() || got.value() < 18) {
      continue;
    }
    Result<ByteSpan> descriptor = env_->DmaView(data_.iova, 18);
    if (!descriptor.ok()) {
      continue;
    }
    const uint8_t* d = descriptor.value().data();
    EnumeratedDevice info;
    info.address = address;
    info.device_class = d[4];
    info.vendor_id = LoadLe16(d + 8);
    info.product_id = LoadLe16(d + 10);
    UsbSetup set_config{0x00, devices::kUsbReqSetConfiguration, 1, 0, 0};
    info.configured = ControlTransfer(address, set_config, 0).ok();
    if (info.configured) {
      ++configured;
    }
    devices_.push_back(info);
    SUD_LOG(kInfo) << "usb: configured device " << Hex(info.vendor_id) << ":"
                   << Hex(info.product_id) << " at address " << int{address};
  }
  return configured;
}

Result<int> UsbHcdDriver::PollInput() {
  int events = 0;
  for (const EnumeratedDevice& device : devices_) {
    if (!device.configured || device.device_class != 0x03) {
      continue;  // not HID
    }
    ++stats_.interrupt_polls;
    Result<uint32_t> got =
        RunTrb(device.address, 1, devices::kUsbTrbIn, 8, data_.iova, nullptr);
    if (!got.ok() || got.value() < 3) {
      continue;
    }
    Result<ByteSpan> report = env_->DmaView(data_.iova, 8);
    if (!report.ok()) {
      continue;
    }
    uint8_t usage = report.value()[2];
    if (usage != 0) {
      env_->SubmitKeyEvent(usage);
      ++stats_.key_events;
      ++events;
    }
  }
  return events;
}

}  // namespace sud::drivers
