// UsbHcdDriver: the EHCI-class USB host-controller driver.
//
// Enumerates devices on the root ports with real chapter-9 control
// transfers (SET_ADDRESS, GET_DESCRIPTOR, SET_CONFIGURATION) executed
// through a TRB schedule in the driver's DMA space, then polls HID
// interrupt endpoints and surfaces key reports through the input downcall.
// Per Figure 5, the kernel side needs no USB-specific proxy code: all of
// this runs on the generic SUD surface.

#ifndef SUD_SRC_DRIVERS_USB_HCD_H_
#define SUD_SRC_DRIVERS_USB_HCD_H_

#include <cstdint>
#include <vector>

#include "src/devices/usb_host.h"
#include "src/uml/driver_env.h"

namespace sud::drivers {

class UsbHcdDriver : public uml::Driver {
 public:
  const char* name() const override { return "ehci_hcd"; }
  Status Probe(uml::DriverEnv& env) override;

  // Enumerates all connected ports. Returns number of configured devices.
  Result<int> Enumerate();
  // Polls HID interrupt endpoints of configured keyboards; forwards reports.
  Result<int> PollInput();

  struct EnumeratedDevice {
    uint8_t address;
    uint16_t vendor_id;
    uint16_t product_id;
    uint8_t device_class;
    bool configured;
  };
  const std::vector<EnumeratedDevice>& devices() const { return devices_; }

  struct Stats {
    uint64_t control_transfers = 0;
    uint64_t interrupt_polls = 0;
    uint64_t key_events = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  // Runs one TRB through the schedule; returns actual_length.
  Result<uint32_t> RunTrb(uint8_t address, uint8_t endpoint, uint8_t type, uint32_t length,
                          uint64_t buffer_iova, const uint8_t setup[8]);
  Result<uint32_t> ControlTransfer(uint8_t address, const devices::UsbSetup& setup,
                                   uint64_t data_iova);

  uml::DriverEnv* env_ = nullptr;
  DmaRegion schedule_{};   // one TRB slot
  DmaRegion data_{};       // data-stage buffer
  std::vector<EnumeratedDevice> devices_;
  uint8_t next_address_ = 1;
  Stats stats_;
};

}  // namespace sud::drivers

#endif  // SUD_SRC_DRIVERS_USB_HCD_H_
