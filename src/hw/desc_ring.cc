#include "src/hw/desc_ring.h"

#include <atomic>
#include <cstring>

namespace sud::hw {

void EncodeDescriptor(const RingDescriptor& desc, uint8_t* raw) {
  StoreLe64(raw, desc.buffer_addr);
  StoreLe16(raw + 8, desc.length);
  raw[10] = desc.cso;
  raw[11] = desc.cmd;
  raw[12] = desc.status;
  raw[13] = desc.css;
  StoreLe16(raw + 14, desc.special);
}

RingDescriptor DecodeDescriptor(const uint8_t* raw) {
  RingDescriptor desc;
  desc.buffer_addr = LoadLe64(raw);
  desc.length = LoadLe16(raw + 8);
  desc.cso = raw[10];
  desc.cmd = raw[11];
  desc.status = raw[12];
  desc.css = raw[13];
  desc.special = LoadLe16(raw + 14);
  return desc;
}

void DescRingEngine::Configure(uint64_t base, uint32_t num_descs) {
  if (base == base_ && num_descs == size_) {
    return;
  }
  base_ = base;
  size_ = num_descs;
  Invalidate();
}

void DescRingEngine::Invalidate() {
  snap_count_ = 0;
  window_ = nullptr;
  window_count_ = 0;
}

Result<RingDescriptor> DescRingEngine::Fetch(uint32_t index, uint32_t owned) {
  if (size_ == 0 || index >= size_) {
    return Status(ErrorCode::kInvalidArgument, "descriptor index outside ring");
  }
  // The snapshot is CONSUME-ONCE and strictly sequential: a hit serves the
  // window's next descriptor and pops it, so no ring slot can ever be
  // served twice from one fetch. This is what keeps a tiny ring (fewer
  // slots than a burst) correct — once head wraps back to a re-armed
  // descriptor the window is empty and the engine refetches fresh bytes —
  // while a descriptor WITHIN a burst still comes from the snapshot (the
  // mid-burst rewrite immunity).
  if (snap_count_ != 0 && index == snap_base_) {
    RingDescriptor desc = DecodeDescriptor(snap_raw_ + snap_pos_ * kDescBytes);
    ++snap_pos_;
    ++snap_base_;
    --snap_count_;
    stats_.window_hits++;
    return desc;
  }
  // Any non-sequential access (a second reaper, a reprogrammed head)
  // discards the window and refetches. Burst clamp: at most one cacheline,
  // never past what we own, never wrapping the ring within one transaction.
  uint32_t count = kDescBurst;
  if (count > owned) {
    count = owned;
  }
  if (count > size_ - index) {
    count = size_ - index;
  }
  if (count == 0) {
    snap_count_ = 0;
    return Status(ErrorCode::kInvalidArgument, "no owned descriptors to fetch");
  }
  Status status = mem_->Read(DescAddr(index), ByteSpan(snap_raw_, count * kDescBytes));
  if (!status.ok()) {
    snap_count_ = 0;
    return status;
  }
  snap_base_ = index + 1;
  snap_pos_ = 1;
  snap_count_ = count - 1;
  stats_.burst_fetches++;
  stats_.descs_fetched += count;
  return DecodeDescriptor(snap_raw_);
}

Status DescRingEngine::WriteBackLength(uint32_t index, uint16_t length) {
  uint8_t raw[2];
  StoreLe16(raw, length);
  stats_.writebacks++;
  return mem_->Write(DescAddr(index) + 8, ConstByteSpan(raw, 2));
}

Status DescRingEngine::PublishStatus(uint32_t index, uint8_t status) {
  stats_.writebacks++;
  return mem_->Write(DescAddr(index) + 12, ConstByteSpan(&status, 1));
}

Result<uint8_t*> DescRingEngine::WindowFor(uint32_t index) {
  if (size_ == 0 || index >= size_) {
    return Status(ErrorCode::kInvalidArgument, "descriptor index outside ring");
  }
  if (window_ != nullptr && index >= window_base_ && index < window_base_ + window_count_) {
    stats_.window_hits++;
    return window_ + (index - window_base_) * kDescBytes;
  }
  uint32_t line_base = index & ~(kDescBurst - 1);
  uint32_t count = kDescBurst;
  if (count > size_ - line_base) {
    count = size_ - line_base;
  }
  Result<ByteSpan> span = mem_->Map(DescAddr(line_base), count * kDescBytes);
  if (!span.ok()) {
    window_ = nullptr;
    window_count_ = 0;
    return span.status();
  }
  window_ = span.value().data();
  window_base_ = line_base;
  window_count_ = count;
  stats_.window_maps++;
  return window_ + (index - line_base) * kDescBytes;
}

bool DescRingEngine::Done(uint32_t index) {
  Result<uint8_t*> raw = WindowFor(index);
  if (!raw.ok()) {
    return false;
  }
  uint8_t status = std::atomic_ref<uint8_t>(raw.value()[12]).load(std::memory_order_acquire);
  return (status & kDescStatusDone) != 0;
}

Result<RingDescriptor> DescRingEngine::ReadCompleted(uint32_t index) {
  Result<uint8_t*> raw = WindowFor(index);
  if (!raw.ok()) {
    return raw.status();
  }
  return DecodeDescriptor(raw.value());
}

Status DescRingEngine::Arm(uint32_t index, const RingDescriptor& desc) {
  Result<uint8_t*> raw = WindowFor(index);
  if (!raw.ok()) {
    return raw.status();
  }
  EncodeDescriptor(desc, raw.value());
  return Status::Ok();
}

}  // namespace sud::hw
