// DescRingEngine: the one legacy-descriptor-ring implementation shared by
// the device model (SimNic's per-queue rings) and the driver (e1000e's reap
// and arm paths).
//
// Both sides of the paper's descriptor/DMA interface used to carry their own
// ad-hoc copy of the same 16-byte-descriptor logic — encode, decode, DD
// publication, per-descriptor DMA — which is exactly the duplicated surface
// the SoK on driver isolation calls out as the attack-prone one. This engine
// centralizes it behind two access styles:
//
//  * snapshot mode (the device): ring memory is reached through DMA
//    transactions (PciDevice::DmaRead/DmaWrite — i.e. the switch, ACS and
//    the IOMMU). Fetch() reads a CACHELINE BURST of up to four descriptors
//    per transaction, as real NICs do, and serves subsequent descriptors
//    from the snapshot. The burst never extends past the descriptors the
//    device currently owns (between head and tail), so it cannot race the
//    driver arming the next ones — and because consumed descriptors are
//    served from the snapshot, a malicious driver rewriting a descriptor
//    AFTER the device fetched its burst (the mid-burst rewrite attack)
//    changes nothing: the device uses the bytes it captured, exactly once.
//
//  * mapped mode (the driver): ring memory is the driver's own DMA
//    allocation, reachable through a persistent DmaView window. The engine
//    keeps ONE cached cacheline-sized view and does the DD acquire-poll,
//    the post-DD field reads and the arming writes in place — one window
//    resolution per four descriptors instead of the historical three
//    DmaView calls per packet (DD poll + read + re-arm).
//
// The DD ordering contract lives here too: the completing side publishes
// changed fields only — RX length first, then the status byte as a 1-byte
// release-published write — and the polling side acquire-loads the status
// byte before trusting any other field.

#ifndef SUD_SRC_HW_DESC_RING_H_
#define SUD_SRC_HW_DESC_RING_H_

#include <cstdint>

#include "src/base/bytes.h"
#include "src/base/status.h"

namespace sud::hw {

inline constexpr uint32_t kDescBytes = 16;
// Descriptors per cacheline burst fetch (64-byte line / 16-byte descriptor).
inline constexpr uint32_t kDescBurst = 4;

// Legacy descriptor command bits (TX arm side).
inline constexpr uint8_t kDescCmdEop = 1u << 0;
inline constexpr uint8_t kDescCmdReportStatus = 1u << 3;
// Status bits (completion side): DD, and EOP marking the last descriptor of
// a multi-descriptor receive chain.
inline constexpr uint8_t kDescStatusDone = 1u << 0;
inline constexpr uint8_t kDescStatusEop = 1u << 1;

// The legacy 16-byte descriptor, shared by TX and RX rings.
struct RingDescriptor {
  uint64_t buffer_addr = 0;
  uint16_t length = 0;
  uint8_t cso = 0;
  uint8_t cmd = 0;
  uint8_t status = 0;
  uint8_t css = 0;
  uint16_t special = 0;
};

void EncodeDescriptor(const RingDescriptor& desc, uint8_t* raw);
RingDescriptor DecodeDescriptor(const uint8_t* raw);

// How an engine reaches the memory its ring lives in.
class RingMem {
 public:
  virtual ~RingMem() = default;
  // Bulk transactions (the device's DMA path; one call == one fabric
  // crossing).
  virtual Status Read(uint64_t addr, ByteSpan out) = 0;
  virtual Status Write(uint64_t addr, ConstByteSpan bytes) = 0;
  // Optional persistent window (the driver's DmaView). Engines without one
  // (a device reaching the ring through the fabric) use Read/Write
  // snapshots instead.
  virtual Result<ByteSpan> Map(uint64_t addr, uint64_t len) {
    (void)addr;
    (void)len;
    return Status(ErrorCode::kUnavailable, "ring memory has no mapped window");
  }
};

class DescRingEngine {
 public:
  explicit DescRingEngine(RingMem* mem) : mem_(mem) {}

  // (Re)targets the engine at a ring. Idempotent for unchanged geometry (the
  // caches survive); any change invalidates both caches — a reprogrammed
  // ring must never be served stale snapshots.
  void Configure(uint64_t base, uint32_t num_descs);
  void Invalidate();

  uint64_t base() const { return base_; }
  uint32_t size() const { return size_; }

  // --- snapshot mode (device side) -------------------------------------------
  // Fetches descriptor `index`, reading a burst of up to kDescBurst owned
  // descriptors in one transaction when the snapshot misses. `owned` is how
  // many descriptors starting at `index` the caller owns (head..tail): the
  // burst is clamped to it so the engine never reads ring slots the other
  // side may still be writing.
  Result<RingDescriptor> Fetch(uint32_t index, uint32_t owned);

  // Changed-fields completion writeback: the length (RX) as a 2-byte write,
  // then the status byte last — a 1-byte posted write the memory model
  // release-publishes, pairing with Done()'s acquire poll.
  Status WriteBackLength(uint32_t index, uint16_t length);
  Status PublishStatus(uint32_t index, uint8_t status);

  // --- mapped mode (driver side) ---------------------------------------------
  // Acquire-load of descriptor `index`'s DD bit through the cached window.
  // False when the window cannot be mapped.
  bool Done(uint32_t index);
  // Reads a descriptor whose DD the caller already observed via Done() (the
  // acquire there makes the plain field reads here safe).
  Result<RingDescriptor> ReadCompleted(uint32_t index);
  // Arms (fully rewrites) a descriptor the engine's side owns.
  Status Arm(uint32_t index, const RingDescriptor& desc);

  struct Stats {
    uint64_t burst_fetches = 0;    // snapshot-mode DMA read transactions
    uint64_t descs_fetched = 0;    // descriptors those transactions carried
    uint64_t writebacks = 0;       // completion writeback transactions
    uint64_t window_maps = 0;      // mapped-mode window resolutions
    uint64_t window_hits = 0;      // descriptor accesses served by the cache
  };
  const Stats& stats() const { return stats_; }

 private:
  uint64_t DescAddr(uint32_t index) const {
    return base_ + static_cast<uint64_t>(index) * kDescBytes;
  }
  // Mapped-mode cacheline window covering `index`; remaps only when `index`
  // leaves the cached line.
  Result<uint8_t*> WindowFor(uint32_t index);

  RingMem* mem_;
  uint64_t base_ = 0;
  uint32_t size_ = 0;

  // Snapshot burst window (device side), consume-once: snap_base_ is the
  // NEXT ring index a hit will serve, snap_pos_ its offset within the
  // fetched raw bytes, snap_count_ how many remain unserved.
  uint32_t snap_base_ = 0;
  uint32_t snap_pos_ = 0;
  uint32_t snap_count_ = 0;
  uint8_t snap_raw_[kDescBurst * kDescBytes] = {};

  // Mapped window cache (driver side).
  uint8_t* window_ = nullptr;
  uint32_t window_base_ = 0;
  uint32_t window_count_ = 0;

  Stats stats_;
};

}  // namespace sud::hw

#endif  // SUD_SRC_HW_DESC_RING_H_
