#include "src/hw/iommu.h"

#include <algorithm>
#include <bit>

#include "src/base/bytes.h"
#include "src/base/log.h"

namespace sud::hw {

Iommu::Iommu(IommuMode mode, CpuModel* cpu, SimClock* clock)
    : mode_(mode), cpu_(cpu), clock_(clock), source_gen_(1 << 16, 0) {
  set_iotlb_geometry(IotlbGeometry{});
}

void Iommu::set_iotlb_geometry(IotlbGeometry geometry) {
  geometry.sets = std::bit_ceil(std::max<uint32_t>(geometry.sets, 1));
  geometry.ways = std::max<uint32_t>(geometry.ways, 1);
  iotlb_geometry_ = geometry;
  iotlb_.assign(static_cast<size_t>(geometry.sets) * geometry.ways, IotlbEntry{});
  iotlb_fill_rr_.assign(geometry.sets, 0);
}

size_t Iommu::IotlbSetBase(uint16_t source_id, uint64_t page) const {
  // Direct index: hash the page number with the source id so different
  // devices' working sets spread across the sets.
  uint64_t key = (page >> 12) ^ (static_cast<uint64_t>(source_id) * 0x9E3779B97F4A7C15ull);
  size_t set = static_cast<size_t>(key) & (iotlb_geometry_.sets - 1);
  return set * iotlb_geometry_.ways;
}

Iommu::IotlbEntry* Iommu::IotlbLookup(uint16_t source_id, uint64_t page) {
  size_t base = IotlbSetBase(source_id, page);
  for (size_t way = 0; way < iotlb_geometry_.ways; ++way) {
    IotlbEntry& entry = iotlb_[base + way];
    if (entry.valid && entry.source_id == source_id && entry.page == page &&
        entry.generation == source_gen_[source_id]) {
      return &entry;
    }
  }
  return nullptr;
}

void Iommu::IotlbInsert(uint16_t source_id, uint64_t page, const Pte& pte) {
  size_t base = IotlbSetBase(source_id, page);
  size_t victim = iotlb_geometry_.ways;  // sentinel: none free
  for (size_t way = 0; way < iotlb_geometry_.ways; ++way) {
    IotlbEntry& entry = iotlb_[base + way];
    if (!entry.valid || entry.generation != source_gen_[entry.source_id]) {
      victim = way;  // free or stale slot: reuse without an eviction
      break;
    }
  }
  if (victim == iotlb_geometry_.ways) {
    size_t set = base / iotlb_geometry_.ways;
    victim = iotlb_fill_rr_[set] % iotlb_geometry_.ways;
    iotlb_fill_rr_[set] = static_cast<uint8_t>((victim + 1) % iotlb_geometry_.ways);
    iotlb_stats_.evictions++;
  }
  IotlbEntry& entry = iotlb_[base + victim];
  entry.page = page;
  entry.source_id = source_id;
  entry.generation = source_gen_[source_id];
  entry.valid = true;
  entry.pte = pte;
}

void Iommu::IotlbInvalidatePageNoCount(uint16_t source_id, uint64_t iova) {
  IotlbEntry* entry = IotlbLookup(source_id, PageAlignDown(iova));
  if (entry != nullptr) {
    entry->valid = false;
  }
}

Status Iommu::CreateContext(uint16_t source_id) {
  std::lock_guard<SpinLock> lock(mu_);
  if (contexts_.count(source_id) != 0) {
    return Status(ErrorCode::kAlreadyExists,
                  "iommu context for source " + Hex(source_id) + " exists");
  }
  contexts_.emplace(source_id, Context{});
  return Status::Ok();
}

Status Iommu::DestroyContext(uint16_t source_id) {
  std::lock_guard<SpinLock> lock(mu_);
  auto it = contexts_.find(source_id);
  if (it == contexts_.end()) {
    return Status(ErrorCode::kNotFound, "no iommu context for source " + Hex(source_id));
  }
  contexts_.erase(it);
  // Whole-source IOTLB invalidation (generation bump), inline: the public
  // InvalidateIotlb takes mu_.
  ++source_gen_[source_id];
  iotlb_stats_.invalidations++;
  // Drop interrupt-remapping entries belonging to this source.
  for (auto ir = irte_.begin(); ir != irte_.end();) {
    if (ir->first.first == source_id) {
      ir = irte_.erase(ir);
    } else {
      ++ir;
    }
  }
  return Status::Ok();
}

bool Iommu::HasContext(uint16_t source_id) const {
  std::lock_guard<SpinLock> lock(mu_);
  return contexts_.count(source_id) != 0;
}

Iommu::Pte* Iommu::LookupPte(Context& ctx, uint64_t iova, bool create) {
  size_t l3, l2, l1;
  SplitIova(iova, &l3, &l2, &l1);
  auto& l2_table = ctx.root->entries[l3];
  if (!l2_table) {
    if (!create) {
      return nullptr;
    }
    l2_table = std::make_unique<TableL2>();
  }
  auto& l1_table = l2_table->entries[l2];
  if (!l1_table) {
    if (!create) {
      return nullptr;
    }
    l1_table = std::make_unique<TableL1>();
  }
  return &l1_table->ptes[l1];
}

const Iommu::Pte* Iommu::LookupPte(const Context& ctx, uint64_t iova) const {
  size_t l3, l2, l1;
  SplitIova(iova, &l3, &l2, &l1);
  const auto& l2_table = ctx.root->entries[l3];
  if (!l2_table) {
    return nullptr;
  }
  const auto& l1_table = l2_table->entries[l2];
  if (!l1_table) {
    return nullptr;
  }
  return &l1_table->ptes[l1];
}

Status Iommu::Map(uint16_t source_id, uint64_t iova, uint64_t paddr, uint64_t len, bool readable,
                  bool writable) {
  std::lock_guard<SpinLock> lock(mu_);
  if (!IsPageAligned(iova) || !IsPageAligned(paddr) || !IsPageAligned(len) || len == 0) {
    return Status(ErrorCode::kInvalidArgument, "iommu map not page aligned");
  }
  if ((iova >> 39) != 0) {
    return Status(ErrorCode::kInvalidArgument, "iova beyond 39-bit io-virtual space");
  }
  auto it = contexts_.find(source_id);
  if (it == contexts_.end()) {
    return Status(ErrorCode::kNotFound, "no iommu context for source " + Hex(source_id));
  }
  // Reject overlap with existing mappings first (all-or-nothing).
  for (uint64_t off = 0; off < len; off += kPageSize) {
    const Pte* pte = LookupPte(it->second, iova + off);
    if (pte != nullptr && pte->present) {
      return Status(ErrorCode::kAlreadyExists, "iova " + Hex(iova + off) + " already mapped");
    }
  }
  for (uint64_t off = 0; off < len; off += kPageSize) {
    Pte* pte = LookupPte(it->second, iova + off, /*create=*/true);
    pte->paddr = paddr + off;
    pte->readable = readable;
    pte->writable = writable;
    pte->present = true;
  }
  it->second.mapped_pages += len / kPageSize;
  return Status::Ok();
}

Status Iommu::Unmap(uint16_t source_id, uint64_t iova, uint64_t len) {
  std::lock_guard<SpinLock> lock(mu_);
  if (!IsPageAligned(iova) || !IsPageAligned(len) || len == 0) {
    return Status(ErrorCode::kInvalidArgument, "iommu unmap not page aligned");
  }
  auto it = contexts_.find(source_id);
  if (it == contexts_.end()) {
    return Status(ErrorCode::kNotFound, "no iommu context for source " + Hex(source_id));
  }
  for (uint64_t off = 0; off < len; off += kPageSize) {
    Pte* pte = LookupPte(it->second, iova + off, /*create=*/false);
    if (pte != nullptr && pte->present) {
      pte->present = false;
      it->second.mapped_pages--;
      IotlbInvalidatePageNoCount(source_id, iova + off);
      iotlb_stats_.invalidations++;
    }
  }
  return Status::Ok();
}

Status Iommu::SealWrite(uint16_t source_id, uint64_t iova, uint64_t len) {
  std::lock_guard<SpinLock> lock(mu_);
  if (!IsPageAligned(iova) || len == 0) {
    return Status(ErrorCode::kInvalidArgument, "iommu seal not page aligned");
  }
  auto it = contexts_.find(source_id);
  if (it == contexts_.end()) {
    return Status(ErrorCode::kNotFound, "no iommu context for source " + Hex(source_id));
  }
  uint64_t span = PageAlignUp(len);
  // All-or-nothing: every covered page must be mapped, or nothing changes.
  for (uint64_t off = 0; off < span; off += kPageSize) {
    const Pte* pte = LookupPte(it->second, iova + off);
    if (pte == nullptr || !pte->present) {
      return Status(ErrorCode::kInvalidArgument,
                    "seal range not fully mapped at " + Hex(iova + off));
    }
  }
  for (uint64_t off = 0; off < span; off += kPageSize) {
    Pte* pte = LookupPte(it->second, iova + off, /*create=*/false);
    if (pte->sealed) {
      continue;  // idempotent: an already-sealed page costs nothing
    }
    pte->sealed = true;
    seal_stats_.seals++;
    // Synchronous shootdown, always: a cached writable IOTLB entry would let
    // a racing device write land AFTER the seal — exactly the TOCTOU window
    // the seal exists to close — so seal-side invalidation never queues.
    IotlbInvalidatePageNoCount(source_id, iova + off);
    iotlb_stats_.invalidations++;
    seal_stats_.shootdowns++;
    if (cpu_ != nullptr) {
      cpu_->Charge(kAccountKernel, cpu_->costs().iommu_seal + cpu_->costs().iotlb_shootdown);
    }
  }
  return Status::Ok();
}

Status Iommu::UnsealWrite(uint16_t source_id, uint64_t iova, uint64_t len) {
  std::lock_guard<SpinLock> lock(mu_);
  if (!IsPageAligned(iova) || len == 0) {
    return Status(ErrorCode::kInvalidArgument, "iommu unseal not page aligned");
  }
  auto it = contexts_.find(source_id);
  if (it == contexts_.end()) {
    return Status(ErrorCode::kNotFound, "no iommu context for source " + Hex(source_id));
  }
  uint64_t span = PageAlignUp(len);
  for (uint64_t off = 0; off < span; off += kPageSize) {
    const Pte* pte = LookupPte(it->second, iova + off);
    if (pte == nullptr || !pte->present) {
      return Status(ErrorCode::kInvalidArgument,
                    "unseal range not fully mapped at " + Hex(iova + off));
    }
  }
  for (uint64_t off = 0; off < span; off += kPageSize) {
    Pte* pte = LookupPte(it->second, iova + off, /*create=*/false);
    if (!pte->sealed) {
      continue;
    }
    pte->sealed = false;
    seal_stats_.unseals++;
    if (cpu_ != nullptr) {
      cpu_->Charge(kAccountKernel, cpu_->costs().iommu_seal);
    }
    // A stale *sealed* IOTLB entry fails safe (it over-blocks, never admits a
    // write), so unseal-side invalidation may ride the queued batch — the
    // Section 6 "new hardware" amortization that makes revocation affordable.
    if (queued_invalidation_) {
      invalidation_queue_.emplace_back(source_id, PageAlignDown(iova + off));
    } else {
      IotlbInvalidatePageNoCount(source_id, iova + off);
      iotlb_stats_.invalidations++;
      seal_stats_.shootdowns++;
      if (cpu_ != nullptr) {
        cpu_->Charge(kAccountKernel, cpu_->costs().iotlb_shootdown);
      }
    }
  }
  return Status::Ok();
}

bool Iommu::IsWriteSealed(uint16_t source_id, uint64_t iova) const {
  std::lock_guard<SpinLock> lock(mu_);
  auto it = contexts_.find(source_id);
  if (it == contexts_.end()) {
    return false;
  }
  const Pte* pte = LookupPte(it->second, PageAlignDown(iova));
  return pte != nullptr && pte->present && pte->sealed;
}

Result<uint64_t> Iommu::Translate(uint16_t source_id, uint64_t iova, uint64_t len, bool is_write) {
  std::lock_guard<SpinLock> lock(mu_);
  auto it = contexts_.find(source_id);
  if (it == contexts_.end()) {
    return Fault(source_id, iova, is_write, "no context (device not assigned)");
  }
  if (len == 0 || PageAlignDown(iova) != PageAlignDown(iova + len - 1)) {
    // Hardware splits page-crossing bursts; the root complex does the same
    // (see RootComplex), so a single Translate call never crosses a page.
    return Fault(source_id, iova, is_write, "access crosses page boundary");
  }

  uint64_t page = PageAlignDown(iova);
  Pte entry;
  if (IotlbEntry* cached = IotlbLookup(source_id, page); cached != nullptr) {
    iotlb_stats_.hits++;
    entry = cached->pte;
  } else {
    iotlb_stats_.misses++;
    if (cpu_ != nullptr) {
      cpu_->Charge(kAccountDevice, cpu_->costs().iotlb_miss);
    }
    const Pte* pte = LookupPte(it->second, iova);
    if (pte == nullptr || !pte->present) {
      return Fault(source_id, iova, is_write, "iova not mapped");
    }
    entry = *pte;
    IotlbInsert(source_id, page, entry);
  }

  if (is_write && entry.sealed) {
    seal_stats_.blocked_writes++;
    return Fault(source_id, iova, is_write, "write to sealed page");
  }
  if (is_write && !entry.writable) {
    return Fault(source_id, iova, is_write, "write to read-only mapping");
  }
  if (!is_write && !entry.readable) {
    return Fault(source_id, iova, is_write, "read from write-only mapping");
  }
  return entry.paddr + (iova & kPageMask);
}

Status Iommu::Fault(uint16_t source_id, uint64_t iova, bool is_write, std::string reason) {
  IommuFaultRecord record{source_id, iova, is_write,
                          reason, clock_ != nullptr ? clock_->now() : 0};
  faults_.push_back(record);
  SUD_LOG(kAttack) << "iommu fault: source " << Hex(source_id) << (is_write ? " write " : " read ")
                   << Hex(iova) << " (" << reason << ")";
  return Status(ErrorCode::kIommuFault,
                "source " + Hex(source_id) + " iova " + Hex(iova) + ": " + reason);
}

void Iommu::InvalidateIotlb(uint16_t source_id) {
  std::lock_guard<SpinLock> lock(mu_);
  // Generation bump: every cached entry for this source goes stale at once.
  ++source_gen_[source_id];
  iotlb_stats_.invalidations++;
}

void Iommu::InvalidateIotlbPage(uint16_t source_id, uint64_t iova) {
  std::lock_guard<SpinLock> lock(mu_);
  IotlbInvalidatePageNoCount(source_id, iova);
  iotlb_stats_.invalidations++;
}

void Iommu::QueueInvalidate(uint16_t source_id, uint64_t iova) {
  std::lock_guard<SpinLock> lock(mu_);
  if (!queued_invalidation_) {
    IotlbInvalidatePageNoCount(source_id, iova);
    iotlb_stats_.invalidations++;
    return;
  }
  invalidation_queue_.emplace_back(source_id, PageAlignDown(iova));
}

void Iommu::SyncInvalidations() {
  std::lock_guard<SpinLock> lock(mu_);
  for (const auto& [source_id, iova] : invalidation_queue_) {
    IotlbInvalidatePageNoCount(source_id, iova);
  }
  if (!invalidation_queue_.empty()) {
    // A queued batch costs one synchronisation, not one per page — the
    // amortization that makes unseal-side revocation affordable; count it as
    // one shootdown in the seal accounting too.
    iotlb_stats_.invalidations++;
    seal_stats_.shootdowns++;
    if (cpu_ != nullptr) {
      cpu_->Charge(kAccountKernel, cpu_->costs().iotlb_shootdown);
    }
  }
  invalidation_queue_.clear();
}

Status Iommu::SetInterruptRemapEntry(uint16_t source_id, uint8_t requested_vector,
                                     std::optional<uint8_t> mapped_vector) {
  if (!interrupt_remapping_) {
    return Status(ErrorCode::kUnavailable, "interrupt remapping not supported/enabled");
  }
  std::lock_guard<SpinLock> lock(mu_);
  irte_[{source_id, requested_vector}] = mapped_vector;
  return Status::Ok();
}

Result<uint8_t> Iommu::RemapInterrupt(uint16_t source_id, uint8_t requested_vector) {
  if (!interrupt_remapping_) {
    return requested_vector;
  }
  std::lock_guard<SpinLock> lock(mu_);
  auto it = irte_.find({source_id, requested_vector});
  if (it == irte_.end() || !it->second.has_value()) {
    SUD_LOG(kAttack) << "interrupt remapping blocked vector " << int{requested_vector}
                     << " from source " << Hex(source_id);
    return Status(ErrorCode::kPermissionDenied, "interrupt remapping: vector blocked");
  }
  return *it->second;
}

bool Iommu::AllowsMsiWrite(uint16_t source_id) {
  if (mode_ == IommuMode::kIntelVtd) {
    // Implicit identity mapping for the MSI range in every context: always
    // reaches the MSI controller. (The Section 5.2 weakness.)
    return true;
  }
  // AMD-Vi: the MSI page translates like anything else.
  std::lock_guard<SpinLock> lock(mu_);
  auto it = contexts_.find(source_id);
  if (it == contexts_.end()) {
    return false;
  }
  const Pte* pte = LookupPte(it->second, kMsiRangeBase);
  return pte != nullptr && pte->present && pte->writable;
}

std::vector<IoMapping> Iommu::WalkMappings(uint16_t source_id) const {
  std::lock_guard<SpinLock> lock(mu_);
  std::vector<IoMapping> out;
  auto it = contexts_.find(source_id);
  if (it == contexts_.end()) {
    return out;
  }
  const Context& ctx = it->second;
  // Walk the directory levels in order; coalesce physically- and
  // virtually-contiguous runs with equal permissions.
  for (size_t l3 = 0; l3 < 512; ++l3) {
    const auto& l2_table = ctx.root->entries[l3];
    if (!l2_table) {
      continue;
    }
    for (size_t l2 = 0; l2 < 512; ++l2) {
      const auto& l1_table = l2_table->entries[l2];
      if (!l1_table) {
        continue;
      }
      for (size_t l1 = 0; l1 < 512; ++l1) {
        const Pte& pte = l1_table->ptes[l1];
        if (!pte.present) {
          continue;
        }
        uint64_t iova = (static_cast<uint64_t>(l3) << 30) | (static_cast<uint64_t>(l2) << 21) |
                        (static_cast<uint64_t>(l1) << 12);
        if (!out.empty()) {
          IoMapping& last = out.back();
          if (!last.implicit_msi && last.iova_end == iova &&
              last.paddr_start + (last.iova_end - last.iova_start) == pte.paddr &&
              last.readable == pte.readable && last.writable == pte.writable) {
            last.iova_end += kPageSize;
            continue;
          }
        }
        out.push_back(IoMapping{iova, iova + kPageSize, pte.paddr, pte.readable, pte.writable,
                                /*implicit_msi=*/false});
      }
    }
  }
  if (mode_ == IommuMode::kIntelVtd) {
    out.push_back(IoMapping{kMsiRangeBase, kMsiRangeBase + kMsiRangeSize, kMsiRangeBase,
                            /*readable=*/false, /*writable=*/true, /*implicit_msi=*/true});
  }
  std::sort(out.begin(), out.end(),
            [](const IoMapping& a, const IoMapping& b) { return a.iova_start < b.iova_start; });
  return out;
}

uint64_t Iommu::MappedBytes(uint16_t source_id) const {
  std::lock_guard<SpinLock> lock(mu_);
  auto it = contexts_.find(source_id);
  if (it == contexts_.end()) {
    return 0;
  }
  return it->second.mapped_pages * kPageSize;
}

}  // namespace sud::hw
