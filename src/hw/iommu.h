// Iommu: DMA remapping, IOTLB, fault reporting and interrupt remapping.
//
// Models the subset of Intel VT-d / AMD-Vi behaviour that SUD's confinement
// argument rests on (Sections 3.2.2 and 5.2 of the paper):
//
//  * per-requester-id IO page tables: a DMA from source S at IO-virtual
//    address V is translated through S's table; untranslated addresses fault
//    and the transaction is dropped (never reaches DRAM);
//  * an IOTLB with explicit invalidation — and the paper's observation that
//    invalidations are expensive, which motivates the guard-copy design in
//    Section 3.1.2 (see CpuCosts::iotlb_miss and the queued-invalidation
//    feature from Section 6). The IOTLB is a fixed-size direct-indexed
//    set-associative cache (like the hardware it models): Translate is
//    allocation-free in steady state, and whole-source invalidation is a
//    per-source generation bump, O(1) instead of a full-cache scan;
//  * the MSI address range: Intel VT-d keeps an *implicit identity mapping*
//    for 0xFEE00000-0xFEF00000 in every IO page table (the weakness Section
//    5.2 reports); AMD-Vi does not, so unmap-the-MSI-page works there;
//  * interrupt remapping: a table keyed by (source id, requested vector)
//    that can block or rewrite MSI vectors.
//
// Page tables here are explicit multi-level radix trees (4 KB pages, 9-bit
// fan-out) rather than a flat map, so WalkMappings really walks a directory
// the way bench/fig9_iommu_mappings and the paper's Figure 9 do.

#ifndef SUD_SRC_HW_IOMMU_H_
#define SUD_SRC_HW_IOMMU_H_

#include <array>
#include <cstdint>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/base/cpu_model.h"
#include "src/base/status.h"
#include "src/hw/phys_mem.h"

namespace sud::hw {

// The x86 MSI doorbell window.
inline constexpr uint64_t kMsiRangeBase = 0xFEE00000ull;
inline constexpr uint64_t kMsiRangeSize = 0x00100000ull;

inline bool InMsiRange(uint64_t addr) {
  return addr >= kMsiRangeBase && addr < kMsiRangeBase + kMsiRangeSize;
}

enum class IommuMode {
  kIntelVtd,  // implicit MSI identity mapping present in every context
  kAmdVi,     // MSI range translated like any other address
};

struct IommuFaultRecord {
  uint16_t source_id;
  uint64_t iova;
  bool is_write;
  std::string reason;
  SimTime when;
};

// Seal/unseal accounting: the page-revocation alternative to the guard copy
// (Section 3.1.2's tradeoff, quantified). `shootdowns` counts the IOTLB
// invalidations the permission transitions forced — the cost the paper cites
// as the reason it copied instead.
struct SealStats {
  uint64_t seals = 0;           // pages transitioned writable -> sealed
  uint64_t unseals = 0;         // pages transitioned sealed -> writable
  uint64_t shootdowns = 0;      // synchronous IOTLB invalidations those forced
  uint64_t blocked_writes = 0;  // device DMA writes rejected by a seal
};

// One contiguous, coalesced mapping range, as reported by WalkMappings.
struct IoMapping {
  uint64_t iova_start;
  uint64_t iova_end;  // exclusive
  uint64_t paddr_start;
  bool readable;
  bool writable;
  bool implicit_msi;  // Intel's built-in MSI identity window
};

class Iommu {
 public:
  struct IotlbStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;
    uint64_t evictions = 0;  // valid entries displaced by set conflicts
  };

  // IOTLB shape: `sets` x `ways` entries, direct-indexed by a hash of
  // (source id, iova page). Sweepable by the abl_iotlb_geometry bench;
  // `sets` is rounded up to a power of two.
  struct IotlbGeometry {
    uint32_t sets = 16;
    uint32_t ways = 4;
  };

  explicit Iommu(IommuMode mode = IommuMode::kIntelVtd, CpuModel* cpu = nullptr,
                 SimClock* clock = nullptr);

  IommuMode mode() const { return mode_; }

  // --- context (per-device IO address space) management
  Status CreateContext(uint16_t source_id);
  Status DestroyContext(uint16_t source_id);
  bool HasContext(uint16_t source_id) const;

  // --- mapping management (page-granular; iova/paddr/len page-aligned)
  Status Map(uint16_t source_id, uint64_t iova, uint64_t paddr, uint64_t len, bool readable,
             bool writable);
  Status Unmap(uint16_t source_id, uint64_t iova, uint64_t len);

  // --- write sealing (per-page permission downgrade on an EXISTING mapping).
  // SealWrite revokes device write permission for every page covering
  // [iova, iova+len) without unmap/remap churn: the PTE keeps its paddr and
  // base permissions, only the seal bit flips, and each transitioned page
  // pays a synchronous IOTLB shootdown (a cached writable entry would let a
  // racing DMA write land after the seal — the TOCTOU this exists to close).
  // UnsealWrite restores write permission; its invalidations may ride the
  // queued-invalidation batch when that feature is on, because a stale
  // *sealed* IOTLB entry fails safe (it can only over-block, never admit a
  // write). Both are idempotent per page and all-or-nothing per range: if any
  // covered page is unmapped, nothing changes and an error returns. `iova`
  // must be page-aligned; `len` is rounded up to whole pages.
  Status SealWrite(uint16_t source_id, uint64_t iova, uint64_t len);
  Status UnsealWrite(uint16_t source_id, uint64_t iova, uint64_t len);
  // True iff the page containing `iova` is present and write-sealed.
  bool IsWriteSealed(uint16_t source_id, uint64_t iova) const;
  const SealStats& seal_stats() const { return seal_stats_; }

  // --- the data path. Translates a [iova, iova+len) access; the access must
  // not cross an unmapped page. On failure a fault is logged and the
  // transaction must be dropped by the caller (the root complex).
  Result<uint64_t> Translate(uint16_t source_id, uint64_t iova, uint64_t len, bool is_write);

  // --- IOTLB
  // Whole-source invalidation: bumps the source's generation counter so every
  // cached entry for it goes stale at once — O(1), no cache scan.
  void InvalidateIotlb(uint16_t source_id);
  void InvalidateIotlbPage(uint16_t source_id, uint64_t iova);
  const IotlbStats& iotlb_stats() const { return iotlb_stats_; }
  // Reshapes (and empties) the IOTLB; stats are preserved.
  void set_iotlb_geometry(IotlbGeometry geometry);
  const IotlbGeometry& iotlb_geometry() const { return iotlb_geometry_; }

  // Queued invalidation (VT-d optional feature, Section 6 "New hardware"):
  // batch page invalidations and apply them on Sync. When the feature is off
  // QueueInvalidate degrades to an immediate (expensive) invalidation.
  void set_queued_invalidation(bool enabled) { queued_invalidation_ = enabled; }
  bool queued_invalidation() const { return queued_invalidation_; }
  void QueueInvalidate(uint16_t source_id, uint64_t iova);
  void SyncInvalidations();

  // --- interrupt remapping
  void set_interrupt_remapping(bool enabled) { interrupt_remapping_ = enabled; }
  bool interrupt_remapping() const { return interrupt_remapping_; }
  // Program an entry: requested vector from `source_id` maps to
  // `mapped_vector`, or is blocked entirely when nullopt.
  Status SetInterruptRemapEntry(uint16_t source_id, uint8_t requested_vector,
                                std::optional<uint8_t> mapped_vector);
  // Remap a vector. When remapping is enabled, vectors with no entry are
  // blocked (VT-d semantics). When disabled, passes through.
  Result<uint8_t> RemapInterrupt(uint16_t source_id, uint8_t requested_vector);

  // Is a DMA write by `source_id` to the MSI range allowed to reach the MSI
  // controller? Intel: always (implicit identity mapping — cannot be removed,
  // the Section 5.2 weakness). AMD: only if the context maps the MSI page.
  bool AllowsMsiWrite(uint16_t source_id);

  // --- introspection
  // Walks `source_id`'s page directory and returns coalesced ranges, sorted
  // by IOVA, including the Intel implicit MSI window (Figure 9).
  std::vector<IoMapping> WalkMappings(uint16_t source_id) const;
  // Total mapped bytes in a context (excludes the implicit MSI window).
  uint64_t MappedBytes(uint16_t source_id) const;

  const std::vector<IommuFaultRecord>& faults() const { return faults_; }
  void ClearFaults() { faults_.clear(); }

 private:
  // Three-level radix tree, 9 bits per level: covers a 39-bit IO-virtual
  // space with 4 KB leaves, mirroring one VT-d second-level table.
  struct Pte {
    uint64_t paddr = 0;
    bool readable = false;
    bool writable = false;
    bool present = false;
    // Write seal: overrides `writable` for device DMA writes while the page
    // stays device-readable. Kept separate from `writable` so UnsealWrite
    // restores the original permission without the caller re-supplying it.
    bool sealed = false;
  };
  struct TableL1 {  // leaf level: 512 PTEs
    std::array<Pte, 512> ptes{};
  };
  struct TableL2 {
    std::array<std::unique_ptr<TableL1>, 512> entries{};
  };
  struct TableL3 {  // root
    std::array<std::unique_ptr<TableL2>, 512> entries{};
  };
  struct Context {
    std::unique_ptr<TableL3> root = std::make_unique<TableL3>();
    uint64_t mapped_pages = 0;
  };

  static void SplitIova(uint64_t iova, size_t* l3, size_t* l2, size_t* l1) {
    *l3 = (iova >> 30) & 0x1ff;
    *l2 = (iova >> 21) & 0x1ff;
    *l1 = (iova >> 12) & 0x1ff;
  }

  Pte* LookupPte(Context& ctx, uint64_t iova, bool create);
  const Pte* LookupPte(const Context& ctx, uint64_t iova) const;

  Status Fault(uint16_t source_id, uint64_t iova, bool is_write, std::string reason);

  // One IOTLB entry. An entry is live iff `valid` and its generation matches
  // the owning source's current generation (stale generations are lazily
  // overwritten by later fills).
  struct IotlbEntry {
    uint64_t page = 0;
    uint32_t generation = 0;
    uint16_t source_id = 0;
    bool valid = false;
    Pte pte;
  };

  size_t IotlbSetBase(uint16_t source_id, uint64_t page) const;
  IotlbEntry* IotlbLookup(uint16_t source_id, uint64_t page);
  void IotlbInsert(uint16_t source_id, uint64_t page, const Pte& pte);
  void IotlbInvalidatePageNoCount(uint16_t source_id, uint64_t iova);

  IommuMode mode_;
  CpuModel* cpu_;
  SimClock* clock_;
  // Serializes the data path (Translate: IOTLB probe/fill, fault log) and the
  // mutators against each other: with multi-queue NICs, descriptor and buffer
  // DMA translates concurrently from every queue's pump thread. A spinlock
  // rather than std::mutex: the critical section is a handful of array
  // probes (tens of nanoseconds), Translate runs several times per packet on
  // every DMA path, and the uncontended fast path must stay cheap enough
  // that the single-queue configuration pays almost nothing for it.
  class SpinLock {
   public:
    void lock() {
      while (flag_.test_and_set(std::memory_order_acquire)) {
      }
    }
    void unlock() { flag_.clear(std::memory_order_release); }

   private:
    std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
  };
  mutable SpinLock mu_;
  std::map<uint16_t, Context> contexts_;

  IotlbGeometry iotlb_geometry_{};
  std::vector<IotlbEntry> iotlb_;        // sets * ways, flat
  std::vector<uint8_t> iotlb_fill_rr_;   // per-set round-robin fill cursor
  std::vector<uint32_t> source_gen_;     // 64K per-source generation counters
  IotlbStats iotlb_stats_;

  bool interrupt_remapping_ = false;
  std::map<std::pair<uint16_t, uint8_t>, std::optional<uint8_t>> irte_;

  bool queued_invalidation_ = false;
  std::vector<std::pair<uint16_t, uint64_t>> invalidation_queue_;

  SealStats seal_stats_;

  std::vector<IommuFaultRecord> faults_;
};

}  // namespace sud::hw

#endif  // SUD_SRC_HW_IOMMU_H_
