#include "src/hw/machine.h"

#include "src/base/log.h"

namespace sud::hw {

Machine::Machine(Config config) : config_(config) {
  dram_ = std::make_unique<PhysicalMemory>(config_.dram_bytes);
  iommu_ = std::make_unique<Iommu>(config_.iommu_mode, &cpu_, &clock_);
  iommu_->set_interrupt_remapping(config_.interrupt_remapping);
  msi_ = std::make_unique<MsiController>(iommu_.get());
  root_ = std::make_unique<RootComplex>(dram_.get(), iommu_.get(), msi_.get());
}

PcieSwitch& Machine::AddSwitch(const std::string& name) {
  switches_.push_back(std::make_unique<PcieSwitch>(name, root_.get()));
  PcieSwitch* sw = switches_.back().get();
  switch_bus_[sw] = next_bus_++;
  return *sw;
}

Status Machine::AttachDevice(PcieSwitch& sw, PciDevice* device) {
  auto bus_it = switch_bus_.find(&sw);
  if (bus_it == switch_bus_.end()) {
    return Status(ErrorCode::kInvalidArgument, "switch not part of this machine");
  }
  uint8_t bus = bus_it->second;
  uint8_t dev = next_dev_on_bus_[bus]++;
  device->set_address(PciAddress{bus, dev, 0});
  sw.AttachDevice(device);
  AssignBars(device);
  devices_.push_back(device);
  SUD_LOG(kInfo) << "attached " << device->name() << " at " << device->address().ToString();
  return Status::Ok();
}

void Machine::AssignBars(PciDevice* device) {
  for (size_t i = 0; i < device->bars().size(); ++i) {
    const BarDesc& bar = device->bars()[i];
    if (bar.size == 0) {
      continue;
    }
    if (bar.is_io) {
      device->config().set_bar(static_cast<int>(i), next_io_port_);
      for (uint64_t p = 0; p < bar.size; ++p) {
        io_port_map_[static_cast<uint16_t>(next_io_port_ + p)] = {device, next_io_port_};
      }
      next_io_port_ = static_cast<uint16_t>(next_io_port_ + PageAlignUp(bar.size) / 16);
    } else {
      // SUD requires MMIO ranges to be page-aligned so a page mapping never
      // exposes registers of two devices (Section 3.2.1).
      uint64_t size = PageAlignUp(bar.size);
      device->config().set_bar(static_cast<int>(i), next_mmio_window_);
      next_mmio_window_ += size;
    }
  }
}

std::vector<PciDevice*> Machine::devices() const { return devices_; }

PciDevice* Machine::FindDevice(const PciAddress& address) const {
  for (PciDevice* device : devices_) {
    if (device->address() == address) {
      return device;
    }
  }
  return nullptr;
}

PciDevice* Machine::FindDeviceByName(const std::string& name) const {
  for (PciDevice* device : devices_) {
    if (device->name() == name) {
      return device;
    }
  }
  return nullptr;
}

PciDevice* Machine::MmioOwner(uint64_t paddr, int* bar_index, uint64_t* offset) const {
  for (PciDevice* device : devices_) {
    for (size_t b = 0; b < device->bars().size(); ++b) {
      const BarDesc& bar = device->bars()[b];
      if (bar.is_io || bar.size == 0) {
        continue;
      }
      uint64_t base = device->config().bar(static_cast<int>(b));
      if (base != 0 && paddr >= base && paddr < base + bar.size) {
        if (bar_index != nullptr) {
          *bar_index = static_cast<int>(b);
        }
        if (offset != nullptr) {
          *offset = paddr - base;
        }
        return device;
      }
    }
  }
  return nullptr;
}

uint32_t Machine::MmioRead32(uint64_t paddr) {
  cpu_.Charge(kAccountKernel, cpu_.costs().mmio_access);
  int bar = 0;
  uint64_t offset = 0;
  PciDevice* device = MmioOwner(paddr, &bar, &offset);
  if (device == nullptr || !device->config().mem_enabled()) {
    return 0xffffffffu;  // master abort
  }
  return device->MmioRead(bar, offset);
}

void Machine::MmioWrite32(uint64_t paddr, uint32_t value) {
  cpu_.Charge(kAccountKernel, cpu_.costs().mmio_access);
  int bar = 0;
  uint64_t offset = 0;
  PciDevice* device = MmioOwner(paddr, &bar, &offset);
  if (device != nullptr && device->config().mem_enabled()) {
    device->MmioWrite(bar, offset, value);
  }
}

uint32_t Machine::ConfigRead(const PciAddress& address, uint16_t offset, int width) {
  PciDevice* device = FindDevice(address);
  if (device == nullptr) {
    return 0xffffffffu;
  }
  return device->config().Read(offset, width);
}

void Machine::ConfigWrite(const PciAddress& address, uint16_t offset, int width, uint32_t value) {
  PciDevice* device = FindDevice(address);
  if (device != nullptr) {
    device->config().Write(offset, width, value);
  }
}

PciDevice* Machine::IoPortOwner(uint16_t port) const {
  auto it = io_port_map_.find(port);
  return it == io_port_map_.end() ? nullptr : it->second.first;
}

uint8_t Machine::IoPortRead(uint16_t port) {
  auto it = io_port_map_.find(port);
  if (it == io_port_map_.end() || !it->second.first->config().io_enabled()) {
    return 0xff;
  }
  return it->second.first->IoRead(static_cast<uint16_t>(port - it->second.second));
}

void Machine::IoPortWrite(uint16_t port, uint8_t value) {
  auto it = io_port_map_.find(port);
  if (it != io_port_map_.end() && it->second.first->config().io_enabled()) {
    it->second.first->IoWrite(static_cast<uint16_t>(port - it->second.second), value);
  }
}

void Machine::TickDevices() {
  for (PciDevice* device : devices_) {
    device->Tick();
  }
}

}  // namespace sud::hw
