// Machine: the assembled simulated platform.
//
// Owns the clock, DRAM, IOMMU, MSI controller, root complex, switches,
// devices, the IO-port map and the CPU cost model. This is the only object a
// harness needs to construct; the simulated kernel (src/kern) runs "on" a
// Machine the way Linux runs on the paper's Thinkpad X301.

#ifndef SUD_SRC_HW_MACHINE_H_
#define SUD_SRC_HW_MACHINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/base/cpu_model.h"
#include "src/base/status.h"
#include "src/hw/iommu.h"
#include "src/hw/msi.h"
#include "src/hw/pci_device.h"
#include "src/hw/pcie_fabric.h"
#include "src/hw/phys_mem.h"

namespace sud::hw {

// MMIO windows are assigned downward from here (well above DRAM).
inline constexpr uint64_t kMmioWindowBase = 0xE0000000ull;
// IO-port BARs are assigned upward from here.
inline constexpr uint16_t kIoPortBase = 0xc000;

class Machine {
 public:
  struct Config {
    uint64_t dram_bytes = 64ull * 1024 * 1024;
    IommuMode iommu_mode = IommuMode::kIntelVtd;
    bool interrupt_remapping = false;  // the paper's testbed lacked it (§5.2)
  };

  Machine() : Machine(Config{}) {}
  explicit Machine(Config config);

  SimClock& clock() { return clock_; }
  PhysicalMemory& dram() { return *dram_; }
  Iommu& iommu() { return *iommu_; }
  MsiController& msi() { return *msi_; }
  RootComplex& root() { return *root_; }
  CpuModel& cpu() { return cpu_; }

  // Topology construction. Devices stay owned by the caller (device models
  // are usually members of a harness fixture); the machine assigns the PCI
  // address, attaches the device below the switch and assigns BARs.
  PcieSwitch& AddSwitch(const std::string& name);
  Status AttachDevice(PcieSwitch& sw, PciDevice* device);

  std::vector<PciDevice*> devices() const;
  PciDevice* FindDevice(const PciAddress& address) const;
  PciDevice* FindDeviceByName(const std::string& name) const;
  const std::vector<std::unique_ptr<PcieSwitch>>& switches() const { return switches_; }

  // --- CPU-initiated accesses (the trusted kernel side; drivers get at
  // these only through the safe-PCI module's mediated surface).
  uint32_t MmioRead32(uint64_t paddr);
  void MmioWrite32(uint64_t paddr, uint32_t value);
  uint32_t ConfigRead(const PciAddress& address, uint16_t offset, int width);
  void ConfigWrite(const PciAddress& address, uint16_t offset, int width, uint32_t value);
  uint8_t IoPortRead(uint16_t port);
  void IoPortWrite(uint16_t port, uint8_t value);

  // Which device owns an IO port / an MMIO address (nullptr if none).
  PciDevice* IoPortOwner(uint16_t port) const;
  PciDevice* MmioOwner(uint64_t paddr, int* bar_index, uint64_t* offset) const;

  // Runs every device's Tick().
  void TickDevices();

 private:
  void AssignBars(PciDevice* device);

  Config config_;
  SimClock clock_;
  CpuModel cpu_;
  std::unique_ptr<PhysicalMemory> dram_;
  std::unique_ptr<Iommu> iommu_;
  std::unique_ptr<MsiController> msi_;
  std::unique_ptr<RootComplex> root_;
  std::vector<std::unique_ptr<PcieSwitch>> switches_;
  std::vector<PciDevice*> devices_;

  uint8_t next_bus_ = 1;
  std::map<const PcieSwitch*, uint8_t> switch_bus_;
  std::map<uint8_t, uint8_t> next_dev_on_bus_;
  uint64_t next_mmio_window_ = kMmioWindowBase;
  uint16_t next_io_port_ = kIoPortBase;
  // port -> (device, bar base port)
  std::map<uint16_t, std::pair<PciDevice*, uint16_t>> io_port_map_;
};

}  // namespace sud::hw

#endif  // SUD_SRC_HW_MACHINE_H_
