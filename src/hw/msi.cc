#include "src/hw/msi.h"

#include "src/base/bytes.h"
#include "src/base/fault_injector.h"
#include "src/base/log.h"

namespace sud::hw {

Status MsiController::HandleWrite(uint16_t source_id, uint64_t addr, uint16_t data) {
  if (!InMsiRange(addr)) {
    return Status(ErrorCode::kInvalidArgument, "msi write outside doorbell range");
  }
  uint8_t requested_vector = static_cast<uint8_t>(data & 0xff);
  uint8_t vector = requested_vector;
  if (iommu_ != nullptr) {
    Result<uint8_t> remapped = iommu_->RemapInterrupt(source_id, requested_vector);
    if (!remapped.ok()) {
      blocked_.fetch_add(1, std::memory_order_relaxed);
      return remapped.status();
    }
    vector = remapped.value();
  }
  // Injected lost edge: the posted write vanishes on the "bus" before the
  // APIC sees it. A NIC consumer recovers without help — the next delivery's
  // edge drains the ring NAPI-style, and a lost *tail* interrupt is nudged
  // back to life by the generator's stall retransmit. Counted, never silent.
  if (SUD_FAULT_POINT("hw.msi.lost")) {
    injected_lost_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  delivered_[vector].fetch_add(1, std::memory_order_relaxed);
  total_delivered_.fetch_add(1, std::memory_order_relaxed);
  if (handler_) {
    handler_(vector, source_id);
    // Injected spurious edge: the same doorbell rings twice. The safe_pci
    // layer tolerates it by design (an in-flight queue coalesces/pends the
    // extra edge, an idle one takes a harmless empty poll + ack).
    if (SUD_FAULT_POINT("hw.msi.spurious")) {
      injected_spurious_.fetch_add(1, std::memory_order_relaxed);
      handler_(vector, source_id);
    }
  }
  return Status::Ok();
}

}  // namespace sud::hw
