// MsiController: the MSI doorbell window and interrupt delivery.
//
// A message-signaled interrupt is just a posted memory write to the
// 0xFEE00000 window; the controller turns it into a CPU interrupt on the
// APIC "bus" (a callback into the simulated kernel). Because the write
// arrives through the same fabric path as any DMA, the controller cannot
// tell a real interrupt from a malicious driver's stray DMA to the MSI
// address — the livelock weakness the paper measures in Section 5.2. The
// defences (MSI masking, interrupt remapping, AMD-style unmapping) all act
// upstream of this class.

#ifndef SUD_SRC_HW_MSI_H_
#define SUD_SRC_HW_MSI_H_

#include <cstdint>
#include <functional>
#include <map>

#include "src/base/status.h"
#include "src/hw/iommu.h"

namespace sud::hw {

class MsiController {
 public:
  // Handler receives (vector, source_id-as-seen-after-remap).
  using InterruptHandler = std::function<void(uint8_t vector, uint16_t source_id)>;

  explicit MsiController(Iommu* iommu) : iommu_(iommu) {}

  void set_handler(InterruptHandler handler) { handler_ = std::move(handler); }

  // Called by the root complex for any DMA write that lands in the MSI
  // range. `data` is the low 16 bits of the written payload; the low byte is
  // the requested vector.
  Status HandleWrite(uint16_t source_id, uint64_t addr, uint16_t data);

  uint64_t delivered(uint8_t vector) const {
    auto it = delivered_.find(vector);
    return it == delivered_.end() ? 0 : it->second;
  }
  uint64_t total_delivered() const { return total_delivered_; }
  uint64_t blocked() const { return blocked_; }
  void ResetCounters() {
    delivered_.clear();
    total_delivered_ = 0;
    blocked_ = 0;
  }

 private:
  Iommu* iommu_;
  InterruptHandler handler_;
  std::map<uint8_t, uint64_t> delivered_;
  uint64_t total_delivered_ = 0;
  uint64_t blocked_ = 0;
};

}  // namespace sud::hw

#endif  // SUD_SRC_HW_MSI_H_
