// MsiController: the MSI doorbell window and interrupt delivery.
//
// A message-signaled interrupt is just a posted memory write to the
// 0xFEE00000 window; the controller turns it into a CPU interrupt on the
// APIC "bus" (a callback into the simulated kernel). Because the write
// arrives through the same fabric path as any DMA, the controller cannot
// tell a real interrupt from a malicious driver's stray DMA to the MSI
// address — the livelock weakness the paper measures in Section 5.2. The
// defences (MSI masking, interrupt remapping, AMD-style unmapping) all act
// upstream of this class.

#ifndef SUD_SRC_HW_MSI_H_
#define SUD_SRC_HW_MSI_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>

#include "src/base/status.h"
#include "src/hw/iommu.h"

namespace sud::hw {

class MsiController {
 public:
  // Handler receives (vector, source_id-as-seen-after-remap).
  using InterruptHandler = std::function<void(uint8_t vector, uint16_t source_id)>;

  explicit MsiController(Iommu* iommu) : iommu_(iommu) {}

  void set_handler(InterruptHandler handler) { handler_ = std::move(handler); }

  // Called by the root complex for any DMA write that lands in the MSI
  // range. `data` is the low 16 bits of the written payload; the low byte is
  // the requested vector.
  Status HandleWrite(uint16_t source_id, uint64_t addr, uint16_t data);

  uint64_t delivered(uint8_t vector) const {
    return delivered_[vector].load(std::memory_order_relaxed);
  }
  uint64_t total_delivered() const { return total_delivered_.load(std::memory_order_relaxed); }
  uint64_t blocked() const { return blocked_.load(std::memory_order_relaxed); }
  // Injected-fault accounting ("hw.msi.lost" / "hw.msi.spurious" sites):
  // edges the engine swallowed before the APIC, and extra edges it rang.
  uint64_t injected_lost() const { return injected_lost_.load(std::memory_order_relaxed); }
  uint64_t injected_spurious() const {
    return injected_spurious_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    for (auto& count : delivered_) {
      count.store(0, std::memory_order_relaxed);
    }
    total_delivered_.store(0, std::memory_order_relaxed);
    blocked_.store(0, std::memory_order_relaxed);
    injected_lost_.store(0, std::memory_order_relaxed);
    injected_spurious_.store(0, std::memory_order_relaxed);
  }

 private:
  Iommu* iommu_;
  InterruptHandler handler_;
  // Per-vector counters are relaxed atomics: with per-queue MSI vectors the
  // doorbell is written concurrently from every queue's pump thread.
  std::array<std::atomic<uint64_t>, 256> delivered_{};
  std::atomic<uint64_t> total_delivered_{0};
  std::atomic<uint64_t> blocked_{0};
  std::atomic<uint64_t> injected_lost_{0};
  std::atomic<uint64_t> injected_spurious_{0};
};

}  // namespace sud::hw

#endif  // SUD_SRC_HW_MSI_H_
