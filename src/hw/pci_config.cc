#include "src/hw/pci_config.h"

#include "src/base/bytes.h"

namespace sud::hw {

PciConfigSpace::PciConfigSpace(uint16_t vendor_id, uint16_t device_id, uint8_t class_code) {
  StoreLe16(&bytes_[kPciVendorId], vendor_id);
  StoreLe16(&bytes_[kPciDeviceId], device_id);
  bytes_[kPciClassCode + 2] = class_code;  // base class byte
  // Status: capabilities-list bit set.
  StoreLe16(&bytes_[kPciStatus], 1 << 4);
  bytes_[kPciCapPointer] = static_cast<uint8_t>(kMsiCapOffset);
  // MSI capability header: id 0x05, next 0, control: per-vector masking capable.
  bytes_[kMsiCapOffset] = kMsiCapId;
  bytes_[kMsiCapOffset + 1] = 0;
  StoreLe16(&bytes_[kMsiControl], kMsiControlPerVectorMask);
  RefreshCachesLocked();  // construction is single-threaded; no lock needed
}

void PciConfigSpace::RefreshCachesLocked() {
  command_cache_.store(LoadLe16(&bytes_[kPciCommand]), std::memory_order_relaxed);
  msi_control_cache_.store(LoadLe16(&bytes_[kMsiControl]), std::memory_order_relaxed);
  msi_mask_cache_.store(LoadLe32(&bytes_[kMsiMaskBits]), std::memory_order_relaxed);
  msi_address_cache_.store((static_cast<uint64_t>(LoadLe32(&bytes_[kMsiAddress + 4])) << 32) |
                               LoadLe32(&bytes_[kMsiAddress]),
                           std::memory_order_relaxed);
  msi_data_cache_.store(LoadLe16(&bytes_[kMsiData]), std::memory_order_relaxed);
}

uint32_t PciConfigSpace::ReadLocked(uint16_t offset, int width) const {
  if (offset >= bytes_.size() || offset + width > static_cast<int>(bytes_.size())) {
    return 0xffffffffu;
  }
  switch (width) {
    case 1:
      return bytes_[offset];
    case 2:
      return LoadLe16(&bytes_[offset]);
    case 4:
      return LoadLe32(&bytes_[offset]);
    default:
      return 0xffffffffu;
  }
}

void PciConfigSpace::WriteLocked(uint16_t offset, int width, uint32_t value) {
  if (offset >= bytes_.size() || offset + width > static_cast<int>(bytes_.size())) {
    return;
  }
  switch (width) {
    case 1:
      bytes_[offset] = static_cast<uint8_t>(value);
      break;
    case 2:
      StoreLe16(&bytes_[offset], static_cast<uint16_t>(value));
      break;
    case 4:
      StoreLe32(&bytes_[offset], value);
      break;
    default:
      break;
  }
  RefreshCachesLocked();  // config writes are cold; the fast-path reads are not
}

uint32_t PciConfigSpace::Read(uint16_t offset, int width) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ReadLocked(offset, width);
}

void PciConfigSpace::Write(uint16_t offset, int width, uint32_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  WriteLocked(offset, width, value);
}

uint64_t PciConfigSpace::bar(int index) const {
  if (index < 0 || index > 5) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(mu_);
  return LoadLe32(&bytes_[kPciBar0 + 4 * index]) & ~0xfull;
}

void PciConfigSpace::set_bar(int index, uint64_t addr) {
  if (index < 0 || index > 5) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  StoreLe32(&bytes_[kPciBar0 + 4 * index], static_cast<uint32_t>(addr));
}

void PciConfigSpace::set_msi_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  uint16_t control = static_cast<uint16_t>(ReadLocked(kMsiControl, 2));
  if (enabled) {
    control |= kMsiControlEnable;
  } else {
    control &= static_cast<uint16_t>(~kMsiControlEnable);
  }
  WriteLocked(kMsiControl, 2, control);
}

void PciConfigSpace::set_msi_masked(bool masked) {
  // The whole read-modify-write under one lock hold: concurrent mask/unmask
  // from different queue threads must not lose each other's update.
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t mask = ReadLocked(kMsiMaskBits, 4);
  if (masked) {
    mask |= 1;
  } else {
    mask &= ~1u;
  }
  WriteLocked(kMsiMaskBits, 4, mask);
}

void PciConfigSpace::set_msi_address(uint64_t addr) {
  std::lock_guard<std::mutex> lock(mu_);
  WriteLocked(kMsiAddress, 4, static_cast<uint32_t>(addr));
  WriteLocked(kMsiAddress + 4, 4, static_cast<uint32_t>(addr >> 32));
}

}  // namespace sud::hw
