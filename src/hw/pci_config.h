// PCI configuration space (256 bytes) with an MSI capability.
//
// The config space is the attack surface Section 3.2.1 worries about: BARs
// relocate the device's MMIO window, the command register enables bus
// mastering, and the MSI capability holds the interrupt doorbell address.
// SUD therefore never grants drivers raw config access — all driver accesses
// go through the safe-PCI filter (src/sud/safe_pci.*). This class is the raw,
// trusted register file the filter mediates.
//
// Threading: the register file is accessed from more than one thread — a
// driver pump thread masks/unmasks MSI through the safe-PCI ack path while a
// delivering thread consults the same bits in RaiseMsi. An internal mutex
// makes every access (including the read-modify-write helpers) atomic. The
// words on the packet fast path — the command register (bus-master check on
// EVERY DMA transaction) and the MSI control/mask/address/data words (read
// on every interrupt raise) — are mirrored in relaxed atomic caches updated
// under the lock, so the per-queue DMA and MSI paths never contend on the
// mutex and multi-queue traffic stays lock-free here.

#ifndef SUD_SRC_HW_PCI_CONFIG_H_
#define SUD_SRC_HW_PCI_CONFIG_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>

namespace sud::hw {

// Standard config-space register offsets.
inline constexpr uint16_t kPciVendorId = 0x00;
inline constexpr uint16_t kPciDeviceId = 0x02;
inline constexpr uint16_t kPciCommand = 0x04;
inline constexpr uint16_t kPciStatus = 0x06;
inline constexpr uint16_t kPciRevision = 0x08;
inline constexpr uint16_t kPciClassCode = 0x09;
inline constexpr uint16_t kPciCacheLineSize = 0x0c;
inline constexpr uint16_t kPciLatencyTimer = 0x0d;
inline constexpr uint16_t kPciHeaderType = 0x0e;
inline constexpr uint16_t kPciBar0 = 0x10;  // BARs 0..5, 4 bytes each
inline constexpr uint16_t kPciCapPointer = 0x34;
inline constexpr uint16_t kPciInterruptLine = 0x3c;
inline constexpr uint16_t kPciInterruptPin = 0x3d;

// Command-register bits.
inline constexpr uint16_t kPciCommandIoEnable = 1 << 0;
inline constexpr uint16_t kPciCommandMemEnable = 1 << 1;
inline constexpr uint16_t kPciCommandBusMaster = 1 << 2;
inline constexpr uint16_t kPciCommandIntxDisable = 1 << 10;

// MSI capability layout (placed at a fixed offset in this model).
inline constexpr uint16_t kMsiCapOffset = 0x50;
inline constexpr uint16_t kMsiCapId = 0x05;
inline constexpr uint16_t kMsiControl = kMsiCapOffset + 0x02;   // 16-bit
inline constexpr uint16_t kMsiAddress = kMsiCapOffset + 0x04;   // 64-bit
inline constexpr uint16_t kMsiData = kMsiCapOffset + 0x0c;      // 16-bit
inline constexpr uint16_t kMsiMaskBits = kMsiCapOffset + 0x10;  // 32-bit

// MSI control bits.
inline constexpr uint16_t kMsiControlEnable = 1 << 0;
inline constexpr uint16_t kMsiControlPerVectorMask = 1 << 8;

class PciConfigSpace {
 public:
  PciConfigSpace(uint16_t vendor_id, uint16_t device_id, uint8_t class_code);

  // Width-checked raw access (width in {1, 2, 4}). Offsets past 0xff read as
  // all-ones, PCI-style.
  uint32_t Read(uint16_t offset, int width) const;
  void Write(uint16_t offset, int width, uint32_t value);

  // Typed helpers. The command and MSI readers go through the lock-free
  // caches — they run on every DMA transaction / interrupt raise.
  uint16_t vendor_id() const { return static_cast<uint16_t>(Read(kPciVendorId, 2)); }
  uint16_t device_id() const { return static_cast<uint16_t>(Read(kPciDeviceId, 2)); }
  uint16_t command() const { return command_cache_.load(std::memory_order_relaxed); }
  void set_command(uint16_t value) { Write(kPciCommand, 2, value); }
  bool bus_master_enabled() const { return (command() & kPciCommandBusMaster) != 0; }
  bool mem_enabled() const { return (command() & kPciCommandMemEnable) != 0; }
  bool io_enabled() const { return (command() & kPciCommandIoEnable) != 0; }

  uint64_t bar(int index) const;
  void set_bar(int index, uint64_t addr);

  // MSI capability.
  bool msi_enabled() const {
    return (msi_control_cache_.load(std::memory_order_relaxed) & kMsiControlEnable) != 0;
  }
  void set_msi_enabled(bool enabled);
  bool msi_masked() const { return (msi_mask_cache_.load(std::memory_order_relaxed) & 1) != 0; }
  void set_msi_masked(bool masked);
  uint64_t msi_address() const { return msi_address_cache_.load(std::memory_order_relaxed); }
  void set_msi_address(uint64_t addr);
  uint16_t msi_data() const { return msi_data_cache_.load(std::memory_order_relaxed); }
  void set_msi_data(uint16_t data) { Write(kMsiData, 2, data); }

 private:
  // Unlocked bodies shared by the public accessors and the read-modify-write
  // helpers (which must hold the lock across their whole update).
  uint32_t ReadLocked(uint16_t offset, int width) const;
  void WriteLocked(uint16_t offset, int width, uint32_t value);
  // Re-derives every fast-path cache from bytes_; called (under the lock)
  // after any write, so raw config writes through the filter keep the caches
  // coherent too.
  void RefreshCachesLocked();

  mutable std::mutex mu_;
  std::array<uint8_t, 256> bytes_{};
  std::atomic<uint16_t> command_cache_{0};
  std::atomic<uint16_t> msi_control_cache_{0};
  std::atomic<uint32_t> msi_mask_cache_{0};
  std::atomic<uint64_t> msi_address_cache_{0};
  std::atomic<uint16_t> msi_data_cache_{0};
};

}  // namespace sud::hw

#endif  // SUD_SRC_HW_PCI_CONFIG_H_
