#include "src/hw/pci_device.h"

#include <cstdio>

namespace sud::hw {

std::string PciAddress::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02x:%02x.%x", bus, dev, fn);
  return buf;
}

PciDevice::PciDevice(std::string name, uint16_t vendor_id, uint16_t device_id, uint8_t class_code,
                     std::vector<BarDesc> bars)
    : name_(std::move(name)), config_(vendor_id, device_id, class_code), bars_(std::move(bars)) {}

Status PciDevice::DmaRead(uint64_t addr, ByteSpan out) {
  if (port_ == nullptr) {
    return Status(ErrorCode::kUnavailable, name_ + ": not attached to a fabric");
  }
  if (!config_.bus_master_enabled()) {
    return Status(ErrorCode::kPermissionDenied, name_ + ": bus mastering disabled");
  }
  return port_->DmaRead(effective_source_id(), addr, out);
}

Status PciDevice::DmaWrite(uint64_t addr, ConstByteSpan data) {
  if (port_ == nullptr) {
    return Status(ErrorCode::kUnavailable, name_ + ": not attached to a fabric");
  }
  if (!config_.bus_master_enabled()) {
    return Status(ErrorCode::kPermissionDenied, name_ + ": bus mastering disabled");
  }
  return port_->DmaWrite(effective_source_id(), addr, data);
}

Status PciDevice::RaiseMsi() {
  if (!config_.msi_enabled()) {
    return Status::Ok();  // interrupt dropped, per spec (no INTx in this model)
  }
  if (config_.msi_masked()) {
    msi_pending_ = true;
    return Status::Ok();
  }
  uint8_t payload[2];
  StoreLe16(payload, config_.msi_data());
  // MSI writes are posted memory writes: they traverse the same fabric path
  // as any DMA, which is why a stray DMA to the MSI address is
  // indistinguishable from a real interrupt (Section 3.2.2).
  return DmaWrite(config_.msi_address(), ConstByteSpan(payload, sizeof(payload)));
}

Status PciDevice::FirePendingMsi() {
  if (!msi_pending_) {
    return Status::Ok();
  }
  msi_pending_ = false;
  return RaiseMsi();
}

}  // namespace sud::hw
