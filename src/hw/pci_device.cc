#include "src/hw/pci_device.h"

#include <cstdio>

namespace sud::hw {

std::string PciAddress::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02x:%02x.%x", bus, dev, fn);
  return buf;
}

PciDevice::PciDevice(std::string name, uint16_t vendor_id, uint16_t device_id, uint8_t class_code,
                     std::vector<BarDesc> bars)
    : name_(std::move(name)), config_(vendor_id, device_id, class_code), bars_(std::move(bars)) {}

Status PciDevice::DmaRead(uint64_t addr, ByteSpan out) {
  if (port_ == nullptr) {
    return Status(ErrorCode::kUnavailable, name_ + ": not attached to a fabric");
  }
  if (!config_.bus_master_enabled()) {
    return Status(ErrorCode::kPermissionDenied, name_ + ": bus mastering disabled");
  }
  return port_->DmaRead(effective_source_id(), addr, out);
}

Status PciDevice::DmaWrite(uint64_t addr, ConstByteSpan data) {
  if (port_ == nullptr) {
    return Status(ErrorCode::kUnavailable, name_ + ": not attached to a fabric");
  }
  if (!config_.bus_master_enabled()) {
    return Status(ErrorCode::kPermissionDenied, name_ + ": bus mastering disabled");
  }
  return port_->DmaWrite(effective_source_id(), addr, data);
}

Status PciDevice::RaiseMsi(uint8_t vector_index) {
  if (!config_.msi_enabled()) {
    return Status::Ok();  // interrupt dropped, per spec (no INTx in this model)
  }
  if (vector_index >= 32) {
    return Status(ErrorCode::kInvalidArgument, name_ + ": msi vector index out of range");
  }
  if (config_.msi_masked()) {
    msi_pending_mask_.fetch_or(1u << vector_index, std::memory_order_relaxed);
    return Status::Ok();
  }
  uint8_t payload[2];
  // Multiple-message MSI: the function substitutes the message index into
  // the low bits of the data payload.
  StoreLe16(payload, static_cast<uint16_t>(config_.msi_data() + vector_index));
  // MSI writes are posted memory writes: they traverse the same fabric path
  // as any DMA, which is why a stray DMA to the MSI address is
  // indistinguishable from a real interrupt (Section 3.2.2).
  return DmaWrite(config_.msi_address(), ConstByteSpan(payload, sizeof(payload)));
}

Status PciDevice::FirePendingMsi() {
  uint32_t pending = msi_pending_mask_.exchange(0, std::memory_order_relaxed);
  while (pending != 0) {
    uint8_t index = static_cast<uint8_t>(__builtin_ctz(pending));
    pending &= pending - 1;
    SUD_RETURN_IF_ERROR(RaiseMsi(index));
  }
  return Status::Ok();
}

}  // namespace sud::hw
