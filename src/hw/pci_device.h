// PciDevice: base class for every simulated PCI-express device.
//
// A device owns its config space and register file (BARs), and reaches the
// rest of the machine only through the DmaPort it was attached to — exactly
// like a real PCIe function, whose only path to memory is the TLP stream out
// of its link. That single choke point is what lets the fabric, ACS and the
// IOMMU confine a device that a malicious driver has programmed to attack.
//
// SUD trusts the device hardware (Section 3.2). The `spoofed_source_id` test
// hook exists so the test suite can model the one hardware misbehaviour ACS
// source validation is designed to stop — a device lying about its requester
// ID — and show the switch blocking it.

#ifndef SUD_SRC_HW_PCI_DEVICE_H_
#define SUD_SRC_HW_PCI_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/status.h"
#include "src/hw/pci_config.h"

namespace sud::hw {

// Bus/device/function triple. The 16-bit requester ("source") id is what the
// IOMMU and ACS key their checks on.
struct PciAddress {
  uint8_t bus = 0;
  uint8_t dev = 0;
  uint8_t fn = 0;

  uint16_t source_id() const {
    return static_cast<uint16_t>((bus << 8) | ((dev & 0x1f) << 3) | (fn & 0x7));
  }
  std::string ToString() const;
  bool operator==(const PciAddress& other) const {
    return bus == other.bus && dev == other.dev && fn == other.fn;
  }
};

// One base address register's geometry.
struct BarDesc {
  uint64_t size = 0;
  bool is_io = false;  // true: x86 IO-port window, false: MMIO
};

// The device's window onto the fabric: issued transactions carry the source
// id the device claims (normally its real one).
class DmaPort {
 public:
  virtual ~DmaPort() = default;
  virtual Status DmaRead(uint16_t source_id, uint64_t addr, ByteSpan out) = 0;
  virtual Status DmaWrite(uint16_t source_id, uint64_t addr, ConstByteSpan data) = 0;
};

class PciDevice {
 public:
  PciDevice(std::string name, uint16_t vendor_id, uint16_t device_id, uint8_t class_code,
            std::vector<BarDesc> bars);
  virtual ~PciDevice() = default;

  PciDevice(const PciDevice&) = delete;
  PciDevice& operator=(const PciDevice&) = delete;

  const std::string& name() const { return name_; }
  PciConfigSpace& config() { return config_; }
  const PciConfigSpace& config() const { return config_; }
  const std::vector<BarDesc>& bars() const { return bars_; }
  const PciAddress& address() const { return address_; }
  void set_address(PciAddress address) { address_ = address; }

  // CPU-initiated register access, 32-bit granularity, `offset` within `bar`.
  virtual uint32_t MmioRead(int bar, uint64_t offset) = 0;
  virtual void MmioWrite(int bar, uint64_t offset, uint32_t value) = 0;

  // Legacy x86 IO-port access; `port_offset` is relative to the IO BAR base.
  virtual uint8_t IoRead(uint16_t port_offset) { return 0xff; }
  virtual void IoWrite(uint16_t port_offset, uint8_t value) {}

  // Time-driven behaviour (link polling, audio sample consumption, ...).
  virtual void Tick() {}
  virtual void Reset() {}

  void AttachTo(DmaPort* port) { port_ = port; }
  bool attached() const { return port_ != nullptr; }

  // --- test hook: model a requester-id-spoofing device (blocked by ACS
  // source validation). Not reachable by drivers.
  void set_spoofed_source_id(std::optional<uint16_t> id) { spoofed_source_id_ = id; }

  // Device-initiated accesses. Public so device models split across helper
  // classes can issue them; real callers are subclasses and tests.
  // Honour the bus-master-enable bit in the command register, like real HW.
  Status DmaRead(uint64_t addr, ByteSpan out);
  Status DmaWrite(uint64_t addr, ConstByteSpan data);

  // Signals MSI by writing msi_data to msi_address *through the fabric*, so
  // masking, remapping and the stray-DMA-to-MSI-address unification all
  // behave as on real hardware. No-op (returns ok) when MSI disabled/masked;
  // records a pending bit that fires on unmask, per PCI spec.
  //
  // Multi-message MSI (the multi-queue interrupt fabric): `vector_index`
  // selects one of the function's messages by adding the index to the data
  // payload's low byte, exactly how a multiple-message-enabled function
  // modifies its data field per the PCI spec. Index 0 is the classic
  // single-message behaviour. The kernel side must have allocated a
  // contiguous vector range (Kernel::AllocIrqVectorRange).
  Status RaiseMsi() { return RaiseMsi(0); }
  Status RaiseMsi(uint8_t vector_index);
  bool msi_pending() const { return msi_pending_mask_.load(std::memory_order_relaxed) != 0; }
  // Called by the safe-PCI layer after unmasking to deliver pended MSIs
  // (one fabric write per pended vector).
  Status FirePendingMsi();

 private:
  uint16_t effective_source_id() const {
    return spoofed_source_id_.value_or(address_.source_id());
  }

  std::string name_;
  PciConfigSpace config_;
  std::vector<BarDesc> bars_;
  PciAddress address_;
  DmaPort* port_ = nullptr;
  std::optional<uint16_t> spoofed_source_id_;
  // One pending bit per multi-message vector index (up to 32 messages).
  // Atomic: queue pump threads pend concurrently while another unmasks.
  std::atomic<uint32_t> msi_pending_mask_{0};
};

}  // namespace sud::hw

#endif  // SUD_SRC_HW_PCI_DEVICE_H_
