#include "src/hw/pcie_fabric.h"

#include <algorithm>

#include "src/base/bytes.h"
#include "src/base/fault_injector.h"
#include "src/base/log.h"

namespace sud::hw {

Status RootComplex::DmaRead(uint16_t source_id, uint64_t addr, ByteSpan out) {
  if (InMsiRange(addr)) {
    // The MSI window is not readable memory.
    ++dropped_;
    return Status(ErrorCode::kInvalidArgument, "dma read from msi window");
  }
  return Access(source_id, addr, out, {}, /*is_write=*/false);
}

Status RootComplex::DmaWrite(uint16_t source_id, uint64_t addr, ConstByteSpan data) {
  if (InMsiRange(addr)) {
    if (iommu_ != nullptr && !iommu_->AllowsMsiWrite(source_id)) {
      ++dropped_;
      SUD_LOG(kAttack) << "dma write to msi window from source " << Hex(source_id)
                       << " dropped (no msi mapping, amd-vi mode)";
      return Status(ErrorCode::kIommuFault, "msi window not mapped for source");
    }
    uint16_t payload = 0;
    if (data.size() >= 2) {
      payload = LoadLe16(data.data());
    } else if (data.size() == 1) {
      payload = data[0];
    }
    return msi_->HandleWrite(source_id, addr, payload);
  }
  return Access(source_id, addr, {}, data, /*is_write=*/true);
}

Status RootComplex::Access(uint16_t source_id, uint64_t addr, ByteSpan out, ConstByteSpan in,
                           bool is_write) {
  // Injected transient fault: the whole transaction aborts, exactly like an
  // IOMMU fault would abort it — callers already treat that as
  // whole-frame-or-nothing (counted in their dma_errors / drop stats).
  if (SUD_FAULT_POINT(is_write ? "hw.pcie.dma_write" : "hw.pcie.dma_read")) {
    ++dropped_;
    return Status(ErrorCode::kIommuFault, "injected transient dma fault");
  }
  // Hardware splits bursts at page boundaries; do the same so the IOMMU
  // never sees a page-crossing access.
  uint64_t total = is_write ? in.size() : out.size();
  uint64_t done = 0;
  while (done < total) {
    uint64_t piece_addr = addr + done;
    uint64_t page_left = kPageSize - (piece_addr & kPageMask);
    uint64_t piece_len = std::min<uint64_t>(total - done, page_left);
    Result<uint64_t> paddr = iommu_->Translate(source_id, piece_addr, piece_len, is_write);
    if (!paddr.ok()) {
      ++dropped_;
      return paddr.status();
    }
    Status status = is_write ? dram_->Write(paddr.value(), in.subspan(done, piece_len))
                             : dram_->Read(paddr.value(), out.subspan(done, piece_len));
    if (!status.ok()) {
      ++dropped_;
      return status;
    }
    done += piece_len;
  }
  return Status::Ok();
}

DmaPort* PcieSwitch::AttachDevice(PciDevice* device) {
  devices_.push_back(device);
  ports_.push_back(std::make_unique<PortHandle>(this, ports_.size()));
  DmaPort* handle = ports_.back().get();
  device->AttachTo(handle);
  return handle;
}

PciDevice* PcieSwitch::FindPeerByAddress(uint64_t addr, size_t ingress_port, int* bar_index,
                                         uint64_t* bar_offset) {
  for (size_t i = 0; i < devices_.size(); ++i) {
    if (i == ingress_port) {
      continue;
    }
    PciDevice* peer = devices_[i];
    for (size_t b = 0; b < peer->bars().size(); ++b) {
      const BarDesc& bar = peer->bars()[b];
      if (bar.is_io || bar.size == 0) {
        continue;
      }
      uint64_t base = peer->config().bar(static_cast<int>(b));
      if (base != 0 && addr >= base && addr < base + bar.size) {
        *bar_index = static_cast<int>(b);
        *bar_offset = addr - base;
        return peer;
      }
    }
  }
  return nullptr;
}

Status PcieSwitch::RouteUpstream(size_t ingress_port, uint16_t source_id, uint64_t addr,
                                 ByteSpan out, ConstByteSpan in, bool is_write) {
  // ACS source validation: the requester id must match the device attached
  // below the ingress port.
  if (acs_.source_validation) {
    uint16_t expected = devices_[ingress_port]->address().source_id();
    if (source_id != expected) {
      ++blocked_source_validation_;
      SUD_LOG(kAttack) << name_ << ": acs source validation dropped tlp claiming source "
                       << Hex(source_id) << " on port of " << Hex(expected);
      return Status(ErrorCode::kAcsBlocked, "acs source validation failed");
    }
  }

  // Address routing: does the target fall inside a sibling's BAR window?
  // With P2P request redirect on, every transaction goes upstream regardless
  // of the target, so the (per-TLP, per-BAR) sibling scan is skipped.
  int bar_index = 0;
  uint64_t bar_offset = 0;
  PciDevice* peer = acs_.p2p_request_redirect
                        ? nullptr
                        : FindPeerByAddress(addr, ingress_port, &bar_index, &bar_offset);
  if (peer != nullptr) {
    // Vulnerable configuration: the transaction is delivered peer-to-peer,
    // never crossing the IOMMU. This is the attack in Section 3.2.2.
    ++p2p_deliveries_;
    SUD_LOG(kAttack) << name_ << ": peer-to-peer " << (is_write ? "write" : "read") << " from "
                     << Hex(source_id) << " delivered into " << peer->name() << " bar "
                     << bar_index << "+" << Hex(bar_offset) << " (ACS off!)";
    if (is_write) {
      for (size_t i = 0; i + 4 <= in.size(); i += 4) {
        peer->MmioWrite(bar_index, bar_offset + i, LoadLe32(in.data() + i));
      }
    } else {
      for (size_t i = 0; i + 4 <= out.size(); i += 4) {
        StoreLe32(out.data() + i, peer->MmioRead(bar_index, bar_offset + i));
      }
    }
    return Status::Ok();
  }
  // With P2P redirect on (or no peer match), forward to the root. The IOMMU
  // will fault the access unless it is explicitly mapped — and BAR addresses
  // never are, so redirected peer-to-peer attacks die at the root.
  return is_write ? upstream_->DmaWrite(source_id, addr, in)
                  : upstream_->DmaRead(source_id, addr, out);
}

}  // namespace sud::hw
