// The PCI-express fabric: root complex and switches with ACS.
//
// Routing model (Figure 4 of the paper):
//
//   device --(downstream port)--> PcieSwitch --(upstream)--> RootComplex
//                                                                |
//                                             IOMMU translate ---+--- MSI window
//                                                  |                      |
//                                             PhysicalMemory        MsiController
//
// A switch is where the peer-to-peer DMA attack lives: traditional PCI
// routes a memory transaction by address, so a device can write straight
// into a sibling device's BAR without ever crossing the IOMMU. PCI-express
// Access Control Services (ACS) close this: *source validation* drops
// transactions whose requester id doesn't match the ingress port, and *P2P
// request redirect* forces every transaction upstream to the root (and its
// IOMMU) even when the address matches a sibling.
//
// Both features are modelled faithfully, default-off (as hardware powers
// up), and enabled by SUD's safe-PCI module at initialisation — giving the
// security tests both the vulnerable and the defended configuration.

#ifndef SUD_SRC_HW_PCIE_FABRIC_H_
#define SUD_SRC_HW_PCIE_FABRIC_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/cpu_model.h"
#include "src/base/status.h"
#include "src/hw/iommu.h"
#include "src/hw/msi.h"
#include "src/hw/pci_device.h"
#include "src/hw/phys_mem.h"

namespace sud::hw {

// The top of the tree. Everything that flows upstream ends here and is either
// an MSI doorbell write or a DMA that must translate through the IOMMU.
class RootComplex : public DmaPort {
 public:
  RootComplex(PhysicalMemory* dram, Iommu* iommu, MsiController* msi)
      : dram_(dram), iommu_(iommu), msi_(msi) {}

  Status DmaRead(uint16_t source_id, uint64_t addr, ByteSpan out) override;
  Status DmaWrite(uint16_t source_id, uint64_t addr, ConstByteSpan data) override;

  uint64_t dropped_transactions() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  // Splits a burst at page boundaries and translates each piece.
  Status Access(uint16_t source_id, uint64_t addr, ByteSpan out, ConstByteSpan in, bool is_write);

  PhysicalMemory* dram_;
  Iommu* iommu_;
  MsiController* msi_;
  // Relaxed atomic: confined DMA can fault concurrently from every queue's
  // delivery or pump thread.
  std::atomic<uint64_t> dropped_{0};
};

// A PCIe switch: one upstream port, N downstream ports with one device each.
class PcieSwitch {
 public:
  struct AcsConfig {
    bool source_validation = false;
    bool p2p_request_redirect = false;
  };

  PcieSwitch(std::string name, DmaPort* upstream) : name_(std::move(name)), upstream_(upstream) {}

  const std::string& name() const { return name_; }
  void set_acs(AcsConfig acs) { acs_ = acs; }
  AcsConfig acs() const { return acs_; }

  // Attaches a device below a fresh downstream port and returns the port the
  // device must issue transactions through. The device's PciAddress must be
  // assigned before attaching (source validation pins it to the port).
  DmaPort* AttachDevice(PciDevice* device);

  const std::vector<PciDevice*>& devices() const { return devices_; }

  uint64_t p2p_deliveries() const { return p2p_deliveries_.load(std::memory_order_relaxed); }
  uint64_t blocked_by_source_validation() const {
    return blocked_source_validation_.load(std::memory_order_relaxed);
  }

 private:
  // Per-port handle so the switch knows the ingress port of each TLP.
  class PortHandle : public DmaPort {
   public:
    PortHandle(PcieSwitch* parent, size_t port_index) : parent_(parent), port_(port_index) {}
    Status DmaRead(uint16_t source_id, uint64_t addr, ByteSpan out) override {
      return parent_->RouteUpstream(port_, source_id, addr, out, {}, /*is_write=*/false);
    }
    Status DmaWrite(uint16_t source_id, uint64_t addr, ConstByteSpan data) override {
      return parent_->RouteUpstream(port_, source_id, addr, {}, data, /*is_write=*/true);
    }

   private:
    PcieSwitch* parent_;
    size_t port_;
  };

  Status RouteUpstream(size_t ingress_port, uint16_t source_id, uint64_t addr, ByteSpan out,
                       ConstByteSpan in, bool is_write);

  // Finds a sibling device (not on `ingress_port`) whose MMIO BAR window
  // contains `addr`; returns nullptr if none.
  PciDevice* FindPeerByAddress(uint64_t addr, size_t ingress_port, int* bar_index,
                               uint64_t* bar_offset);

  std::string name_;
  DmaPort* upstream_;
  AcsConfig acs_;
  std::vector<PciDevice*> devices_;
  std::vector<std::unique_ptr<PortHandle>> ports_;
  // Relaxed atomics: every queue's delivery/pump thread routes DMA through
  // the switch, and blocked or redirected transactions count concurrently.
  std::atomic<uint64_t> p2p_deliveries_{0};
  std::atomic<uint64_t> blocked_source_validation_{0};
};

}  // namespace sud::hw

#endif  // SUD_SRC_HW_PCIE_FABRIC_H_
