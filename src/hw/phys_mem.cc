#include "src/hw/phys_mem.h"

#include <atomic>
#include <cstring>

namespace sud::hw {

PhysicalMemory::PhysicalMemory(uint64_t size_bytes) {
  uint64_t rounded = PageAlignUp(size_bytes);
  bytes_.resize(rounded, 0);
  page_used_.resize(rounded / kPageSize, false);
}

Status PhysicalMemory::Read(uint64_t paddr, ByteSpan out) const {
  if (paddr + out.size() > bytes_.size() || paddr + out.size() < paddr) {
    return Status(ErrorCode::kInvalidArgument,
                  "physical read out of range at " + Hex(paddr));
  }
  std::memcpy(out.data(), bytes_.data() + paddr, out.size());
  return Status::Ok();
}

Status PhysicalMemory::Write(uint64_t paddr, ConstByteSpan data) {
  if (paddr + data.size() > bytes_.size() || paddr + data.size() < paddr) {
    return Status(ErrorCode::kInvalidArgument,
                  "physical write out of range at " + Hex(paddr));
  }
  if (data.size() == 1) {
    // Single-byte DMA writes publish with release semantics: devices use
    // them as the descriptor-done flag (DD written last, as real NICs do),
    // and a driver polling from another thread pairs it with an acquire
    // load of that byte.
    std::atomic_ref<uint8_t>(bytes_[paddr]).store(data[0], std::memory_order_release);
    return Status::Ok();
  }
  std::memcpy(bytes_.data() + paddr, data.data(), data.size());
  return Status::Ok();
}

uint32_t PhysicalMemory::Read32(uint64_t paddr) const {
  if (paddr + 4 > bytes_.size()) {
    return 0;
  }
  return LoadLe32(bytes_.data() + paddr);
}

uint64_t PhysicalMemory::Read64(uint64_t paddr) const {
  if (paddr + 8 > bytes_.size()) {
    return 0;
  }
  return LoadLe64(bytes_.data() + paddr);
}

void PhysicalMemory::Write32(uint64_t paddr, uint32_t value) {
  if (paddr + 4 <= bytes_.size()) {
    StoreLe32(bytes_.data() + paddr, value);
  }
}

void PhysicalMemory::Write64(uint64_t paddr, uint64_t value) {
  if (paddr + 8 <= bytes_.size()) {
    StoreLe64(bytes_.data() + paddr, value);
  }
}

Result<ByteSpan> PhysicalMemory::Window(uint64_t paddr, uint64_t len) {
  if (paddr + len > bytes_.size() || paddr + len < paddr) {
    return Status(ErrorCode::kInvalidArgument, "window out of range at " + Hex(paddr));
  }
  return ByteSpan(bytes_.data() + paddr, len);
}

Result<uint64_t> PhysicalMemory::AllocPages(uint64_t num_pages) {
  if (num_pages == 0) {
    return Status(ErrorCode::kInvalidArgument, "zero-page allocation");
  }
  uint64_t run = 0;
  for (uint64_t i = 0; i < page_used_.size(); ++i) {
    run = page_used_[i] ? 0 : run + 1;
    if (run == num_pages) {
      uint64_t first = i + 1 - num_pages;
      for (uint64_t j = first; j <= i; ++j) {
        page_used_[j] = true;
      }
      allocated_pages_ += num_pages;
      return first * kPageSize;
    }
  }
  return Status(ErrorCode::kExhausted, "out of physical pages");
}

void PhysicalMemory::FreePages(uint64_t paddr, uint64_t num_pages) {
  uint64_t first = paddr / kPageSize;
  for (uint64_t j = first; j < first + num_pages && j < page_used_.size(); ++j) {
    if (page_used_[j]) {
      page_used_[j] = false;
      --allocated_pages_;
    }
  }
}

}  // namespace sud::hw
