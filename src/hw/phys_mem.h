// PhysicalMemory: the machine's DRAM.
//
// Every DMA that survives routing and IOMMU translation lands here, as does
// every CPU load/store the simulated kernel performs. Kernel data structures
// (the net stack's buffers, the firewall verdict cache, ...) live at known
// physical ranges, so an unconfined malicious DMA visibly corrupts them —
// which is exactly what the security tests check for.

#ifndef SUD_SRC_HW_PHYS_MEM_H_
#define SUD_SRC_HW_PHYS_MEM_H_

#include <cstdint>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/status.h"

namespace sud::hw {

constexpr uint64_t kPageSize = 4096;
constexpr uint64_t kPageMask = kPageSize - 1;

inline uint64_t PageAlignDown(uint64_t addr) { return addr & ~kPageMask; }
inline uint64_t PageAlignUp(uint64_t addr) { return (addr + kPageMask) & ~kPageMask; }
inline bool IsPageAligned(uint64_t addr) { return (addr & kPageMask) == 0; }

class PhysicalMemory {
 public:
  explicit PhysicalMemory(uint64_t size_bytes);

  uint64_t size() const { return bytes_.size(); }

  Status Read(uint64_t paddr, ByteSpan out) const;
  Status Write(uint64_t paddr, ConstByteSpan data);

  // Direct typed accessors; bounds-checked, return 0 / no-op when out of
  // range (callers that care use Read/Write and check Status).
  uint32_t Read32(uint64_t paddr) const;
  uint64_t Read64(uint64_t paddr) const;
  void Write32(uint64_t paddr, uint32_t value);
  void Write64(uint64_t paddr, uint64_t value);

  // Raw pointer into DRAM for zero-copy paths (shared uchan buffers). The
  // span stays valid for the lifetime of the PhysicalMemory.
  Result<ByteSpan> Window(uint64_t paddr, uint64_t len);

  // A simple first-fit page allocator over DRAM for the harness: kernel
  // structures, DMA pools and uchan rings carve their backing store here.
  Result<uint64_t> AllocPages(uint64_t num_pages);
  void FreePages(uint64_t paddr, uint64_t num_pages);
  uint64_t allocated_pages() const { return allocated_pages_; }

 private:
  std::vector<uint8_t> bytes_;
  std::vector<bool> page_used_;
  uint64_t allocated_pages_ = 0;
};

}  // namespace sud::hw

#endif  // SUD_SRC_HW_PHYS_MEM_H_
