#include "src/kern/audio.h"

namespace sud::kern {

Result<PcmDevice*> AudioSubsystem::Register(const std::string& name, PcmOps* ops) {
  if (devices_.count(name) != 0) {
    return Status(ErrorCode::kAlreadyExists, "pcm device " + name + " exists");
  }
  if (ops == nullptr) {
    return Status(ErrorCode::kInvalidArgument, "null pcm ops");
  }
  auto device = std::make_unique<PcmDevice>(name, ops);
  PcmDevice* ptr = device.get();
  devices_[name] = std::move(device);
  return ptr;
}

Status AudioSubsystem::Unregister(const std::string& name) {
  if (devices_.erase(name) == 0) {
    return Status(ErrorCode::kNotFound, "no pcm device " + name);
  }
  return Status::Ok();
}

PcmDevice* AudioSubsystem::Find(const std::string& name) {
  auto it = devices_.find(name);
  return it == devices_.end() ? nullptr : it->second.get();
}

}  // namespace sud::kern
