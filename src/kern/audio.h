// The audio (ALSA-PCM-style) subsystem.
//
// Applications open a playback stream, write sample data, and receive
// period-elapsed callbacks. The ops are implemented by the audio proxy
// driver under SUD. Section 4.1's point — a malicious audio driver can at
// worst burn its own CPU quantum and glitch audio, never lock up the
// system — is validated by tests driving this subsystem against malicious
// drivers.

#ifndef SUD_SRC_KERN_AUDIO_H_
#define SUD_SRC_KERN_AUDIO_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/base/bytes.h"
#include "src/base/status.h"

namespace sud::kern {

struct PcmConfig {
  uint32_t rate_hz = 48000;
  uint32_t channels = 2;
  uint32_t sample_bytes = 2;
  uint32_t period_bytes = 4096;
  uint32_t buffer_bytes = 16384;

  uint32_t bytes_per_second() const { return rate_hz * channels * sample_bytes; }
};

class PcmOps {
 public:
  virtual ~PcmOps() = default;
  virtual Status OpenStream(const PcmConfig& config) = 0;
  virtual Status CloseStream() = 0;
  // Appends sample data to the playback ring; kQueueFull when behind.
  virtual Status WriteSamples(ConstByteSpan samples) = 0;
};

class PcmDevice {
 public:
  PcmDevice(std::string name, PcmOps* ops) : name_(std::move(name)), ops_(ops) {}

  const std::string& name() const { return name_; }
  PcmOps* ops() { return ops_; }

  using PeriodCallback = std::function<void()>;
  void set_period_callback(PeriodCallback cb) { period_cb_ = std::move(cb); }
  void NotifyPeriodElapsed() {
    ++periods_;
    if (period_cb_) {
      period_cb_();
    }
  }
  uint64_t periods() const { return periods_; }

 private:
  std::string name_;
  PcmOps* ops_;
  PeriodCallback period_cb_;
  uint64_t periods_ = 0;
};

class AudioSubsystem {
 public:
  Result<PcmDevice*> Register(const std::string& name, PcmOps* ops);
  Status Unregister(const std::string& name);
  PcmDevice* Find(const std::string& name);

  std::string NextName(const std::string& prefix) {
    return prefix + std::to_string(name_counter_[prefix]++);
  }

 private:
  std::map<std::string, std::unique_ptr<PcmDevice>> devices_;
  std::map<std::string, int> name_counter_;
};

}  // namespace sud::kern

#endif  // SUD_SRC_KERN_AUDIO_H_
