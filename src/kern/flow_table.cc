#include "src/kern/flow_table.h"

namespace sud::kern {

namespace {

uint32_t RoundUpPow2(uint32_t v) {
  if (v < 2) {
    return 2;
  }
  --v;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  return v + 1;
}

}  // namespace

FlowTable::FlowTable() : FlowTable(Options()) {}

FlowTable::FlowTable(const Options& options)
    : capacity_(RoundUpPow2(options.capacity)),
      mask_(capacity_ - 1),
      max_probe_(options.max_probe == 0 ? 1 : options.max_probe),
      expiry_generations_(options.expiry_generations == 0 ? 1 : options.expiry_generations),
      slots_(new Slot[capacity_]) {}

void FlowTable::Record(uint32_t hash, uint16_t queue) {
  bucket_load_[hash % kFlowBuckets].fetch_add(1, std::memory_order_relaxed);
  uint32_t now = generation_.load(std::memory_order_relaxed);
  uint64_t want = MakeTag(now, hash);
  uint32_t index = hash & mask_;
  uint32_t step = 0;
  while (step < max_probe_) {
    Slot& slot = slots_[index];
    uint64_t tag = slot.tag.load(std::memory_order_acquire);
    if (tag != 0 && TagHash(tag) == hash) {
      // Our flow. Refresh its generation (losing the CAS just means another
      // thread refreshed it first) and count the packet.
      if (TagGeneration(tag) != now) {
        (void)slot.tag.compare_exchange_strong(tag, want, std::memory_order_acq_rel,
                                               std::memory_order_acquire);
      }
      slot.packets.fetch_add(1, std::memory_order_relaxed);
      slot.queue.store(queue, std::memory_order_relaxed);
      records_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (tag == 0 || Expired(tag, now)) {
      // Empty or dead slot: claim it by CAS. On failure re-examine the SAME
      // slot without consuming a probe step — the winner may have been
      // another recorder of OUR hash (the CAS loser then lands in the
      // our-flow branch above). No livelock: a failed CAS means the tag
      // moved to a freshly claimed value, which is either our hash or a
      // live collision that advances the probe.
      if (slot.tag.compare_exchange_strong(tag, want, std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        slot.packets.store(1, std::memory_order_relaxed);
        slot.queue.store(queue, std::memory_order_relaxed);
        (tag == 0 ? inserts_ : recycles_).fetch_add(1, std::memory_order_relaxed);
        records_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      continue;
    }
    // Live collision: probe on.
    ++step;
    index = (index + 1) & mask_;
    probe_steps_.fetch_add(1, std::memory_order_relaxed);
  }
  insert_failures_.fetch_add(1, std::memory_order_relaxed);
}

void FlowTable::AdvanceGeneration() {
  generation_.fetch_add(1, std::memory_order_relaxed);
  for (auto& load : bucket_load_) {
    // Halving decay: racing Record adds can slip between the load and the
    // store, which under-counts a handful of packets per tick — acceptable
    // for a load OBSERVATION structure (the rebalancer clamps its inputs
    // anyway; nothing here is a conservation ledger).
    load.store(load.load(std::memory_order_relaxed) / 2, std::memory_order_relaxed);
  }
}

uint32_t FlowTable::LiveFlows() const {
  uint32_t now = generation_.load(std::memory_order_relaxed);
  uint32_t live = 0;
  for (uint32_t i = 0; i < capacity_; ++i) {
    uint64_t tag = slots_[i].tag.load(std::memory_order_relaxed);
    live += (tag != 0 && !Expired(tag, now)) ? 1 : 0;
  }
  return live;
}

void FlowTable::SnapshotBucketLoad(std::array<uint64_t, kFlowBuckets>* out) const {
  for (uint32_t b = 0; b < kFlowBuckets; ++b) {
    (*out)[b] = bucket_load_[b].load(std::memory_order_relaxed);
  }
}

FlowTable::Stats FlowTable::stats() const {
  Stats s;
  s.records = records_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.recycles = recycles_.load(std::memory_order_relaxed);
  s.insert_failures = insert_failures_.load(std::memory_order_relaxed);
  s.probe_steps = probe_steps_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace sud::kern
