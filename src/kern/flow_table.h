// FlowTable: a cache-friendly O(1) tracker for millions of concurrent flows.
//
// Production RSS only balances if the kernel can SEE per-bucket load, and at
// 1M+ concurrent flows with Zipf churn that observation structure must cost
// O(1) per packet with zero per-flow heap traffic. This table is the flat
// array the paper's "heavy traffic from millions of users" axis needs:
//
//  - Open addressing over a power-of-two slot array, 16 bytes per slot
//    (one atomic tag + packet count + last queue), linear probing bounded by
//    max_probe. No buckets, no chains, no allocation after construction.
//  - Generation-based expiry: flows are never individually deleted. A
//    coarse generation clock ticks (AdvanceGeneration); a slot whose flow
//    was last touched `expiry_generations` ticks ago is dead and is recycled
//    IN PLACE by the next insert that probes over it. Flow death is thus
//    O(1) amortized and needs no background sweeper.
//  - Concurrent recorders: per-queue pump/delivery threads call Record
//    simultaneously. Slots are claimed by CAS on the packed
//    (generation << 32 | flow hash) tag; counters are relaxed atomics. The
//    table never locks and never blocks a packet.
//  - Per-bucket load: every Record also bumps one of kFlowBuckets
//    (= the device RETA's 128 entries, same hash % 128 mapping) load
//    counters, halved on each generation tick so the rebalancer sees a
//    recency-weighted load picture rather than all of history.
//
// Bounded memory is a confinement property here, not just a perf one: the
// table is sized at construction and a flow storm can only evict dead flows
// or fail inserts (counted) — it can never grow kernel memory.

#ifndef SUD_SRC_KERN_FLOW_TABLE_H_
#define SUD_SRC_KERN_FLOW_TABLE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>

namespace sud::kern {

// One load bucket per device RETA entry (devices::kNicRetaEntries == 128 —
// static_asserted where the two meet; kern cannot include devices headers).
inline constexpr uint32_t kFlowBuckets = 128;

class FlowTable {
 public:
  struct Options {
    // Slot count, rounded up to a power of two. 2^21 slots = 32 MiB tracks
    // 1M+ live flows below 50% load factor.
    uint32_t capacity = 1u << 21;
    // Linear-probe bound: an insert that cannot find a free or dead slot
    // within this many steps fails (counted), it never scans the table.
    uint32_t max_probe = 64;
    // A flow untouched for this many generation ticks is dead and its slot
    // recyclable.
    uint32_t expiry_generations = 2;
  };

  struct Stats {
    uint64_t records = 0;          // packets recorded against a tracked flow
    uint64_t inserts = 0;          // new flows admitted into empty slots
    uint64_t recycles = 0;         // dead flows evicted in place
    uint64_t insert_failures = 0;  // probe bound hit, packet not tracked
    uint64_t probe_steps = 0;      // total extra probe steps (collision cost)
  };

  FlowTable();  // default Options
  explicit FlowTable(const Options& options);

  // Records one packet of flow `hash` steered to `queue`. Lock-free,
  // thread-safe, O(max_probe) worst case.
  void Record(uint32_t hash, uint16_t queue);

  // Ticks the flow-death clock and halves every bucket-load counter (the
  // recency decay). Call from the control loop, not the packet path.
  void AdvanceGeneration();

  // Flows alive right now (touched within expiry_generations ticks).
  // O(capacity) walk — bench/test instrumentation, not a packet-path call.
  uint32_t LiveFlows() const;

  // Recency-weighted packet load per RETA bucket.
  void SnapshotBucketLoad(std::array<uint64_t, kFlowBuckets>* out) const;

  Stats stats() const;
  uint32_t capacity() const { return capacity_; }
  uint32_t generation() const { return generation_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    // (generation << 32) | flow hash; 0 = never used. Generations start at 1
    // so a hash of 0 (runt frames) still makes a nonzero tag.
    std::atomic<uint64_t> tag{0};
    std::atomic<uint32_t> packets{0};
    std::atomic<uint32_t> queue{0};
  };
  static uint64_t MakeTag(uint32_t generation, uint32_t hash) {
    return (static_cast<uint64_t>(generation) << 32) | hash;
  }
  static uint32_t TagGeneration(uint64_t tag) { return static_cast<uint32_t>(tag >> 32); }
  static uint32_t TagHash(uint64_t tag) { return static_cast<uint32_t>(tag); }
  bool Expired(uint64_t tag, uint32_t now) const {
    return TagGeneration(tag) + expiry_generations_ <= now;
  }

  uint32_t capacity_;
  uint32_t mask_;
  uint32_t max_probe_;
  uint32_t expiry_generations_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint32_t> generation_{1};

  std::array<std::atomic<uint64_t>, kFlowBuckets> bucket_load_{};

  // Sharded relaxed counters would be overkill; contended adds on these are
  // off the common path (records is the only hot one and is per-packet
  // anyway alongside the netdev stats adds).
  std::atomic<uint64_t> records_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> recycles_{0};
  std::atomic<uint64_t> insert_failures_{0};
  std::atomic<uint64_t> probe_steps_{0};
};

}  // namespace sud::kern

#endif  // SUD_SRC_KERN_FLOW_TABLE_H_
