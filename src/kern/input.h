// The input subsystem: where USB HID reports surface as key events.
//
// The USB host-controller driver (running untrusted under SUD) polls HID
// endpoints and delivers reports through a downcall; the input subsystem
// queues decoded events for consumers. Kept deliberately small — it exists
// so the USB stack has a kernel-visible effect the tests can assert on.

#ifndef SUD_SRC_KERN_INPUT_H_
#define SUD_SRC_KERN_INPUT_H_

#include <cstdint>
#include <deque>
#include <optional>

namespace sud::kern {

struct KeyEvent {
  uint8_t usage_code;
};

class InputSubsystem {
 public:
  void SubmitKey(uint8_t usage_code) {
    if (events_.size() < kMaxQueued) {
      events_.push_back(KeyEvent{usage_code});
    } else {
      ++dropped_;
    }
  }

  std::optional<KeyEvent> PopEvent() {
    if (events_.empty()) {
      return std::nullopt;
    }
    KeyEvent event = events_.front();
    events_.pop_front();
    return event;
  }

  size_t pending() const { return events_.size(); }
  uint64_t dropped() const { return dropped_; }

 private:
  static constexpr size_t kMaxQueued = 1024;
  std::deque<KeyEvent> events_;
  uint64_t dropped_ = 0;
};

}  // namespace sud::kern

#endif  // SUD_SRC_KERN_INPUT_H_
