#include "src/kern/kernel.h"

#include "src/base/log.h"

namespace sud::kern {

Kernel::Kernel(hw::Machine* machine) : machine_(machine), wireless_(this) {
  machine_->msi().set_handler(
      [this](uint8_t vector, uint16_t source_id) { HandleInterrupt(vector, source_id); });
}

Status Kernel::RequestIrq(uint8_t vector, IrqHandler handler) {
  if (irq_handlers_.count(vector) != 0) {
    return Status(ErrorCode::kAlreadyExists, "irq vector in use");
  }
  irq_handlers_[vector] = std::move(handler);
  return Status::Ok();
}

Status Kernel::FreeIrq(uint8_t vector) {
  if (irq_handlers_.erase(vector) == 0) {
    return Status(ErrorCode::kNotFound, "irq vector not registered");
  }
  return Status::Ok();
}

Result<uint8_t> Kernel::AllocIrqVector() {
  for (int i = 0; i < 223; ++i) {
    uint8_t vector = static_cast<uint8_t>(32 + (next_vector_ - 32 + i) % 223);
    if (irq_handlers_.count(vector) == 0) {
      next_vector_ = static_cast<uint8_t>(vector + 1);
      return vector;
    }
  }
  return Status(ErrorCode::kExhausted, "no free interrupt vectors");
}

void Kernel::HandleInterrupt(uint8_t vector, uint16_t source_id) {
  auto it = irq_handlers_.find(vector);
  if (it == irq_handlers_.end()) {
    ++spurious_interrupts_;
    SUD_LOG(kWarning) << "spurious interrupt vector " << int{vector} << " from source "
                      << Hex(source_id);
    return;
  }
  ++interrupts_handled_;
  // Interrupt handlers run in a non-preemptable context, like real Linux.
  ScopedAtomic atomic(*this);
  it->second(source_id);
}

}  // namespace sud::kern
