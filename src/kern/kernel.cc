#include "src/kern/kernel.h"

#include "src/base/log.h"

namespace sud::kern {

Kernel::Kernel(hw::Machine* machine) : machine_(machine), wireless_(this) {
  machine_->msi().set_handler(
      [this](uint8_t vector, uint16_t source_id) { HandleInterrupt(vector, source_id); });
}

Status Kernel::RequestIrq(uint8_t vector, IrqHandler handler) {
  if (irq_handlers_.count(vector) != 0) {
    return Status(ErrorCode::kAlreadyExists, "irq vector in use");
  }
  irq_handlers_[vector] = std::move(handler);
  return Status::Ok();
}

Status Kernel::FreeIrq(uint8_t vector) {
  if (irq_handlers_.erase(vector) == 0) {
    return Status(ErrorCode::kNotFound, "irq vector not registered");
  }
  return Status::Ok();
}

Result<uint8_t> Kernel::AllocIrqVector() {
  for (int i = 0; i < 223; ++i) {
    uint8_t vector = static_cast<uint8_t>(32 + (next_vector_ - 32 + i) % 223);
    if (irq_handlers_.count(vector) == 0) {
      next_vector_ = static_cast<uint8_t>(vector + 1);
      return vector;
    }
  }
  return Status(ErrorCode::kExhausted, "no free interrupt vectors");
}

Result<uint8_t> Kernel::AllocIrqVectorRange(uint8_t count) {
  if (count == 0) {
    return Status(ErrorCode::kInvalidArgument, "zero-length vector range");
  }
  // First-fit scan over 32..254 without wrapping: a multi-message range must
  // be contiguous in vector space.
  for (int base = 32; base + count <= 255; ++base) {
    bool free = true;
    for (int v = base; v < base + count; ++v) {
      if (irq_handlers_.count(static_cast<uint8_t>(v)) != 0) {
        free = false;
        base = v;  // skip past the collision
        break;
      }
    }
    if (free) {
      next_vector_ = static_cast<uint8_t>(base + count);
      return static_cast<uint8_t>(base);
    }
  }
  return Status(ErrorCode::kExhausted, "no contiguous free interrupt vector range");
}

void Kernel::HandleInterrupt(uint8_t vector, uint16_t source_id) {
  auto it = irq_handlers_.find(vector);
  if (it == irq_handlers_.end()) {
    spurious_interrupts_.fetch_add(1, std::memory_order_relaxed);
    SUD_LOG_RL(kWarning) << "spurious interrupt vector " << int{vector} << " from source "
                      << Hex(source_id);
    return;
  }
  interrupts_handled_.fetch_add(1, std::memory_order_relaxed);
  // Interrupt handlers run in a non-preemptable context, like real Linux.
  ScopedAtomic atomic(*this);
  it->second(source_id);
}

}  // namespace sud::kern
