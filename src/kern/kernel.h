// Kernel: the simulated Linux kernel instance.
//
// Owns the subsystems, the process table and interrupt dispatch, and tracks
// the one piece of execution context the paper's design hinges on: whether
// the current thread is in a *non-preemptable* (atomic) section. Proxy
// drivers consult InAtomicContext() to decide between a synchronous upcall
// (blocking allowed) and answering from mirrored state plus an asynchronous
// upcall (Section 3.1.1).

#ifndef SUD_SRC_KERN_KERNEL_H_
#define SUD_SRC_KERN_KERNEL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "src/base/status.h"
#include "src/hw/machine.h"
#include "src/kern/audio.h"
#include "src/kern/input.h"
#include "src/kern/netdev.h"
#include "src/kern/process.h"
#include "src/kern/wireless.h"

namespace sud::kern {

class Kernel {
 public:
  explicit Kernel(hw::Machine* machine);

  hw::Machine& machine() { return *machine_; }
  ProcessTable& processes() { return processes_; }
  NetSubsystem& net() { return net_; }
  WirelessSubsystem& wireless() { return wireless_; }
  AudioSubsystem& audio() { return audio_; }
  InputSubsystem& input() { return input_; }

  // --- interrupt dispatch (the "APIC" side of Figure 4). Vector handlers
  // are registered by SUD's safe-PCI module.
  using IrqHandler = std::function<void(uint16_t source_id)>;
  Status RequestIrq(uint8_t vector, IrqHandler handler);
  Status FreeIrq(uint8_t vector);
  // Allocates a free vector (32..254).
  Result<uint8_t> AllocIrqVector();
  // Allocates `count` *contiguous* free vectors and returns the base — what
  // multi-message MSI requires: a multi-queue function signals queue q by
  // adding q to its data payload, so vectors base..base+count-1 must all
  // route to that device.
  Result<uint8_t> AllocIrqVectorRange(uint8_t count);
  uint64_t interrupts_handled() const {
    return interrupts_handled_.load(std::memory_order_relaxed);
  }
  uint64_t spurious_interrupts() const {
    return spurious_interrupts_.load(std::memory_order_relaxed);
  }

  // --- non-preemptable context tracking.
  bool InAtomicContext() const { return atomic_depth_.load(std::memory_order_relaxed) > 0; }
  class ScopedAtomic {
   public:
    explicit ScopedAtomic(Kernel& kernel) : kernel_(kernel) {
      kernel_.atomic_depth_.fetch_add(1, std::memory_order_relaxed);
    }
    ~ScopedAtomic() { kernel_.atomic_depth_.fetch_sub(1, std::memory_order_relaxed); }

   private:
    Kernel& kernel_;
  };

 private:
  void HandleInterrupt(uint8_t vector, uint16_t source_id);

  hw::Machine* machine_;
  ProcessTable processes_;
  NetSubsystem net_;
  WirelessSubsystem wireless_;
  AudioSubsystem audio_;
  InputSubsystem input_;
  std::map<uint8_t, IrqHandler> irq_handlers_;
  uint8_t next_vector_ = 32;
  // Interrupts are delivered from every queue's pump thread under the
  // multi-queue NIC model; counters and the atomic-context depth are relaxed
  // atomics so dispatch stays lock-free.
  std::atomic<uint64_t> interrupts_handled_{0};
  std::atomic<uint64_t> spurious_interrupts_{0};
  std::atomic<int> atomic_depth_{0};
};

}  // namespace sud::kern

#endif  // SUD_SRC_KERN_KERNEL_H_
