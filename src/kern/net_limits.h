// Network MTU / frame / buffer-size limits, centralized.
//
// Before this header the datapath's size constants were scattered literals —
// 1514 in EtherLink, 2048 in the shared-pool options and the Skb inline
// buffer, 8 MB / queues / 512 in the e1000e probe — which made it impossible
// to state (let alone assert) the invariant that actually matters for the
// paper's safety argument: every layer that accepts a length from a less
// trusted layer must bound it by the SAME maximum frame size, and every
// buffer a frame can be copied into must be provably large enough for that
// bound. Jumbo frames (9000-byte MTU, EOP-chained across RX descriptors)
// make the invariant load-bearing: the proxy's netif_rx validation, the
// EOP-chain reassembly bound, the shared-pool staging buffers and the
// device's scatter limit all derive from the constants below.

#ifndef SUD_SRC_KERN_NET_LIMITS_H_
#define SUD_SRC_KERN_NET_LIMITS_H_

#include <cstddef>
#include <cstdint>

namespace sud::kern {

// Ethernet geometry (the compressed simulated framing: 14-byte header, no
// separate FCS in the byte stream).
inline constexpr size_t kEthHeaderBytes = 14;
inline constexpr size_t kEthMinFrameBytes = 60;

// Standard and jumbo MTUs, and the frame sizes they imply.
inline constexpr size_t kStdMtu = 1500;
inline constexpr size_t kJumboMtu = 9000;
inline constexpr size_t kStdMaxFrameBytes = kStdMtu + kEthHeaderBytes;      // 1514
inline constexpr size_t kJumboMaxFrameBytes = kJumboMtu + kEthHeaderBytes;  // 9014

// The frame size an interface configured with `mtu` may carry.
inline constexpr size_t MaxFrameBytes(size_t mtu) { return mtu + kEthHeaderBytes; }

// Per-RX-descriptor buffer size when the driver programs nothing (the legacy
// single-descriptor receive path: every standard frame fits in one buffer).
inline constexpr size_t kRxDefaultBufferBytes = 2048;
// Bounds on the driver-programmable per-descriptor RX buffer size. The floor
// exists so a malicious driver cannot force the device into absurd
// per-frame descriptor chains; the granularity keeps chunk boundaries
// word-aligned for the incremental reassembly paths.
inline constexpr size_t kRxMinBufferBytes = 256;
inline constexpr size_t kRxMaxBufferBytes = 16384;
inline constexpr size_t kRxBufferGranularity = 64;

// Hard cap on the descriptors one EOP chain may span, device- and
// driver-side. Derived from the worst legal configuration (jumbo frame over
// minimum buffers) with headroom — NOT from whatever a malicious peer
// claims: ceil(9014 / 256) = 36.
inline constexpr size_t kMaxChainFrags =
    (kJumboMaxFrameBytes + kRxMinBufferBytes - 1) / kRxMinBufferBytes;

// The per-descriptor scatter size the device actually uses for a programmed
// buffer-size register value: 0 means the default, everything else is
// clamped to [min, max] and rounded down to the granularity. Shared by the
// device model (which must scatter safely no matter what was programmed)
// and the driver's ring-setup assertion (which must agree with the device
// about the chunk size chains arrive in).
inline constexpr uint32_t EffectiveRxBufferBytes(uint32_t programmed) {
  if (programmed == 0) {
    return static_cast<uint32_t>(kRxDefaultBufferBytes);
  }
  size_t bytes = programmed;
  if (bytes < kRxMinBufferBytes) {
    bytes = kRxMinBufferBytes;
  }
  if (bytes > kRxMaxBufferBytes) {
    bytes = kRxMaxBufferBytes;
  }
  return static_cast<uint32_t>(bytes & ~(kRxBufferGranularity - 1));
}

// Shared-pool TX staging buffer size for an interface with `mtu`: one frame
// per buffer, rounded to the RX buffer granularity. 2048 for the standard
// MTU — byte-identical to the pre-jumbo pool sizing.
inline constexpr uint32_t PoolBufferBytesFor(size_t mtu) {
  size_t frame = MaxFrameBytes(mtu);
  size_t rounded = (frame + kRxBufferGranularity - 1) / kRxBufferGranularity *
                   kRxBufferGranularity;
  return static_cast<uint32_t>(rounded < kRxDefaultBufferBytes ? kRxDefaultBufferBytes
                                                               : rounded);
}

}  // namespace sud::kern

#endif  // SUD_SRC_KERN_NET_LIMITS_H_
