#include "src/kern/netdev.h"

#include <cstring>

#include "src/base/log.h"

namespace sud::kern {

bool Firewall::Accept(const PacketView& packet) const {
  if (!packet.valid()) {
    ++rejected_;
    return false;
  }
  if (denied_ports_.count(packet.dst_port()) != 0) {
    ++rejected_;
    return false;
  }
  ++accepted_;
  return true;
}

NetDevice::NetDevice(std::string name, const uint8_t mac[6], NetDeviceOps* ops)
    : name_(std::move(name)), ops_(ops) {
  std::memcpy(mac_.data(), mac, 6);
}

void NetDevice::set_dev_addr(const uint8_t mac[6]) { std::memcpy(mac_.data(), mac, 6); }

Result<NetDevice*> NetSubsystem::RegisterNetdev(const std::string& name, const uint8_t mac[6],
                                                NetDeviceOps* ops) {
  if (devices_.count(name) != 0) {
    return Status(ErrorCode::kAlreadyExists, "netdev " + name + " already registered");
  }
  if (ops == nullptr) {
    return Status(ErrorCode::kInvalidArgument, "null netdev ops");
  }
  auto device = std::make_unique<NetDevice>(name, mac, ops);
  NetDevice* ptr = device.get();
  devices_[name] = std::move(device);
  SUD_LOG(kInfo) << "registered netdev " << name;
  return ptr;
}

Status NetSubsystem::UnregisterNetdev(const std::string& name) {
  auto it = devices_.find(name);
  if (it == devices_.end()) {
    return Status(ErrorCode::kNotFound, "no netdev " + name);
  }
  devices_.erase(it);
  return Status::Ok();
}

NetDevice* NetSubsystem::Find(const std::string& name) {
  auto it = devices_.find(name);
  return it == devices_.end() ? nullptr : it->second.get();
}

Status NetSubsystem::BringUp(const std::string& name) {
  NetDevice* device = Find(name);
  if (device == nullptr) {
    return Status(ErrorCode::kNotFound, "no netdev " + name);
  }
  if (device->up_) {
    return Status::Ok();
  }
  SUD_RETURN_IF_ERROR(device->ops()->Open());
  device->up_ = true;
  return Status::Ok();
}

Status NetSubsystem::BringDown(const std::string& name) {
  NetDevice* device = Find(name);
  if (device == nullptr) {
    return Status(ErrorCode::kNotFound, "no netdev " + name);
  }
  if (!device->up_) {
    return Status::Ok();
  }
  device->up_ = false;
  return device->ops()->Stop();
}

Status NetSubsystem::Transmit(const std::string& name, SkbPtr skb) {
  NetDevice* device = Find(name);
  if (device == nullptr) {
    return Status(ErrorCode::kNotFound, "no netdev " + name);
  }
  return Transmit(device, std::move(skb));
}

Status NetSubsystem::Transmit(NetDevice* device, SkbPtr skb) {
  if (!device->up_) {
    device->stats().tx_dropped++;
    return Status(ErrorCode::kUnavailable, device->name() + " is down");
  }
  Status status = device->ops()->StartXmit(std::move(skb));
  if (status.ok()) {
    device->stats().tx_packets++;
  } else {
    device->stats().tx_dropped++;
  }
  return status;
}

Result<size_t> NetSubsystem::TransmitBatch(const std::string& name, std::vector<SkbPtr> skbs) {
  NetDevice* device = Find(name);
  if (device == nullptr) {
    return Status(ErrorCode::kNotFound, "no netdev " + name);
  }
  return TransmitBatch(device, std::move(skbs));
}

Result<size_t> NetSubsystem::TransmitBatch(NetDevice* device, std::vector<SkbPtr> skbs) {
  if (!device->up_) {
    device->stats().tx_dropped += skbs.size();
    return Status(ErrorCode::kUnavailable, device->name() + " is down");
  }
  size_t total = skbs.size();
  size_t accepted = 0;
  if (device->num_queues() <= 1) {
    // Single-queue: the whole burst in one driver call (the classic path).
    accepted = device->ops()->StartXmitBatch(std::move(skbs), 0);
    device->queue_stats(0).tx_packets += accepted;
  } else {
    // RSS-style transmit steering: partition the burst by flow hash, one
    // StartXmitBatch per non-empty queue. Flows stay ordered (a flow always
    // hashes to the same queue); cross-flow order across queues is
    // deliberately unordered, as on real multi-queue hardware.
    std::array<std::vector<SkbPtr>, kNetMaxQueues> per_queue;
    for (SkbPtr& skb : skbs) {
      uint16_t queue = FlowQueue(skb->span(), device->num_queues());
      per_queue[queue].push_back(std::move(skb));
    }
    for (uint16_t q = 0; q < device->num_queues(); ++q) {
      if (per_queue[q].empty()) {
        continue;
      }
      size_t queue_accepted = device->ops()->StartXmitBatch(std::move(per_queue[q]), q);
      device->queue_stats(q).tx_packets += queue_accepted;
      accepted += queue_accepted;
    }
  }
  device->stats().tx_packets += accepted;
  device->stats().tx_dropped += total - accepted;
  return accepted;
}

size_t NetSubsystem::NetifRxBatch(NetDevice* device, std::vector<SkbPtr> skbs, uint16_t queue) {
  size_t accepted = 0;
  for (SkbPtr& skb : skbs) {
    if (NetifRx(device, std::move(skb), queue).ok()) {
      ++accepted;
    }
  }
  return accepted;
}

Status NetSubsystem::NetifRx(NetDevice* device, SkbPtr skb, uint16_t queue) {
  if (device == nullptr || skb == nullptr) {
    return Status(ErrorCode::kInvalidArgument, "netif_rx: null device/skb");
  }
  PacketView view = skb->view();
  if (!view.valid()) {
    device->stats().rx_dropped++;
    device->stats().driver_errors++;
    SUD_LOG_RL(kWarning) << device->name() << ": driver delivered runt packet, dropping";
    return Status(ErrorCode::kInvalidArgument, "runt packet");
  }
  // Checksum pass. Under SUD the proxy fuses its guard-copy with this pass
  // (Section 3.1.2) and delivers the skb pre-verified, so by the time the
  // verdict below is computed the driver can no longer alter the bytes —
  // and the stack does not traverse them a second time.
  if (!skb->checksum_verified) {
    if (!view.ChecksumOk()) {
      device->stats().rx_bad_checksum++;
      device->stats().rx_dropped++;
      return Status(ErrorCode::kInvalidArgument, "bad checksum");
    }
    skb->checksum_verified = true;
  }
  if (!firewall_.Accept(view)) {
    device->stats().rx_dropped++;
    return Status(ErrorCode::kPermissionDenied, "firewall rejected packet");
  }
  device->stats().rx_packets++;
  if (queue < kNetMaxQueues) {
    device->queue_stats(queue).rx_packets++;
  }
  if (FlowTable* flows = device->flow_table()) {
    flows->Record(FlowHash(skb->span()), queue);
  }
  if (device->rx_sink()) {
    device->rx_sink()(*skb);
  }
  return Status::Ok();
}

}  // namespace sud::kern
