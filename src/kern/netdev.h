// The network-device subsystem: register_netdev, net_device_ops, netif_rx
// and the netfilter-style firewall.
//
// This is the kernel side of Figure 2's API. In stock Linux the ops structure
// is implemented by the in-kernel driver; under SUD it is implemented by the
// Ethernet *proxy* driver, which forwards each call over a uchan to the
// untrusted user-space driver. The subsystem is written to be "robust to
// driver mistakes" the way Section 3.1.1 describes Linux: bogus values from
// the driver produce error messages and dropped packets, never crashes.
//
// The firewall models the netfilter hook the TOCTOU attack in Section 3.1.2
// targets: NetifRx consults it once per packet, and whatever buffer the
// verdict was computed over must be the buffer delivered — which is exactly
// the property the proxy's guard-copy provides and malicious drivers try to
// violate.

#ifndef SUD_SRC_KERN_NETDEV_H_
#define SUD_SRC_KERN_NETDEV_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/kern/flow_table.h"
#include "src/kern/net_limits.h"
#include "src/kern/skb.h"

namespace sud::kern {

// The ops table a (proxy) driver registers. Mirrors struct net_device_ops.
class NetDeviceOps {
 public:
  virtual ~NetDeviceOps() = default;
  virtual Status Open() = 0;                              // ndo_open
  virtual Status Stop() = 0;                              // ndo_stop
  virtual Status StartXmit(SkbPtr skb) = 0;               // ndo_start_xmit
  // NAPI-style transmit burst for TX queue `queue`: hand a whole array of
  // frames (already steered to that queue by the caller's flow hash) to the
  // driver in one call. Returns how many frames the driver accepted (a full
  // queue drops the tail). The default forwards one by one and ignores the
  // queue; batching multi-queue drivers (the SUD Ethernet proxy) override it
  // to amortize the per-crossing cost and to hit the queue's own channel.
  virtual size_t StartXmitBatch(std::vector<SkbPtr> skbs, uint16_t queue) {
    (void)queue;
    size_t accepted = 0;
    for (SkbPtr& skb : skbs) {
      if (!StartXmit(std::move(skb)).ok()) {
        break;
      }
      ++accepted;
    }
    return accepted;
  }
  virtual Result<std::string> Ioctl(uint32_t cmd) = 0;    // ndo_do_ioctl (e.g. SIOCGMIIREG)
};

inline constexpr uint32_t kIoctlGetMiiStatus = 0x8948;  // SIOCGMIIREG

// Firewall verdict hook: default-allow with a deny set keyed on destination
// port, plus a mandatory-checksum knob.
class Firewall {
 public:
  void DenyPort(uint16_t port) { denied_ports_.insert(port); }
  void AllowPort(uint16_t port) { denied_ports_.erase(port); }

  // Verdict over exactly the bytes passed in.
  bool Accept(const PacketView& packet) const;

  uint64_t accepted() const { return accepted_.load(std::memory_order_relaxed); }
  uint64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }

 private:
  std::set<uint16_t> denied_ports_;
  // Relaxed atomics: the verdict runs on every queue's receive thread.
  mutable std::atomic<uint64_t> accepted_{0};
  mutable std::atomic<uint64_t> rejected_{0};
};

// Interface counters. Relaxed atomics: with multi-queue drivers the receive
// path runs concurrently from one thread per queue.
struct NetDeviceStats {
  std::atomic<uint64_t> tx_packets{0};
  std::atomic<uint64_t> tx_dropped{0};
  // Frag skbs folded flat for a non-SG driver (the skb_linearize fallback):
  // each one is a full-frame copy the scatter/gather path avoids.
  std::atomic<uint64_t> tx_linearized{0};
  // TX frames refused because the shared staging pool had no buffer (counted
  // backpressure under memory pressure — a subset of tx_dropped, never a
  // silent loss).
  std::atomic<uint64_t> tx_no_buffer{0};
  std::atomic<uint64_t> rx_packets{0};
  std::atomic<uint64_t> rx_dropped{0};
  std::atomic<uint64_t> rx_bad_checksum{0};
  std::atomic<uint64_t> driver_errors{0};  // "driver acting in unexpected ways" messages
};

// Per-queue packet counters (the per-queue accounting the multi-queue benches
// report alongside per-shard uchan crossings).
struct NetQueueStats {
  std::atomic<uint64_t> tx_packets{0};
  std::atomic<uint64_t> rx_packets{0};
};

// Upper bound on TX/RX queues per interface (matches the device models).
inline constexpr uint16_t kNetMaxQueues = 8;

// One registered network interface.
class NetDevice {
 public:
  NetDevice(std::string name, const uint8_t mac[6], NetDeviceOps* ops);

  const std::string& name() const { return name_; }
  const uint8_t* dev_addr() const { return mac_.data(); }
  void set_dev_addr(const uint8_t mac[6]);

  // Link carrier: shared-memory state in Linux (netif_carrier_on/off);
  // mirrored by the proxy under SUD (Section 3.3).
  bool carrier() const { return carrier_; }
  void set_carrier(bool up) { carrier_ = up; }

  bool is_up() const { return up_; }

  // TX/RX queue pairs the driver services (netif_set_real_num_tx_queues).
  // The transmit path steers flows across [0, num_queues) by flow hash.
  uint16_t num_queues() const { return num_queues_; }
  void set_num_queues(uint16_t n) {
    num_queues_ = n == 0 ? 1 : (n > kNetMaxQueues ? kNetMaxQueues : n);
  }

  // Interface MTU (driver-declared, like ndo_change_mtu, clamped to the
  // jumbo maximum): the bound every receive-path length check applies — a
  // standard-MTU interface must reject a 9014-byte netif_rx no matter what
  // the driver marshals later.
  uint32_t mtu() const { return mtu_; }
  void set_mtu(uint32_t mtu) {
    mtu_ = static_cast<uint32_t>(
        std::clamp<size_t>(mtu == 0 ? kStdMtu : mtu, kEthMinFrameBytes, kJumboMtu));
  }
  size_t max_frame_bytes() const { return MaxFrameBytes(mtu_); }

  // Scatter/gather transmit capability (NETIF_F_SG), driver-declared at
  // registration: frag skbs reach an SG driver as fragment chains; a non-SG
  // driver's ops layer linearizes them first (counted in tx_linearized).
  bool sg() const { return sg_; }
  void set_sg(bool sg) { sg_ = sg; }

  NetDeviceOps* ops() { return ops_; }
  NetDeviceStats& stats() { return stats_; }
  const NetDeviceStats& stats() const { return stats_; }
  NetQueueStats& queue_stats(uint16_t queue) { return queue_stats_[queue]; }
  const NetQueueStats& queue_stats(uint16_t queue) const { return queue_stats_[queue]; }

  // Receiver sink: where accepted packets go (a test harness, the netperf
  // endpoint, ...). Default discards.
  using RxSink = std::function<void(const Skb&)>;
  void set_rx_sink(RxSink sink) { rx_sink_ = std::move(sink); }
  const RxSink& rx_sink() const { return rx_sink_; }

  // Flow-scale observation: when enabled, every ACCEPTED receive records its
  // flow hash + queue into the O(1) FlowTable, whose per-bucket load feeds
  // the RSS rebalancer. Off by default (a nullptr check per packet, nothing
  // more). Enable before traffic starts — the pointer itself is not guarded
  // against concurrent receives, only the table's internals are.
  void EnableFlowTracking(const FlowTable::Options& options) {
    flow_table_ = std::make_unique<FlowTable>(options);
  }
  void EnableFlowTracking() { flow_table_ = std::make_unique<FlowTable>(); }
  FlowTable* flow_table() { return flow_table_.get(); }
  const FlowTable* flow_table() const { return flow_table_.get(); }

 private:
  friend class NetSubsystem;
  std::string name_;
  std::array<uint8_t, 6> mac_{};
  NetDeviceOps* ops_;
  bool carrier_ = false;
  bool up_ = false;
  bool sg_ = false;
  uint16_t num_queues_ = 1;
  uint32_t mtu_ = static_cast<uint32_t>(kStdMtu);
  NetDeviceStats stats_;
  std::array<NetQueueStats, kNetMaxQueues> queue_stats_;
  RxSink rx_sink_;
  std::unique_ptr<FlowTable> flow_table_;
};

class NetSubsystem {
 public:
  // register_netdev: names the interface ethN and takes (non-owning) the
  // ops implementation.
  Result<NetDevice*> RegisterNetdev(const std::string& name, const uint8_t mac[6],
                                    NetDeviceOps* ops);
  Status UnregisterNetdev(const std::string& name);
  NetDevice* Find(const std::string& name);

  // ifconfig ethN up/down.
  Status BringUp(const std::string& name);
  Status BringDown(const std::string& name);

  // The kernel's transmit entry (dev_queue_xmit): hands the skb to the
  // driver's ndo_start_xmit. The NetDevice* overloads skip the name lookup
  // for callers that already hold the interface (the per-packet bench loops).
  Status Transmit(const std::string& name, SkbPtr skb);
  Status Transmit(NetDevice* device, SkbPtr skb);
  // Burst transmit: the qdisc draining its queue in one go. On a multi-queue
  // interface the burst is partitioned by RSS-style flow hash (FlowQueue) and
  // each queue's slice goes to the driver in one StartXmitBatch call on that
  // queue — so per-queue driver threads receive disjoint work with no shared
  // channel. Returns how many frames the driver accepted in total.
  Result<size_t> TransmitBatch(const std::string& name, std::vector<SkbPtr> skbs);
  Result<size_t> TransmitBatch(NetDevice* device, std::vector<SkbPtr> skbs);

  // netif_rx: the driver (via its proxy) delivers a received packet. The
  // packet runs the checksum pass and the firewall *on the skb as given* —
  // callers (the proxy) are responsible for ensuring the skb can no longer
  // be modified by the driver (the guard-copy).
  Status NetifRx(NetDevice* device, SkbPtr skb) { return NetifRx(device, std::move(skb), 0); }
  Status NetifRx(NetDevice* device, SkbPtr skb, uint16_t queue);
  // NAPI-style receive: delivers a whole poll bundle from RX queue `queue`.
  // Every packet still runs the per-packet checksum + firewall validation.
  // Returns how many packets the stack accepted.
  size_t NetifRxBatch(NetDevice* device, std::vector<SkbPtr> skbs, uint16_t queue = 0);

  Firewall& firewall() { return firewall_; }

  // Allocates the next interface name with `prefix` ("eth" -> "eth0", ...).
  std::string NextName(const std::string& prefix) {
    return prefix + std::to_string(name_counter_[prefix]++);
  }

 private:
  std::map<std::string, std::unique_ptr<NetDevice>> devices_;
  std::map<std::string, int> name_counter_;
  Firewall firewall_;
};

}  // namespace sud::kern

#endif  // SUD_SRC_KERN_NETDEV_H_
