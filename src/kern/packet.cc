#include "src/kern/packet.h"

#include <cstring>

namespace sud::kern {

uint16_t PacketView::ComputeChecksum() const {
  if (!valid()) {
    return 0;
  }
  // Sum the transport header + payload in place, with the checksum field
  // (offset 20-14=6 within the summed region) excluded — no per-packet
  // scratch copy on the verification hot path.
  return InternetChecksumExcludingWord(frame.subspan(kEthHeaderSize), 6);
}

bool CopyAndVerifyPacket(uint8_t* dst, ConstByteSpan frame) {
  if (frame.size() < kPacketMinSize) {
    if (!frame.empty()) {
      std::memcpy(dst, frame.data(), frame.size());
    }
    return false;
  }
  std::memcpy(dst, frame.data(), kEthHeaderSize);
  ConstByteSpan body = frame.subspan(kEthHeaderSize);
  uint64_t raw = InternetChecksumRawCopy(dst + kEthHeaderSize, body);
  // Every byte of the verdict comes from the PRIVATE copy — the sum from the
  // fused pass (whose excluded-word value must likewise be read from the
  // copy), and the stored checksum it is compared against. A concurrent
  // attacker rewriting the shared buffer mid-copy can only corrupt what we
  // captured, never create a copy that disagrees with its own verdict.
  ConstByteSpan copied_body(dst + kEthHeaderSize, body.size());
  uint16_t computed = InternetChecksumFinishExcludingWord(raw, copied_body, 6);
  return computed == LoadLe16(dst + 20);
}

namespace {

// splitmix64's finisher: cheap, well-spreading 64-bit mix.
uint64_t Mix64(uint64_t key) {
  key ^= key >> 30;
  key *= 0xbf58476d1ce4e5b9ull;
  key ^= key >> 27;
  key *= 0x94d049bb133111ebull;
  key ^= key >> 31;
  return key;
}

}  // namespace

uint32_t FlowHashKeyed(ConstByteSpan frame, const RssKeyFold& fold) {
  if (frame.size() < kPacketMinSize) {
    return 0;
  }
  // Hash each endpoint's identity (MAC + port) separately, then combine with
  // XOR: commutative, so with the identity key the flow's RX frames
  // (dst=A,src=B, ports x->y) and its TX replies (dst=B,src=A, ports y->x)
  // hash identically — the direction symmetry that pins a flow to ONE queue
  // in both directions. Cheaper than a real Toeplitz hash but shares its
  // spreading property; the per-endpoint salts are the keyed part.
  uint64_t dst_endpoint = (LoadLe64(frame.data()) & 0xffffffffffffull)  // dst mac
                          | (static_cast<uint64_t>(LoadLe16(frame.data() + 16)) << 48);
  uint64_t src_endpoint = (LoadLe64(frame.data() + 6) & 0xffffffffffffull)  // src mac
                          | (static_cast<uint64_t>(LoadLe16(frame.data() + 14)) << 48);
  return static_cast<uint32_t>(Mix64(dst_endpoint ^ fold.dst_salt) ^
                               Mix64(src_endpoint ^ fold.src_salt));
}

uint32_t FlowHash(ConstByteSpan frame) { return FlowHashKeyed(frame, RssKeyFold{}); }

RssKeyFold FoldRssKey(ConstByteSpan key) {
  // Five 64-bit key words (missing bytes zero), combined with rotations only
  // — no added constants, so the all-zero key folds to zero salts and the
  // keyed hash degenerates to the historical unkeyed one bit-for-bit.
  uint64_t words[5] = {0, 0, 0, 0, 0};
  for (size_t i = 0; i < key.size() && i < kRssKeyBytes; ++i) {
    words[i / 8] |= static_cast<uint64_t>(key[i]) << (8 * (i % 8));
  }
  auto rotl = [](uint64_t v, int s) { return (v << s) | (v >> (64 - s)); };
  RssKeyFold fold;
  fold.dst_salt = words[0] ^ rotl(words[2], 21) ^ rotl(words[4], 42);
  fold.src_salt = words[1] ^ rotl(words[3], 21) ^ rotl(words[4], 17);
  return fold;
}

std::vector<uint8_t> BuildPacket(const uint8_t dst_mac[6], const uint8_t src_mac[6],
                                 uint16_t src_port, uint16_t dst_port, ConstByteSpan payload) {
  std::vector<uint8_t> frame(kPacketMinSize + payload.size());
  std::memcpy(frame.data(), dst_mac, 6);
  std::memcpy(frame.data() + 6, src_mac, 6);
  frame[12] = kEthertypeSim >> 8;
  frame[13] = kEthertypeSim & 0xff;
  StoreLe16(frame.data() + 14, src_port);
  StoreLe16(frame.data() + 16, dst_port);
  StoreLe16(frame.data() + 18, static_cast<uint16_t>(payload.size()));
  StoreLe16(frame.data() + 20, 0);
  if (!payload.empty()) {  // empty payloads carry a null data() (UB to memcpy)
    std::memcpy(frame.data() + kPacketMinSize, payload.data(), payload.size());
  }
  PacketView view{ConstByteSpan(frame.data(), frame.size())};
  StoreLe16(frame.data() + 20, view.ComputeChecksum());
  return frame;
}

void RewriteDstPortRaw(ByteSpan frame, uint16_t new_port) {
  if (frame.size() >= kPacketMinSize) {
    StoreLe16(frame.data() + 16, new_port);
  }
}

void RewriteDstPortFixup(ByteSpan frame, uint16_t new_port) {
  if (frame.size() < kPacketMinSize) {
    return;
  }
  StoreLe16(frame.data() + 16, new_port);
  StoreLe16(frame.data() + 20, 0);
  PacketView view{ConstByteSpan(frame.data(), frame.size())};
  StoreLe16(frame.data() + 20, view.ComputeChecksum());
}

}  // namespace sud::kern
