#include "src/kern/packet.h"

#include <cstring>

namespace sud::kern {

uint16_t PacketView::ComputeChecksum() const {
  if (!valid()) {
    return 0;
  }
  std::vector<uint8_t> scratch(frame.begin() + kEthHeaderSize, frame.end());
  scratch[6] = 0;  // zero the checksum field (offset 20-14=6 within transport)
  scratch[7] = 0;
  return InternetChecksum(ConstByteSpan(scratch.data(), scratch.size()));
}

std::vector<uint8_t> BuildPacket(const uint8_t dst_mac[6], const uint8_t src_mac[6],
                                 uint16_t src_port, uint16_t dst_port, ConstByteSpan payload) {
  std::vector<uint8_t> frame(kPacketMinSize + payload.size());
  std::memcpy(frame.data(), dst_mac, 6);
  std::memcpy(frame.data() + 6, src_mac, 6);
  frame[12] = kEthertypeSim >> 8;
  frame[13] = kEthertypeSim & 0xff;
  StoreLe16(frame.data() + 14, src_port);
  StoreLe16(frame.data() + 16, dst_port);
  StoreLe16(frame.data() + 18, static_cast<uint16_t>(payload.size()));
  StoreLe16(frame.data() + 20, 0);
  std::memcpy(frame.data() + kPacketMinSize, payload.data(), payload.size());
  PacketView view{ConstByteSpan(frame.data(), frame.size())};
  StoreLe16(frame.data() + 20, view.ComputeChecksum());
  return frame;
}

void RewriteDstPortRaw(ByteSpan frame, uint16_t new_port) {
  if (frame.size() >= kPacketMinSize) {
    StoreLe16(frame.data() + 16, new_port);
  }
}

void RewriteDstPortFixup(ByteSpan frame, uint16_t new_port) {
  if (frame.size() < kPacketMinSize) {
    return;
  }
  StoreLe16(frame.data() + 16, new_port);
  StoreLe16(frame.data() + 20, 0);
  PacketView view{ConstByteSpan(frame.data(), frame.size())};
  StoreLe16(frame.data() + 20, view.ComputeChecksum());
}

}  // namespace sud::kern
