// Minimal Ethernet/UDP-style packet layout used by the simulated stack.
//
// Frame layout (offsets in bytes):
//   0..5    destination MAC
//   6..11   source MAC
//   12..13  ethertype (0x0800 for the simulated IP/UDP payloads)
//   14..15  source port       |
//   16..17  destination port  |  the 8-byte "transport" header the firewall
//   18..19  payload length    |  and the netperf harness care about
//   20..21  checksum          |
//   22..    payload
//
// This is deliberately a compressed stand-in for Ethernet+IPv4+UDP: the
// paper's evaluation only needs ports (for the firewall TOCTOU attack) and a
// checksum (the guard-copy in Section 3.1.2 is fused with checksum
// verification), not a real IP implementation.

#ifndef SUD_SRC_KERN_PACKET_H_
#define SUD_SRC_KERN_PACKET_H_

#include <cstdint>
#include <vector>

#include "src/base/bytes.h"

namespace sud::kern {

inline constexpr size_t kEthHeaderSize = 14;
inline constexpr size_t kTransportHeaderSize = 8;
inline constexpr size_t kPacketMinSize = kEthHeaderSize + kTransportHeaderSize;
inline constexpr uint16_t kEthertypeSim = 0x0800;

struct PacketView {
  ConstByteSpan frame;

  bool valid() const { return frame.size() >= kPacketMinSize; }
  const uint8_t* dst_mac() const { return frame.data(); }
  const uint8_t* src_mac() const { return frame.data() + 6; }
  uint16_t ethertype() const { return static_cast<uint16_t>((frame[12] << 8) | frame[13]); }
  uint16_t src_port() const { return LoadLe16(frame.data() + 14); }
  uint16_t dst_port() const { return LoadLe16(frame.data() + 16); }
  uint16_t payload_len() const { return LoadLe16(frame.data() + 18); }
  uint16_t checksum() const { return LoadLe16(frame.data() + 20); }
  ConstByteSpan payload() const {
    size_t n = std::min<size_t>(payload_len(), frame.size() - kPacketMinSize);
    return frame.subspan(kPacketMinSize, n);
  }

  // Checksum over the transport header (with checksum field zeroed) and
  // payload.
  uint16_t ComputeChecksum() const;
  bool ChecksumOk() const { return ComputeChecksum() == checksum(); }
};

// RSS-style flow hash over the frame's flow identity (both MACs and both
// ports — the stand-in for the 4-tuple Toeplitz hash real NICs compute).
// Deterministic and shared between the device model (SimNic's receive-side
// scaling) and the kernel (transmit queue selection), so the same flow maps
// to the same queue in both directions. Runt frames hash to 0.
uint32_t FlowHash(ConstByteSpan frame);

// Keyed variant: real NICs compute the Toeplitz hash under a driver-
// programmable 40-byte secret key (so a remote attacker cannot precompute
// which flows collide onto one queue). The stand-in folds the key into two
// 64-bit endpoint salts once at programming time (RssKeyFold), and the
// per-packet hash mixes each endpoint XOR its salt. The IDENTITY key (all
// zeros, or the key never programmed) folds to zero salts, making
// FlowHashKeyed(frame, {}) bit-for-bit identical to FlowHash(frame) — the
// property that keeps every historical steering row byte-stable. A nonzero
// key trades the direction-symmetry of the unkeyed hash (dst/src salts
// differ) for collision secrecy, exactly like real Toeplitz with asymmetric
// key words. Any key value yields in-bounds steering: the hash output is
// reduced modulo the RETA size and the live queue count downstream no matter
// what was programmed — hostile keys are clamped by construction.
inline constexpr size_t kRssKeyBytes = 40;

struct RssKeyFold {
  uint64_t dst_salt = 0;
  uint64_t src_salt = 0;
};

// Folds up to kRssKeyBytes of `key` (missing bytes read as zero) into the
// two endpoint salts. An all-zero key folds to {0, 0}.
RssKeyFold FoldRssKey(ConstByteSpan key);

uint32_t FlowHashKeyed(ConstByteSpan frame, const RssKeyFold& fold);

// The queue FlowHash steers `frame` to among `num_queues` queues.
inline uint16_t FlowQueue(ConstByteSpan frame, uint16_t num_queues) {
  return num_queues > 1 ? static_cast<uint16_t>(FlowHash(frame) % num_queues) : 0;
}

// Copies `frame` into `dst` (which must hold frame.size() bytes) and
// verifies the transport checksum in the same pass — the guard copy fused
// with the checksum pass, on the simulator's own clock and not just the
// modeled one. Returns true iff the frame is no runt and the checksum over
// the PRIVATE copy matches. Runts are still copied in full.
bool CopyAndVerifyPacket(uint8_t* dst, ConstByteSpan frame);

// Builds a well-formed frame.
std::vector<uint8_t> BuildPacket(const uint8_t dst_mac[6], const uint8_t src_mac[6],
                                 uint16_t src_port, uint16_t dst_port, ConstByteSpan payload);

// Rewrites the destination port in place *without* fixing the checksum —
// the primitive the TOCTOU attack uses.
void RewriteDstPortRaw(ByteSpan frame, uint16_t new_port);
// Rewrites the destination port and fixes up the checksum, as a smarter
// attacker would.
void RewriteDstPortFixup(ByteSpan frame, uint16_t new_port);

}  // namespace sud::kern

#endif  // SUD_SRC_KERN_PACKET_H_
