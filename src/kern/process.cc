#include "src/kern/process.h"

namespace sud::kern {

void Process::GrantIoPorts(uint16_t first, uint16_t count) {
  for (uint32_t p = first; p < static_cast<uint32_t>(first) + count && p < 65536; ++p) {
    iopb_.set(p);
  }
}

void Process::RevokeIoPorts(uint16_t first, uint16_t count) {
  for (uint32_t p = first; p < static_cast<uint32_t>(first) + count && p < 65536; ++p) {
    iopb_.reset(p);
  }
}

Status Process::ChargeMemory(uint64_t bytes) {
  if (memory_used_ + bytes > rlimits_.memory_bytes) {
    return Status(ErrorCode::kExhausted, name_ + ": rlimit memory exceeded");
  }
  memory_used_ += bytes;
  return Status::Ok();
}

void Process::UncchargeMemory(uint64_t bytes) {
  memory_used_ = bytes > memory_used_ ? 0 : memory_used_ - bytes;
}

Process& ProcessTable::Spawn(const std::string& name, Uid uid) {
  Pid pid = next_pid_++;
  auto process = std::make_unique<Process>(pid, uid, name);
  Process& ref = *process;
  processes_[pid] = std::move(process);
  return ref;
}

Status ProcessTable::Kill(Pid pid) {
  Process* process = Find(pid);
  if (process == nullptr) {
    return Status(ErrorCode::kNotFound, "no such pid");
  }
  process->MarkDead();
  return Status::Ok();
}

Process* ProcessTable::Find(Pid pid) {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

const Process* ProcessTable::Find(Pid pid) const {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

std::vector<Process*> ProcessTable::alive_processes() {
  std::vector<Process*> out;
  for (auto& [pid, process] : processes_) {
    if (process->alive()) {
      out.push_back(process.get());
    }
  }
  return out;
}

}  // namespace sud::kern
