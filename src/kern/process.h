// Process and ProcessTable: the Unix protection mechanisms SUD leans on.
//
// Section 3 of the paper: "SUD uses existing Unix protection mechanisms to
// confine drivers, by running each driver in a separate process under a
// separate Unix user ID." The simulated process carries exactly the state
// the isolation argument needs: a UID, an IO-permission bitmap (the IOPB in
// the task's TSS, Section 3.2.1), resource limits (setrlimit, Section 4.1),
// a scheduling policy (sched_setscheduler), and an accounting of every
// machine resource granted to it — which is what makes kill -9 + restart a
// complete reclamation (Section 4.1).

#ifndef SUD_SRC_KERN_PROCESS_H_
#define SUD_SRC_KERN_PROCESS_H_

#include <bitset>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace sud::kern {

using Pid = uint32_t;
using Uid = uint32_t;

enum class SchedPolicy {
  kNormal,
  kFifo,      // real-time, for audio drivers (Section 4.1)
  kRoundRobin,
};

struct Rlimits {
  uint64_t memory_bytes = 64ull * 1024 * 1024;
  uint64_t open_uchans = 16;
};

class Process {
 public:
  Process(Pid pid, Uid uid, std::string name) : pid_(pid), uid_(uid), name_(std::move(name)) {}

  Pid pid() const { return pid_; }
  Uid uid() const { return uid_; }
  const std::string& name() const { return name_; }
  bool alive() const { return alive_; }
  void MarkDead() { alive_ = false; }

  // --- IOPB: per-process IO-port permission bitmap.
  void GrantIoPorts(uint16_t first, uint16_t count);
  void RevokeIoPorts(uint16_t first, uint16_t count);
  bool MayAccessIoPort(uint16_t port) const { return iopb_.test(port); }
  size_t granted_io_ports() const { return iopb_.count(); }

  // --- memory accounting against rlimit.
  Status ChargeMemory(uint64_t bytes);
  void UncchargeMemory(uint64_t bytes);
  uint64_t memory_used() const { return memory_used_; }

  Rlimits& rlimits() { return rlimits_; }
  const Rlimits& rlimits() const { return rlimits_; }

  SchedPolicy sched_policy() const { return sched_policy_; }
  void set_sched_policy(SchedPolicy policy) { sched_policy_ = policy; }

  // CPU time accounting (simulated ns), fed by the CpuModel harness.
  void ChargeCpu(uint64_t nanos) { cpu_ns_ += nanos; }
  uint64_t cpu_ns() const { return cpu_ns_; }

 private:
  Pid pid_;
  Uid uid_;
  std::string name_;
  bool alive_ = true;
  std::bitset<65536> iopb_;
  uint64_t memory_used_ = 0;
  uint64_t cpu_ns_ = 0;
  Rlimits rlimits_;
  SchedPolicy sched_policy_ = SchedPolicy::kNormal;
};

class ProcessTable {
 public:
  // Spawns a process under `uid`. UIDs for driver processes are distinct
  // per-driver, per the paper.
  Process& Spawn(const std::string& name, Uid uid);
  Status Kill(Pid pid);
  Process* Find(Pid pid);
  const Process* Find(Pid pid) const;
  std::vector<Process*> alive_processes();

 private:
  Pid next_pid_ = 100;
  std::map<Pid, std::unique_ptr<Process>> processes_;
};

}  // namespace sud::kern

#endif  // SUD_SRC_KERN_PROCESS_H_
