#include "src/kern/rss_rebalancer.h"

#include <algorithm>
#include <numeric>

namespace sud::kern {

namespace {

// max/mean per-queue load for `table` over `load` (1.0 = balanced). A queue
// with zero assigned load still counts toward the mean: starving a queue IS
// imbalance.
double ImbalanceOf(const std::array<uint64_t, kFlowBuckets>& load,
                   const RssRebalancer::Table& table, uint32_t queues) {
  std::array<uint64_t, 256> per_queue{};  // table entries are uint8_t
  uint64_t total = 0;
  for (uint32_t b = 0; b < kFlowBuckets; ++b) {
    per_queue[table[b] % queues] += load[b];
    total += load[b];
  }
  if (total == 0) {
    return 1.0;
  }
  uint64_t max = 0;
  for (uint32_t q = 0; q < queues; ++q) {
    max = std::max(max, per_queue[q]);
  }
  double mean = static_cast<double>(total) / queues;
  return static_cast<double>(max) / mean;
}

}  // namespace

RssRebalancer::RssRebalancer(const Options& options) : options_(options) {
  if (options_.num_queues == 0) {
    options_.num_queues = 1;
  }
  if (options_.min_interval_ticks == 0) {
    options_.min_interval_ticks = 1;
  }
  for (uint32_t b = 0; b < kFlowBuckets; ++b) {
    current_[b] = static_cast<uint8_t>(b % options_.num_queues);
  }
}

bool RssRebalancer::Observe(const std::array<uint64_t, kFlowBuckets>& bucket_load, Table* out) {
  ++tick_;
  ++stats_.observations;
  if (tick_ - window_start_tick_ >= options_.window_ticks) {
    window_start_tick_ = tick_;
    window_reprograms_ = 0;
  }

  // Defense 1: clamp before any arithmetic. The observation may come from a
  // compromised driver's forged statistics.
  std::array<uint64_t, kFlowBuckets> load{};
  uint64_t total = 0;
  for (uint32_t b = 0; b < kFlowBuckets; ++b) {
    load[b] = bucket_load[b];
    if (load[b] > options_.max_credible_load) {
      load[b] = options_.max_credible_load;
      ++stats_.clamped_inputs;
    }
    total += load[b];
  }
  if (total == 0) {
    ++stats_.skipped_empty;
    return false;
  }

  double imbalance = ImbalanceOf(load, current_, options_.num_queues);
  last_imbalance_ = imbalance;
  if (options_.num_queues < 2 || imbalance <= options_.imbalance_threshold) {
    ++stats_.skipped_balanced;
    return false;
  }

  // Defense 3: the rate limiter answers BEFORE any plan is computed, so an
  // oscillating forgery costs the control loop a bounded amount of work too.
  if (tick_ - last_reprogram_tick_ < options_.min_interval_ticks ||
      window_reprograms_ >= options_.max_reprograms_per_window) {
    ++stats_.skipped_rate;
    return false;
  }

  // Greedy LPT: heaviest bucket first onto the lightest queue. Stable order
  // (load desc, bucket index asc) keeps the plan deterministic.
  std::array<uint32_t, kFlowBuckets> order;
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return load[a] != load[b] ? load[a] > load[b] : a < b;
  });
  Table plan{};
  std::array<uint64_t, 256> per_queue{};
  for (uint32_t bucket : order) {
    uint32_t lightest = 0;
    for (uint32_t q = 1; q < options_.num_queues; ++q) {
      if (per_queue[q] < per_queue[lightest]) {
        lightest = q;
      }
    }
    plan[bucket] = static_cast<uint8_t>(lightest);
    per_queue[lightest] += load[bucket];
  }

  // Defense 2: hysteresis on predicted relative gain.
  double planned = ImbalanceOf(load, plan, options_.num_queues);
  if ((imbalance - planned) / imbalance < options_.min_gain) {
    ++stats_.skipped_hysteresis;
    return false;
  }

  current_ = plan;
  last_reprogram_tick_ = tick_;
  ++window_reprograms_;
  ++stats_.reprograms;
  *out = current_;
  return true;
}

}  // namespace sud::kern
