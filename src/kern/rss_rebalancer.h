// RssRebalancer: adaptive RETA computation from observed per-bucket load.
//
// The RPS-style control loop the ROADMAP's million-flow item calls for: the
// FlowTable observes recency-weighted packet load per RETA bucket (128
// buckets, hash % 128 — the device's own indirection granularity); this
// class turns that observation into a rebalanced 128-entry table when — and
// only when — moving buckets would actually help. The caller (operator
// control loop, bench, supervisor replay hook) programs the result through
// the legitimate E1000eDriver::ProgramReta path, where the device clamps
// every entry again — a hostile table can never steer out of bounds, and
// neither can a buggy rebalancer.
//
// Three defenses make the rebalancer safe to feed UNTRUSTED statistics (a
// compromised driver can forge the per-queue picture it reports upward):
//
//  1. Input clamping: every bucket load is clamped to max_credible_load
//    before any arithmetic — an all-max forgery cannot overflow the sums or
//    dominate a later honest observation, and a zero-total observation
//    (all-zero forgery, or a genuinely idle NIC) is skipped outright.
//  2. Hysteresis: reprogramming requires BOTH measured imbalance above
//    imbalance_threshold AND a predicted relative improvement of at least
//    min_gain. Mice churn that jitters the load picture without moving the
//    max/mean ratio cannot thrash the RETA.
//  3. Rate limiting: at most one reprogram per min_interval_ticks, and at
//    most max_reprograms_per_window per window_ticks. An oscillating
//    forgery (alternating hot queues every observation) converges to the
//    rate floor instead of livelocking the control loop — bounded
//    reprograms/interval is the attack-matrix containment criterion.
//
// The balancing itself is greedy LPT (longest processing time): buckets
// sorted by load descending, each assigned to the currently lightest queue.
// Heavy hitters land first and spread across queues; ties break toward the
// lowest queue index so the result is deterministic.
//
// Not thread-safe: one control-loop owner calls Observe. The OUTPUT table is
// plain data; publication to the device is the caller's (already-clamped)
// MMIO path.

#ifndef SUD_SRC_KERN_RSS_REBALANCER_H_
#define SUD_SRC_KERN_RSS_REBALANCER_H_

#include <array>
#include <cstdint>

#include "src/kern/flow_table.h"

namespace sud::kern {

class RssRebalancer {
 public:
  using Table = std::array<uint8_t, kFlowBuckets>;

  struct Options {
    uint32_t num_queues = 1;
    // Rebalance only when max/mean per-queue load exceeds this.
    double imbalance_threshold = 1.15;
    // ... and only when the greedy plan predicts at least this relative
    // improvement of the max/mean ratio (the mice-churn hysteresis).
    double min_gain = 0.05;
    // Rate limits (in Observe ticks): minimum spacing and a windowed cap.
    uint32_t min_interval_ticks = 4;
    uint32_t window_ticks = 64;
    uint32_t max_reprograms_per_window = 8;
    // Per-bucket load clamp applied before any arithmetic.
    uint64_t max_credible_load = 1ull << 30;
  };

  struct Stats {
    uint64_t observations = 0;
    uint64_t reprograms = 0;
    uint64_t skipped_empty = 0;       // zero total load (idle, or all-zero forgery)
    uint64_t skipped_balanced = 0;    // imbalance under threshold
    uint64_t skipped_hysteresis = 0;  // predicted gain under min_gain
    uint64_t skipped_rate = 0;        // rate limiter refused
    uint64_t clamped_inputs = 0;      // bucket loads clamped to max_credible_load
  };

  explicit RssRebalancer(const Options& options);

  // One control-loop tick over an observed per-bucket load snapshot.
  // Returns true and fills *out with the freshly adopted table when the
  // caller should reprogram the device; false when the current table stands.
  bool Observe(const std::array<uint64_t, kFlowBuckets>& bucket_load, Table* out);

  // The table the rebalancer currently considers programmed (identity at
  // construction).
  const Table& current() const { return current_; }
  // max/mean per-queue load of the latest non-empty observation under the
  // CURRENT table (1.0 = perfectly balanced).
  double last_imbalance() const { return last_imbalance_; }
  const Stats& stats() const { return stats_; }

 private:
  Options options_;
  Table current_{};
  double last_imbalance_ = 1.0;
  uint64_t tick_ = 0;
  uint64_t last_reprogram_tick_ = 0;
  uint64_t window_start_tick_ = 0;
  uint32_t window_reprograms_ = 0;
  Stats stats_;
};

}  // namespace sud::kern

#endif  // SUD_SRC_KERN_RSS_REBALANCER_H_
