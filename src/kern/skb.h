// Skb: the simulated kernel's socket buffer.
//
// Deliberately shaped like struct sk_buff where the paper's driver API needs
// it (Figure 2 uses skb->data / skb->data_len): owned byte storage plus the
// metadata the stack tracks per packet.
//
// Storage layout: frames up to kInlineCapacity (2 KB — every normal Ethernet
// frame) live in an inline buffer inside the Skb itself, so MakeSkb and the
// proxy's guard copy cost exactly one allocation (the Skb node) instead of
// two (node + vector backing store). Jumbo payloads spill to a heap vector.

#ifndef SUD_SRC_KERN_SKB_H_
#define SUD_SRC_KERN_SKB_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "src/base/bytes.h"
#include "src/kern/packet.h"

namespace sud::kern {

struct Skb {
  // Covers the 1518-byte Ethernet maximum with headroom; anything larger is
  // a jumbo frame and may pay the heap allocation.
  static constexpr size_t kInlineCapacity = 2048;

  // Set by the receive path once the checksum pass has run (the guard-copy
  // is fused with this pass, Section 3.1.2).
  bool checksum_verified = false;

  Skb() = default;
  explicit Skb(std::vector<uint8_t> bytes) : heap_(std::move(bytes)), len_(heap_.size()) {}
  explicit Skb(ConstByteSpan bytes) { Assign(bytes); }

  void Assign(ConstByteSpan bytes) {
    len_ = bytes.size();
    if (len_ <= kInlineCapacity) {
      heap_.clear();
      if (len_ > 0) {
        std::memcpy(inline_.data(), bytes.data(), len_);
      }
    } else {
      heap_.assign(bytes.begin(), bytes.end());
    }
  }

  // Guard copy fused with checksum verification (Section 3.1.2, for real):
  // assigns `bytes` and validates the transport checksum over the private
  // copy in the same pass, setting checksum_verified accordingly. Returns
  // false for runts and checksum mismatches.
  bool AssignAndVerifyChecksum(ConstByteSpan bytes) {
    len_ = bytes.size();
    if (len_ <= kInlineCapacity) {
      heap_.clear();
      checksum_verified = CopyAndVerifyPacket(inline_.data(), bytes);
    } else {
      heap_.resize(len_);
      checksum_verified = CopyAndVerifyPacket(heap_.data(), bytes);
    }
    return checksum_verified;
  }

  // Frag-append for EOP-chained multi-descriptor frames: grows the frame by
  // one fragment, spilling from the inline buffer to the heap when the
  // running length crosses kInlineCapacity. `max_len` bounds the assembled
  // frame — an append that would exceed it copies NOTHING and returns false,
  // so a torn or endless chain can never grow an skb past the interface
  // maximum.
  bool AppendFrag(ConstByteSpan bytes, size_t max_len) {
    size_t new_len = len_ + bytes.size();
    if (new_len > max_len) {
      return false;
    }
    if (new_len <= kInlineCapacity && heap_.empty()) {
      std::memcpy(inline_.data() + len_, bytes.data(), bytes.size());
    } else {
      if (heap_.empty()) {
        // First spill: move what the inline buffer holds (possibly nothing)
        // to the heap, then append there — data() discriminates on
        // heap_.empty(), so the spill must happen even for a zero-length
        // prefix.
        heap_.reserve(max_len);
        heap_.assign(inline_.data(), inline_.data() + len_);
      }
      heap_.insert(heap_.end(), bytes.begin(), bytes.end());
    }
    len_ = new_len;
    return true;
  }

  // The chain counterpart of AssignAndVerifyChecksum: the guard copy already
  // happened fragment-by-fragment (AppendFrag), so this runs the checksum
  // pass over the assembled PRIVATE copy — same safe ordering, the verdict
  // can never be computed over bytes the driver still owns.
  bool VerifyChecksumPrivate() {
    PacketView packet = view();
    checksum_verified = packet.valid() && packet.ChecksumOk();
    return checksum_verified;
  }

  uint8_t* data() { return heap_.empty() ? inline_.data() : heap_.data(); }
  const uint8_t* data() const { return heap_.empty() ? inline_.data() : heap_.data(); }
  size_t data_len() const { return len_; }
  ConstByteSpan span() const { return ConstByteSpan(data(), len_); }
  ByteSpan mutable_span() { return ByteSpan(data(), len_); }
  PacketView view() const { return PacketView{span()}; }

 private:
  std::array<uint8_t, kInlineCapacity> inline_;
  std::vector<uint8_t> heap_;  // jumbo overflow only
  size_t len_ = 0;
};

using SkbPtr = std::unique_ptr<Skb>;

inline SkbPtr MakeSkb(ConstByteSpan bytes) { return std::make_unique<Skb>(bytes); }

}  // namespace sud::kern

#endif  // SUD_SRC_KERN_SKB_H_
