// Skb: the simulated kernel's socket buffer.
//
// Deliberately shaped like struct sk_buff where the paper's driver API needs
// it (Figure 2 uses skb->data / skb->data_len): owned byte storage plus the
// metadata the stack tracks per packet.
//
// Storage layout: frames up to kInlineCapacity (2 KB — every normal Ethernet
// frame) live in an inline buffer inside the Skb itself, so MakeSkb and the
// proxy's guard copy cost exactly one allocation (the Skb node) instead of
// two (node + vector backing store). Jumbo payloads spill to a heap vector.
//
// Transmit scatter/gather: a frame may also continue past the linear head in
// page-like fragments (the skb_shinfo frag array). The stack hands such
// frag skbs down unmodified; drivers that advertise NetDriverOps::sg receive
// them as per-fragment descriptor chains, and everyone else (ne2k) gets the
// Linearize() fallback — one extra full-frame copy, which is exactly the
// copy the SG path deletes.

#ifndef SUD_SRC_KERN_SKB_H_
#define SUD_SRC_KERN_SKB_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/base/bytes.h"
#include "src/kern/packet.h"

namespace sud::kern {

struct Skb {
  // Covers the 1518-byte Ethernet maximum with headroom; anything larger is
  // a jumbo frame and may pay the heap allocation.
  static constexpr size_t kInlineCapacity = 2048;

  // Set by the receive path once the checksum pass has run (the guard-copy
  // is fused with this pass, Section 3.1.2).
  bool checksum_verified = false;

  Skb() = default;
  explicit Skb(std::vector<uint8_t> bytes) : heap_(std::move(bytes)), len_(heap_.size()) {}
  explicit Skb(ConstByteSpan bytes) { Assign(bytes); }

  // Extern storage plus frag release hooks fire exactly once, at death: the
  // sealed-delivery unseal and TX grant releases ride them. Skbs travel as
  // SkbPtr; copying one would double-fire the hooks, so copies are deleted.
  Skb(const Skb&) = delete;
  Skb& operator=(const Skb&) = delete;
  ~Skb() {
    if (release_) {
      release_();
    }
  }

  // Zero-copy delivery (the sealed RX path): the skb references `len` bytes
  // the caller guarantees immutable for the skb's lifetime — the IOMMU seal
  // is that guarantee — and `release` runs at skb destruction (the unseal /
  // buffer-recycle point). No byte is copied.
  void AssignExtern(const uint8_t* bytes, size_t len, std::function<void()> release) {
    extern_data_ = bytes;
    len_ = len;
    release_ = std::move(release);
  }
  bool is_extern() const { return extern_data_ != nullptr; }

  void Assign(ConstByteSpan bytes) {
    extern_data_ = nullptr;
    len_ = bytes.size();
    if (len_ <= kInlineCapacity) {
      heap_.clear();
      if (len_ > 0) {
        std::memcpy(inline_.data(), bytes.data(), len_);
      }
    } else {
      heap_.assign(bytes.begin(), bytes.end());
    }
  }

  // Guard copy fused with checksum verification (Section 3.1.2, for real):
  // assigns `bytes` and validates the transport checksum over the private
  // copy in the same pass, setting checksum_verified accordingly. Returns
  // false for runts and checksum mismatches.
  bool AssignAndVerifyChecksum(ConstByteSpan bytes) {
    extern_data_ = nullptr;
    len_ = bytes.size();
    if (len_ <= kInlineCapacity) {
      heap_.clear();
      checksum_verified = CopyAndVerifyPacket(inline_.data(), bytes);
    } else {
      heap_.resize(len_);
      checksum_verified = CopyAndVerifyPacket(heap_.data(), bytes);
    }
    return checksum_verified;
  }

  // Frag-append for EOP-chained multi-descriptor frames: grows the frame by
  // one fragment, spilling from the inline buffer to the heap when the
  // running length crosses kInlineCapacity. `max_len` bounds the assembled
  // frame — an append that would exceed it copies NOTHING and returns false,
  // so a torn or endless chain can never grow an skb past the interface
  // maximum.
  bool AppendFrag(ConstByteSpan bytes, size_t max_len) {
    size_t new_len = len_ + bytes.size();
    if (new_len > max_len) {
      return false;
    }
    if (new_len <= kInlineCapacity && heap_.empty()) {
      std::memcpy(inline_.data() + len_, bytes.data(), bytes.size());
    } else {
      if (heap_.empty()) {
        // First spill: move what the inline buffer holds (possibly nothing)
        // to the heap, then append there — data() discriminates on
        // heap_.empty(), so the spill must happen even for a zero-length
        // prefix.
        heap_.reserve(max_len);
        heap_.assign(inline_.data(), inline_.data() + len_);
      }
      heap_.insert(heap_.end(), bytes.begin(), bytes.end());
    }
    len_ = new_len;
    return true;
  }

  // The chain counterpart of AssignAndVerifyChecksum: the guard copy already
  // happened fragment-by-fragment (AppendFrag), so this runs the checksum
  // pass over the assembled PRIVATE copy — same safe ordering, the verdict
  // can never be computed over bytes the driver still owns.
  bool VerifyChecksumPrivate() {
    PacketView packet = view();
    checksum_verified = packet.valid() && packet.ChecksumOk();
    return checksum_verified;
  }

  // --- transmit scatter/gather ----------------------------------------------
  // Payload continuing after the linear head in owned page-like fragments.
  // Receive skbs are always linear (the guard copy assembles one private
  // buffer); only the transmit path builds frag skbs.
  bool is_linear() const { return tx_frags_.empty(); }
  size_t nr_frags() const { return tx_frags_.size(); }
  ConstByteSpan tx_frag(size_t i) const { return tx_frags_[i].view; }
  // Nonzero iff fragment `i` is DRAM-backed (a sealed grant candidate): the
  // physical address of its first byte. Owned fragments report 0.
  uint64_t tx_frag_paddr(size_t i) const { return tx_frags_[i].paddr; }
  bool has_dram_frags() const {
    for (const TxFrag& frag : tx_frags_) {
      if (frag.paddr != 0) {
        return true;
      }
    }
    return false;
  }
  // Head bytes plus every fragment: the length the wire will carry.
  size_t total_len() const { return len_ + tx_frag_bytes_; }
  void AppendTxFrag(ConstByteSpan bytes) {
    tx_frag_bytes_ += bytes.size();
    TxFrag frag;
    frag.owned.assign(bytes.begin(), bytes.end());
    frag.view = ConstByteSpan(frag.owned.data(), frag.owned.size());
    tx_frags_.push_back(std::move(frag));
  }
  // A fragment living in DRAM the skb does NOT own (page-cache model): the
  // transmit path can arm descriptors straight from it through a read-only
  // IOMMU grant instead of staging a copy. The backing pages must outlive the
  // skb; wire a reclaim into set_release if they need freeing.
  void AppendDramFrag(uint64_t paddr, ConstByteSpan bytes) {
    tx_frag_bytes_ += bytes.size();
    TxFrag frag;
    frag.view = bytes;
    frag.paddr = paddr;
    tx_frags_.push_back(std::move(frag));
  }
  // Death hook for skbs whose storage needs reclaiming (DRAM frag pages).
  void set_release(std::function<void()> release) { release_ = std::move(release); }

  // skb_linearize: folds the fragments into the contiguous head storage, the
  // fallback for drivers without SG. Bounded like AppendFrag: a frame that
  // cannot fit `max_len` copies nothing past the bound and returns false (the
  // caller drops it whole — transmit never truncates).
  bool Linearize(size_t max_len) {
    if (total_len() > max_len) {
      return false;
    }
    for (const TxFrag& frag : tx_frags_) {
      if (!AppendFrag(frag.view, max_len)) {
        return false;  // unreachable given the pre-check; defence in depth
      }
    }
    tx_frags_.clear();
    tx_frag_bytes_ = 0;
    return true;
  }

  // Extern storage is immutable by contract (the seal enforces it); the
  // const_cast below only serves callers that treat data() as a read handle —
  // the receive stack never mutates a delivered skb.
  uint8_t* data() {
    if (extern_data_ != nullptr) {
      return const_cast<uint8_t*>(extern_data_);
    }
    return heap_.empty() ? inline_.data() : heap_.data();
  }
  const uint8_t* data() const {
    if (extern_data_ != nullptr) {
      return extern_data_;
    }
    return heap_.empty() ? inline_.data() : heap_.data();
  }
  size_t data_len() const { return len_; }
  ConstByteSpan span() const { return ConstByteSpan(data(), len_); }
  ByteSpan mutable_span() { return ByteSpan(data(), len_); }
  PacketView view() const { return PacketView{span()}; }

 private:
  // One skb_shinfo fragment: either an owned buffer (`owned` non-empty,
  // `view` into it) or a DRAM-backed reference (`view` into the DRAM window,
  // `paddr` set, nothing owned).
  struct TxFrag {
    std::vector<uint8_t> owned;
    ConstByteSpan view;
    uint64_t paddr = 0;
  };

  std::array<uint8_t, kInlineCapacity> inline_;
  std::vector<uint8_t> heap_;  // jumbo overflow only
  const uint8_t* extern_data_ = nullptr;  // sealed zero-copy delivery
  size_t len_ = 0;
  std::vector<TxFrag> tx_frags_;
  size_t tx_frag_bytes_ = 0;
  std::function<void()> release_;  // fired once, at destruction
};

using SkbPtr = std::unique_ptr<Skb>;

inline SkbPtr MakeSkb(ConstByteSpan bytes) { return std::make_unique<Skb>(bytes); }

// Splits a prebuilt frame into the frag-skb shape the stack produces for
// large sends: `head_len` bytes in the linear head (always enough for every
// header the transmit path parses), the rest in `frag_len`-byte fragments.
inline SkbPtr MakeFragSkb(ConstByteSpan frame, size_t head_len, size_t frag_len) {
  if (head_len >= frame.size() || frag_len == 0) {
    return MakeSkb(frame);
  }
  auto skb = std::make_unique<Skb>(frame.subspan(0, head_len));
  for (size_t off = head_len; off < frame.size(); off += frag_len) {
    size_t chunk = frame.size() - off < frag_len ? frame.size() - off : frag_len;
    skb->AppendTxFrag(frame.subspan(off, chunk));
  }
  return skb;
}

}  // namespace sud::kern

#endif  // SUD_SRC_KERN_SKB_H_
