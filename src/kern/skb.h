// Skb: the simulated kernel's socket buffer.
//
// Deliberately shaped like struct sk_buff where the paper's driver API needs
// it (Figure 2 uses skb->data / skb->data_len): owned byte storage plus the
// metadata the stack tracks per packet.

#ifndef SUD_SRC_KERN_SKB_H_
#define SUD_SRC_KERN_SKB_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/bytes.h"
#include "src/kern/packet.h"

namespace sud::kern {

struct Skb {
  std::vector<uint8_t> storage;
  // Set by the receive path once the checksum pass has run (the guard-copy
  // is fused with this pass, Section 3.1.2).
  bool checksum_verified = false;

  Skb() = default;
  explicit Skb(std::vector<uint8_t> bytes) : storage(std::move(bytes)) {}
  explicit Skb(ConstByteSpan bytes) : storage(bytes.begin(), bytes.end()) {}

  uint8_t* data() { return storage.data(); }
  const uint8_t* data() const { return storage.data(); }
  size_t data_len() const { return storage.size(); }
  ConstByteSpan span() const { return ConstByteSpan(storage.data(), storage.size()); }
  ByteSpan mutable_span() { return ByteSpan(storage.data(), storage.size()); }
  PacketView view() const { return PacketView{span()}; }
};

using SkbPtr = std::unique_ptr<Skb>;

inline SkbPtr MakeSkb(ConstByteSpan bytes) { return std::make_unique<Skb>(bytes); }

}  // namespace sud::kern

#endif  // SUD_SRC_KERN_SKB_H_
