#include "src/kern/wireless.h"

#include "src/base/log.h"
#include "src/kern/kernel.h"

namespace sud::kern {

Result<WirelessDevice*> WirelessSubsystem::Register(const std::string& name, WirelessOps* ops,
                                                    uint32_t supported_features) {
  if (devices_.count(name) != 0) {
    return Status(ErrorCode::kAlreadyExists, "wireless device " + name + " exists");
  }
  if (ops == nullptr) {
    return Status(ErrorCode::kInvalidArgument, "null wireless ops");
  }
  auto device = std::make_unique<WirelessDevice>(name, ops, supported_features);
  WirelessDevice* ptr = device.get();
  devices_[name] = std::move(device);
  return ptr;
}

Status WirelessSubsystem::Unregister(const std::string& name) {
  if (devices_.erase(name) == 0) {
    return Status(ErrorCode::kNotFound, "no wireless device " + name);
  }
  return Status::Ok();
}

WirelessDevice* WirelessSubsystem::Find(const std::string& name) {
  auto it = devices_.find(name);
  return it == devices_.end() ? nullptr : it->second.get();
}

Result<uint32_t> WirelessSubsystem::EnableFeatures(const std::string& name, uint32_t requested) {
  WirelessDevice* device = Find(name);
  if (device == nullptr) {
    return Status(ErrorCode::kNotFound, "no wireless device " + name);
  }
  // The 802.11 stack invokes this driver op while holding a spinlock
  // (Section 3.1.1): model it with the kernel's atomic guard. The ops
  // implementation (the proxy) must not block here.
  uint32_t enabled;
  {
    Kernel::ScopedAtomic atomic(*kernel_);
    enabled = device->ops()->EnableFeatures(requested);
  }
  if ((enabled & ~device->supported_features()) != 0) {
    // Driver claimed features it never advertised: tolerated, logged,
    // clamped — the "robust to driver mistakes" behaviour of Section 3.1.1.
    SUD_LOG(kWarning) << name << ": driver enabled unsupported features, clamping";
    enabled &= device->supported_features();
  }
  device->set_enabled_features(enabled);
  return enabled;
}

Result<std::vector<ScanResult>> WirelessSubsystem::Scan(const std::string& name) {
  WirelessDevice* device = Find(name);
  if (device == nullptr) {
    return Status(ErrorCode::kNotFound, "no wireless device " + name);
  }
  return device->ops()->Scan();
}

Status WirelessSubsystem::Associate(const std::string& name, const std::string& ssid) {
  WirelessDevice* device = Find(name);
  if (device == nullptr) {
    return Status(ErrorCode::kNotFound, "no wireless device " + name);
  }
  return device->ops()->Associate(ssid);
}

}  // namespace sud::kern
