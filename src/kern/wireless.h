// The wireless (802.11 / cfg80211-style) subsystem.
//
// Two behaviours from the paper live here:
//
//  1. Section 3.1.1: "the Linux 802.11 network stack calls the driver to
//     enable certain features, while executing in a non-preemptable context;
//     the driver must respond with the features it supports and will
//     enable." EnableFeatures is therefore invoked under the kernel's atomic
//     guard; a proxy must answer it from mirrored state without blocking and
//     queue an asynchronous upcall to the real driver.
//
//  2. Section 3.3: the currently available bitrates are shared-memory state
//     mirrored between the real kernel and SUD-UML.

#ifndef SUD_SRC_KERN_WIRELESS_H_
#define SUD_SRC_KERN_WIRELESS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace sud::kern {

// 802.11 feature bits (a representative subset).
inline constexpr uint32_t kWifiFeatureShortPreamble = 1u << 0;
inline constexpr uint32_t kWifiFeatureQos = 1u << 1;
inline constexpr uint32_t kWifiFeaturePowerSave = 1u << 2;
inline constexpr uint32_t kWifiFeatureHt40 = 1u << 3;

struct ScanResult {
  std::array<uint8_t, 6> bssid{};
  std::string ssid;
  uint8_t channel = 0;
  int8_t signal_dbm = 0;
};

// Ops a wireless (proxy) driver registers.
class WirelessOps {
 public:
  virtual ~WirelessOps() = default;
  // MUST NOT block: called with the kernel in a non-preemptable context.
  // Returns the subset of `requested` the driver supports and will enable.
  virtual uint32_t EnableFeatures(uint32_t requested) = 0;
  // May block (synchronous upcall allowed).
  virtual Result<std::vector<ScanResult>> Scan() = 0;
  virtual Status Associate(const std::string& ssid) = 0;
};

class WirelessDevice {
 public:
  WirelessDevice(std::string name, WirelessOps* ops, uint32_t supported_features)
      : name_(std::move(name)), ops_(ops), supported_features_(supported_features) {}

  const std::string& name() const { return name_; }
  WirelessOps* ops() { return ops_; }
  uint32_t supported_features() const { return supported_features_; }
  uint32_t enabled_features() const { return enabled_features_; }
  void set_enabled_features(uint32_t features) { enabled_features_ = features; }

  // Mirrored shared-memory state (Section 3.3): current bitrates and BSS.
  const std::vector<uint32_t>& bitrates() const { return bitrates_; }
  void set_bitrates(std::vector<uint32_t> rates) { bitrates_ = std::move(rates); }
  bool associated() const { return associated_; }
  void set_associated(bool associated) { associated_ = associated; }

  // BSS-change notifications (the bss_change upcall of Figure 7).
  using BssChangeHandler = std::function<void(bool associated)>;
  void set_bss_change_handler(BssChangeHandler handler) { bss_handler_ = std::move(handler); }
  void NotifyBssChange(bool associated) {
    associated_ = associated;
    if (bss_handler_) {
      bss_handler_(associated);
    }
  }

 private:
  std::string name_;
  WirelessOps* ops_;
  uint32_t supported_features_;
  uint32_t enabled_features_ = 0;
  std::vector<uint32_t> bitrates_;
  bool associated_ = false;
  BssChangeHandler bss_handler_;
};

class Kernel;  // fwd: the atomic-context guard lives on the kernel

class WirelessSubsystem {
 public:
  explicit WirelessSubsystem(Kernel* kernel) : kernel_(kernel) {}

  Result<WirelessDevice*> Register(const std::string& name, WirelessOps* ops,
                                   uint32_t supported_features);
  Status Unregister(const std::string& name);
  WirelessDevice* Find(const std::string& name);

  // The 802.11 stack enabling features: runs the driver op inside a
  // non-preemptable section, as the real stack does.
  Result<uint32_t> EnableFeatures(const std::string& name, uint32_t requested);

  Result<std::vector<ScanResult>> Scan(const std::string& name);
  Status Associate(const std::string& name, const std::string& ssid);

  std::string NextName(const std::string& prefix) {
    return prefix + std::to_string(name_counter_[prefix]++);
  }

 private:
  Kernel* kernel_;
  std::map<std::string, std::unique_ptr<WirelessDevice>> devices_;
  std::map<std::string, int> name_counter_;
};

}  // namespace sud::kern

#endif  // SUD_SRC_KERN_WIRELESS_H_
