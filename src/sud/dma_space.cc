#include "src/sud/dma_space.h"

namespace sud {

Result<DmaRegion> DmaSpace::Alloc(uint64_t bytes, bool coherent) {
  if (bytes == 0) {
    return Status(ErrorCode::kInvalidArgument, "zero-byte dma allocation");
  }
  uint64_t rounded = hw::PageAlignUp(bytes);
  Result<uint64_t> paddr = dram_->AllocPages(rounded / hw::kPageSize);
  if (!paddr.ok()) {
    return paddr.status();
  }
  uint64_t iova = next_iova_;
  Status mapped = iommu_->Map(source_id_, iova, paddr.value(), rounded, /*readable=*/true,
                              /*writable=*/true);
  if (!mapped.ok()) {
    dram_->FreePages(paddr.value(), rounded / hw::kPageSize);
    return mapped;
  }
  next_iova_ += rounded;
  DmaRegion region{iova, paddr.value(), rounded, coherent};
  // Resolve the host window once: the steady-state HostView is then pure
  // pointer arithmetic off the cached base.
  Result<ByteSpan> window = dram_->Window(region.paddr, region.bytes);
  if (!window.ok()) {
    (void)iommu_->Unmap(source_id_, iova, rounded);
    dram_->FreePages(paddr.value(), rounded / hw::kPageSize);
    return window.status();
  }
  region.host_base = window.value().data();
  regions_[iova] = region;
  mru_region_.store(nullptr, std::memory_order_release);  // map may have rebalanced
  return region;
}

Result<DmaRegion> DmaSpace::MapExternal(uint64_t paddr, uint64_t bytes) {
  if (bytes == 0 || !hw::IsPageAligned(paddr)) {
    return Status(ErrorCode::kInvalidArgument, "external dma grant not page aligned");
  }
  uint64_t rounded = hw::PageAlignUp(bytes);
  uint64_t iova = next_iova_;
  Status mapped = iommu_->Map(source_id_, iova, paddr, rounded, /*readable=*/true,
                              /*writable=*/false);
  if (!mapped.ok()) {
    return mapped;
  }
  next_iova_ += rounded;
  DmaRegion region{iova, paddr, rounded, /*coherent=*/false, /*external=*/true};
  Result<ByteSpan> window = dram_->Window(region.paddr, region.bytes);
  if (!window.ok()) {
    (void)iommu_->Unmap(source_id_, iova, rounded);
    return window.status();
  }
  region.host_base = window.value().data();
  regions_[iova] = region;
  mru_region_.store(nullptr, std::memory_order_release);
  return region;
}

Status DmaSpace::Free(uint64_t iova) {
  auto it = regions_.find(iova);
  if (it == regions_.end()) {
    return Status(ErrorCode::kNotFound, "no dma region at iova");
  }
  const DmaRegion& region = it->second;
  (void)iommu_->Unmap(source_id_, region.iova, region.bytes);
  if (!region.external) {
    dram_->FreePages(region.paddr, region.bytes / hw::kPageSize);
  }
  regions_.erase(it);
  mru_region_.store(nullptr, std::memory_order_release);
  return Status::Ok();
}

const DmaRegion* DmaSpace::FindRegion(uint64_t iova, uint64_t len) const {
  if (iova + len < iova) {
    return nullptr;  // length overflow can never land inside a region
  }
  const DmaRegion* hint = mru_region_.load(std::memory_order_acquire);
  if (hint != nullptr && iova >= hint->iova && iova + len <= hint->iova + hint->bytes) {
    return hint;
  }
  auto it = regions_.upper_bound(iova);
  if (it == regions_.begin()) {
    return nullptr;
  }
  --it;
  const DmaRegion& region = it->second;
  if (iova < region.iova || iova + len > region.iova + region.bytes) {
    return nullptr;
  }
  mru_region_.store(&region, std::memory_order_release);
  return &region;
}

Result<ByteSpan> DmaSpace::HostView(uint64_t iova, uint64_t len) {
  const DmaRegion* region = FindRegion(iova, len);
  if (region == nullptr) {
    return Status(ErrorCode::kNotFound, "iova range not in any dma region");
  }
  return ByteSpan(region->host_base + (iova - region->iova), len);
}

Result<uint64_t> DmaSpace::IovaToPaddr(uint64_t iova) const {
  const DmaRegion* region = FindRegion(iova, 1);
  if (region == nullptr) {
    return Status(ErrorCode::kNotFound, "iova not in any dma region");
  }
  return region->paddr + (iova - region->iova);
}

void DmaSpace::ReleaseAll() {
  for (const auto& [iova, region] : regions_) {
    (void)iommu_->Unmap(source_id_, region.iova, region.bytes);
    if (!region.external) {
      dram_->FreePages(region.paddr, region.bytes / hw::kPageSize);
    }
  }
  regions_.clear();
  mru_region_.store(nullptr, std::memory_order_release);
}

uint64_t DmaSpace::total_bytes() const {
  uint64_t total = 0;
  for (const auto& [iova, region] : regions_) {
    total += region.bytes;
  }
  return total;
}

}  // namespace sud
