// DmaSpace: the dma_coherent / dma_caching device files (Figure 6).
//
// Per managed device, SUD exposes two mmap-able files that allocate
// anonymous memory "mapped at the same virtual address in both the driver's
// page table and the device's IOMMU page table". DmaSpace models exactly
// that contract: Alloc returns a region whose IOVA doubles as the driver's
// virtual address; the backing pages come from DRAM; and the mapping is
// installed in the device's IO page table at allocation time.
//
// The IOVA arena starts at 0x42430000 — matching the paper's Figure 9 dump,
// so an e1000e driver that allocates its TX ring, RX ring, TX buffers and
// RX buffers in probe order reproduces the published layout bit-for-bit.
//
// ReleaseAll() is the reclamation path behind "kill -9 and restart"
// (Section 4.1): it unmaps every region from the IOMMU and returns the pages.

#ifndef SUD_SRC_SUD_DMA_SPACE_H_
#define SUD_SRC_SUD_DMA_SPACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "src/base/status.h"
#include "src/hw/iommu.h"
#include "src/hw/phys_mem.h"

namespace sud {

inline constexpr uint64_t kDmaIovaBase = 0x42430000ull;

struct DmaRegion {
  uint64_t iova = 0;   // == the driver's virtual address for this memory
  uint64_t paddr = 0;
  uint64_t bytes = 0;
  bool coherent = false;
  // External regions map DRAM the caller owns (TX grant pages): Free and
  // ReleaseAll unmap them from the IOMMU but never return the pages.
  bool external = false;
  // Host pointer to the region's backing DRAM window, resolved once at Alloc
  // so the per-packet HostView is pure pointer arithmetic.
  uint8_t* host_base = nullptr;
};

class DmaSpace {
 public:
  DmaSpace(hw::PhysicalMemory* dram, hw::Iommu* iommu, uint16_t source_id,
           uint64_t iova_base = kDmaIovaBase)
      : dram_(dram), iommu_(iommu), source_id_(source_id), next_iova_(iova_base) {}

  ~DmaSpace() { ReleaseAll(); }

  DmaSpace(const DmaSpace&) = delete;
  DmaSpace& operator=(const DmaSpace&) = delete;

  // Allocates `bytes` (page-rounded), maps them read+write for the device,
  // and returns the region. `coherent` distinguishes the two device files;
  // both behave identically in the model (the distinction is a cache
  // attribute on real hardware).
  Result<DmaRegion> Alloc(uint64_t bytes, bool coherent);

  // Maps caller-owned DRAM pages (page-aligned `paddr`) into the device's IO
  // page table READ-ONLY and returns the grant region. This is the sealed TX
  // path: kernel frag pages become device-readable without a staging copy,
  // and read-only IS the seal — a driver-directed device write faults. The
  // pages are not owned: Free unmaps without returning them to DRAM.
  Result<DmaRegion> MapExternal(uint64_t paddr, uint64_t bytes);

  // Frees one region by IOVA (must match an Alloc or MapExternal).
  Status Free(uint64_t iova);

  // The driver's view of a region's memory (host pointer into DRAM).
  // Steady-state lookups hit a one-entry MRU region cache (packet paths call
  // this once or more per packet); only the first touch of a region walks
  // the region map. Thread-safe against concurrent lookups: multi-queue
  // packet paths resolve views from one thread per queue, and the region map
  // itself only changes at probe/teardown time (no concurrent Alloc/Free
  // against lookups — same contract as real dma_alloc_coherent vs the
  // datapath).
  Result<ByteSpan> HostView(uint64_t iova, uint64_t len);

  // Translate a driver virtual address (== IOVA) to the backing paddr.
  Result<uint64_t> IovaToPaddr(uint64_t iova) const;

  // Tears down every mapping and returns all pages: full reclamation.
  void ReleaseAll();

  const std::map<uint64_t, DmaRegion>& regions() const { return regions_; }
  uint16_t source_id() const { return source_id_; }
  // The device's IOMMU: the proxy seals/unseals delivered RX pages through it.
  hw::Iommu* iommu() const { return iommu_; }
  uint64_t total_bytes() const;

 private:
  const DmaRegion* FindRegion(uint64_t iova, uint64_t len) const;

  hw::PhysicalMemory* dram_;
  hw::Iommu* iommu_;
  uint16_t source_id_;
  uint64_t next_iova_;
  std::map<uint64_t, DmaRegion> regions_;  // keyed by iova
  // MRU cache of the last region FindRegion resolved (the region carries its
  // own host base); invalidated on Free/ReleaseAll. An atomic pointer rather
  // than a plain one: per-queue pump threads race on it, and a stale or torn
  // hint is harmless because every hit re-validates the range against the
  // (stable) region object.
  mutable std::atomic<const DmaRegion*> mru_region_{nullptr};
};

}  // namespace sud

#endif  // SUD_SRC_SUD_DMA_SPACE_H_
