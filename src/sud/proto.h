// Wire protocol between proxy drivers (kernel side) and SUD-UML (user side):
// the per-device-class upcall/downcall opcodes of Figure 7.
//
// Marshalling convention: scalars ride in UchanMsg::args, byte payloads in
// inline_data, and bulk data (packets, samples) in shared-pool buffers
// referenced by buffer_id/buffer_len.

#ifndef SUD_SRC_SUD_PROTO_H_
#define SUD_SRC_SUD_PROTO_H_

#include <cstdint>

#include "src/sud/safe_pci.h"

namespace sud {

// ---- Ethernet class ---------------------------------------------------------
// Queue discipline: with a sharded uchan (one ring pair per NIC queue),
// packet-path messages travel the shard of the queue they belong to — xmit
// upcalls on the TX queue's shard, netif_rx and free-buffer downcalls on the
// RX/TX queue's shard — while control traffic (open/stop/ioctl, register,
// carrier) rides shard 0. Kernel-side handlers trust the *shard* a message
// arrived on, never a queue index the driver marshalled.
//
// Upcalls (kernel -> driver).
inline constexpr uint32_t kEthUpOpen = kOpDeviceClassBase + 0;    // "net_open" (sync)
inline constexpr uint32_t kEthUpStop = kOpDeviceClassBase + 1;    // (sync)
// args[0]: TX queue the kernel steered the frame to (== the shard it rides).
inline constexpr uint32_t kEthUpXmit = kOpDeviceClassBase + 2;    // (async, shared buffer)
inline constexpr uint32_t kEthUpIoctl = kOpDeviceClassBase + 3;   // "ioctl" (sync)
// Scatter/gather transmit: ONE frame staged across multiple shared-pool
// buffers (the TX counterpart of kEthDownNetifRxChain). args[0]: TX queue;
// args[1]: fragment count; inline_data: that many (LE32 pool buffer id,
// LE32 length) records — 8 bytes each. The runtime re-validates every record
// against the pool — count vs payload vs kern::kMaxChainFrags, every id
// resolvable, every length within one buffer, the total within the jumbo
// maximum — before a single descriptor is armed.
inline constexpr uint32_t kEthUpXmitChain = kOpDeviceClassBase + 4;  // (async, shared buffers)
inline constexpr size_t kXmitChainFragBytes = 8;
// Downcalls (driver -> kernel).
// args[0]: number of TX/RX queues the driver services; args[1]: interface
// MTU (kernel-clamped; bounds every receive length check); args[2]: feature
// bits (kEthFeatureSg and friends, clamped kernel-side); mac inline.
inline constexpr uint32_t kEthDownRegisterNetdev = kOpDownDeviceClassBase + 0;
// Feature bits for kEthDownRegisterNetdev args[2].
inline constexpr uint64_t kEthFeatureSg = 1ull << 0;  // NETIF_F_SG
// args[0]: frame iova, args[1]: length. Delivered on the RX queue's shard.
inline constexpr uint32_t kEthDownNetifRx = kOpDownDeviceClassBase + 1;  // "netif_rx" (async, buffer)
inline constexpr uint32_t kEthDownSetCarrier = kOpDownDeviceClassBase + 2;  // args[0]: 0/1 (mirror)
// Unified layout: args[0]: id count, inline_data: that many little-endian
// int32 buffer ids. A single completion is a batch of one; a TX reap pass
// coalesces its whole sweep into one message. (The legacy empty-payload
// single-id layout is gone — one schema covers every free.)
inline constexpr uint32_t kEthDownFreeBuffer = kOpDownDeviceClassBase + 3;
inline constexpr size_t kFreeBufferIdBytes = 4;
// Static cap on one free batch (a reap pass can never legitimately carry
// more ids than this many pool buffers).
inline constexpr size_t kMaxFreeBufferIds = 1024;
// netif_rx for an EOP-chained multi-descriptor frame. args[0]: fragment
// count; inline_data: that many (LE64 iova, LE32 len) records — 12 bytes
// each. The kernel side re-validates EVERYTHING: the count against the
// payload and kern::kMaxChainFrags, every fragment against the driver's DMA
// space, and the total against the jumbo frame maximum; the reassembled
// frame is guard-copied fragment-by-fragment into one private skb.
inline constexpr uint32_t kEthDownNetifRxChain = kOpDownDeviceClassBase + 4;
inline constexpr size_t kNetifRxChainFragBytes = 12;

// ---- Wireless class ---------------------------------------------------------
inline constexpr uint32_t kWifiUpScan = kOpDeviceClassBase + 16;            // (sync)
inline constexpr uint32_t kWifiUpAssociate = kOpDeviceClassBase + 17;       // (sync, ssid inline)
inline constexpr uint32_t kWifiUpEnableFeatures = kOpDeviceClassBase + 18;  // (async! §3.1.1)
inline constexpr uint32_t kWifiDownRegister = kOpDownDeviceClassBase + 16;  // args[0]: supported features
inline constexpr uint32_t kWifiDownBssChange = kOpDownDeviceClassBase + 17; // "bss_change" args[0]: assoc
inline constexpr uint32_t kWifiDownSetBitrates = kOpDownDeviceClassBase + 18;  // rates inline (mirror)

// ---- Audio class ------------------------------------------------------------
inline constexpr uint32_t kAudioUpOpenStream = kOpDeviceClassBase + 32;   // (sync, PcmConfig in args)
inline constexpr uint32_t kAudioUpCloseStream = kOpDeviceClassBase + 33;  // (sync)
inline constexpr uint32_t kAudioUpWrite = kOpDeviceClassBase + 34;        // (async, shared buffer)
inline constexpr uint32_t kAudioDownRegister = kOpDownDeviceClassBase + 32;
inline constexpr uint32_t kAudioDownPeriodElapsed = kOpDownDeviceClassBase + 33;

// ---- USB host class ---------------------------------------------------------
// Figure 5: the USB host proxy needs no device-class-specific kernel code;
// the only traffic is generic (interrupt forwarding, interrupt_ack) plus
// input reports surfaced by function drivers.
inline constexpr uint32_t kUsbDownKeyEvent = kOpDownDeviceClassBase + 48;  // args[0]: usage code

// Scan-result marshalling for kWifiUpScan replies: each record is
// 6 (bssid) + 1 (channel) + 1 (signal) + 32 (ssid, NUL-padded) bytes.
inline constexpr size_t kWifiScanRecordBytes = 40;
inline constexpr size_t kMaxScanRecords = 64;
inline constexpr size_t kMaxSsidBytes = 32;
// kWifiDownSetBitrates payload: implicit-count LE32 rate records.
inline constexpr size_t kWifiBitrateBytes = 4;
inline constexpr size_t kMaxWifiBitrates = 64;

// Device-class messages defined above (Ethernet 5 up + 5 down, wireless
// 3 + 3, audio 3 + 2, USB 1). Every one must have a wire_schema registry
// entry — wire_schema.cc static_asserts on this count, so adding a message
// here without a schema fails the build. Bump when adding an opcode.
inline constexpr size_t kProtoMessageCount = 22;

}  // namespace sud

#endif  // SUD_SRC_SUD_PROTO_H_
