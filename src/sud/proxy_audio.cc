#include "src/sud/proxy_audio.h"

#include <cstring>

#include "src/base/log.h"

namespace sud {

AudioProxy::AudioProxy(kern::Kernel* kernel, SudDeviceContext* ctx)
    : kernel_(kernel), ctx_(ctx) {
  ctx_->set_downcall_handler(
      [this](UchanMsg& msg, uint16_t shard) { HandleDowncall(msg, shard); });
}

Status AudioProxy::OpenStream(const kern::PcmConfig& config) {
  UchanMsg msg;
  msg.opcode = kAudioUpOpenStream;
  msg.args[0] = config.rate_hz;
  msg.args[1] = config.channels;
  msg.args[2] = config.sample_bytes;
  msg.args[3] = config.period_bytes;
  msg.args[4] = config.buffer_bytes;
  Result<UchanMsg> reply = ctx_->ctl().SendSync(std::move(msg));
  if (!reply.ok()) {
    return reply.status();
  }
  if (reply.value().error != 0) {
    return Status(static_cast<ErrorCode>(reply.value().error), "driver failed to open stream");
  }
  return Status::Ok();
}

Status AudioProxy::CloseStream() {
  UchanMsg msg;
  msg.opcode = kAudioUpCloseStream;
  Result<UchanMsg> reply = ctx_->ctl().SendSync(std::move(msg));
  return reply.ok() ? Status::Ok() : reply.status();
}

Status AudioProxy::WriteSamples(ConstByteSpan samples) {
  CpuModel& cpu = kernel_->machine().cpu();
  size_t offset = 0;
  while (offset < samples.size()) {
    Result<int32_t> buffer_id = ctx_->pool().Alloc();
    if (!buffer_id.ok()) {
      ++stats_.write_dropped;
      return Status(ErrorCode::kQueueFull, "audio driver not consuming buffers");
    }
    Result<ByteSpan> buffer = ctx_->pool().Buffer(buffer_id.value());
    if (!buffer.ok()) {
      return buffer.status();
    }
    size_t chunk = std::min<size_t>(samples.size() - offset, buffer.value().size());
    std::memcpy(buffer.value().data(), samples.data() + offset, chunk);
    cpu.ChargeBytes(kAccountKernel, cpu.costs().per_byte_copy, chunk);

    UchanMsg msg;
    msg.opcode = kAudioUpWrite;
    msg.buffer_id = buffer_id.value();
    msg.buffer_len = static_cast<uint32_t>(chunk);
    Status status = ctx_->ctl().SendAsync(std::move(msg));
    if (!status.ok()) {
      ctx_->pool().Free(buffer_id.value());
      ++stats_.write_dropped;
      return status;
    }
    ++stats_.write_upcalls;
    offset += chunk;
  }
  return Status::Ok();
}

void AudioProxy::HandleDowncall(UchanMsg& msg, uint16_t shard) {
  // Schema-certify the shape before any handler parses a byte. Malformed
  // free-buffer batches are still tolerated: the ids the payload actually
  // carries are real completions, salvaged exactly like the ethernet proxy.
  wire::Malform verdict = wire::ValidateStructure(wire::Dir::kDown, msg, shard);
  if (verdict != wire::Malform::kNone) {
    wire_rejects_.Count(wire::Dir::kDown, msg.opcode);
    if (verdict != wire::Malform::kUnknownOpcode && msg.opcode == kEthDownFreeBuffer) {
      SUD_LOG(kAttack) << "audio proxy: malformed free-buffer batch, salvaging payload ids";
      size_t salvage = wire::FreeBufferPayloadCount(msg);
      for (size_t i = 0; i < salvage; ++i) {
        ctx_->pool().Free(wire::DecodeFreeBufferId(msg, i));
      }
      msg.error = 0;
      return;
    }
    if (verdict == wire::Malform::kUnknownOpcode) {
      SUD_LOG(kWarning) << "audio proxy: unknown downcall opcode " << msg.opcode;
    } else {
      SUD_LOG(kAttack) << "audio proxy: malformed downcall " << msg.opcode << " rejected ("
                       << wire::MalformName(verdict) << ")";
    }
    msg.error = static_cast<int32_t>(ErrorCode::kInvalidArgument);
    return;
  }
  switch (msg.opcode) {
    case kAudioDownRegister: {
      if (pcm_ != nullptr) {
        msg.error = 0;  // restarted driver re-registering
        return;
      }
      std::string name = kernel_->audio().NextName("pcm");
      Result<kern::PcmDevice*> pcm = kernel_->audio().Register(name, this);
      if (!pcm.ok()) {
        msg.error = static_cast<int32_t>(pcm.status().code());
        return;
      }
      pcm_ = pcm.value();
      msg.error = 0;
      return;
    }
    case kAudioDownPeriodElapsed:
      if (pcm_ != nullptr) {
        pcm_->NotifyPeriodElapsed();
        ++stats_.periods_notified;
      }
      msg.error = 0;
      return;
    case kEthDownFreeBuffer: {  // shared-pool buffer return (generic)
      size_t count = wire::FreeBufferCount(msg);
      for (size_t i = 0; i < count; ++i) {
        ctx_->pool().Free(wire::DecodeFreeBufferId(msg, i));
      }
      msg.error = 0;
      return;
    }
    case kOpInterruptAck:
      msg.error = static_cast<int32_t>(ctx_->InterruptAck().code());
      return;
    default:
      SUD_LOG(kWarning) << "audio proxy: unknown downcall opcode " << msg.opcode;
      msg.error = static_cast<int32_t>(ErrorCode::kInvalidArgument);
      return;
  }
}

}  // namespace sud
