// AudioProxy: the in-kernel sound-card proxy driver (550 lines in Figure 5).
//
// Translates the PCM subsystem's ops into uchan traffic: stream open/close
// as synchronous upcalls, sample writes as asynchronous upcalls over shared
// buffers, and period-elapsed notifications as downcalls from the driver.

#ifndef SUD_SRC_SUD_PROXY_AUDIO_H_
#define SUD_SRC_SUD_PROXY_AUDIO_H_

#include <string>

#include "src/kern/audio.h"
#include "src/kern/kernel.h"
#include "src/sud/proto.h"
#include "src/sud/safe_pci.h"
#include "src/sud/wire_schema.h"

namespace sud {

class AudioProxy : public kern::PcmOps {
 public:
  AudioProxy(kern::Kernel* kernel, SudDeviceContext* ctx);

  // kern::PcmOps
  Status OpenStream(const kern::PcmConfig& config) override;
  Status CloseStream() override;
  Status WriteSamples(ConstByteSpan samples) override;

  kern::PcmDevice* pcm() { return pcm_; }

  struct Stats {
    uint64_t write_upcalls = 0;
    uint64_t write_dropped = 0;
    uint64_t periods_notified = 0;
  };
  const Stats& stats() const { return stats_; }

  // Structural (wire-schema) rejections at the downcall boundary, per message.
  const wire::RejectStats& wire_rejects() const { return wire_rejects_; }

 private:
  void HandleDowncall(UchanMsg& msg, uint16_t shard);

  kern::Kernel* kernel_;
  SudDeviceContext* ctx_;
  kern::PcmDevice* pcm_ = nullptr;
  Stats stats_;
  wire::RejectStats wire_rejects_;
};

}  // namespace sud

#endif  // SUD_SRC_SUD_PROXY_AUDIO_H_
