#include "src/sud/proxy_ethernet.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "src/base/fault_injector.h"
#include "src/base/log.h"
#include "src/devices/ether_link.h"
#include "src/kern/net_limits.h"

namespace sud {

namespace {

// One sealed-TX frame's grant set: the read-only external IOMMU mapping plus
// the skb whose DRAM frag pages back it. Each grant chunk's release closure
// holds a shared_ptr, so the group — and with it the mapping and the pages —
// lives exactly until the driver has freed every chunk (TX reap), however the
// chunks interleave with other frames. The epoch guard keeps a post-crash
// destruction (the dead pool's slots being reaped) from touching the
// successor instance's IO space: quarantined grants unmap nothing, they are
// already gone with the dead context, and only the kernel pages get reclaimed
// (by the skb's own release hook).
struct TxGrantGroup {
  SudDeviceContext* ctx;
  uint64_t region_iova;
  uint32_t epoch;
  kern::SkbPtr skb;

  TxGrantGroup(SudDeviceContext* ctx, uint64_t region_iova, uint32_t epoch)
      : ctx(ctx), region_iova(region_iova), epoch(epoch) {}
  TxGrantGroup(const TxGrantGroup&) = delete;
  TxGrantGroup& operator=(const TxGrantGroup&) = delete;
  ~TxGrantGroup() {
    if (ctx->bind_generation() == epoch) {
      (void)ctx->dma().Free(region_iova);
    }
  }
};

}  // namespace

EthernetProxy::EthernetProxy(kern::Kernel* kernel, SudDeviceContext* ctx, Options options)
    : kernel_(kernel), ctx_(ctx), options_(options) {
  ctx_->set_downcall_handler(
      [this](UchanMsg& msg, uint16_t shard) { HandleDowncall(msg, shard); });
  ctx_->set_downcall_flush_handler([this](uint16_t shard) { DeliverRxBundle(shard); });
}

Status EthernetProxy::Open() {
  UchanMsg msg;
  msg.opcode = kEthUpOpen;
  Result<UchanMsg> reply = ctx_->ctl().SendSync(std::move(msg));
  if (!reply.ok()) {
    return reply.status();  // interrupted/timed out: ifconfig reports an error
  }
  if (reply.value().error != 0) {
    return Status(static_cast<ErrorCode>(reply.value().error), "driver open failed");
  }
  return Status::Ok();
}

Status EthernetProxy::Stop() {
  UchanMsg msg;
  msg.opcode = kEthUpStop;
  Result<UchanMsg> reply = ctx_->ctl().SendSync(std::move(msg));
  if (!reply.ok()) {
    return reply.status();
  }
  return Status::Ok();
}

void EthernetProxy::NoteXmitFull() {
  if (consecutive_full_.fetch_add(1, std::memory_order_relaxed) + 1 >=
      options_.hung_threshold) {
    stats_.hung_reports.fetch_add(1, std::memory_order_relaxed);
    SUD_LOG_RL(kWarning) << "ethernet driver not consuming buffers; reporting hung";
    consecutive_full_.store(0, std::memory_order_relaxed);
  }
}

// The MTU the interface actually gets for a driver-declared value: clamped
// by set_mtu (jumbo ceiling, like ndo_change_mtu) AND by what the TX staging
// pool can stage — one shared buffer for a single-buffer driver, a bounded
// chain of them for an SG driver. A driver claiming more would otherwise
// lure the stack into frames the transmit path must truncate.
uint32_t EthernetProxy::DeclaredMtu(uint64_t declared) const {
  uint64_t stage_bytes = ctx_->pool().buffer_bytes();
  if (driver_sg_) {
    stage_bytes *= kern::kMaxChainFrags;
  }
  uint64_t pool_cap = stage_bytes > kern::kEthHeaderBytes
                          ? stage_bytes - kern::kEthHeaderBytes
                          : kern::kEthMinFrameBytes;
  return static_cast<uint32_t>(std::min<uint64_t>(declared, pool_cap));
}

size_t EthernetProxy::StagedBufferIds(const UchanMsg& msg, int32_t* out) {
  if (msg.opcode == kEthUpXmitChain) {
    size_t count = wire::XmitChainCount(msg);
    for (size_t i = 0; i < count; ++i) {
      out[i] = wire::DecodeXmitFrag(msg, i).pool_id;
    }
    return count;
  }
  if (msg.buffer_id >= 0) {
    out[0] = msg.buffer_id;
    return 1;
  }
  return 0;
}

Status EthernetProxy::StageXmitChain(kern::SkbPtr& skb_ptr, UchanMsg* msg, uint16_t queue) {
  kern::Skb& skb = *skb_ptr;
  CpuModel& cpu = kernel_->machine().cpu();
  uint32_t buffer_bytes = ctx_->pool().buffer_bytes();
  size_t total = skb.total_len();
  // Sealed TX: DRAM-backed frags (page-cache pages the kernel owns) cross as
  // read-only grants — one external mapping spanning the frame's frag pages,
  // per-chunk grant handles in the ordinary chain records — instead of
  // staging copies. Read-only IS the seal: a driver-directed device write to
  // a granted page faults in the IOMMU. A mapping failure degrades to the
  // counted staging-copy fallback, never a dropped frame.
  std::shared_ptr<TxGrantGroup> group;
  uint64_t grant_lo = 0;
  if (options_.sealed_tx && skb.has_dram_frags()) {
    uint64_t lo = UINT64_MAX;
    uint64_t hi = 0;
    for (size_t i = 0; i < skb.nr_frags(); ++i) {
      uint64_t paddr = skb.tx_frag_paddr(i);
      if (paddr == 0) {
        continue;
      }
      lo = std::min(lo, hw::PageAlignDown(paddr));
      hi = std::max(hi, hw::PageAlignUp(paddr + skb.tx_frag(i).size()));
    }
    Result<DmaRegion> region = ctx_->dma().MapExternal(lo, hi - lo);
    if (region.ok()) {
      group = std::make_shared<TxGrantGroup>(ctx_, region.value().iova,
                                             ctx_->bind_generation());
      grant_lo = lo;
    } else {
      stats_.tx_grant_fallbacks.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Stage head then frags, chunking every segment by the pool buffer size —
  // per-fragment staging into STANDARD buffers, where the old path memcpy'd
  // the linearized frame into one oversized one. The record list is bounded
  // by the same chain cap the ring setup asserts — unreachable here, since
  // PrepareXmit pre-checks the geometry (linearizing over-fragmented skbs)
  // and the registration-time MTU clamp bounds the total — and a frame that
  // somehow cannot be expressed within it is dropped whole, never truncated.
  std::array<int32_t, kern::kMaxChainFrags> ids;
  std::array<uint32_t, kern::kMaxChainFrags> lens;
  size_t count = 0;
  size_t copied_bytes = 0;  // bytes that paid a staging memcpy
  Status staging = Status::Ok();
  auto stage_segment = [&](ConstByteSpan segment) {
    copied_bytes += segment.size();
    size_t off = 0;
    while (off < segment.size() && staging.ok()) {
      if (count >= kern::kMaxChainFrags) {
        stats_.xmit_dropped.fetch_add(1, std::memory_order_relaxed);
        staging = Status(ErrorCode::kInvalidArgument, "frame exceeds the staging chain cap");
        return;
      }
      Result<int32_t> buffer_id = ctx_->pool().Alloc();
      if (!buffer_id.ok()) {
        stats_.xmit_dropped.fetch_add(1, std::memory_order_relaxed);
        if (netdev_ != nullptr) {
          netdev_->stats().tx_no_buffer++;
        }
        NoteXmitFull();
        staging = Status(ErrorCode::kQueueFull, "no shared buffers (driver slow or hung)");
        return;
      }
      Result<ByteSpan> buffer = ctx_->pool().Buffer(buffer_id.value());
      if (!buffer.ok()) {
        ctx_->pool().Free(buffer_id.value());
        staging = buffer.status();
        return;
      }
      size_t chunk = segment.size() - off < buffer_bytes ? segment.size() - off : buffer_bytes;
      std::memcpy(buffer.value().data(), segment.data() + off, chunk);
      ids[count] = buffer_id.value();
      lens[count] = static_cast<uint32_t>(chunk);
      ++count;
      off += chunk;
    }
  };
  // Grant staging: same chunking, same records, no memcpy — the handle
  // resolves (driver-side, unchanged) to the granted IOVA inside the
  // frame's external mapping.
  auto grant_segment = [&](ConstByteSpan segment, uint64_t paddr) {
    size_t off = 0;
    while (off < segment.size() && staging.ok()) {
      if (count >= kern::kMaxChainFrags) {
        stats_.xmit_dropped.fetch_add(1, std::memory_order_relaxed);
        staging = Status(ErrorCode::kInvalidArgument, "frame exceeds the staging chain cap");
        return;
      }
      size_t chunk = segment.size() - off < buffer_bytes ? segment.size() - off : buffer_bytes;
      uint64_t iova = group->region_iova + (paddr + off - grant_lo);
      Result<int32_t> grant_id = ctx_->pool().GrantExternal(
          iova, static_cast<uint32_t>(chunk), [group]() mutable { group.reset(); });
      if (!grant_id.ok()) {
        stats_.xmit_dropped.fetch_add(1, std::memory_order_relaxed);
        staging = grant_id.status();
        return;
      }
      stats_.tx_grants.fetch_add(1, std::memory_order_relaxed);
      ids[count] = grant_id.value();
      lens[count] = static_cast<uint32_t>(chunk);
      ++count;
      off += chunk;
    }
  };
  stage_segment(skb.span());
  for (size_t i = 0; i < skb.nr_frags() && staging.ok(); ++i) {
    if (group != nullptr && skb.tx_frag_paddr(i) != 0) {
      grant_segment(skb.tx_frag(i), skb.tx_frag_paddr(i));
    } else {
      stage_segment(skb.tx_frag(i));
    }
  }
  if (!staging.ok()) {
    for (size_t i = 0; i < count; ++i) {
      // Freeing a minted grant fires its release closure: the group's
      // refcount unwinds with the ids, and the external mapping dies with
      // the local reference below.
      ctx_->pool().Free(ids[i]);
    }
    return staging;
  }
  if (count == 0) {
    stats_.xmit_dropped.fetch_add(1, std::memory_order_relaxed);
    return Status(ErrorCode::kInvalidArgument, "empty frame");
  }
  if (!options_.zero_copy) {
    // Ablation: model an intermediate bounce buffer (one extra pass).
    cpu.ChargeBytes(kAccountKernel, cpu.costs().per_byte_copy, total);
  }
  // One staging pass over the copied bytes — the same per-byte cost the
  // linear path charges, just scattered across the chain's buffers. Granted
  // bytes pay nothing: that is the copy this path deletes.
  cpu.ChargeBytes(kAccountKernel, cpu.costs().per_byte_copy, copied_bytes);

  wire::EncodeXmitChain(queue, ids.data(), lens.data(), count, static_cast<uint32_t>(total),
                        msg);
  stats_.xmit_chain_upcalls.fetch_add(1, std::memory_order_relaxed);
  if (group != nullptr && count > 0) {
    // The frag pages must outlive the device's reads: the frame's skb moves
    // into the grant group and dies when the last grant chunk is freed.
    group->skb = std::move(skb_ptr);
    stats_.tx_grant_frames.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::Ok();
}

// Chain records the skb's geometry would stage: each segment (head, then
// every frag) chunked by the pool buffer size.
size_t EthernetProxy::StagedChainRecords(const kern::Skb& skb) const {
  size_t buffer_bytes = ctx_->pool().buffer_bytes();
  size_t records = (skb.data_len() + buffer_bytes - 1) / buffer_bytes;
  for (size_t i = 0; i < skb.nr_frags(); ++i) {
    records += (skb.tx_frag(i).size() + buffer_bytes - 1) / buffer_bytes;
  }
  return records;
}

Status EthernetProxy::PrepareXmit(kern::SkbPtr& skb_ptr, UchanMsg* msg, uint16_t queue) {
  kern::Skb& skb = *skb_ptr;
  CpuModel& cpu = kernel_->machine().cpu();
  if (!skb.is_linear()) {
    if (driver_sg_ && StagedChainRecords(skb) <= kern::kMaxChainFrags) {
      return StageXmitChain(skb_ptr, msg, queue);
    }
    // Linearize fallback: non-SG drivers always, and — like the real stack
    // linearizing skbs over MAX_SKB_FRAGS — frames whose fragment geometry
    // (many tiny frags) would burst the chain cap even for an SG driver.
    // One extra charged full-frame pass, the copy the SG chain deletes.
    size_t linear_cap = ctx_->pool().buffer_bytes();
    if (driver_sg_) {
      linear_cap *= kern::kMaxChainFrags;  // re-chained by total size below
    }
    cpu.ChargeBytes(kAccountKernel, cpu.costs().per_byte_copy, skb.total_len());
    if (!skb.Linearize(linear_cap)) {
      stats_.xmit_dropped.fetch_add(1, std::memory_order_relaxed);
      return Status(ErrorCode::kInvalidArgument, "frame exceeds staging buffer");
    }
    if (netdev_ != nullptr) {
      netdev_->stats().tx_linearized++;
    }
  }
  if (skb.data_len() > ctx_->pool().buffer_bytes()) {
    if (driver_sg_) {
      // A linear frame larger than one buffer still chains for an SG driver.
      return StageXmitChain(skb_ptr, msg, queue);
    }
    // Never truncate: a frame one staging buffer cannot hold is dropped
    // whole (only reachable by handing the interface frames above its MTU —
    // the MTU itself is clamped to pool capacity at registration).
    stats_.xmit_dropped.fetch_add(1, std::memory_order_relaxed);
    return Status(ErrorCode::kInvalidArgument, "frame exceeds staging buffer");
  }
  Result<int32_t> buffer_id = ctx_->pool().Alloc();
  if (!buffer_id.ok()) {
    stats_.xmit_dropped.fetch_add(1, std::memory_order_relaxed);
    if (netdev_ != nullptr) {
      netdev_->stats().tx_no_buffer++;
    }
    NoteXmitFull();
    return Status(ErrorCode::kQueueFull, "no shared buffers (driver slow or hung)");
  }
  Result<ByteSpan> buffer = ctx_->pool().Buffer(buffer_id.value());
  if (!buffer.ok()) {
    // Freshly allocated id failed validation (torn-down pool): return the
    // buffer and count the drop — never a silent loss or a leaked buffer.
    ctx_->pool().Free(buffer_id.value());
    stats_.xmit_dropped.fetch_add(1, std::memory_order_relaxed);
    return buffer.status();
  }
  size_t len = skb.data_len();
  if (!options_.zero_copy) {
    // Ablation: model an intermediate bounce buffer (one extra pass).
    cpu.ChargeBytes(kAccountKernel, cpu.costs().per_byte_copy, len);
  }
  std::memcpy(buffer.value().data(), skb.data(), len);
  cpu.ChargeBytes(kAccountKernel, cpu.costs().per_byte_copy, len);

  msg->opcode = kEthUpXmit;
  msg->droppable = true;  // loss-tolerant data plane: fault-injection eligible
  msg->args[0] = queue;
  msg->buffer_id = buffer_id.value();
  msg->buffer_len = static_cast<uint32_t>(len);
  return Status::Ok();
}

Status EthernetProxy::StartXmit(kern::SkbPtr skb) {
  uint16_t queue =
      netdev_ != nullptr ? kern::FlowQueue(skb->span(), netdev_->num_queues()) : 0;
  UchanMsg msg;
  SUD_RETURN_IF_ERROR(PrepareXmit(skb, &msg, queue));
  // The ring consumes msg; keep just the ids for the failure path.
  int32_t staged[kern::kMaxChainFrags];
  size_t staged_count = StagedBufferIds(msg, staged);
  Status status = ctx_->ctl(queue).SendAsync(std::move(msg));
  if (!status.ok()) {
    for (size_t i = 0; i < staged_count; ++i) {
      ctx_->pool().Free(staged[i]);
    }
    stats_.xmit_dropped.fetch_add(1, std::memory_order_relaxed);
    if (status.code() == ErrorCode::kQueueFull) {
      NoteXmitFull();
    }
    return status;
  }
  consecutive_full_.store(0, std::memory_order_relaxed);
  stats_.xmit_upcalls.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

size_t EthernetProxy::StartXmitBatch(std::vector<kern::SkbPtr> skbs, uint16_t queue) {
  if (queue >= ctx_->num_queues()) {
    queue = 0;
  }
  // Stage every frame first, so the whole array crosses in one enqueue.
  std::vector<UchanMsg> msgs;
  msgs.reserve(skbs.size());
  Status staging = Status::Ok();
  for (kern::SkbPtr& skb : skbs) {
    UchanMsg msg;
    staging = PrepareXmit(skb, &msg, queue);
    if (!staging.ok()) {
      break;  // pool exhausted: the tail of the burst is dropped
    }
    msgs.push_back(std::move(msg));
  }
  if (staging.code() == ErrorCode::kQueueFull) {
    // Each frame behind the failing one would have hit the same empty pool:
    // account them like the per-packet path would (drop + hung detection).
    for (size_t rest = msgs.size() + 1; rest < skbs.size(); ++rest) {
      stats_.xmit_dropped.fetch_add(1, std::memory_order_relaxed);
      if (netdev_ != nullptr) {
        netdev_->stats().tx_no_buffer++;
      }
      NoteXmitFull();
    }
  } else if (!staging.ok() && msgs.size() + 1 < skbs.size()) {
    // Any other staging failure mid-burst also drops the unstaged tail:
    // count those frames too (the failing frame was counted in PrepareXmit).
    stats_.xmit_dropped.fetch_add(skbs.size() - msgs.size() - 1, std::memory_order_relaxed);
  }
  if (msgs.empty()) {
    return 0;
  }
  // Staged buffer ids captured before the ring consumes the messages: one
  // flat array plus a per-message count, so the failure paths can free
  // exactly the messages that never enqueued.
  size_t total_msgs = msgs.size();
  std::vector<int32_t> staged_ids;
  std::vector<uint32_t> staged_counts;
  staged_ids.reserve(total_msgs);
  staged_counts.reserve(total_msgs);
  int32_t scratch[kern::kMaxChainFrags];
  for (const UchanMsg& msg : msgs) {
    size_t count = StagedBufferIds(msg, scratch);
    staged_counts.push_back(static_cast<uint32_t>(count));
    staged_ids.insert(staged_ids.end(), scratch, scratch + count);
  }
  stats_.xmit_batches.fetch_add(1, std::memory_order_relaxed);
  Result<size_t> enqueued = ctx_->ctl(queue).SendAsyncBatch(std::move(msgs));
  if (!enqueued.ok()) {
    for (int32_t id : staged_ids) {
      ctx_->pool().Free(id);
    }
    stats_.xmit_dropped.fetch_add(total_msgs, std::memory_order_relaxed);
    return 0;
  }
  // Reclaim the buffers of the ring-full tail.
  size_t tail_start = 0;
  for (size_t i = 0; i < enqueued.value(); ++i) {
    tail_start += staged_counts[i];
  }
  for (size_t i = tail_start; i < staged_ids.size(); ++i) {
    ctx_->pool().Free(staged_ids[i]);
  }
  size_t dropped = total_msgs - enqueued.value();
  stats_.xmit_dropped.fetch_add(dropped, std::memory_order_relaxed);
  stats_.xmit_upcalls.fetch_add(enqueued.value(), std::memory_order_relaxed);
  if (dropped > 0) {
    NoteXmitFull();
  } else if (enqueued.value() > 0) {
    consecutive_full_.store(0, std::memory_order_relaxed);
  }
  return enqueued.value();
}

Result<std::string> EthernetProxy::Ioctl(uint32_t cmd) {
  UchanMsg msg;
  msg.opcode = kEthUpIoctl;
  msg.args[0] = cmd;
  Result<UchanMsg> reply = ctx_->ctl().SendSync(std::move(msg));
  if (!reply.ok()) {
    return reply.status();
  }
  if (reply.value().error != 0) {
    return Status(static_cast<ErrorCode>(reply.value().error), "ioctl failed in driver");
  }
  return std::string(reply.value().inline_data.begin(), reply.value().inline_data.end());
}

void EthernetProxy::OnDriverRestart() {
  consecutive_full_.store(0, std::memory_order_relaxed);
  // The replacement driver binds a FRESH uchan set whose seqs restart at 1:
  // the dedup watermarks must restart with them.
  last_rx_seq_.fill(0);
  for (auto& bundle : rx_bundle_) {
    // Packets whose NAPI flush died with the driver: dropping them here is
    // part of the bounded, counted crash loss. Guard copies are private
    // skbs; sealed (extern) skbs fire their release hooks right here, and
    // the epoch guard in ReleaseSealedPages turns each into a counted
    // quarantine instead of an unseal into the dead context's IO space.
    bundle.clear();
  }
}

void EthernetProxy::HandleDowncall(UchanMsg& msg, uint16_t shard) {
  // Schema-certify the shape (opcode known, control lane on shard 0, args in
  // their static bounds, payload well-formed, MAC exactly six bytes) before
  // any handler parses a byte. Semantic checks — DMA-space lookups, the
  // interface's declared MTU, queue-count clamps — stay in the handlers
  // below, with their historical counters.
  wire::Malform verdict = wire::ValidateStructure(wire::Dir::kDown, msg, shard);
  if (verdict != wire::Malform::kNone) {
    RejectDowncall(msg, shard, verdict);
    return;
  }
  switch (msg.opcode) {
    case kEthDownRegisterNetdev: {
      // The driver's advertised queue count, clamped to the shards the
      // kernel actually exported: a malicious count cannot grow the
      // attack surface.
      uint16_t queues = static_cast<uint16_t>(msg.args[0]);
      if (queues == 0) {
        queues = 1;
      }
      if (queues > ctx_->num_queues()) {
        if (netdev_ != nullptr) {
          netdev_->stats().driver_errors++;
        }
        SUD_LOG(kAttack) << "register_netdev claims " << queues
                         << " queues but the device context has " << ctx_->num_queues();
        queues = static_cast<uint16_t>(ctx_->num_queues());
      }
      // Feature bits: only bits the kernel knows are honoured; everything
      // else a driver claims is ignored.
      driver_sg_ = (msg.args[2] & kEthFeatureSg) != 0;
      // A register_netdev marks a new driver generation speaking a freshly
      // bound uchan whose seqs restart at 1 — the netif_rx dedup watermarks
      // must restart with it. The supervisor's OnDriverRestart also resets
      // them, but an administrator's manual kill+start bypasses it.
      last_rx_seq_.fill(0);
      if (netdev_ != nullptr) {
        // A restarted driver re-registering: keep the existing interface and
        // refresh the MAC (shadow-driver-style recovery, Section 2).
        netdev_->set_dev_addr(msg.inline_data.data());
        netdev_->set_num_queues(queues);
        netdev_->set_sg(driver_sg_);
        netdev_->set_mtu(DeclaredMtu(msg.args[1]));
        msg.error = 0;
        return;
      }
      std::string name = kernel_->net().NextName("eth");
      Result<kern::NetDevice*> netdev =
          kernel_->net().RegisterNetdev(name, msg.inline_data.data(), this);
      if (!netdev.ok()) {
        msg.error = static_cast<int32_t>(netdev.status().code());
        return;
      }
      netdev_ = netdev.value();
      netdev_->set_num_queues(queues);
      netdev_->set_sg(driver_sg_);
      netdev_->set_mtu(DeclaredMtu(msg.args[1]));
      msg.error = 0;
      return;
    }
    case kEthDownNetifRx:
      HandleNetifRx(msg, shard);
      return;
    case kEthDownNetifRxChain:
      HandleNetifRxChain(msg, shard);
      return;
    case kEthDownSetCarrier:
      // Shared-memory mirror update (Section 3.3): ordered with respect to
      // other control downcalls because it travels the same (control) shard.
      if (netdev_ != nullptr) {
        netdev_->set_carrier(msg.args[0] != 0);
      }
      msg.error = 0;
      return;
    case kEthDownFreeBuffer:
      HandleFreeBuffer(msg);
      return;
    case kOpInterruptAck:
      // The ack is for the queue whose shard carried it — not for a queue
      // index the driver could lie about.
      msg.error = static_cast<int32_t>(ctx_->InterruptAck(shard).code());
      return;
    case kOpRequestRegion:
      msg.error = static_cast<int32_t>(ctx_->RequestIoRegion().code());
      return;
    default:
      SUD_LOG(kWarning) << "ethernet proxy: unknown downcall opcode " << msg.opcode;
      msg.error = static_cast<int32_t>(ErrorCode::kInvalidArgument);
      return;
  }
}

void EthernetProxy::HandleFreeBuffer(UchanMsg& msg) {
  // Unified layout, schema-certified: args[0] ids in the payload (one
  // message per TX reap pass; a single completion is a batch of one).
  size_t count = wire::FreeBufferCount(msg);
  if (count > 1) {
    stats_.free_batches.fetch_add(1, std::memory_order_relaxed);
  }
  for (size_t i = 0; i < count; ++i) {
    // Bogus ids are tolerated and counted by the pool (double_frees).
    ctx_->pool().Free(wire::DecodeFreeBufferId(msg, i));
  }
  msg.error = 0;
}

bool EthernetProxy::RxDowncallProlog(UchanMsg& msg, uint16_t shard, bool chain) {
  if (msg.seq != 0 && msg.seq <= last_rx_seq_[shard]) {
    // Duplicated delivery (channel fault or replay): the shard's seqs are
    // strictly increasing, so a non-advancing one was already handled.
    stats_.rx_dups_rejected.fetch_add(1, std::memory_order_relaxed);
    msg.error = 0;  // tolerated, not a downcall failure
    return false;
  }
  last_rx_seq_[shard] = msg.seq;
  stats_.rx_downcalls.fetch_add(1, std::memory_order_relaxed);
  if (chain) {
    stats_.rx_chain_downcalls.fetch_add(1, std::memory_order_relaxed);
  }
  if (netdev_ == nullptr) {
    msg.error = static_cast<int32_t>(ErrorCode::kUnavailable);
    return false;
  }
  return true;
}

void EthernetProxy::RejectDowncall(UchanMsg& msg, uint16_t shard, wire::Malform verdict) {
  wire_rejects_.Count(wire::Dir::kDown, msg.opcode);
  if (verdict == wire::Malform::kUnknownOpcode) {
    SUD_LOG(kWarning) << "ethernet proxy: unknown downcall opcode " << msg.opcode;
    msg.error = static_cast<int32_t>(ErrorCode::kInvalidArgument);
    return;
  }
  switch (msg.opcode) {
    case kEthDownNetifRx:
    case kEthDownNetifRxChain: {
      // A structurally malformed delivery leaves the same books behind as a
      // semantically rejected one always did: the dedup watermark advances,
      // the downcall counters bump, and the attack lands in the historical
      // rx_bad_* counter.
      bool chain = msg.opcode == kEthDownNetifRxChain;
      if (!RxDowncallProlog(msg, shard, chain)) {
        return;
      }
      if (chain) {
        stats_.rx_bad_chain.fetch_add(1, std::memory_order_relaxed);
      } else {
        stats_.rx_bad_buffer_id.fetch_add(1, std::memory_order_relaxed);
      }
      netdev_->stats().driver_errors++;
      SUD_LOG(kAttack) << "netif_rx" << (chain ? " chain" : "")
                       << " downcall structurally malformed ("
                       << wire::MalformName(verdict) << ")";
      msg.error = static_cast<int32_t>(ErrorCode::kInvalidArgument);
      return;
    }
    case kEthDownFreeBuffer: {
      // Tolerate-and-salvage: a count that disagrees with the payload is a
      // malformed (malicious) message, but the ids the payload actually
      // carries are real completions — free them or the pool leaks on the
      // driver's word alone.
      if (netdev_ != nullptr) {
        netdev_->stats().driver_errors++;
      }
      SUD_LOG(kAttack) << "free-buffer batch count " << msg.args[0]
                       << " disagrees with payload (" << wire::FreeBufferPayloadCount(msg)
                       << " ids)";
      stats_.free_batches.fetch_add(1, std::memory_order_relaxed);
      size_t salvage = wire::FreeBufferPayloadCount(msg);
      for (size_t i = 0; i < salvage; ++i) {
        ctx_->pool().Free(wire::DecodeFreeBufferId(msg, i));
      }
      msg.error = 0;
      return;
    }
    default:
      SUD_LOG(kAttack) << "ethernet proxy: malformed downcall " << msg.opcode << " rejected ("
                       << wire::MalformName(verdict) << ")";
      msg.error = static_cast<int32_t>(ErrorCode::kInvalidArgument);
      return;
  }
}

void EthernetProxy::HandleNetifRx(UchanMsg& msg, uint16_t shard) {
  if (!RxDowncallProlog(msg, shard, /*chain=*/false)) {
    return;
  }
  // The downcall carries (iova, len) into the driver's own DMA space: the
  // packet sits in the RX buffer the device DMA'd it into (zero-copy,
  // Section 3.1.2). Anything outside the driver's mappings — kernel
  // addresses, other devices' buffers, absurd lengths — is rejected here,
  // never dereferenced.
  uint64_t iova = msg.args[0];
  uint32_t len = static_cast<uint32_t>(msg.args[1]);
  if (len == 0 || len > netdev_->max_frame_bytes()) {
    stats_.rx_bad_buffer_id.fetch_add(1, std::memory_order_relaxed);
    netdev_->stats().driver_errors++;
    SUD_LOG(kAttack) << "netif_rx downcall with bogus length " << len << " from driver";
    msg.error = static_cast<int32_t>(ErrorCode::kInvalidArgument);
    return;
  }
  Result<ByteSpan> buffer = ctx_->dma().HostView(iova, len);
  if (!buffer.ok()) {
    stats_.rx_bad_buffer_id.fetch_add(1, std::memory_order_relaxed);
    netdev_->stats().driver_errors++;
    SUD_LOG(kAttack) << "netif_rx downcall with address outside the driver's dma space";
    msg.error = static_cast<int32_t>(ErrorCode::kInvalidArgument);
    return;
  }
  ByteSpan shared = buffer.value();
  CpuModel& cpu = kernel_->machine().cpu();

  bool force_guard = false;
  if (options_.sealed_delivery) {
    if (TrySealedDeliver(iova, shared, shard)) {
      msg.error = 0;  // rejection by checksum is not a downcall failure
      return;
    }
    // The seal did not happen (unaligned buffer, injected or genuine
    // failure): degrade to the guard copy — counted, and FORCED even in the
    // vulnerable ablation, so a failed seal never turns into an unverified
    // shared-byte delivery.
    stats_.sealed_fallback_copies.fetch_add(1, std::memory_order_relaxed);
    force_guard = true;
  }
  kern::SkbPtr skb;
  if (options_.guard_copy || force_guard) {
    // Safe ordering: copy out of shared memory *first*, then let the stack
    // filter the private copy. The copy is fused with the checksum pass both
    // in the model (one charged pass, Section 3.1.2) and on the simulator's
    // own clock: AssignAndVerifyChecksum copies and sums in a single
    // traversal, and the stack skips its (redundant) checksum pass for skbs
    // the proxy already verified.
    skb = std::make_unique<kern::Skb>();
    bool checksum_ok = skb->AssignAndVerifyChecksum(ConstByteSpan(shared.data(), shared.size()));
    stats_.guard_copies.fetch_add(1, std::memory_order_relaxed);
    if (options_.fuse_guard_with_checksum) {
      cpu.ChargeBytes(kAccountKernel, cpu.costs().per_byte_checksum, shared.size());
    } else {
      cpu.ChargeBytes(kAccountKernel,
                      cpu.costs().per_byte_copy + cpu.costs().per_byte_checksum, shared.size());
    }
    if (toctou_hook_) {
      // Attacker rewrites the shared buffer now — too late, we own a copy.
      toctou_hook_(shared);
    }
    size_t frame_bytes = skb->data_len();
    FinishRxSkb(std::move(skb), checksum_ok, frame_bytes, shard);
    msg.error = 0;  // rejection by firewall/checksum is not a downcall failure
    return;
  } else {
    // VULNERABLE ordering (ablation/attack demonstration): verdict computed
    // over live shared memory, then the attacker flips it, then we copy.
    kern::PacketView pre_view{ConstByteSpan(shared.data(), shared.size())};
    cpu.ChargeBytes(kAccountKernel, cpu.costs().per_byte_checksum, shared.size());
    if (!pre_view.valid() || !pre_view.ChecksumOk() ||
        !kernel_->net().firewall().Accept(pre_view)) {
      netdev_->stats().rx_dropped++;
      msg.error = 0;  // packet dropped; not a driver error
      return;
    }
    if (toctou_hook_) {
      toctou_hook_(shared);  // attacker wins the race
    }
    skb = kern::MakeSkb(ConstByteSpan(shared.data(), shared.size()));
    cpu.ChargeBytes(kAccountKernel, cpu.costs().per_byte_copy, shared.size());
    // Deliver directly, bypassing the second check (that is the bug this
    // configuration demonstrates).
    skb->checksum_verified = true;
    netdev_->stats().rx_packets++;
    if (netdev_->rx_sink()) {
      netdev_->rx_sink()(*skb);
    }
    msg.error = 0;
    return;
  }
}

bool EthernetProxy::TrySealedDeliver(uint64_t iova, ByteSpan shared, uint16_t shard) {
  // Page-granular revocation needs page-isolated RX buffers: a seal covering
  // a neighbouring in-flight buffer's bytes would block the device's own
  // writes to it. Only page-aligned deliveries qualify (the single-queue
  // 16 KB arena layout; an 8-queue arena's 2 KB buffers never will).
  if (!hw::IsPageAligned(iova)) {
    return false;
  }
  // Injected seal failure (fault site "iommu.seal"): nothing sealed, nothing
  // delivered — the caller degrades to the counted guard-copy fallback.
  if (SUD_FAULT_POINT("iommu.seal")) {
    return false;
  }
  hw::Iommu* iommu = ctx_->dma().iommu();
  uint16_t source = ctx_->source_id();
  uint32_t epoch = ctx_->bind_generation();
  uint64_t len = hw::PageAlignUp(shared.size());
  {
    std::lock_guard<std::mutex> lock(seal_mu_);
    Status sealed = iommu->SealWrite(source, iova, len);
    if (!sealed.ok()) {
      return false;
    }
    for (uint64_t off = 0; off < len; off += hw::kPageSize) {
      SealRef& ref = sealed_pages_[iova + off];
      ++ref.refs;
      ref.epoch = epoch;
    }
  }
  auto skb = std::make_unique<kern::Skb>();
  skb->AssignExtern(shared.data(), shared.size(),
                    [this, iova, len, epoch] { ReleaseSealedPages(iova, len, epoch); });
  if (toctou_hook_) {
    // The verdict window, adversarially: the attacker fires its rewrite NOW,
    // between the seal and the checksum — and hits the seal instead of the
    // verdict. (The guard-copy path survives this by owning a copy; this
    // path survives it by revocation.)
    toctou_hook_(shared);
  }
  // Verify the transport checksum IN PLACE over the sealed bytes. The seal
  // replaces the private copy as the TOCTOU guarantee, so the charged pass
  // is checksum-only — exactly what the fused guard copy charged. The copy
  // itself is what this path deletes.
  bool checksum_ok = skb->VerifyChecksumPrivate();
  CpuModel& cpu = kernel_->machine().cpu();
  cpu.ChargeBytes(kAccountKernel, cpu.costs().per_byte_checksum, shared.size());
  stats_.sealed_deliveries.fetch_add(1, std::memory_order_relaxed);
  size_t frame_bytes = skb->data_len();
  FinishRxSkb(std::move(skb), checksum_ok, frame_bytes, shard);
  return true;
}

void EthernetProxy::ReleaseSealedPages(uint64_t base, uint64_t len, uint32_t epoch) {
  std::lock_guard<std::mutex> lock(seal_mu_);
  for (uint64_t off = 0; off < len; off += hw::kPageSize) {
    uint64_t page = base + off;
    auto it = sealed_pages_.find(page);
    if (it == sealed_pages_.end() || it->second.epoch != epoch) {
      continue;  // a fresh epoch owns this page now; not ours to touch
    }
    if (--it->second.refs > 0) {
      continue;  // another live skb still references the page
    }
    sealed_pages_.erase(it);
    if (ctx_->bind_generation() != epoch) {
      // The epoch quarantine, extended to seals: this skb outlived its
      // driver instance. The dead context's IO space is already reclaimed
      // (or a successor's is live in its place) — crash-reap never unseals
      // across the epoch.
      stats_.sealed_quarantined.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Status unsealed = ctx_->dma().iommu()->UnsealWrite(ctx_->source_id(), page, hw::kPageSize);
    if (!unsealed.ok()) {
      // Same-generation teardown window (driver killed, successor not yet
      // bound): the IOMMU context is gone and the page leaves quarantined.
      stats_.sealed_quarantined.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void EthernetProxy::FinishRxSkb(kern::SkbPtr skb, bool checksum_ok, size_t frame_bytes,
                                uint16_t shard) {
  CpuModel& cpu = kernel_->machine().cpu();
  cpu.Charge(kAccountKernel, cpu.costs().skb_alloc + cpu.costs().stack_work_per_pkt);
  if (!checksum_ok) {
    // Same drop accounting the stack's own pass would have applied (the
    // skb_alloc + stack charge above still applies first, as it did when
    // these packets died inside NetifRx).
    if (frame_bytes < kern::kPacketMinSize) {
      netdev_->stats().rx_dropped++;
      netdev_->stats().driver_errors++;
      SUD_LOG_RL(kWarning) << netdev_->name() << ": driver delivered runt packet, dropping";
    } else {
      netdev_->stats().rx_bad_checksum++;
      netdev_->stats().rx_dropped++;
    }
    return;
  }
  // NAPI-style: the private copy joins the shard's poll bundle; the whole
  // array enters the stack once, at the end of this kernel entry.
  rx_bundle_[shard].push_back(std::move(skb));
}

void EthernetProxy::HandleNetifRxChain(UchanMsg& msg, uint16_t shard) {
  if (!RxDowncallProlog(msg, shard, /*chain=*/true)) {
    return;
  }
  // The schema certified the chain's SHAPE (count vs payload vs the chain
  // cap, per-fragment lengths, the jumbo total). The fragment list is still
  // driver-marshalled: re-validate the SEMANTIC facts — every fragment
  // within the driver's own DMA space, the total within the INTERFACE's
  // maximum frame (the MTU the driver declared at registration, not the
  // global jumbo ceiling: a standard-MTU interface rejects jumbo-sized
  // chains outright) — before a single byte is copied.
  auto reject = [&](const char* why) {
    stats_.rx_bad_chain.fetch_add(1, std::memory_order_relaxed);
    netdev_->stats().driver_errors++;
    SUD_LOG(kAttack) << "netif_rx chain rejected: " << why;
    msg.error = static_cast<int32_t>(ErrorCode::kInvalidArgument);
  };
  size_t count = wire::RxChainCount(msg);
  size_t max_frame = netdev_->max_frame_bytes();
  ByteSpan views[kern::kMaxChainFrags];
  uint64_t total = 0;
  for (size_t i = 0; i < count; ++i) {
    wire::RxFrag frag = wire::DecodeRxFrag(msg, i);
    total += frag.len;
    if (total > max_frame) {
      reject("fragment lengths exceed the interface frame maximum");
      return;
    }
    Result<ByteSpan> view = ctx_->dma().HostView(frag.iova, frag.len);
    if (!view.ok()) {
      reject("fragment outside the driver's dma space");
      return;
    }
    views[i] = view.value();
  }
  CpuModel& cpu = kernel_->machine().cpu();
  // Guard copy, fragment by fragment, into ONE private skb — the copy
  // happens before any verdict, exactly like the single-descriptor path
  // (chains always guard-copy; the vulnerable check-then-copy ablation
  // models the legacy single-frame path only). The checksum runs over the
  // assembled private copy and is charged as the fused pass.
  auto skb = std::make_unique<kern::Skb>();
  for (size_t i = 0; i < count; ++i) {
    if (!skb->AppendFrag(ConstByteSpan(views[i].data(), views[i].size()), max_frame)) {
      reject("assembled chain exceeds the interface frame maximum");
      return;
    }
  }
  bool checksum_ok = skb->VerifyChecksumPrivate();
  stats_.guard_copies.fetch_add(1, std::memory_order_relaxed);
  if (options_.fuse_guard_with_checksum) {
    cpu.ChargeBytes(kAccountKernel, cpu.costs().per_byte_checksum, total);
  } else {
    cpu.ChargeBytes(kAccountKernel,
                    cpu.costs().per_byte_copy + cpu.costs().per_byte_checksum, total);
  }
  if (toctou_hook_) {
    // Attacker rewrites the shared fragments now — too late, we own a copy.
    toctou_hook_(views[0]);
  }
  FinishRxSkb(std::move(skb), checksum_ok, static_cast<size_t>(total), shard);
  msg.error = 0;  // a dropped packet is not a downcall failure
}

void EthernetProxy::DeliverRxBundle(uint16_t shard) {
  if (rx_bundle_[shard].empty() || netdev_ == nullptr) {
    return;
  }
  std::vector<kern::SkbPtr> bundle;
  bundle.swap(rx_bundle_[shard]);
  stats_.rx_bundles.fetch_add(1, std::memory_order_relaxed);
  if (hold_rx_.load(std::memory_order_relaxed)) {
    // Test seam: the modeled socket queue retains the delivery — sealed skbs
    // stay alive (and their pages sealed) past this kernel entry.
    std::lock_guard<std::mutex> lock(hold_mu_);
    for (kern::SkbPtr& skb : bundle) {
      held_rx_.push_back(std::move(skb));
    }
    return;
  }
  (void)kernel_->net().NetifRxBatch(netdev_, std::move(bundle), shard);
  if (options_.sealed_delivery) {
    // Skbs died inside the batch; their unseals queued their IOTLB
    // invalidations (when the IOMMU batches). One sync here amortizes the
    // shootdown over the whole NAPI bundle — the Section 6 answer to the
    // per-packet invalidation cost that made the paper pick the copy.
    ctx_->dma().iommu()->SyncInvalidations();
  }
}

}  // namespace sud
