#include "src/sud/proxy_ethernet.h"

#include <cstring>

#include "src/base/log.h"
#include "src/devices/ether_link.h"

namespace sud {

EthernetProxy::EthernetProxy(kern::Kernel* kernel, SudDeviceContext* ctx, Options options)
    : kernel_(kernel), ctx_(ctx), options_(options) {
  ctx_->set_downcall_handler([this](UchanMsg& msg) { HandleDowncall(msg); });
  ctx_->set_downcall_flush_handler([this]() { DeliverRxBundle(); });
}

Status EthernetProxy::Open() {
  UchanMsg msg;
  msg.opcode = kEthUpOpen;
  Result<UchanMsg> reply = ctx_->ctl().SendSync(std::move(msg));
  if (!reply.ok()) {
    return reply.status();  // interrupted/timed out: ifconfig reports an error
  }
  if (reply.value().error != 0) {
    return Status(static_cast<ErrorCode>(reply.value().error), "driver open failed");
  }
  return Status::Ok();
}

Status EthernetProxy::Stop() {
  UchanMsg msg;
  msg.opcode = kEthUpStop;
  Result<UchanMsg> reply = ctx_->ctl().SendSync(std::move(msg));
  if (!reply.ok()) {
    return reply.status();
  }
  return Status::Ok();
}

void EthernetProxy::NoteXmitFull() {
  if (++consecutive_full_ >= options_.hung_threshold) {
    ++stats_.hung_reports;
    SUD_LOG(kWarning) << "ethernet driver not consuming buffers; reporting hung";
    consecutive_full_ = 0;
  }
}

Status EthernetProxy::PrepareXmit(const kern::Skb& skb, UchanMsg* msg) {
  CpuModel& cpu = kernel_->machine().cpu();
  Result<int32_t> buffer_id = ctx_->pool().Alloc();
  if (!buffer_id.ok()) {
    ++stats_.xmit_dropped;
    NoteXmitFull();
    return Status(ErrorCode::kQueueFull, "no shared buffers (driver slow or hung)");
  }
  Result<ByteSpan> buffer = ctx_->pool().Buffer(buffer_id.value());
  if (!buffer.ok()) {
    return buffer.status();
  }
  size_t len = std::min<size_t>(skb.data_len(), buffer.value().size());
  if (!options_.zero_copy) {
    // Ablation: model an intermediate bounce buffer (one extra pass).
    cpu.ChargeBytes(kAccountKernel, cpu.costs().per_byte_copy, len);
  }
  std::memcpy(buffer.value().data(), skb.data(), len);
  cpu.ChargeBytes(kAccountKernel, cpu.costs().per_byte_copy, len);

  msg->opcode = kEthUpXmit;
  msg->buffer_id = buffer_id.value();
  msg->buffer_len = static_cast<uint32_t>(len);
  return Status::Ok();
}

Status EthernetProxy::StartXmit(kern::SkbPtr skb) {
  UchanMsg msg;
  SUD_RETURN_IF_ERROR(PrepareXmit(*skb, &msg));
  int32_t buffer_id = msg.buffer_id;
  Status status = ctx_->ctl().SendAsync(std::move(msg));
  if (!status.ok()) {
    ctx_->pool().Free(buffer_id);
    ++stats_.xmit_dropped;
    if (status.code() == ErrorCode::kQueueFull) {
      NoteXmitFull();
    }
    return status;
  }
  consecutive_full_ = 0;
  ++stats_.xmit_upcalls;
  return Status::Ok();
}

size_t EthernetProxy::StartXmitBatch(std::vector<kern::SkbPtr> skbs) {
  // Stage every frame first, so the whole array crosses in one enqueue.
  std::vector<UchanMsg> msgs;
  msgs.reserve(skbs.size());
  Status staging = Status::Ok();
  for (kern::SkbPtr& skb : skbs) {
    UchanMsg msg;
    staging = PrepareXmit(*skb, &msg);
    if (!staging.ok()) {
      break;  // pool exhausted: the tail of the burst is dropped
    }
    msgs.push_back(std::move(msg));
  }
  if (staging.code() == ErrorCode::kQueueFull) {
    // Each frame behind the failing one would have hit the same empty pool:
    // account them like the per-packet path would (drop + hung detection).
    for (size_t rest = msgs.size() + 1; rest < skbs.size(); ++rest) {
      ++stats_.xmit_dropped;
      NoteXmitFull();
    }
  }
  if (msgs.empty()) {
    return 0;
  }
  std::vector<int32_t> buffer_ids;
  buffer_ids.reserve(msgs.size());
  for (const UchanMsg& msg : msgs) {
    buffer_ids.push_back(msg.buffer_id);
  }
  ++stats_.xmit_batches;
  Result<size_t> enqueued = ctx_->ctl().SendAsyncBatch(std::move(msgs));
  if (!enqueued.ok()) {
    for (int32_t id : buffer_ids) {
      ctx_->pool().Free(id);
    }
    stats_.xmit_dropped += buffer_ids.size();
    return 0;
  }
  // Reclaim the buffers of the ring-full tail.
  for (size_t i = enqueued.value(); i < buffer_ids.size(); ++i) {
    ctx_->pool().Free(buffer_ids[i]);
  }
  size_t dropped = buffer_ids.size() - enqueued.value();
  stats_.xmit_dropped += dropped;
  stats_.xmit_upcalls += enqueued.value();
  if (dropped > 0) {
    NoteXmitFull();
  } else if (enqueued.value() > 0) {
    consecutive_full_ = 0;
  }
  return enqueued.value();
}

Result<std::string> EthernetProxy::Ioctl(uint32_t cmd) {
  UchanMsg msg;
  msg.opcode = kEthUpIoctl;
  msg.args[0] = cmd;
  Result<UchanMsg> reply = ctx_->ctl().SendSync(std::move(msg));
  if (!reply.ok()) {
    return reply.status();
  }
  if (reply.value().error != 0) {
    return Status(static_cast<ErrorCode>(reply.value().error), "ioctl failed in driver");
  }
  return std::string(reply.value().inline_data.begin(), reply.value().inline_data.end());
}

void EthernetProxy::HandleDowncall(UchanMsg& msg) {
  switch (msg.opcode) {
    case kEthDownRegisterNetdev: {
      if (msg.inline_data.size() != 6) {
        msg.error = static_cast<int32_t>(ErrorCode::kInvalidArgument);
        return;
      }
      if (netdev_ != nullptr) {
        // A restarted driver re-registering: keep the existing interface and
        // refresh the MAC (shadow-driver-style recovery, Section 2).
        netdev_->set_dev_addr(msg.inline_data.data());
        msg.error = 0;
        return;
      }
      std::string name = kernel_->net().NextName("eth");
      Result<kern::NetDevice*> netdev =
          kernel_->net().RegisterNetdev(name, msg.inline_data.data(), this);
      if (!netdev.ok()) {
        msg.error = static_cast<int32_t>(netdev.status().code());
        return;
      }
      netdev_ = netdev.value();
      msg.error = 0;
      return;
    }
    case kEthDownNetifRx:
      HandleNetifRx(msg);
      return;
    case kEthDownSetCarrier:
      // Shared-memory mirror update (Section 3.3): ordered with respect to
      // other downcalls because it travels the same ring.
      if (netdev_ != nullptr) {
        netdev_->set_carrier(msg.args[0] != 0);
      }
      msg.error = 0;
      return;
    case kEthDownFreeBuffer:
      ctx_->pool().Free(static_cast<int32_t>(msg.args[0]));
      msg.error = 0;
      return;
    case kOpInterruptAck:
      msg.error = static_cast<int32_t>(ctx_->InterruptAck().code());
      return;
    case kOpRequestRegion:
      msg.error = static_cast<int32_t>(ctx_->RequestIoRegion().code());
      return;
    default:
      SUD_LOG(kWarning) << "ethernet proxy: unknown downcall opcode " << msg.opcode;
      msg.error = static_cast<int32_t>(ErrorCode::kInvalidArgument);
      return;
  }
}

void EthernetProxy::HandleNetifRx(UchanMsg& msg) {
  ++stats_.rx_downcalls;
  if (netdev_ == nullptr) {
    msg.error = static_cast<int32_t>(ErrorCode::kUnavailable);
    return;
  }
  // The downcall carries (iova, len) into the driver's own DMA space: the
  // packet sits in the RX buffer the device DMA'd it into (zero-copy,
  // Section 3.1.2). Anything outside the driver's mappings — kernel
  // addresses, other devices' buffers, absurd lengths — is rejected here,
  // never dereferenced.
  uint64_t iova = msg.args[0];
  uint32_t len = static_cast<uint32_t>(msg.args[1]);
  if (len == 0 || len > devices::kEthMaxFrame) {
    ++stats_.rx_bad_buffer_id;
    netdev_->stats().driver_errors++;
    SUD_LOG(kAttack) << "netif_rx downcall with bogus length " << len << " from driver";
    msg.error = static_cast<int32_t>(ErrorCode::kInvalidArgument);
    return;
  }
  Result<ByteSpan> buffer = ctx_->dma().HostView(iova, len);
  if (!buffer.ok()) {
    ++stats_.rx_bad_buffer_id;
    netdev_->stats().driver_errors++;
    SUD_LOG(kAttack) << "netif_rx downcall with address outside the driver's dma space";
    msg.error = static_cast<int32_t>(ErrorCode::kInvalidArgument);
    return;
  }
  ByteSpan shared = buffer.value();
  CpuModel& cpu = kernel_->machine().cpu();

  kern::SkbPtr skb;
  if (options_.guard_copy) {
    // Safe ordering: copy out of shared memory *first*, then let the stack
    // checksum/filter the private copy. Fusing the copy with the checksum
    // pass makes it nearly free (Section 3.1.2): the bytes are already in
    // cache, so only one pass is charged.
    skb = kern::MakeSkb(ConstByteSpan(shared.data(), shared.size()));
    ++stats_.guard_copies;
    if (options_.fuse_guard_with_checksum) {
      cpu.ChargeBytes(kAccountKernel, cpu.costs().per_byte_checksum, shared.size());
    } else {
      cpu.ChargeBytes(kAccountKernel,
                      cpu.costs().per_byte_copy + cpu.costs().per_byte_checksum, shared.size());
    }
    if (toctou_hook_) {
      // Attacker rewrites the shared buffer now — too late, we own a copy.
      toctou_hook_(shared);
    }
  } else {
    // VULNERABLE ordering (ablation/attack demonstration): verdict computed
    // over live shared memory, then the attacker flips it, then we copy.
    kern::PacketView pre_view{ConstByteSpan(shared.data(), shared.size())};
    cpu.ChargeBytes(kAccountKernel, cpu.costs().per_byte_checksum, shared.size());
    if (!pre_view.valid() || !pre_view.ChecksumOk() ||
        !kernel_->net().firewall().Accept(pre_view)) {
      netdev_->stats().rx_dropped++;
      msg.error = 0;  // packet dropped; not a driver error
      return;
    }
    if (toctou_hook_) {
      toctou_hook_(shared);  // attacker wins the race
    }
    skb = kern::MakeSkb(ConstByteSpan(shared.data(), shared.size()));
    cpu.ChargeBytes(kAccountKernel, cpu.costs().per_byte_copy, shared.size());
    // Deliver directly, bypassing the second check (that is the bug this
    // configuration demonstrates).
    skb->checksum_verified = true;
    netdev_->stats().rx_packets++;
    if (netdev_->rx_sink()) {
      netdev_->rx_sink()(*skb);
    }
    msg.error = 0;
    return;
  }

  cpu.Charge(kAccountKernel, cpu.costs().skb_alloc + cpu.costs().stack_work_per_pkt);
  // NAPI-style: the private copy joins the current poll bundle; the whole
  // array enters the stack once, at the end of this kernel entry.
  rx_bundle_.push_back(std::move(skb));
  msg.error = 0;  // rejection by firewall/checksum is not a downcall failure
}

void EthernetProxy::DeliverRxBundle() {
  if (rx_bundle_.empty() || netdev_ == nullptr) {
    return;
  }
  std::vector<kern::SkbPtr> bundle;
  bundle.swap(rx_bundle_);
  ++stats_.rx_bundles;
  (void)kernel_->net().NetifRxBatch(netdev_, std::move(bundle));
}

}  // namespace sud
