// EthernetProxy: the in-kernel Ethernet proxy driver (300 lines in Figure 5).
//
// Implements kern::NetDeviceOps on behalf of an untrusted user-space
// Ethernet driver, translating each kernel call into uchan messages
// (Section 3.1):
//
//   ndo_open/ndo_stop  -> synchronous upcalls (interruptable: ifconfig on a
//                         hung driver returns an error instead of blocking)
//   ndo_start_xmit     -> asynchronous upcall carrying a shared-pool buffer
//                         (zero-copy hand-off; the driver points its NIC at
//                         the same bytes)
//   ndo_do_ioctl       -> synchronous upcall (the MII status example)
//   netif_rx           <- asynchronous downcall carrying a shared buffer;
//                         the proxy *guard-copies* the packet into an skb,
//                         fused with the checksum pass (Section 3.1.2), so a
//                         malicious driver rewriting the buffer after the
//                         firewall verdict attacks only its own copy
//   carrier on/off     <- mirror downcalls for the shared-memory link state
//                         (Section 3.3)
//
// The Options knobs exist for the ablation benches: zero_copy off models a
// copying transmit path; guard_copy off reproduces the vulnerable
// check-then-copy ordering the TOCTOU attack exploits; fused guard off
// charges a separate copy pass instead of piggybacking on the checksum.

#ifndef SUD_SRC_SUD_PROXY_ETHERNET_H_
#define SUD_SRC_SUD_PROXY_ETHERNET_H_

#include <functional>
#include <string>

#include "src/kern/kernel.h"
#include "src/kern/netdev.h"
#include "src/sud/proto.h"
#include "src/sud/safe_pci.h"

namespace sud {

class EthernetProxy : public kern::NetDeviceOps {
 public:
  struct Options {
    bool zero_copy = true;
    bool guard_copy = true;
    bool fuse_guard_with_checksum = true;
    // Consecutive full-ring transmissions before the driver is reported hung.
    uint32_t hung_threshold = 8;
  };

  EthernetProxy(kern::Kernel* kernel, SudDeviceContext* ctx)
      : EthernetProxy(kernel, ctx, Options{}) {}
  EthernetProxy(kern::Kernel* kernel, SudDeviceContext* ctx, Options options);

  // kern::NetDeviceOps
  Status Open() override;
  Status Stop() override;
  Status StartXmit(kern::SkbPtr skb) override;
  // NAPI-style burst: stages every frame into a shared-pool buffer, then
  // enqueues the whole array of xmit upcalls in ONE uchan crossing (one lock
  // acquisition, at most one driver wakeup). Frames the ring cannot take are
  // dropped and their pool buffers reclaimed.
  size_t StartXmitBatch(std::vector<kern::SkbPtr> skbs) override;
  Result<std::string> Ioctl(uint32_t cmd) override;

  kern::NetDevice* netdev() { return netdev_; }

  struct Stats {
    uint64_t xmit_upcalls = 0;
    uint64_t xmit_batches = 0;      // StartXmitBatch crossings
    uint64_t xmit_dropped = 0;
    uint64_t rx_downcalls = 0;
    uint64_t rx_bundles = 0;        // NAPI deliveries into the stack
    uint64_t rx_bad_buffer_id = 0;  // malicious buffer ids rejected
    uint64_t hung_reports = 0;
    uint64_t guard_copies = 0;
  };
  const Stats& stats() const { return stats_; }

  // Test seam modelling a perfectly-timed concurrent attacker: invoked (when
  // set) at the moment between the firewall pre-check and the delivery copy
  // in the *vulnerable* (guard_copy=false) configuration, and after the
  // guard copy in the safe configuration — where it is harmless.
  using ToctouHook = std::function<void(ByteSpan shared_buffer)>;
  void set_toctou_hook(ToctouHook hook) { toctou_hook_ = std::move(hook); }

 private:
  void HandleDowncall(UchanMsg& msg);
  void HandleNetifRx(UchanMsg& msg);
  // Stages one skb into a fresh pool buffer and fills `msg`; on failure the
  // hung-driver accounting has already been applied.
  Status PrepareXmit(const kern::Skb& skb, UchanMsg* msg);
  void NoteXmitFull();
  // Delivers the guard-copied rx bundle accumulated during the current
  // downcall kernel entry (the NAPI poll-end point).
  void DeliverRxBundle();

  kern::Kernel* kernel_;
  SudDeviceContext* ctx_;
  Options options_;
  kern::NetDevice* netdev_ = nullptr;
  uint32_t consecutive_full_ = 0;
  // Guard-copied packets awaiting the end-of-entry NetifRxBatch delivery.
  std::vector<kern::SkbPtr> rx_bundle_;
  Stats stats_;
  ToctouHook toctou_hook_;
};

}  // namespace sud

#endif  // SUD_SRC_SUD_PROXY_ETHERNET_H_
