// EthernetProxy: the in-kernel Ethernet proxy driver (300 lines in Figure 5).
//
// Implements kern::NetDeviceOps on behalf of an untrusted user-space
// Ethernet driver, translating each kernel call into uchan messages
// (Section 3.1):
//
//   ndo_open/ndo_stop  -> synchronous upcalls (interruptable: ifconfig on a
//                         hung driver returns an error instead of blocking)
//   ndo_start_xmit     -> asynchronous upcall carrying a shared-pool buffer
//                         (zero-copy hand-off; the driver points its NIC at
//                         the same bytes). Frag skbs for an SG driver stage
//                         per-fragment into standard pool buffers and cross
//                         as ONE kEthUpXmitChain upcall (count + records) —
//                         no linearize copy, no oversized staging buffer;
//                         for a non-SG driver the proxy linearizes first
//                         (the fallback copy the SG path deletes)
//   ndo_do_ioctl       -> synchronous upcall (the MII status example)
//   netif_rx           <- asynchronous downcall carrying a shared buffer;
//                         the proxy *guard-copies* the packet into an skb,
//                         fused with the checksum pass (Section 3.1.2), so a
//                         malicious driver rewriting the buffer after the
//                         firewall verdict attacks only its own copy
//   carrier on/off     <- mirror downcalls for the shared-memory link state
//                         (Section 3.3)
//
// Multi-queue: packet traffic rides the uchan shard of the queue it belongs
// to. StartXmitBatch(skbs, q) stages its burst into shard q (the kernel's
// flow steering in NetSubsystem::TransmitBatch already partitioned it);
// netif_rx downcalls arriving on shard q join queue q's rx bundle, which the
// shard's end-of-entry flush hands to the stack as one NAPI delivery. The
// queue a downcall belongs to comes from the shard it arrived on — never
// from driver-marshalled bytes — so a malicious driver cannot cross-talk
// queues or corrupt another queue's bundle. Per-queue state is only ever
// touched from its own shard's pump thread; shared counters are atomics.
//
// The Options knobs exist for the ablation benches: zero_copy off models a
// copying transmit path; guard_copy off reproduces the vulnerable
// check-then-copy ordering the TOCTOU attack exploits; fused guard off
// charges a separate copy pass instead of piggybacking on the checksum.

#ifndef SUD_SRC_SUD_PROXY_ETHERNET_H_
#define SUD_SRC_SUD_PROXY_ETHERNET_H_

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/kern/kernel.h"
#include "src/kern/netdev.h"
#include "src/sud/proto.h"
#include "src/sud/safe_pci.h"
#include "src/sud/wire_schema.h"

namespace sud {

class EthernetProxy : public kern::NetDeviceOps {
 public:
  struct Options {
    bool zero_copy = true;
    bool guard_copy = true;
    bool fuse_guard_with_checksum = true;
    // Sealed zero-copy verified delivery (the revocation alternative the
    // paper priced out of reach, Section 3.1.2): on netif_rx the proxy
    // write-seals the buffer's pages in the IOMMU, verifies the transport
    // checksum IN PLACE over the sealed bytes, and hands the stack an skb
    // referencing the shared region — no guard copy. The pages unseal when
    // the skb dies. Only page-aligned deliveries (a page-isolated RX arena,
    // e.g. the single-queue 16 KB layout) qualify; everything else — and any
    // seal failure — degrades to the counted guard-copy fallback.
    bool sealed_delivery = false;
    // TX mirror: DRAM-backed skb frags (page-cache model) arm descriptors
    // through read-only IOMMU grants instead of staging copies into the pool.
    bool sealed_tx = false;
    // Consecutive full-ring transmissions before the driver is reported hung.
    uint32_t hung_threshold = 8;
  };

  EthernetProxy(kern::Kernel* kernel, SudDeviceContext* ctx)
      : EthernetProxy(kernel, ctx, Options{}) {}
  EthernetProxy(kern::Kernel* kernel, SudDeviceContext* ctx, Options options);

  // kern::NetDeviceOps
  Status Open() override;
  Status Stop() override;
  // Single-frame transmit: steers by flow hash onto the frame's queue shard.
  Status StartXmit(kern::SkbPtr skb) override;
  // NAPI-style burst for TX queue `queue`: stages every frame into a
  // shared-pool buffer, then enqueues the whole array of xmit upcalls in ONE
  // crossing of shard `queue` (one lock acquisition, at most one driver
  // wakeup — and no lock shared with any other queue). Frames the ring
  // cannot take are dropped and their pool buffers reclaimed.
  size_t StartXmitBatch(std::vector<kern::SkbPtr> skbs, uint16_t queue) override;
  Result<std::string> Ioctl(uint32_t cmd) override;

  kern::NetDevice* netdev() { return netdev_; }

  // Supervisor hook, called between Kill and the replacement Start (no pump
  // threads alive): drops per-queue rx bundles still referencing the dead
  // instance's buffers and resets the hung-driver accounting so the fresh
  // driver does not inherit its predecessor's strikes.
  void OnDriverRestart();

  // Give-up hook: the supervisor unregistered the interface; drop the raw
  // pointer so nothing dereferences the dead netdev.
  void DetachNetdev() { netdev_ = nullptr; }

  struct Stats {
    std::atomic<uint64_t> xmit_upcalls{0};
    std::atomic<uint64_t> xmit_batches{0};      // StartXmitBatch crossings
    std::atomic<uint64_t> xmit_chain_upcalls{0};  // multi-fragment xmit messages
    std::atomic<uint64_t> xmit_dropped{0};
    std::atomic<uint64_t> rx_downcalls{0};
    std::atomic<uint64_t> rx_bundles{0};        // NAPI deliveries into the stack
    std::atomic<uint64_t> rx_chain_downcalls{0};  // multi-fragment netif_rx messages
    std::atomic<uint64_t> rx_bad_buffer_id{0};  // malicious buffer ids rejected
    std::atomic<uint64_t> rx_bad_chain{0};      // malformed/oversize chains rejected
    // netif_rx downcalls whose per-shard sequence number was not strictly
    // greater than the last one seen: a duplicated (replayed or
    // fault-injected) delivery, rejected before any guard copy. Neither a
    // loss nor a delivery in the conservation books.
    std::atomic<uint64_t> rx_dups_rejected{0};
    std::atomic<uint64_t> free_batches{0};      // coalesced free-buffer messages
    std::atomic<uint64_t> hung_reports{0};
    std::atomic<uint64_t> guard_copies{0};
    // Frames delivered by reference under an IOMMU write seal (no copy).
    std::atomic<uint64_t> sealed_deliveries{0};
    // Deliveries that wanted the sealed path but fell back to the guard copy
    // (unaligned buffer, injected or genuine seal failure): counted so a
    // "zero-copy" configuration silently copying is visible.
    std::atomic<uint64_t> sealed_fallback_copies{0};
    // Sealed pages whose skb outlived its driver instance: the epoch guard
    // kept crash-reap from unsealing into a dead (or successor) IO space.
    std::atomic<uint64_t> sealed_quarantined{0};
    // TX grant chunks minted (descriptors armed straight from kernel pages).
    std::atomic<uint64_t> tx_grants{0};
    // Frames whose DRAM frags crossed as grants instead of staging copies.
    std::atomic<uint64_t> tx_grant_frames{0};
    // Frames that wanted TX grants but staged copies (mapping failure).
    std::atomic<uint64_t> tx_grant_fallbacks{0};
  };
  const Stats& stats() const { return stats_; }

  // Structural (wire-schema) rejections at the downcall boundary, per
  // message. The per-attack counters above (rx_bad_buffer_id, rx_bad_chain)
  // keep their historical meaning and cover structural AND semantic rejects.
  const wire::RejectStats& wire_rejects() const { return wire_rejects_; }

  // Test seam modelling a perfectly-timed concurrent attacker: invoked (when
  // set) at the moment between the firewall pre-check and the delivery copy
  // in the *vulnerable* (guard_copy=false) configuration, and after the
  // guard copy in the safe configuration — where it is harmless.
  using ToctouHook = std::function<void(ByteSpan shared_buffer)>;
  void set_toctou_hook(ToctouHook hook) { toctou_hook_ = std::move(hook); }

  // Test seam modelling a socket queue that retains delivered skbs: while
  // set, rx bundles park in a held list instead of entering the stack, so a
  // sealed delivery can stay alive across a driver crash. TakeHeldRx hands
  // the held skbs back (dropping the result releases/unseals them — outside
  // any proxy lock).
  void set_hold_rx_for_test(bool hold) { hold_rx_.store(hold, std::memory_order_relaxed); }
  std::vector<kern::SkbPtr> TakeHeldRx() {
    std::lock_guard<std::mutex> lock(hold_mu_);
    std::vector<kern::SkbPtr> held;
    held.swap(held_rx_);
    return held;
  }

 private:
  void HandleDowncall(UchanMsg& msg, uint16_t shard);
  // Structural rejection: counts the message in wire_rejects_ and applies the
  // per-opcode disposition (rx rejects keep their historical counters and
  // dedup/prologue ordering; malformed free batches are tolerated and their
  // payload ids salvaged; everything else is refused with kInvalidArgument).
  void RejectDowncall(UchanMsg& msg, uint16_t shard, wire::Malform verdict);
  // Shared head of the netif_rx paths — dedup against the shard's seq
  // watermark, the downcall counters, the netdev-liveness check — run for
  // accepted AND structurally rejected deliveries so the accounting a
  // malformed message leaves behind matches what it always was. Returns false
  // when the message is already fully handled (dup or no netdev).
  bool RxDowncallProlog(UchanMsg& msg, uint16_t shard, bool chain);
  void HandleNetifRx(UchanMsg& msg, uint16_t shard);
  // The sealed zero-copy delivery attempt: write-seal the buffer's pages,
  // verify the checksum in place, hand the stack an extern skb whose death
  // unseals. Returns false (nothing delivered, nothing sealed) when the
  // delivery does not qualify or the seal fails — the caller falls back to
  // the guard copy.
  bool TrySealedDeliver(uint64_t iova, ByteSpan shared, uint16_t shard);
  // Extern-skb death hook: drops the seal ledger references for the skb's
  // pages and unseals the ones whose last reference this was — unless the
  // bind generation moved on (crash-reap quarantine: never unseal a dead
  // epoch's page into a successor's IO space).
  void ReleaseSealedPages(uint64_t base, uint64_t len, uint32_t epoch);
  // netif_rx for an EOP-chained frame: re-validates the fragment list
  // (count, addresses, total) and guard-copies fragment-by-fragment into ONE
  // private skb before any verdict.
  void HandleNetifRxChain(UchanMsg& msg, uint16_t shard);
  // Tail of both rx paths: charges the stack costs, applies the bad-checksum
  // drop accounting, and joins the shard's NAPI bundle.
  void FinishRxSkb(kern::SkbPtr skb, bool checksum_ok, size_t frame_bytes, uint16_t shard);
  void HandleFreeBuffer(UchanMsg& msg);
  // Stages one skb for transmit and fills `msg`: the single-buffer kEthUpXmit
  // fast path for linear frames that fit one pool buffer, the chain path for
  // SG frag skbs, and the linearize fallback (an extra charged full-frame
  // copy) for frag skbs headed at a non-SG driver. On failure the hung-driver
  // accounting has already been applied and nothing stays allocated.
  // Takes the skb by owning pointer: the sealed-TX path moves it into the
  // frame's grant group (its DRAM frag pages must outlive the device's
  // reads); every other path leaves it with the caller.
  Status PrepareXmit(kern::SkbPtr& skb, UchanMsg* msg, uint16_t queue);
  // Stages one frame across per-fragment pool buffers as a kEthUpXmitChain
  // message: head and frags chunked by the pool buffer size, bounded by
  // kern::kMaxChainFrags. Under sealed_tx, DRAM-backed frags cross as
  // read-only grants instead of staged copies (same records, no memcpy).
  Status StageXmitChain(kern::SkbPtr& skb, UchanMsg* msg, uint16_t queue);
  // Extracts every pool buffer id a staged xmit message references (the
  // single buffer_id, or the chain's whole record list) into `out`, which
  // must hold kern::kMaxChainFrags entries; returns how many. The failure
  // paths free exactly these when a message never reaches the ring.
  static size_t StagedBufferIds(const UchanMsg& msg, int32_t* out);
  // Chain records the skb's geometry would stage (each segment chunked by
  // the pool buffer size): the chain-vs-linearize decision input.
  size_t StagedChainRecords(const kern::Skb& skb) const;
  // The driver-declared MTU clamped to what the TX staging pool can hold
  // (one buffer for single-buffer drivers, a bounded chain of them for SG).
  uint32_t DeclaredMtu(uint64_t declared) const;
  void NoteXmitFull();
  // Delivers queue `shard`'s guard-copied rx bundle accumulated during the
  // current downcall kernel entry (the NAPI poll-end point).
  void DeliverRxBundle(uint16_t shard);

  kern::Kernel* kernel_;
  SudDeviceContext* ctx_;
  Options options_;
  kern::NetDevice* netdev_ = nullptr;
  // NETIF_F_SG as the driver declared it at register_netdev (kEthFeatureSg
  // in the marshalled feature bits): selects chain staging vs linearize.
  bool driver_sg_ = false;
  std::atomic<uint32_t> consecutive_full_{0};
  Stats stats_;
  wire::RejectStats wire_rejects_;
  ToctouHook toctou_hook_;
  // One sealed RX page: how many live extern skbs reference it, and the bind
  // generation it was sealed under. Refcounted because a malicious driver
  // can deliver the same buffer twice (fresh seqs): the seal is idempotent
  // and the page must stay sealed until the LAST referencing skb dies.
  struct SealRef {
    uint32_t refs = 0;
    uint32_t epoch = 0;
  };
  // Guards the seal ledger. Skb release hooks run on the shard pump threads
  // (end-of-entry bundle delivery), the supervisor's restart path and test
  // teardown; the ledger is the one structure they all touch.
  std::mutex seal_mu_;
  std::map<uint64_t, SealRef> sealed_pages_;  // keyed by page address (iova)
  std::atomic<bool> hold_rx_{false};
  std::mutex hold_mu_;
  // NOTE: every member an extern skb's release hook touches (stats_, the
  // seal ledger, ctx_) is declared ABOVE the containers that may still hold
  // such skbs at destruction (held_rx_, rx_bundle_), so the hooks fire while
  // those members are alive.
  std::vector<kern::SkbPtr> held_rx_;
  // Guard-copied packets awaiting the end-of-entry NetifRxBatch delivery,
  // one bundle per queue (only ever touched from that shard's pump thread).
  std::array<std::vector<kern::SkbPtr>, kSudMaxQueues> rx_bundle_;
  // Highest downcall seq accepted per shard for netif_rx delivery: shard
  // seqs are assigned monotonically at enqueue and the channel preserves
  // per-shard order, so any non-increasing seq is a duplicate. Touched only
  // from that shard's pump thread; reset (with the fresh uchan's seq space)
  // on driver restart.
  std::array<uint64_t, kSudMaxQueues> last_rx_seq_{};
};

}  // namespace sud

#endif  // SUD_SRC_SUD_PROXY_ETHERNET_H_
