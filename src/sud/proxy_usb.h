// UsbHostProxy: the USB host-controller proxy.
//
// Figure 5 reports *zero* lines of device-class-specific kernel code for the
// USB host class: everything the HCD driver needs — interrupt forwarding,
// interrupt_ack, DMA allocation, MMIO — is provided by the SUD core. The
// only kernel-visible traffic a USB function driver generates in this model
// is input reports, handled by one generic downcall. This class is
// intentionally as close to empty as the paper claims.

#ifndef SUD_SRC_SUD_PROXY_USB_H_
#define SUD_SRC_SUD_PROXY_USB_H_

#include "src/kern/kernel.h"
#include "src/sud/proto.h"
#include "src/sud/safe_pci.h"

namespace sud {

class UsbHostProxy {
 public:
  UsbHostProxy(kern::Kernel* kernel, SudDeviceContext* ctx) : kernel_(kernel), ctx_(ctx) {
    ctx_->set_downcall_handler([this](UchanMsg& msg, uint16_t /*queue*/) {
      switch (msg.opcode) {
        case kUsbDownKeyEvent:
          kernel_->input().SubmitKey(static_cast<uint8_t>(msg.args[0]));
          msg.error = 0;
          return;
        case kOpInterruptAck:
          msg.error = static_cast<int32_t>(ctx_->InterruptAck().code());
          return;
        default:
          msg.error = static_cast<int32_t>(ErrorCode::kInvalidArgument);
          return;
      }
    });
  }

 private:
  kern::Kernel* kernel_;
  SudDeviceContext* ctx_;
};

}  // namespace sud

#endif  // SUD_SRC_SUD_PROXY_USB_H_
