#include "src/sud/proxy_wireless.h"

#include <cstring>

#include "src/base/log.h"

namespace sud {

WirelessProxy::WirelessProxy(kern::Kernel* kernel, SudDeviceContext* ctx)
    : kernel_(kernel), ctx_(ctx) {
  ctx_->set_downcall_handler(
      [this](UchanMsg& msg, uint16_t shard) { HandleDowncall(msg, shard); });
}

uint32_t WirelessProxy::EnableFeatures(uint32_t requested) {
  // Called with the kernel in a non-preemptable context. A synchronous
  // upcall here would be a design violation (it could sleep); the proxy
  // answers from the mirror and queues an async upcall instead.
  if (!kernel_->InAtomicContext()) {
    // The stack normally calls us atomically; tolerate non-atomic callers.
  }
  uint32_t enabled = requested & mirrored_supported_features_;
  UchanMsg msg;
  msg.opcode = kWifiUpEnableFeatures;
  msg.args[0] = enabled;
  Status status = ctx_->ctl().SendAsync(std::move(msg));
  if (status.ok()) {
    ++stats_.feature_upcalls_queued;
  }
  return enabled;
}

Result<std::vector<kern::ScanResult>> WirelessProxy::Scan() {
  if (kernel_->InAtomicContext()) {
    ++stats_.atomic_violations;
    return Status(ErrorCode::kInternal, "sync upcall from non-preemptable context");
  }
  ++stats_.scans;
  UchanMsg msg;
  msg.opcode = kWifiUpScan;
  Result<UchanMsg> reply = ctx_->ctl().SendSync(std::move(msg));
  if (!reply.ok()) {
    return reply.status();
  }
  if (reply.value().error != 0) {
    return Status(static_cast<ErrorCode>(reply.value().error), "scan failed in driver");
  }
  // The reply payload is driver-marshalled: certify its record shape against
  // the schema before decoding — a ragged or oversize result list is an
  // attack on the scan parser, not a tolerable fuzz.
  const wire::MessageSchema* schema = wire::FindSchema(wire::Dir::kUp, kWifiUpScan);
  wire::Malform verdict = wire::ValidateReplyStructure(*schema, reply.value());
  if (verdict != wire::Malform::kNone) {
    wire_rejects_.Count(wire::Dir::kUp, kWifiUpScan);
    SUD_LOG(kAttack) << "wireless proxy: malformed scan reply rejected ("
                     << wire::MalformName(verdict) << ")";
    return Status(ErrorCode::kInvalidArgument, "malformed scan reply");
  }
  return wire::DecodeScanResults(reply.value().inline_data);
}

Status WirelessProxy::Associate(const std::string& ssid) {
  if (kernel_->InAtomicContext()) {
    ++stats_.atomic_violations;
    return Status(ErrorCode::kInternal, "sync upcall from non-preemptable context");
  }
  UchanMsg msg;
  msg.opcode = kWifiUpAssociate;
  msg.inline_data.assign(ssid.begin(), ssid.end());
  Result<UchanMsg> reply = ctx_->ctl().SendSync(std::move(msg));
  if (!reply.ok()) {
    return reply.status();
  }
  if (reply.value().error != 0) {
    return Status(static_cast<ErrorCode>(reply.value().error), "associate failed in driver");
  }
  return Status::Ok();
}

void WirelessProxy::HandleDowncall(UchanMsg& msg, uint16_t shard) {
  // Schema-certify the shape before any handler parses a byte (the wireless
  // lanes are all control traffic: anything off shard 0 is malformed).
  wire::Malform verdict = wire::ValidateStructure(wire::Dir::kDown, msg, shard);
  if (verdict != wire::Malform::kNone) {
    wire_rejects_.Count(wire::Dir::kDown, msg.opcode);
    if (verdict == wire::Malform::kUnknownOpcode) {
      SUD_LOG(kWarning) << "wireless proxy: unknown downcall opcode " << msg.opcode;
    } else {
      SUD_LOG(kAttack) << "wireless proxy: malformed downcall " << msg.opcode << " rejected ("
                       << wire::MalformName(verdict) << ")";
    }
    msg.error = static_cast<int32_t>(ErrorCode::kInvalidArgument);
    return;
  }
  switch (msg.opcode) {
    case kWifiDownRegister: {
      mirrored_supported_features_ = static_cast<uint32_t>(msg.args[0]);
      if (wdev_ != nullptr) {
        msg.error = 0;  // restarted driver re-registering
        return;
      }
      std::string name = kernel_->wireless().NextName("wlan");
      Result<kern::WirelessDevice*> wdev =
          kernel_->wireless().Register(name, this, mirrored_supported_features_);
      if (!wdev.ok()) {
        msg.error = static_cast<int32_t>(wdev.status().code());
        return;
      }
      wdev_ = wdev.value();
      msg.error = 0;
      return;
    }
    case kWifiDownBssChange:
      if (wdev_ != nullptr) {
        wdev_->NotifyBssChange(msg.args[0] != 0);
      }
      msg.error = 0;
      return;
    case kWifiDownSetBitrates: {
      // Mirror update: currently-available bitrates (Section 3.3).
      if (wdev_ != nullptr) {
        wdev_->set_bitrates(wire::DecodeBitrates(msg));
      }
      msg.error = 0;
      return;
    }
    case kOpInterruptAck:
      msg.error = static_cast<int32_t>(ctx_->InterruptAck().code());
      return;
    default:
      SUD_LOG(kWarning) << "wireless proxy: unknown downcall opcode " << msg.opcode;
      msg.error = static_cast<int32_t>(ErrorCode::kInvalidArgument);
      return;
  }
}

}  // namespace sud
