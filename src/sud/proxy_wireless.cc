#include "src/sud/proxy_wireless.h"

#include <cstring>

#include "src/base/log.h"

namespace sud {

WirelessProxy::WirelessProxy(kern::Kernel* kernel, SudDeviceContext* ctx)
    : kernel_(kernel), ctx_(ctx) {
  ctx_->set_downcall_handler([this](UchanMsg& msg, uint16_t /*queue*/) { HandleDowncall(msg); });
}

uint32_t WirelessProxy::EnableFeatures(uint32_t requested) {
  // Called with the kernel in a non-preemptable context. A synchronous
  // upcall here would be a design violation (it could sleep); the proxy
  // answers from the mirror and queues an async upcall instead.
  if (!kernel_->InAtomicContext()) {
    // The stack normally calls us atomically; tolerate non-atomic callers.
  }
  uint32_t enabled = requested & mirrored_supported_features_;
  UchanMsg msg;
  msg.opcode = kWifiUpEnableFeatures;
  msg.args[0] = enabled;
  Status status = ctx_->ctl().SendAsync(std::move(msg));
  if (status.ok()) {
    ++stats_.feature_upcalls_queued;
  }
  return enabled;
}

Result<std::vector<kern::ScanResult>> WirelessProxy::Scan() {
  if (kernel_->InAtomicContext()) {
    ++stats_.atomic_violations;
    return Status(ErrorCode::kInternal, "sync upcall from non-preemptable context");
  }
  ++stats_.scans;
  UchanMsg msg;
  msg.opcode = kWifiUpScan;
  Result<UchanMsg> reply = ctx_->ctl().SendSync(std::move(msg));
  if (!reply.ok()) {
    return reply.status();
  }
  if (reply.value().error != 0) {
    return Status(static_cast<ErrorCode>(reply.value().error), "scan failed in driver");
  }
  const std::vector<uint8_t>& raw = reply.value().inline_data;
  std::vector<kern::ScanResult> results;
  for (size_t off = 0; off + kWifiScanRecordBytes <= raw.size(); off += kWifiScanRecordBytes) {
    kern::ScanResult result;
    std::memcpy(result.bssid.data(), raw.data() + off, 6);
    result.channel = raw[off + 6];
    result.signal_dbm = static_cast<int8_t>(raw[off + 7]);
    const char* ssid = reinterpret_cast<const char*>(raw.data() + off + 8);
    result.ssid.assign(ssid, strnlen(ssid, 32));
    results.push_back(std::move(result));
  }
  return results;
}

Status WirelessProxy::Associate(const std::string& ssid) {
  if (kernel_->InAtomicContext()) {
    ++stats_.atomic_violations;
    return Status(ErrorCode::kInternal, "sync upcall from non-preemptable context");
  }
  UchanMsg msg;
  msg.opcode = kWifiUpAssociate;
  msg.inline_data.assign(ssid.begin(), ssid.end());
  Result<UchanMsg> reply = ctx_->ctl().SendSync(std::move(msg));
  if (!reply.ok()) {
    return reply.status();
  }
  if (reply.value().error != 0) {
    return Status(static_cast<ErrorCode>(reply.value().error), "associate failed in driver");
  }
  return Status::Ok();
}

void WirelessProxy::HandleDowncall(UchanMsg& msg) {
  switch (msg.opcode) {
    case kWifiDownRegister: {
      mirrored_supported_features_ = static_cast<uint32_t>(msg.args[0]);
      if (wdev_ != nullptr) {
        msg.error = 0;  // restarted driver re-registering
        return;
      }
      std::string name = kernel_->wireless().NextName("wlan");
      Result<kern::WirelessDevice*> wdev =
          kernel_->wireless().Register(name, this, mirrored_supported_features_);
      if (!wdev.ok()) {
        msg.error = static_cast<int32_t>(wdev.status().code());
        return;
      }
      wdev_ = wdev.value();
      msg.error = 0;
      return;
    }
    case kWifiDownBssChange:
      if (wdev_ != nullptr) {
        wdev_->NotifyBssChange(msg.args[0] != 0);
      }
      msg.error = 0;
      return;
    case kWifiDownSetBitrates: {
      // Mirror update: currently-available bitrates (Section 3.3).
      if (wdev_ != nullptr) {
        std::vector<uint32_t> rates;
        for (size_t off = 0; off + 4 <= msg.inline_data.size(); off += 4) {
          rates.push_back(LoadLe32(msg.inline_data.data() + off));
        }
        wdev_->set_bitrates(std::move(rates));
      }
      msg.error = 0;
      return;
    }
    case kOpInterruptAck:
      msg.error = static_cast<int32_t>(ctx_->InterruptAck().code());
      return;
    default:
      SUD_LOG(kWarning) << "wireless proxy: unknown downcall opcode " << msg.opcode;
      msg.error = static_cast<int32_t>(ErrorCode::kInvalidArgument);
      return;
  }
}

}  // namespace sud
