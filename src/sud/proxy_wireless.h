// WirelessProxy: the in-kernel 802.11 proxy driver (600 lines in Figure 5).
//
// The interesting part is EnableFeatures: the Linux 802.11 stack calls it in
// a non-preemptable context (Section 3.1.1), so the proxy must answer
// *without blocking*. It does so from the mirrored (static) supported
// feature set registered by the driver, and queues an asynchronous upcall
// carrying the newly-enabled features to SUD-UML — exactly the mechanism the
// paper describes. Scan and Associate may sleep and use synchronous,
// interruptable upcalls.

#ifndef SUD_SRC_SUD_PROXY_WIRELESS_H_
#define SUD_SRC_SUD_PROXY_WIRELESS_H_

#include <string>
#include <vector>

#include "src/kern/kernel.h"
#include "src/kern/wireless.h"
#include "src/sud/proto.h"
#include "src/sud/safe_pci.h"
#include "src/sud/wire_schema.h"

namespace sud {

class WirelessProxy : public kern::WirelessOps {
 public:
  WirelessProxy(kern::Kernel* kernel, SudDeviceContext* ctx);

  // kern::WirelessOps
  uint32_t EnableFeatures(uint32_t requested) override;
  Result<std::vector<kern::ScanResult>> Scan() override;
  Status Associate(const std::string& ssid) override;

  kern::WirelessDevice* wdev() { return wdev_; }

  struct Stats {
    uint64_t feature_upcalls_queued = 0;
    uint64_t atomic_violations = 0;  // sync upcalls attempted in atomic ctx (must stay 0)
    uint64_t scans = 0;
  };
  const Stats& stats() const { return stats_; }

  // Structural (wire-schema) rejections at this boundary — downcall shapes
  // and malformed scan-reply payloads both count here, per message.
  const wire::RejectStats& wire_rejects() const { return wire_rejects_; }

 private:
  void HandleDowncall(UchanMsg& msg, uint16_t shard);

  kern::Kernel* kernel_;
  SudDeviceContext* ctx_;
  kern::WirelessDevice* wdev_ = nullptr;
  uint32_t mirrored_supported_features_ = 0;  // the static mirror (§3.1.1)
  Stats stats_;
  wire::RejectStats wire_rejects_;
};

}  // namespace sud

#endif  // SUD_SRC_SUD_PROXY_WIRELESS_H_
