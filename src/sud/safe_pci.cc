#include "src/sud/safe_pci.h"

#include <algorithm>

#include "src/base/bytes.h"
#include "src/base/log.h"

namespace sud {

SudDeviceContext::SudDeviceContext(kern::Kernel* kernel, hw::PciDevice* device,
                                   kern::Uid owner_uid, Options options)
    : kernel_(kernel), device_(device), owner_uid_(owner_uid), options_(options) {
  num_queues_ = std::clamp<uint32_t>(options_.num_queues, 1, kSudMaxQueues);
}

SudDeviceContext::~SudDeviceContext() { Teardown(); }

void SudDeviceContext::set_downcall_handler(QueuedDowncallHandler handler) {
  downcall_handler_ = std::move(handler);
  if (shards_ != nullptr) {
    shards_->set_downcall_handler(downcall_handler_);
  }
}

void SudDeviceContext::set_downcall_flush_handler(QueuedFlushHandler handler) {
  downcall_flush_handler_ = std::move(handler);
  if (shards_ != nullptr) {
    shards_->set_downcall_flush_handler(downcall_flush_handler_);
  }
}

Uchan::Stats SudDeviceContext::AggregateCtlStats() const {
  return shards_ != nullptr ? shards_->AggregateStats() : Uchan::Stats{};
}

Status SudDeviceContext::Bind(kern::Process* proc) {
  if (bound_) {
    return Status(ErrorCode::kAlreadyExists, "device already bound to a driver");
  }
  if (proc == nullptr || !proc->alive()) {
    return Status(ErrorCode::kInvalidArgument, "no live process");
  }
  if (proc->uid() != owner_uid_) {
    SUD_LOG(kAttack) << device_->name() << ": uid " << proc->uid()
                     << " tried to bind device owned by uid " << owner_uid_;
    return Status(ErrorCode::kPermissionDenied, "device files not owned by this uid");
  }

  hw::Machine& machine = kernel_->machine();
  SUD_RETURN_IF_ERROR(machine.iommu().CreateContext(source_id()));

  // AMD-Vi: the OS must explicitly map the MSI doorbell page for the device;
  // storm escalation later removes it (Section 5.2).
  if (machine.iommu().mode() == hw::IommuMode::kAmdVi) {
    SUD_RETURN_IF_ERROR(machine.iommu().Map(source_id(), hw::kMsiRangeBase, hw::kMsiRangeBase,
                                            hw::kPageSize, /*readable=*/false,
                                            /*writable=*/true));
  }

  // Interrupt setup: the *kernel* programs the MSI capability (drivers are
  // filtered away from it) and routes the vectors to this context. A
  // multi-queue device gets one contiguous multi-message range — queue q
  // signals vector_base + q, and each vector dispatches with its queue index.
  Result<uint8_t> base = kernel_->AllocIrqVectorRange(static_cast<uint8_t>(num_queues_));
  if (!base.ok()) {
    return base.status();
  }
  vector_base_ = base.value();
  for (uint32_t q = 0; q < num_queues_; ++q) {
    SUD_RETURN_IF_ERROR(kernel_->RequestIrq(
        static_cast<uint8_t>(vector_base_ + q), [this, q](uint16_t source_id) {
          OnDeviceInterrupt(static_cast<uint16_t>(q), source_id);
        }));
  }
  device_->config().set_msi_address(hw::kMsiRangeBase);
  device_->config().set_msi_data(vector_base_);
  device_->config().set_msi_enabled(true);
  device_->config().set_msi_masked(false);
  if (machine.iommu().interrupt_remapping()) {
    for (uint32_t q = 0; q < num_queues_; ++q) {
      SUD_RETURN_IF_ERROR(machine.iommu().SetInterruptRemapEntry(
          source_id(), static_cast<uint8_t>(vector_base_ + q),
          static_cast<uint8_t>(vector_base_ + q)));
    }
  }

  // The sharded ctl file: one ring pair per queue, each with its own lock
  // and wakeup path. Shard 0 carries control traffic alongside queue 0.
  shards_ = std::make_unique<UchanShardSet>(num_queues_, options_.uchan, &machine.cpu());
  if (downcall_handler_) {
    shards_->set_downcall_handler(downcall_handler_);
  }
  if (downcall_flush_handler_) {
    shards_->set_downcall_flush_handler(downcall_flush_handler_);
  }
  irq_in_flight_.fill(false);
  irq_pended_.fill(false);
  interrupts_while_masked_ = 0;
  dma_ = std::make_unique<DmaSpace>(&machine.dram(), &machine.iommu(), source_id());
  // Each bind is a new pool epoch: handles issued to the previous (dead)
  // driver instance fail validation everywhere in the fresh one.
  ++bind_generation_;
  pool_ = std::make_unique<SharedBufferPool>(dma_.get(), options_.pool_buffers,
                                             options_.pool_buffer_bytes, bind_generation_);
  // A zero-buffer pool is legal (non-networking device classes may never
  // exchange bulk data); the pool then reports kUnavailable on Alloc.
  if (options_.pool_buffers > 0) {
    SUD_RETURN_IF_ERROR(pool_->Init());
    SUD_RETURN_IF_ERROR(proc->ChargeMemory(static_cast<uint64_t>(options_.pool_buffers) *
                                           options_.pool_buffer_bytes));
  }

  process_ = proc;
  bound_ = true;
  torn_down_ = false;
  SUD_LOG(kInfo) << device_->name() << ": bound to pid " << proc->pid() << " (uid " << proc->uid()
                 << "), irq vectors " << int{vector_base_} << ".."
                 << int{vector_base_} + static_cast<int>(num_queues_) - 1;
  return Status::Ok();
}

Result<uint32_t> SudDeviceContext::MmioRead(int bar, uint64_t offset) {
  if (!bound_) {
    return Status(ErrorCode::kUnavailable, "device not bound");
  }
  if (bar < 0 || static_cast<size_t>(bar) >= device_->bars().size() ||
      device_->bars()[bar].is_io || offset + 4 > device_->bars()[bar].size) {
    return Status(ErrorCode::kInvalidArgument, "mmio access outside device bars");
  }
  kernel_->machine().cpu().Charge(kAccountDriver, kernel_->machine().cpu().costs().mmio_access);
  return device_->MmioRead(bar, offset);
}

Status SudDeviceContext::MmioWrite(int bar, uint64_t offset, uint32_t value) {
  if (!bound_) {
    return Status(ErrorCode::kUnavailable, "device not bound");
  }
  if (bar < 0 || static_cast<size_t>(bar) >= device_->bars().size() ||
      device_->bars()[bar].is_io || offset + 4 > device_->bars()[bar].size) {
    return Status(ErrorCode::kInvalidArgument, "mmio access outside device bars");
  }
  kernel_->machine().cpu().Charge(kAccountDriver, kernel_->machine().cpu().costs().mmio_access);
  device_->MmioWrite(bar, offset, value);
  return Status::Ok();
}

bool SudDeviceContext::ConfigWriteAllowed(uint16_t offset, int width, uint32_t value,
                                          std::string* why) const {
  // Writable: the command register (with a bit whitelist), cache line size
  // and latency timer. Everything else — BARs, the capability chain, the
  // MSI capability, interrupt line — is routing-sensitive and kernel-owned.
  if (offset == hw::kPciCommand && width == 2) {
    constexpr uint16_t kAllowed = hw::kPciCommandIoEnable | hw::kPciCommandMemEnable |
                                  hw::kPciCommandBusMaster | hw::kPciCommandIntxDisable;
    if ((value & ~static_cast<uint32_t>(kAllowed)) != 0) {
      *why = "command-register bits outside the allowed set";
      return false;
    }
    return true;
  }
  if ((offset == hw::kPciCacheLineSize || offset == hw::kPciLatencyTimer) && width == 1) {
    return true;
  }
  if (offset >= hw::kPciBar0 && offset < hw::kPciBar0 + 24) {
    *why = "BAR registers are kernel-owned (relocation attack)";
    return false;
  }
  if (offset >= hw::kMsiCapOffset && offset < hw::kMsiCapOffset + 0x14) {
    *why = "MSI capability is kernel-owned (interrupt redirection attack)";
    return false;
  }
  *why = "register not in the safe-PCI write whitelist";
  return false;
}

Result<uint32_t> SudDeviceContext::ConfigRead(uint16_t offset, int width) {
  if (!bound_) {
    return Status(ErrorCode::kUnavailable, "device not bound");
  }
  kernel_->machine().cpu().Charge(kAccountDriver,
                                  kernel_->machine().cpu().costs().pci_config_access);
  return device_->config().Read(offset, width);
}

Status SudDeviceContext::ConfigWrite(uint16_t offset, int width, uint32_t value) {
  if (!bound_) {
    return Status(ErrorCode::kUnavailable, "device not bound");
  }
  std::string why;
  if (!ConfigWriteAllowed(offset, width, value, &why)) {
    SUD_LOG(kAttack) << device_->name() << ": filtered config write at offset " << Hex(offset)
                     << " (" << why << ")";
    return Status(ErrorCode::kPermissionDenied, why);
  }
  kernel_->machine().cpu().Charge(kAccountDriver,
                                  kernel_->machine().cpu().costs().pci_config_access);
  device_->config().Write(offset, width, value);
  return Status::Ok();
}

Result<uint8_t> SudDeviceContext::IoPortRead(uint16_t port) {
  if (!bound_ || process_ == nullptr) {
    return Status(ErrorCode::kUnavailable, "device not bound");
  }
  if (!process_->MayAccessIoPort(port)) {
    SUD_LOG(kAttack) << device_->name() << ": io port " << Hex(port) << " not in process IOPB";
    return Status(ErrorCode::kPermissionDenied, "io port not granted");
  }
  return kernel_->machine().IoPortRead(port);
}

Status SudDeviceContext::IoPortWrite(uint16_t port, uint8_t value) {
  if (!bound_ || process_ == nullptr) {
    return Status(ErrorCode::kUnavailable, "device not bound");
  }
  if (!process_->MayAccessIoPort(port)) {
    SUD_LOG(kAttack) << device_->name() << ": io port " << Hex(port) << " not in process IOPB";
    return Status(ErrorCode::kPermissionDenied, "io port not granted");
  }
  kernel_->machine().IoPortWrite(port, value);
  return Status::Ok();
}

Status SudDeviceContext::RequestIoRegion() {
  if (!bound_ || process_ == nullptr) {
    return Status(ErrorCode::kUnavailable, "device not bound");
  }
  for (size_t b = 0; b < device_->bars().size(); ++b) {
    const hw::BarDesc& bar = device_->bars()[b];
    if (!bar.is_io || bar.size == 0) {
      continue;
    }
    uint16_t base = static_cast<uint16_t>(device_->config().bar(static_cast<int>(b)));
    uint16_t count = static_cast<uint16_t>(bar.size);
    process_->GrantIoPorts(base, count);
    granted_io_base_ = base;
    granted_io_count_ = count;
    return Status::Ok();
  }
  return Status(ErrorCode::kNotFound, "device has no io bar");
}

void SudDeviceContext::OnDeviceInterrupt(uint16_t queue, uint16_t msi_source_id) {
  if (!bound_ || queue >= num_queues_) {
    return;
  }
  std::lock_guard<std::recursive_mutex> lock(irq_mu_);
  hw::Machine& machine = kernel_->machine();
  if (msi_source_id != source_id()) {
    // Our vector, someone else's requester id: a forged interrupt via stray
    // DMA to the MSI address. Masking *our* device is useless — escalate
    // against the storming device's context.
    ++irq_stats_.forged_received;
    SUD_LOG(kAttack) << device_->name() << ": forged MSI (vector "
                     << int{vector_base_} + queue << ") from source " << Hex(msi_source_id);
    if (module_ != nullptr) {
      module_->ReportForgedMsi(msi_source_id);
    }
    return;
  }
  if (device_->config().msi_masked()) {
    // MSI is masked, yet an interrupt arrived: it cannot have come from the
    // device's MSI logic — this is a stray DMA write to the MSI address
    // (Section 3.2.2) or remapping passthrough. Count toward a storm.
    // It can ALSO be a genuine message that raced the mask flip (the device
    // checked the mask bit before a coalesce set it); the source id already
    // matched, so pend the queue — a spurious re-poll is harmless, a lost
    // edge wedges the queue forever.
    irq_pended_[queue] = true;
    ++interrupts_while_masked_;
    if (irq_stats_.remap_blocked || irq_stats_.msi_page_unmapped) {
      // Escalation already applied and yet delivery happened: accounting
      // only (should not occur — the defences block delivery upstream).
      ++irq_stats_.unstoppable;
      return;
    }
    if (interrupts_while_masked_ >= options_.storm_threshold) {
      EscalateStorm();
    } else if (interrupts_while_masked_ == 1) {
      SUD_LOG(kAttack) << device_->name()
                       << ": interrupt delivered while MSI masked (stray DMA to MSI address)";
    }
    if (!irq_stats_.remap_blocked && !irq_stats_.msi_page_unmapped &&
        interrupts_while_masked_ >= options_.storm_threshold) {
      // Intel without interrupt remapping: nothing more SUD can do; the
      // paper's testbed is vulnerable to exactly this livelock (§5.2).
      ++irq_stats_.unstoppable;
    }
    return;
  }

  if (irq_in_flight_[queue]) {
    // A second interrupt on this queue before the driver acknowledged the
    // first: mask further MSIs so an unresponsive driver cannot storm us.
    // (MSI masking is per function, not per message — so a storm on one
    // queue throttles them all until the ack, as on real hardware.)
    // Pend the queue: this edge may have fired for work the driver's poll
    // already missed (frame landed after the ring read, before the ack),
    // and a window-blocked sender will never produce another edge.
    irq_pended_[queue] = true;
    machine.cpu().Charge(kAccountKernel, machine.cpu().costs().pci_config_access);
    device_->config().set_msi_masked(true);
    ++irq_stats_.mask_events;
    ++irq_stats_.coalesced;
    return;
  }

  irq_in_flight_[queue] = true;
  ++irq_stats_.forwarded;
  machine.cpu().Charge(kAccountKernel, machine.cpu().costs().interrupt_entry);
  UchanMsg msg;
  msg.opcode = kOpInterrupt;
  msg.args[0] = queue;
  Status status = shards_->shard(queue).SendAsync(std::move(msg));
  if (!status.ok()) {
    // Ring full even after the channel's bounded retry: treat like an
    // unacknowledged interrupt — mask. The upcall was never delivered, so
    // no ack for it can ever arrive: the in-flight flag must come back off
    // and the queue must pend, or it wedges forever. The next ack on ANY
    // queue (or the pended-MSI refire on unmask) redelivers.
    irq_in_flight_[queue] = false;
    irq_pended_[queue] = true;
    machine.cpu().Charge(kAccountKernel, machine.cpu().costs().pci_config_access);
    device_->config().set_msi_masked(true);
    ++irq_stats_.mask_events;
  }
}

void SudDeviceContext::EscalateStorm() {
  hw::Machine& machine = kernel_->machine();
  ++irq_stats_.storm_escalations;
  if (machine.iommu().interrupt_remapping()) {
    machine.cpu().Charge(kAccountKernel, machine.cpu().costs().irq_remap_update);
    for (uint32_t q = 0; q < num_queues_; ++q) {
      (void)machine.iommu().SetInterruptRemapEntry(
          source_id(), static_cast<uint8_t>(vector_base_ + q), std::nullopt);
    }
    irq_stats_.remap_blocked = true;
    SUD_LOG(kAttack) << device_->name()
                     << ": interrupt storm — disabled MSI via interrupt remapping";
    return;
  }
  if (machine.iommu().mode() == hw::IommuMode::kAmdVi) {
    (void)machine.iommu().Unmap(source_id(), hw::kMsiRangeBase, hw::kPageSize);
    irq_stats_.msi_page_unmapped = true;
    SUD_LOG(kAttack) << device_->name() << ": interrupt storm — unmapped MSI page (AMD-Vi)";
    return;
  }
  SUD_LOG(kAttack) << device_->name()
                   << ": interrupt storm from stray DMA — no interrupt remapping available, "
                      "livelock cannot be stopped (Intel VT-d without IR, §5.2)";
}

Status SudDeviceContext::InterruptAck(uint16_t queue) {
  if (!bound_) {
    return Status(ErrorCode::kUnavailable, "device not bound");
  }
  if (queue >= num_queues_) {
    return Status(ErrorCode::kInvalidArgument, "interrupt_ack for a queue the device lacks");
  }
  std::lock_guard<std::recursive_mutex> lock(irq_mu_);
  irq_in_flight_[queue] = false;
  interrupts_while_masked_ = 0;
  Status fired = Status::Ok();
  if (device_->config().msi_masked() && !irq_stats_.remap_blocked &&
      !irq_stats_.msi_page_unmapped) {
    kernel_->machine().cpu().Charge(kAccountKernel,
                                    kernel_->machine().cpu().costs().pci_config_access);
    device_->config().set_msi_masked(false);
    // A masked interrupt pends and fires on unmask, per the PCI spec.
    fired = device_->FirePendingMsi();
  }
  // Redeliver edges this layer swallowed mid-handling (coalesced while in
  // flight, or raced a mask flip): the work they signalled is already in the
  // descriptor rings, and no further edge may ever come — a window-blocked
  // generator stops transmitting at exactly one full window. One upcall per
  // pended queue; a queue FirePendingMsi just re-raised is skipped (its new
  // in-flight interrupt already covers the re-poll).
  for (uint32_t q = 0; q < num_queues_; ++q) {
    if (!irq_pended_[q]) {
      continue;
    }
    if (irq_in_flight_[q]) {
      continue;  // still being handled; that queue's own ack sweeps it
    }
    irq_pended_[q] = false;
    irq_in_flight_[q] = true;
    ++irq_stats_.forwarded;
    kernel_->machine().cpu().Charge(kAccountKernel,
                                    kernel_->machine().cpu().costs().interrupt_entry);
    UchanMsg msg;
    msg.opcode = kOpInterrupt;
    msg.args[0] = q;
    if (!shards_->shard(q).SendAsync(std::move(msg)).ok()) {
      // Shard ring full: keep the pend; the next ack on any queue retries.
      irq_in_flight_[q] = false;
      irq_pended_[q] = true;
    }
  }
  return fired;
}

void SudDeviceContext::Teardown() {
  if (torn_down_ || !bound_) {
    torn_down_ = true;
    return;
  }
  hw::Machine& machine = kernel_->machine();
  if (shards_ != nullptr) {
    shards_->ShutdownAll();
  }
  if (process_ != nullptr) {
    process_->RevokeIoPorts(granted_io_base_, granted_io_count_);
    process_->UncchargeMemory(static_cast<uint64_t>(options_.pool_buffers) *
                              options_.pool_buffer_bytes);
  }
  if (pool_ != nullptr) {
    // TX staging the dead driver never completed: those buffers leave with
    // the dying epoch (counted loss), never back into a live free list.
    quarantined_buffers_ += pool_->outstanding();
  }
  if (dma_ != nullptr) {
    dma_->ReleaseAll();
  }
  (void)machine.iommu().DestroyContext(source_id());
  for (uint32_t q = 0; q < num_queues_; ++q) {
    (void)kernel_->FreeIrq(static_cast<uint8_t>(vector_base_ + q));
  }
  // Quiesce the device: no more DMA, no more interrupts.
  device_->config().set_msi_enabled(false);
  uint16_t command = device_->config().command();
  device_->config().set_command(command & static_cast<uint16_t>(~hw::kPciCommandBusMaster));
  bound_ = false;
  process_ = nullptr;
  torn_down_ = true;
  SUD_LOG(kInfo) << device_->name() << ": context torn down, all resources reclaimed";
}

SafePciModule::SafePciModule(kern::Kernel* kernel, Policy policy)
    : kernel_(kernel), policy_(policy) {
  if (policy_.enable_acs) {
    for (const auto& sw : kernel_->machine().switches()) {
      sw->set_acs(hw::PcieSwitch::AcsConfig{/*source_validation=*/true,
                                            /*p2p_request_redirect=*/true});
    }
  }
}

Result<SudDeviceContext*> SafePciModule::ExportDevice(hw::PciDevice* device, kern::Uid owner_uid,
                                                      SudDeviceContext::Options options) {
  if (contexts_.count(device) != 0) {
    return Status(ErrorCode::kAlreadyExists, device->name() + " already exported");
  }
  if (policy_.enable_acs) {
    for (const auto& sw : kernel_->machine().switches()) {
      sw->set_acs(hw::PcieSwitch::AcsConfig{true, true});
    }
  }
  auto context = std::make_unique<SudDeviceContext>(kernel_, device, owner_uid, options);
  SudDeviceContext* ptr = context.get();
  ptr->module_ = this;
  contexts_[device] = std::move(context);
  SUD_LOG(kInfo) << "exported " << device->name() << " for uid " << owner_uid;
  return ptr;
}

Status SafePciModule::RevokeDevice(hw::PciDevice* device) {
  auto it = contexts_.find(device);
  if (it == contexts_.end()) {
    return Status(ErrorCode::kNotFound, "device not exported");
  }
  it->second->Teardown();
  contexts_.erase(it);
  return Status::Ok();
}

SudDeviceContext* SafePciModule::Find(hw::PciDevice* device) {
  auto it = contexts_.find(device);
  return it == contexts_.end() ? nullptr : it->second.get();
}

SudDeviceContext* SafePciModule::FindBySourceId(uint16_t source_id) {
  for (auto& [device, context] : contexts_) {
    if (device->address().source_id() == source_id) {
      return context.get();
    }
  }
  return nullptr;
}

void SafePciModule::ReportForgedMsi(uint16_t attacker_source_id) {
  SudDeviceContext* attacker = FindBySourceId(attacker_source_id);
  if (attacker == nullptr) {
    SUD_LOG(kAttack) << "forged MSI from source " << Hex(attacker_source_id)
                     << " which is not an exported device";
    return;
  }
  attacker->irq_stats_.storm_escalations++;
  hw::Machine& machine = kernel_->machine();
  if (machine.iommu().interrupt_remapping()) {
    // With interrupt remapping the forged write would have been blocked
    // before delivery; reaching here means remapping was enabled after the
    // fact — blank the attacker's entries anyway.
    attacker->irq_stats_.remap_blocked = true;
    return;
  }
  if (machine.iommu().mode() == hw::IommuMode::kAmdVi) {
    (void)machine.iommu().Unmap(attacker_source_id, hw::kMsiRangeBase, hw::kPageSize);
    attacker->irq_stats_.msi_page_unmapped = true;
    SUD_LOG(kAttack) << attacker->device()->name()
                     << ": forged-MSI storm stopped by unmapping its MSI page (AMD-Vi)";
    return;
  }
  attacker->irq_stats_.unstoppable++;
  SUD_LOG(kAttack) << attacker->device()->name()
                   << ": forged-MSI storm cannot be stopped (Intel VT-d without IR, §5.2)";
}

}  // namespace sud
