// SafePciModule / SudDeviceContext: the safe PCI device access kernel module
// (the 2,800-line component of Figure 5).
//
// For each PCI device handed to an untrusted driver, SUD exports four device
// files (Figure 6): ctl (the uchan), mmio (the device's own registers only),
// and the two DMA allocators. SudDeviceContext is the kernel-side object
// behind that directory; every driver-reachable operation on it enforces the
// Section 3.2 rules:
//
//  * MMIO access is confined to the device's own page-aligned BARs.
//  * Legacy IO-port access is checked against the process IOPB, which only
//    ever contains the device's own ports (RequestIoRegion).
//  * PCI config space is reached *only* through a filtered syscall surface:
//    reads are open; writes to BARs, the MSI capability, the capability
//    pointer and other routing-sensitive registers are denied (a malicious
//    driver could otherwise relocate its BAR over another device, redirect
//    its MSI doorbell, or intercept other devices' transactions).
//  * The device's DMA is confined by the IOMMU context created at Bind time,
//    and peer-to-peer attacks by the ACS configuration forced on the
//    device's switch.
//  * Interrupts are forwarded as upcalls; a second interrupt before the
//    driver's interrupt_ack downcall masks MSI (Section 3.2.2), and a storm
//    that masking cannot stop (stray DMA to the MSI address) escalates to
//    interrupt remapping (Intel + IR), unmapping the MSI page (AMD), or — on
//    the paper's own Intel-without-IR testbed — is detected but unstoppable,
//    reproducing the Section 5.2 negative result.
//
// Multi-queue devices: Options::num_queues shards the ctl file into one
// uchan ring pair per device queue, with one multi-message MSI vector per
// queue. Shard q carries queue q's packet traffic (xmit upcalls, netif_rx
// and free-buffer downcalls, the queue's interrupt upcall and ack); shard 0
// additionally carries control traffic. Each shard has its own lock, so
// per-queue driver threads and the kernel's per-queue transmit paths never
// contend on a shared channel — the scaling the ROADMAP's multi-queue item
// asks for. Kernel-side dispatch receives the *shard index* a downcall
// arrived on out-of-band, so a malicious driver cannot cross-talk queues by
// lying in a marshalled field.
//
// Teardown() reclaims everything (uchans, IOMMU context, DMA pages, IOPB
// grants, the MSI vectors), which is what makes `kill -9` + restart safe
// (Section 4.1).

#ifndef SUD_SRC_SUD_SAFE_PCI_H_
#define SUD_SRC_SUD_SAFE_PCI_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/hw/machine.h"
#include "src/kern/kernel.h"
#include "src/sud/dma_space.h"
#include "src/sud/shared_pool.h"
#include "src/sud/uchan.h"

namespace sud {

// Generic upcall opcodes issued by the SUD core itself (proxy drivers define
// their own ranges above kOpDeviceClassBase).
inline constexpr uint32_t kOpInterrupt = 1;  // Figure 7: "interrupt"; args[0]: queue
inline constexpr uint32_t kOpDeviceClassBase = 0x100;

// Generic downcall opcodes (Figure 7 samples).
inline constexpr uint32_t kOpInterruptAck = 1;      // "interrupt_ack"; args[0]: queue
inline constexpr uint32_t kOpRequestRegion = 2;     // "request_region"
inline constexpr uint32_t kOpPciFindCapability = 3; // "pci_find_capability"
inline constexpr uint32_t kOpDownDeviceClassBase = 0x100;

// Upper bound on uchan shards / MSI messages per exported device (the PCI
// multiple-message ceiling is 32; 8 matches the device models).
inline constexpr uint32_t kSudMaxQueues = 8;

class SafePciModule;

class SudDeviceContext {
 public:
  struct Options {
    uint32_t pool_buffers = 512;
    uint32_t pool_buffer_bytes = 2048;
    Uchan::Config uchan;
    // Uchan shards / MSI messages: one per device queue (clamped to
    // [1, kSudMaxQueues]). 1 reproduces the single-lane channel exactly.
    uint32_t num_queues = 1;
    // Interrupts arriving while MSI is masked (i.e. necessarily stray-DMA
    // generated) before the storm escalation kicks in.
    uint32_t storm_threshold = 8;
  };

  SudDeviceContext(kern::Kernel* kernel, hw::PciDevice* device, kern::Uid owner_uid,
                   Options options);
  ~SudDeviceContext();

  SudDeviceContext(const SudDeviceContext&) = delete;
  SudDeviceContext& operator=(const SudDeviceContext&) = delete;

  hw::PciDevice* device() { return device_; }
  kern::Uid owner_uid() const { return owner_uid_; }
  uint16_t source_id() const { return device_->address().source_id(); }
  uint32_t num_queues() const { return num_queues_; }

  // Binds the device to driver process `proc` (the driver opening the sud
  // files): UID check, IOMMU context creation, MSI setup, IRQ registration.
  Status Bind(kern::Process* proc);
  bool bound() const { return bound_; }
  kern::Process* bound_process() { return process_; }

  // Installs the kernel-side downcall handler (the proxy driver's dispatch
  // function); it receives the shard the downcall arrived on. Survives
  // rebinds: each fresh uchan set created by Bind gets it.
  using QueuedDowncallHandler = std::function<void(UchanMsg&, uint16_t queue)>;
  void set_downcall_handler(QueuedDowncallHandler handler);

  // End-of-kernel-entry hook per shard (the proxy's NAPI rx-bundle delivery
  // point). Survives rebinds like the downcall handler.
  using QueuedFlushHandler = std::function<void(uint16_t queue)>;
  void set_downcall_flush_handler(QueuedFlushHandler handler);

  // --- the four device files -------------------------------------------------
  // ctl: shard 0 (control + queue 0); ctl(q): queue q's ring pair.
  Uchan& ctl() { return shards_->shard(0); }
  Uchan& ctl(uint16_t queue) { return shards_->shard(queue); }
  // Sums every shard's counters (the single-lane view of the channel).
  Uchan::Stats AggregateCtlStats() const;
  DmaSpace& dma() { return *dma_; }
  SharedBufferPool& pool() { return *pool_; }

  // mmio file: register access confined to this device's own BARs.
  Result<uint32_t> MmioRead(int bar, uint64_t offset);
  Status MmioWrite(int bar, uint64_t offset, uint32_t value);

  // Filtered PCI config syscalls (Section 3.2.1).
  Result<uint32_t> ConfigRead(uint16_t offset, int width);
  Status ConfigWrite(uint16_t offset, int width, uint32_t value);

  // Legacy IO ports, checked against the bound process's IOPB.
  Result<uint8_t> IoPortRead(uint16_t port);
  Status IoPortWrite(uint16_t port, uint8_t value);
  // request_region downcall target: grant the device's own IO BAR ports.
  Status RequestIoRegion();

  // --- interrupt path ---------------------------------------------------------
  // interrupt_ack downcall target: driver finished handling queue `queue`'s
  // interrupt; unmask and deliver anything that pended.
  Status InterruptAck() { return InterruptAck(0); }
  Status InterruptAck(uint16_t queue);

  struct InterruptStats {
    uint64_t forwarded = 0;       // upcalls issued
    uint64_t coalesced = 0;       // arrived during handling, before masking
    uint64_t mask_events = 0;     // times MSI was masked
    uint64_t storm_escalations = 0;
    uint64_t unstoppable = 0;     // Intel-without-IR livelock interrupts
    uint64_t forged_received = 0; // interrupts whose MSI write came from another device
    bool remap_blocked = false;   // interrupt remapping entry blocked
    bool msi_page_unmapped = false;  // AMD escalation applied
  };
  const InterruptStats& interrupt_stats() const { return irq_stats_; }
  // Base of the contiguous vector range; queue q fires vector_base + q.
  uint8_t irq_vector() const { return vector_base_; }

  // Bind generation: bumped on every successful Bind and stamped into the
  // pool's handle epoch, so buffer ids from a dead (pre-restart) instance
  // can never be honored by the live one.
  uint32_t bind_generation() const { return bind_generation_.load(std::memory_order_relaxed); }
  // TX-staging buffers still in the driver's hands at Teardown, quarantined
  // with the dying epoch (cumulative across restarts): the counted in-flight
  // loss a crash can cause.
  uint64_t quarantined_buffers() const {
    return quarantined_buffers_.load(std::memory_order_relaxed);
  }

  // Full reclamation (driver killed / device revoked).
  void Teardown();

 private:
  void OnDeviceInterrupt(uint16_t queue, uint16_t source_id);
  void EscalateStorm();
  bool ConfigWriteAllowed(uint16_t offset, int width, uint32_t value, std::string* why) const;

  friend class SafePciModule;

  kern::Kernel* kernel_;
  hw::PciDevice* device_;
  kern::Uid owner_uid_;
  Options options_;
  SafePciModule* module_ = nullptr;  // for cross-device forged-MSI escalation
  kern::Process* process_ = nullptr;
  uint32_t num_queues_ = 1;
  bool bound_ = false;
  bool torn_down_ = false;
  std::atomic<uint32_t> bind_generation_{0};
  std::atomic<uint64_t> quarantined_buffers_{0};

  std::unique_ptr<UchanShardSet> shards_;  // one uchan ring pair per queue
  std::unique_ptr<DmaSpace> dma_;
  std::unique_ptr<SharedBufferPool> pool_;
  QueuedDowncallHandler downcall_handler_;
  QueuedFlushHandler downcall_flush_handler_;

  uint8_t vector_base_ = 0;
  // Serializes interrupt bookkeeping (in-flight flags, MSI mask flips, storm
  // counters) across the per-queue pump threads and the delivery thread.
  // Recursive: InterruptAck's unmask re-delivers pended MSIs, which re-enter
  // OnDeviceInterrupt on the same call stack.
  std::recursive_mutex irq_mu_;
  std::array<bool, kSudMaxQueues> irq_in_flight_{};
  // Genuine device MSIs swallowed while their queue's interrupt was in
  // flight (or the function masked): the signalled work already sits in the
  // descriptor ring, and a window-blocked sender may never produce another
  // edge — so InterruptAck redelivers exactly one upcall per pended queue.
  std::array<bool, kSudMaxQueues> irq_pended_{};
  uint32_t interrupts_while_masked_ = 0;
  InterruptStats irq_stats_;

  // IO ports granted (for revocation at teardown).
  uint16_t granted_io_base_ = 0;
  uint16_t granted_io_count_ = 0;
};

// The module: tracks exported devices and owns their contexts. Also applies
// the fabric-wide policy (ACS on every switch) the first time a device is
// exported.
class SafePciModule {
 public:
  struct Policy {
    bool enable_acs = true;  // tests disable this to demonstrate the attack
  };

  explicit SafePciModule(kern::Kernel* kernel) : SafePciModule(kernel, Policy{}) {}
  SafePciModule(kern::Kernel* kernel, Policy policy);

  // Exports `device` for use by an untrusted driver owned by `owner_uid`
  // (the chown step of Section 4.1).
  Result<SudDeviceContext*> ExportDevice(hw::PciDevice* device, kern::Uid owner_uid) {
    return ExportDevice(device, owner_uid, SudDeviceContext::Options{});
  }
  Result<SudDeviceContext*> ExportDevice(hw::PciDevice* device, kern::Uid owner_uid,
                                         SudDeviceContext::Options options);
  Status RevokeDevice(hw::PciDevice* device);
  SudDeviceContext* Find(hw::PciDevice* device);
  SudDeviceContext* FindBySourceId(uint16_t source_id);

  // A context received an interrupt whose MSI write originated from another
  // device (a stray-DMA-forged vector): escalate against the *attacker*.
  void ReportForgedMsi(uint16_t attacker_source_id);

 private:
  kern::Kernel* kernel_;
  Policy policy_;
  std::map<hw::PciDevice*, std::unique_ptr<SudDeviceContext>> contexts_;
};

}  // namespace sud

#endif  // SUD_SRC_SUD_SAFE_PCI_H_
