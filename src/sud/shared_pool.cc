#include "src/sud/shared_pool.h"

#include "src/base/fault_injector.h"

namespace sud {

SharedBufferPool::SharedBufferPool(DmaSpace* dma, uint32_t count, uint32_t buffer_bytes,
                                   uint32_t epoch)
    : dma_(dma),
      count_(count > kMaxBuffers ? kMaxBuffers : count),
      buffer_bytes_(buffer_bytes),
      epoch_(epoch & kEpochMask) {
  if (epoch_ == 0) {
    epoch_ = 1;  // epoch 0 never exists, so zero-extended raw ints never match
  }
}

Status SharedBufferPool::Init() {
  if (initialized_) {
    return Status(ErrorCode::kAlreadyExists, "pool already initialized");
  }
  Result<DmaRegion> region =
      dma_->Alloc(static_cast<uint64_t>(count_) * buffer_bytes_, /*coherent=*/false);
  if (!region.ok()) {
    return region.status();
  }
  region_ = region.value();
  Result<ByteSpan> window =
      dma_->HostView(region_.iova, static_cast<uint64_t>(count_) * buffer_bytes_);
  if (!window.ok()) {
    return window.status();
  }
  host_base_ = window.value().data();
  allocated_.assign(count_, false);
  gen_.assign(count_, 1);
  free_list_.reserve(count_);
  for (int32_t index = static_cast<int32_t>(count_) - 1; index >= 0; --index) {
    free_list_.push_back(index);
  }
  // Grant slots live in the index space above the staged buffers.
  uint32_t grant_count = kMaxBuffers - count_;
  grant_slots_.assign(grant_count, GrantSlot{});
  grant_gen_.assign(grant_count, 1);
  grant_free_.reserve(grant_count);
  for (uint32_t slot = grant_count; slot > 0; --slot) {
    grant_free_.push_back(slot - 1);
  }
  initialized_ = true;
  return Status::Ok();
}

int32_t SharedBufferPool::ValidateLocked(int32_t id, bool* stale_epoch) const {
  if (stale_epoch != nullptr) {
    *stale_epoch = false;
  }
  if (id < 0) {
    return -1;
  }
  uint32_t bits = static_cast<uint32_t>(id);
  uint32_t index = bits & (kMaxBuffers - 1);
  uint32_t gen = (bits >> kIndexBits) & kGenMask;
  uint32_t epoch = (bits >> (kIndexBits + kGenBits)) & kEpochMask;
  if (epoch != epoch_) {
    if (stale_epoch != nullptr) {
      *stale_epoch = epoch != 0;  // 0 is garbage, not a dead epoch
    }
    return -1;
  }
  if (index >= count_) {
    // Grant slot: active and its persistent generation current.
    uint32_t slot = index - count_;
    if (slot >= grant_slots_.size() || !grant_slots_[slot].active || gen != grant_gen_[slot]) {
      return -1;
    }
    return static_cast<int32_t>(index);
  }
  if (gen != gen_[index]) {
    return -1;
  }
  return static_cast<int32_t>(index);
}

Result<int32_t> SharedBufferPool::GrantExternal(uint64_t iova, uint32_t len,
                                                std::function<void()> release) {
  if (!initialized_) {
    return Status(ErrorCode::kUnavailable, "pool not initialized");
  }
  if (len == 0 || len > buffer_bytes_) {
    // The driver-side semantic check bounds every fragment by one staging
    // buffer; a grant that couldn't pass it would be armed nowhere.
    return Status(ErrorCode::kInvalidArgument, "grant length exceeds buffer size");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (grant_free_.empty()) {
    return Status(ErrorCode::kExhausted, "grant slots exhausted");
  }
  uint32_t slot = grant_free_.back();
  grant_free_.pop_back();
  GrantSlot& grant = grant_slots_[slot];
  grant.iova = iova;
  grant.len = len;
  grant.active = true;
  grant.release = std::move(release);
  ++active_grants_;
  return EncodeGrantLocked(count_ + slot);
}

Result<int32_t> SharedBufferPool::Alloc() {
  if (!initialized_) {
    return Status(ErrorCode::kUnavailable, "pool not initialized");
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Injected memory pressure: the pool reports exhaustion with buffers still
  // free. Callers must treat it exactly like a genuinely empty free list —
  // counted TX backpressure, never silent loss or partial staging.
  if (SUD_FAULT_POINT("sud.pool.alloc")) {
    ++injected_exhausted_;
    return Status(ErrorCode::kExhausted, "shared buffer pool exhausted (injected)");
  }
  if (free_list_.empty()) {
    return Status(ErrorCode::kExhausted, "shared buffer pool exhausted");
  }
  int32_t index = free_list_.back();
  free_list_.pop_back();
  allocated_[index] = true;
  ++allocated_count_;
  return EncodeLocked(static_cast<uint32_t>(index));
}

void SharedBufferPool::Free(int32_t id) {
  std::function<void()> release;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool stale_epoch = false;
    int32_t index = ValidateLocked(id, &stale_epoch);
    if (index < 0 || (index < static_cast<int32_t>(count_) && !allocated_[index])) {
      ++double_frees_;
      if (stale_epoch) {
        ++stale_frees_;
      }
      return;
    }
    if (index >= static_cast<int32_t>(count_)) {
      // Grant retired: bump the slot's persistent generation (replay of this
      // id is a counted rejection forever) and fire the release hook outside
      // the lock — it re-enters the proxy (unseal, unmap, skb destruction).
      uint32_t slot = static_cast<uint32_t>(index) - count_;
      GrantSlot& grant = grant_slots_[slot];
      release = std::move(grant.release);
      grant = GrantSlot{};
      grant_gen_[slot] = (grant_gen_[slot] + 1) & kGenMask;
      if (grant_gen_[slot] == 0) {
        grant_gen_[slot] = 1;
      }
      grant_free_.push_back(slot);
      --active_grants_;
    } else {
      allocated_[index] = false;
      --allocated_count_;
      // Retire the handle: the generation moves on, so replaying this id —
      // even after the buffer is reallocated — is a counted rejection, not a
      // free.
      gen_[index] = (gen_[index] + 1) & kGenMask;
      if (gen_[index] == 0) {
        gen_[index] = 1;
      }
      free_list_.push_back(index);
    }
  }
  if (release) {
    release();
  }
}

Result<ByteSpan> SharedBufferPool::Buffer(int32_t id) {
  if (!initialized_) {
    return Status(ErrorCode::kInvalidArgument, "bad buffer id");
  }
  std::lock_guard<std::mutex> lock(mu_);
  int32_t index = ValidateLocked(id);
  if (index < 0 || index >= static_cast<int32_t>(count_)) {
    // Grants have no pool-side storage to expose.
    return Status(ErrorCode::kInvalidArgument, "bad buffer id");
  }
  return ByteSpan(host_base_ + static_cast<uint64_t>(index) * buffer_bytes_, buffer_bytes_);
}

Result<uint64_t> SharedBufferPool::BufferIova(int32_t id) const {
  if (!initialized_) {
    return Status(ErrorCode::kInvalidArgument, "bad buffer id");
  }
  std::lock_guard<std::mutex> lock(mu_);
  int32_t index = ValidateLocked(id);
  if (index < 0) {
    return Status(ErrorCode::kInvalidArgument, "bad buffer id");
  }
  if (index >= static_cast<int32_t>(count_)) {
    return grant_slots_[static_cast<uint32_t>(index) - count_].iova;
  }
  return region_.iova + static_cast<uint64_t>(index) * buffer_bytes_;
}

Result<uint64_t> SharedBufferPool::BufferPaddr(int32_t id) const {
  if (!initialized_) {
    return Status(ErrorCode::kInvalidArgument, "bad buffer id");
  }
  std::lock_guard<std::mutex> lock(mu_);
  int32_t index = ValidateLocked(id);
  if (index < 0 || index >= static_cast<int32_t>(count_)) {
    return Status(ErrorCode::kInvalidArgument, "bad buffer id");
  }
  return region_.paddr + static_cast<uint64_t>(index) * buffer_bytes_;
}

}  // namespace sud
