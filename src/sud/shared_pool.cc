#include "src/sud/shared_pool.h"

namespace sud {

SharedBufferPool::SharedBufferPool(DmaSpace* dma, uint32_t count, uint32_t buffer_bytes)
    : dma_(dma), count_(count), buffer_bytes_(buffer_bytes) {}

Status SharedBufferPool::Init() {
  if (initialized_) {
    return Status(ErrorCode::kAlreadyExists, "pool already initialized");
  }
  Result<DmaRegion> region =
      dma_->Alloc(static_cast<uint64_t>(count_) * buffer_bytes_, /*coherent=*/false);
  if (!region.ok()) {
    return region.status();
  }
  region_ = region.value();
  Result<ByteSpan> window =
      dma_->HostView(region_.iova, static_cast<uint64_t>(count_) * buffer_bytes_);
  if (!window.ok()) {
    return window.status();
  }
  host_base_ = window.value().data();
  free_list_.reserve(count_);
  allocated_.assign(count_, false);
  for (int32_t id = static_cast<int32_t>(count_) - 1; id >= 0; --id) {
    free_list_.push_back(id);
  }
  initialized_ = true;
  return Status::Ok();
}

Result<int32_t> SharedBufferPool::Alloc() {
  if (!initialized_) {
    return Status(ErrorCode::kUnavailable, "pool not initialized");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (free_list_.empty()) {
    return Status(ErrorCode::kExhausted, "shared buffer pool exhausted");
  }
  int32_t id = free_list_.back();
  free_list_.pop_back();
  allocated_[id] = true;
  return id;
}

void SharedBufferPool::Free(int32_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!IsValidId(id) || !allocated_[id]) {
    ++double_frees_;
    return;
  }
  allocated_[id] = false;
  free_list_.push_back(id);
}

Result<ByteSpan> SharedBufferPool::Buffer(int32_t id) {
  if (!initialized_ || !IsValidId(id)) {
    return Status(ErrorCode::kInvalidArgument, "bad buffer id");
  }
  return ByteSpan(host_base_ + static_cast<uint64_t>(id) * buffer_bytes_, buffer_bytes_);
}

Result<uint64_t> SharedBufferPool::BufferIova(int32_t id) const {
  if (!initialized_ || !IsValidId(id)) {
    return Status(ErrorCode::kInvalidArgument, "bad buffer id");
  }
  return region_.iova + static_cast<uint64_t>(id) * buffer_bytes_;
}

Result<uint64_t> SharedBufferPool::BufferPaddr(int32_t id) const {
  if (!initialized_ || !IsValidId(id)) {
    return Status(ErrorCode::kInvalidArgument, "bad buffer id");
  }
  return region_.paddr + static_cast<uint64_t>(id) * buffer_bytes_;
}

}  // namespace sud
