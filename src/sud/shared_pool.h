// SharedBufferPool: sud_alloc / sud_free (Figure 3).
//
// Pre-allocated, fixed-size message buffers living in DMA-capable shared
// memory: the kernel proxy, the user-space driver *and the device* all see
// the same bytes (the device through the IOMMU mapping installed by the
// DmaSpace the pool is carved from). This is what lets packet transmit
// upcalls and receive downcalls exchange buffer ids instead of copying
// (Section 3.1.2) — and also what makes the TOCTOU attack possible, since
// the driver can keep writing a buffer after handing it to the kernel.
//
// Buffer ids are epoch-tagged handles, not raw indices. A handle encodes
// the buffer index, a per-buffer allocation generation (bumped on every
// free, so a handle dies the moment its buffer is returned) and the pool
// epoch (the device-context bind generation). A restarted driver gets a
// pool with a new epoch, so every id the *previous* instance ever held —
// including ids it squirreled away to replay after the crash — fails
// validation. Rejected frees are tolerated and counted; the stale-epoch
// subset is counted separately so restart-time replay attacks are visible.

#ifndef SUD_SRC_SUD_SHARED_POOL_H_
#define SUD_SRC_SUD_SHARED_POOL_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "src/base/status.h"
#include "src/sud/dma_space.h"

namespace sud {

class SharedBufferPool {
 public:
  // Handle layout (31 usable bits; bit 31 stays 0 so handles are positive):
  //   bits  0..11  buffer index            (pools up to 4096 buffers)
  //   bits 12..21  per-buffer generation   (1..1023, wraps, never 0)
  //   bits 22..30  pool epoch              (1..511, wraps, never 0)
  // Generation and epoch never being 0 means small raw integers — the ids a
  // pre-epoch driver believed in, or a guessing attacker's first tries —
  // are never valid handles.
  static constexpr int kIndexBits = 12;
  static constexpr int kGenBits = 10;
  static constexpr int kEpochBits = 9;
  static constexpr uint32_t kMaxBuffers = 1u << kIndexBits;

  // Carves `count` buffers of `buffer_bytes` out of `dma` (one contiguous
  // cacheable region). `epoch` tags every handle this pool instance issues;
  // the device context passes its bind generation.
  SharedBufferPool(DmaSpace* dma, uint32_t count = 512, uint32_t buffer_bytes = 2048,
                   uint32_t epoch = 1);

  Status Init();

  // sud_alloc: returns a buffer handle, or kExhausted. Thread-safe: the proxy
  // allocates on the kernel's transmit path while per-queue driver threads
  // return buffers via free downcalls.
  Result<int32_t> Alloc();
  // sud_free: returns the buffer to the pool. Double frees, garbage ids and
  // stale handles (dead generation or dead epoch) are tolerated and counted
  // (a malicious driver shouldn't corrupt the free list).
  void Free(int32_t id);

  // TX grant: hands out a handle for a device-readable EXTERNAL range (a
  // sealed kernel frag page the DmaSpace mapped read-only) from the index
  // space above `count()`. A grant rides the same wire records, the same
  // epoch/generation validation and the same free downcall as a staged
  // buffer — the driver cannot tell the difference — but BufferIova resolves
  // to the granted IOVA instead of pool storage, so descriptors arm straight
  // from the sealed page with no staging copy. `len` must fit one staging
  // buffer (the driver-side per-fragment bound). `release` fires after the
  // grant's free is accepted, outside the pool lock.
  Result<int32_t> GrantExternal(uint64_t iova, uint32_t len, std::function<void()> release);
  // Grants currently outstanding (also included in outstanding()).
  uint32_t active_grants() const {
    std::lock_guard<std::mutex> lock(mu_);
    return active_grants_;
  }

  // Full handle validation: index in range, generation current, epoch ours.
  bool IsValidId(int32_t id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return ValidateLocked(id) >= 0;
  }
  uint32_t buffer_bytes() const { return buffer_bytes_; }
  uint32_t count() const { return count_; }
  uint32_t epoch() const { return epoch_; }
  uint32_t free_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<uint32_t>(free_list_.size());
  }
  // Buffers currently handed out, grants included (the in-flight TX staging
  // a crash strands: what Teardown quarantines).
  uint32_t outstanding() const {
    std::lock_guard<std::mutex> lock(mu_);
    return allocated_count_ + active_grants_;
  }
  // Every rejected free (double frees, garbage, stale handles).
  uint64_t double_frees() const {
    std::lock_guard<std::mutex> lock(mu_);
    return double_frees_;
  }
  // The subset of rejected frees whose handle named a dead pool epoch — a
  // replay from before a crash/restart.
  uint64_t stale_frees() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stale_frees_;
  }
  // Allocations refused by the "sud.pool.alloc" fault site (injected memory
  // pressure, distinct from genuine exhaustion).
  uint64_t injected_exhausted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_exhausted_;
  }

  // Shared view of buffer `id` (both sides use this; the device reaches the
  // same bytes via BufferIova through the IOMMU). Validation checks the full
  // handle, so a stale id from a dead epoch or a freed buffer is refused
  // everywhere an id can be presented.
  Result<ByteSpan> Buffer(int32_t id);
  // The device-visible address of buffer `id`.
  Result<uint64_t> BufferIova(int32_t id) const;
  // The cached physical address backing buffer `id` (what the IOMMU would
  // translate BufferIova to).
  Result<uint64_t> BufferPaddr(int32_t id) const;

 private:
  static constexpr uint32_t kGenMask = (1u << kGenBits) - 1;
  static constexpr uint32_t kEpochMask = (1u << kEpochBits) - 1;

  int32_t EncodeLocked(uint32_t index) const {
    return static_cast<int32_t>(index | (gen_[index] << kIndexBits) |
                                (epoch_ << (kIndexBits + kGenBits)));
  }
  int32_t EncodeGrantLocked(uint32_t index) const {
    return static_cast<int32_t>(index | (grant_gen_[index - count_] << kIndexBits) |
                                (epoch_ << (kIndexBits + kGenBits)));
  }
  // Returns the buffer index (grant indices included, >= count_), or -1 if
  // the handle is garbage/stale. Sets `*stale_epoch` when the failure is
  // specifically a dead pool epoch.
  int32_t ValidateLocked(int32_t id, bool* stale_epoch = nullptr) const;

  // One grant slot; slot s backs pool index count_ + s.
  struct GrantSlot {
    uint64_t iova = 0;
    uint32_t len = 0;
    bool active = false;
    std::function<void()> release;
  };

  DmaSpace* dma_;
  uint32_t count_;
  uint32_t buffer_bytes_;
  uint32_t epoch_;
  DmaRegion region_{};
  uint8_t* host_base_ = nullptr;  // host view of the whole pool region
  bool initialized_ = false;
  // Guards the free list, allocation bitmap and per-buffer generations.
  mutable std::mutex mu_;
  std::vector<int32_t> free_list_;
  std::vector<bool> allocated_;
  std::vector<uint32_t> gen_;  // per-buffer generation, 1..kGenMask
  std::vector<GrantSlot> grant_slots_;   // indices [count_, kMaxBuffers)
  std::vector<uint32_t> grant_gen_;      // persistent per-slot generation
  std::vector<uint32_t> grant_free_;     // free slot offsets
  uint32_t active_grants_ = 0;
  uint32_t allocated_count_ = 0;
  uint64_t double_frees_ = 0;
  uint64_t stale_frees_ = 0;
  uint64_t injected_exhausted_ = 0;
};

}  // namespace sud

#endif  // SUD_SRC_SUD_SHARED_POOL_H_
