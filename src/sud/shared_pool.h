// SharedBufferPool: sud_alloc / sud_free (Figure 3).
//
// Pre-allocated, fixed-size message buffers living in DMA-capable shared
// memory: the kernel proxy, the user-space driver *and the device* all see
// the same bytes (the device through the IOMMU mapping installed by the
// DmaSpace the pool is carved from). This is what lets packet transmit
// upcalls and receive downcalls exchange buffer ids instead of copying
// (Section 3.1.2) — and also what makes the TOCTOU attack possible, since
// the driver can keep writing a buffer after handing it to the kernel.

#ifndef SUD_SRC_SUD_SHARED_POOL_H_
#define SUD_SRC_SUD_SHARED_POOL_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/base/status.h"
#include "src/sud/dma_space.h"

namespace sud {

class SharedBufferPool {
 public:
  // Carves `count` buffers of `buffer_bytes` out of `dma` (one contiguous
  // cacheable region).
  SharedBufferPool(DmaSpace* dma, uint32_t count = 512, uint32_t buffer_bytes = 2048);

  Status Init();

  // sud_alloc: returns a buffer id, or kExhausted. Thread-safe: the proxy
  // allocates on the kernel's transmit path while per-queue driver threads
  // return buffers via free downcalls.
  Result<int32_t> Alloc();
  // sud_free: returns the buffer to the pool. Double frees are tolerated
  // and counted (a malicious driver shouldn't corrupt the free list).
  void Free(int32_t id);

  bool IsValidId(int32_t id) const { return id >= 0 && static_cast<uint32_t>(id) < count_; }
  uint32_t buffer_bytes() const { return buffer_bytes_; }
  uint32_t count() const { return count_; }
  uint32_t free_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<uint32_t>(free_list_.size());
  }
  uint64_t double_frees() const {
    std::lock_guard<std::mutex> lock(mu_);
    return double_frees_;
  }

  // Shared view of buffer `id` (both sides use this; the device reaches the
  // same bytes via BufferIova through the IOMMU). The host window base and
  // per-buffer (iova, paddr) pairs are resolved once at Init, so the
  // steady-state packet path is pure arithmetic — no region-map or radix-tree
  // walk per packet.
  Result<ByteSpan> Buffer(int32_t id);
  // The device-visible address of buffer `id`.
  Result<uint64_t> BufferIova(int32_t id) const;
  // The cached physical address backing buffer `id` (what the IOMMU would
  // translate BufferIova to).
  Result<uint64_t> BufferPaddr(int32_t id) const;

 private:
  DmaSpace* dma_;
  uint32_t count_;
  uint32_t buffer_bytes_;
  DmaRegion region_{};
  uint8_t* host_base_ = nullptr;  // host view of the whole pool region
  bool initialized_ = false;
  // Guards the free list and allocation bitmap only; Buffer/BufferIova are
  // pure arithmetic over state fixed at Init.
  mutable std::mutex mu_;
  std::vector<int32_t> free_list_;
  std::vector<bool> allocated_;
  uint64_t double_frees_ = 0;
};

}  // namespace sud

#endif  // SUD_SRC_SUD_SHARED_POOL_H_
