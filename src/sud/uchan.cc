#include "src/sud/uchan.h"

#include <chrono>

#include "src/base/log.h"

namespace sud {

Uchan::Uchan(Config config, CpuModel* cpu) : config_(config), cpu_(cpu) {}

void Uchan::ChargeBoth(SimTime nanos) {
  if (cpu_ != nullptr) {
    cpu_->Charge(kAccountKernel, nanos);
  }
}

void Uchan::set_downcall_handler(DowncallHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  downcall_handler_ = std::move(handler);
}

void Uchan::set_user_pump(std::function<void()> pump) {
  std::lock_guard<std::mutex> lock(mu_);
  user_pump_ = std::move(pump);
}

Status Uchan::EnqueueUpcallLocked(UchanMsg&& msg, std::unique_lock<std::mutex>& lock) {
  if (shutdown_) {
    return Status(ErrorCode::kUnavailable, "uchan shut down");
  }
  if (k2u_ring_.size() >= config_.ring_entries) {
    // Section 3.1.1: "if the device driver's queue is full, the kernel can
    // wait a short period of time to determine if the user-space driver is
    // making any progress at all" — modelled as an immediate kQueueFull the
    // proxy converts into a hung-driver report after its grace policy.
    stats_.upcalls_dropped_full++;
    return Status(ErrorCode::kQueueFull, "kernel-to-user ring full");
  }
  if (cpu_ != nullptr) {
    cpu_->Charge(kAccountKernel, cpu_->costs().uchan_msg);
  }
  if (driver_idle_) {
    // The driver is asleep in select: this enqueue costs one process wakeup
    // (the 4 us of Section 5.1); it is now runnable, so further enqueues
    // before its next sleep are free.
    if (cpu_ != nullptr) {
      cpu_->Charge(kAccountKernel, cpu_->costs().process_wakeup);
    }
    stats_.wakeups++;
    driver_idle_ = false;
  }
  k2u_ring_.push_back(std::move(msg));
  upcall_cv_.notify_all();
  return Status::Ok();
}

Result<UchanMsg> Uchan::SendSync(UchanMsg msg) {
  std::unique_lock<std::mutex> lock(mu_);
  msg.seq = next_seq_++;
  msg.needs_reply = true;
  uint64_t seq = msg.seq;
  stats_.upcalls_sync++;
  Status enq = EnqueueUpcallLocked(std::move(msg), lock);
  if (!enq.ok()) {
    return enq;
  }

  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(config_.sync_timeout_ms);
  while (replies_.count(seq) == 0 && !shutdown_) {
    if (user_pump_) {
      // Single-threaded harness: run the driver inline instead of blocking.
      auto pump = user_pump_;
      lock.unlock();
      pump();
      lock.lock();
      if (replies_.count(seq) != 0 || shutdown_) {
        break;
      }
      // Driver ran but did not reply: a hung or malicious driver. The upcall
      // is interruptable — give up.
      stats_.upcalls_timed_out++;
      replies_.erase(seq);
      return Status(ErrorCode::kTimedOut, "synchronous upcall interrupted (driver unresponsive)");
    }
    if (reply_cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        replies_.count(seq) == 0) {
      stats_.upcalls_timed_out++;
      return Status(ErrorCode::kTimedOut, "synchronous upcall timed out");
    }
  }
  if (shutdown_ && replies_.count(seq) == 0) {
    return Status(ErrorCode::kUnavailable, "uchan shut down");
  }
  UchanMsg reply = std::move(replies_[seq]);
  replies_.erase(seq);
  if (cpu_ != nullptr) {
    cpu_->Charge(kAccountKernel, cpu_->costs().uchan_msg);
  }
  return reply;
}

Status Uchan::SendAsync(UchanMsg msg) {
  std::unique_lock<std::mutex> lock(mu_);
  msg.seq = next_seq_++;
  msg.needs_reply = false;
  stats_.upcalls_async++;
  return EnqueueUpcallLocked(std::move(msg), lock);
}

Result<UchanMsg> Uchan::Wait(uint64_t timeout_ms) {
  FlushDowncalls();
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    return Status(ErrorCode::kUnavailable, "uchan shut down");
  }
  if (k2u_ring_.empty()) {
    // Ring empty: the driver sleeps in select on the uchan fd. Entering and
    // leaving the kernel for select costs a syscall.
    driver_idle_ = true;
    if (cpu_ != nullptr) {
      cpu_->Charge(kAccountDriver, cpu_->costs().syscall);
    }
    if (timeout_ms == 0) {
      return Status(ErrorCode::kTimedOut, "no pending upcalls");
    }
    auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (k2u_ring_.empty() && !shutdown_) {
      if (upcall_cv_.wait_until(lock, deadline) == std::cv_status::timeout && k2u_ring_.empty()) {
        return Status(ErrorCode::kTimedOut, "no pending upcalls");
      }
    }
    if (shutdown_) {
      return Status(ErrorCode::kUnavailable, "uchan shut down");
    }
  }
  driver_idle_ = false;
  UchanMsg msg = std::move(k2u_ring_.front());
  k2u_ring_.pop_front();
  if (cpu_ != nullptr) {
    cpu_->Charge(kAccountDriver, cpu_->costs().uchan_msg);
  }
  return msg;
}

void Uchan::Reply(const UchanMsg& request, UchanMsg reply) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!request.needs_reply || shutdown_) {
    return;
  }
  reply.seq = request.seq;
  reply.needs_reply = false;
  if (cpu_ != nullptr) {
    cpu_->Charge(kAccountDriver, cpu_->costs().uchan_msg);
  }
  replies_[request.seq] = std::move(reply);
  reply_cv_.notify_all();
}

void Uchan::RunDowncallLocked(UchanMsg& msg, std::unique_lock<std::mutex>& lock) {
  DowncallHandler handler = downcall_handler_;
  lock.unlock();
  if (handler) {
    handler(msg);
  } else {
    msg.error = static_cast<int32_t>(ErrorCode::kUnavailable);
  }
  lock.lock();
}

Status Uchan::DowncallSync(UchanMsg& msg) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    return Status(ErrorCode::kUnavailable, "uchan shut down");
  }
  stats_.downcalls_sync++;
  // A synchronous downcall always enters the kernel, flushing any batch
  // first (batched messages must stay ordered ahead of this one).
  std::vector<UchanMsg> batch;
  batch.swap(downcall_batch_);
  if (cpu_ != nullptr) {
    cpu_->Charge(kAccountDriver, cpu_->costs().syscall);
  }
  stats_.downcall_batches++;
  for (UchanMsg& queued : batch) {
    if (cpu_ != nullptr) {
      cpu_->Charge(kAccountKernel, cpu_->costs().uchan_msg);
    }
    RunDowncallLocked(queued, lock);
  }
  if (cpu_ != nullptr) {
    cpu_->Charge(kAccountKernel, cpu_->costs().uchan_msg);
  }
  RunDowncallLocked(msg, lock);
  return msg.error == 0 ? Status::Ok()
                        : Status(static_cast<ErrorCode>(msg.error), "downcall failed");
}

Status Uchan::DowncallAsync(UchanMsg msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status(ErrorCode::kUnavailable, "uchan shut down");
    }
    stats_.downcalls_async++;
    if (config_.batch_async_downcalls) {
      downcall_batch_.push_back(std::move(msg));
      return Status::Ok();
    }
    downcall_batch_.push_back(std::move(msg));
  }
  // Unbatched configuration: every async downcall enters the kernel at once.
  FlushDowncalls();
  return Status::Ok();
}

void Uchan::FlushDowncalls() {
  std::unique_lock<std::mutex> lock(mu_);
  if (downcall_batch_.empty() || shutdown_) {
    return;
  }
  std::vector<UchanMsg> batch;
  batch.swap(downcall_batch_);
  // One kernel entry for the whole batch: the batching win of Section 3.1.2.
  if (cpu_ != nullptr) {
    cpu_->Charge(kAccountDriver, cpu_->costs().syscall);
  }
  stats_.downcall_batches++;
  for (UchanMsg& msg : batch) {
    if (cpu_ != nullptr) {
      cpu_->Charge(kAccountKernel, cpu_->costs().uchan_msg);
    }
    RunDowncallLocked(msg, lock);
  }
}

void Uchan::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  k2u_ring_.clear();
  downcall_batch_.clear();
  upcall_cv_.notify_all();
  reply_cv_.notify_all();
}

bool Uchan::is_shutdown() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

size_t Uchan::pending_upcalls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return k2u_ring_.size();
}

}  // namespace sud
