#include "src/sud/uchan.h"

#include <chrono>

#include "src/base/log.h"

namespace sud {

namespace {
constexpr size_t kInitialReplySlots = 64;  // power of two
}  // namespace

const CpuCosts& Uchan::costs() const {
  static const CpuCosts kDefaults{};
  return cpu_ != nullptr ? cpu_->costs() : kDefaults;
}

Uchan::Uchan(Config config, CpuModel* cpu) : config_(config), cpu_(cpu) {
  if (config_.ring_entries == 0) {
    config_.ring_entries = 1;
  }
  ring_.resize(config_.ring_entries);
  replies_.resize(kInitialReplySlots);
}

void Uchan::ChargeKernelLocked(SimTime nanos) {
  stats_.kernel_ns += nanos;
  if (cpu_ != nullptr) {
    cpu_->Charge(kAccountKernel, nanos);
  }
}

void Uchan::ChargeDriverLocked(SimTime nanos) {
  stats_.driver_ns += nanos;
  if (cpu_ != nullptr) {
    cpu_->Charge(kAccountDriver, nanos);
  }
}

void Uchan::set_downcall_handler(DowncallHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  downcall_handler_ = std::move(handler);
}

void Uchan::set_downcall_flush_handler(std::function<void()> handler) {
  std::lock_guard<std::mutex> lock(mu_);
  downcall_flush_handler_ = std::move(handler);
}

void Uchan::set_user_pump(std::function<void()> pump) {
  std::lock_guard<std::mutex> lock(mu_);
  user_pump_ = std::move(pump);
}

// ---- reply slot table -------------------------------------------------------

size_t Uchan::ReplyIndex(uint64_t seq) const {
  // Fibonacci hashing; table size is a power of two.
  return static_cast<size_t>(seq * 0x9E3779B97F4A7C15ull) & (replies_.size() - 1);
}

Uchan::ReplySlot* Uchan::FindReplyLocked(uint64_t seq) {
  size_t index = ReplyIndex(seq);
  for (size_t probes = 0; probes < replies_.size(); ++probes) {
    ReplySlot& slot = replies_[index];
    if (slot.state == SlotState::kFree) {
      return nullptr;
    }
    if (slot.seq == seq) {
      return &slot;
    }
    index = (index + 1) & (replies_.size() - 1);
  }
  return nullptr;
}

void Uchan::InsertPendingLocked(uint64_t seq) {
  if ((replies_used_ + 1) * 2 > replies_.size()) {
    GrowRepliesLocked();
  }
  size_t index = ReplyIndex(seq);
  while (replies_[index].state != SlotState::kFree) {
    index = (index + 1) & (replies_.size() - 1);
  }
  replies_[index].seq = seq;
  replies_[index].state = SlotState::kPending;
  ++replies_used_;
}

void Uchan::EraseReplyLocked(uint64_t seq) {
  ReplySlot* slot = FindReplyLocked(seq);
  if (slot == nullptr) {
    return;
  }
  size_t i = static_cast<size_t>(slot - replies_.data());
  size_t mask = replies_.size() - 1;
  replies_[i].state = SlotState::kFree;
  replies_[i].msg = UchanMsg{};
  --replies_used_;
  // Backward-shift deletion keeps probe chains intact without tombstones.
  size_t j = i;
  while (true) {
    j = (j + 1) & mask;
    if (replies_[j].state == SlotState::kFree) {
      break;
    }
    size_t home = ReplyIndex(replies_[j].seq);
    bool home_in_gap = (j > i) ? (home > i && home <= j) : (home > i || home <= j);
    if (!home_in_gap) {
      replies_[i] = std::move(replies_[j]);
      replies_[j].state = SlotState::kFree;
      replies_[j].msg = UchanMsg{};
      i = j;
    }
  }
}

void Uchan::GrowRepliesLocked() {
  std::vector<ReplySlot> old;
  old.swap(replies_);
  replies_.resize(old.size() * 2);
  replies_used_ = 0;
  for (ReplySlot& slot : old) {
    if (slot.state == SlotState::kFree) {
      continue;
    }
    size_t index = ReplyIndex(slot.seq);
    while (replies_[index].state != SlotState::kFree) {
      index = (index + 1) & (replies_.size() - 1);
    }
    replies_[index] = std::move(slot);
    ++replies_used_;
  }
}

// ---- upcall ring ------------------------------------------------------------

Status Uchan::EnqueueUpcallLocked(UchanMsg&& msg) {
  if (shutdown_) {
    return Status(ErrorCode::kUnavailable, "uchan shut down");
  }
  if (ring_count_ >= config_.ring_entries) {
    // Section 3.1.1: "if the device driver's queue is full, the kernel can
    // wait a short period of time to determine if the user-space driver is
    // making any progress at all" — modelled as an immediate kQueueFull the
    // proxy converts into a hung-driver report after its grace policy.
    stats_.upcalls_dropped_full++;
    return Status(ErrorCode::kQueueFull, "kernel-to-user ring full");
  }
  ChargeKernelLocked(costs().uchan_msg);
  if (driver_idle_) {
    // The driver is asleep in select: this enqueue costs one process wakeup
    // (the 4 us of Section 5.1); it is now runnable, so further enqueues
    // before its next sleep are free — which is also what makes the whole of
    // a SendAsyncBatch cost a single wakeup.
    ChargeKernelLocked(costs().process_wakeup);
    stats_.wakeups++;
    driver_idle_ = false;
  }
  ring_[(ring_head_ + ring_count_) % config_.ring_entries] = std::move(msg);
  ++ring_count_;
  return Status::Ok();
}

UchanMsg Uchan::PopUpcallLocked() {
  UchanMsg msg = std::move(ring_[ring_head_]);
  ring_head_ = (ring_head_ + 1) % config_.ring_entries;
  --ring_count_;
  ChargeDriverLocked(costs().uchan_msg);
  return msg;
}

Result<UchanMsg> Uchan::SendSync(UchanMsg msg) {
  std::unique_lock<std::mutex> lock(mu_);
  msg.seq = next_seq_++;
  msg.needs_reply = true;
  uint64_t seq = msg.seq;
  stats_.upcalls_sync++;
  Status enq = EnqueueUpcallLocked(std::move(msg));
  if (!enq.ok()) {
    return enq;
  }
  InsertPendingLocked(seq);
  upcall_cv_.notify_all();

  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(config_.sync_timeout_ms);
  while (!shutdown_) {
    ReplySlot* slot = FindReplyLocked(seq);
    if (slot != nullptr && slot->state == SlotState::kReady) {
      break;
    }
    if (user_pump_) {
      // Single-threaded harness: run the driver inline instead of blocking.
      auto pump = user_pump_;
      lock.unlock();
      pump();
      lock.lock();
      slot = FindReplyLocked(seq);
      if ((slot != nullptr && slot->state == SlotState::kReady) || shutdown_) {
        break;
      }
      // Driver ran but did not reply: a hung or malicious driver. The upcall
      // is interruptable — give up.
      stats_.upcalls_timed_out++;
      EraseReplyLocked(seq);
      return Status(ErrorCode::kTimedOut, "synchronous upcall interrupted (driver unresponsive)");
    }
    if (reply_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      slot = FindReplyLocked(seq);
      if (slot != nullptr && slot->state == SlotState::kReady) {
        break;
      }
      stats_.upcalls_timed_out++;
      // Erase the pending slot so a late Reply is dropped instead of parking
      // an orphaned entry in the table forever.
      EraseReplyLocked(seq);
      return Status(ErrorCode::kTimedOut, "synchronous upcall timed out");
    }
  }
  ReplySlot* slot = FindReplyLocked(seq);
  if (slot == nullptr || slot->state != SlotState::kReady) {
    return Status(ErrorCode::kUnavailable, "uchan shut down");
  }
  UchanMsg reply = std::move(slot->msg);
  EraseReplyLocked(seq);
  ChargeKernelLocked(costs().uchan_msg);
  return reply;
}

Status Uchan::SendAsync(UchanMsg msg) {
  std::unique_lock<std::mutex> lock(mu_);
  msg.seq = next_seq_++;
  msg.needs_reply = false;
  stats_.upcalls_async++;
  Status status = EnqueueUpcallLocked(std::move(msg));
  if (status.ok()) {
    upcall_cv_.notify_all();
  }
  return status;
}

Result<size_t> Uchan::SendAsyncBatch(std::vector<UchanMsg> msgs) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    return Status(ErrorCode::kUnavailable, "uchan shut down");
  }
  stats_.upcall_batches++;
  size_t enqueued = 0;
  for (UchanMsg& msg : msgs) {
    msg.seq = next_seq_++;
    msg.needs_reply = false;
    stats_.upcalls_async++;
    if (!EnqueueUpcallLocked(std::move(msg)).ok()) {
      // Ring filled mid-batch: drop the tail (each drop already counted in
      // upcalls_dropped_full by EnqueueUpcallLocked).
      for (size_t rest = enqueued + 1; rest < msgs.size(); ++rest) {
        stats_.upcalls_async++;
        stats_.upcalls_dropped_full++;
      }
      break;
    }
    ++enqueued;
  }
  if (enqueued > 0) {
    upcall_cv_.notify_all();
  }
  return enqueued;
}

Status Uchan::WaitForUpcallLocked(uint64_t timeout_ms, std::unique_lock<std::mutex>& lock) {
  if (shutdown_) {
    return Status(ErrorCode::kUnavailable, "uchan shut down");
  }
  if (ring_count_ == 0) {
    // Ring empty: the driver sleeps in select on the uchan fd. Entering and
    // leaving the kernel for select costs a syscall.
    driver_idle_ = true;
    ChargeDriverLocked(costs().syscall);
    if (timeout_ms == 0) {
      return Status(ErrorCode::kTimedOut, "no pending upcalls");
    }
    auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (ring_count_ == 0 && !shutdown_) {
      if (upcall_cv_.wait_until(lock, deadline) == std::cv_status::timeout && ring_count_ == 0) {
        return Status(ErrorCode::kTimedOut, "no pending upcalls");
      }
    }
    if (shutdown_) {
      return Status(ErrorCode::kUnavailable, "uchan shut down");
    }
  }
  driver_idle_ = false;
  return Status::Ok();
}

Result<UchanMsg> Uchan::Wait(uint64_t timeout_ms) {
  FlushDowncalls();
  std::unique_lock<std::mutex> lock(mu_);
  SUD_RETURN_IF_ERROR(WaitForUpcallLocked(timeout_ms, lock));
  return PopUpcallLocked();
}

Result<std::vector<UchanMsg>> Uchan::WaitBatch(uint64_t timeout_ms, size_t max_msgs) {
  FlushDowncalls();
  std::unique_lock<std::mutex> lock(mu_);
  SUD_RETURN_IF_ERROR(WaitForUpcallLocked(timeout_ms, lock));
  std::vector<UchanMsg> batch;
  batch.reserve(std::min(max_msgs, ring_count_));
  while (ring_count_ > 0 && batch.size() < max_msgs) {
    batch.push_back(PopUpcallLocked());
  }
  return batch;
}

void Uchan::Reply(const UchanMsg& request, UchanMsg reply) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!request.needs_reply || shutdown_) {
    return;
  }
  ReplySlot* slot = FindReplyLocked(request.seq);
  if (slot == nullptr || slot->state != SlotState::kPending) {
    // The sender timed out and withdrew: drop the late reply.
    return;
  }
  reply.seq = request.seq;
  reply.needs_reply = false;
  ChargeDriverLocked(costs().uchan_msg);
  slot->msg = std::move(reply);
  slot->state = SlotState::kReady;
  reply_cv_.notify_all();
}

void Uchan::RunDowncallLocked(UchanMsg& msg, std::unique_lock<std::mutex>& lock) {
  DowncallHandler handler = downcall_handler_;
  lock.unlock();
  if (handler) {
    handler(msg);
  } else {
    msg.error = static_cast<int32_t>(ErrorCode::kUnavailable);
  }
  lock.lock();
}

Status Uchan::DowncallSync(UchanMsg& msg) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    return Status(ErrorCode::kUnavailable, "uchan shut down");
  }
  stats_.downcalls_sync++;
  // A synchronous downcall always enters the kernel, flushing any batch
  // first (batched messages must stay ordered ahead of this one).
  std::vector<UchanMsg> batch;
  batch.swap(downcall_batch_);
  ChargeDriverLocked(costs().syscall);
  stats_.downcall_batches++;
  for (UchanMsg& queued : batch) {
    ChargeKernelLocked(costs().uchan_msg);
    RunDowncallLocked(queued, lock);
  }
  ChargeKernelLocked(costs().uchan_msg);
  RunDowncallLocked(msg, lock);
  Status status = msg.error == 0 ? Status::Ok()
                                 : Status(static_cast<ErrorCode>(msg.error), "downcall failed");
  auto flush_handler = downcall_flush_handler_;
  lock.unlock();
  if (flush_handler) {
    flush_handler();  // end of this kernel entry: deliver any queued rx bundle
  }
  return status;
}

Status Uchan::DowncallAsync(UchanMsg msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status(ErrorCode::kUnavailable, "uchan shut down");
    }
    stats_.downcalls_async++;
    if (config_.batch_async_downcalls) {
      downcall_batch_.push_back(std::move(msg));
      return Status::Ok();
    }
    downcall_batch_.push_back(std::move(msg));
  }
  // Unbatched configuration: every async downcall enters the kernel at once.
  FlushDowncalls();
  return Status::Ok();
}

Status Uchan::DowncallAsyncBatch(std::vector<UchanMsg> msgs) {
  bool flush_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status(ErrorCode::kUnavailable, "uchan shut down");
    }
    stats_.downcalls_async += msgs.size();
    if (downcall_batch_.empty()) {
      downcall_batch_ = std::move(msgs);
    } else {
      for (UchanMsg& msg : msgs) {
        downcall_batch_.push_back(std::move(msg));
      }
    }
    flush_now = !config_.batch_async_downcalls;
  }
  if (flush_now) {
    FlushDowncalls();
  }
  return Status::Ok();
}

void Uchan::FlushDowncalls() {
  std::unique_lock<std::mutex> lock(mu_);
  if (downcall_batch_.empty() || shutdown_) {
    return;
  }
  std::vector<UchanMsg> batch;
  batch.swap(downcall_batch_);
  // One kernel entry for the whole batch: the batching win of Section 3.1.2.
  ChargeDriverLocked(costs().syscall);
  stats_.downcall_batches++;
  for (UchanMsg& msg : batch) {
    ChargeKernelLocked(costs().uchan_msg);
    RunDowncallLocked(msg, lock);
  }
  auto flush_handler = downcall_flush_handler_;
  lock.unlock();
  if (flush_handler) {
    flush_handler();  // end of this kernel entry: deliver any queued rx bundle
  }
}

void Uchan::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  ring_head_ = 0;
  ring_count_ = 0;
  for (UchanMsg& msg : ring_) {
    msg = UchanMsg{};
  }
  downcall_batch_.clear();
  upcall_cv_.notify_all();
  reply_cv_.notify_all();
}

bool Uchan::is_shutdown() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

Uchan::Stats Uchan::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// ---- UchanShardSet ----------------------------------------------------------

UchanShardSet::UchanShardSet(uint32_t count, Uchan::Config config, CpuModel* cpu) {
  shards_.reserve(count == 0 ? 1 : count);
  for (uint32_t q = 0; q < (count == 0 ? 1 : count); ++q) {
    shards_.push_back(std::make_unique<Uchan>(config, cpu));
  }
}

void UchanShardSet::set_downcall_handler(QueuedDowncallHandler handler) {
  for (uint32_t q = 0; q < count(); ++q) {
    // Each shard's wrapper pins the queue index: the kernel side learns which
    // queue a downcall belongs to from the channel it arrived on.
    shards_[q]->set_downcall_handler(
        [handler, q](UchanMsg& msg) { handler(msg, static_cast<uint16_t>(q)); });
  }
}

void UchanShardSet::set_downcall_flush_handler(QueuedFlushHandler handler) {
  for (uint32_t q = 0; q < count(); ++q) {
    shards_[q]->set_downcall_flush_handler([handler, q]() { handler(static_cast<uint16_t>(q)); });
  }
}

void UchanShardSet::set_user_pump(std::function<void()> pump) {
  for (auto& shard : shards_) {
    shard->set_user_pump(pump);
  }
}

void UchanShardSet::ShutdownAll() {
  for (auto& shard : shards_) {
    shard->Shutdown();
  }
}

Uchan::Stats UchanShardSet::AggregateStats() const {
  Uchan::Stats total;
  for (const auto& shard : shards_) {
    total += shard->stats();
  }
  return total;
}

size_t Uchan::pending_upcalls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_count_;
}

}  // namespace sud
